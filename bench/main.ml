(* The experiment harness: regenerates every figure-level result of the
   paper (E1–E4) and the quantitative claims it makes in prose and in the
   related-work comparison (E5–E9). See DESIGN.md section 4 for the index
   and EXPERIMENTS.md for paper-claim vs measured.

   Run:  dune exec bench/main.exe            (all experiments)
         dune exec bench/main.exe -- E7 E9   (a subset)
         dune exec bench/main.exe -- micro   (bechamel microbenchmarks) *)

let section id title =
  Fmt.pr "@.=== %s: %s ===@." id title

let entry name = Option.get (Workloads.Registry.find name)

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* instructions per CPU second of a run *)
let rate instrs secs = if secs <= 0. then 0. else float_of_int instrs /. secs

(* ---------------------------------------------------------------- E1/E2 *)

let e1 () =
  section "E1" "Figure 1 (A)/(B): schedule-dependent outcome + exact replay";
  let e = entry "fig1ab" in
  Fmt.pr "%-6s %-10s %-28s %s@." "seed" "printed" "record=replay?" "trace";
  List.iter
    (fun seed ->
      let rt = Dejavu.verify_roundtrip ~natives:e.natives ~seed e.program in
      Fmt.pr "%-6d %-10s %-28s %d bytes@." seed
        (String.trim rt.recorded.output)
        (if Dejavu.ok rt then "yes (events+output+state)" else "NO")
        (Dejavu.Trace.sizes rt.trace).total_bytes)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let outs =
    List.map
      (fun seed ->
        let vm, _ = Vm.execute ~seed e.program in
        Vm.output vm)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Fmt.pr "distinct outcomes across seeds: %d (paper: printed value depends on the thread switch)@."
    (List.length (List.sort_uniq compare outs))

let e2 () =
  section "E2" "Figure 1 (C)/(D): wall-clock-dependent branch + wait/notify";
  let e = entry "fig1cd" in
  Fmt.pr "%-6s %-16s %-12s %s@." "seed" "printed" "clock-reads" "replay ok?";
  List.iter
    (fun seed ->
      let rt = Dejavu.verify_roundtrip ~natives:e.natives ~seed e.program in
      Fmt.pr "%-6d %-16s %-12d %s@." seed
        (String.concat "," (String.split_on_char '\n' (String.trim rt.recorded.output)))
        (Dejavu.Trace.sizes rt.trace).n_clock_reads
        (if Dejavu.ok rt then "yes" else "NO"))
    [ 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------- E3 *)

let e3 () =
  section "E3" "Figure 2: symmetric instrumentation (record vs replay)";
  (* "timed" exercises every event kind: preemptions, scheduler clock
     reads, idle advances — so the symmetric ring buffer sees writes *)
  let e = entry "timed" in
  let rec_run, trace = Dejavu.record ~natives:e.natives ~seed:2 e.program in
  let rep_run, leftovers = Dejavu.replay ~natives:e.natives e.program trace in
  let s_rec = Option.get rec_run.Dejavu.session in
  let s_rep = Option.get rep_run.Dejavu.session in
  Fmt.pr "%-34s %-12s %-12s@." "" "record" "replay";
  Fmt.pr "%-34s %-12d %-12d@." "yield points seen by Figure-2 hook"
    s_rec.yieldpoints_seen s_rep.yieldpoints_seen;
  Fmt.pr "%-34s %-12d %-12d@." "thread switches performed"
    s_rec.switches_done s_rep.switches_done;
  Fmt.pr "%-34s %-12d %-12d@." "ring-buffer writes (symmetric alloc)"
    (Dejavu.Ring.writes s_rec.ring)
    (Dejavu.Ring.writes s_rep.ring);
  Fmt.pr "%-34s %-12d %-12d@." "state digest (incl. DejaVu heap)"
    (rec_run.Dejavu.state_digest land 0xffffff)
    (rep_run.Dejavu.state_digest land 0xffffff);
  Fmt.pr "trace fully consumed at replay end: %s@."
    (if leftovers = [] then "yes" else String.concat "; " leftovers)

(* ------------------------------------------------------------------- E4 *)

let e4 () =
  section "E4" "Figures 3/4: remote reflection is perturbation-free";
  let e = entry "gc-churn" in
  let rec_run, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  ignore rec_run;
  (* replay and pause midway; inspect heavily through both interfaces *)
  let d = Debugger.Session.start ~natives:e.natives e.program trace in
  ignore (Debugger.Session.step d 5000);
  let before = Debugger.Session.state_digest d in
  let sp = Debugger.Session.space d in
  let module RR = (val Remote_reflection.Remote_object.reflection sp) in
  let module RL = (val Remote_reflection.Local_object.reflection d.vm) in
  let queries = [ ("Churn", "total"); ("Churn", "survivor"); ("Churn", "lock") ] in
  let agree =
    List.for_all
      (fun (c, f) ->
        RR.render_value ~depth:3 (RR.get_static c f)
        = RL.render_value ~depth:3 (RL.get_static c f))
      queries
  in
  List.iter
    (fun (c, f) ->
      Fmt.pr "  %s.%s = %s@." c f (RR.render_value ~depth:2 (RR.get_static c f)))
    queries;
  let frames = Remote_reflection.Remote_frames.frames sp 1 in
  Fmt.pr "  remote stack of thread 1: %s@."
    (String.concat " <- "
       (List.map
          (fun (f : Remote_reflection.Remote_frames.frame) -> f.rf_meth.rm_name)
          frames));
  Fmt.pr "remote == in-process reflection on all queries: %b@." agree;
  Fmt.pr "remote word reads performed: %d@." sp.reads;
  Fmt.pr "application-VM digest unchanged by inspection: %b@."
    (before = Debugger.Session.state_digest d);
  (* and the replay still completes identically *)
  ignore (Debugger.Session.continue_ d);
  Fmt.pr "resumed replay matches recording: %b@."
    (Debugger.Session.output d = rec_run.Dejavu.output
    && Debugger.Session.state_digest d = rec_run.Dejavu.state_digest)

(* ------------------------------------------------------------------- E5 *)

let e5 () =
  section "E5" "Replay accuracy across the workload suite";
  Fmt.pr "%-24s %-6s %-10s %-8s %-8s %-8s %-10s@." "workload" "seed" "events"
    "output" "state" "trace" "status";
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun seed ->
          let rt = Dejavu.verify_roundtrip ~natives:e.natives ~seed e.program in
          Fmt.pr "%-24s %-6d %-10s %-8s %-8s %-8s %-10s@." e.name seed
            (if rt.events_equal then Fmt.str "=%d" rt.recorded.obs_count else "DIFFER")
            (if rt.outputs_equal then "equal" else "DIFFER")
            (if rt.states_equal then "equal" else "DIFFER")
            (if rt.replay_complete then "drained" else "LEFT")
            (Vm.string_of_status rt.recorded.status))
        [ 1; 2 ])
    (Lazy.force Workloads.Registry.all)

(* ------------------------------------------------------------------- E6 *)

let overhead_workloads =
  [ ("primes", entry "primes"); ("parsum", entry "parsum");
    ("racy-counter", entry "racy-counter"); ("gc-churn", entry "gc-churn");
    ("producer-consumer", entry "producer-consumer") ]

(* Measure one workload's live / record / replay rates. Record and replay
   run WITHOUT the event-sequence digest observer: it is a verification
   artifact (a per-instruction hash fold) rather than part of the replay
   instrumentation, so including it would overstate the overhead the paper
   talks about. [reps] runs are taken and the fastest kept. *)
let measure_modes ?(reps = 9) ~natives ~program () =
  (* one untimed run first: a program's first execution in this process
     pays page faults, allocator growth, and cold branch history — up to
     2x on sub-millisecond workloads, a trend best-of alone can't dodge.
     Best-of-9 after that: on this 1-CPU box single runs of the same
     build swing several percent, and 5 samples were not enough for the
     best-of to converge *)
  ignore (Vm.execute ~natives ~seed:1 program);
  let best f =
    let r = ref infinity in
    let instrs = ref 0 in
    for _ = 1 to reps do
      let (n : int), t = time f in
      instrs := n;
      if t < !r then r := t
    done;
    (!instrs, !r)
  in
  let live =
    best (fun () ->
        let vm, _ = Vm.execute ~natives ~seed:1 program in
        (Vm.stats vm).n_instr)
  in
  let record =
    best (fun () ->
        let run, _ =
          Dejavu.record ~natives ~seed:1 ~observe:false program
        in
        (Vm.stats run.Dejavu.vm).n_instr)
  in
  let _, trace = Dejavu.record ~natives ~seed:1 ~observe:false program in
  let replay =
    best (fun () ->
        let run, _ =
          Dejavu.replay ~natives ~observe:false program trace
        in
        (Vm.stats run.Dejavu.vm).n_instr)
  in
  (live, record, replay, Dejavu.Trace.sizes trace)

let e6 () =
  section "E6" "Record/replay overhead vs uninstrumented execution";
  Fmt.pr "%-20s %-12s %-12s %-12s %-10s %-10s@." "workload" "live Mi/s"
    "record Mi/s" "replay Mi/s" "rec ovhd" "rep ovhd";
  List.iter
    (fun (name, (e : Workloads.Registry.entry)) ->
      let (live_instrs, live_t), (rec_instrs, rec_t), (rep_instrs, rep_t), _ =
        measure_modes ~natives:e.natives ~program:e.program ()
      in
      let mips n t = rate n t /. 1e6 in
      Fmt.pr "%-20s %-12.2f %-12.2f %-12.2f %-10.3f %-10.3f@." name
        (mips live_instrs live_t) (mips rec_instrs rec_t)
        (mips rep_instrs rep_t)
        (rec_t /. live_t) (rep_t /. live_t))
    overhead_workloads;
  Fmt.pr "(verification observer excluded; timings include VM setup)@."

(* ------------------------------------------------------------------- E7 *)

let e7 () =
  section "E7" "Trace size: DejaVu vs the section-5 comparators (words)";
  Fmt.pr "%-20s %-10s %-12s %-12s %-12s %-10s@." "workload" "dejavu"
    "switch-map" "read-log" "crew" "dv bytes";
  List.iter
    (fun (name, (e : Workloads.Registry.entry)) ->
      let _, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
      let dv = Dejavu.Trace.sizes trace in
      let sm =
        let vm = Vm.create ~natives:e.natives e.program in
        let b = Baselines.Switch_map.attach_record vm in
        ignore (Vm.run vm);
        (Baselines.Switch_map.sizes b).trace_words
      in
      let crew =
        (Baselines.Runner.record_crew ~natives:e.natives ~seed:1 e.program)
          .trace_words
      in
      let rl =
        (Baselines.Runner.record_read_log ~natives:e.natives ~seed:1 e.program)
          .trace_words
      in
      Fmt.pr "%-20s %-10d %-12d %-12d %-12d %-10d@." name dv.total_words sm rl
        crew dv.total_bytes)
    overhead_workloads;
  Fmt.pr "(expected shape: dejavu < switch-map << read-log <= crew)@."

(* ------------------------------------------------------------------- E8 *)

let e8 () =
  section "E8" "Instruction counting vs yield-point counting (section 2.3)";
  (* The substrate-independent measure is how many counter updates each
     identification scheme performs: yield points touch a few percent of
     instructions, instruction counting touches all of them. (Wall-clock
     times are also shown, but our interpreted substrate pays tens of ns
     per instruction anyway, which compresses the gap that is prohibitive
     for compiled code.) *)
  Fmt.pr "%-16s %-12s %-14s %-8s %-10s %-10s %-10s@." "workload"
    "yp updates" "icount updates" "ratio" "dejavu s" "icount s" "replay ok";
  List.iter
    (fun (name, (e : Workloads.Registry.entry)) ->
      let best f =
        let r = ref infinity in
        let v = ref None in
        for _ = 1 to 3 do
          let x, t = time f in
          v := Some x;
          if t < !r then r := t
        done;
        (Option.get !v, !r)
      in
      let dv_stats, dv_t =
        best (fun () ->
            let run, _ = Dejavu.record ~natives:e.natives ~seed:1 e.program in
            Vm.stats run.Dejavu.vm)
      in
      let ic_stats, ic_t =
        best (fun () ->
            let vm = Vm.create ~natives:e.natives e.program in
            ignore (Baselines.Icount.attach_record vm);
            ignore (Vm.run vm);
            Vm.stats vm)
      in
      let rt =
        Baselines.Runner.roundtrip_icount ~natives:e.natives ~seed:1 e.program
      in
      Fmt.pr "%-16s %-12d %-14d %-8.1f %-10.4f %-10.4f %-10b@." name
        dv_stats.n_yield ic_stats.n_instr
        (float_of_int ic_stats.n_instr /. float_of_int (max 1 dv_stats.n_yield))
        dv_t ic_t
        (Baselines.Runner.ok rt))
    [ ("primes", entry "primes"); ("parsum", entry "parsum");
      ("racy-counter", entry "racy-counter") ]

(* ------------------------------------------------------------------- E9 *)

let e9 () =
  section "E9" "Ablations: scheduling quantum and thread-count scaling";
  Fmt.pr "-- quantum sweep (racy-counter, seed 1) --@.";
  Fmt.pr "%-10s %-12s %-12s %-12s %-10s@." "quantum" "switches" "trace bytes"
    "outcome" "replay ok";
  List.iter
    (fun quantum ->
      let config =
        {
          Vm.Rt.default_config with
          env_cfg = { Vm.Env.default_config with quantum; quantum_jitter = quantum / 8 };
        }
      in
      let e = entry "racy-counter" in
      let rt = Dejavu.verify_roundtrip ~config ~natives:e.natives ~seed:1 e.program in
      Fmt.pr "%-10d %-12d %-12d %-12s %-10b@." quantum
        (Dejavu.Trace.sizes rt.trace).n_switches
        (Dejavu.Trace.sizes rt.trace).total_bytes
        (String.trim rt.recorded.output)
        (Dejavu.ok rt))
    [ 1000; 2000; 4000; 8000; 16000 ];
  Fmt.pr "-- thread scaling (counter with t threads, 1200/t increments) --@.";
  Fmt.pr "%-10s %-12s %-12s %-12s %-10s@." "threads" "switches" "trace bytes"
    "outcome" "replay ok";
  List.iter
    (fun threads ->
      let p = Workloads.Counters.racy ~threads ~increments:(1200 / threads) () in
      let rt = Dejavu.verify_roundtrip ~seed:1 p in
      Fmt.pr "%-10d %-12d %-12d %-12s %-10b@." threads
        (Dejavu.Trace.sizes rt.trace).n_switches
        (Dejavu.Trace.sizes rt.trace).total_bytes
        (String.trim rt.recorded.output)
        (Dejavu.ok rt))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ E10 *)

let e10 () =
  section "E10" "Checkpoint-accelerated time travel (extension; paper sec. 5)";
  let e = entry "racy-counter" in
  let _, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let open_session interval =
    Debugger.Session.start ~natives:e.natives ~checkpoint_interval:interval
      e.program trace
  in
  let with_ck = open_session 20_000 in
  let without_ck = open_session 0 in
  ignore (Debugger.Session.step with_ck 250_000);
  ignore (Debugger.Session.step without_ck 250_000);
  Fmt.pr "%-12s %-16s %-16s %-10s@." "goto step" "checkpointed s"
    "from-scratch s" "same state";
  List.iter
    (fun target ->
      let (), t_ck = time (fun () -> ignore (Debugger.Session.goto_step with_ck target)) in
      let (), t_raw =
        time (fun () -> ignore (Debugger.Session.goto_step without_ck target))
      in
      Fmt.pr "%-12d %-16.4f %-16.4f %-10b@." target t_ck t_raw
        (Debugger.Session.state_digest with_ck
        = Debugger.Session.state_digest without_ck))
    [ 240_000; 150_000; 60_000; 239_000; 5_000 ];
  Fmt.pr "checkpoints kept: %d; restores used: %d@."
    (List.length with_ck.checkpoints)
    with_ck.restores

(* ------------------------------------------------------------------ E11 *)

let e11 () =
  section "E11" "Symmetry ablation (negative control for section 2.4)";
  (* replay with one extra replay-side allocation before attaching: the
     event sequence and output still reproduce (the GC is transparent), but
     the machine states are no longer bit-identical — the property the
     paper's symmetric instrumentation exists to protect *)
  let e = entry "gc-churn" in
  let config = { Vm.Rt.default_config with heap_words = 6000 } in
  let rec_run, trace =
    Dejavu.record ~config ~natives:e.natives ~seed:3 e.program
  in
  let replay_with_extra_alloc n =
    let vm = Vm.create ~config ~natives:e.natives e.program in
    (* pinned = live, like a class loaded by one mode only *)
    if n > 0 then
      ignore (Vm.Heap.pin vm (Vm.Heap.alloc_array vm ~elem_ref:false ~len:n));
    ignore (Dejavu.Replayer.attach vm trace);
    let observer = Vm.Observer.attach_digest vm in
    ignore (Vm.run vm);
    (Vm.output vm, Vm.Observer.digest observer, Vm.digest vm)
  in
  Fmt.pr "%-26s %-10s %-10s %-12s@." "replay variant" "output" "events"
    "state";
  List.iter
    (fun (label, extra) ->
      let out, obs, st = replay_with_extra_alloc extra in
      Fmt.pr "%-26s %-10s %-10s %-12s@." label
        (if out = rec_run.Dejavu.output then "equal" else "DIFFER")
        (if obs = rec_run.Dejavu.obs_digest then "equal" else "DIFFER")
        (if st = rec_run.Dejavu.state_digest then "equal" else "DIFFER"))
    [ ("symmetric (DejaVu)", 0); ("asymmetric (+32w alloc)", 32);
      ("asymmetric (+1w alloc)", 1) ]

(* ------------------------------------------------- bechamel micro bench *)

let micro () =
  section "MICRO" "bechamel microbenchmarks (ns per whole-program run)";
  let open Bechamel in
  let open Toolkit in
  let e = entry "fig1cd" in
  let _, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"dejavu"
      [
        mk "live-run" (fun () -> ignore (Vm.execute ~natives:e.natives ~seed:1 e.program));
        mk "record-run" (fun () -> ignore (Dejavu.record ~natives:e.natives ~seed:1 e.program));
        mk "replay-run" (fun () -> ignore (Dejavu.replay ~natives:e.natives e.program trace));
        mk "crew-record" (fun () ->
            let vm = Vm.create ~natives:e.natives e.program in
            ignore (Baselines.Crew.attach vm);
            ignore (Vm.run vm));
        mk "icount-record" (fun () ->
            let vm = Vm.create ~natives:e.natives e.program in
            ignore (Baselines.Icount.attach_record vm);
            ignore (Vm.run vm));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "%-24s %12.0f ns/run@." name est
          | _ -> Fmt.pr "%-24s (no estimate)@." name)
        tbl)
    results

(* ------------------------------------------------------------------ E12 *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* Replay-farm throughput: record the whole registry under increasing shard
   counts and compare wall clock. The aggregate digest must not change with
   the shard count OR with warm reuse — sharding and VM recycling alter
   scheduling, never results. *)
let batch_under ?(warm = false) ?(rounds = 1) shards =
  let out_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "dv-bench-batch-%d-%d-%b" (Unix.getpid ()) shards warm)
  in
  let rep = Server.Batch.run_registry ~shards ~warm ~rounds ~out_dir () in
  rm_rf out_dir;
  rep

(* Steady-state warm throughput: one untimed warm-up round boots every
   pool VM, then [rounds] timed rounds run entirely on baseline resets.
   Quantiles are exact (sorted per-job latencies), not histogram bounds. *)
let warm_sustained ~shards ~rounds =
  Server.Job.preload ();
  let out_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "dv-bench-sus-%d-%d" (Unix.getpid ()) shards)
  in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let stats = Server.Stats.create () in
  let runner = Server.Job.runner ~stats ~shards () in
  let d =
    Server.Dispatcher.create ~shards ~place:runner.Server.Job.place ~stats
      ~run:runner.Server.Job.run ()
  in
  let names = Workloads.Registry.names () in
  let submit_round r =
    List.iter
      (fun n ->
        ignore
          (Server.Dispatcher.submit d
             (Server.Job.Record
                {
                  workload = n;
                  seed = 1;
                  out = Filename.concat out_dir (Fmt.str "%s-%d.trace" n r);
                })))
      names
  in
  submit_round 0;
  for _ = 1 to List.length names do
    ignore (Server.Dispatcher.next d)
  done;
  let t0 = Unix.gettimeofday () in
  let lats = ref [] in
  for r = 1 to rounds do
    submit_round r
  done;
  for _ = 1 to rounds * List.length names do
    match Server.Dispatcher.next d with
    | Some r -> lats := r.Server.Dispatcher.r_latency :: !lats
    | None -> ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  ignore (Server.Dispatcher.drain d);
  rm_rf out_dir;
  let sorted = Array.of_list (List.sort compare !lats) in
  let q p =
    if Array.length sorted = 0 then 0.
    else
      sorted.(min
                (Array.length sorted - 1)
                (int_of_float (p *. float_of_int (Array.length sorted))))
  in
  let jobs = rounds * List.length names in
  ( (if wall > 0. then float_of_int jobs /. wall else 0.),
    q 0.50 *. 1e3,
    q 0.99 *. 1e3,
    wall,
    runner.Server.Job.warm_stats () )

let e12 () =
  section "E12"
    "Replay farm: batch record throughput vs shard count, cold vs warm";
  let base = batch_under ~warm:false 1 in
  Fmt.pr "%-8s %12s %12s %12s %10s %10s@." "shards" "cold jobs/s"
    "warm jobs/s" "sustained" "p50 ms" "p99 ms";
  let sus1 = ref 0. and sus4 = ref 0. in
  List.iter
    (fun shards ->
      let cold = if shards = 1 then base else batch_under ~warm:false shards in
      let w = batch_under ~warm:true shards in
      let sus_jps, p50, p99, _, _ = warm_sustained ~shards ~rounds:3 in
      if shards = 1 then sus1 := sus_jps;
      if shards = 4 then sus4 := sus_jps;
      Fmt.pr "%-8d %12.1f %12.1f %12.1f %10.1f %10.1f%s@." shards
        cold.Server.Batch.jobs_per_s w.Server.Batch.jobs_per_s sus_jps p50 p99
        (if
           w.Server.Batch.aggregate = base.Server.Batch.aggregate
           && cold.Server.Batch.aggregate = base.Server.Batch.aggregate
         then "  (digest = sequential)"
         else "  AGGREGATE MISMATCH"))
    [ 1; 2; 4 ];
  Fmt.pr "warm sustained speedup 4v1: %.2f@."
    (if !sus1 > 0. then !sus4 /. !sus1 else 0.)

(* Sustained-load serving: an open-loop multi-client driver against a live
   [dvrun serve] farm. Each client domain paces its submissions at a fixed
   arrival rate — independent of completions, so queueing delay shows up in
   the latency tail instead of throttling the offered load — and the
   reported p50/p99 are exact quantiles over server-side job latencies. *)
let serve_load ~shards ~clients ~per_client ~rate_hz =
  Server.Job.preload ();
  let tmp = Filename.get_temp_dir_name () in
  let sock = Filename.concat tmp (Fmt.str "dv-bench-%d.sock" (Unix.getpid ())) in
  let out_dir = Filename.concat tmp (Fmt.str "dv-bench-serve-%d" (Unix.getpid ())) in
  let srv = Server.Serve.create ~shards ~socket_path:sock ~out_dir () in
  let server = Domain.spawn (fun () -> Server.Serve.serve ~max_conns:clients srv) in
  let names = Array.of_list (Workloads.Registry.names ()) in
  let gap = 1. /. rate_hz in
  let t0 = Unix.gettimeofday () in
  let client i =
    Domain.spawn (fun () ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            for k = 0 to per_client - 1 do
              Server.Protocol.write_request oc
                (Server.Protocol.Submit
                   {
                     q_op = Server.Protocol.Op_record;
                     q_workload = names.(((i * 7) + k) mod Array.length names);
                     q_seed = 1;
                     q_trace = "";
                     q_deadline_ms = 0;
                     q_max_retries = 0;
                   });
              flush oc;
              Unix.sleepf gap
            done;
            Server.Protocol.write_request oc Server.Protocol.Finish;
            let rec collect acc =
              match Server.Protocol.read_reply ic with
              | None -> List.rev acc
              | Some r -> collect (r :: acc)
            in
            collect []))
  in
  let doms = List.init clients client in
  let replies = List.concat_map Domain.join doms in
  let wall = Unix.gettimeofday () -. t0 in
  Server.Serve.shutdown srv;
  Domain.join server;
  rm_rf out_dir;
  let lats =
    List.map (fun (r : Server.Protocol.reply) -> r.p_latency_us) replies
  in
  let sorted = Array.of_list (List.sort compare lats) in
  let q p =
    if Array.length sorted = 0 then 0.
    else
      float_of_int
        sorted.(min
                  (Array.length sorted - 1)
                  (int_of_float (p *. float_of_int (Array.length sorted))))
      /. 1e3
  in
  let done_ =
    List.length
      (List.filter (fun (r : Server.Protocol.reply) -> r.p_outcome = 0) replies)
  in
  ( (if wall > 0. then float_of_int (List.length replies) /. wall else 0.),
    q 0.50,
    q 0.99,
    done_,
    List.length replies )

let e13 () =
  section "E13" "Sustained-load serving: open-loop multi-client driver";
  let jps, p50, p99, done_, total =
    serve_load ~shards:4 ~clients:3 ~per_client:21 ~rate_hz:400.
  in
  Fmt.pr
    "3 clients x 21 record jobs at 400 Hz offered, 4 shards:@\n\
     %d/%d done, %.1f jobs/s, p50 %.1f ms, p99 %.1f ms@."
    done_ total jps p50 p99

(* CI gate: the 2-shard warm aggregate must equal the 1-shard one (and
   every job must succeed) — the cheap end-to-end proof that sharding plus
   warm reuse never changes results. *)
let farm_smoke () =
  section "farm-smoke" "2-shard vs 1-shard aggregate digest (warm, 2 rounds)";
  let b1 = batch_under ~warm:true ~rounds:2 1 in
  let b2 = batch_under ~warm:true ~rounds:2 2 in
  let ok =
    b1.Server.Batch.ok && b2.Server.Batch.ok
    && b1.Server.Batch.aggregate = b2.Server.Batch.aggregate
  in
  Fmt.pr "1 shard : %s (%s)@\n2 shards: %s (%s)@\n%s@." b1.Server.Batch.aggregate
    (if b1.Server.Batch.ok then "all done" else "FAILURES")
    b2.Server.Batch.aggregate
    (if b2.Server.Batch.ok then "all done" else "FAILURES")
    (if ok then "farm-smoke PASS" else "farm-smoke FAIL");
  if not ok then exit 1

(* CI gate: the register tier must be invisible — byte-identical traces,
   identical state digests, and identical event sequences vs the stack
   tier, across the whole registry — and it must pay for itself: any
   workload long enough to time reliably (>= 200k instructions) must run
   at >= 0.95x of the stack tier's live throughput. The monitor-heavy
   workloads additionally cross-replay: a trace recorded under one tier
   must replay to the same digests under the other. *)
let regir_smoke () =
  section "regir-smoke"
    "register vs stack tier: trace/digest identity + speedup floor";
  let noregir = { Vm.Rt.default_config with Vm.Rt.regir = false } in
  let failures = ref 0 in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let r_on, t_on = Dejavu.record ~natives:e.natives ~seed:1 e.program in
      let r_off, t_off =
        Dejavu.record ~config:noregir ~natives:e.natives ~seed:1 e.program
      in
      let traces_eq =
        String.equal (Dejavu.Trace.to_bytes t_on) (Dejavu.Trace.to_bytes t_off)
      in
      let ok =
        traces_eq
        && r_on.Dejavu.state_digest = r_off.Dejavu.state_digest
        && r_on.Dejavu.obs_digest = r_off.Dejavu.obs_digest
        && r_on.Dejavu.obs_count = r_off.Dejavu.obs_count
      in
      (* live on/off speedup, best of 3 interleaved reps so slow phases
         of the bench process hit both tiers alike *)
      let one ?config () =
        time (fun () ->
            let vm, _ =
              Vm.execute ?config ~natives:e.natives ~seed:1 e.program
            in
            (Vm.stats vm).n_instr)
      in
      let best_on = ref infinity and best_off = ref infinity and n = ref 0 in
      for _ = 1 to 3 do
        let (i : int), on_t = one () in
        let _, off_t = one ~config:noregir () in
        n := i;
        if on_t < !best_on then best_on := on_t;
        if off_t < !best_off then best_off := off_t
      done;
      let speedup = if !best_on > 0. then !best_off /. !best_on else 1. in
      let timed = !n >= 200_000 in
      let slow = timed && speedup < 0.95 in
      if not ok || slow then incr failures;
      Fmt.pr "%-24s %s  %s@." e.name
        (if ok then "identical"
         else
           Fmt.str "DIFFER (trace %b, state %b, events %b, %d vs %d)" traces_eq
             (r_on.Dejavu.state_digest = r_off.Dejavu.state_digest)
             (r_on.Dejavu.obs_digest = r_off.Dejavu.obs_digest)
             r_on.Dejavu.obs_count r_off.Dejavu.obs_count)
        (if not timed then Fmt.str "%.2fx (untimed, %d instrs)" speedup !n
         else if slow then Fmt.str "%.2fx SLOW (< 0.95x floor)" speedup
         else Fmt.str "%.2fx" speedup))
    (Lazy.force Workloads.Registry.all);
  (* cross-tier replay on the monitor-heavy workloads: monitor-spanning
     regions must not leak into the trace in either direction *)
  List.iter
    (fun name ->
      match Workloads.Registry.find name with
      | None -> ()
      | Some e ->
        let check ~rec_cfg ~rep_cfg label =
          let r, trace =
            Dejavu.record ~config:rec_cfg ~natives:e.natives ~seed:1 e.program
          in
          let rp, leftovers =
            Dejavu.replay ~config:rep_cfg ~natives:e.natives e.program trace
          in
          let ok =
            leftovers = []
            && r.Dejavu.state_digest = rp.Dejavu.state_digest
            && r.Dejavu.obs_digest = rp.Dejavu.obs_digest
            && r.Dejavu.obs_count = rp.Dejavu.obs_count
          in
          if not ok then incr failures;
          Fmt.pr "cross-replay %-18s %-14s %s@." e.name label
            (if ok then "ok"
             else
               Fmt.str "FAIL (drained %b, state %b, events %b)"
                 (leftovers = [])
                 (r.Dejavu.state_digest = rp.Dejavu.state_digest)
                 (r.Dejavu.obs_digest = rp.Dejavu.obs_digest))
        in
        check ~rec_cfg:Vm.Rt.default_config ~rep_cfg:noregir "regir->stack";
        check ~rec_cfg:noregir ~rep_cfg:Vm.Rt.default_config "stack->regir")
    [ "producer-consumer"; "lock-cycle" ];
  Fmt.pr "%s@."
    (if !failures = 0 then "regir-smoke PASS" else "regir-smoke FAIL");
  if !failures > 0 then exit 1

(* ------------------------------------------------------------------ E14 *)

(* Systematic schedule exploration (lib/explore): DFS throughput, the
   DPOR pruning ratio against the unpruned bounded search, and time to
   the first fault. Wall-clock, not CPU time — a search is a sequence of
   whole-VM runs and the headline number a user waits on. *)
let wall_time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let explore_measure (e : Workloads.Registry.entry) =
  (* the oracle is memoized per workload; build it outside the timers *)
  ignore (Explore.Oracle.for_entry e);
  let on, t_on =
    wall_time (fun () -> Explore.Driver.run ~pb:2 ~db:1 ~dpor:true e)
  in
  let off, t_off =
    wall_time (fun () -> Explore.Driver.run ~pb:2 ~db:1 ~dpor:false e)
  in
  let _, t_first =
    wall_time (fun () ->
        Explore.Driver.run ~pb:2 ~db:1 ~dpor:true ~stop_on_failure:true e)
  in
  (on, t_on, off, t_off, t_first)

let cut_ratio (on : Explore.Driver.report) (off : Explore.Driver.report) =
  1.
  -. float_of_int on.Explore.Driver.rp_explored
     /. float_of_int (max 1 off.Explore.Driver.rp_explored)

let e14 () =
  section "E14" "Systematic schedule exploration: DPOR vs unpruned DFS";
  List.iter
    (fun name ->
      let on, t_on, off, t_off, t_first = explore_measure (entry name) in
      Fmt.pr
        "%-12s dpor %4d schedules (%5d pruned) %.2fs | unpruned %4d %.2fs \
         (%.0f%% cut) | first fault #%s in %.0f ms, outcomes %d vs %d@."
        name on.Explore.Driver.rp_explored on.Explore.Driver.rp_pruned t_on
        off.Explore.Driver.rp_explored t_off
        (100. *. cut_ratio on off)
        (match on.Explore.Driver.rp_first_failure_at with
        | Some k -> string_of_int k
        | None -> "-")
        (t_first *. 1e3) on.Explore.Driver.rp_digests
        off.Explore.Driver.rp_digests)
    [ "atomicity"; "lock-cycle" ]

(* ---------------------------------------------------------------- json *)

(* Machine-readable perf trajectory: per-workload instrs/sec for live,
   record, and replay plus trace sizes, kept in BENCH_interp.json so a
   checked-in history of dispatch-loop performance accumulates PR over PR.
   The file is a JSON array of {pr, date, workloads} points; each --json
   run APPENDS a point rather than overwriting the history (a pre-history
   single-object file is wrapped as point 1 on first append). The pr number
   is inferred from the number of existing points, or forced with --pr=N.
   The registry workloads match E6 (short runs, VM setup included); the
   -XL entries are scaled up so the steady-state dispatch rate dominates
   setup noise. No JSON library in the tree — the writer is hand-rolled. *)
let json_out = "BENCH_interp.json"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The text of the existing points (everything between the outer brackets),
   or [None] for no/empty history. A legacy single-object file — the format
   before the trajectory became an array — is wrapped as point 1, dated by
   the PR-1 commit. *)
let prior_points () =
  if not (Sys.file_exists json_out) then None
  else
    let s = String.trim (read_file json_out) in
    let len = String.length s in
    if len = 0 then None
    else if s.[0] = '[' then Some (String.trim (String.sub s 1 (len - 2)))
    else
      (* "{ body }" -> "{ pr/date, body }" *)
      let body = String.sub s 1 (len - 2) in
      Some (Fmt.str "{\n  \"pr\": 1,\n  \"date\": \"2026-08-05\",%s}" body)

let count_points s =
  (* one "pr" key per point *)
  let n = ref 0 in
  let key = "\"pr\":" in
  let klen = String.length key in
  for i = 0 to String.length s - klen do
    if String.sub s i klen = key then incr n
  done;
  !n

let json_workloads () =
  let xl name program = (name, program, []) in
  List.map
    (fun (name, (e : Workloads.Registry.entry)) -> (name, e.program, e.natives))
    overhead_workloads
  @ [
      xl "primes-XL" (Workloads.Compute.primes ~n:30000 ());
      xl "parsum-XL" (Workloads.Compute.parsum ~threads:4 ~size:200000 ());
    ]

let json () =
  section "json" ("perf trajectory -> " ^ json_out);
  let prior = prior_points () in
  let pr =
    let forced =
      Array.fold_left
        (fun acc a ->
          match acc with
          | Some _ -> acc
          | None ->
            if String.length a > 5 && String.sub a 0 5 = "--pr=" then
              int_of_string_opt (String.sub a 5 (String.length a - 5))
            else None)
        None Sys.argv
    in
    match forced with
    | Some n -> n
    | None -> (match prior with None -> 1 | Some s -> count_points s + 1)
  in
  let date =
    let t = Unix.localtime (Unix.time ()) in
    Fmt.str "%04d-%02d-%02d" (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1)
      t.Unix.tm_mday
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str "{\n  \"pr\": %d,\n  \"date\": %S,\n" pr date);
  Buffer.add_string buf "  \"bench\": \"interp-dispatch\",\n";
  Buffer.add_string buf "  \"units\": \"instructions_per_cpu_second\",\n";
  Buffer.add_string buf "  \"observer\": \"detached\",\n  \"workloads\": {\n";
  let n_total = List.length (json_workloads ()) in
  List.iteri
    (fun i (name, program, natives) ->
      let (live_n, live_t), (rec_n, rec_t), (rep_n, rep_t), sizes =
        measure_modes ~natives ~program ()
      in
      (* static race-audit cost, from scratch (the recorder itself hits the
         memoized Dejavu.Audit cache, so recording pays this only once) *)
      let report, lint_t = time (fun () -> Analysis.run ~name program) in
      Fmt.pr
        "%-14s live %.2f record %.2f replay %.2f Mi/s lint %.1f ms (mhp %.1f \
         dl %.1f) conflicts %d@."
        name
        (rate live_n live_t /. 1e6)
        (rate rec_n rec_t /. 1e6)
        (rate rep_n rep_t /. 1e6)
        (lint_t *. 1e3) report.Analysis.Report.mhp_ms
        report.Analysis.Report.deadlock_ms
        report.Analysis.Report.n_conflict_pairs;
      Buffer.add_string buf
        (Fmt.str
           "    %S: {\n\
           \      \"n_instr\": %d,\n\
           \      \"live_ips\": %.0f,\n\
           \      \"record_ips\": %.0f,\n\
           \      \"replay_ips\": %.0f,\n\
           \      \"lint_ms\": %.2f,\n\
           \      \"mhp_ms\": %.2f,\n\
           \      \"deadlock_ms\": %.2f,\n\
           \      \"conflict_pairs\": %d,\n\
           \      \"deadlock_cycles\": %d,\n\
           \      \"trace_words\": %d,\n\
           \      \"trace_bytes\": %d\n\
           \    }%s\n"
           name live_n (rate live_n live_t) (rate rec_n rec_t)
           (rate rep_n rep_t) (lint_t *. 1e3) report.Analysis.Report.mhp_ms
           report.Analysis.Report.deadlock_ms
           report.Analysis.Report.n_conflict_pairs
           (List.length report.Analysis.Report.deadlocks)
           sizes.Dejavu.Trace.total_words sizes.Dejavu.Trace.total_bytes
           (if i = n_total - 1 then "" else ",")))
    (json_workloads ());
  Buffer.add_string buf "  },\n";
  (* replay-farm batch throughput: whole registry recorded under 1 and 4
     shards, cold (a VM per job — comparable with the PR-4/5 trajectory)
     and warm (shard pools of baseline-reset VMs). The headline
     speedup_4v1 is the warm steady-state ratio (untimed warm-up round,
     then timed rounds on resets only, exact quantiles); the cold ratio is
     kept alongside it. *)
  let batch_json ?(warm = false) shards =
    let rep = batch_under ~warm shards in
    Fmt.pr
      "batch %d shard(s)%s: %.1f jobs/s (p50 <= %.1f ms, p99 <= %.1f ms)@."
      shards
      (if warm then " warm" else "")
      rep.Server.Batch.jobs_per_s
      (rep.Server.Batch.stats.Server.Stats.v_p50 *. 1e3)
      (rep.Server.Batch.stats.Server.Stats.v_p99 *. 1e3);
    rep
  in
  let b1 = batch_json 1 in
  let b4 = batch_json 4 in
  let w1 = batch_json ~warm:true 1 in
  let w4 = batch_json ~warm:true 4 in
  let s1_jps, s1_p50, s1_p99, _, _ = warm_sustained ~shards:1 ~rounds:6 in
  let s4_jps, s4_p50, s4_p99, _, _ = warm_sustained ~shards:4 ~rounds:6 in
  Fmt.pr "warm sustained: 1 shard %.1f jobs/s, 4 shards %.1f jobs/s@." s1_jps
    s4_jps;
  let sv_jps, sv_p50, sv_p99, sv_done, sv_total =
    serve_load ~shards:4 ~clients:3 ~per_client:21 ~rate_hz:400.
  in
  Fmt.pr "serve load: %d/%d done, %.1f jobs/s@." sv_done sv_total sv_jps;
  let batch_field key (rep : Server.Batch.report) last =
    Buffer.add_string buf
      (Fmt.str
         "    %S: {\n\
         \      \"jobs\": %d,\n\
         \      \"wall_s\": %.3f,\n\
         \      \"jobs_per_s\": %.2f,\n\
         \      \"p50_ms\": %.2f,\n\
         \      \"p99_ms\": %.2f\n\
         \    }%s\n"
         key (List.length rep.Server.Batch.rows) rep.Server.Batch.wall_s
         rep.Server.Batch.jobs_per_s
         (rep.Server.Batch.stats.Server.Stats.v_p50 *. 1e3)
         (rep.Server.Batch.stats.Server.Stats.v_p99 *. 1e3)
         (if last then "" else ","))
  in
  let sustained_field key (jps, p50, p99) last =
    Buffer.add_string buf
      (Fmt.str
         "    %S: { \"jobs_per_s\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": \
          %.2f }%s\n"
         key jps p50 p99
         (if last then "" else ","))
  in
  Buffer.add_string buf "  \"batch\": {\n";
  batch_field "shards_1" b1 false;
  batch_field "shards_4" b4 false;
  batch_field "warm_shards_1" w1 false;
  batch_field "warm_shards_4" w4 false;
  sustained_field "warm_sustained_1" (s1_jps, s1_p50, s1_p99) false;
  sustained_field "warm_sustained_4" (s4_jps, s4_p50, s4_p99) false;
  Buffer.add_string buf
    (Fmt.str
       "    \"speedup_4v1\": %.2f,\n\
       \    \"speedup_4v1_cold\": %.2f,\n\
       \    \"warm_vs_cold_1shard\": %.2f,\n\
       \    \"digests_equal\": %b\n"
       (if s1_jps > 0. then s4_jps /. s1_jps else 0.)
       (if b4.Server.Batch.wall_s > 0. then
          b1.Server.Batch.wall_s /. b4.Server.Batch.wall_s
        else 0.)
       (if b1.Server.Batch.jobs_per_s > 0. then
          w1.Server.Batch.jobs_per_s /. b1.Server.Batch.jobs_per_s
        else 0.)
       (b1.Server.Batch.aggregate = b4.Server.Batch.aggregate
       && b1.Server.Batch.aggregate = w1.Server.Batch.aggregate
       && b1.Server.Batch.aggregate = w4.Server.Batch.aggregate));
  Buffer.add_string buf "  },\n";
  (* register-tier differential: live throughput with the tier off (the
     on-numbers are the workloads block above) and the fraction of
     instructions the register tier executed when on *)
  let noregir = { Vm.Rt.default_config with Vm.Rt.regir = false } in
  (* on/off reps are interleaved so slow phases of the (long-running)
     bench process hit both tiers alike instead of biasing one *)
  let live_pair ~natives program =
    let one ?config () =
      time (fun () ->
          let vm, _ = Vm.execute ?config ~natives ~seed:1 program in
          (Vm.stats vm).n_instr)
    in
    (* untimed warmup pairs first (see measure_modes), then best-of with
       extra reps for the short monitor-heavy workloads: they run well
       under a millisecond, so the ratio needs more samples to shake
       phase noise *)
    let (n0 : int), _ = one () in
    ignore (one ~config:noregir ());
    for _ = 1 to 2 do
      ignore (one ());
      ignore (one ~config:noregir ())
    done;
    let reps = if n0 < 50_000 then 15 else 9 in
    let best_on = ref infinity and best_off = ref infinity and n = ref 0 in
    for _ = 1 to reps do
      let (i : int), t_on = one () in
      let _, t_off = one ~config:noregir () in
      n := i;
      if t_on < !best_on then best_on := t_on;
      if t_off < !best_off then best_off := t_off
    done;
    (rate !n !best_on, rate !n !best_off)
  in
  let regir_rows =
    List.map
      (fun (name, (e : Workloads.Registry.entry)) ->
        let on, off = live_pair ~natives:e.natives e.program in
        let vm, _ = Vm.execute ~natives:e.natives ~seed:1 e.program in
        let s = Vm.stats vm in
        let frac =
          float_of_int s.Vm.Rt.n_regir_instr /. float_of_int (max 1 s.n_instr)
        in
        let mon_frac =
          float_of_int s.Vm.Rt.n_regir_mon
          /. float_of_int (max 1 s.Vm.Rt.n_monitor_ops)
        in
        Fmt.pr
          "regir %-20s on %.2f off %.2f Mi/s (%.2fx, %.0f%% covered, %.0f%% \
           mon-in-region, %d inline)@."
          name (on /. 1e6) (off /. 1e6)
          (if on > 0. then on /. off else 0.)
          (frac *. 100.) (mon_frac *. 100.) s.Vm.Rt.n_regir_inline;
        (name, on, off, frac, mon_frac, s.Vm.Rt.n_regir_inline))
      overhead_workloads
  in
  let geo f =
    exp
      (List.fold_left (fun acc r -> acc +. log (f r)) 0. regir_rows
      /. float_of_int (List.length regir_rows))
  in
  (* isolated clock cost: a tight single-threaded loop with the virtual
     clock compiled out vs on — (t_on - t_off) / instrs. The no-clock
     mode is a bench-only probe; nothing observable runs under it. *)
  let clock_ns =
    let e = entry "primes" in
    let noclock = { Vm.Rt.default_config with Vm.Rt.clock = false } in
    let one ?config () =
      time (fun () ->
          let vm, _ = Vm.execute ?config ~natives:e.natives ~seed:1 e.program in
          (Vm.stats vm).n_instr)
    in
    let b_on = ref infinity and b_off = ref infinity and n = ref 0 in
    for _ = 1 to 5 do
      let (i : int), t_on = one () in
      let _, t_off = one ~config:noclock () in
      n := i;
      if t_on < !b_on then b_on := t_on;
      if t_off < !b_off then b_off := t_off
    done;
    Float.max 0. ((!b_on -. !b_off) /. float_of_int (max 1 !n) *. 1e9)
  in
  Fmt.pr "regir clock cost: %.3f ns/instr (primes, clock on vs compiled out)@."
    clock_ns;
  Buffer.add_string buf "  \"regir\": {\n";
  Buffer.add_string buf
    (Fmt.str "    \"clock_ns_per_instr\": %.3f,\n" clock_ns);
  List.iter
    (fun (name, on, off, frac, mon_frac, inl) ->
      Buffer.add_string buf
        (Fmt.str
           "    %S: { \"live_ips_off\": %.0f, \"speedup\": %.3f, \
            \"coverage\": %.3f, \"mon_region_frac\": %.3f, \
            \"inline_splices\": %d },\n"
           name off
           (if off > 0. then on /. off else 0.)
           frac mon_frac inl))
    regir_rows;
  Buffer.add_string buf
    (Fmt.str
       "    \"geomean_speedup\": %.3f,\n    \"geomean_coverage\": %.3f\n  },\n"
       (geo (fun (_, on, off, _, _, _) -> if off > 0. then on /. off else 1.))
       (geo (fun (_, _, _, frac, _, _) -> Float.max frac 1e-9)));
  (* schedule-exploration trajectory: throughput and DPOR efficiency of
     the bounded DFS on the seeded atomicity bug (pb 2, db 1) *)
  let ex_on, ex_t_on, ex_off, _, ex_t_first =
    explore_measure (entry "atomicity")
  in
  Fmt.pr
    "explore atomicity: %d schedules (%d pruned, %.0f%% cut), first fault in \
     %.0f ms@."
    ex_on.Explore.Driver.rp_explored ex_on.Explore.Driver.rp_pruned
    (100. *. cut_ratio ex_on ex_off)
    (ex_t_first *. 1e3);
  Buffer.add_string buf
    (Fmt.str
       "  \"explore\": {\n\
       \    \"workload\": \"atomicity\",\n\
       \    \"pb\": 2,\n\
       \    \"db\": 1,\n\
       \    \"schedules\": %d,\n\
       \    \"schedules_nodpor\": %d,\n\
       \    \"pruned\": %d,\n\
       \    \"schedules_per_s\": %.1f,\n\
       \    \"pruned_ratio\": %.3f,\n\
       \    \"first_failure_at\": %d,\n\
       \    \"time_to_first_failure_ms\": %.2f\n\
       \  },\n"
       ex_on.Explore.Driver.rp_explored ex_off.Explore.Driver.rp_explored
       ex_on.Explore.Driver.rp_pruned
       (if ex_t_on > 0. then
          float_of_int ex_on.Explore.Driver.rp_explored /. ex_t_on
        else 0.)
       (cut_ratio ex_on ex_off)
       (match ex_on.Explore.Driver.rp_first_failure_at with
       | Some k -> k
       | None -> -1)
       (ex_t_first *. 1e3));
  Buffer.add_string buf
    (Fmt.str
       "  \"serve_load\": {\n\
       \    \"shards\": 4,\n\
       \    \"clients\": 3,\n\
       \    \"offered_hz\": 400,\n\
       \    \"jobs\": %d,\n\
       \    \"done\": %d,\n\
       \    \"jobs_per_s\": %.2f,\n\
       \    \"p50_ms\": %.2f,\n\
       \    \"p99_ms\": %.2f\n\
       \  }\n\
        }"
       sv_total sv_done sv_jps sv_p50 sv_p99);
  let point = Buffer.contents buf in
  let oc = open_out json_out in
  (match prior with
  | None -> output_string oc (Fmt.str "[\n%s\n]\n" point)
  | Some pts -> output_string oc (Fmt.str "[\n%s,\n%s\n]\n" pts point));
  close_out oc;
  Fmt.pr "appended point %d (pr %d) to %s@."
    (match prior with None -> 1 | Some s -> count_points s + 1)
    pr json_out

(* -------------------------------------------------------------- driver *)

let all : (string * string * (unit -> unit)) list =
  [
    ("E1", "figure 1 A/B", e1);
    ("E2", "figure 1 C/D", e2);
    ("E3", "figure 2 symmetry", e3);
    ("E4", "remote reflection", e4);
    ("E5", "replay accuracy", e5);
    ("E6", "overhead", e6);
    ("E7", "trace size", e7);
    ("E8", "instruction counting", e8);
    ("E9", "ablations", e9);
    ("E10", "time travel", e10);
    ("E11", "symmetry ablation", e11);
    ("E12", "replay farm batch throughput, cold vs warm", e12);
    ("E13", "sustained-load serving (open-loop clients)", e13);
    ("E14", "systematic schedule exploration (DPOR vs unpruned)", e14);
    ("micro", "bechamel microbenches", micro);
    ("farm-smoke", "CI: sharded+warm aggregate digest equality", farm_smoke);
    ("regir-smoke", "CI: register vs stack tier trace/digest identity", regir_smoke);
    ("--json", "write the BENCH_interp.json perf trajectory", json);
  ]

let () =
  let want = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  let selected =
    if want = [] then
      List.filter
        (fun (id, _, _) ->
          id <> "micro" && id <> "--json" && id <> "farm-smoke"
          && id <> "regir-smoke")
        all
    else List.filter (fun (id, _, _) -> List.mem id want) all
  in
  if selected = [] then begin
    Fmt.epr "unknown experiment; available: %s@."
      (String.concat " " (List.map (fun (id, _, _) -> id) all));
    exit 2
  end;
  Fmt.pr "DejaVu reproduction experiments (see DESIGN.md section 4)@.";
  List.iter (fun (_, _, f) -> f ()) selected
