(* Whole-machine checkpoints: restoring one must put the VM back on the
   exact deterministic timeline — same digests, same continuation. *)

open Tutil

let run_steps vm n =
  let k = ref 0 in
  while Vm.status vm = Vm.Rt.Running_ && !k < n do
    Vm.step vm;
    incr k
  done

let test_save_restore_roundtrip () =
  let p = Workloads.Counters.racy ~threads:3 ~increments:150 () in
  let vm = Vm.create p in
  Vm.boot vm;
  run_steps vm 8000;
  let ck = Vm.Snapshot.save vm in
  let digest_at_save = Vm.digest vm in
  run_steps vm 5000;
  Alcotest.(check bool) "moved on" true (Vm.digest vm <> digest_at_save);
  Vm.Snapshot.restore vm ck;
  Alcotest.(check int) "state restored exactly" digest_at_save (Vm.digest vm)

let test_restore_continues_identically () =
  let p = Workloads.Producer_consumer.program ~trace_order:false () in
  let vm = Vm.create p in
  Vm.boot vm;
  run_steps vm 3000;
  let ck = Vm.Snapshot.save vm in
  ignore (Vm.run vm);
  let final_a = (Vm.output vm, Vm.digest vm) in
  Vm.Snapshot.restore vm ck;
  ignore (Vm.run vm);
  let final_b = (Vm.output vm, Vm.digest vm) in
  Alcotest.(check string) "same output" (fst final_a) (fst final_b);
  Alcotest.(check int) "same final state" (snd final_a) (snd final_b)

let test_restore_across_gc () =
  (* collections (which move every object and flip semispaces) between save
     and restore must not matter *)
  let p = Workloads.Gc_churn.program ~threads:2 ~rounds:25 ~nodes:80 () in
  let cfg = { Vm.Rt.default_config with heap_words = 6000 } in
  let vm = Vm.create ~config:cfg p in
  Vm.boot vm;
  run_steps vm 20000;
  let gcs_at_save = (Vm.stats vm).n_gc in
  let ck = Vm.Snapshot.save vm in
  let digest_at_save = Vm.digest vm in
  run_steps vm 120000;
  Alcotest.(check bool) "gc ran after save" true ((Vm.stats vm).n_gc > gcs_at_save);
  Vm.Snapshot.restore vm ck;
  Alcotest.(check int) "restored across gc" digest_at_save (Vm.digest vm);
  ignore (Vm.run vm);
  let vm2, _ = run ~config:cfg ~seed:1 p in
  Alcotest.(check string) "continuation equals straight run" (Vm.output vm2)
    (Vm.output vm)

let test_restore_unwinds_spawn_and_classinit () =
  (* threads spawned and classes initialized after the checkpoint must be
     forgotten by the restore *)
  let p = Workloads.Fig1.ab () in
  let vm = Vm.create p in
  Vm.boot vm;
  run_steps vm 2 (* before the spawns *);
  let ck = Vm.Snapshot.save vm in
  let threads_at_save = vm.Vm.Rt.n_threads in
  ignore (Vm.run vm);
  Alcotest.(check bool) "spawned since" true (vm.Vm.Rt.n_threads > threads_at_save);
  Vm.Snapshot.restore vm ck;
  Alcotest.(check int) "thread table rolled back" threads_at_save
    vm.Vm.Rt.n_threads;
  ignore (Vm.run vm);
  let vm2, _ = run ~seed:1 p in
  Alcotest.(check string) "same outcome after rollback" (Vm.output vm2)
    (Vm.output vm)

let test_checkpointed_time_travel_matches_replay_from_scratch () =
  let e = Option.get (Workloads.Registry.find "racy-counter") in
  let _, trace = Dejavu.record ~natives:e.natives ~seed:2 e.program in
  (* session A: checkpoints every 10k steps; session B: none *)
  let a = Debugger.Session.start ~natives:e.natives ~checkpoint_interval:10_000 e.program trace in
  let b = Debugger.Session.start ~natives:e.natives ~checkpoint_interval:0 e.program trace in
  ignore (Debugger.Session.step a 60_000);
  ignore (Debugger.Session.step b 60_000);
  (* travel back *)
  ignore (Debugger.Session.goto_step a 35_000);
  ignore (Debugger.Session.goto_step b 35_000);
  Alcotest.(check int) "same state at step 35000"
    (Debugger.Session.state_digest b)
    (Debugger.Session.state_digest a);
  Alcotest.(check bool) "A used a checkpoint restore" true (a.restores > 0);
  Alcotest.(check bool) "A kept checkpoints" true (List.length a.checkpoints > 0);
  (* and both finish identically *)
  ignore (Debugger.Session.continue_ a);
  ignore (Debugger.Session.continue_ b);
  Alcotest.(check string) "same final output" (Debugger.Session.output b)
    (Debugger.Session.output a)

let test_session_snapshot_tapes () =
  (* the session snapshot restores tape cursors so replay re-consumes the
     same events after a rollback *)
  let e = Option.get (Workloads.Registry.find "timed") in
  let _, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let d = Debugger.Session.start ~natives:e.natives ~checkpoint_interval:100 e.program trace in
  ignore (Debugger.Session.step d 300);
  let clocks_cursor (s : Dejavu.Session.t) = s.clocks.Dejavu.Tape.rd in
  let cur_at_300 = clocks_cursor d.session in
  ignore (Debugger.Session.step d 150);
  ignore (Debugger.Session.goto_step d 300);
  Alcotest.(check int) "clock tape cursor restored" cur_at_300
    (clocks_cursor d.session);
  ignore (Debugger.Session.continue_ d);
  Alcotest.check status_testable "finished" Vm.Rt.Finished
    (Vm.status d.vm)

let () =
  Alcotest.run "snapshot"
    [
      ( "vm",
        [
          quick "save/restore roundtrip" test_save_restore_roundtrip;
          quick "restore continues identically" test_restore_continues_identically;
          quick "restore across gc" test_restore_across_gc;
          quick "rolls back spawns and class init" test_restore_unwinds_spawn_and_classinit;
        ] );
      ( "time-travel",
        [
          quick "checkpointed = from-scratch" test_checkpointed_time_travel_matches_replay_from_scratch;
          quick "session tapes restored" test_session_snapshot_tapes;
        ] );
    ]
