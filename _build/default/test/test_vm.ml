(* Interpreter semantics: arithmetic, control flow, objects, arrays,
   strings, dispatch, class initialization, natives, printing. *)

open Tutil

(* run a body in main and compare printed output *)
let body_prints ?statics ?fields ?extra_classes ?nlocals body expected =
  expect_output (main_prog ?statics ?fields ?extra_classes ?nlocals body) expected

let pr = [ i I.Print ]

(* --- arithmetic -------------------------------------------------------- *)

let arith_case _name lhs rhs op expected () =
  body_prints ([ i (I.Const lhs); i (I.Const rhs); i op ] @ pr @ [ i I.Ret ])
    (printed [ expected ])

let test_division_semantics () =
  body_prints
    [ i (I.Const (-7)); i (I.Const 2); i I.Div; i I.Print; i I.Ret ]
    (printed [ -3 ]);
  body_prints
    [ i (I.Const (-7)); i (I.Const 2); i I.Rem; i I.Print; i I.Ret ]
    (printed [ -1 ])

let test_neg () =
  body_prints [ i (I.Const 5); i I.Neg; i I.Print; i I.Ret ] (printed [ -5 ])

let test_shifts () =
  body_prints
    [ i (I.Const 3); i (I.Const 4); i I.Shl; i I.Print; i I.Ret ]
    (printed [ 48 ]);
  body_prints
    [ i (I.Const (-64)); i (I.Const 3); i I.Shr; i I.Print; i I.Ret ]
    (printed [ -8 ])

(* --- stack ops ---------------------------------------------------------- *)

let test_dup_pop_swap () =
  body_prints
    [ i (I.Const 3); i I.Dup; i I.Add; i I.Print; i I.Ret ]
    (printed [ 6 ]);
  body_prints
    [ i (I.Const 1); i (I.Const 2); i I.Pop; i I.Print; i I.Ret ]
    (printed [ 1 ]);
  body_prints
    [ i (I.Const 1); i (I.Const 2); i I.Swap; i I.Sub; i I.Print; i I.Ret ]
    (printed [ 1 ])

(* --- control flow ------------------------------------------------------- *)

let test_branches () =
  let prog cmp a b =
    main_prog
      [
        i (I.Const a);
        i (I.Const b);
        i (I.If (cmp, "yes"));
        i (I.Const 0);
        i I.Print;
        i I.Ret;
        l "yes";
        i (I.Const 1);
        i I.Print;
        i I.Ret;
      ]
  in
  expect_output (prog I.Lt 1 2) (printed [ 1 ]);
  expect_output (prog I.Lt 2 1) (printed [ 0 ]);
  expect_output (prog I.Eq 5 5) (printed [ 1 ]);
  expect_output (prog I.Ge 5 5) (printed [ 1 ]);
  expect_output (prog I.Gt 5 5) (printed [ 0 ])

let test_loop_sum () =
  (* sum 1..100 = 5050 *)
  body_prints ~nlocals:2
    [
      i (I.Const 0);
      i (I.Store 0);
      i (I.Const 1);
      i (I.Store 1);
      l "loop";
      i (I.Load 1);
      i (I.Const 100);
      i (I.If (I.Gt, "end"));
      i (I.Load 0);
      i (I.Load 1);
      i I.Add;
      i (I.Store 0);
      i (I.Load 1);
      i (I.Const 1);
      i I.Add;
      i (I.Store 1);
      i (I.Goto "loop");
      l "end";
      i (I.Load 0);
      i I.Print;
      i I.Ret;
    ]
    (printed [ 5050 ])

let test_refeq () =
  (* two identical string literals are interned to the same object *)
  body_prints
    [
      i (I.Sconst "abc");
      i (I.Sconst "abc");
      i (I.Ifrefeq "same");
      i (I.Const 0);
      i I.Print;
      i I.Ret;
      l "same";
      i (I.Const 1);
      i I.Print;
      i I.Ret;
    ]
    (printed [ 1 ]);
  body_prints
    [
      i (I.New "Object");
      i (I.New "Object");
      i (I.Ifrefne "diff");
      i (I.Const 0);
      i I.Print;
      i I.Ret;
      l "diff";
      i (I.Const 1);
      i I.Print;
      i I.Ret;
    ]
    (printed [ 1 ])

(* --- objects, fields, statics ------------------------------------------- *)

let test_fields () =
  body_prints ~fields:[ D.field "x"; D.field "y" ] ~nlocals:1
    [
      i (I.New "T");
      i (I.Store 0);
      i (I.Load 0);
      i (I.Const 11);
      i (I.Putfield ("T", "x"));
      i (I.Load 0);
      i (I.Const 22);
      i (I.Putfield ("T", "y"));
      i (I.Load 0);
      i (I.Getfield ("T", "x"));
      i (I.Load 0);
      i (I.Getfield ("T", "y"));
      i I.Add;
      i I.Print;
      i I.Ret;
    ]
    (printed [ 33 ])

let test_field_defaults () =
  body_prints
    ~fields:[ D.field "x"; D.field ~ty:I.Tref "r" ]
    ~nlocals:1
    [
      i (I.New "T");
      i (I.Store 0);
      i (I.Load 0);
      i (I.Getfield ("T", "x"));
      i I.Print;
      i (I.Load 0);
      i (I.Getfield ("T", "r"));
      i (I.Ifnull "isnull");
      i (I.Const 0);
      i I.Print;
      i I.Ret;
      l "isnull";
      i (I.Const 1);
      i I.Print;
      i I.Ret;
    ]
    (printed [ 0; 1 ])

let test_statics () =
  body_prints ~statics:[ D.field "s" ]
    [
      i (I.Const 5);
      i (I.Putstatic ("T", "s"));
      i (I.Getstatic ("T", "s"));
      i (I.Getstatic ("T", "s"));
      i I.Mul;
      i I.Print;
      i I.Ret;
    ]
    (printed [ 25 ])

let test_inherited_fields () =
  let extra =
    [
      D.cdecl "A" ~fields:[ D.field "a" ] [];
      D.cdecl ~super:"A" "B" ~fields:[ D.field "b" ] [];
    ]
  in
  body_prints ~extra_classes:extra ~nlocals:1
    [
      i (I.New "B");
      i (I.Store 0);
      i (I.Load 0);
      i (I.Const 1);
      i (I.Putfield ("A", "a"));
      i (I.Load 0);
      i (I.Const 2);
      i (I.Putfield ("B", "b"));
      i (I.Load 0);
      i (I.Getfield ("A", "a"));
      i (I.Load 0);
      i (I.Getfield ("B", "b"));
      i I.Add;
      i I.Print;
      i I.Ret;
    ]
    (printed [ 3 ])

(* --- arrays -------------------------------------------------------------- *)

let test_arrays () =
  body_prints ~nlocals:1
    [
      i (I.Const 5);
      i (I.Newarray I.Tint);
      i (I.Store 0);
      i (I.Load 0);
      i (I.Const 2);
      i (I.Const 42);
      i I.Astore;
      i (I.Load 0);
      i (I.Const 2);
      i I.Aload;
      i I.Print;
      i (I.Load 0);
      i I.Arraylength;
      i I.Print;
      i (I.Load 0);
      i (I.Const 0);
      i I.Aload;
      i I.Print;
      i I.Ret;
    ]
    (printed [ 42; 5; 0 ])

let test_ref_arrays () =
  body_prints ~nlocals:1
    [
      i (I.Const 2);
      i (I.Newarray (I.Tobj "Object"));
      i (I.Store 0);
      i (I.Load 0);
      i (I.Const 1);
      i (I.New "Object");
      i I.Astore;
      i (I.Load 0);
      i (I.Const 0);
      i I.Aload;
      i (I.Ifnull "ok0");
      i I.Ret;
      l "ok0";
      i (I.Load 0);
      i (I.Const 1);
      i I.Aload;
      i (I.Ifnonnull "ok1");
      i I.Ret;
      l "ok1";
      i (I.Const 7);
      i I.Print;
      i I.Ret;
    ]
    (printed [ 7 ])

let test_nested_arrays () =
  body_prints ~nlocals:2
    [
      i (I.Const 3);
      i (I.Newarray (I.Tarr I.Tint));
      i (I.Store 0);
      i (I.Const 4);
      i (I.Newarray I.Tint);
      i (I.Store 1);
      i (I.Load 1);
      i (I.Const 2);
      i (I.Const 99);
      i I.Astore;
      i (I.Load 0);
      i (I.Const 1);
      i (I.Load 1);
      i I.Astore;
      i (I.Load 0);
      i (I.Const 1);
      i I.Aload;
      i (I.Const 2);
      i I.Aload;
      i I.Print;
      i I.Ret;
    ]
    (printed [ 99 ])

(* --- strings -------------------------------------------------------------- *)

let test_prints () =
  body_prints
    [ i (I.Sconst "hello "); i I.Prints; i (I.Sconst "world\n"); i I.Prints; i I.Ret ]
    "hello world\n"

(* --- calls ---------------------------------------------------------------- *)

let test_static_call () =
  let p =
    prog1
      [
        A.method_ ~args:[ I.Tint; I.Tint ] ~ret:I.Tint ~nlocals:2 "add2"
          [ i (I.Load 0); i (I.Load 1); i I.Add; i I.Retv ];
        main_method
          [
            i (I.Const 20);
            i (I.Const 22);
            i (I.Invoke ("T", "add2"));
            i I.Print;
            i I.Ret;
          ];
      ]
  in
  expect_output p (printed [ 42 ])

let test_virtual_dispatch () =
  let animal m =
    A.method_ ~static:false ~args:[ I.Tobj "Animal" ] ~ret:I.Tint ~nlocals:1
      "noise" m
  in
  let extra =
    [
      D.cdecl "Animal" [ animal [ i (I.Const 0); i I.Retv ] ];
      D.cdecl ~super:"Animal" "Dog" [ animal [ i (I.Const 1); i I.Retv ] ];
      D.cdecl ~super:"Animal" "Cat" [ animal [ i (I.Const 2); i I.Retv ] ];
      D.cdecl ~super:"Dog" "Puppy" [];
    ]
  in
  body_prints ~extra_classes:extra
    [
      i (I.New "Dog");
      i (I.Invoke ("Animal", "noise"));
      i I.Print;
      i (I.New "Cat");
      i (I.Invoke ("Animal", "noise"));
      i I.Print;
      i (I.New "Animal");
      i (I.Invoke ("Animal", "noise"));
      i I.Print;
      i (I.New "Puppy");
      i (I.Invoke ("Animal", "noise"));
      i I.Print;
      i I.Ret;
    ]
    (printed [ 1; 2; 0; 1 ])

let test_recursion () =
  let p =
    prog1
      [
        A.method_ ~args:[ I.Tint ] ~ret:I.Tint ~nlocals:1 "fib"
          [
            i (I.Load 0);
            i (I.Const 2);
            i (I.If (I.Ge, "rec"));
            i (I.Load 0);
            i I.Retv;
            l "rec";
            i (I.Load 0);
            i (I.Const 1);
            i I.Sub;
            i (I.Invoke ("T", "fib"));
            i (I.Load 0);
            i (I.Const 2);
            i I.Sub;
            i (I.Invoke ("T", "fib"));
            i I.Add;
            i I.Retv;
          ];
        main_method
          [ i (I.Const 15); i (I.Invoke ("T", "fib")); i I.Print; i I.Ret ];
      ]
  in
  expect_output p (printed [ 610 ])

let test_checkcast_instanceof () =
  let extra = [ D.cdecl "Q" []; D.cdecl ~super:"Q" "R" [] ] in
  body_prints ~extra_classes:extra ~nlocals:1
    [
      i (I.New "R");
      i (I.Store 0);
      i (I.Load 0);
      i (I.Instanceof "Q");
      i I.Print;
      i (I.Load 0);
      i (I.Instanceof "String");
      i I.Print;
      i I.Null;
      i (I.Instanceof "Q");
      i I.Print;
      i (I.Load 0);
      i (I.Checkcast "Q");
      i I.Pop;
      i (I.Const 9);
      i I.Print;
      i I.Ret;
    ]
    (printed [ 1; 0; 0; 9 ])

(* --- class initialization -------------------------------------------------- *)

let test_clinit_runs_once () =
  let extra =
    [
      D.cdecl "Init" ~statics:[ D.field "v" ]
        [
          A.method_ ~nlocals:0 Bytecode.Decl.clinit_name
            [
              i (I.Getstatic ("Init", "v"));
              i (I.Const 1);
              i I.Add;
              i (I.Putstatic ("Init", "v"));
              i I.Ret;
            ];
        ];
    ]
  in
  body_prints ~extra_classes:extra
    [
      i (I.New "Init");
      i I.Pop;
      i (I.New "Init");
      i I.Pop;
      i (I.Getstatic ("Init", "v"));
      i I.Print;
      i I.Ret;
    ]
    (printed [ 1 ])

let test_clinit_super_order () =
  (* super's clinit must run before the sub's *)
  let extra =
    [
      D.cdecl "Base" ~statics:[ D.field "trace" ]
        [
          A.method_ ~nlocals:0 Bytecode.Decl.clinit_name
            [
              i (I.Getstatic ("Base", "trace"));
              i (I.Const 10);
              i I.Mul;
              i (I.Const 1);
              i I.Add;
              i (I.Putstatic ("Base", "trace"));
              i I.Ret;
            ];
        ];
      D.cdecl ~super:"Base" "Derived"
        [
          A.method_ ~nlocals:0 Bytecode.Decl.clinit_name
            [
              i (I.Getstatic ("Base", "trace"));
              i (I.Const 10);
              i I.Mul;
              i (I.Const 2);
              i I.Add;
              i (I.Putstatic ("Base", "trace"));
              i I.Ret;
            ];
        ];
    ]
  in
  (* trace becomes 1 then 12: super first *)
  body_prints ~extra_classes:extra
    [
      i (I.New "Derived");
      i I.Pop;
      i (I.Getstatic ("Base", "trace"));
      i I.Print;
      i I.Ret;
    ]
    (printed [ 12 ])

let test_getstatic_triggers_init () =
  let extra =
    [
      D.cdecl "Lazy" ~statics:[ D.field "v" ]
        [
          A.method_ ~nlocals:0 Bytecode.Decl.clinit_name
            [ i (I.Const 77); i (I.Putstatic ("Lazy", "v")); i I.Ret ];
        ];
    ]
  in
  body_prints ~extra_classes:extra
    [ i (I.Getstatic ("Lazy", "v")); i I.Print; i I.Ret ]
    (printed [ 77 ])

let test_invokestatic_triggers_init () =
  let extra =
    [
      D.cdecl "Lazy2" ~statics:[ D.field "v" ]
        [
          A.method_ ~nlocals:0 Bytecode.Decl.clinit_name
            [ i (I.Const 5); i (I.Putstatic ("Lazy2", "v")); i I.Ret ];
          A.method_ ~ret:I.Tint ~nlocals:0 "get"
            [ i (I.Getstatic ("Lazy2", "v")); i I.Retv ];
        ];
    ]
  in
  body_prints ~extra_classes:extra
    [ i (I.Invoke ("Lazy2", "get")); i I.Print; i I.Ret ]
    (printed [ 5 ])

(* --- natives ---------------------------------------------------------------- *)

let test_native_stock_id () =
  body_prints
    [ i (I.Const 123); i (I.Nativecall "sys_id"); i I.Print; i I.Ret ]
    (printed [ 123 ])

let test_native_callbacks () =
  let natives =
    [
      Vm.Native.make ~name:"cb_native" ~arity:0 ~returns:true (fun _vm _ ->
          {
            Vm.Native.result = Some 5;
            callbacks = [ (("T", "cb"), [| 10 |]); (("T", "cb"), [| 20 |]) ];
          });
    ]
  in
  let p =
    prog1 ~statics:[ D.field "acc" ]
      [
        A.method_ ~args:[ I.Tint ] ~nlocals:1 "cb"
          [
            i (I.Getstatic ("T", "acc"));
            i (I.Const 100);
            i I.Mul;
            i (I.Load 0);
            i I.Add;
            i (I.Putstatic ("T", "acc"));
            i I.Ret;
          ];
        main_method
          [
            i (I.Nativecall "cb_native");
            i I.Print;
            i (I.Getstatic ("T", "acc"));
            i I.Print;
            i I.Ret;
          ];
      ]
  in
  (* callbacks run in order before control returns behind the call site:
     acc = ((0*100+10)*100)+20 = 1020, then main prints result 5, then acc *)
  expect_output ~natives p (printed [ 5; 1020 ])

(* --- halt / status ----------------------------------------------------------- *)

let test_halt () =
  let vm, st = run (main_prog [ i (I.Const 1); i I.Print; i I.Halt ]) in
  Alcotest.(check string) "output" (printed [ 1 ]) (Vm.output vm);
  match st with Vm.Rt.Halted 0 -> () | _ -> Alcotest.fail "not halted"

let test_determinism_same_seed () =
  let p = Workloads.Counters.racy ~threads:3 ~increments:200 () in
  let vm1, _ = run ~seed:7 p in
  let vm2, _ = run ~seed:7 p in
  Alcotest.(check string) "same output" (Vm.output vm1) (Vm.output vm2);
  Alcotest.(check int) "same digest" (Vm.digest vm1) (Vm.digest vm2)

let test_observer_collect () =
  (* the collecting observer records events in execution order *)
  let p = main_prog [ i (I.Const 1); i I.Print; i I.Ret ] in
  let vm = Vm.create p in
  let obs = Vm.Observer.attach_collect vm in
  ignore (Vm.run vm);
  let evs = Vm.Observer.events obs in
  Alcotest.(check int) "count matches stats" (Vm.stats vm).n_instr
    (List.length evs);
  (match evs with
  | first :: _ ->
    (* execution starts with main's prologue yield point *)
    Alcotest.(check int) "first is a yield point"
      (Vm.Rt.tag_of_cinstr Vm.Rt.KYield) first.Vm.Rt.o_tag
  | [] -> Alcotest.fail "no events");
  Alcotest.(check int) "digest consistent with count"
    (List.length evs) (Vm.Observer.count obs)

let test_instruction_limit () =
  let p = main_prog [ l "spin"; i (I.Goto "spin") ] in
  let _, st = run ~limit:10_000 p in
  match st with
  | Vm.Rt.Fatal _ -> ()
  | st -> Alcotest.failf "expected fatal, got %s" (Vm.string_of_status st)

let () =
  Alcotest.run "vm"
    [
      ( "arith",
        [
          quick "add" (arith_case "add" 2 3 I.Add 5);
          quick "sub" (arith_case "sub" 2 3 I.Sub (-1));
          quick "mul" (arith_case "mul" 6 7 I.Mul 42);
          quick "band" (arith_case "band" 12 10 I.Band 8);
          quick "bor" (arith_case "bor" 12 10 I.Bor 14);
          quick "bxor" (arith_case "bxor" 12 10 I.Bxor 6);
          quick "division" test_division_semantics;
          quick "neg" test_neg;
          quick "shifts" test_shifts;
        ] );
      ("stack", [ quick "dup/pop/swap" test_dup_pop_swap ]);
      ( "control",
        [
          quick "branches" test_branches;
          quick "loop sum" test_loop_sum;
          quick "ref identity" test_refeq;
        ] );
      ( "objects",
        [
          quick "fields" test_fields;
          quick "field defaults" test_field_defaults;
          quick "statics" test_statics;
          quick "inherited fields" test_inherited_fields;
          quick "checkcast/instanceof" test_checkcast_instanceof;
        ] );
      ( "arrays",
        [
          quick "int arrays" test_arrays;
          quick "ref arrays" test_ref_arrays;
          quick "nested arrays" test_nested_arrays;
        ] );
      ("strings", [ quick "prints" test_prints ]);
      ( "calls",
        [
          quick "static call" test_static_call;
          quick "virtual dispatch" test_virtual_dispatch;
          quick "recursion" test_recursion;
        ] );
      ( "clinit",
        [
          quick "runs once" test_clinit_runs_once;
          quick "super first" test_clinit_super_order;
          quick "getstatic triggers" test_getstatic_triggers_init;
          quick "invokestatic triggers" test_invokestatic_triggers_init;
        ] );
      ( "natives",
        [
          quick "stock identity" test_native_stock_id;
          quick "callbacks" test_native_callbacks;
        ] );
      ( "lifecycle",
        [
          quick "halt" test_halt;
          quick "determinism per seed" test_determinism_same_seed;
          quick "observer collect" test_observer_collect;
          quick "instruction limit" test_instruction_limit;
        ] );
    ]
