(* The section-5 comparator schemes: Russinovich-Cogswell switch-map replay
   and instruction-count replay must reproduce executions; Instant Replay
   (CREW) and shared-read logging must show the trace-size blowup the paper
   attributes to them. *)

open Tutil

let entry name =
  match Workloads.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "no workload %s" name

let check_rt name (rt : Baselines.Runner.roundtrip) =
  if not (Baselines.Runner.ok rt) then
    Alcotest.failf "%s: outputs %b states %b events %b (rec %s, rep %s)" name
      rt.outputs_equal rt.states_equal rt.events_equal
      (Vm.string_of_status rt.recorded.status)
      (Vm.string_of_status rt.replayed.status)

let workloads_for_replay =
  [ "fig1ab"; "fig1cd"; "racy-counter"; "synced-counter"; "producer-consumer";
    "philosophers"; "bank"; "timed"; "exceptions"; "native" ]

let test_switch_map_roundtrips () =
  List.iter
    (fun name ->
      let e = entry name in
      List.iter
        (fun seed ->
          check_rt
            (Fmt.str "switch-map %s/%d" name seed)
            (Baselines.Runner.roundtrip_switch_map ~natives:e.natives ~seed
               e.program))
        [ 1; 3 ])
    workloads_for_replay

let test_icount_roundtrips () =
  List.iter
    (fun name ->
      let e = entry name in
      check_rt
        (Fmt.str "icount %s" name)
        (Baselines.Runner.roundtrip_icount ~natives:e.natives ~seed:2 e.program))
    workloads_for_replay

let test_switch_map_voluntary_entries () =
  (* workloads with blocking ops must log voluntary switches too *)
  let e = entry "producer-consumer" in
  let vm = Vm.create ~natives:e.natives e.program in
  let b = Baselines.Switch_map.attach_record vm in
  ignore (Vm.run vm);
  let s = Baselines.Switch_map.sizes b in
  Alcotest.(check bool) "voluntary > 0" true (s.n_voluntary > 0);
  Alcotest.(check bool) "preemptive > 0" true (s.n_preemptive > 0)

let test_crew_counts_accesses () =
  let e = entry "racy-counter" in
  let vm = Vm.create ~natives:e.natives e.program in
  let b = Baselines.Crew.attach vm in
  ignore (Vm.run vm);
  let s = Baselines.Crew.sizes b in
  (* every iteration does one static read and one static write *)
  Alcotest.(check bool) "reads" true (s.n_reads >= 8000);
  Alcotest.(check bool) "writes" true (s.n_writes >= 8000);
  Alcotest.(check bool) "two words per access" true
    (s.trace_words >= 2 * (s.n_reads + s.n_writes))

let test_read_log_counts () =
  let e = entry "racy-counter" in
  let vm = Vm.create ~natives:e.natives e.program in
  let b = Baselines.Read_log.attach vm in
  ignore (Vm.run vm);
  let s = Baselines.Read_log.sizes b in
  Alcotest.(check bool) "reads" true (s.n_reads >= 8000);
  Alcotest.(check bool) "one word per read" true (s.trace_words >= s.n_reads)

let test_trace_size_ordering () =
  (* the shape of section 5: DejaVu < switch-map < shared-read < CREW on a
     shared-memory-heavy workload *)
  let e = entry "racy-counter" in
  let seed = 1 in
  let _, dv_trace = Dejavu.record ~natives:e.natives ~seed e.program in
  let dv_words = (Dejavu.Trace.sizes dv_trace).Dejavu.Trace.total_words in
  let sm =
    (Baselines.Runner.roundtrip_switch_map ~natives:e.natives ~seed e.program)
      .recorded
  in
  let crew = Baselines.Runner.record_crew ~natives:e.natives ~seed e.program in
  let rl = Baselines.Runner.record_read_log ~natives:e.natives ~seed e.program in
  Alcotest.(check bool)
    (Fmt.str "dejavu (%d) < switch-map (%d)" dv_words sm.trace_words)
    true (dv_words < sm.trace_words);
  Alcotest.(check bool)
    (Fmt.str "switch-map (%d) < read-log (%d)" sm.trace_words rl.trace_words)
    true (sm.trace_words < rl.trace_words);
  Alcotest.(check bool)
    (Fmt.str "read-log (%d) < crew (%d)" rl.trace_words crew.trace_words)
    true (rl.trace_words < crew.trace_words)

let test_icount_deltas_bounded () =
  let e = entry "primes" in
  let vm = Vm.create ~natives:e.natives e.program in
  let b = Baselines.Icount.attach_record vm in
  ignore (Vm.run vm);
  let deltas = Baselines.Icount.deltas_array b in
  let sum = Array.fold_left ( + ) 0 deltas in
  Alcotest.(check bool) "positive deltas" true (Array.for_all (fun d -> d > 0) deltas);
  Alcotest.(check bool) "sum <= instructions" true
    (sum <= (Vm.stats vm).n_instr)

let test_baselines_record_like_live () =
  (* recording under any scheme must not change program behaviour *)
  let e = entry "bank" in
  let vm_live = Vm.create ~natives:e.natives e.program in
  ignore (Vm.run vm_live);
  let crew_rec = Baselines.Runner.record_crew ~natives:e.natives ~seed:1 e.program in
  let rl_rec = Baselines.Runner.record_read_log ~natives:e.natives ~seed:1 e.program in
  Alcotest.(check string) "crew output" (Vm.output vm_live) crew_rec.output;
  Alcotest.(check string) "read-log output" (Vm.output vm_live) rl_rec.output

let () =
  Alcotest.run "baselines"
    [
      ( "replay",
        [
          quick "switch-map roundtrips" test_switch_map_roundtrips;
          quick "icount roundtrips" test_icount_roundtrips;
          quick "voluntary entries logged" test_switch_map_voluntary_entries;
        ] );
      ( "recording",
        [
          quick "crew access counts" test_crew_counts_accesses;
          quick "read-log counts" test_read_log_counts;
          quick "icount deltas bounded" test_icount_deltas_bounded;
          quick "recording is transparent" test_baselines_record_like_live;
        ] );
      ("comparison", [ quick "trace-size ordering" test_trace_size_ordering ]);
    ]
