(* The copying collector: correctness under pressure, root coverage
   (statics, frames via reference maps, interned strings, thread stacks),
   relocation transparency, and out-of-memory behaviour. *)

open Tutil

let test_churn_with_small_heap () =
  (* force many collections; result must match the big-heap run *)
  let p = Workloads.Gc_churn.program ~threads:2 ~rounds:20 ~nodes:60 () in
  let vm_small, st_small =
    run ~config:{ Vm.Rt.default_config with heap_words = 4000 } ~seed:3 p
  in
  let vm_big, st_big = run ~seed:3 p in
  Alcotest.check status_testable "both finish" st_big st_small;
  Alcotest.(check string) "same output" (Vm.output vm_big) (Vm.output vm_small);
  Alcotest.(check bool) "collections happened" true
    ((Vm.stats vm_small).n_gc > 0);
  Alcotest.(check int) "no collections in big heap" 0 (Vm.stats vm_big).n_gc

let test_statics_survive () =
  (* a static ref written before heavy garbage allocation is intact after *)
  let body =
    [
      i (I.Sconst "keepme");
      i (I.Putstatic ("T", "keep"));
      (* churn: build and drop arrays *)
      i (I.Const 200);
      i (I.Store 0);
      l "loop";
      i (I.Load 0);
      i (I.Ifz (I.Le, "done"));
      i (I.Const 50);
      i (I.Newarray I.Tint);
      i I.Pop;
      i (I.Load 0);
      i (I.Const 1);
      i I.Sub;
      i (I.Store 0);
      i (I.Goto "loop");
      l "done";
      i (I.Getstatic ("T", "keep"));
      i I.Prints;
      i I.Ret;
    ]
  in
  let p = main_prog ~statics:[ D.field ~ty:(I.Tobj "String") "keep" ] body in
  let vm, st =
    run ~config:{ Vm.Rt.default_config with heap_words = 2000 } p
  in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check string) "string survived" "keepme" (Vm.output vm);
  Alcotest.(check bool) "collected" true ((Vm.stats vm).n_gc > 0)

let test_frame_refs_survive () =
  (* locals and operand-stack refs survive collection: keep a live list in
     a local across churn, then checksum it *)
  let node = D.cdecl "N" ~fields:[ D.field "v"; D.field ~ty:(I.Tobj "N") "nx" ] [] in
  let body =
    [
      (* build 10-node list in local 0 *)
      i I.Null;
      i (I.Store 0);
      i (I.Const 10);
      i (I.Store 1);
      l "build";
      i (I.Load 1);
      i (I.Ifz (I.Le, "churn"));
      i (I.New "N");
      i (I.Store 2);
      i (I.Load 2);
      i (I.Load 1);
      i (I.Putfield ("N", "v"));
      i (I.Load 2);
      i (I.Load 0);
      i (I.Putfield ("N", "nx"));
      i (I.Load 2);
      i (I.Store 0);
      i (I.Load 1);
      i (I.Const 1);
      i I.Sub;
      i (I.Store 1);
      i (I.Goto "build");
      (* churn garbage *)
      l "churn";
      i (I.Const 300);
      i (I.Store 1);
      l "churnloop";
      i (I.Load 1);
      i (I.Ifz (I.Le, "sum"));
      i (I.Const 40);
      i (I.Newarray I.Tint);
      i I.Pop;
      i (I.Load 1);
      i (I.Const 1);
      i I.Sub;
      i (I.Store 1);
      i (I.Goto "churnloop");
      (* checksum the list: 1+2+..+10 = 55 *)
      l "sum";
      i (I.Const 0);
      i (I.Store 1);
      l "walk";
      i (I.Load 0);
      i (I.Ifnull "print");
      i (I.Load 1);
      i (I.Load 0);
      i (I.Getfield ("N", "v"));
      i I.Add;
      i (I.Store 1);
      i (I.Load 0);
      i (I.Getfield ("N", "nx"));
      i (I.Store 0);
      i (I.Goto "walk");
      l "print";
      i (I.Load 1);
      i I.Print;
      i I.Ret;
    ]
  in
  let p = main_prog ~extra_classes:[ node ] body in
  let vm, st =
    run ~config:{ Vm.Rt.default_config with heap_words = 2500 } p
  in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check string) "list intact" (printed [ 55 ]) (Vm.output vm);
  Alcotest.(check bool) "collected" true ((Vm.stats vm).n_gc > 0)

let test_stack_relocation () =
  (* deep recursion with a small heap: thread stacks grow AND move *)
  let p = Workloads.Deep.recurse ~depth:800 () in
  let vm, st =
    run ~config:{ Vm.Rt.default_config with heap_words = 24000; stack_init = 64 } p
  in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check string) "sum" (printed [ 800 * 801 / 2 ]) (Vm.output vm);
  Alcotest.(check bool) "stack grew" true ((Vm.stats vm).n_stack_grows > 0)

let test_multithreaded_gc () =
  (* collections while several threads are suspended mid-call-chain *)
  let p = Workloads.Gc_churn.program ~threads:4 ~rounds:12 ~nodes:80 () in
  let vm, st =
    run ~config:{ Vm.Rt.default_config with heap_words = 6000 } ~seed:5 p
  in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check bool) "collected" true ((Vm.stats vm).n_gc > 0);
  let vm2, _ = run ~seed:5 p in
  Alcotest.(check string) "output matches unpressured run" (Vm.output vm2)
    (Vm.output vm)

let test_out_of_memory () =
  (* allocate and RETAIN until the heap bursts *)
  let body =
    [
      i (I.Const 1000);
      i (I.Newarray (I.Tobj "Object"));
      i (I.Store 0);
      i (I.Const 0);
      i (I.Store 1);
      l "loop";
      i (I.Load 0);
      i (I.Load 1);
      i (I.Const 100);
      i (I.Newarray I.Tint);
      i I.Astore;
      i (I.Load 1);
      i (I.Const 1);
      i I.Add;
      i (I.Store 1);
      i (I.Goto "loop");
    ]
  in
  let _, st =
    run ~config:{ Vm.Rt.default_config with heap_words = 5000 } (main_prog body)
  in
  match st with
  | Vm.Rt.Fatal msg ->
    Alcotest.(check bool) "mentions OOM" true (contains msg "OutOfMemory")
  | st -> Alcotest.failf "expected OOM, got %s" (Vm.string_of_status st)

let test_gc_determinism () =
  (* identical runs with GC produce identical digests (heap layout incl.) *)
  let p = Workloads.Gc_churn.program ~threads:2 ~rounds:15 ~nodes:50 () in
  let cfg = { Vm.Rt.default_config with heap_words = 4000 } in
  let vm1, _ = run ~config:cfg ~seed:11 p in
  let vm2, _ = run ~config:cfg ~seed:11 p in
  Alcotest.(check bool) "collected" true ((Vm.stats vm1).n_gc > 0);
  Alcotest.(check int) "digests equal" (Vm.digest vm1) (Vm.digest vm2)

let test_alloc_stats () =
  let vm, _ = run (main_prog [ i (I.Const 8); i (I.Newarray I.Tint); i I.Pop; i I.Ret ]) in
  let s = Vm.stats vm in
  (* at least: main's stack array + the array itself *)
  Alcotest.(check bool) "objects counted" true (s.n_alloc_objects >= 2);
  Alcotest.(check bool) "words counted" true (s.n_alloc_words > 8)

let () =
  Alcotest.run "gc"
    [
      ( "pressure",
        [
          quick "churn under small heap" test_churn_with_small_heap;
          quick "multithreaded collection" test_multithreaded_gc;
          quick "out of memory" test_out_of_memory;
        ] );
      ( "roots",
        [
          quick "statics survive" test_statics_survive;
          quick "frame refs survive" test_frame_refs_survive;
          quick "stack relocation" test_stack_relocation;
        ] );
      ( "determinism",
        [
          quick "layout determinism" test_gc_determinism;
          quick "alloc stats" test_alloc_stats;
        ] );
    ]
