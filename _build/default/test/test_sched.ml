(* The thread package: monitors, wait/notify, sleep, timed wait, join,
   interrupt, deadlock detection, and scheduling fairness. *)

open Tutil

(* helper: main spawns [n] named static methods and joins them in order *)
let spawn_join c names after =
  let n = List.length names in
  List.concat
    (List.mapi (fun k m -> [ i (I.Spawn (c, m)); i (I.Store k) ]) names)
  @ List.concat (List.init n (fun k -> [ i (I.Load k); i I.Join ]))
  @ after

let test_monitor_recursion () =
  (* reentrant lock: enter twice, exit twice *)
  let body =
    [
      i (I.New "Object");
      i (I.Store 0);
      i (I.Load 0);
      i I.Monitorenter;
      i (I.Load 0);
      i I.Monitorenter;
      i (I.Load 0);
      i I.Monitorexit;
      i (I.Load 0);
      i I.Monitorexit;
      i (I.Const 1);
      i I.Print;
      i I.Ret;
    ]
  in
  expect_output (main_prog body) (printed [ 1 ])

let test_illegal_monitor_exit () =
  let body =
    [ i (I.New "Object"); i I.Monitorexit; i (I.Const 0); i I.Print; i I.Ret ]
  in
  let vm, st = run (main_prog body) in
  Alcotest.check status_testable "finished (thread died)" Vm.Rt.Finished st;
  Alcotest.(check bool) "uncaught IMSE" true
    (contains (Vm.output vm) "IllegalMonitorStateException")

let test_wait_without_monitor () =
  let body =
    [ i (I.New "Object"); i I.Wait; i I.Pop; i I.Ret ]
  in
  let vm, _ = run (main_prog body) in
  Alcotest.(check bool) "uncaught IMSE" true
    (contains (Vm.output vm) "IllegalMonitorStateException")

let test_mutual_exclusion () =
  (* synchronized counter never loses updates regardless of seed *)
  List.iter
    (fun seed ->
      let p = Workloads.Counters.synced ~threads:4 ~increments:150 () in
      let out, st = run_output ~seed p in
      Alcotest.check status_testable "finished" Vm.Rt.Finished st;
      Alcotest.(check string) (Fmt.str "seed %d" seed) (printed [ 600 ]) out)
    [ 1; 2; 3; 9; 42 ]

let test_producer_consumer_conservation () =
  (* items are conserved for every seed *)
  List.iter
    (fun seed ->
      let p =
        Workloads.Producer_consumer.program ~producers:2 ~consumers:3
          ~items:30 ~capacity:3 ~trace_order:false ()
      in
      let out, st = run_output ~seed p in
      Alcotest.check status_testable "finished" Vm.Rt.Finished st;
      (* sum of 0..59 = 1770 *)
      Alcotest.(check string) (Fmt.str "seed %d" seed) "total=1770\n" out)
    [ 1; 2; 3; 4 ]

let test_notify_wakes_fifo () =
  (* three waiters; notify wakes them in wait order *)
  let c = "NotifyOrder" in
  let waiter =
    A.method_ ~args:[ I.Tint ] ~nlocals:1 "waiter"
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        (* register arrival order *)
        i (I.Getstatic (c, "arrived"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "arrived"));
        i (I.Getstatic (c, "lock"));
        i I.Wait;
        i I.Pop;
        (* print my id on wake *)
        i (I.Load 0);
        i I.Print;
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:6 "main"
      ([
         i (I.New "Object");
         i (I.Putstatic (c, "lock"));
         i (I.Const 1);
         i (I.Spawn (c, "waiter"));
         i (I.Store 0);
         i (I.Const 2);
         i (I.Spawn (c, "waiter"));
         i (I.Store 1);
         i (I.Const 3);
         i (I.Spawn (c, "waiter"));
         i (I.Store 2);
         (* wait until all three are in the wait set *)
         l "poll";
         i (I.Getstatic (c, "arrived"));
         i (I.Const 3);
         i (I.If (I.Ge, "go"));
         i (I.Const 1);
         i I.Sleep;
         i (I.Goto "poll");
         l "go";
         (* wake them one by one *)
         i (I.Getstatic (c, "lock"));
         i I.Monitorenter;
         i (I.Getstatic (c, "lock"));
         i I.Notify;
         i (I.Getstatic (c, "lock"));
         i I.Monitorexit;
         i (I.Getstatic (c, "lock"));
         i I.Monitorenter;
         i (I.Getstatic (c, "lock"));
         i I.Notify;
         i (I.Getstatic (c, "lock"));
         i I.Monitorexit;
         i (I.Getstatic (c, "lock"));
         i I.Monitorenter;
         i (I.Getstatic (c, "lock"));
         i I.Notifyall;
         i (I.Getstatic (c, "lock"));
         i I.Monitorexit;
       ]
      @ List.concat (List.init 3 (fun k -> [ i (I.Load k); i I.Join ]))
      @ [ i I.Ret ])
  in
  let p =
    D.program
      [
        D.cdecl c
          ~statics:
            [ D.field ~ty:(I.Tobj "Object") "lock"; D.field "arrived" ]
          [ waiter; main ];
      ]
  in
  (* arrival order is schedule-dependent, but wake order must equal arrival
     order; since waiters register 'arrived' in spawn order under FIFO
     scheduling the expected output is 1,2,3 for seed 1 *)
  let out, st = run_output ~seed:1 p in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check string) "fifo wakeups" (printed [ 1; 2; 3 ]) out

let test_timedwait_times_out () =
  (* nobody notifies: the timed wait must return by itself *)
  let body =
    [
      i (I.New "Object");
      i (I.Store 0);
      i (I.Load 0);
      i I.Monitorenter;
      i (I.Load 0);
      i (I.Const 3);
      i I.Timedwait;
      i I.Print;
      i (I.Load 0);
      i I.Monitorexit;
      i (I.Const 9);
      i I.Print;
      i I.Ret;
    ]
  in
  expect_output (main_prog body) (printed [ 0; 9 ])

let test_sleep_is_not_busy () =
  (* a sleeping main lets the clock idle forward and still finishes *)
  let body = [ i (I.Const 50); i I.Sleep; i (I.Const 1); i I.Print; i I.Ret ] in
  let vm, st = run (main_prog body) in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check string) "output" (printed [ 1 ]) (Vm.output vm);
  Alcotest.(check bool) "idle clock reads happened" true
    ((Vm.stats vm).n_clock_reads > 0)

let test_join_terminated () =
  (* joining an already-dead thread returns immediately *)
  let c = "JoinDead" in
  let worker = A.method_ ~nlocals:0 "worker" [ i I.Ret ] in
  let main =
    A.method_ ~nlocals:1 "main"
      [
        i (I.Spawn (c, "worker"));
        i (I.Store 0);
        (* let it finish *)
        i (I.Const 20);
        i I.Sleep;
        i (I.Load 0);
        i I.Join;
        i (I.Load 0);
        i I.Join;
        i (I.Const 1);
        i I.Print;
        i I.Ret;
      ]
  in
  expect_output (D.program [ D.cdecl c [ worker; main ] ]) (printed [ 1 ])

let test_join_bad_tid () =
  let body = [ i (I.Const 999); i I.Join; i I.Ret ] in
  let vm, _ = run (main_prog body) in
  Alcotest.(check bool) "NPE" true
    (contains (Vm.output vm) "NullPointerException")

let test_interrupt_wait () =
  let c = "IntWait" in
  let waiter =
    A.method_ ~nlocals:0 "waiter"
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Getstatic (c, "lock"));
        i I.Wait;
        i I.Print (* 1 = interrupted *);
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:1 "main"
      [
        i (I.New "Object");
        i (I.Putstatic (c, "lock"));
        i (I.Spawn (c, "waiter"));
        i (I.Store 0);
        i (I.Const 10);
        i I.Sleep;
        i (I.Load 0);
        i I.Interrupt;
        i (I.Load 0);
        i I.Join;
        i I.Ret;
      ]
  in
  let p =
    D.program
      [ D.cdecl c ~statics:[ D.field ~ty:(I.Tobj "Object") "lock" ] [ waiter; main ] ]
  in
  expect_output p (printed [ 1 ])

let test_interrupt_sleep () =
  let c = "IntSleep" in
  let sleeper =
    A.method_ ~nlocals:0 "sleeper"
      [
        i (I.Const 100000);
        i I.Sleep;
        i (I.Const 5);
        i I.Print;
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:1 "main"
      [
        i (I.Spawn (c, "sleeper"));
        i (I.Store 0);
        i (I.Const 5);
        i I.Sleep;
        i (I.Load 0);
        i I.Interrupt;
        i (I.Load 0);
        i I.Join;
        i I.Ret;
      ]
  in
  (* the interrupt cuts the long sleep short; the program finishes fast *)
  let vm, st = run ~limit:2_000_000 (D.program [ D.cdecl c [ sleeper; main ] ]) in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check string) "woke early" (printed [ 5 ]) (Vm.output vm)

let test_guaranteed_deadlock () =
  (* handshake forces lock-order inversion: always deadlocks *)
  let c = "DL" in
  let t1 =
    A.method_ ~nlocals:0 "t1"
      [
        i (I.Getstatic (c, "a"));
        i I.Monitorenter;
        i (I.Const 1);
        i (I.Putstatic (c, "f1"));
        l "spin";
        i (I.Getstatic (c, "f2"));
        i (I.Ifz (I.Eq, "spin"));
        i (I.Getstatic (c, "b"));
        i I.Monitorenter;
        i I.Ret;
      ]
  in
  let t2 =
    A.method_ ~nlocals:0 "t2"
      [
        i (I.Getstatic (c, "b"));
        i I.Monitorenter;
        i (I.Const 1);
        i (I.Putstatic (c, "f2"));
        l "spin";
        i (I.Getstatic (c, "f1"));
        i (I.Ifz (I.Eq, "spin"));
        i (I.Getstatic (c, "a"));
        i I.Monitorenter;
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:2 "main"
      [
        i (I.New "Object");
        i (I.Putstatic (c, "a"));
        i (I.New "Object");
        i (I.Putstatic (c, "b"));
        i (I.Spawn (c, "t1"));
        i (I.Store 0);
        i (I.Spawn (c, "t2"));
        i (I.Store 1);
        i (I.Load 0);
        i I.Join;
        i (I.Load 1);
        i I.Join;
        i I.Ret;
      ]
  in
  let p =
    D.program
      [
        D.cdecl c
          ~statics:
            [
              D.field ~ty:(I.Tobj "Object") "a";
              D.field ~ty:(I.Tobj "Object") "b";
              D.field "f1";
              D.field "f2";
            ]
          [ t1; t2; main ];
      ]
  in
  List.iter
    (fun seed ->
      let _, st = run ~seed p in
      Alcotest.check status_testable (Fmt.str "seed %d deadlocks" seed)
        Vm.Rt.Deadlocked st)
    [ 1; 2; 3 ]

let test_philosophers_ordered_never_deadlock () =
  List.iter
    (fun seed ->
      let p = Workloads.Philosophers.program ~n:4 ~meals:6 () in
      let out, st = run_output ~seed p in
      Alcotest.check status_testable (Fmt.str "seed %d" seed) Vm.Rt.Finished st;
      Alcotest.(check string) "meals" (printed [ 24 ]) out)
    [ 1; 2; 3; 4; 5 ]

let test_spawn_passes_refs () =
  (* a spawned thread receives a reference argument correctly (and the GC
     sees it while parked) *)
  let c = "SpawnRef" in
  let worker =
    A.method_ ~args:[ I.Tobj "String" ] ~nlocals:1 "worker"
      [ i (I.Load 0); i I.Prints; i I.Ret ]
  in
  let main =
    A.method_ ~nlocals:1 "main"
      [
        i (I.Sconst "from-arg\n");
        i (I.Spawn (c, "worker"));
        i (I.Store 0);
        i (I.Load 0);
        i I.Join;
        i I.Ret;
      ]
  in
  expect_output (D.program [ D.cdecl c [ worker; main ] ]) "from-arg\n"

let test_barrier_invariant () =
  (* per-phase sums are schedule-independent: workers*phase*1000 + 0+1+2+3 *)
  List.iter
    (fun seed ->
      let p = Workloads.Sync_patterns.barrier ~workers:4 ~rounds:3 () in
      let out, st = run_output ~seed p in
      Alcotest.check status_testable "finished" Vm.Rt.Finished st;
      Alcotest.(check string) (Fmt.str "seed %d" seed)
        (printed [ 6; 4006; 8006 ]) out)
    [ 1; 2; 3; 4 ]

let test_rwlock_isolation () =
  List.iter
    (fun seed ->
      let p = Workloads.Sync_patterns.rwlock ~readers:3 ~writers:2 ~ops:10 () in
      let out, st = run_output ~seed p in
      Alcotest.check status_testable "finished" Vm.Rt.Finished st;
      Alcotest.(check string) (Fmt.str "seed %d" seed) "violations=0\n" out)
    [ 1; 2; 3; 4; 5 ]

let test_mergesort_sorts () =
  List.iter
    (fun seed ->
      let p = Workloads.Sorting.program ~size:128 () in
      let out, st = run_output ~seed p in
      Alcotest.check status_testable "finished" Vm.Rt.Finished st;
      Alcotest.(check string) (Fmt.str "seed %d" seed)
        (Fmt.str "inversions=0\nsum=%d\n" (128 * 127 / 2))
        out)
    [ 1; 2; 3 ]

let test_ring_conserves_token () =
  List.iter
    (fun seed ->
      let p = Workloads.Ring_actors.program ~actors:4 ~laps:3 () in
      let out, st = run_output ~seed p in
      Alcotest.check status_testable "finished" Vm.Rt.Finished st;
      Alcotest.(check string) (Fmt.str "seed %d" seed) "token=18\nlaps=3\n" out)
    [ 1; 2; 3; 4 ]

let test_sleep_zero_yields () =
  let body = [ i (I.Const 0); i I.Sleep; i (I.Const 3); i I.Print; i I.Ret ] in
  expect_output (main_prog body) (printed [ 3 ])

let () =
  ignore spawn_join;
  Alcotest.run "sched"
    [
      ( "monitors",
        [
          quick "recursion" test_monitor_recursion;
          quick "illegal exit" test_illegal_monitor_exit;
          quick "wait without monitor" test_wait_without_monitor;
          quick "mutual exclusion" test_mutual_exclusion;
        ] );
      ( "wait/notify",
        [
          quick "producer/consumer conservation" test_producer_consumer_conservation;
          quick "notify wakes fifo" test_notify_wakes_fifo;
          quick "timed wait times out" test_timedwait_times_out;
        ] );
      ( "time",
        [
          quick "sleep idles the clock" test_sleep_is_not_busy;
          quick "sleep(0) yields" test_sleep_zero_yields;
        ] );
      ( "join/interrupt",
        [
          quick "join terminated" test_join_terminated;
          quick "join bad tid" test_join_bad_tid;
          quick "interrupt wait" test_interrupt_wait;
          quick "interrupt sleep" test_interrupt_sleep;
        ] );
      ( "liveness",
        [
          quick "guaranteed deadlock" test_guaranteed_deadlock;
          quick "ordered philosophers" test_philosophers_ordered_never_deadlock;
          quick "spawn passes refs" test_spawn_passes_refs;
        ] );
      ( "patterns",
        [
          quick "barrier phases" test_barrier_invariant;
          quick "rwlock isolation" test_rwlock_isolation;
          quick "mergesort sorts" test_mergesort_sorts;
          quick "ring conserves token" test_ring_conserves_token;
        ] );
    ]
