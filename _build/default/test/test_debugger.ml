(* The replay debugger: breakpoints, stepping, deterministic time travel,
   the command protocol, and non-perturbation of the replayed execution. *)

open Tutil

let entry name = Option.get (Workloads.Registry.find name)

let fresh_session ?(name = "fig1ab") ?(seed = 1) () =
  let e = entry name in
  let session, _run = Debugger.Session.record_and_start ~natives:e.natives ~seed e.program in
  session

let test_breakpoint_hit () =
  let d = fresh_session () in
  let _b = Debugger.Session.add_breakpoint d ~cls:"Fig1AB" ~meth:"t2" Debugger.Breakpoint.Any_pc in
  match Debugger.Session.continue_ d with
  | Debugger.Session.Hit b ->
    Alcotest.(check string) "class" "Fig1AB" b.bp_class;
    Alcotest.(check string) "method" "t2" b.bp_method;
    (match Debugger.Session.position d with
    | Some (m, pc) ->
      Alcotest.(check string) "stopped in t2" "t2" m.rm_name;
      Alcotest.(check int) "at entry" 0 pc
    | None -> Alcotest.fail "no position")
  | r -> Alcotest.failf "expected hit, got %s" (Debugger.Protocol.string_of_stop d r)

let test_step_counts () =
  let d = fresh_session () in
  (match Debugger.Session.step d 10 with
  | Debugger.Session.Step_done -> ()
  | r -> Alcotest.failf "unexpected %s" (Debugger.Protocol.string_of_stop d r));
  Alcotest.(check int) "ten steps" 10 d.steps

let test_continue_to_end () =
  let d = fresh_session () in
  match Debugger.Session.continue_ d with
  | Debugger.Session.Finished Vm.Rt.Finished -> ()
  | r -> Alcotest.failf "unexpected %s" (Debugger.Protocol.string_of_stop d r)

let test_replay_equals_undebugged () =
  (* stepping + heavy inspection must not change the replayed outcome *)
  let e = entry "fig1ab" in
  let run_rec, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let d = Debugger.Session.start ~natives:e.natives e.program trace in
  ignore (Debugger.Session.add_breakpoint d ~cls:"Fig1AB" ~meth:"t1" Debugger.Breakpoint.Any_pc);
  ignore (Debugger.Session.continue_ d);
  (* inspect a lot *)
  for _ = 1 to 20 do
    ignore (Debugger.Session.threads d);
    ignore (Debugger.Session.frames d 0);
    let module R = (val Remote_reflection.Remote_object.reflection (Debugger.Session.space d)) in
    ignore (R.get_static "Fig1AB" "x");
    ignore (R.get_static "Fig1AB" "y")
  done;
  ignore (Debugger.Session.continue_ d);
  Alcotest.(check string) "same output" run_rec.Dejavu.output
    (Debugger.Session.output d);
  Alcotest.(check int) "same final digest" run_rec.Dejavu.state_digest
    (Debugger.Session.state_digest d)

let test_time_travel_deterministic () =
  (* landing on the same step twice gives the same state digest *)
  let d = fresh_session ~name:"racy-counter" () in
  ignore (Debugger.Session.step d 5000);
  let digest_a = Debugger.Session.state_digest d in
  ignore (Debugger.Session.step d 3000);
  (match Debugger.Session.goto_step d 5000 with
  | Debugger.Session.Step_done -> ()
  | r -> Alcotest.failf "goto failed: %s" (Debugger.Protocol.string_of_stop d r));
  Alcotest.(check int) "steps" 5000 d.steps;
  Alcotest.(check int) "same digest at step 5000" digest_a
    (Debugger.Session.state_digest d)

let test_goto_forward () =
  let d = fresh_session () in
  ignore (Debugger.Session.step d 100);
  ignore (Debugger.Session.goto_step d 500);
  Alcotest.(check int) "landed" 500 d.steps

let test_breakpoint_by_src_pc () =
  let d = fresh_session () in
  ignore
    (Debugger.Session.add_breakpoint d ~cls:"Fig1AB" ~meth:"t1"
       (Debugger.Breakpoint.Src_pc 0));
  match Debugger.Session.continue_ d with
  | Debugger.Session.Hit _ -> (
    match Debugger.Session.position d with
    | Some (m, _) -> Alcotest.(check string) "in t1" "t1" m.rm_name
    | None -> Alcotest.fail "no position")
  | r -> Alcotest.failf "no hit: %s" (Debugger.Protocol.string_of_stop d r)

let test_remove_breakpoint () =
  let d = fresh_session () in
  let b = Debugger.Session.add_breakpoint d ~cls:"Fig1AB" ~meth:"t2" Debugger.Breakpoint.Any_pc in
  Debugger.Session.remove_breakpoint d b.bp_id;
  match Debugger.Session.continue_ d with
  | Debugger.Session.Finished _ -> ()
  | r -> Alcotest.failf "should run to end: %s" (Debugger.Protocol.string_of_stop d r)

let test_watchpoint_fires () =
  let d = fresh_session ~name:"fig1ab" () in
  let w = Debugger.Session.add_watchpoint d ~cls:"Fig1AB" ~field:"y" in
  (match Debugger.Session.continue_ d with
  | Debugger.Session.Watch_fired (w', old, now) ->
    Alcotest.(check int) "id" w.w_id w'.Debugger.Session.w_id;
    Alcotest.(check int) "old" 0 old;
    Alcotest.(check bool) "changed" true (now <> 0)
  | r -> Alcotest.failf "no watch hit: %s" (Debugger.Protocol.string_of_stop d r));
  (* the same watch fires at the same step on a second replay *)
  let step_a = d.steps in
  let d2 = fresh_session ~name:"fig1ab" () in
  ignore (Debugger.Session.add_watchpoint d2 ~cls:"Fig1AB" ~field:"y");
  ignore (Debugger.Session.continue_ d2);
  Alcotest.(check int) "deterministic step" step_a d2.steps

let test_watchpoint_resync_after_goto () =
  let d = fresh_session ~name:"fig1ab" () in
  ignore (Debugger.Session.add_watchpoint d ~cls:"Fig1AB" ~field:"y");
  ignore (Debugger.Session.continue_ d) (* first change *);
  let fire_step = d.steps in
  ignore (Debugger.Session.goto_step d (fire_step + 500));
  (* travelling must not re-fire spuriously at the landing point *)
  ignore (Debugger.Session.goto_step d 10);
  match Debugger.Session.continue_ d with
  | Debugger.Session.Watch_fired _ ->
    Alcotest.(check int) "re-fires at the same change" fire_step d.steps
  | r -> Alcotest.failf "unexpected %s" (Debugger.Protocol.string_of_stop d r)

let test_set_static_breaks_symmetry () =
  let e = entry "racy-counter" in
  let run_rec, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let d = Debugger.Session.start ~natives:e.natives e.program trace in
  (* stop near the end so the poke survives to the final print *)
  ignore (Debugger.Session.step d (run_rec.Dejavu.obs_count - 10));
  Alcotest.(check bool) "not perturbed yet" false (Debugger.Session.perturbed d);
  let before = Debugger.Session.state_digest d in
  Debugger.Session.set_static d ~cls:"Racy" ~field:"count" 1_000_000;
  Alcotest.(check bool) "perturbed" true (Debugger.Session.perturbed d);
  Alcotest.(check bool) "digest changed" true
    (Debugger.Session.state_digest d <> before);
  (* replay can resume, but accuracy is no longer guaranteed *)
  ignore (Debugger.Session.continue_ d);
  Alcotest.(check bool) "outcome differs from the recording" true
    (Debugger.Session.output d <> run_rec.Dejavu.output)

let test_set_static_rejects_refs () =
  let d = fresh_session ~name:"fig1cd" () in
  match Debugger.Session.set_static d ~cls:"Fig1CD" ~field:"lock" 99 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "poked a reference slot"

(* --- protocol ------------------------------------------------------------ *)

let exec d cmd =
  match Debugger.Protocol.execute d cmd with
  | Debugger.Protocol.Reply s -> s
  | Debugger.Protocol.Quit -> "<quit>"

let test_protocol_basics () =
  let d = fresh_session () in
  Alcotest.(check bool) "help" true (contains (exec d "help") "commands");
  Alcotest.(check bool) "break" true
    (contains (exec d "break Fig1AB t2") "Fig1AB.t2");
  Alcotest.(check bool) "continue hits" true
    (contains (exec d "continue") "breakpoint");
  Alcotest.(check bool) "threads lists main" true
    (contains (exec d "threads") "main");
  Alcotest.(check bool) "stack" true (contains (exec d "stack 2") "t2");
  Alcotest.(check bool) "step" true (contains (exec d "step 3") "stopped");
  Alcotest.(check bool) "print static" true
    (contains (exec d "print static Fig1AB.x") "Fig1AB.x =");
  Alcotest.(check bool) "digest" true (String.length (exec d "digest") > 0);
  Alcotest.(check bool) "info" true (contains (exec d "info") "status=running");
  (match Debugger.Protocol.execute d "quit" with
  | Debugger.Protocol.Quit -> ()
  | _ -> Alcotest.fail "quit");
  Alcotest.(check bool) "unknown command" true
    (contains (exec d "frobnicate") "unknown")

let test_protocol_errors_are_replies () =
  let d = fresh_session () in
  Alcotest.(check bool) "bad int" true (contains (exec d "step zzz") "error");
  Alcotest.(check bool) "bad static" true
    (contains (exec d "print static Nope.zzz") "error")

let test_protocol_locals () =
  let d = fresh_session () in
  ignore (exec d "break Fig1AB t2");
  ignore (exec d "continue");
  let out = exec d "locals 2" in
  Alcotest.(check bool) "locals rendered" true (contains out "t2")

let () =
  Alcotest.run "debugger"
    [
      ( "session",
        [
          quick "breakpoint hit" test_breakpoint_hit;
          quick "step counts" test_step_counts;
          quick "continue to end" test_continue_to_end;
          quick "breakpoint by src pc" test_breakpoint_by_src_pc;
          quick "remove breakpoint" test_remove_breakpoint;
        ] );
      ( "determinism",
        [
          quick "replay unperturbed by debugging" test_replay_equals_undebugged;
          quick "time travel deterministic" test_time_travel_deterministic;
          quick "goto forward" test_goto_forward;
        ] );
      ( "protocol",
        [
          quick "basics" test_protocol_basics;
          quick "errors are replies" test_protocol_errors_are_replies;
          quick "locals" test_protocol_locals;
        ] );
      ( "watch/poke",
        [
          quick "watchpoint fires deterministically" test_watchpoint_fires;
          quick "watchpoints survive time travel" test_watchpoint_resync_after_goto;
          quick "set static voids accuracy" test_set_static_breaks_symmetry;
          quick "set static rejects refs" test_set_static_rejects_refs;
        ] );
    ]
