(* Remote reflection: transparent remote data access, equality with
   in-process reflection, and — the paper's headline property — zero
   perturbation of the application VM. *)

open Tutil

(* A program that builds an interesting heap and stops (sleeps long). *)
let snapshot_program =
  let c = "Snap" in
  let node = D.cdecl "Node" ~fields:[ D.field "v"; D.field ~ty:(I.Tobj "Node") "next" ] [] in
  let main =
    A.method_ ~nlocals:3 "main"
      [
        (* statics: answer=42, label="state", list=3 nodes, nums=[10,20,30] *)
        i (I.Const 42);
        i (I.Putstatic (c, "answer"));
        i (I.Sconst "state");
        i (I.Putstatic (c, "label"));
        i (I.Const 3);
        i (I.Newarray I.Tint);
        i (I.Store 0);
        i (I.Load 0);
        i (I.Const 0);
        i (I.Const 10);
        i I.Astore;
        i (I.Load 0);
        i (I.Const 1);
        i (I.Const 20);
        i I.Astore;
        i (I.Load 0);
        i (I.Const 2);
        i (I.Const 30);
        i I.Astore;
        i (I.Load 0);
        i (I.Putstatic (c, "nums"));
        (* linked list 1 -> 2 -> null *)
        i (I.New "Node");
        i (I.Store 1);
        i (I.Load 1);
        i (I.Const 2);
        i (I.Putfield ("Node", "v"));
        i (I.New "Node");
        i (I.Store 2);
        i (I.Load 2);
        i (I.Const 1);
        i (I.Putfield ("Node", "v"));
        i (I.Load 2);
        i (I.Load 1);
        i (I.Putfield ("Node", "next"));
        i (I.Load 2);
        i (I.Putstatic (c, "list"));
        (* park forever on a monitor nobody notifies, so the inspector can
           look around a quiescent VM *)
        i (I.New "Object");
        i (I.Store 0);
        i (I.Load 0);
        i I.Monitorenter;
        i (I.Load 0);
        i I.Wait;
        i I.Pop;
        i (I.Load 0);
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  D.program ~main_class:c
    [
      node;
      D.cdecl c
        ~statics:
          [
            D.field "answer";
            D.field ~ty:(I.Tobj "String") "label";
            D.field ~ty:(I.Tarr I.Tint) "nums";
            D.field ~ty:(I.Tobj "Node") "list";
          ]
        [ main ];
    ]

(* Run to quiescence: main ends up parked in its wait (deadlock status). *)
let paused_vm () =
  let vm = Vm.create snapshot_program in
  ignore (Vm.run vm);
  vm

let space vm = Remote_reflection.Address_space.of_vm vm

let test_remote_statics () =
  let vm = paused_vm () in
  let sp = space vm in
  let module R = (val Remote_reflection.Remote_object.reflection sp) in
  (match R.get_static "Snap" "answer" with
  | Remote_reflection.Reflect.Vint 42 -> ()
  | v -> Alcotest.failf "answer: %s" (R.render_value v));
  match R.get_static "Snap" "label" with
  | Remote_reflection.Reflect.Vobj o ->
    Alcotest.(check string) "string value" "state" (R.string_value o)
  | v -> Alcotest.failf "label: %s" (R.render_value v)

let test_remote_arrays () =
  let vm = paused_vm () in
  let sp = space vm in
  let module R = (val Remote_reflection.Remote_object.reflection sp) in
  match R.get_static "Snap" "nums" with
  | Remote_reflection.Reflect.Vobj arr ->
    Alcotest.(check int) "length" 3 (R.array_length arr);
    (match R.array_get arr 1 with
    | Remote_reflection.Reflect.Vint 20 -> ()
    | v -> Alcotest.failf "elem: %s" (R.render_value v))
  | v -> Alcotest.failf "nums: %s" (R.render_value v)

let test_remote_object_graph () =
  let vm = paused_vm () in
  let sp = space vm in
  let module R = (val Remote_reflection.Remote_object.reflection sp) in
  match R.get_static "Snap" "list" with
  | Remote_reflection.Reflect.Vobj head ->
    Alcotest.(check string) "class" "Node" (R.class_name head);
    (match R.get_field head "v" with
    | Remote_reflection.Reflect.Vint 1 -> ()
    | v -> Alcotest.failf "head.v: %s" (R.render_value v));
    (match R.get_field head "next" with
    | Remote_reflection.Reflect.Vobj second -> (
      match R.get_field second "v" with
      | Remote_reflection.Reflect.Vint 2 -> ()
      | v -> Alcotest.failf "second.v: %s" (R.render_value v))
    | v -> Alcotest.failf "head.next: %s" (R.render_value v))
  | v -> Alcotest.failf "list: %s" (R.render_value v)

let test_remote_equals_local () =
  (* the same reflection code over both sources gives identical renderings *)
  let vm = paused_vm () in
  let sp = space vm in
  let module RR = (val Remote_reflection.Remote_object.reflection sp) in
  let module RL = (val Remote_reflection.Local_object.reflection vm) in
  let queries = [ ("Snap", "answer"); ("Snap", "label"); ("Snap", "nums"); ("Snap", "list") ] in
  List.iter
    (fun (c, f) ->
      let remote = RR.render_value ~depth:3 (RR.get_static c f) in
      let local = RL.render_value ~depth:3 (RL.get_static c f) in
      Alcotest.(check string) (c ^ "." ^ f) local remote)
    queries

let test_perturbation_free () =
  (* the paper's claim: querying through remote reflection leaves the
     application VM bit-identical *)
  let vm = paused_vm () in
  let before = Vm.digest vm in
  let sp = space vm in
  let module R = (val Remote_reflection.Remote_object.reflection sp) in
  for _ = 1 to 50 do
    ignore (R.get_static "Snap" "answer");
    ignore (R.render_value ~depth:4 (R.get_static "Snap" "list"));
    ignore (R.render_value ~depth:4 (R.get_static "Snap" "nums"));
    ignore (Remote_reflection.Remote_frames.frames sp 0)
  done;
  Alcotest.(check bool) "reads happened" true (sp.reads > 100);
  Alcotest.(check int) "state digest unchanged" before (Vm.digest vm)

let test_reads_counted () =
  let vm = paused_vm () in
  let sp = space vm in
  let before = sp.reads in
  let module R = (val Remote_reflection.Remote_object.reflection sp) in
  ignore (R.get_static "Snap" "list");
  Alcotest.(check bool) "counter moved" true (sp.reads > before)

let test_bad_address () =
  let vm = paused_vm () in
  let sp = space vm in
  (match sp.peek (-3) with
  | exception Remote_reflection.Address_space.Bad_address _ -> ()
  | _ -> Alcotest.fail "negative address accepted");
  match sp.peek (sp.heap_top () + 100) with
  | exception Remote_reflection.Address_space.Bad_address _ -> ()
  | _ -> Alcotest.fail "beyond-heap address accepted"

let test_remote_threads () =
  let vm = paused_vm () in
  let sp = space vm in
  Alcotest.(check int) "one thread" 1 (sp.thread_count ());
  let ts = sp.thread 0 in
  Alcotest.(check string) "name" "main" ts.ts_name;
  Alcotest.(check string) "state" "waiting" ts.ts_state

let test_remote_frames () =
  (* remote stack walking matches the VM's own frame walker *)
  let vm = paused_vm () in
  let sp = space vm in
  let remote = Remote_reflection.Remote_frames.frames sp 0 in
  let local = Vm.Frames.frames vm vm.Vm.Rt.threads.(0) in
  Alcotest.(check int) "frame count" (List.length local) (List.length remote);
  List.iter2
    (fun (rf : Remote_reflection.Remote_frames.frame) (lf : Vm.Frames.frame) ->
      Alcotest.(check string) "method" lf.fr_meth.rm_name rf.rf_meth.rm_name;
      Alcotest.(check int) "pc" lf.fr_pc rf.rf_pc)
    remote local

let test_line_number_of () =
  (* Figure 3: lineNumberOf(method, offset) across the "address spaces" *)
  let c = "Lined" in
  let m =
    A.method_ ~nlocals:0 "main"
      [
        A.line 100;
        i (I.Const 1);
        i I.Print;
        A.line 200;
        i (I.New "Object");
        i I.Dup;
        i I.Monitorenter;
        i I.Wait;
        i I.Pop;
        i I.Ret;
      ]
  in
  let p = D.program ~main_class:c [ D.cdecl c [ m ] ] in
  let vm = Vm.create p in
  ignore (Vm.run vm);
  let sp = space vm in
  let uid = (sp.thread 0).ts_meth_uid in
  (* compiled pc 1 should be the Const on line 100 *)
  Alcotest.(check int) "line at pc1" 100
    (Remote_reflection.Remote_frames.line_number_of sp ~method_uid:uid ~offset:1);
  Alcotest.(check int) "bad method" 0
    (Remote_reflection.Remote_frames.line_number_of sp ~method_uid:9999 ~offset:0)

let test_is_instance_of () =
  let vm = paused_vm () in
  let sp = space vm in
  let module R = (val Remote_reflection.Remote_object.reflection sp) in
  match R.get_static "Snap" "list" with
  | Remote_reflection.Reflect.Vobj head ->
    Alcotest.(check bool) "Node" true (R.is_instance_of head "Node");
    Alcotest.(check bool) "Object" true (R.is_instance_of head "Object");
    Alcotest.(check bool) "not String" false (R.is_instance_of head "String")
  | _ -> Alcotest.fail "list"

let test_render_depth_bound () =
  let vm = paused_vm () in
  let sp = space vm in
  let module R = (val Remote_reflection.Remote_object.reflection sp) in
  match R.get_static "Snap" "list" with
  | Remote_reflection.Reflect.Vobj head ->
    let shallow = R.render ~depth:1 head in
    Alcotest.(check bool) "depth bound respected" true
      (contains shallow "..." || not (contains shallow "next=Node{"))
  | _ -> Alcotest.fail "list"

let () =
  Alcotest.run "remote"
    [
      ( "reflection",
        [
          quick "statics" test_remote_statics;
          quick "arrays" test_remote_arrays;
          quick "object graphs" test_remote_object_graph;
          quick "remote equals local" test_remote_equals_local;
          quick "render depth bound" test_render_depth_bound;
          quick "is_instance_of" test_is_instance_of;
        ] );
      ( "perturbation",
        [
          quick "perturbation-free" test_perturbation_free;
          quick "reads counted" test_reads_counted;
          quick "bad addresses rejected" test_bad_address;
        ] );
      ( "threads",
        [
          quick "thread snapshots" test_remote_threads;
          quick "remote frames" test_remote_frames;
          quick "figure 3: line numbers" test_line_number_of;
        ] );
    ]
