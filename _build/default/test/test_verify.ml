(* The verifier: type checking, reference maps, max-stack, rejection of
   ill-typed code. These are the maps the type-accurate GC trusts. *)

open Tutil

let trivial_main = D.mdecl ~nlocals:0 "main" [ I.Ret ]

(* Compile method "m" of class "T" in [prog]; return its compiled form. *)
let compile_m ?(cls = "T") ?(meth = "m") prog =
  let vm = Vm.create prog in
  let cid = Vm.Rt.class_id vm cls in
  let uid = Hashtbl.find (Vm.Rt.the_class vm cid).Vm.Rt.rc_method_of meth in
  Vm.Compile.compile vm (Vm.Rt.the_method vm uid)

let expect_reject ?cls ?meth prog what =
  match compile_m ?cls ?meth prog with
  | exception Vm.Verify.Error _ -> ()
  | _ -> Alcotest.failf "%s: accepted" what

let expect_accept ?cls ?meth prog =
  match compile_m ?cls ?meth prog with
  | c -> c
  | exception Vm.Verify.Error msg -> Alcotest.failf "rejected: %s" msg

let with_m ?args ?ret ?nlocals ?(extra = []) body =
  prog1 ~extra_classes:extra
    [
      trivial_main;
      A.method_ ?args ?ret ~nlocals:(Option.value nlocals ~default:4) "m" body;
    ]

(* --- rejections ---------------------------------------------------------- *)

let test_underflow () =
  expect_reject (with_m [ i I.Add; i I.Pop; i I.Ret ]) "stack underflow"

let test_depth_mismatch () =
  (* one path leaves an extra word on the stack *)
  let body =
    [
      i (I.Const 0);
      i (I.Ifz (I.Eq, "merge"));
      i (I.Const 1);
      l "merge";
      i I.Ret;
    ]
  in
  expect_reject (with_m body) "depth mismatch"

let test_int_ref_conflict () =
  (* a local holds an int on one path, a ref on the other, then is loaded *)
  let body =
    [
      i (I.Const 0);
      i (I.Ifz (I.Eq, "refside"));
      i (I.Const 7);
      i (I.Store 0);
      i (I.Goto "merge");
      l "refside";
      i (I.Sconst "s");
      i (I.Store 0);
      l "merge";
      i (I.Load 0);
      i I.Pop;
      i I.Ret;
    ]
  in
  expect_reject (with_m body) "int/ref conflict"

let test_arith_on_ref () =
  expect_reject
    (with_m [ i (I.Sconst "x"); i (I.Const 1); i I.Add; i I.Pop; i I.Ret ])
    "arith on ref"

let test_aload_non_array () =
  expect_reject
    (with_m [ i (I.Sconst "x"); i (I.Const 0); i I.Aload; i I.Pop; i I.Ret ])
    "aload on string"

let test_astore_elem_type () =
  (* storing a ref into an int[] *)
  let body =
    [
      i (I.Const 3);
      i (I.Newarray I.Tint);
      i (I.Const 0);
      i (I.Sconst "oops");
      i I.Astore;
      i I.Ret;
    ]
  in
  expect_reject (with_m body) "astore ref into int[]"

let test_array_invariance () =
  (* int[] where int[][] expected *)
  let body =
    [
      i (I.Const 1);
      i (I.Newarray (I.Tarr I.Tint));
      i (I.Const 0);
      i (I.Const 2);
      i (I.Newarray I.Tint);
      i I.Astore;
      i I.Ret;
    ]
  in
  (* this one is fine: int[] goes into int[][] *)
  ignore (expect_accept (with_m body));
  (* but ref[] into int[][] is not *)
  let bad =
    [
      i (I.Const 1);
      i (I.Newarray (I.Tarr I.Tint));
      i (I.Const 0);
      i (I.Const 2);
      i (I.Newarray I.Tref);
      i I.Astore;
      i I.Ret;
    ]
  in
  expect_reject (with_m bad) "covariant array store"

let test_retv_in_void () =
  expect_reject (with_m [ i (I.Const 1); i I.Retv ]) "retv in void"

let test_ret_in_valued () =
  expect_reject (with_m ~ret:I.Tint [ i I.Ret ]) "ret in valued"

let test_retv_wrong_type () =
  expect_reject
    (with_m ~ret:I.Tint [ i (I.Sconst "s"); i I.Retv ])
    "retv ref for int"

let test_throw_non_throwable () =
  expect_reject
    (with_m [ i (I.Sconst "s"); i I.Throw ])
    "throw of a String"

let test_putfield_wrong_type () =
  let extra = [ D.cdecl "P" ~fields:[ D.field ~ty:(I.Tobj "P") "next" ] [] ] in
  let body =
    [ i (I.New "P"); i (I.Const 3); i (I.Putfield ("P", "next")); i I.Ret ]
  in
  expect_reject (with_m ~extra body) "int into ref field"

let test_receiver_class_check () =
  (* passing a P where a Q receiver is needed *)
  let extra =
    [
      D.cdecl "P" [];
      D.cdecl "Q"
        [ A.method_ ~static:false ~args:[ I.Tobj "Q" ] ~nlocals:1 "go" [ i I.Ret ] ];
    ]
  in
  let body = [ i (I.New "P"); i (I.Invoke ("Q", "go")); i I.Ret ] in
  expect_reject (with_m ~extra body) "receiver type"

let test_subclass_receiver_ok () =
  let extra =
    [
      D.cdecl "Q"
        [ A.method_ ~static:false ~args:[ I.Tobj "Q" ] ~nlocals:1 "go" [ i I.Ret ] ];
      D.cdecl ~super:"Q" "R" [];
    ]
  in
  let body = [ i (I.New "R"); i (I.Invoke ("Q", "go")); i I.Ret ] in
  ignore (expect_accept (with_m ~extra body))

let test_lca_merge_then_misuse () =
  (* merge R1/R2 (both extend Q): result types as Q; calling an R1-only
     method on it must be rejected *)
  let extra =
    [
      D.cdecl "Q" [];
      D.cdecl ~super:"Q" "R1"
        [ A.method_ ~static:false ~args:[ I.Tobj "R1" ] ~nlocals:1 "only" [ i I.Ret ] ];
      D.cdecl ~super:"Q" "R2" [];
    ]
  in
  let body =
    [
      i (I.Const 0);
      i (I.Ifz (I.Eq, "r2"));
      i (I.New "R1");
      i (I.Goto "merge");
      l "r2";
      i (I.New "R2");
      l "merge";
      i (I.Invoke ("R1", "only"));
      i I.Ret;
    ]
  in
  expect_reject (with_m ~extra body) "lca misuse"

let test_checkcast_recovers_type () =
  let extra =
    [
      D.cdecl "Q" [];
      D.cdecl ~super:"Q" "R1"
        [ A.method_ ~static:false ~args:[ I.Tobj "R1" ] ~nlocals:1 "only" [ i I.Ret ] ];
      D.cdecl ~super:"Q" "R2" [];
    ]
  in
  let body =
    [
      i (I.Const 0);
      i (I.Ifz (I.Eq, "r2"));
      i (I.New "R1");
      i (I.Goto "merge");
      l "r2";
      i (I.New "R2");
      l "merge";
      i (I.Checkcast "R1");
      i (I.Invoke ("R1", "only"));
      i I.Ret;
    ]
  in
  ignore (expect_accept (with_m ~extra body))

(* --- acceptance and reference maps ---------------------------------------- *)

let test_bot_merges () =
  (* a local assigned only on one path merges Bot+Ref = Ref; loading it is
     fine (zero-initialized = null) *)
  let body =
    [
      i (I.Const 0);
      i (I.Ifz (I.Eq, "skip"));
      i (I.Sconst "s");
      i (I.Store 1);
      l "skip";
      i (I.Load 1);
      i I.Pop;
      i I.Ret;
    ]
  in
  ignore (expect_accept (with_m body))

let test_refmaps_locals () =
  let body =
    [
      i (I.Sconst "hello");
      i (I.Store 0);
      i (I.Const 7);
      i (I.Store 1);
      i I.Ret;
    ]
  in
  let c = expect_accept (with_m ~nlocals:2 body) in
  (* at the final Ret, local 0 is a ref, local 1 an int *)
  let ret_pc =
    let found = ref (-1) in
    Array.iteri (fun pc ins -> if ins = Vm.Rt.KRet then found := pc) c.Vm.Rt.k_code;
    !found
  in
  let map = c.Vm.Rt.k_maps.(ret_pc) in
  Alcotest.(check bool) "local0 ref" true map.Vm.Rt.map_locals.(0);
  Alcotest.(check bool) "local1 int" false map.Vm.Rt.map_locals.(1)

let test_refmaps_stack () =
  let body =
    [ i (I.Sconst "x"); i (I.Const 1); i I.Pop; i I.Pop; i I.Ret ]
  in
  let c = expect_accept (with_m body) in
  (* find the first Pop: stack is [ref; int] before it *)
  let pop_pc =
    let found = ref (-1) in
    Array.iteri
      (fun pc ins -> if ins = Vm.Rt.KPop && !found < 0 then found := pc)
      c.Vm.Rt.k_code;
    !found
  in
  let map = c.Vm.Rt.k_maps.(pop_pc) in
  Alcotest.(check int) "depth" 2 map.Vm.Rt.map_depth;
  Alcotest.(check bool) "slot0 ref" true map.Vm.Rt.map_stack.(0);
  Alcotest.(check bool) "slot1 int" false map.Vm.Rt.map_stack.(1)

let test_max_stack () =
  let body =
    [
      i (I.Const 1);
      i (I.Const 2);
      i (I.Const 3);
      i I.Add;
      i I.Add;
      i I.Print;
      i I.Ret;
    ]
  in
  let c = expect_accept (with_m body) in
  Alcotest.(check int) "max stack" 3 c.Vm.Rt.k_max_stack

let test_handler_state () =
  (* at a handler entry the stack is exactly [exception] *)
  let m =
    A.method_with_handlers ~nlocals:1 "m"
      [
        l "try";
        i (I.Const 1);
        i (I.Const 0);
        i I.Div;
        i (I.Store 0);
        l "endtry";
        i I.Ret;
        l "catch";
        i I.Pop;
        i I.Ret;
      ]
      [
        {
          A.ah_from = "try";
          ah_upto = "endtry";
          ah_target = "catch";
          ah_class = Some "ArithmeticException";
        };
      ]
  in
  let prog = prog1 [ trivial_main; m ] in
  let c = expect_accept prog in
  (* the handler target (first Pop after KRet) has depth 1 with a ref *)
  let handler_pc = c.Vm.Rt.k_handlers.(0).Vm.Rt.k_target in
  let map = c.Vm.Rt.k_maps.(handler_pc) in
  Alcotest.(check int) "depth" 1 map.Vm.Rt.map_depth;
  Alcotest.(check bool) "exc is ref" true map.Vm.Rt.map_stack.(0)

let test_yieldpoint_injection () =
  (* loops get a yield point before the backward branch; prologue gets one *)
  let body =
    [
      i (I.Const 10);
      i (I.Store 0);
      l "loop";
      i (I.Load 0);
      i (I.Ifz (I.Le, "end"));
      i (I.Load 0);
      i (I.Const 1);
      i I.Sub;
      i (I.Store 0);
      i (I.Goto "loop");
      l "end";
      i I.Ret;
    ]
  in
  let c = expect_accept (with_m ~nlocals:1 body) in
  let yields =
    Array.to_list c.Vm.Rt.k_code
    |> List.filter (fun x -> x = Vm.Rt.KYield)
    |> List.length
  in
  Alcotest.(check int) "prologue + backedge" 2 yields;
  Alcotest.(check bool) "first is yieldpoint" true (c.Vm.Rt.k_code.(0) = Vm.Rt.KYield)

let test_sync_expansion () =
  (* synchronized methods: enter at entry, exit on return, catch-all *)
  let m =
    A.method_ ~static:false ~sync:true ~args:[ I.Tobj "T" ] ~nlocals:1 "m"
      [ i I.Ret ]
  in
  let prog = prog1 [ trivial_main; m ] in
  let c = expect_accept prog in
  let count x =
    Array.to_list c.Vm.Rt.k_code |> List.filter (fun k -> k = x) |> List.length
  in
  Alcotest.(check int) "one enter" 1 (count Vm.Rt.KMonitorenter);
  Alcotest.(check int) "exit on return and in handler" 2 (count Vm.Rt.KMonitorexit);
  Alcotest.(check bool) "has catch-all" true
    (Array.exists (fun h -> h.Vm.Rt.k_catch = -1) c.Vm.Rt.k_handlers)

let test_src_pc_mapping () =
  let body = [ i (I.Const 1); i I.Print; i I.Ret ] in
  let c = expect_accept (with_m body) in
  (* compiled: KYield; KConst; KPrint; KRet — src pcs 0;0;1;2 *)
  Alcotest.(check (list int)) "src map" [ 0; 0; 1; 2 ]
    (Array.to_list c.Vm.Rt.k_src_pc)

let () =
  Alcotest.run "verify"
    [
      ( "rejection",
        [
          quick "stack underflow" test_underflow;
          quick "depth mismatch" test_depth_mismatch;
          quick "int/ref conflict" test_int_ref_conflict;
          quick "arith on ref" test_arith_on_ref;
          quick "aload on non-array" test_aload_non_array;
          quick "astore elem type" test_astore_elem_type;
          quick "array invariance" test_array_invariance;
          quick "retv in void" test_retv_in_void;
          quick "ret in valued" test_ret_in_valued;
          quick "retv wrong type" test_retv_wrong_type;
          quick "throw non-throwable" test_throw_non_throwable;
          quick "putfield wrong type" test_putfield_wrong_type;
          quick "receiver class" test_receiver_class_check;
          quick "lca merge misuse" test_lca_merge_then_misuse;
        ] );
      ( "acceptance",
        [
          quick "subclass receiver" test_subclass_receiver_ok;
          quick "checkcast recovers" test_checkcast_recovers_type;
          quick "bot merges" test_bot_merges;
        ] );
      ( "artifacts",
        [
          quick "refmaps: locals" test_refmaps_locals;
          quick "refmaps: stack" test_refmaps_stack;
          quick "max stack" test_max_stack;
          quick "handler state" test_handler_state;
          quick "yieldpoint injection" test_yieldpoint_injection;
          quick "sync expansion" test_sync_expansion;
          quick "source pc mapping" test_src_pc_mapping;
        ] );
    ]
