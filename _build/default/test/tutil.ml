(* Shared helpers for the test suites. *)

module I = Bytecode.Instr
module D = Bytecode.Decl
module A = Bytecode.Asm

let i = A.i

let l = A.label

let quick name f = Alcotest.test_case name `Quick f

(* A one-class program named "T". *)
let prog1 ?(statics = []) ?(fields = []) ?(extra_classes = []) methods :
    D.program =
  D.program ~main_class:"T"
    (extra_classes @ [ D.cdecl "T" ~statics ~fields methods ])

(* Run and return (vm, status). *)
let run ?config ?natives ?inputs ?(seed = 1) ?limit prog =
  Vm.execute ?config ?natives ?inputs ~seed ?limit prog

let run_output ?config ?natives ?inputs ?seed ?limit prog =
  let vm, st = run ?config ?natives ?inputs ?seed ?limit prog in
  (Vm.output vm, st)

(* Assert a program finishes and prints [expected]. *)
let expect_output ?config ?natives ?inputs ?seed ?limit prog expected =
  let out, st = run_output ?config ?natives ?inputs ?seed ?limit prog in
  (match st with
  | Vm.Rt.Finished | Vm.Rt.Halted _ -> ()
  | st -> Alcotest.failf "did not finish: %s (output %S)" (Vm.string_of_status st) out);
  Alcotest.(check string) "output" expected out

(* A main method printing whatever [body] leaves as its effects. *)
let main_method ?(nlocals = 4) body = A.method_ ~nlocals "main" body

(* Build a program whose main is just [body]. *)
let main_prog ?statics ?fields ?extra_classes ?nlocals body =
  prog1 ?statics ?fields ?extra_classes [ main_method ?nlocals body ]

(* Shorthand: expected output from printed ints. *)
let printed ints = String.concat "" (List.map (fun n -> string_of_int n ^ "\n") ints)

(* A small-heap / small-stack config to provoke GC and growth. *)
let tiny_config =
  {
    Vm.Rt.default_config with
    Vm.Rt.heap_words = 3000;
    stack_init = 64;
    stack_max = 4096;
  }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let status_testable =
  Alcotest.testable
    (fun ppf st -> Fmt.string ppf (Vm.string_of_status st))
    (fun a b -> a = b)
