test/test_props.ml: A Alcotest Array Baselines Buffer Bytecode D Dejavu Fmt Gen I List QCheck QCheck_alcotest String Tutil Vm Workloads
