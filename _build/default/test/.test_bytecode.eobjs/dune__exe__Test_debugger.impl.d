test/test_debugger.ml: Alcotest Debugger Dejavu Option Remote_reflection String Tutil Vm Workloads
