test/test_link.ml: A Alcotest Array Bytecode D Hashtbl I List Tutil Vm
