test/test_workloads.ml: Alcotest Array Bytecode Dejavu Fmt Lazy List String Tutil Vm Workloads
