test/test_baselines.ml: Alcotest Array Baselines Dejavu Fmt List Tutil Vm Workloads
