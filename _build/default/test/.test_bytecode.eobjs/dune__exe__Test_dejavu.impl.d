test/test_dejavu.ml: Alcotest Array Dejavu Filename Fmt Lazy List Sys Tutil Vm Workloads
