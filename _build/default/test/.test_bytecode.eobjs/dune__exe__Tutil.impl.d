test/tutil.ml: Alcotest Bytecode Fmt List String Vm
