test/test_trace.ml: Alcotest Array Buffer Dejavu Filename Fmt List String Sys Tutil Vm
