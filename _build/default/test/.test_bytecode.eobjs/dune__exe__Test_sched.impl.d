test/test_sched.ml: A Alcotest D Fmt I List Tutil Vm Workloads
