test/test_parser.ml: Alcotest Bytecode D Filename I Lazy List Option Sys Tutil Vm Workloads
