test/test_dejavu.mli:
