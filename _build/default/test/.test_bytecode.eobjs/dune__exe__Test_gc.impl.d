test/test_gc.ml: Alcotest D I Tutil Vm Workloads
