test/test_verify.ml: A Alcotest Array D Hashtbl I List Option Tutil Vm
