test/test_snapshot.ml: Alcotest Debugger Dejavu List Option Tutil Vm Workloads
