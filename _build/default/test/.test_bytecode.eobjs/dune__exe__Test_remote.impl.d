test/test_remote.ml: A Alcotest Array D I List Remote_reflection Tutil Vm
