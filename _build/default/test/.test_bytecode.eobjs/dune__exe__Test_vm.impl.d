test/test_vm.ml: A Alcotest Bytecode D I List Tutil Vm Workloads
