test/test_exceptions.ml: A Alcotest D I Option Tutil Vm Workloads
