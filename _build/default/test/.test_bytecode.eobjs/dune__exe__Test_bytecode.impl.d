test/test_bytecode.ml: A Alcotest Array Bytecode D I List String Tutil Workloads
