(* DejaVu record/replay: the paper's accuracy criterion (identical event
   sequences and states), precision (record mode behaves like live mode),
   symmetry, trace integrity, and divergence detection. *)

open Tutil

let roundtrip ?config ?seed (e : Workloads.Registry.entry) =
  Dejavu.verify_roundtrip ?config ~natives:e.natives ?seed e.program

let entry name =
  match Workloads.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "no workload %s" name

let check_rt name rt =
  if not (Dejavu.ok rt) then
    Alcotest.failf "%s: %s" name (Fmt.str "%a" Dejavu.pp_roundtrip rt)

(* --- accuracy across the whole catalogue ------------------------------- *)

let test_all_workloads_roundtrip () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun seed -> check_rt (Fmt.str "%s/seed%d" e.name seed) (roundtrip ~seed e))
        [ 1; 5 ])
    (Lazy.force Workloads.Registry.all)

let test_roundtrip_under_gc_pressure () =
  let e = entry "gc-churn" in
  let config = { Vm.Rt.default_config with heap_words = 6000 } in
  let rt = roundtrip ~config ~seed:3 e in
  check_rt "gc-churn small heap" rt;
  Alcotest.(check bool) "collections happened" true
    ((Vm.stats rt.recorded.vm).n_gc > 0)

let test_deadlock_replays () =
  (* record a deadlocked execution; replay must deadlock identically *)
  let e = entry "philosophers-deadlock" in
  let seed =
    let rec find s =
      if s > 200 then None
      else
        let _, st = run ~seed:s e.program in
        if st = Vm.Rt.Deadlocked then Some s else find (s + 1)
    in
    find 1
  in
  match seed with
  | None -> () (* no deadlocking seed found: nothing to check *)
  | Some seed ->
    let rt = roundtrip ~seed e in
    check_rt "deadlock roundtrip" rt;
    Alcotest.check status_testable "recorded deadlock" Vm.Rt.Deadlocked
      rt.recorded.status;
    Alcotest.check status_testable "replayed deadlock" Vm.Rt.Deadlocked
      rt.replayed.status

(* --- precision: record mode behaves like live mode --------------------- *)

let test_record_matches_live () =
  List.iter
    (fun name ->
      let e = entry name in
      let vm_live = Vm.create ~natives:e.natives e.program in
      let obs_live = Vm.Observer.attach_digest vm_live in
      ignore (Vm.run vm_live);
      let rec_run, _trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
      Alcotest.(check string)
        (name ^ ": outputs equal")
        (Vm.output vm_live) rec_run.Dejavu.output;
      Alcotest.(check int)
        (name ^ ": event streams equal")
        (Vm.Observer.digest obs_live)
        rec_run.Dejavu.obs_digest)
    [ "fig1ab"; "racy-counter"; "producer-consumer"; "timed"; "bank" ]

(* --- determinism of replay itself --------------------------------------- *)

let test_replay_twice_identical () =
  let e = entry "bank" in
  let _, trace = Dejavu.record ~natives:e.natives ~seed:4 e.program in
  let r1, _ = Dejavu.replay ~natives:e.natives ~seed:111 e.program trace in
  let r2, _ = Dejavu.replay ~natives:e.natives ~seed:999 e.program trace in
  Alcotest.(check string) "outputs" r1.Dejavu.output r2.Dejavu.output;
  Alcotest.(check int) "digests" r1.Dejavu.state_digest r2.Dejavu.state_digest;
  Alcotest.(check int) "events" r1.Dejavu.obs_digest r2.Dejavu.obs_digest

let test_different_seeds_diverge () =
  let e = entry "racy-counter" in
  let outs =
    List.map
      (fun seed ->
        let vm, _ = run ~seed e.program in
        Vm.output vm)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "some difference" true
    (List.length (List.sort_uniq compare outs) > 1)

(* --- trace contents ------------------------------------------------------ *)

let test_trace_contents_switches_only () =
  let e = entry "primes" in
  let run_, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let s = Dejavu.Trace.sizes trace in
  Alcotest.(check int) "no clock reads" 0 s.Dejavu.Trace.n_clock_reads;
  Alcotest.(check int) "no inputs" 0 s.Dejavu.Trace.n_inputs;
  Alcotest.(check int) "no natives" 0 s.Dejavu.Trace.n_native_words;
  Alcotest.(check bool) "some switches" true (s.Dejavu.Trace.n_switches > 0);
  Alcotest.(check bool) "bounded by preempt requests" true
    (s.Dejavu.Trace.n_switches <= (Vm.stats run_.Dejavu.vm).n_preempt_req)

let test_trace_records_inputs_and_natives () =
  let e = entry "native" in
  let _, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let s = Dejavu.Trace.sizes trace in
  Alcotest.(check bool) "native words" true (s.Dejavu.Trace.n_native_words > 0);
  let e2 = entry "bank" in
  let _, trace2 = Dejavu.record ~natives:e2.natives ~seed:1 e2.program in
  Alcotest.(check int) "bank inputs" 450
    (Dejavu.Trace.sizes trace2).Dejavu.Trace.n_inputs

let test_switch_deltas_match_yieldpoints () =
  let e = entry "fig1ab" in
  let run_, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let sum = Array.fold_left ( + ) 0 trace.Dejavu.Trace.switches in
  Alcotest.(check bool) "sum <= yields" true
    (sum <= (Vm.stats run_.Dejavu.vm).n_yield);
  Alcotest.(check bool) "all deltas positive" true
    (Array.for_all (fun d -> d > 0) trace.Dejavu.Trace.switches)

(* --- divergence detection ------------------------------------------------ *)

let test_wrong_program_rejected () =
  let e1 = entry "fig1ab" and e2 = entry "fig1cd" in
  let _, trace = Dejavu.record ~natives:e1.natives ~seed:1 e1.program in
  let r, _ = Dejavu.replay ~natives:e2.natives e2.program trace in
  match r.Dejavu.status with
  | Vm.Rt.Fatal msg ->
    Alcotest.(check bool) "mentions divergence" true (contains msg "divergence")
  | st -> Alcotest.failf "accepted wrong program: %s" (Vm.string_of_status st)

let test_tampered_clock_detected () =
  let e = entry "fig1cd" in
  let rec_run, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let clocks = Array.copy trace.Dejavu.Trace.clocks in
  if Array.length clocks >= 2 then clocks.(1) <- clocks.(1) + 13;
  let tampered = { trace with Dejavu.Trace.clocks } in
  let rep, leftovers = Dejavu.replay ~natives:e.natives e.program tampered in
  let detected =
    (match rep.Dejavu.status with Vm.Rt.Fatal _ -> true | _ -> false)
    || leftovers <> []
    || rep.Dejavu.output <> rec_run.Dejavu.output
    || rep.Dejavu.state_digest <> rec_run.Dejavu.state_digest
  in
  Alcotest.(check bool) "tampering visible" true detected

let test_truncated_switch_tape () =
  (* removing a switch from the middle of the tape shifts every later
     switch: the replayed event sequence cannot match the recording *)
  let e = entry "racy-counter" in
  let rec_run, trace = Dejavu.record ~natives:e.natives ~seed:1 e.program in
  let sw = trace.Dejavu.Trace.switches in
  let n = Array.length sw in
  if n > 4 then begin
    let k = n / 2 in
    let dropped =
      Array.append (Array.sub sw 0 k) (Array.sub sw (k + 1) (n - k - 1))
    in
    let tampered = { trace with Dejavu.Trace.switches = dropped } in
    let rep, _ = Dejavu.replay ~natives:e.natives e.program tampered in
    Alcotest.(check bool) "event stream differs" true
      (rep.Dejavu.obs_digest <> rec_run.Dejavu.obs_digest
      ||
      match rep.Dejavu.status with Vm.Rt.Fatal _ -> true | _ -> false)
  end

(* --- symmetry -------------------------------------------------------------- *)

let test_symmetric_state_digests () =
  let rt = roundtrip ~seed:2 (entry "producer-consumer") in
  Alcotest.(check int) "state digest incl. instrumentation heap"
    rt.recorded.state_digest rt.replayed.state_digest

let test_asymmetry_is_visible () =
  (* negative control for section 2.4: an instrumentation side effect that
     happens in one mode only (here: an extra replay-side allocation before
     attaching) keeps outputs equal — the GC is transparent — but the
     machine states are no longer bit-identical, which is exactly the
     guarantee symmetry buys *)
  let e = entry "gc-churn" in
  let config = { Vm.Rt.default_config with heap_words = 6000 } in
  let rec_run, trace =
    Dejavu.record ~config ~natives:e.natives ~seed:3 e.program
  in
  let vm = Vm.create ~config ~natives:e.natives e.program in
  (* the asymmetric side effect: a pinned (live) allocation, like a class
     loaded by the instrumentation in one mode only *)
  ignore (Vm.Heap.pin vm (Vm.Heap.alloc_array vm ~elem_ref:false ~len:32));
  let session = Dejavu.Replayer.attach vm trace in
  let observer = Vm.Observer.attach_digest vm in
  ignore (Vm.run vm);
  ignore session;
  Alcotest.(check string) "outputs still equal" rec_run.Dejavu.output
    (Vm.output vm);
  Alcotest.(check int) "event streams still equal" rec_run.Dejavu.obs_digest
    (Vm.Observer.digest observer);
  Alcotest.(check bool) "but states differ (symmetry broken)" true
    (Vm.digest vm <> rec_run.Dejavu.state_digest)

let test_ring_is_pinned () =
  let config = { Vm.Rt.default_config with heap_words = 5000 } in
  check_rt "pinned ring" (roundtrip ~config ~seed:7 (entry "gc-churn"))

(* --- persistence ------------------------------------------------------------ *)

let test_trace_file_roundtrip () =
  let e = entry "fig1cd" in
  let _, trace = Dejavu.record ~natives:e.natives ~seed:3 e.program in
  let path = Filename.temp_file "dv" ".trace" in
  Dejavu.Trace.save path trace;
  let loaded = Dejavu.Trace.load path in
  Sys.remove path;
  let r1, _ = Dejavu.replay ~natives:e.natives e.program trace in
  let r2, _ = Dejavu.replay ~natives:e.natives e.program loaded in
  Alcotest.(check int) "same replay" r1.Dejavu.state_digest r2.Dejavu.state_digest

let () =
  Alcotest.run "dejavu"
    [
      ( "accuracy",
        [
          quick "all workloads roundtrip" test_all_workloads_roundtrip;
          quick "roundtrip under GC pressure" test_roundtrip_under_gc_pressure;
          quick "deadlock replays" test_deadlock_replays;
        ] );
      ( "precision",
        [
          quick "record matches live" test_record_matches_live;
          quick "replay is deterministic" test_replay_twice_identical;
          quick "seeds do diverge" test_different_seeds_diverge;
        ] );
      ( "trace",
        [
          quick "compute workload: switches only" test_trace_contents_switches_only;
          quick "inputs and natives recorded" test_trace_records_inputs_and_natives;
          quick "switch deltas vs yield points" test_switch_deltas_match_yieldpoints;
          quick "file roundtrip" test_trace_file_roundtrip;
        ] );
      ( "divergence",
        [
          quick "wrong program rejected" test_wrong_program_rejected;
          quick "tampered clock detected" test_tampered_clock_detected;
          quick "truncated switches detected" test_truncated_switch_tape;
        ] );
      ( "symmetry",
        [
          quick "state digests symmetric" test_symmetric_state_digests;
          quick "asymmetry is visible" test_asymmetry_is_visible;
          quick "ring pinned across GC" test_ring_is_pinned;
        ] );
    ]
