(* Bytecode layer: instruction helpers, assembler, declarations, static
   checks, disassembler. *)

open Tutil

(* --- Instr ------------------------------------------------------------ *)

let test_eval_cmp () =
  let open Bytecode.Instr in
  Alcotest.(check bool) "eq t" true (eval_cmp Eq 3 3);
  Alcotest.(check bool) "eq f" false (eval_cmp Eq 3 4);
  Alcotest.(check bool) "ne t" true (eval_cmp Ne 3 4);
  Alcotest.(check bool) "ne f" false (eval_cmp Ne 3 3);
  Alcotest.(check bool) "lt t" true (eval_cmp Lt (-1) 0);
  Alcotest.(check bool) "lt f" false (eval_cmp Lt 0 0);
  Alcotest.(check bool) "le t" true (eval_cmp Le 0 0);
  Alcotest.(check bool) "le f" false (eval_cmp Le 1 0);
  Alcotest.(check bool) "gt t" true (eval_cmp Gt 5 4);
  Alcotest.(check bool) "gt f" false (eval_cmp Gt 4 4);
  Alcotest.(check bool) "ge t" true (eval_cmp Ge 4 4);
  Alcotest.(check bool) "ge f" false (eval_cmp Ge 3 4)

let test_falls_through () =
  let open Bytecode.Instr in
  Alcotest.(check bool) "goto" false (falls_through (Goto 0));
  Alcotest.(check bool) "ret" false (falls_through Ret);
  Alcotest.(check bool) "retv" false (falls_through Retv);
  Alcotest.(check bool) "throw" false (falls_through Throw);
  Alcotest.(check bool) "halt" false (falls_through Halt);
  Alcotest.(check bool) "if" true (falls_through (If (Eq, 0)));
  Alcotest.(check bool) "add" true (falls_through Add);
  Alcotest.(check bool) "invoke" true (falls_through (Invoke ("C", "m")))

let test_target () =
  let open Bytecode.Instr in
  Alcotest.(check (option int)) "goto" (Some 7) (target (Goto 7));
  Alcotest.(check (option int)) "if" (Some 3) (target (If (Lt, 3)));
  Alcotest.(check (option int)) "ifz" (Some 2) (target (Ifz (Eq, 2)));
  Alcotest.(check (option int)) "ifnull" (Some 1) (target (Ifnull 1));
  Alcotest.(check (option int)) "ifrefeq" (Some 9) (target (Ifrefeq 9));
  Alcotest.(check (option int)) "add" None (target Add)

let test_map_target () =
  let open Bytecode.Instr in
  let f x = x + 10 in
  Alcotest.(check (option int)) "goto mapped" (Some 15) (target (map_target f (Goto 5)));
  Alcotest.(check (option int)) "if mapped" (Some 12) (target (map_target f (If (Ge, 2))));
  (match map_target f (Const 3) with
  | Const 3 -> ()
  | _ -> Alcotest.fail "const unchanged");
  match map_target f (Invoke ("C", "m")) with
  | Invoke ("C", "m") -> ()
  | _ -> Alcotest.fail "invoke unchanged"

let test_ty () =
  let open Bytecode.Instr in
  Alcotest.(check bool) "int" false (is_ref_ty Tint);
  Alcotest.(check bool) "ref" true (is_ref_ty Tref);
  Alcotest.(check bool) "obj" true (is_ref_ty (Tobj "X"));
  Alcotest.(check bool) "arr" true (is_ref_ty (Tarr Tint));
  Alcotest.(check string) "show" "int[][]" (string_of_ty (Tarr (Tarr Tint)));
  Alcotest.(check string) "obj show" "Point" (string_of_ty (Tobj "Point"))

let test_pp () =
  let open Bytecode.Instr in
  Alcotest.(check string) "const" "const 42" (to_string (Const 42));
  Alcotest.(check string) "goto" "goto @3" (to_string (Goto 3));
  Alcotest.(check string) "getfield" "getfield C.f" (to_string (Getfield ("C", "f")));
  Alcotest.(check string) "newarray" "newarray int[]" (to_string (Newarray (Tarr Tint)));
  Alcotest.(check string) "sconst" "sconst \"hi\"" (to_string (Sconst "hi"))

(* --- Asm --------------------------------------------------------------- *)

let test_asm_labels () =
  let code, _lines =
    A.assemble [ l "top"; i (I.Const 1); i (I.Goto "top"); l "end"; i I.Ret ]
  in
  Alcotest.(check int) "len" 3 (Array.length code);
  (match code.(1) with
  | I.Goto 0 -> ()
  | x -> Alcotest.failf "goto resolved wrong: %s" (I.to_string x));
  match code.(2) with I.Ret -> () | _ -> Alcotest.fail "ret"

let test_asm_forward_label () =
  let code, _ = A.assemble [ i (I.Goto "fwd"); i I.Nop; l "fwd"; i I.Ret ] in
  match code.(0) with
  | I.Goto 2 -> ()
  | x -> Alcotest.failf "forward: %s" (I.to_string x)

let test_asm_duplicate_label () =
  match A.assemble [ l "x"; i I.Ret; l "x" ] with
  | exception A.Error _ -> ()
  | _ -> Alcotest.fail "duplicate label accepted"

let test_asm_undefined_label () =
  match A.assemble [ i (I.Goto "nowhere") ] with
  | exception A.Error _ -> ()
  | _ -> Alcotest.fail "undefined label accepted"

let test_asm_rejects_yieldpoint () =
  match A.assemble [ i I.Yieldpoint; i I.Ret ] with
  | exception A.Error _ -> ()
  | _ -> Alcotest.fail "user yieldpoint accepted"

let test_asm_lines () =
  let _, lines =
    A.assemble
      [ A.line 10; i I.Nop; i I.Nop; A.line 12; i I.Ret ]
  in
  Alcotest.(check (list (pair int int))) "line table" [ (0, 10); (2, 12) ] lines

let test_asm_handlers () =
  let m =
    A.method_with_handlers ~nlocals:0 "m"
      [ l "a"; i I.Nop; l "b"; i I.Ret; l "h"; i I.Pop; i I.Ret ]
      [ { A.ah_from = "a"; ah_upto = "b"; ah_target = "h"; ah_class = None } ]
  in
  match m.D.m_handlers with
  | [ h ] ->
    Alcotest.(check int) "from" 0 h.D.h_from;
    Alcotest.(check int) "upto" 1 h.D.h_upto;
    Alcotest.(check int) "target" 2 h.D.h_target
  | _ -> Alcotest.fail "handler count"

(* --- Decl --------------------------------------------------------------- *)

let test_mdecl_validation () =
  match D.mdecl ~args:[ I.Tint; I.Tint ] ~nlocals:1 "m" [ I.Ret ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nlocals < nargs accepted"

let test_line_of_pc () =
  let m =
    D.mdecl ~nlocals:0 ~lines:[ (0, 5); (3, 8) ] "m" [ I.Nop; I.Nop; I.Nop; I.Ret ]
  in
  Alcotest.(check (option int)) "pc0" (Some 5) (D.line_of_pc m 0);
  Alcotest.(check (option int)) "pc2" (Some 5) (D.line_of_pc m 2);
  Alcotest.(check (option int)) "pc3" (Some 8) (D.line_of_pc m 3)

let test_digest_stability () =
  let p1 = Workloads.Fig1.ab () in
  let p2 = Workloads.Fig1.ab () in
  Alcotest.(check string) "same program same digest" (D.digest p1) (D.digest p2);
  let p3 = Workloads.Fig1.ab ~work:999 () in
  Alcotest.(check bool) "different program different digest" false
    (D.digest p1 = D.digest p3)

let test_program_builders () =
  let p = main_prog [ i I.Ret ] in
  Alcotest.(check string) "main class" "T" p.D.main_class;
  Alcotest.(check bool) "find class" true (D.find_class p "T" <> None);
  Alcotest.(check bool) "find missing" true (D.find_class p "X" = None);
  match D.find_class p "T" with
  | Some c ->
    Alcotest.(check bool) "find method" true (D.find_method c "main" <> None)
  | None -> Alcotest.fail "class"

(* --- Check --------------------------------------------------------------- *)

let issues p = List.length (Bytecode.Check.check p)

let test_check_good_program () =
  Alcotest.(check int) "no issues" 0 (issues (Workloads.Fig1.ab ()));
  Alcotest.(check int) "no issues cd" 0 (issues (Workloads.Fig1.cd ()));
  Alcotest.(check int) "bank fine" 0 (issues (Workloads.Bank.program ()))

let test_check_missing_main () =
  let p = D.program ~main_class:"T" [ D.cdecl "T" [] ] in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_branch_range () =
  let p = prog1 [ D.mdecl ~nlocals:0 "main" [ I.Goto 99 ] ] in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_fall_off_end () =
  let p = prog1 [ D.mdecl ~nlocals:0 "main" [ I.Nop ] ] in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_local_range () =
  let p = prog1 [ D.mdecl ~nlocals:1 "main" [ I.Load 5; I.Pop; I.Ret ] ] in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_unknown_class () =
  let p = prog1 [ D.mdecl ~nlocals:0 "main" [ I.New "Nope"; I.Pop; I.Ret ] ] in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_unknown_field () =
  let p =
    prog1 [ D.mdecl ~nlocals:0 "main" [ I.Getstatic ("T", "zzz"); I.Pop; I.Ret ] ]
  in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_unknown_method () =
  let p = prog1 [ D.mdecl ~nlocals:0 "main" [ I.Invoke ("T", "nope"); I.Ret ] ] in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_duplicate_class () =
  let p =
    D.program ~main_class:"T"
      [ D.cdecl "T" [ D.mdecl ~nlocals:0 "main" [ I.Ret ] ]; D.cdecl "T" [] ]
  in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_builtin_redefinition () =
  let p =
    D.program ~main_class:"T"
      [
        D.cdecl "T" [ D.mdecl ~nlocals:0 "main" [ I.Ret ] ];
        D.cdecl "String" [];
      ]
  in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_handler_range () =
  let p =
    prog1
      [
        D.mdecl ~nlocals:0
          ~handlers:[ { D.h_from = 0; h_upto = 9; h_target = 0; h_class = None } ]
          "main" [ I.Ret ];
      ]
  in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_instance_receiver () =
  let p =
    prog1
      [
        D.mdecl ~nlocals:0 "main" [ I.Ret ];
        D.mdecl ~static:false ~args:[ I.Tint ] ~nlocals:1 "m" [ I.Ret ];
      ]
  in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_sync_static () =
  let p =
    prog1
      [
        D.mdecl ~nlocals:0 "main" [ I.Ret ];
        D.mdecl ~sync:true ~args:[ I.Tint ] ~nlocals:1 "m" [ I.Ret ];
      ]
  in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_unknown_ty () =
  let p =
    prog1 ~statics:[ D.field ~ty:(I.Tobj "Ghost") "g" ]
      [ D.mdecl ~nlocals:0 "main" [ I.Ret ] ]
  in
  Alcotest.(check bool) "flagged" true (issues p > 0)

let test_check_superclass_cycle () =
  let p =
    D.program ~main_class:"T"
      [
        D.cdecl ~super:"B" "A" [];
        D.cdecl ~super:"A" "B" [];
        D.cdecl "T" [ D.mdecl ~nlocals:0 "main" [ I.Ret ] ];
      ]
  in
  Alcotest.(check bool) "flagged" true (issues p > 0)

(* --- Disasm -------------------------------------------------------------- *)

let test_disasm' () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let s = Bytecode.Disasm.program_to_string (Workloads.Fig1.ab ()) in
  Alcotest.(check bool) "class header" true (contains s "class Fig1AB");
  Alcotest.(check bool) "method" true (contains s "static main");
  Alcotest.(check bool) "spawn" true (contains s "spawn Fig1AB.t1");
  Alcotest.(check bool) "statics" true (contains s "static x : int")

let () =
  Alcotest.run "bytecode"
    [
      ( "instr",
        [
          quick "eval_cmp" test_eval_cmp;
          quick "falls_through" test_falls_through;
          quick "target" test_target;
          quick "map_target" test_map_target;
          quick "types" test_ty;
          quick "pretty-printing" test_pp;
        ] );
      ( "asm",
        [
          quick "labels resolve" test_asm_labels;
          quick "forward labels" test_asm_forward_label;
          quick "duplicate label rejected" test_asm_duplicate_label;
          quick "undefined label rejected" test_asm_undefined_label;
          quick "yieldpoint rejected" test_asm_rejects_yieldpoint;
          quick "line directives" test_asm_lines;
          quick "symbolic handlers" test_asm_handlers;
        ] );
      ( "decl",
        [
          quick "mdecl validation" test_mdecl_validation;
          quick "line_of_pc" test_line_of_pc;
          quick "digest stability" test_digest_stability;
          quick "program builders" test_program_builders;
        ] );
      ( "check",
        [
          quick "good programs pass" test_check_good_program;
          quick "missing main" test_check_missing_main;
          quick "branch out of range" test_check_branch_range;
          quick "fall off end" test_check_fall_off_end;
          quick "local out of range" test_check_local_range;
          quick "unknown class" test_check_unknown_class;
          quick "unknown field" test_check_unknown_field;
          quick "unknown method" test_check_unknown_method;
          quick "duplicate class" test_check_duplicate_class;
          quick "builtin redefinition" test_check_builtin_redefinition;
          quick "handler range" test_check_handler_range;
          quick "instance needs receiver" test_check_instance_receiver;
          quick "sync static rejected" test_check_sync_static;
          quick "unknown type name" test_check_unknown_ty;
          quick "superclass cycle" test_check_superclass_cycle;
        ] );
      ("disasm", [ quick "listing" test_disasm' ]);
    ]
