(* Exceptions: builtin runtime exceptions, user throwables, handler
   selection, unwinding across frames and monitors, uncaught behaviour. *)

open Tutil

let catch_all body handler =
  A.method_with_handlers ~nlocals:4 "main"
    ([ l "try" ] @ body @ [ l "endtry"; i I.Ret; l "catch" ] @ handler)
    [ { A.ah_from = "try"; ah_upto = "endtry"; ah_target = "catch"; ah_class = None } ]

let expect_catch ?extra_classes body expected =
  let m = catch_all body [ i I.Pop; i (I.Const 777); i I.Print; i I.Ret ] in
  let p =
    D.program ~main_class:"T"
      (Option.value extra_classes ~default:[] @ [ D.cdecl "T" [ m ] ])
  in
  expect_output p (printed (expected @ [ 777 ]))

let test_div_by_zero () =
  expect_catch [ i (I.Const 1); i (I.Const 0); i I.Div; i I.Print ] []

let test_rem_by_zero () =
  expect_catch [ i (I.Const 1); i (I.Const 0); i I.Rem; i I.Print ] []

let test_npe_getfield () =
  expect_catch
    ~extra_classes:[ D.cdecl "P" ~fields:[ D.field "x" ] [] ]
    [ i I.Null; i (I.Checkcast "P"); i (I.Getfield ("P", "x")); i I.Print ]
    []

let test_npe_monitorenter () =
  expect_catch [ i I.Null; i I.Monitorenter ] []

let test_npe_prints () = expect_catch [ i I.Null; i (I.Checkcast "String"); i I.Prints ] []

let test_npe_throw_null () = expect_catch [ i I.Null; i (I.Checkcast "Throwable"); i I.Throw ] []

let test_bounds_low () =
  expect_catch
    [
      i (I.Const 3);
      i (I.Newarray I.Tint);
      i (I.Const (-1));
      i I.Aload;
      i I.Print;
    ]
    []

let test_bounds_high () =
  expect_catch
    [
      i (I.Const 3);
      i (I.Newarray I.Tint);
      i (I.Const 3);
      i (I.Const 0);
      i I.Astore;
    ]
    []

let test_negative_array_size () =
  expect_catch [ i (I.Const (-2)); i (I.Newarray I.Tint); i I.Pop ] []

let test_class_cast () =
  expect_catch
    ~extra_classes:[ D.cdecl "Q" []; D.cdecl "R" [] ]
    [ i (I.New "Q"); i (I.Checkcast "Object"); i (I.Checkcast "R"); i I.Pop ]
    []

(* --- handler selection ---------------------------------------------------- *)

let test_specific_handler_wins () =
  (* the matching class handler runs, not the catch-all after it *)
  let m =
    A.method_with_handlers ~nlocals:0 "main"
      [
        l "try";
        i (I.Const 1);
        i (I.Const 0);
        i I.Div;
        i I.Pop;
        l "endtry";
        i I.Ret;
        l "arith";
        i I.Pop;
        i (I.Const 1);
        i I.Print;
        i I.Ret;
        l "all";
        i I.Pop;
        i (I.Const 2);
        i I.Print;
        i I.Ret;
      ]
      [
        {
          A.ah_from = "try";
          ah_upto = "endtry";
          ah_target = "arith";
          ah_class = Some "ArithmeticException";
        };
        { A.ah_from = "try"; ah_upto = "endtry"; ah_target = "all"; ah_class = None };
      ]
  in
  expect_output (prog1 [ m ]) (printed [ 1 ])

let test_non_matching_handler_skipped () =
  (* an NPE handler does not catch an arithmetic exception *)
  let m =
    A.method_with_handlers ~nlocals:0 "main"
      [
        l "try";
        i (I.Const 1);
        i (I.Const 0);
        i I.Div;
        i I.Pop;
        l "endtry";
        i I.Ret;
        l "npe";
        i I.Pop;
        i (I.Const 1);
        i I.Print;
        i I.Ret;
        l "all";
        i I.Pop;
        i (I.Const 2);
        i I.Print;
        i I.Ret;
      ]
      [
        {
          A.ah_from = "try";
          ah_upto = "endtry";
          ah_target = "npe";
          ah_class = Some "NullPointerException";
        };
        { A.ah_from = "try"; ah_upto = "endtry"; ah_target = "all"; ah_class = None };
      ]
  in
  expect_output (prog1 [ m ]) (printed [ 2 ])

let test_range_respected () =
  (* an exception outside the covered range is not caught *)
  let m =
    A.method_with_handlers ~nlocals:0 "main"
      [
        l "try";
        i I.Nop;
        l "endtry";
        i (I.Const 1);
        i (I.Const 0);
        i I.Div;
        i I.Pop;
        i I.Ret;
        l "catch";
        i I.Pop;
        i (I.Const 1);
        i I.Print;
        i I.Ret;
      ]
      [ { A.ah_from = "try"; ah_upto = "endtry"; ah_target = "catch"; ah_class = None } ]
  in
  let vm, st = run (prog1 [ m ]) in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check bool) "uncaught" true
    (contains (Vm.output vm) "uncaught ArithmeticException")

let test_user_exception_hierarchy () =
  (* MyError extends AppError extends Throwable; catching AppError catches
     MyError, catching Throwable catches everything *)
  let extra =
    [ D.cdecl ~super:"Throwable" "AppError" []; D.cdecl ~super:"AppError" "MyError" [] ]
  in
  let m =
    A.method_with_handlers ~nlocals:0 "main"
      [
        l "try";
        i (I.New "MyError");
        i I.Throw;
        l "endtry";
        i I.Ret;
        l "app";
        i I.Pop;
        i (I.Const 1);
        i I.Print;
        i I.Ret;
      ]
      [
        {
          A.ah_from = "try";
          ah_upto = "endtry";
          ah_target = "app";
          ah_class = Some "AppError";
        };
      ]
  in
  expect_output (D.program ~main_class:"T" (extra @ [ D.cdecl "T" [ m ] ]))
    (printed [ 1 ])

let test_unwind_across_frames () =
  (* the exception propagates through an intermediate frame *)
  let middle =
    A.method_ ~nlocals:0 "middle"
      [ i (I.Invoke ("T", "thrower")); i I.Ret ]
  in
  let thrower =
    A.method_ ~nlocals:0 "thrower" [ i (I.Const 1); i (I.Const 0); i I.Div; i I.Pop; i I.Ret ]
  in
  let m = catch_all [ i (I.Invoke ("T", "middle")) ] [ i I.Pop; i (I.Const 777); i I.Print; i I.Ret ] in
  expect_output (D.program [ D.cdecl "T" [ m; middle; thrower ] ]) (printed [ 777 ])

let test_rethrow () =
  let inner =
    A.method_with_handlers ~nlocals:0 "inner"
      [
        l "try";
        i (I.Const 1);
        i (I.Const 0);
        i I.Div;
        i I.Pop;
        l "endtry";
        i I.Ret;
        l "catch";
        i (I.Const 5);
        i I.Print;
        i I.Throw;
      ]
      [ { A.ah_from = "try"; ah_upto = "endtry"; ah_target = "catch"; ah_class = None } ]
  in
  let m = catch_all [ i (I.Invoke ("T", "inner")) ] [ i I.Pop; i (I.Const 777); i I.Print; i I.Ret ] in
  expect_output (D.program [ D.cdecl "T" [ m; inner ] ]) (printed [ 5; 777 ])

let test_sync_unwind_releases_monitor () =
  (* a synchronized method that throws releases its monitor: another thread
     can then acquire it *)
  let c = "SyncRel" in
  let boom =
    A.method_ ~static:false ~sync:true ~args:[ I.Tobj c ] ~nlocals:1 "boom"
      [ i (I.Const 1); i (I.Const 0); i I.Div; i I.Pop; i I.Ret ]
  in
  let worker =
    A.method_ ~args:[ I.Tobj c ] ~nlocals:1 "worker"
      [
        i (I.Load 0);
        i I.Monitorenter;
        i (I.Const 4);
        i I.Print;
        i (I.Load 0);
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let main =
    A.method_with_handlers ~nlocals:2 "main"
      [
        i (I.New c);
        i (I.Store 0);
        l "try";
        i (I.Load 0);
        i (I.Invoke (c, "boom"));
        l "endtry";
        i I.Ret;
        l "catch";
        i I.Pop;
        i (I.Load 0);
        i (I.Spawn (c, "worker"));
        i (I.Store 1);
        i (I.Load 1);
        i I.Join;
        i I.Ret;
      ]
      [ { A.ah_from = "try"; ah_upto = "endtry"; ah_target = "catch"; ah_class = None } ]
  in
  expect_output (D.program ~main_class:c [ D.cdecl c [ boom; worker; main ] ])
    (printed [ 4 ])

let test_thread_death_isolated () =
  (* one thread dying does not stop the others *)
  let vm, st = run (Workloads.Exceptions_wl.program ()) in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  let out = Vm.output vm in
  Alcotest.(check bool) "doomed died" true
    (contains out "uncaught ArrayIndexOutOfBoundsException");
  Alcotest.(check bool) "others survived" true (contains out "survived")

let test_stack_overflow_caught () =
  let vm, st = run (Workloads.Deep.overflow ()) in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check string) "caught" "caught overflow\n" (Vm.output vm)

let test_operand_stack_cleared_at_handler () =
  (* junk on the operand stack at throw time is discarded *)
  let m =
    A.method_with_handlers ~nlocals:0 "main"
      [
        l "try";
        i (I.Const 11);
        i (I.Const 22);
        i (I.Const 1);
        i (I.Const 0);
        i I.Div;
        i I.Pop;
        i I.Pop;
        i I.Pop;
        l "endtry";
        i I.Ret;
        l "catch";
        i I.Pop (* just the exception *);
        i (I.Const 1);
        i I.Print;
        i I.Ret;
      ]
      [ { A.ah_from = "try"; ah_upto = "endtry"; ah_target = "catch"; ah_class = None } ]
  in
  expect_output (prog1 [ m ]) (printed [ 1 ])

let () =
  Alcotest.run "exceptions"
    [
      ( "builtin",
        [
          quick "div by zero" test_div_by_zero;
          quick "rem by zero" test_rem_by_zero;
          quick "npe getfield" test_npe_getfield;
          quick "npe monitorenter" test_npe_monitorenter;
          quick "npe prints" test_npe_prints;
          quick "npe throw null" test_npe_throw_null;
          quick "bounds low" test_bounds_low;
          quick "bounds high" test_bounds_high;
          quick "negative array size" test_negative_array_size;
          quick "class cast" test_class_cast;
        ] );
      ( "handlers",
        [
          quick "specific wins" test_specific_handler_wins;
          quick "non-matching skipped" test_non_matching_handler_skipped;
          quick "range respected" test_range_respected;
          quick "user hierarchy" test_user_exception_hierarchy;
          quick "operand stack cleared" test_operand_stack_cleared_at_handler;
        ] );
      ( "unwinding",
        [
          quick "across frames" test_unwind_across_frames;
          quick "rethrow" test_rethrow;
          quick "sync releases monitor" test_sync_unwind_releases_monitor;
          quick "thread death isolated" test_thread_death_isolated;
          quick "stack overflow caught" test_stack_overflow_caught;
        ] );
    ]
