(* The textual assembly front end: lexer, parser, emitter, and the
   parse/emit roundtrip property. *)

open Tutil

let parse = Bytecode.Parser.parse_string

let sample =
  {|
; a sample program
main Main

class Counter {
  field value: int

  virtual bump(this: Counter, by: int): int locals 2 sync {
      load 0
      load 0
      getfield Counter.value
      load 1
      add
      putfield Counter.value
      load 0
      getfield Counter.value
      retv
  }
}

class Main {
  static total: int

  method main() locals 2 {
      new Counter
      store 0
      const 0
      store 1
    loop:
      load 1
      const 5
      ifge end
      load 0
      const 10
      invoke Counter.bump
      pop
      load 1
      const 1
      add
      store 1
      goto loop
    end:
      load 0
      getfield Counter.value
      print
      ret
  }
}
|}

let test_parse_and_run () =
  let p = parse sample in
  expect_output p (printed [ 50 ])

let test_parse_types () =
  let p =
    parse
      {|
class T {
  static grid: int[][]
  static names: String[]
  static anything: ref
  method main() locals 1 {
      const 3
      newarray int[]
      pop
      ret
  }
}
|}
  in
  match Bytecode.Decl.find_class p "T" with
  | Some c ->
    let ty name =
      (List.find (fun (f : Bytecode.Decl.fdecl) -> f.fd_name = name) c.cd_statics)
        .fd_ty
    in
    Alcotest.(check string) "grid" "int[][]" (I.string_of_ty (ty "grid"));
    Alcotest.(check string) "names" "String[]" (I.string_of_ty (ty "names"));
    Alcotest.(check string) "anything" "ref" (I.string_of_ty (ty "anything"))
  | None -> Alcotest.fail "no class"

let test_parse_handlers () =
  let p =
    parse
      {|
class T {
  method main() locals 1 {
    try:
      const 1
      const 0
      div
      print
    endtry:
      ret
    catch:
      pop
      const 42
      print
      ret
  }
  catch ArithmeticException from try to endtry goto catch
}
|}
  in
  expect_output p (printed [ 42 ])

let test_parse_threads () =
  let p =
    parse
      {|
class T {
  static n: int
  method work() locals 0 {
      getstatic T.n
      const 1
      add
      putstatic T.n
      ret
  }
  method main() locals 1 {
      spawn T.work
      join
      getstatic T.n
      print
      ret
  }
}
|}
  in
  expect_output p (printed [ 1 ])

let test_errors_have_lines () =
  let bad = "class T {\n  method main() locals 0 {\n    fly\n  }\n}" in
  match parse bad with
  | exception Bytecode.Parser.Error (msg, line) ->
    Alcotest.(check bool) "mentions instruction" true (contains msg "fly");
    Alcotest.(check bool) "plausible line" true (line >= 3 && line <= 4)
  | _ -> Alcotest.fail "accepted garbage"

let test_lexer_errors () =
  (match parse "class T ???" with
  | exception Bytecode.Parser.Error _ -> ()
  | _ -> Alcotest.fail "accepted ???");
  match parse "class T { method m() locals 0 { sconst \"unterminated } }" with
  | exception Bytecode.Parser.Error _ -> ()
  | _ -> Alcotest.fail "accepted unterminated string"

let test_string_escapes () =
  let p =
    parse
      {|
class T {
  method main() locals 0 {
      sconst "a\nb\t\"q\"\\"
      prints
      ret
  }
}
|}
  in
  expect_output p "a\nb\t\"q\"\\"

let test_missing_main () =
  match parse "class T { method notmain() locals 0 { ret } }" with
  | exception Bytecode.Parser.Error _ -> ()
  | _ -> Alcotest.fail "accepted program without main"

(* --- emit roundtrip -------------------------------------------------------- *)

let roundtrip_equal (p : D.program) =
  let text = Bytecode.Emit.to_string p in
  match parse text with
  | p' -> D.digest p = D.digest p'
  | exception Bytecode.Parser.Error (m, line) ->
    Alcotest.failf "emitted text unparseable (line %d: %s):\n%s" line m text

let test_emit_roundtrip_workloads () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      Alcotest.(check bool) (e.name ^ " roundtrips") true (roundtrip_equal e.program))
    (Lazy.force Workloads.Registry.all)

let test_emit_roundtrip_sample () =
  Alcotest.(check bool) "sample roundtrips" true (roundtrip_equal (parse sample))

let test_emitted_runs_identically () =
  let e = Option.get (Workloads.Registry.find "fig1ab") in
  let p' = parse (Bytecode.Emit.to_string e.program) in
  let vm1, _ = run ~seed:3 e.program in
  let vm2, _ = run ~seed:3 p' in
  Alcotest.(check string) "same output" (Vm.output vm1) (Vm.output vm2)

let test_parse_file () =
  let path = Filename.temp_file "prog" ".djv" in
  Bytecode.Emit.to_file path (parse sample);
  let p = Bytecode.Parser.parse_file path in
  Sys.remove path;
  expect_output p (printed [ 50 ])

let () =
  Alcotest.run "parser"
    [
      ( "parse",
        [
          quick "parse and run" test_parse_and_run;
          quick "types" test_parse_types;
          quick "handlers" test_parse_handlers;
          quick "threads" test_parse_threads;
          quick "string escapes" test_string_escapes;
        ] );
      ( "errors",
        [
          quick "parse errors carry lines" test_errors_have_lines;
          quick "lexer errors" test_lexer_errors;
          quick "missing main" test_missing_main;
        ] );
      ( "roundtrip",
        [
          quick "all workloads emit+parse" test_emit_roundtrip_workloads;
          quick "sample emit+parse" test_emit_roundtrip_sample;
          quick "emitted runs identically" test_emitted_runs_identically;
          quick "file io" test_parse_file;
        ] );
    ]
