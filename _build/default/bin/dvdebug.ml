(* dvdebug — interactive replay debugger over a workload.

     dvdebug WORKLOAD [--seed N] [--trace FILE]

   Records the workload (or loads a prior trace), then opens a DejaVu
   replay session: breakpoints, stepping, time travel, and perturbation-free
   inspection through remote reflection. Type "help" at the prompt. *)

open Cmdliner

let repl session =
  let rec loop () =
    print_string "(dejavu) ";
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line -> (
      match Debugger.Protocol.execute session line with
      | Debugger.Protocol.Quit -> ()
      | Debugger.Protocol.Reply s ->
        if s <> "" then print_endline s;
        loop ())
  in
  loop ()

let run_batch session commands =
  List.iter
    (fun cmd ->
      Fmt.pr "(dejavu) %s@." cmd;
      match Debugger.Protocol.execute session cmd with
      | Debugger.Protocol.Quit -> ()
      | Debugger.Protocol.Reply s -> if s <> "" then print_endline s)
    commands

let find_workload name =
  if Filename.check_suffix name ".djv" then
    match Bytecode.Parser.parse_file name with
    | program ->
      Some
        {
          Workloads.Registry.name;
          description = "from file";
          program;
          natives = [];
        }
    | exception Bytecode.Parser.Error (msg, line) ->
      Fmt.epr "%s:%d: %s@." name line msg;
      None
  else Workloads.Registry.find name

let main name seed trace_file batch =
  match find_workload name with
  | None ->
    Fmt.epr "unknown workload %S; try a .djv file or: %s@." name
      (String.concat ", " (Workloads.Registry.names ()));
    exit 2
  | Some e ->
    let session =
      match trace_file with
      | Some path ->
        let trace = Dejavu.Trace.load path in
        Debugger.Session.start ~natives:e.natives e.program trace
      | None ->
        let session, run =
          Debugger.Session.record_and_start ~natives:e.natives ~seed e.program
        in
        Fmt.pr "recorded %s under seed %d: %s@." name seed
          (Vm.string_of_status run.Dejavu.status);
        session
    in
    (match batch with
    | Some script ->
      run_batch session
        (String.split_on_char ';' script |> List.map String.trim
        |> List.filter (fun s -> s <> ""))
    | None ->
      Fmt.pr "replay session open; type 'help' for commands@.";
      repl session)

let cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"recording seed")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"replay this trace instead of recording")
  in
  let batch_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "batch" ] ~docv:"CMDS"
          ~doc:"run semicolon-separated commands non-interactively")
  in
  Cmd.v
    (Cmd.info "dvdebug" ~doc:"interactive DejaVu replay debugger")
    Term.(const main $ name_arg $ seed_arg $ trace_arg $ batch_arg)

let () = exit (Cmd.eval cmd)
