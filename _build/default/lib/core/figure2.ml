(* The paper's Figure 2, verbatim: the symmetric yield-point instrumentation
   for record mode (A) and replay mode (B). Note how closely the two sides
   mirror each other — that similarity is the accuracy argument.

   Record (A):                          Replay (B):
     if liveclock:                        if liveclock:
       liveclock = false                    liveclock = false
       nyp++                                nyp--
       if preemptiveHardwareBit:            if nyp == 0:
         recordThreadSwitch(nyp)              nyp = replayThreadSwitch()
         nyp = 0                              threadSwitchBitSet = true
         threadSwitchBitSet = true
       liveclock = true                     liveclock = true
     if threadSwitchBitSet:               if threadSwitchBitSet:
       threadSwitchBitSet = false           threadSwitchBitSet = false
       performThreadSwitch()                performThreadSwitch()

   The preemptive hardware bit (set by the timer interrupt) is honoured only
   in record mode; replay switches purely on the logical clock. *)

let perform_switch (s : Session.t) =
  s.switch_bit <- false;
  s.switches_done <- s.switches_done + 1;
  (* symmetric eager stack growth before instrumentation-driven work *)
  Symmetry.ensure_headroom s.vm;
  Vm.Sched.perform_thread_switch s.vm

let record (s : Session.t) (vm : Vm.Rt.t) =
  s.yieldpoints_seen <- s.yieldpoints_seen + 1;
  if s.liveclock then begin
    s.liveclock <- false;
    s.nyp <- s.nyp + 1;
    if vm.preempt_pending then begin
      (* preemption required by the system clock *)
      Trace.Tape.push s.switches s.nyp;
      s.nyp <- 0;
      vm.preempt_pending <- false;
      s.switch_bit <- true
    end;
    s.liveclock <- true
  end;
  if s.switch_bit then perform_switch s

let replay (s : Session.t) (_vm : Vm.Rt.t) =
  s.yieldpoints_seen <- s.yieldpoints_seen + 1;
  if s.liveclock then begin
    s.liveclock <- false;
    s.nyp <- s.nyp - 1;
    if s.nyp = 0 then begin
      (* the recorded run switched at this yield point *)
      s.nyp <-
        (match Trace.Tape.read_opt s.switches with
        | Some d -> d
        | None -> max_int);
      s.switch_bit <- true
    end;
    s.liveclock <- true
  end;
  if s.switch_bit then perform_switch s
