(* DejaVu's event buffer, allocated *inside the VM heap* and pinned as a GC
   root — the paper's "Symmetry in Allocation": the same buffer object is
   allocated at the same execution point in record and replay modes, and
   every event value is written into it at the same execution point in both
   modes (record writes what it captures, replay writes what it reads back),
   so the instrumentation's heap footprint is bit-identical across modes. *)

type t = { vm : Vm.Rt.t; pin : int; size : int; mutable pos : int; mutable writes : int }

let default_words = 1024

let create (vm : Vm.Rt.t) ?(words = default_words) () =
  let addr = Vm.Heap.alloc_array vm ~elem_ref:false ~len:words in
  let pin = Vm.Heap.pin vm addr in
  { vm; pin; size = words; pos = 0; writes = 0 }

let put r w =
  let addr = Vm.Heap.pinned r.vm r.pin in
  Vm.Layout.set r.vm addr r.pos w;
  r.pos <- (r.pos + 1) mod r.size;
  r.writes <- r.writes + 1

let writes r = r.writes
