(** DejaVu's event buffer, allocated {e inside the VM heap} and pinned as a
    GC root — the paper's "Symmetry in Allocation": the buffer object is
    allocated at the same execution point in record and replay modes, and
    every event value is written into it at the same execution point in
    both modes (record writes what it captures, replay writes what it
    reads back), so the instrumentation's heap footprint is bit-identical
    across modes. *)

type t = {
  vm : Vm.Rt.t;
  pin : int;  (** pinned-root index of the buffer object *)
  size : int;
  mutable pos : int;
  mutable writes : int;
}

val default_words : int

(** Allocate the buffer in [vm]'s heap and pin it. *)
val create : Vm.Rt.t -> ?words:int -> unit -> t

(** Write one event word at the current position (wrapping). *)
val put : t -> int -> unit

(** Total writes so far — equal between a recording and its replay. *)
val writes : t -> int
