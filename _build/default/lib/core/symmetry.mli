(** Symmetric side effects (paper section 2.4): every effect the
    instrumentation has on the VM must occur identically in record and
    replay modes — allocation, loading/compilation warm-up, eager stack
    growth, and the logical-clock gating. *)

(** Write a small trace file and read it back, exercising both the input
    and output code paths at initialization in both modes (the paper's
    "Symmetry in Loading and Compilation"). *)
val warmup_io : unit -> unit

(** Eagerly grow the current thread's stack when headroom falls below the
    configured slack — called before instrumentation-driven thread
    switches so stack-growth points cannot differ between modes. *)
val ensure_headroom : Vm.Rt.t -> unit
