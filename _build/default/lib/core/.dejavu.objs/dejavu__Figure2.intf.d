lib/core/figure2.mli: Session Vm
