lib/core/replayer.mli: Session Trace Vm
