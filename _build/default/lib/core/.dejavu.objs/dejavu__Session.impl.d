lib/core/session.ml: Array Fmt List Ring Symmetry Trace Vm
