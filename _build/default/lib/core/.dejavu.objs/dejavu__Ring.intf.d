lib/core/ring.mli: Vm
