lib/core/recorder.ml: Bytecode Figure2 Ring Session Trace Vm
