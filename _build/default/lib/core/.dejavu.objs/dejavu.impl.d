lib/core/dejavu.ml: Figure2 Fmt Recorder Replayer Ring Session String Symmetry Trace Vm
