lib/core/symmetry.mli: Vm
