lib/core/figure2.ml: Session Symmetry Trace Vm
