lib/core/symmetry.ml: Filename Sys Trace Vm
