lib/core/trace.mli: Buffer Format Vm
