lib/core/trace.ml: Array Buffer Char Fmt List String Vm
