lib/core/recorder.mli: Session Trace Vm
