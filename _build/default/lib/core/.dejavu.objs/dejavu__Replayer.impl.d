lib/core/replayer.ml: Bytecode Figure2 Ring Session Trace Vm
