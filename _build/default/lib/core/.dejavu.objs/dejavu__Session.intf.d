lib/core/session.mli: Format Ring Trace Vm
