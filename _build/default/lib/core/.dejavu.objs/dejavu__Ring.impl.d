lib/core/ring.ml: Vm
