(** The paper's Figure 2, verbatim: the symmetric yield-point
    instrumentation for record mode (A) and replay mode (B).

    Record counts yield points into [nyp] and, when the timer interrupt
    set the preemption bit, records the delta and performs the switch.
    Replay counts the same clock {e down} and switches when it reaches
    zero — the preemption bit is ignored. The [liveclock] flag excludes
    yield points executed by the instrumentation itself. *)

(** Record-mode yield-point hook (install as [h_yieldpoint]). *)
val record : Session.t -> Vm.Rt.t -> unit

(** Replay-mode yield-point hook. *)
val replay : Session.t -> Vm.Rt.t -> unit
