(* A token-ring of actor threads: each actor owns a mailbox (a monitor),
   waits for the token, adds its id, and passes it to its neighbour. After
   [laps] trips the token's value is a fixed sum, but the scheduling of the
   hand-offs — and hence the whole event sequence — is timing-dependent.
   Message passing built purely on wait/notify. *)

open Util

let program ?(actors = 5) ?(laps = 4) () : D.program =
  let c = "Ring" in
  (* mailbox k = boxes[k]: full[k] says whether a token is waiting there *)
  let actor =
    A.method_ ~args:[ I.Tint ] ~nlocals:3 "actor"
      [
        i (I.Const laps);
        i (I.Store 1);
        l "loop";
        i (I.Load 1);
        i (I.Ifz (I.Le, "end"));
        (* receive: wait until full[me] *)
        i (I.Getstatic (c, "boxes"));
        i (I.Load 0);
        i I.Aload;
        i I.Monitorenter;
        l "recv";
        i (I.Getstatic (c, "full"));
        i (I.Load 0);
        i I.Aload;
        i (I.Ifz (I.Ne, "got"));
        i (I.Getstatic (c, "boxes"));
        i (I.Load 0);
        i I.Aload;
        i I.Wait;
        i I.Pop;
        i (I.Goto "recv");
        l "got";
        i (I.Getstatic (c, "token"));
        i (I.Load 0);
        i I.Add;
        i (I.Putstatic (c, "token"));
        i (I.Getstatic (c, "full"));
        i (I.Load 0);
        i (I.Const 0);
        i I.Astore;
        i (I.Getstatic (c, "boxes"));
        i (I.Load 0);
        i I.Aload;
        i I.Monitorexit;
        (* actor 0 counts completed laps and may stop the ring *)
        i (I.Load 0);
        i (I.Ifz (I.Ne, "send"));
        i (I.Getstatic (c, "lap"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "lap"));
        l "send";
        (* always pass on: the final hand-off lands in a mailbox whose
           owner has exited, which is harmless *)
        i (I.Load 0);
        i (I.Const 1);
        i I.Add;
        i (I.Const actors);
        i I.Rem;
        i (I.Store 2);
        i (I.Getstatic (c, "boxes"));
        i (I.Load 2);
        i I.Aload;
        i I.Monitorenter;
        i (I.Getstatic (c, "full"));
        i (I.Load 2);
        i (I.Const 1);
        i I.Astore;
        i (I.Getstatic (c, "boxes"));
        i (I.Load 2);
        i I.Aload;
        i I.Notifyall;
        i (I.Getstatic (c, "boxes"));
        i (I.Load 2);
        i I.Aload;
        i I.Monitorexit;
        i (I.Load 1);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:(actors + 1) "main"
      ([
         i (I.Const actors);
         i (I.Newarray (I.Tobj "Object"));
         i (I.Putstatic (c, "boxes"));
         i (I.Const actors);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "full"));
         i (I.Const 0);
         i (I.Store actors);
         l "mk";
         i (I.Load actors);
         i (I.Const actors);
         i (I.If (I.Ge, "go"));
         i (I.Getstatic (c, "boxes"));
         i (I.Load actors);
         i (I.New "Object");
         i I.Astore;
         i (I.Load actors);
         i (I.Const 1);
         i I.Add;
         i (I.Store actors);
         i (I.Goto "mk");
         l "go";
       ]
      @ List.concat_map
          (fun k ->
            [ i (I.Const k); i (I.Spawn (c, "actor")); i (I.Store k) ])
          (List.init actors (fun k -> k))
      @ [
          (* inject the token at actor 0 *)
          i (I.Getstatic (c, "boxes"));
          i (I.Const 0);
          i I.Aload;
          i I.Monitorenter;
          i (I.Getstatic (c, "full"));
          i (I.Const 0);
          i (I.Const 1);
          i I.Astore;
          i (I.Getstatic (c, "boxes"));
          i (I.Const 0);
          i I.Aload;
          i I.Notifyall;
          i (I.Getstatic (c, "boxes"));
          i (I.Const 0);
          i I.Aload;
          i I.Monitorexit;
        ]
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init actors (fun k -> k))
      @ [
          i (I.Sconst "token=");
          i I.Prints;
          i (I.Getstatic (c, "token"));
          i I.Print;
          i (I.Sconst "laps=");
          i I.Prints;
          i (I.Getstatic (c, "lap"));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field ~ty:(I.Tarr (I.Tobj "Object")) "boxes";
            D.field ~ty:(I.Tarr I.Tint) "full";
            D.field "token";
            D.field "lap";
          ]
        [ actor; main ];
    ]
