(* The paper's Figure 1: four worked examples of schedule- and clock-
   dependent non-determinism.

   (A)/(B): two threads racing on unsynchronized statics x and y — the final
   printed value depends on where the preemptive switches land.

   (C)/(D): a wall-clock read decides a branch; the true branch waits on a
   monitor (forcing a thread switch), the false branch does not. *)

open Util

(* Figure 1 (A)/(B). T1: y = 1; x = y * 2.
   T2: y = x * 2; y = x + 100; y = y * 2; print y.
   Busy work between statements stretches each thread across several
   scheduling quanta so the interleaving varies with the timer. *)
let ab ?(work = 1500) () : D.program =
  let c = "Fig1AB" in
  let t1 =
    A.method_ ~nlocals:0 "t1"
      (spin c work
      @ [ i (I.Const 1); i (I.Putstatic (c, "y")) ]
      (* short second phase: t1's x=y*2 lands right around t2's y=x*2, so
         the jittered timer decides which runs first *)
      @ spin c (work / 8)
      @ [
          i (I.Getstatic (c, "y"));
          i (I.Const 2);
          i I.Mul;
          i (I.Putstatic (c, "x"));
          i I.Ret;
        ])
  in
  let t2 =
    A.method_ ~nlocals:0 "t2"
      (spin c work
      @ [
          i (I.Getstatic (c, "x"));
          i (I.Const 2);
          i I.Mul;
          i (I.Putstatic (c, "y"));
        ]
      @ spin c work
      @ [
          i (I.Getstatic (c, "x"));
          i (I.Const 100);
          i I.Add;
          i (I.Putstatic (c, "y"));
          i (I.Getstatic (c, "y"));
          i (I.Const 2);
          i I.Mul;
          i (I.Putstatic (c, "y"));
          i (I.Getstatic (c, "y"));
          i I.Print;
          i I.Ret;
        ])
  in
  let main =
    A.method_ ~nlocals:2 "main"
      [
        i (I.Spawn (c, "t1"));
        i (I.Store 0);
        i (I.Spawn (c, "t2"));
        i (I.Store 1);
        i (I.Load 0);
        i I.Join;
        i (I.Load 1);
        i I.Join;
        i I.Ret;
      ]
  in
  D.program
    [
      D.cdecl c
        ~statics:[ D.field "x"; D.field "y" ]
        [ spin_method; t1; t2; main ];
    ]

(* Figure 1 (C)/(D). The wall clock decides whether T1 waits. A "done" flag
   protects against the lost-wakeup race so the program always terminates;
   the printed values still depend on the clock and the interleaving. *)
let cd ?(work = 800) () : D.program =
  let c = "Fig1CD" in
  let t1 =
    A.method_ ~nlocals:1 "t1"
      ([
         (* y = Date() mod 30 *)
         i I.Currenttime;
         i (I.Const 30);
         i I.Rem;
         i (I.Putstatic (c, "y"));
         (* if (y < 15) wait for t2's notify *)
         i (I.Getstatic (c, "y"));
         i (I.Const 15);
         i (I.If (I.Ge, "nowait"));
         i (I.Getstatic (c, "lock"));
         i I.Monitorenter;
         l "check";
         i (I.Getstatic (c, "done"));
         i (I.Ifz (I.Ne, "locked_done"));
         i (I.Getstatic (c, "lock"));
         i I.Wait;
         i I.Pop;
         i (I.Goto "check");
         l "locked_done";
         i (I.Getstatic (c, "lock"));
         i I.Monitorexit;
         l "nowait";
       ]
      @ [
          i (I.Getstatic (c, "x"));
          i (I.Const 100);
          i I.Add;
          i (I.Putstatic (c, "y"));
          i (I.Getstatic (c, "y"));
          i I.Print;
          i I.Ret;
        ])
  in
  let t2 =
    A.method_ ~nlocals:0 "t2"
      (spin c work
      @ [
          i (I.Const 7);
          i (I.Putstatic (c, "x"));
          i (I.Getstatic (c, "lock"));
          i I.Monitorenter;
          i (I.Const 1);
          i (I.Putstatic (c, "done"));
          i (I.Getstatic (c, "lock"));
          i I.Notifyall;
          i (I.Getstatic (c, "lock"));
          i I.Monitorexit;
        ]
      @ [
          i (I.Getstatic (c, "y"));
          i (I.Const 2);
          i I.Mul;
          i (I.Putstatic (c, "y"));
          i (I.Getstatic (c, "y"));
          i I.Print;
          i I.Ret;
        ])
  in
  let main =
    A.method_ ~nlocals:2 "main"
      [
        i (I.New "Object");
        i (I.Putstatic (c, "lock"));
        i (I.Spawn (c, "t1"));
        i (I.Store 0);
        i (I.Spawn (c, "t2"));
        i (I.Store 1);
        i (I.Load 0);
        i I.Join;
        i (I.Load 1);
        i I.Join;
        i I.Ret;
      ]
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field "x";
            D.field "y";
            D.field "done";
            D.field ~ty:(I.Tobj "Object") "lock";
          ]
        [ spin_method; t1; t2; main ];
    ]
