(* A miniature transaction server: teller threads move money between
   accounts chosen by external input (a non-deterministic event DejaVu must
   record), locking the two accounts in id order. The grand total is
   invariant; per-account balances and the audit output are schedule- and
   input-dependent. *)

open Util

let program ?(accounts = 8) ?(tellers = 3) ?(transfers = 50) () : D.program =
  let c = "Bank" in
  let teller =
    A.method_ ~nlocals:6 "teller"
      [
        i (I.Const transfers);
        i (I.Store 0);
        l "loop";
        i (I.Load 0);
        i (I.Ifz (I.Le, "end"));
        (* from = input mod accounts; to = input mod accounts; amt = input mod 100 *)
        i I.Readinput;
        i (I.Const accounts);
        i I.Rem;
        i (I.Store 1);
        i I.Readinput;
        i (I.Const accounts);
        i I.Rem;
        i (I.Store 2);
        i I.Readinput;
        i (I.Const 100);
        i I.Rem;
        i (I.Store 3);
        (* skip self-transfers *)
        i (I.Load 1);
        i (I.Load 2);
        i (I.If (I.Eq, "next"));
        (* lock in id order: lo = min, hi = max *)
        i (I.Load 1);
        i (I.Load 2);
        i (I.If (I.Lt, "inorder"));
        i (I.Load 1);
        i (I.Store 4);
        i (I.Load 2);
        i (I.Store 1);
        i (I.Load 4);
        i (I.Store 2);
        l "inorder";
        i (I.Getstatic (c, "locks"));
        i (I.Load 1);
        i I.Aload;
        i I.Monitorenter;
        i (I.Getstatic (c, "locks"));
        i (I.Load 2);
        i I.Aload;
        i I.Monitorenter;
        (* balance[from] -= amt; balance[to] += amt (indices lo/hi is fine:
           the transfer direction only affects individual balances, and we
           use lo->hi consistently) *)
        i (I.Getstatic (c, "balance"));
        i (I.Load 1);
        i (I.Getstatic (c, "balance"));
        i (I.Load 1);
        i I.Aload;
        i (I.Load 3);
        i I.Sub;
        i I.Astore;
        i (I.Getstatic (c, "balance"));
        i (I.Load 2);
        i (I.Getstatic (c, "balance"));
        i (I.Load 2);
        i I.Aload;
        i (I.Load 3);
        i I.Add;
        i I.Astore;
        i (I.Getstatic (c, "locks"));
        i (I.Load 2);
        i I.Aload;
        i I.Monitorexit;
        i (I.Getstatic (c, "locks"));
        i (I.Load 1);
        i I.Aload;
        i I.Monitorexit;
        l "next";
        i (I.Load 0);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 0);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let audit =
    (* sum all balances and print *)
    A.method_ ~nlocals:2 "audit"
      [
        i (I.Const 0);
        i (I.Store 0);
        i (I.Const 0);
        i (I.Store 1);
        l "loop";
        i (I.Load 0);
        i (I.Const accounts);
        i (I.If (I.Ge, "end"));
        i (I.Load 1);
        i (I.Getstatic (c, "balance"));
        i (I.Load 0);
        i I.Aload;
        i I.Add;
        i (I.Store 1);
        i (I.Load 0);
        i (I.Const 1);
        i I.Add;
        i (I.Store 0);
        i (I.Goto "loop");
        l "end";
        i (I.Sconst "total=");
        i I.Prints;
        i (I.Load 1);
        i I.Print;
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:(tellers + 1) "main"
      ([
         i (I.Const accounts);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "balance"));
         i (I.Const accounts);
         i (I.Newarray (I.Tobj "Object"));
         i (I.Putstatic (c, "locks"));
         i (I.Const 0);
         i (I.Store tellers);
         l "init";
         i (I.Load tellers);
         i (I.Const accounts);
         i (I.If (I.Ge, "go"));
         i (I.Getstatic (c, "balance"));
         i (I.Load tellers);
         i (I.Const 1000);
         i I.Astore;
         i (I.Getstatic (c, "locks"));
         i (I.Load tellers);
         i (I.New "Object");
         i I.Astore;
         i (I.Load tellers);
         i (I.Const 1);
         i I.Add;
         i (I.Store tellers);
         i (I.Goto "init");
         l "go";
       ]
      @ List.concat_map
          (fun k -> [ i (I.Spawn (c, "teller")); i (I.Store k) ])
          (List.init tellers (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init tellers (fun k -> k))
      @ [
          i (I.Invoke (c, "audit"));
          (* also print a few balances: schedule- and input-dependent *)
          i (I.Getstatic (c, "balance"));
          i (I.Const 0);
          i I.Aload;
          i I.Print;
          i (I.Getstatic (c, "balance"));
          i (I.Const 1);
          i I.Aload;
          i I.Print;
          i I.Ret;
        ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field ~ty:(I.Tarr I.Tint) "balance";
            D.field ~ty:(I.Tarr (I.Tobj "Object")) "locks";
          ]
        [ teller; audit; main ];
    ]
