(* A miniature multithreaded server — the paper's motivating application
   shape (section 1: "large scale multithreading in server applications
   makes their executions highly non-deterministic").

   An acceptor thread reads requests from the external input (method id,
   key), pushes them onto a bounded queue guarded by wait/notify; a pool of
   worker threads pops requests, serves them against a shared key-value
   store (per-bucket monitors), allocates response "strings" (GC pressure),
   and maintains hit/miss statistics. After [requests] requests the
   acceptor enqueues one poison pill per worker.

   Everything observable — per-worker service counts, the store contents,
   hit/miss totals — depends on the interleaving of acceptor and workers,
   while invariants (served = requests, hits + misses = gets) hold under
   every schedule. *)

open Util

let program ?(workers = 3) ?(requests = 60) ?(buckets = 8) ?(capacity = 4) ()
    : D.program =
  let c = "Server" in
  let enqueue =
    (* enqueue(v): blocking bounded-queue put, guarded by qlock *)
    A.method_ ~args:[ I.Tint ] ~nlocals:1 "enqueue"
      [
        i (I.Getstatic (c, "qlock"));
        i I.Monitorenter;
        l "check";
        i (I.Getstatic (c, "qsize"));
        i (I.Const capacity);
        i (I.If (I.Lt, "room"));
        i (I.Getstatic (c, "qlock"));
        i I.Wait;
        i I.Pop;
        i (I.Goto "check");
        l "room";
        i (I.Getstatic (c, "queue"));
        i (I.Getstatic (c, "qtail"));
        i (I.Load 0);
        i I.Astore;
        i (I.Getstatic (c, "qtail"));
        i (I.Const 1);
        i I.Add;
        i (I.Const capacity);
        i I.Rem;
        i (I.Putstatic (c, "qtail"));
        i (I.Getstatic (c, "qsize"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "qsize"));
        i (I.Getstatic (c, "qlock"));
        i I.Notifyall;
        i (I.Getstatic (c, "qlock"));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let dequeue =
    A.method_ ~ret:I.Tint ~nlocals:1 "dequeue"
      [
        i (I.Getstatic (c, "qlock"));
        i I.Monitorenter;
        l "check";
        i (I.Getstatic (c, "qsize"));
        i (I.Ifz (I.Gt, "avail"));
        i (I.Getstatic (c, "qlock"));
        i I.Wait;
        i I.Pop;
        i (I.Goto "check");
        l "avail";
        i (I.Getstatic (c, "queue"));
        i (I.Getstatic (c, "qhead"));
        i I.Aload;
        i (I.Store 0);
        i (I.Getstatic (c, "qhead"));
        i (I.Const 1);
        i I.Add;
        i (I.Const capacity);
        i I.Rem;
        i (I.Putstatic (c, "qhead"));
        i (I.Getstatic (c, "qsize"));
        i (I.Const 1);
        i I.Sub;
        i (I.Putstatic (c, "qsize"));
        i (I.Getstatic (c, "qlock"));
        i I.Notifyall;
        i (I.Getstatic (c, "qlock"));
        i I.Monitorexit;
        i (I.Load 0);
        i I.Retv;
      ]
  in
  (* serve(req): req = key*4 + op; op 0/1 = get, 2 = put, 3 = delete-ish
     (put 0). Store bucket b = key mod buckets, guarded by locks[b]. *)
  let serve =
    A.method_ ~args:[ I.Tint; I.Tint ] ~nlocals:5 "serve"
      [
        (* key = req / 4; op = req mod 4; bucket = key mod buckets *)
        i (I.Load 1);
        i (I.Const 4);
        i I.Div;
        i (I.Store 2);
        i (I.Load 1);
        i (I.Const 4);
        i I.Rem;
        i (I.Store 3);
        i (I.Load 2);
        i (I.Const buckets);
        i I.Rem;
        i (I.Store 4);
        i (I.Getstatic (c, "locks"));
        i (I.Load 4);
        i I.Aload;
        i I.Monitorenter;
        (* op >= 2: put key -> worker id + 1 (a "response" is also built) *)
        i (I.Load 3);
        i (I.Const 2);
        i (I.If (I.Lt, "get"));
        i (I.Getstatic (c, "store"));
        i (I.Load 4);
        i (I.Load 0);
        i (I.Const 1);
        i I.Add;
        i I.Astore;
        (* response allocation: GC pressure *)
        i (I.Const 24);
        i (I.Newarray I.Tint);
        i I.Pop;
        i (I.Goto "done");
        l "get";
        i (I.Getstatic (c, "store"));
        i (I.Load 4);
        i I.Aload;
        i (I.Ifz (I.Eq, "miss"));
        i (I.Getstatic (c, "hits"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "hits"));
        i (I.Goto "done");
        l "miss";
        i (I.Getstatic (c, "misses"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "misses"));
        l "done";
        i (I.Getstatic (c, "locks"));
        i (I.Load 4);
        i I.Aload;
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let worker =
    A.method_ ~args:[ I.Tint ] ~nlocals:2 "worker"
      [
        l "loop";
        i (I.Invoke (c, "dequeue"));
        i (I.Store 1);
        (* poison pill: -1 *)
        i (I.Load 1);
        i (I.Const (-1));
        i (I.If (I.Eq, "end"));
        i (I.Load 0);
        i (I.Load 1);
        i (I.Invoke (c, "serve"));
        (* served[me]++ *)
        i (I.Getstatic (c, "served"));
        i (I.Load 0);
        i (I.Getstatic (c, "served"));
        i (I.Load 0);
        i I.Aload;
        i (I.Const 1);
        i I.Add;
        i I.Astore;
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let acceptor =
    A.method_ ~nlocals:1 "acceptor"
      ([
         i (I.Const requests);
         i (I.Store 0);
         l "loop";
         i (I.Load 0);
         i (I.Ifz (I.Le, "pills"));
         (* request = |input| mod (buckets*4*2): keys beyond the store are
            guaranteed misses *)
         i I.Readinput;
         i (I.Const (buckets * 8));
         i I.Rem;
         i (I.Invoke (c, "enqueue"));
         i (I.Load 0);
         i (I.Const 1);
         i I.Sub;
         i (I.Store 0);
         i (I.Goto "loop");
         l "pills";
       ]
      @ List.concat_map
          (fun _ -> [ i (I.Const (-1)); i (I.Invoke (c, "enqueue")) ])
          (List.init workers (fun k -> k))
      @ [ i I.Ret ])
  in
  let main =
    A.method_ ~nlocals:(workers + 3) "main"
      ([
         i (I.Const capacity);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "queue"));
         i (I.New "Object");
         i (I.Putstatic (c, "qlock"));
         i (I.Const buckets);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "store"));
         i (I.Const buckets);
         i (I.Newarray (I.Tobj "Object"));
         i (I.Putstatic (c, "locks"));
         i (I.Const workers);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "served"));
         i (I.Const 0);
         i (I.Store workers);
         l "mklocks";
         i (I.Load workers);
         i (I.Const buckets);
         i (I.If (I.Ge, "go"));
         i (I.Getstatic (c, "locks"));
         i (I.Load workers);
         i (I.New "Object");
         i I.Astore;
         i (I.Load workers);
         i (I.Const 1);
         i I.Add;
         i (I.Store workers);
         i (I.Goto "mklocks");
         l "go";
       ]
      @ List.concat_map
          (fun k ->
            [ i (I.Const k); i (I.Spawn (c, "worker")); i (I.Store k) ])
          (List.init workers (fun k -> k))
      @ [ i (I.Spawn (c, "acceptor")); i (I.Store workers) ]
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init (workers + 1) (fun k -> k))
      @ [
          (* report: total served (must equal requests), hits+misses, and
             the per-worker split (schedule-dependent) *)
          i (I.Const 0);
          i (I.Store (workers + 1));
          i (I.Const 0);
          i (I.Store (workers + 2));
          l "sum";
          i (I.Load (workers + 1));
          i (I.Const workers);
          i (I.If (I.Ge, "report"));
          i (I.Load (workers + 2));
          i (I.Getstatic (c, "served"));
          i (I.Load (workers + 1));
          i I.Aload;
          i I.Add;
          i (I.Store (workers + 2));
          i (I.Load (workers + 1));
          i (I.Const 1);
          i I.Add;
          i (I.Store (workers + 1));
          i (I.Goto "sum");
          l "report";
          i (I.Sconst "served=");
          i I.Prints;
          i (I.Load (workers + 2));
          i I.Print;
          i (I.Sconst "hits=");
          i I.Prints;
          i (I.Getstatic (c, "hits"));
          i I.Print;
          i (I.Sconst "misses=");
          i I.Prints;
          i (I.Getstatic (c, "misses"));
          i I.Print;
          (* per-worker split *)
          i (I.Getstatic (c, "served"));
          i (I.Const 0);
          i I.Aload;
          i I.Print;
          i I.Ret;
        ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field ~ty:(I.Tarr I.Tint) "queue";
            D.field ~ty:(I.Tobj "Object") "qlock";
            D.field "qhead";
            D.field "qtail";
            D.field "qsize";
            D.field ~ty:(I.Tarr I.Tint) "store";
            D.field ~ty:(I.Tarr (I.Tobj "Object")) "locks";
            D.field ~ty:(I.Tarr I.Tint) "served";
            D.field "hits";
            D.field "misses";
          ]
        [ enqueue; dequeue; serve; worker; acceptor; main ];
    ]
