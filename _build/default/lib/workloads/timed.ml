(* Timer-driven workload (paper section 2.2, "Replaying Non-Deterministic
   Timed Events"): sleeps, timed waits that sometimes time out and sometimes
   get notified, and an interrupting supervisor. All wakeups depend on
   wall-clock reads that DejaVu must reproduce. *)

open Util

let program ?(rounds = 6) () : D.program =
  let c = "Timed" in
  let sleeper =
    (* sleeps a pseudo-varying amount each round, stamping progress *)
    A.method_ ~args:[ I.Tint ] ~nlocals:2 "sleeper"
      [
        i (I.Const rounds);
        i (I.Store 1);
        l "loop";
        i (I.Load 1);
        i (I.Ifz (I.Le, "end"));
        i (I.Load 0);
        i (I.Load 1);
        i I.Mul;
        i (I.Const 5);
        i I.Rem;
        i (I.Const 1);
        i I.Add;
        i I.Sleep;
        i (I.Getstatic (c, "progress"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "progress"));
        i (I.Load 1);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let waiter =
    (* timed wait: notified on even rounds (by the notifier) or times out;
       counts which happened via the elapsed progress *)
    A.method_ ~nlocals:2 "waiter"
      [
        i (I.Const rounds);
        i (I.Store 0);
        l "loop";
        i (I.Load 0);
        i (I.Ifz (I.Le, "end"));
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Getstatic (c, "lock"));
        i (I.Const 4);
        i I.Timedwait;
        i I.Pop;
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i (I.Getstatic (c, "waits"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "waits"));
        i (I.Load 0);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 0);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let notifier =
    A.method_ ~nlocals:1 "notifier"
      [
        i (I.Const (rounds / 2));
        i (I.Store 0);
        l "loop";
        i (I.Load 0);
        i (I.Ifz (I.Le, "end"));
        i (I.Const 3);
        i I.Sleep;
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Getstatic (c, "lock"));
        i I.Notifyall;
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i (I.Load 0);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 0);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:4 "main"
      [
        i (I.New "Object");
        i (I.Putstatic (c, "lock"));
        i (I.Const 2);
        i (I.Spawn (c, "sleeper"));
        i (I.Store 0);
        i (I.Const 3);
        i (I.Spawn (c, "sleeper"));
        i (I.Store 1);
        i (I.Spawn (c, "waiter"));
        i (I.Store 2);
        i (I.Spawn (c, "notifier"));
        i (I.Store 3);
        i (I.Load 0);
        i I.Join;
        i (I.Load 1);
        i I.Join;
        i (I.Load 2);
        i I.Join;
        i (I.Load 3);
        i I.Join;
        i (I.Getstatic (c, "progress"));
        i I.Print;
        i (I.Getstatic (c, "waits"));
        i I.Print;
        i I.Ret;
      ]
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field "progress";
            D.field "waits";
            D.field ~ty:(I.Tobj "Object") "lock";
          ]
        [ sleeper; waiter; notifier; main ];
    ]
