(* Deep recursion: exercises runtime-stack growth (heap-allocated stacks
   that must relocate mid-call-chain) and the StackOverflowError path. *)

open Util

(* Recursive sum 1..n; depth [n] forces several stack growths. *)
let recurse ?(depth = 3000) () : D.program =
  let c = "Deep" in
  let sum =
    A.method_ ~args:[ I.Tint ] ~ret:I.Tint ~nlocals:1 "sum"
      [
        i (I.Load 0);
        i (I.Ifz (I.Le, "base"));
        i (I.Load 0);
        i (I.Load 0);
        i (I.Const 1);
        i I.Sub;
        i (I.Invoke (c, "sum"));
        i I.Add;
        i I.Retv;
        l "base";
        i (I.Const 0);
        i I.Retv;
      ]
  in
  let main =
    A.method_ ~nlocals:0 "main"
      [ i (I.Const depth); i (I.Invoke (c, "sum")); i I.Print; i I.Ret ]
  in
  D.program [ D.cdecl c [ sum; main ] ]

(* Unbounded recursion caught by a handler: proves StackOverflowError is an
   ordinary, catchable, replayable exception. *)
let overflow () : D.program =
  let c = "Overflow" in
  let forever =
    A.method_ ~args:[ I.Tint ] ~ret:I.Tint ~nlocals:1 "forever"
      [
        i (I.Load 0);
        i (I.Const 1);
        i I.Add;
        i (I.Invoke (c, "forever"));
        i I.Retv;
      ]
  in
  let main =
    A.method_with_handlers ~nlocals:0 "main"
      [
        l "try";
        i (I.Const 0);
        i (I.Invoke (c, "forever"));
        i I.Pop;
        l "endtry";
        i (I.Sconst "no overflow?\n");
        i I.Prints;
        i I.Ret;
        l "catch";
        i I.Pop;
        i (I.Sconst "caught overflow\n");
        i I.Prints;
        i I.Ret;
      ]
      [
        {
          A.ah_from = "try";
          ah_upto = "endtry";
          ah_target = "catch";
          ah_class = Some "StackOverflowError";
        };
      ]
  in
  D.program [ D.cdecl c [ forever; main ] ]
