(* A bounded buffer with wait/notify — the archetypal server-style
   coordination pattern the paper's motivation targets. Producers push a
   deterministic stream of values; consumers pop and fold them. The fold
   total is schedule-independent but the *order* trace (printed) is not. *)

open Util

let program ?(producers = 2) ?(consumers = 2) ?(items = 60) ?(capacity = 4)
    ?(trace_order = true) () : D.program =
  let c = "PC" in
  let buf = "Buffer" in
  (* Buffer instance: ring storage, head, tail, size. All methods
     synchronized on the buffer. *)
  let put =
    A.method_ ~static:false ~sync:true
      ~args:[ I.Tobj buf; I.Tint ]
      ~nlocals:2 "put"
      [
        l "check";
        i (I.Load 0);
        i (I.Getfield (buf, "size"));
        i (I.Load 0);
        i (I.Getfield (buf, "data"));
        i I.Arraylength;
        i (I.If (I.Lt, "room"));
        i (I.Load 0);
        i I.Wait;
        i I.Pop;
        i (I.Goto "check");
        l "room";
        (* data[tail] = v; tail = (tail+1) % cap; size++ *)
        i (I.Load 0);
        i (I.Getfield (buf, "data"));
        i (I.Load 0);
        i (I.Getfield (buf, "tail"));
        i (I.Load 1);
        i I.Astore;
        i (I.Load 0);
        i (I.Load 0);
        i (I.Getfield (buf, "tail"));
        i (I.Const 1);
        i I.Add;
        i (I.Load 0);
        i (I.Getfield (buf, "data"));
        i I.Arraylength;
        i I.Rem;
        i (I.Putfield (buf, "tail"));
        i (I.Load 0);
        i (I.Load 0);
        i (I.Getfield (buf, "size"));
        i (I.Const 1);
        i I.Add;
        i (I.Putfield (buf, "size"));
        i (I.Load 0);
        i I.Notifyall;
        i I.Ret;
      ]
  in
  let get =
    A.method_ ~static:false ~sync:true ~ret:I.Tint
      ~args:[ I.Tobj buf ]
      ~nlocals:2 "get"
      [
        l "check";
        i (I.Load 0);
        i (I.Getfield (buf, "size"));
        i (I.Ifz (I.Gt, "avail"));
        i (I.Load 0);
        i I.Wait;
        i I.Pop;
        i (I.Goto "check");
        l "avail";
        (* v = data[head]; head = (head+1) % cap; size-- *)
        i (I.Load 0);
        i (I.Getfield (buf, "data"));
        i (I.Load 0);
        i (I.Getfield (buf, "head"));
        i I.Aload;
        i (I.Store 1);
        i (I.Load 0);
        i (I.Load 0);
        i (I.Getfield (buf, "head"));
        i (I.Const 1);
        i I.Add;
        i (I.Load 0);
        i (I.Getfield (buf, "data"));
        i I.Arraylength;
        i I.Rem;
        i (I.Putfield (buf, "head"));
        i (I.Load 0);
        i (I.Load 0);
        i (I.Getfield (buf, "size"));
        i (I.Const 1);
        i I.Sub;
        i (I.Putfield (buf, "size"));
        i (I.Load 0);
        i I.Notifyall;
        i (I.Load 1);
        i I.Retv;
      ]
  in
  let buffer_class =
    D.cdecl buf
      ~fields:
        [
          D.field ~ty:(I.Tarr I.Tint) "data";
          D.field "head";
          D.field "tail";
          D.field "size";
        ]
      [ put; get ]
  in
  (* producer k: pushes k*items + j for j in 0..items *)
  let producer =
    A.method_
      ~args:[ I.Tobj buf; I.Tint ]
      ~nlocals:3 "producer"
      [
        i (I.Const 0);
        i (I.Store 2);
        l "loop";
        i (I.Load 2);
        i (I.Const items);
        i (I.If (I.Ge, "end"));
        i (I.Load 0);
        i (I.Load 1);
        i (I.Const items);
        i I.Mul;
        i (I.Load 2);
        i I.Add;
        i (I.Invoke (buf, "put"));
        i (I.Load 2);
        i (I.Const 1);
        i I.Add;
        i (I.Store 2);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  (* consumer: pops its share, adds into the shared total (synchronized),
     optionally printing consumption order *)
  let consume_n = producers * items / consumers in
  let consumer =
    A.method_
      ~args:[ I.Tobj buf ]
      ~nlocals:3 "consumer"
      ([
         i (I.Const 0);
         i (I.Store 1);
         l "loop";
         i (I.Load 1);
         i (I.Const consume_n);
         i (I.If (I.Ge, "end"));
         i (I.Load 0);
         i (I.Invoke (buf, "get"));
         i (I.Store 2);
       ]
      @ (if trace_order then [ i (I.Load 2); i I.Print ] else [])
      @ [
          (* total += v, guarded by the buffer monitor *)
          i (I.Load 0);
          i I.Monitorenter;
          i (I.Getstatic (c, "total"));
          i (I.Load 2);
          i I.Add;
          i (I.Putstatic (c, "total"));
          i (I.Load 0);
          i I.Monitorexit;
          i (I.Load 1);
          i (I.Const 1);
          i I.Add;
          i (I.Store 1);
          i (I.Goto "loop");
          l "end";
          i I.Ret;
        ])
  in
  let nloc = producers + consumers + 1 in
  let main =
    A.method_ ~nlocals:(nloc + 1) "main"
      ([
         i (I.New buf);
         i (I.Store nloc);
         i (I.Load nloc);
         i (I.Const capacity);
         i (I.Newarray I.Tint);
         i (I.Putfield (buf, "data"));
       ]
      @ List.concat_map
          (fun k ->
            [
              i (I.Load nloc);
              i (I.Const k);
              i (I.Spawn (c, "producer"));
              i (I.Store k);
            ])
          (List.init producers (fun k -> k))
      @ List.concat_map
          (fun k ->
            [
              i (I.Load nloc);
              i (I.Spawn (c, "consumer"));
              i (I.Store (producers + k));
            ])
          (List.init consumers (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init (producers + consumers) (fun k -> k))
      @ [
          i (I.Sconst "total=");
          i I.Prints;
          i (I.Getstatic (c, "total"));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program ~main_class:c
    [
      buffer_class;
      D.cdecl c ~statics:[ D.field "total" ] [ producer; consumer; main ];
    ]
