(* Compute-bound workloads for the overhead benches: a prime sieve (tight
   loops, yield-point heavy) and a multithreaded fork/join array sum. *)

open Util

(* Count primes below [n] by trial division; single-threaded. *)
let primes ?(n = 2000) () : D.program =
  let c = "Primes" in
  let is_prime =
    A.method_ ~args:[ I.Tint ] ~ret:I.Tint ~nlocals:2 "is_prime"
      [
        i (I.Load 0);
        i (I.Const 2);
        i (I.If (I.Lt, "no"));
        i (I.Const 2);
        i (I.Store 1);
        l "loop";
        i (I.Load 1);
        i (I.Load 1);
        i I.Mul;
        i (I.Load 0);
        i (I.If (I.Gt, "yes"));
        i (I.Load 0);
        i (I.Load 1);
        i I.Rem;
        i (I.Ifz (I.Eq, "no"));
        i (I.Load 1);
        i (I.Const 1);
        i I.Add;
        i (I.Store 1);
        i (I.Goto "loop");
        l "yes";
        i (I.Const 1);
        i I.Retv;
        l "no";
        i (I.Const 0);
        i I.Retv;
      ]
  in
  let main =
    A.method_ ~nlocals:2 "main"
      [
        i (I.Const 0);
        i (I.Store 0);
        i (I.Const 2);
        i (I.Store 1);
        l "loop";
        i (I.Load 1);
        i (I.Const n);
        i (I.If (I.Ge, "end"));
        i (I.Load 0);
        i (I.Load 1);
        i (I.Invoke (c, "is_prime"));
        i I.Add;
        i (I.Store 0);
        i (I.Load 1);
        i (I.Const 1);
        i I.Add;
        i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i (I.Load 0);
        i I.Print;
        i I.Ret;
      ]
  in
  D.program [ D.cdecl c [ is_prime; main ] ]

(* Fork/join parallel sum: [threads] workers each sum a slice of a shared
   array, posting partial sums; main joins and combines. *)
let parsum ?(threads = 4) ?(size = 4000) () : D.program =
  let c = "Parsum" in
  let worker =
    (* args: k; sums data[k*slice .. (k+1)*slice) into partial[k] *)
    A.method_ ~args:[ I.Tint ] ~nlocals:4 "worker"
      [
        i (I.Load 0);
        i (I.Const (size / threads));
        i I.Mul;
        i (I.Store 1);
        i (I.Load 1);
        i (I.Const (size / threads));
        i I.Add;
        i (I.Store 2);
        i (I.Const 0);
        i (I.Store 3);
        l "loop";
        i (I.Load 1);
        i (I.Load 2);
        i (I.If (I.Ge, "end"));
        i (I.Load 3);
        i (I.Getstatic (c, "data"));
        i (I.Load 1);
        i I.Aload;
        i I.Add;
        i (I.Store 3);
        i (I.Load 1);
        i (I.Const 1);
        i I.Add;
        i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i (I.Getstatic (c, "partial"));
        i (I.Load 0);
        i (I.Load 3);
        i I.Astore;
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:(threads + 2) "main"
      ([
         i (I.Const size);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "data"));
         i (I.Const threads);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "partial"));
         (* data[j] = j *)
         i (I.Const 0);
         i (I.Store threads);
         l "init";
         i (I.Load threads);
         i (I.Const size);
         i (I.If (I.Ge, "go"));
         i (I.Getstatic (c, "data"));
         i (I.Load threads);
         i (I.Load threads);
         i I.Astore;
         i (I.Load threads);
         i (I.Const 1);
         i I.Add;
         i (I.Store threads);
         i (I.Goto "init");
         l "go";
       ]
      @ List.concat_map
          (fun k ->
            [ i (I.Const k); i (I.Spawn (c, "worker")); i (I.Store k) ])
          (List.init threads (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init threads (fun k -> k))
      @ [
          i (I.Const 0);
          i (I.Store threads);
          i (I.Const 0);
          i (I.Store (threads + 1));
          l "fold";
          i (I.Load threads);
          i (I.Const threads);
          i (I.If (I.Ge, "done"));
          i (I.Load (threads + 1));
          i (I.Getstatic (c, "partial"));
          i (I.Load threads);
          i I.Aload;
          i I.Add;
          i (I.Store (threads + 1));
          i (I.Load threads);
          i (I.Const 1);
          i I.Add;
          i (I.Store threads);
          i (I.Goto "fold");
          l "done";
          i (I.Load (threads + 1));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field ~ty:(I.Tarr I.Tint) "data";
            D.field ~ty:(I.Tarr I.Tint) "partial";
          ]
        [ worker; main ];
    ]
