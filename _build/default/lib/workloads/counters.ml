(* Shared-counter workloads: the classic lost-update race (unsynchronized)
   and its synchronized twin. The racy version's final count is schedule-
   dependent; the synchronized version's count is always n*m but its
   interleaving (and hence its event sequence) still varies. *)

open Util

let racy ?(threads = 4) ?(increments = 2000) () : D.program =
  let c = "Racy" in
  let worker =
    (* for k in 0..increments: tmp = count; <work with a yield point in
       it — the lost-update window>; count = tmp + 1 *)
    A.method_ ~nlocals:2 "worker"
      [
        i (I.Const increments);
        i (I.Store 0);
        l "loop";
        i (I.Load 0);
        i (I.Ifz (I.Le, "end"));
        i (I.Getstatic (c, "count"));
        i (I.Store 1);
        i (I.Const 2);
        i (I.Invoke (c, "spin"));
        i (I.Load 1);
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "count"));
        i (I.Load 0);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 0);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:(threads + 1) "main"
      (List.concat_map
         (fun k -> [ i (I.Spawn (c, "worker")); i (I.Store k) ])
         (List.init threads (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init threads (fun k -> k))
      @ [ i (I.Getstatic (c, "count")); i I.Print; i I.Ret ])
  in
  D.program
    [ D.cdecl c ~statics:[ D.field "count" ] [ Util.spin_method; worker; main ] ]

let synced ?(threads = 4) ?(increments = 500) () : D.program =
  let c = "Synced" in
  let bump =
    (* synchronized instance method on the shared counter object *)
    A.method_ ~static:false ~sync:true
      ~args:[ I.Tobj "Counter" ]
      ~nlocals:1 "bump"
      [
        i (I.Load 0);
        i (I.Load 0);
        i (I.Getfield ("Counter", "value"));
        i (I.Const 1);
        i I.Add;
        i (I.Putfield ("Counter", "value"));
        i I.Ret;
      ]
  in
  let counter_class = D.cdecl "Counter" ~fields:[ D.field "value" ] [ bump ] in
  let worker =
    A.method_
      ~args:[ I.Tobj "Counter" ]
      ~nlocals:2 "worker"
      [
        i (I.Const increments);
        i (I.Store 1);
        l "loop";
        i (I.Load 1);
        i (I.Ifz (I.Le, "end"));
        i (I.Load 0);
        i (I.Invoke ("Counter", "bump"));
        i (I.Load 1);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:(threads + 2) "main"
      ([ i (I.New "Counter"); i (I.Store threads) ]
      @ List.concat_map
          (fun k ->
            [ i (I.Load threads); i (I.Spawn (c, "worker")); i (I.Store k) ])
          (List.init threads (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init threads (fun k -> k))
      @ [
          i (I.Load threads);
          i (I.Getfield ("Counter", "value"));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program ~main_class:c [ counter_class; D.cdecl c [ worker; main ] ]
