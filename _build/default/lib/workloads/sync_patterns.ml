(* Classic synchronization patterns implemented on the monitor primitives:
   a cyclic barrier and a readers-writer lock. Both produce invariants that
   must hold under every schedule (checked by tests) while their event
   orders remain schedule-dependent (exercised by replay). *)

open Util

(* N workers run [rounds] phases; a cyclic barrier separates the phases.
   Each worker adds (phase * 1000 + its id) into a per-phase cell only
   legal while that phase is open, so any barrier bug corrupts the sums. *)
let barrier ?(workers = 4) ?(rounds = 5) () : D.program =
  let c = "Barrier" in
  let await =
    (* static await(): synchronized on lock; generation-count barrier *)
    A.method_ ~nlocals:1 "await"
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        (* my generation *)
        i (I.Getstatic (c, "generation"));
        i (I.Store 0);
        (* arrived++ *)
        i (I.Getstatic (c, "arrived"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "arrived"));
        (* last one in flips the generation *)
        i (I.Getstatic (c, "arrived"));
        i (I.Const workers);
        i (I.If (I.Lt, "waitloop"));
        i (I.Const 0);
        i (I.Putstatic (c, "arrived"));
        i (I.Getstatic (c, "generation"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "generation"));
        i (I.Getstatic (c, "lock"));
        i I.Notifyall;
        i (I.Goto "out");
        l "waitloop";
        i (I.Getstatic (c, "generation"));
        i (I.Load 0);
        i (I.If (I.Ne, "out"));
        i (I.Getstatic (c, "lock"));
        i I.Wait;
        i I.Pop;
        i (I.Goto "waitloop");
        l "out";
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let worker =
    A.method_ ~args:[ I.Tint ] ~nlocals:2 "worker"
      [
        i (I.Const 0);
        i (I.Store 1);
        l "phase";
        i (I.Load 1);
        i (I.Const rounds);
        i (I.If (I.Ge, "end"));
        (* contribute to this phase's sum (racy add is fine: it is guarded
           by the phase structure via the lock) *)
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Getstatic (c, "sums"));
        i (I.Load 1);
        i (I.Getstatic (c, "sums"));
        i (I.Load 1);
        i I.Aload;
        i (I.Load 1);
        i (I.Const 1000);
        i I.Mul;
        i (I.Load 0);
        i I.Add;
        i I.Add;
        i I.Astore;
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        (* a little uneven work before the barrier *)
        i (I.Load 0);
        i (I.Const 37);
        i I.Mul;
        i (I.Const 60);
        i I.Rem;
        i (I.Invoke (c, "spin"));
        i (I.Invoke (c, "await"));
        i (I.Load 1);
        i (I.Const 1);
        i I.Add;
        i (I.Store 1);
        i (I.Goto "phase");
        l "end";
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:(workers + 1) "main"
      ([
         i (I.New "Object");
         i (I.Putstatic (c, "lock"));
         i (I.Const rounds);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "sums"));
       ]
      @ List.concat_map
          (fun k ->
            [ i (I.Const k); i (I.Spawn (c, "worker")); i (I.Store k) ])
          (List.init workers (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init workers (fun k -> k))
      @ [
          (* print per-phase sums: each must equal
             workers*phase*1000 + (0+1+..+workers-1) *)
          i (I.Const 0);
          i (I.Store workers);
          l "dump";
          i (I.Load workers);
          i (I.Const rounds);
          i (I.If (I.Ge, "done"));
          i (I.Getstatic (c, "sums"));
          i (I.Load workers);
          i I.Aload;
          i I.Print;
          i (I.Load workers);
          i (I.Const 1);
          i I.Add;
          i (I.Store workers);
          i (I.Goto "dump");
          l "done";
          i I.Ret;
        ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field ~ty:(I.Tobj "Object") "lock";
            D.field "arrived";
            D.field "generation";
            D.field ~ty:(I.Tarr I.Tint) "sums";
          ]
        [ spin_method; await; worker; main ];
    ]

(* Readers-writer lock: readers proceed concurrently, writers exclusively.
   Readers sum the two cells (must always see a consistent pair: the writer
   keeps cells.(0) + cells.(1) == 0); any isolation bug prints a non-zero. *)
let rwlock ?(readers = 3) ?(writers = 2) ?(ops = 12) () : D.program =
  let c = "RW" in
  let acquire_read =
    A.method_ ~nlocals:0 "acquire_read"
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        l "check";
        i (I.Getstatic (c, "writing"));
        i (I.Ifz (I.Eq, "ok"));
        i (I.Getstatic (c, "lock"));
        i I.Wait;
        i I.Pop;
        i (I.Goto "check");
        l "ok";
        i (I.Getstatic (c, "nreaders"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "nreaders"));
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let release_read =
    A.method_ ~nlocals:0 "release_read"
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Getstatic (c, "nreaders"));
        i (I.Const 1);
        i I.Sub;
        i (I.Putstatic (c, "nreaders"));
        i (I.Getstatic (c, "lock"));
        i I.Notifyall;
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let acquire_write =
    A.method_ ~nlocals:0 "acquire_write"
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        l "check";
        i (I.Getstatic (c, "writing"));
        i (I.Ifz (I.Ne, "blocked"));
        i (I.Getstatic (c, "nreaders"));
        i (I.Ifz (I.Eq, "ok"));
        l "blocked";
        i (I.Getstatic (c, "lock"));
        i I.Wait;
        i I.Pop;
        i (I.Goto "check");
        l "ok";
        i (I.Const 1);
        i (I.Putstatic (c, "writing"));
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let release_write =
    A.method_ ~nlocals:0 "release_write"
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Const 0);
        i (I.Putstatic (c, "writing"));
        i (I.Getstatic (c, "lock"));
        i I.Notifyall;
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let reader =
    A.method_ ~nlocals:2 "reader"
      [
        i (I.Const ops);
        i (I.Store 0);
        l "loop";
        i (I.Load 0);
        i (I.Ifz (I.Le, "end"));
        i (I.Invoke (c, "acquire_read"));
        (* the pair must sum to zero under the lock *)
        i (I.Getstatic (c, "cells"));
        i (I.Const 0);
        i I.Aload;
        i (I.Getstatic (c, "cells"));
        i (I.Const 1);
        i I.Aload;
        i I.Add;
        i (I.Store 1);
        i (I.Const 15);
        i (I.Invoke (c, "spin"));
        i (I.Invoke (c, "release_read"));
        (* a non-zero pair sum means a writer was visible mid-update *)
        i (I.Load 1);
        i (I.Ifz (I.Eq, "fine"));
        i (I.Getstatic (c, "violations"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "violations"));
        l "fine";
        i (I.Load 0);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 0);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let writer =
    A.method_ ~args:[ I.Tint ] ~nlocals:2 "writer"
      [
        i (I.Const ops);
        i (I.Store 1);
        l "loop";
        i (I.Load 1);
        i (I.Ifz (I.Le, "end"));
        i (I.Invoke (c, "acquire_write"));
        (* cells.(0) += k; spin; cells.(1) -= k : the pair is briefly
           inconsistent, which only the write lock hides *)
        i (I.Getstatic (c, "cells"));
        i (I.Const 0);
        i (I.Getstatic (c, "cells"));
        i (I.Const 0);
        i I.Aload;
        i (I.Load 0);
        i I.Add;
        i I.Astore;
        i (I.Const 25);
        i (I.Invoke (c, "spin"));
        i (I.Getstatic (c, "cells"));
        i (I.Const 1);
        i (I.Getstatic (c, "cells"));
        i (I.Const 1);
        i I.Aload;
        i (I.Load 0);
        i I.Sub;
        i I.Astore;
        i (I.Invoke (c, "release_write"));
        i (I.Load 1);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let n = readers + writers in
  let main =
    A.method_ ~nlocals:(n + 1) "main"
      ([
         i (I.New "Object");
         i (I.Putstatic (c, "lock"));
         i (I.Const 2);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "cells"));
       ]
      @ List.concat_map
          (fun k -> [ i (I.Spawn (c, "reader")); i (I.Store k) ])
          (List.init readers (fun k -> k))
      @ List.concat_map
          (fun k ->
            [
              i (I.Const (k + 1));
              i (I.Spawn (c, "writer"));
              i (I.Store (readers + k));
            ])
          (List.init writers (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init n (fun k -> k))
      @ [
          i (I.Sconst "violations=");
          i I.Prints;
          i (I.Getstatic (c, "violations"));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field ~ty:(I.Tobj "Object") "lock";
            D.field "nreaders";
            D.field "writing";
            D.field ~ty:(I.Tarr I.Tint) "cells";
            D.field "violations";
          ]
        [
          spin_method; acquire_read; release_read; acquire_write;
          release_write; reader; writer; main;
        ];
    ]
