lib/workloads/sorting.ml: A D I Util
