lib/workloads/registry.ml: Bank Bytecode Compute Counters Deep Exceptions_wl Fig1 Gc_churn Lazy List Native_demo Philosophers Producer_consumer Ring_actors Sorting Sync_patterns Timed Vm Webserver
