lib/workloads/timed.ml: A D I Util
