lib/workloads/exceptions_wl.ml: A D I Util
