lib/workloads/compute.ml: A D I List Util
