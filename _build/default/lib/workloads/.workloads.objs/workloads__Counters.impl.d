lib/workloads/counters.ml: A D I List Util
