lib/workloads/philosophers.ml: A D I List Util
