lib/workloads/native_demo.ml: A Array D I List Util Vm
