lib/workloads/producer_consumer.ml: A D I List Util
