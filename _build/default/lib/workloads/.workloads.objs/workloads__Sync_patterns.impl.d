lib/workloads/sync_patterns.ml: A D I List Util
