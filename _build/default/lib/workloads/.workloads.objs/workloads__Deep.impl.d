lib/workloads/deep.ml: A D I Util
