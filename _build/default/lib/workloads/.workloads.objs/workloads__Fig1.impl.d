lib/workloads/fig1.ml: A D I Util
