lib/workloads/bank.ml: A D I List Util
