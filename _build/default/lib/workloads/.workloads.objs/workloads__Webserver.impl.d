lib/workloads/webserver.ml: A D I List Util
