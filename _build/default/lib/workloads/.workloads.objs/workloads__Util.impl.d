lib/workloads/util.ml: Bytecode
