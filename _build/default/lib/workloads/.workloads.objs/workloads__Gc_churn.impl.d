lib/workloads/gc_churn.ml: A D I List Util
