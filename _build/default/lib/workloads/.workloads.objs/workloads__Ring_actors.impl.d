lib/workloads/ring_actors.ml: A D I List Util
