(* Fork/join mergesort: main splits the array between two sorter threads,
   joins them, and merges. Sorting is deterministic; the interleaving of
   the two sorters is not — a classic "data-parallel but schedule-noisy"
   shape for the replay experiments. *)

open Util

let program ?(size = 256) () : D.program =
  let c = "Sort" in
  (* insertion-sort data[from, to_) *)
  let sort_range =
    A.method_ ~args:[ I.Tint; I.Tint ] ~nlocals:5 "sort_range"
      [
        i (I.Load 0);
        i (I.Const 1);
        i I.Add;
        i (I.Store 2);
        l "outer";
        i (I.Load 2);
        i (I.Load 1);
        i (I.If (I.Ge, "end"));
        (* key = data[i]; j = i-1 *)
        i (I.Getstatic (c, "data"));
        i (I.Load 2);
        i I.Aload;
        i (I.Store 3);
        i (I.Load 2);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 4);
        l "inner";
        i (I.Load 4);
        i (I.Load 0);
        i (I.If (I.Lt, "place"));
        i (I.Getstatic (c, "data"));
        i (I.Load 4);
        i I.Aload;
        i (I.Load 3);
        i (I.If (I.Le, "place"));
        (* data[j+1] = data[j]; j-- *)
        i (I.Getstatic (c, "data"));
        i (I.Load 4);
        i (I.Const 1);
        i I.Add;
        i (I.Getstatic (c, "data"));
        i (I.Load 4);
        i I.Aload;
        i I.Astore;
        i (I.Load 4);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 4);
        i (I.Goto "inner");
        l "place";
        i (I.Getstatic (c, "data"));
        i (I.Load 4);
        i (I.Const 1);
        i I.Add;
        i (I.Load 3);
        i I.Astore;
        i (I.Load 2);
        i (I.Const 1);
        i I.Add;
        i (I.Store 2);
        i (I.Goto "outer");
        l "end";
        i I.Ret;
      ]
  in
  let half = size / 2 in
  let sorter =
    A.method_ ~args:[ I.Tint; I.Tint ] ~nlocals:2 "sorter"
      [
        i (I.Load 0);
        i (I.Load 1);
        i (I.Invoke (c, "sort_range"));
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:6 "main"
      ([
         i (I.Const size);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "data"));
         i (I.Const size);
         i (I.Newarray I.Tint);
         i (I.Putstatic (c, "merged"));
         (* fill with a scrambled sequence: (i * 73 + 11) mod size *)
         i (I.Const 0);
         i (I.Store 0);
         l "fill";
         i (I.Load 0);
         i (I.Const size);
         i (I.If (I.Ge, "spawned"));
         i (I.Getstatic (c, "data"));
         i (I.Load 0);
         i (I.Load 0);
         i (I.Const 73);
         i I.Mul;
         i (I.Const 11);
         i I.Add;
         i (I.Const size);
         i I.Rem;
         i I.Astore;
         i (I.Load 0);
         i (I.Const 1);
         i I.Add;
         i (I.Store 0);
         i (I.Goto "fill");
         l "spawned";
         (* two sorters over the halves *)
         i (I.Const 0);
         i (I.Const half);
         i (I.Spawn (c, "sorter"));
         i (I.Store 0);
         i (I.Const half);
         i (I.Const size);
         i (I.Spawn (c, "sorter"));
         i (I.Store 1);
         i (I.Load 0);
         i I.Join;
         i (I.Load 1);
         i I.Join;
         (* merge: i over [0,half), j over [half,size), k output *)
         i (I.Const 0);
         i (I.Store 0);
         i (I.Const half);
         i (I.Store 1);
         i (I.Const 0);
         i (I.Store 2);
         l "merge";
         i (I.Load 2);
         i (I.Const size);
         i (I.If (I.Ge, "check"));
         (* left exhausted? take right *)
         i (I.Load 0);
         i (I.Const half);
         i (I.If (I.Ge, "takeright"));
         (* right exhausted? take left *)
         i (I.Load 1);
         i (I.Const size);
         i (I.If (I.Ge, "takeleft"));
         (* both live: compare *)
         i (I.Getstatic (c, "data"));
         i (I.Load 0);
         i I.Aload;
         i (I.Getstatic (c, "data"));
         i (I.Load 1);
         i I.Aload;
         i (I.If (I.Le, "takeleft"));
         l "takeright";
         i (I.Getstatic (c, "merged"));
         i (I.Load 2);
         i (I.Getstatic (c, "data"));
         i (I.Load 1);
         i I.Aload;
         i I.Astore;
         i (I.Load 1);
         i (I.Const 1);
         i I.Add;
         i (I.Store 1);
         i (I.Goto "next");
         l "takeleft";
         i (I.Getstatic (c, "merged"));
         i (I.Load 2);
         i (I.Getstatic (c, "data"));
         i (I.Load 0);
         i I.Aload;
         i I.Astore;
         i (I.Load 0);
         i (I.Const 1);
         i I.Add;
         i (I.Store 0);
         l "next";
         i (I.Load 2);
         i (I.Const 1);
         i I.Add;
         i (I.Store 2);
         i (I.Goto "merge");
         (* verify sortedness and checksum *)
         l "check";
         i (I.Const 0);
         i (I.Store 3);
         i (I.Const 0);
         i (I.Store 4);
         i (I.Const 0);
         i (I.Store 5);
         l "scan";
         i (I.Load 3);
         i (I.Const size);
         i (I.If (I.Ge, "report"));
         i (I.Load 4);
         i (I.Getstatic (c, "merged"));
         i (I.Load 3);
         i I.Aload;
         i I.Add;
         i (I.Store 4);
         (* out of order? *)
         i (I.Load 3);
         i (I.Ifz (I.Eq, "inorder"));
         i (I.Getstatic (c, "merged"));
         i (I.Load 3);
         i (I.Const 1);
         i I.Sub;
         i I.Aload;
         i (I.Getstatic (c, "merged"));
         i (I.Load 3);
         i I.Aload;
         i (I.If (I.Le, "inorder"));
         i (I.Load 5);
         i (I.Const 1);
         i I.Add;
         i (I.Store 5);
         l "inorder";
         i (I.Load 3);
         i (I.Const 1);
         i I.Add;
         i (I.Store 3);
         i (I.Goto "scan");
         l "report";
         i (I.Sconst "inversions=");
         i I.Prints;
         i (I.Load 5);
         i I.Print;
         i (I.Sconst "sum=");
         i I.Prints;
         i (I.Load 4);
         i I.Print;
         i I.Ret;
       ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [ D.field ~ty:(I.Tarr I.Tint) "data"; D.field ~ty:(I.Tarr I.Tint) "merged" ]
        [ sort_range; sorter; main ];
    ]
