(* Allocation churn: builds and drops linked lists across two threads to
   force repeated copying collections while frames, statics, and interned
   strings all hold live references — the collector's hardest test. *)

open Util

let program ?(threads = 2) ?(rounds = 30) ?(nodes = 200) () : D.program =
  let c = "Churn" in
  let node = "Node" in
  let worker =
    (* each round builds a list of [nodes], checksums it, keeps every 7th
       round's list alive in a static to create old survivors *)
    A.method_ ~args:[ I.Tint ] ~nlocals:6 "worker"
      [
        i (I.Const rounds);
        i (I.Store 1);
        l "rounds";
        i (I.Load 1);
        i (I.Ifz (I.Le, "end"));
        (* build *)
        i I.Null;
        i (I.Store 2);
        i (I.Const nodes);
        i (I.Store 3);
        l "build";
        i (I.Load 3);
        i (I.Ifz (I.Le, "sum"));
        i (I.New node);
        i (I.Store 4);
        i (I.Load 4);
        i (I.Load 3);
        i (I.Putfield (node, "value"));
        i (I.Load 4);
        i (I.Load 2);
        i (I.Putfield (node, "next"));
        i (I.Load 4);
        i (I.Store 2);
        i (I.Load 3);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 3);
        i (I.Goto "build");
        (* checksum *)
        l "sum";
        i (I.Const 0);
        i (I.Store 5);
        i (I.Load 2);
        i (I.Store 4);
        l "walk";
        i (I.Load 4);
        i (I.Ifnull "keep");
        i (I.Load 5);
        i (I.Load 4);
        i (I.Getfield (node, "value"));
        i I.Add;
        i (I.Store 5);
        i (I.Load 4);
        i (I.Getfield (node, "next"));
        i (I.Store 4);
        i (I.Goto "walk");
        l "keep";
        (* keep every 7th list alive *)
        i (I.Load 1);
        i (I.Const 7);
        i I.Rem;
        i (I.Ifz (I.Ne, "drop"));
        i (I.Load 2);
        i (I.Putstatic (c, "survivor"));
        l "drop";
        (* fold checksum into a static total under a lock *)
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Getstatic (c, "total"));
        i (I.Load 5);
        i I.Add;
        i (I.Putstatic (c, "total"));
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
        i (I.Load 1);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 1);
        i (I.Goto "rounds");
        l "end";
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:(threads + 1) "main"
      ([ i (I.New "Object"); i (I.Putstatic (c, "lock")) ]
      @ List.concat_map
          (fun k ->
            [ i (I.Const k); i (I.Spawn (c, "worker")); i (I.Store k) ])
          (List.init threads (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init threads (fun k -> k))
      @ [
          i (I.Sconst "checksum=");
          i I.Prints;
          i (I.Getstatic (c, "total"));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program ~main_class:c
    [
      D.cdecl node
        ~fields:[ D.field "value"; D.field ~ty:(I.Tobj node) "next" ]
        [];
      D.cdecl c
        ~statics:
          [
            D.field "total";
            D.field ~ty:(I.Tobj node) "survivor";
            D.field ~ty:(I.Tobj "Object") "lock";
          ]
        [ worker; main ];
    ]
