(* Shared helpers for writing workload programs in the assembly DSL. *)

module I = Bytecode.Instr
module D = Bytecode.Decl
module A = Bytecode.Asm

let i = A.i

let l = A.label

(* A busy loop burning roughly [2 + 5n] instructions. *)
let spin_method =
  A.method_ ~args:[ I.Tint ] ~nlocals:1 "spin"
    [
      l "loop";
      i (I.Load 0);
      i (I.Ifz (I.Le, "end"));
      i (I.Load 0);
      i (I.Const 1);
      i I.Sub;
      i (I.Store 0);
      i (I.Goto "loop");
      l "end";
      i I.Ret;
    ]

(* call spin(n) in the owner class [c] *)
let spin c n = [ i (I.Const n); i (I.Invoke (c, "spin")) ]

(* print an integer literal marker *)
let print_const n = [ i (I.Const n); i I.Print ]

let print_str s = [ i (I.Sconst s); i I.Prints ]
