(* Exception-heavy workload: user-defined throwable subclasses, handlers at
   different frame depths, builtin runtime exceptions (divide by zero, null
   dereference, array bounds), and an uncaught exception killing a thread.
   Exercises unwinding across synchronized frames too. *)

open Util

let program ?(rounds = 40) () : D.program =
  let c = "Exc" in
  let app_exc = "AppError" in
  (* level2 throws AppError when its argument is divisible by 5; triggers a
     builtin ArithmeticException when divisible by 7 *)
  let level2 =
    A.method_ ~args:[ I.Tint ] ~ret:I.Tint ~nlocals:1 "level2"
      [
        i (I.Load 0);
        i (I.Const 5);
        i I.Rem;
        i (I.Ifz (I.Ne, "not5"));
        i (I.New app_exc);
        i I.Throw;
        l "not5";
        i (I.Load 0);
        i (I.Const 7);
        i I.Rem;
        i (I.Ifz (I.Ne, "not7"));
        i (I.Const 1);
        i (I.Const 0);
        i I.Div;
        i I.Pop;
        l "not7";
        i (I.Load 0);
        i (I.Const 3);
        i I.Mul;
        i I.Retv;
      ]
  in
  (* level1 catches the builtin only; AppError escapes to the caller.
     Synchronized so unwinding also releases a monitor. *)
  let level1 =
    A.method_with_handlers ~static:false ~sync:true ~ret:I.Tint
      ~args:[ I.Tobj c; I.Tint ]
      ~nlocals:2 "level1"
      [
        l "try";
        i (I.Load 1);
        i (I.Invoke (c, "level2"));
        i I.Retv;
        l "endtry";
        l "catch";
        i I.Pop;
        i (I.Const (-7));
        i I.Retv;
      ]
      [
        {
          A.ah_from = "try";
          ah_upto = "endtry";
          ah_target = "catch";
          ah_class = Some "ArithmeticException";
        };
      ]
  in
  let worker =
    A.method_with_handlers ~args:[ I.Tobj c ] ~nlocals:4 "worker"
      [
        i (I.Const 1);
        i (I.Store 1);
        i (I.Const 0);
        i (I.Store 2);
        l "loop";
        i (I.Load 1);
        i (I.Const rounds);
        i (I.If (I.Gt, "end"));
        l "try";
        i (I.Load 2);
        i (I.Load 0);
        i (I.Load 1);
        i (I.Invoke (c, "level1"));
        i I.Add;
        i (I.Store 2);
        i (I.Goto "cont");
        l "endtry";
        l "catch";
        i I.Pop;
        i (I.Load 2);
        i (I.Const 1000);
        i I.Sub;
        i (I.Store 2);
        l "cont";
        i (I.Load 1);
        i (I.Const 1);
        i I.Add;
        i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i (I.Load 2);
        i I.Print;
        i I.Ret;
      ]
      [
        {
          A.ah_from = "try";
          ah_upto = "endtry";
          ah_target = "catch";
          ah_class = Some app_exc;
        };
      ]
  in
  (* a thread that dies of an uncaught array-bounds error *)
  let doomed =
    A.method_ ~nlocals:1 "doomed"
      [
        i (I.Const 3);
        i (I.Newarray I.Tint);
        i (I.Store 0);
        i (I.Load 0);
        i (I.Const 99);
        i I.Aload;
        i I.Print;
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:3 "main"
      [
        i (I.New c);
        i (I.Store 0);
        i (I.Load 0);
        i (I.Spawn (c, "worker"));
        i (I.Store 1);
        i (I.Spawn (c, "doomed"));
        i (I.Store 2);
        i (I.Load 1);
        i I.Join;
        i (I.Load 2);
        i I.Join;
        i (I.Sconst "survived\n");
        i I.Prints;
        i I.Ret;
      ]
  in
  D.program ~main_class:c
    [
      D.cdecl app_exc ~super:"Throwable" [];
      D.cdecl c [ level2; level1; worker; doomed; main ];
    ]
