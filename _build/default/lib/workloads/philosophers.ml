(* Dining philosophers on monitor forks. The [ordered] variant acquires
   forks in global order and always terminates; the [naive] variant acquires
   left-then-right and can deadlock — which is itself a schedule-dependent
   outcome DejaVu must reproduce faithfully. *)

open Util

let program ?(n = 4) ?(meals = 10) ?(ordered = true) () : D.program =
  let c = "Phil" in
  (* forks: static Object[] of monitors. philosopher k eats [meals] times,
     each time locking fork k and fork (k+1) mod n. *)
  let philosopher =
    A.method_ ~args:[ I.Tint ] ~nlocals:5 "philosopher"
      ([
         (* local1 = first fork idx, local2 = second fork idx *)
         i (I.Load 0);
         i (I.Store 1);
         i (I.Load 0);
         i (I.Const 1);
         i I.Add;
         i (I.Const n);
         i I.Rem;
         i (I.Store 2);
       ]
      @ (if ordered then
           [
             (* swap so we always lock the lower index first *)
             i (I.Load 1);
             i (I.Load 2);
             i (I.If (I.Le, "noswap"));
             i (I.Load 1);
             i (I.Store 3);
             i (I.Load 2);
             i (I.Store 1);
             i (I.Load 3);
             i (I.Store 2);
             l "noswap";
           ]
         else [])
      @ [
          i (I.Const meals);
          i (I.Store 4);
          l "loop";
          i (I.Load 4);
          i (I.Ifz (I.Le, "end"));
          (* think *)
          i (I.Const 40);
          i (I.Invoke (c, "spin"));
          (* pick up first *)
          i (I.Getstatic (c, "forks"));
          i (I.Load 1);
          i I.Aload;
          i I.Monitorenter;
          (* a little pause with one fork held widens the deadlock window *)
          i (I.Const 25);
          i (I.Invoke (c, "spin"));
          (* pick up second *)
          i (I.Getstatic (c, "forks"));
          i (I.Load 2);
          i I.Aload;
          i I.Monitorenter;
          (* eat *)
          i (I.Getstatic (c, "meals"));
          i (I.Const 1);
          i I.Add;
          i (I.Putstatic (c, "meals"));
          (* put down *)
          i (I.Getstatic (c, "forks"));
          i (I.Load 2);
          i I.Aload;
          i I.Monitorexit;
          i (I.Getstatic (c, "forks"));
          i (I.Load 1);
          i I.Aload;
          i I.Monitorexit;
          i (I.Load 4);
          i (I.Const 1);
          i I.Sub;
          i (I.Store 4);
          i (I.Goto "loop");
          l "end";
          i I.Ret;
        ])
  in
  let main =
    A.method_ ~nlocals:(n + 2) "main"
      ([
         i (I.Const n);
         i (I.Newarray (I.Tobj "Object"));
         i (I.Putstatic (c, "forks"));
         i (I.Const 0);
         i (I.Store n);
         l "mkforks";
         i (I.Load n);
         i (I.Const n);
         i (I.If (I.Ge, "spawned"));
         i (I.Getstatic (c, "forks"));
         i (I.Load n);
         i (I.New "Object");
         i I.Astore;
         i (I.Load n);
         i (I.Const 1);
         i I.Add;
         i (I.Store n);
         i (I.Goto "mkforks");
         l "spawned";
       ]
      @ List.concat_map
          (fun k ->
            [ i (I.Const k); i (I.Spawn (c, "philosopher")); i (I.Store k) ])
          (List.init n (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init n (fun k -> k))
      @ [ i (I.Getstatic (c, "meals")); i I.Print; i I.Ret ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [ D.field ~ty:(I.Tarr (I.Tobj "Object")) "forks"; D.field "meals" ]
        [ spin_method; philosopher; main ];
    ]
