(* A replay-based debugging session: DejaVu drives a deterministic replay
   one instruction at a time; the tool side inspects the paused VM only
   through remote reflection (an Address_space), so stopping, stepping,
   querying, and resuming perturb nothing — and because the replay is
   deterministic, the session can also travel *backwards* by restarting the
   replay and stopping earlier. *)

type stop_reason =
  | Hit of Breakpoint.t
  | Watch_fired of watchpoint * int * int (* watchpoint, old, new *)
  | Step_done
  | Finished of Vm.Rt.status
  | Diverged of string

(* Watchpoints observe a static slot and stop the replay when its value
   changes — deterministically: the same watch fires at the same step on
   every replay of the same trace. *)
and watchpoint = {
  w_id : int;
  w_class : string;
  w_field : string;
  w_slot : int; (* resolved globals index *)
  mutable w_last : int;
}

(* A checkpoint pairs a whole-VM snapshot with the matching DejaVu session
   snapshot (tape cursors, logical clock), keyed by the step count. *)
type checkpoint = {
  ck_step : int;
  ck_vm : Vm.Snapshot.t;
  ck_session : Dejavu.Session.snap;
}

type t = {
  program : Bytecode.Decl.program;
  natives : Vm.Native.spec list;
  config : Vm.Rt.config;
  trace : Dejavu.Trace.t;
  mutable vm : Vm.t;
  mutable session : Dejavu.Session.t;
  mutable space : Remote_reflection.Address_space.t;
  mutable breakpoints : Breakpoint.t list;
  mutable next_bp_id : int;
  mutable steps : int; (* instructions replayed so far *)
  (* checkpoint-accelerated time travel *)
  checkpoint_interval : int; (* 0 disables automatic checkpoints *)
  mutable checkpoints : checkpoint list; (* newest first *)
  mutable restores : int; (* how many restores goto_step performed *)
  mutable watchpoints : watchpoint list;
  mutable next_watch_id : int;
}

let fresh_vm (d : t) =
  let vm = Vm.create ~config:d.config ~natives:d.natives d.program in
  let session = Dejavu.Replayer.attach vm d.trace in
  Vm.boot vm;
  d.vm <- vm;
  d.session <- session;
  d.space <- Remote_reflection.Address_space.of_vm vm;
  d.steps <- 0;
  (* checkpoints belong to the discarded VM instance *)
  d.checkpoints <- []

(* Snapshot step 0, so backwards travel never needs a fresh replay and the
   checkpoint cache is never discarded. *)
let take_checkpoint_initial (d : t) =
  d.checkpoints <-
    [
      {
        ck_step = 0;
        ck_vm = Vm.Snapshot.save d.vm;
        ck_session = Dejavu.Session.snapshot d.session;
      };
    ]

(* Start a session from a program and a recorded trace.
   [checkpoint_interval] is the automatic checkpoint period in replayed
   instructions (0 disables; time travel then replays from the start). *)
let start ?(config = Vm.Rt.default_config) ?(natives = [])
    ?(checkpoint_interval = 25_000) program trace : t =
  let vm = Vm.create ~config ~natives program in
  let session = Dejavu.Replayer.attach vm trace in
  Vm.boot vm;
  {
    program;
    natives;
    config;
    trace;
    vm;
    session;
    space = Remote_reflection.Address_space.of_vm vm;
    breakpoints = [];
    next_bp_id = 1;
    steps = 0;
    checkpoint_interval;
    checkpoints = [];
    restores = 0;
    watchpoints = [];
    next_watch_id = 1;
  }
  |> fun d ->
  if checkpoint_interval > 0 then take_checkpoint_initial d;
  d

(* Record a fresh execution (with [seed]) and open a session on its trace. *)
let record_and_start ?(config = Vm.Rt.default_config) ?(natives = [])
    ?(seed = 1) program : t * Dejavu.run =
  let run, trace = Dejavu.record ~config ~natives ~seed program in
  (start ~config ~natives program trace, run)

(* Resolve a static to its globals slot. *)
let resolve_static (d : t) ~cls ~field =
  let vm = d.vm in
  let rec go cid =
    if cid < 0 then invalid_arg (Fmt.str "no static %s.%s" cls field)
    else
      let c = vm.Vm.Rt.classes.(cid) in
      let found = ref (-1) in
      Array.iteri (fun i (n, _) -> if n = field then found := i) c.rc_statics;
      if !found >= 0 then c.rc_statics_base + !found else go c.rc_super
  in
  go (Vm.Rt.class_id vm cls)

let add_watchpoint (d : t) ~cls ~field : watchpoint =
  let slot = resolve_static d ~cls ~field in
  let w =
    {
      w_id = d.next_watch_id;
      w_class = cls;
      w_field = field;
      w_slot = slot;
      w_last = d.space.peek_global slot;
    }
  in
  d.next_watch_id <- d.next_watch_id + 1;
  d.watchpoints <- d.watchpoints @ [ w ];
  w

let remove_watchpoint (d : t) id =
  d.watchpoints <- List.filter (fun w -> w.w_id <> id) d.watchpoints

(* Did any watched static change? Updates w_last as a side effect. *)
let fired_watchpoint (d : t) : (watchpoint * int * int) option =
  List.fold_left
    (fun acc w ->
      let now = d.vm.Vm.Rt.globals.(w.w_slot) in
      if now <> w.w_last then begin
        let old = w.w_last in
        w.w_last <- now;
        match acc with None -> Some (w, old, now) | some -> some
      end
      else acc)
    None d.watchpoints

(* Silently resynchronize watchpoints (after time travel). *)
let resync_watchpoints (d : t) =
  List.iter (fun w -> w.w_last <- d.vm.Vm.Rt.globals.(w.w_slot)) d.watchpoints

let add_breakpoint (d : t) ~cls ~meth loc : Breakpoint.t =
  let b =
    { Breakpoint.bp_id = d.next_bp_id; bp_class = cls; bp_method = meth; bp_loc = loc }
  in
  d.next_bp_id <- d.next_bp_id + 1;
  d.breakpoints <- d.breakpoints @ [ b ];
  b

let remove_breakpoint (d : t) id =
  d.breakpoints <- List.filter (fun b -> b.Breakpoint.bp_id <> id) d.breakpoints

let running (d : t) = Vm.status d.vm = Vm.Rt.Running_

let position (d : t) : (Vm.Rt.rmethod * int) option =
  if running d then
    let t = Vm.Rt.cur d.vm in
    Some (t.t_meth, t.t_pc)
  else None

let hit_breakpoint (d : t) : Breakpoint.t option =
  match position d with
  | None -> None
  | Some (meth, pc) ->
    List.find_opt (fun b -> Breakpoint.matches b d.vm meth pc) d.breakpoints

(* --- checkpoints --------------------------------------------------------- *)

let take_checkpoint (d : t) =
  (* replay is deterministic, so a checkpoint for this step may already
     exist from a previous pass over this part of the timeline *)
  if not (List.exists (fun ck -> ck.ck_step = d.steps) d.checkpoints) then
    d.checkpoints <-
      List.sort
        (fun a b -> compare b.ck_step a.ck_step)
        ({
           ck_step = d.steps;
           ck_vm = Vm.Snapshot.save d.vm;
           ck_session = Dejavu.Session.snapshot d.session;
         }
        :: d.checkpoints)

let restore_checkpoint (d : t) (ck : checkpoint) =
  Vm.Snapshot.restore d.vm ck.ck_vm;
  Dejavu.Session.restore d.session ck.ck_session;
  d.steps <- ck.ck_step;
  d.restores <- d.restores + 1

(* The newest checkpoint at or before step [n]. *)
let checkpoint_before (d : t) n =
  List.find_opt (fun ck -> ck.ck_step <= n) d.checkpoints

let step1 (d : t) =
  Vm.step d.vm;
  d.steps <- d.steps + 1;
  if
    d.checkpoint_interval > 0
    && d.steps mod d.checkpoint_interval = 0
    && Vm.status d.vm = Vm.Rt.Running_
  then take_checkpoint d

(* One stop check after a step: watchpoints first, then breakpoints. *)
let stopped_here (d : t) : stop_reason option =
  match fired_watchpoint d with
  | Some (w, old, now) -> Some (Watch_fired (w, old, now))
  | None -> (
    match hit_breakpoint d with Some b -> Some (Hit b) | None -> None)

(* Execute up to [n] instructions; stop early on a break/watch or end. *)
let step (d : t) n : stop_reason =
  let rec go left =
    if not (running d) then Finished (Vm.status d.vm)
    else if left = 0 then Step_done
    else begin
      match step1 d with
      | () -> (
        match stopped_here d with Some r -> r | None -> go (left - 1))
      | exception Dejavu.Divergence msg -> Diverged msg
    end
  in
  go n

let continue_ (d : t) : stop_reason =
  let rec go () =
    if not (running d) then Finished (Vm.status d.vm)
    else begin
      match step1 d with
      | () -> (
        match stopped_here d with Some r -> r | None -> go ())
      | exception Dejavu.Divergence msg -> Diverged msg
    end
  in
  go ()

(* Deterministic time travel to absolute step [n]: restore the newest
   checkpoint at or before [n] — both for backwards travel and to shortcut
   long forward jumps — then re-execute forward. Falls back to a fresh
   replay only when no checkpoint helps (e.g. checkpointing disabled). *)
let goto_step (d : t) n : stop_reason =
  (match checkpoint_before d n with
  | Some ck when n < d.steps || ck.ck_step > d.steps -> restore_checkpoint d ck
  | Some _ -> () (* already between the best checkpoint and the target *)
  | None -> if n < d.steps then fresh_vm d);
  let want = n - d.steps in
  let rec go left =
    if not (running d) then Finished (Vm.status d.vm)
    else if left = 0 then Step_done
    else begin
      match step1 d with
      | () -> go (left - 1)
      | exception Dejavu.Divergence msg -> Diverged msg
    end
  in
  let r = go want in
  resync_watchpoints d;
  r

(* --- inspection: everything below reads only through the space --------- *)

let space (d : t) = d.space

let state_digest (d : t) = Vm.digest d.vm

let output (d : t) = d.space.output_snapshot ()

let threads (d : t) : Remote_reflection.Address_space.thread_snapshot list =
  List.init (d.space.thread_count ()) (fun tid -> d.space.thread tid)

let frames (d : t) tid = Remote_reflection.Remote_frames.frames d.space tid

(* Intentionally alter an integer static in the replayed VM — the paper's
   footnote 3 feature. Returns the poke count; once non-zero, the accuracy
   guarantee for the rest of this replay is void (and [perturbed] says so). *)
let set_static (d : t) ~cls ~field value =
  let slot = resolve_static d ~cls ~field in
  d.space.poke_global slot value;
  resync_watchpoints d

let perturbed (d : t) = d.space.writes > 0

let current_line (d : t) : (string * string * int option) option =
  match position d with
  | None -> None
  | Some (meth, pc) ->
    let cls = d.vm.Vm.Rt.classes.(meth.rm_cid).rc_name in
    let line =
      match meth.rm_compiled with
      | Some c -> Remote_reflection.Remote_frames.line_of_compiled c pc
      | None -> None
    in
    Some (cls, meth.rm_name, line)
