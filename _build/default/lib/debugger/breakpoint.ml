(* Breakpoints, addressed the way a user thinks: a class.method plus either
   a source line (from the method's line table) or a source pc. *)

type loc = Any_pc | Src_pc of int | Line of int

type t = { bp_id : int; bp_class : string; bp_method : string; bp_loc : loc }

let pp ppf b =
  Fmt.pf ppf "#%d %s.%s%s" b.bp_id b.bp_class b.bp_method
    (match b.bp_loc with
    | Any_pc -> ""
    | Src_pc p -> Fmt.str " @pc %d" p
    | Line l -> Fmt.str " @line %d" l)

(* Does the breakpoint match a position (method + compiled pc)? Entry
   breakpoints (Any_pc) match only the first real instruction so they fire
   once per call, not once per instruction. *)
let matches (b : t) (vm : Vm.Rt.t) (meth : Vm.Rt.rmethod) pc =
  meth.rm_name = b.bp_method
  && vm.classes.(meth.rm_cid).rc_name = b.bp_class
  &&
  match (b.bp_loc, meth.rm_compiled) with
  | Any_pc, _ -> pc = 0
  | Src_pc want, Some c ->
    (* fire on the first compiled pc of that source pc only (yield points
       injected before an instruction share its source pc) *)
    pc < Array.length c.k_src_pc
    && c.k_src_pc.(pc) = want
    && (pc = 0 || c.k_src_pc.(pc - 1) <> want)
  | Line want, Some c ->
    (* first compiled pc whose line-table entry starts at [want] *)
    Array.exists (fun (start, ln) -> start = pc && ln = want) c.k_lines
  | _, None -> false
