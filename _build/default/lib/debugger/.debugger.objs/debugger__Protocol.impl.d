lib/debugger/protocol.ml: Array Breakpoint Dejavu Fmt List Remote_reflection Session String Vm
