lib/debugger/breakpoint.ml: Array Fmt Vm
