lib/debugger/session.mli: Breakpoint Bytecode Dejavu Remote_reflection Vm
