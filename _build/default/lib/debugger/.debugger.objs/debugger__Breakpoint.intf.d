lib/debugger/breakpoint.mli: Format Vm
