lib/debugger/session.ml: Array Breakpoint Bytecode Dejavu Fmt List Remote_reflection Vm
