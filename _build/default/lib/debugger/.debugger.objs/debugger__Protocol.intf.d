lib/debugger/protocol.mli: Session
