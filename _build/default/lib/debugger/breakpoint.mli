(** Breakpoints, addressed the way a user thinks: a class and method plus
    either a source line, a source pc, or the method entry. *)

type loc =
  | Any_pc  (** the method entry: fires once per call *)
  | Src_pc of int  (** a specific source pc *)
  | Line of int  (** a source line from the method's line table *)

type t = { bp_id : int; bp_class : string; bp_method : string; bp_loc : loc }

val pp : Format.formatter -> t -> unit

(** Does the breakpoint match the position (method, compiled pc)? Entry
    breakpoints match only the first instruction; source-pc breakpoints
    fire on the first compiled pc of that source pc (injected yield points
    share their successor's source pc). *)
val matches : t -> Vm.Rt.t -> Vm.Rt.rmethod -> int -> bool
