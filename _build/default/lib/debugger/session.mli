(** A replay-based debugging session: DejaVu drives a deterministic replay
    one instruction at a time; the tool inspects the paused VM only through
    remote reflection, so stopping, stepping, querying, and resuming
    perturb nothing. Determinism also buys {e time travel}: [goto_step]
    lands on any earlier point of the same execution, accelerated by
    periodic whole-machine checkpoints ([Vm.Snapshot]). *)

type stop_reason =
  | Hit of Breakpoint.t
  | Watch_fired of watchpoint * int * int
      (** a watched static changed: watchpoint, old value, new value *)
  | Step_done
  | Finished of Vm.Rt.status
  | Diverged of string

(** Watchpoints observe a static slot and stop the replay when its value
    changes — deterministically: the same watch fires at the same step on
    every replay of the same trace. *)
and watchpoint = {
  w_id : int;
  w_class : string;
  w_field : string;
  w_slot : int;
  mutable w_last : int;
}

type checkpoint = {
  ck_step : int;
  ck_vm : Vm.Snapshot.t;
  ck_session : Dejavu.Session.snap;
}

type t = {
  program : Bytecode.Decl.program;
  natives : Vm.Native.spec list;
  config : Vm.Rt.config;
  trace : Dejavu.Trace.t;
  mutable vm : Vm.t;
  mutable session : Dejavu.Session.t;
  mutable space : Remote_reflection.Address_space.t;
  mutable breakpoints : Breakpoint.t list;
  mutable next_bp_id : int;
  mutable steps : int;  (** instructions replayed so far *)
  checkpoint_interval : int;
  mutable checkpoints : checkpoint list;  (** newest first *)
  mutable restores : int;  (** checkpoint restores performed *)
  mutable watchpoints : watchpoint list;
  mutable next_watch_id : int;
}

(** Open a session on a recorded trace. [checkpoint_interval] is the
    automatic checkpoint period in replayed instructions (default 25000;
    0 disables, making backwards travel replay from the start). *)
val start :
  ?config:Vm.Rt.config ->
  ?natives:Vm.Native.spec list ->
  ?checkpoint_interval:int ->
  Bytecode.Decl.program ->
  Dejavu.Trace.t ->
  t

(** Record a fresh execution under [seed], then open a session on it. *)
val record_and_start :
  ?config:Vm.Rt.config ->
  ?natives:Vm.Native.spec list ->
  ?seed:int ->
  Bytecode.Decl.program ->
  t * Dejavu.run

val add_breakpoint : t -> cls:string -> meth:string -> Breakpoint.loc -> Breakpoint.t

val remove_breakpoint : t -> int -> unit

(** Watch a static field; raises [Invalid_argument] if it doesn't exist. *)
val add_watchpoint : t -> cls:string -> field:string -> watchpoint

val remove_watchpoint : t -> int -> unit

val running : t -> bool

(** Current method and compiled pc, when running. *)
val position : t -> (Vm.Rt.rmethod * int) option

(** Execute up to [n] instructions; stops early on a breakpoint or end. *)
val step : t -> int -> stop_reason

(** Run to the next breakpoint or the end of the replay. *)
val continue_ : t -> stop_reason

(** Travel to absolute step [n] (backwards or forwards): restores the
    nearest checkpoint at or before [n] and re-executes. *)
val goto_step : t -> int -> stop_reason

(** Take a checkpoint of the current position explicitly. *)
val take_checkpoint : t -> unit

(** {1 Inspection — reads only, through the address space} *)

val space : t -> Remote_reflection.Address_space.t

val state_digest : t -> int

val output : t -> string

val threads : t -> Remote_reflection.Address_space.thread_snapshot list

val frames : t -> int -> Remote_reflection.Remote_frames.frame list

(** Intentionally alter an integer static in the replayed VM — the paper's
    footnote 3: replay can resume, but "no guarantee could be made as to
    its accuracy". {!perturbed} reports that the guarantee is void. *)
val set_static : t -> cls:string -> field:string -> int -> unit

val perturbed : t -> bool

(** (class, method, line) of the current position. *)
val current_line : t -> (string * string * int option) option
