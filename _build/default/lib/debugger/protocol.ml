(* The tool front end. The paper's debugger puts its Swing GUI on a third
   JVM talking to the debugger over TCP with small text packets; this module
   is that protocol layer (DESIGN.md documents the substitution): a textual
   command in, a textual reply out, carrying data rather than pixels. Any
   front end — the interactive CLI in bin/dvdebug.ml, a test, a socket — can
   drive a session through [execute]. *)

type outcome = Reply of string | Quit

let help_text =
  {|commands:
  break CLASS METHOD [LINE|pc:N]   set a breakpoint
  delete N                         remove breakpoint N
  breaks                           list breakpoints
  watch CLASS.FIELD                stop when a static changes
  unwatch N                        remove watchpoint N
  set static CLASS.FIELD VALUE     alter the replayed VM (voids accuracy!)
  checkpoint                       snapshot the current position
  continue | c                     run to the next breakpoint
  step [N] | s [N]                 execute N instructions (default 1)
  goto N                           travel to absolute step N (replays)
  where                            current position
  threads                          thread table
  stack TID                        stack trace of a thread
  locals TID                       raw locals of every frame of a thread
  print static CLASS.FIELD         inspect a static (remote reflection)
  output                           program output so far
  digest                           state digest of the application VM
  reads                            remote words peeked so far
  info                             session summary
  help                             this text
  quit                             end the session|}

let string_of_stop (d : Session.t) (r : Session.stop_reason) =
  match r with
  | Session.Hit b -> Fmt.str "breakpoint %a" Breakpoint.pp b
  | Session.Watch_fired (w, old, now) ->
    Fmt.str "watchpoint #%d %s.%s changed %d -> %d [step %d]" w.Session.w_id
      w.Session.w_class w.Session.w_field old now d.steps
  | Session.Step_done -> (
    match Session.current_line d with
    | Some (cls, m, line) ->
      Fmt.str "stopped at %s.%s%s [step %d]" cls m
        (match line with Some l -> Fmt.str " line %d" l | None -> "")
        d.steps
    | None -> "stopped")
  | Session.Finished st -> Fmt.str "execution %s" (Vm.string_of_status st)
  | Session.Diverged msg -> Fmt.str "REPLAY DIVERGENCE: %s" msg

let parse_loc = function
  | None -> Breakpoint.Any_pc
  | Some s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "pc" ->
      Breakpoint.Src_pc
        (int_of_string (String.sub s (i + 1) (String.length s - i - 1)))
    | _ -> Breakpoint.Line (int_of_string s))

let execute (d : Session.t) (line : string) : outcome =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let reply fmt = Fmt.kstr (fun s -> Reply s) fmt in
  try
    match words with
    | [] -> Reply ""
    | [ "quit" ] | [ "q" ] -> Quit
    | [ "help" ] -> Reply help_text
    | "break" :: cls :: meth :: rest ->
      let loc = parse_loc (match rest with [] -> None | x :: _ -> Some x) in
      let b = Session.add_breakpoint d ~cls ~meth loc in
      reply "set %a" Breakpoint.pp b
    | [ "delete"; n ] ->
      Session.remove_breakpoint d (int_of_string n);
      reply "deleted"
    | [ "breaks" ] ->
      reply "%s"
        (String.concat "\n"
           (List.map (Fmt.str "%a" Breakpoint.pp) d.breakpoints))
    | [ "watch"; spec ] -> (
      match String.index_opt spec '.' with
      | None -> reply "expected CLASS.FIELD"
      | Some i ->
        let cls = String.sub spec 0 i in
        let field = String.sub spec (i + 1) (String.length spec - i - 1) in
        let w = Session.add_watchpoint d ~cls ~field in
        reply "watching %s.%s (#%d, currently %d)" cls field
          w.Session.w_id w.Session.w_last)
    | [ "unwatch"; n ] ->
      Session.remove_watchpoint d (int_of_string n);
      reply "unwatched"
    | [ "set"; "static"; spec; v ] -> (
      match String.index_opt spec '.' with
      | None -> reply "expected CLASS.FIELD"
      | Some i ->
        let cls = String.sub spec 0 i in
        let field = String.sub spec (i + 1) (String.length spec - i - 1) in
        Session.set_static d ~cls ~field (int_of_string v);
        reply
          "%s.%s set to %s — symmetry broken: replay accuracy no longer \
           guaranteed (paper, footnote 3)"
          cls field v)
    | [ "checkpoint" ] ->
      Session.take_checkpoint d;
      reply "checkpoint at step %d (%d total)" d.steps
        (List.length d.checkpoints)
    | [ "continue" ] | [ "c" ] -> reply "%s" (string_of_stop d (Session.continue_ d))
    | [ "step" ] | [ "s" ] -> reply "%s" (string_of_stop d (Session.step d 1))
    | [ "step"; n ] | [ "s"; n ] ->
      reply "%s" (string_of_stop d (Session.step d (int_of_string n)))
    | [ "goto"; n ] ->
      reply "%s" (string_of_stop d (Session.goto_step d (int_of_string n)))
    | [ "where" ] -> (
      match Session.current_line d with
      | Some (cls, m, line) ->
        reply "%s.%s%s [step %d]" cls m
          (match line with Some l -> Fmt.str " line %d" l | None -> "")
          d.steps
      | None -> reply "not running (%s)" (Vm.string_of_status d.vm.Vm.Rt.status))
    | [ "threads" ] ->
      reply "%s"
        (String.concat "\n"
           (List.map
              (fun (ts : Remote_reflection.Address_space.thread_snapshot) ->
                Fmt.str "t%d %-12s %-13s %s" ts.ts_tid ts.ts_name ts.ts_state
                  (if ts.ts_meth_uid >= 0 then
                     let m = d.space.methods.(ts.ts_meth_uid) in
                     Fmt.str "in %s pc=%d" m.rm_name ts.ts_pc
                   else ""))
              (Session.threads d)))
    | [ "stack"; tid ] ->
      let frames = Session.frames d (int_of_string tid) in
      reply "%s"
        (String.concat "\n"
           (List.mapi
              (fun i (f : Remote_reflection.Remote_frames.frame) ->
                Fmt.str "#%d %s.%s pc=%d%s" i
                  d.vm.Vm.Rt.classes.(f.rf_meth.rm_cid).rc_name
                  f.rf_meth.rm_name f.rf_pc
                  (match f.rf_line with
                  | Some l -> Fmt.str " line %d" l
                  | None -> ""))
              frames))
    | [ "locals"; tid ] ->
      let frames = Session.frames d (int_of_string tid) in
      reply "%s"
        (String.concat "\n"
           (List.mapi
              (fun i (f : Remote_reflection.Remote_frames.frame) ->
                Fmt.str "#%d %s: [%s]" i f.rf_meth.rm_name
                  (String.concat ", "
                     (Array.to_list (Array.map string_of_int f.rf_locals))))
              frames))
    | [ "print"; "static"; spec ] -> (
      match String.index_opt spec '.' with
      | None -> reply "expected CLASS.FIELD"
      | Some i ->
        let cls = String.sub spec 0 i in
        let fld = String.sub spec (i + 1) (String.length spec - i - 1) in
        let module R =
          (val Remote_reflection.Remote_object.reflection d.space)
        in
        reply "%s.%s = %s" cls fld (R.render_value (R.get_static cls fld)))
    | [ "output" ] -> reply "%s" (Session.output d)
    | [ "digest" ] -> reply "%x" (Session.state_digest d)
    | [ "reads" ] -> reply "%d remote reads" d.space.reads
    | [ "info" ] ->
      reply
        "step=%d status=%s breakpoints=%d watchpoints=%d checkpoints=%d%s \
         trace: %a"
        d.steps
        (Vm.string_of_status d.vm.Vm.Rt.status)
        (List.length d.breakpoints)
        (List.length d.watchpoints)
        (List.length d.checkpoints)
        (if Session.perturbed d then " PERTURBED" else "")
        Dejavu.Trace.pp_sizes (Dejavu.Trace.sizes d.trace)
    | _ -> reply "unknown command (try: help)"
  with
  | Failure msg -> Reply ("error: " ^ msg)
  | Invalid_argument msg -> Reply ("error: " ^ msg)
