(** The tool front end: a textual command in, a textual reply out. This is
    the replacement for the paper's Swing-GUI-over-TCP third tier (see
    DESIGN.md section 6) — any front end (the interactive CLI in
    bin/dvdebug.ml, a test, a socket server) drives a session through
    {!execute}. Type ["help"] for the command list. *)

type outcome = Reply of string | Quit

val help_text : string

(** Render a stop reason for the user. *)
val string_of_stop : Session.t -> Session.stop_reason -> string

(** Execute one command line against the session. Errors come back as
    [Reply "error: ..."], never as exceptions. *)
val execute : Session.t -> string -> outcome
