lib/baselines/crew.ml: Array Dejavu Vm
