lib/baselines/read_log.mli: Dejavu Vm
