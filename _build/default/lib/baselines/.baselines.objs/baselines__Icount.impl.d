lib/baselines/icount.ml: Dejavu Vm
