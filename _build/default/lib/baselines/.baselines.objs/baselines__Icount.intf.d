lib/baselines/icount.mli: Dejavu Vm
