lib/baselines/read_log.ml: Array Dejavu Vm
