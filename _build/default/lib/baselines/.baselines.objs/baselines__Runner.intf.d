lib/baselines/runner.mli: Bytecode Vm
