lib/baselines/switch_map.ml: Array Dejavu Fmt Vm
