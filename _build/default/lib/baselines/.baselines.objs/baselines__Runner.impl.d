lib/baselines/runner.ml: Bytecode Crew Dejavu Fmt Icount Read_log String Switch_map Vm
