lib/baselines/crew.mli: Dejavu Vm
