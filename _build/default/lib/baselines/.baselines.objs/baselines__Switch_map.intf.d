lib/baselines/switch_map.mli: Dejavu Vm
