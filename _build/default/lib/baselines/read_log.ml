(* Recap / PPD baseline (Pan & Linton 1988; Miller & Choi 1988).

   These systems "capture the effect of every read of shared memory
   locations, which is quite expensive" (paper, section 5): the recorded
   trace holds the *value* of every shared read so replay can substitute it
   without caring about the schedule at all. One word per read — the worst
   trace-size profile of the schemes compared.

   Recording side, plus the non-reproducible-event tapes every scheme
   needs. *)

type t = {
  vm : Vm.Rt.t;
  session : Dejavu.Session.t;
  values : Dejavu.Tape.t; (* one word per shared read *)
  mutable n_reads : int;
}

let attach (vm : Vm.Rt.t) : t =
  let session = Dejavu.Session.for_record vm in
  Dejavu.Recorder.attach_io vm session;
  let b =
    { vm; session; values = Dejavu.Tape.create "read-values"; n_reads = 0 }
  in
  vm.hooks.h_heap_read <-
    Some
      (fun vm addr slot ->
        b.n_reads <- b.n_reads + 1;
        let v = if addr < 0 then vm.globals.(slot) else vm.heap.(addr + slot) in
        Dejavu.Tape.push b.values v);
  b

type sizes = { trace_words : int; n_reads : int }

let sizes (b : t) : sizes =
  let io =
    Dejavu.Tape.length b.session.clocks
    + Dejavu.Tape.length b.session.inputs
    + Dejavu.Tape.length b.session.natives
  in
  { trace_words = Dejavu.Tape.length b.values + io; n_reads = b.n_reads }
