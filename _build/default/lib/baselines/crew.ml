(* Instant Replay baseline (LeBlanc & Mellor-Crummey, IEEE TC 1987).

   Instant Replay logs *critical events*: every access to a shared object,
   as a (object, access-sequence-number) pair, so that replay can enforce
   per-object access orders without logging data values. Thread switches are
   NOT logged — the schedule is free as long as object access orders hold.

   This module implements the recording side, which is what determines the
   overhead and trace-size comparison the paper makes in section 5 ("a
   major drawback of such approaches is the overhead, in time and
   particularly in space"). Like every scheme, it must additionally log the
   non-reproducible events (wall clock, input, natives) — footnote 7 — so
   those tapes are attached too.

   Objects are identified by a stable per-object id (we reuse the VM's
   monitor-id slot, which survives GC); every static slot counts as its own
   shared object. *)

type t = {
  vm : Vm.Rt.t;
  session : Dejavu.Session.t; (* the non-reproducible-event tapes *)
  accesses : Dejavu.Tape.t; (* flattened (object id, seq) pairs *)
  mutable obj_counters : int array; (* per-object access counters *)
  static_counters : int array; (* per-static-slot access counters *)
  mutable n_reads : int;
  mutable n_writes : int;
}

(* Statics are identified by the negated slot; heap objects by their stable
   monitor id. *)
let oid_of (b : t) addr slot =
  if addr < 0 then -(slot + 2)
  else (Vm.Sched.monitor_of_object b.vm addr).m_id

let bump b oid =
  let seq =
    if oid < 0 then begin
      let slot = -oid - 2 in
      let seq = b.static_counters.(slot) in
      b.static_counters.(slot) <- seq + 1;
      seq
    end
    else begin
      if oid >= Array.length b.obj_counters then begin
        let bigger =
          Array.make (max (2 * Array.length b.obj_counters) (oid + 1)) 0
        in
        Array.blit b.obj_counters 0 bigger 0 (Array.length b.obj_counters);
        b.obj_counters <- bigger
      end;
      let seq = b.obj_counters.(oid) in
      b.obj_counters.(oid) <- seq + 1;
      seq
    end
  in
  Dejavu.Tape.push b.accesses oid;
  Dejavu.Tape.push b.accesses seq

let attach (vm : Vm.Rt.t) : t =
  let session = Dejavu.Session.for_record vm in
  Dejavu.Recorder.attach_io vm session;
  let b =
    {
      vm;
      session;
      accesses = Dejavu.Tape.create "crew-accesses";
      obj_counters = Array.make 1024 0;
      static_counters = Array.make (max 1 vm.nglobals) 0;
      n_reads = 0;
      n_writes = 0;
    }
  in
  vm.hooks.h_heap_read <-
    Some
      (fun _vm addr slot ->
        b.n_reads <- b.n_reads + 1;
        bump b (oid_of b addr slot));
  vm.hooks.h_heap_write <-
    Some
      (fun _vm addr slot ->
        b.n_writes <- b.n_writes + 1;
        bump b (oid_of b addr slot));
  b

type sizes = { trace_words : int; n_reads : int; n_writes : int }

(* Trace size: the access tape plus the shared non-reproducible tapes. *)
let sizes (b : t) : sizes =
  let io =
    Dejavu.Tape.length b.session.clocks
    + Dejavu.Tape.length b.session.inputs
    + Dejavu.Tape.length b.session.natives
  in
  {
    trace_words = Dejavu.Tape.length b.accesses + io;
    n_reads = b.n_reads;
    n_writes = b.n_writes;
  }
