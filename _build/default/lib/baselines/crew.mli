(** Instant Replay baseline (LeBlanc & Mellor-Crummey, IEEE TC 1987):
    critical-event logging — every shared-object access is recorded as an
    (object id, access sequence number) pair so replay could enforce
    per-object access orders without logging values. Thread switches are
    not logged. This module implements the recording side, which is what
    determines the overhead/space comparison of the paper's section 5; as
    in every scheme, the non-reproducible-event tapes (footnote 7) are
    attached too. *)

type t = {
  vm : Vm.Rt.t;
  session : Dejavu.Session.t;  (** non-reproducible-event tapes *)
  accesses : Dejavu.Tape.t;  (** flattened (object id, seq) pairs *)
  mutable obj_counters : int array;
  static_counters : int array;
  mutable n_reads : int;
  mutable n_writes : int;
}

(** Install the access-logging hooks (and the IO capture). Attach before
    [Vm.boot]. *)
val attach : Vm.Rt.t -> t

type sizes = { trace_words : int; n_reads : int; n_writes : int }

val sizes : t -> sizes
