(* Convenience runners so tests and the bench harness can exercise every
   scheme uniformly. *)

type recorded = {
  status : Vm.Rt.status;
  output : string;
  state_digest : int;
  obs_digest : int;
  obs_count : int;
  trace_words : int; (* total recorded words incl. non-reproducible tapes *)
  detail : string;
}

let seeded config seed =
  { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }

let finish vm observer ~trace_words ~detail =
  {
    status = Vm.status vm;
    output = Vm.output vm;
    state_digest = Vm.digest vm;
    obs_digest = Vm.Observer.digest observer;
    obs_count = Vm.Observer.count observer;
    trace_words;
    detail;
  }

(* --- record-only schemes ---------------------------------------------- *)

let record_crew ?(config = Vm.Rt.default_config) ?(natives = []) ?(inputs = [])
    ?(seed = 1) ?limit program =
  let vm = Vm.create ~config:(seeded config seed) ~natives ~inputs program in
  let b = Crew.attach vm in
  let observer = Vm.Observer.attach_digest vm in
  ignore (Vm.run ?limit vm);
  let s = Crew.sizes b in
  finish vm observer ~trace_words:s.trace_words
    ~detail:(Fmt.str "reads=%d writes=%d" s.n_reads s.n_writes)

let record_read_log ?(config = Vm.Rt.default_config) ?(natives = [])
    ?(inputs = []) ?(seed = 1) ?limit program =
  let vm = Vm.create ~config:(seeded config seed) ~natives ~inputs program in
  let b = Read_log.attach vm in
  let observer = Vm.Observer.attach_digest vm in
  ignore (Vm.run ?limit vm);
  let s = Read_log.sizes b in
  finish vm observer ~trace_words:s.trace_words
    ~detail:(Fmt.str "reads=%d" s.n_reads)

(* --- full record/replay schemes --------------------------------------- *)

type roundtrip = {
  recorded : recorded;
  replayed : recorded;
  outputs_equal : bool;
  states_equal : bool;
  events_equal : bool;
}

let ok rt = rt.outputs_equal && rt.states_equal && rt.events_equal

let roundtrip_switch_map ?(config = Vm.Rt.default_config) ?(natives = [])
    ?(inputs = []) ?(seed = 1) ?limit program =
  let vm = Vm.create ~config:(seeded config seed) ~natives ~inputs program in
  let b = Switch_map.attach_record vm in
  let observer = Vm.Observer.attach_digest vm in
  ignore (Vm.run ?limit vm);
  let s = Switch_map.sizes b in
  let recorded =
    finish vm observer ~trace_words:s.trace_words
      ~detail:
        (Fmt.str "preempt=%d voluntary=%d" s.n_preemptive s.n_voluntary)
  in
  let trace = Dejavu.Session.to_trace b.session (Bytecode.Decl.digest program) in
  let entries = Switch_map.entries_array b in
  let vm2 = Vm.create ~config:(seeded config (seed + 77777)) ~natives program in
  let b2 = Switch_map.attach_replay vm2 trace entries in
  let observer2 = Vm.Observer.attach_digest vm2 in
  (try ignore (Vm.run ?limit vm2)
   with Switch_map.Divergence msg ->
     vm2.Vm.Rt.status <- Vm.Rt.Fatal ("switch-map divergence: " ^ msg));
  let s2 = Switch_map.sizes b2 in
  let replayed =
    finish vm2 observer2 ~trace_words:s2.trace_words
      ~detail:(Fmt.str "map-lookups=%d" s2.map_lookups)
  in
  {
    recorded;
    replayed;
    outputs_equal = String.equal recorded.output replayed.output;
    states_equal = recorded.state_digest = replayed.state_digest;
    events_equal =
      recorded.obs_digest = replayed.obs_digest
      && recorded.obs_count = replayed.obs_count;
  }

let roundtrip_icount ?(config = Vm.Rt.default_config) ?(natives = [])
    ?(inputs = []) ?(seed = 1) ?limit program =
  let vm = Vm.create ~config:(seeded config seed) ~natives ~inputs program in
  let b = Icount.attach_record vm in
  let observer = Vm.Observer.attach_digest vm in
  ignore (Vm.run ?limit vm);
  let s = Icount.sizes b in
  let recorded =
    finish vm observer ~trace_words:s.trace_words
      ~detail:(Fmt.str "switches=%d" s.n_switches)
  in
  let trace = Dejavu.Session.to_trace b.session (Bytecode.Decl.digest program) in
  let deltas = Icount.deltas_array b in
  let vm2 = Vm.create ~config:(seeded config (seed + 77777)) ~natives program in
  let b2 = Icount.attach_replay vm2 trace deltas in
  let observer2 = Vm.Observer.attach_digest vm2 in
  (try ignore (Vm.run ?limit vm2)
   with Icount.Divergence msg ->
     vm2.Vm.Rt.status <- Vm.Rt.Fatal ("icount divergence: " ^ msg));
  ignore b2;
  let replayed =
    finish vm2 observer2 ~trace_words:s.trace_words ~detail:"icount replay"
  in
  {
    recorded;
    replayed;
    outputs_equal = String.equal recorded.output replayed.output;
    states_equal = recorded.state_digest = replayed.state_digest;
    events_equal =
      recorded.obs_digest = replayed.obs_digest
      && recorded.obs_count = replayed.obs_count;
  }
