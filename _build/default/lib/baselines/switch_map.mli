(** Russinovich & Cogswell baseline (PLDI 1996): thread-switch capture on a
    uniprocessor {e without} replaying the thread package. Consequently
    (paper, section 5) the recording must log {e every} switch — voluntary
    ones included — together with the chosen next thread, and replay must
    steer the scheduler through an external record-to-replay thread map.
    Full record and replay. *)

type mode = Record | Replay

type t = {
  vm : Vm.Rt.t;
  mode : mode;
  session : Dejavu.Session.t;
  entries : Dejavu.Tape.t;
      (** preemptive: [0; delta; tid] — voluntary: [1; tid] *)
  mutable nyp : int;
  mutable pending_delta : int;
  mutable pending_kind : int;
  mutable thread_map : int array;  (** record tid -> replay tid *)
  mutable n_mapped : int;
  mutable next_kind : int;
  mutable next_delta : int;
  mutable next_tid : int;
  mutable booted : bool;
  mutable forcing : bool;
  mutable map_lookups : int;  (** per-switch map consultations (a cost) *)
}

exception Divergence of string

val attach_record : Vm.Rt.t -> t

(** [attach_replay vm trace entries] steers the scheduler (via the
    [h_pick] dispatch override) to reproduce the recorded schedule. *)
val attach_replay : Vm.Rt.t -> Dejavu.Trace.t -> int array -> t

val entries_array : t -> int array

type sizes = {
  trace_words : int;
  n_preemptive : int;
  n_voluntary : int;
  map_lookups : int;
}

val sizes : t -> sizes
