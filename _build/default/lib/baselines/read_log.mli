(** Recap / PPD baseline (Pan & Linton 1988; Miller & Choi 1988): record
    the {e value} of every shared read so replay can substitute it without
    caring about the schedule — "quite expensive" (paper, section 5), one
    word per read. Recording side plus the non-reproducible-event tapes. *)

type t = {
  vm : Vm.Rt.t;
  session : Dejavu.Session.t;
  values : Dejavu.Tape.t;  (** one word per shared read *)
  mutable n_reads : int;
}

val attach : Vm.Rt.t -> t

type sizes = { trace_words : int; n_reads : int }

val sizes : t -> sizes
