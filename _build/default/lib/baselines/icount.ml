(* Instruction-counting baseline (paper section 2.3: "a straightforward
   counting of instructions executed by each thread will work, but the
   overhead is prohibitive").

   Identical to DejaVu except that switch points are identified by the
   retired-instruction count instead of the yield-point count: a counter is
   bumped on EVERY instruction (the prohibitive part), and replay compares
   against the recorded target on every instruction. Preemption still takes
   effect at the next yield point, so the identified positions coincide
   with DejaVu's — only the identification cost differs. *)

type mode = Record | Replay

type t = {
  vm : Vm.Rt.t;
  mode : mode;
  session : Dejavu.Session.t;
  deltas : Dejavu.Tape.t; (* retired instructions between switches *)
  mutable icount : int; (* instructions since the last recorded switch *)
  mutable fire : bool; (* replay: the countdown expired *)
  mutable target : int; (* replay: icount value of the next switch *)
}

let attach_record (vm : Vm.Rt.t) : t =
  let session = Dejavu.Session.for_record vm in
  Dejavu.Recorder.attach_io vm session;
  let b =
    {
      vm;
      mode = Record;
      session;
      deltas = Dejavu.Tape.create "icount";
      icount = 0;
      fire = false;
      target = -1;
    }
  in
  vm.hooks.h_instr <- Some (fun _vm -> b.icount <- b.icount + 1);
  vm.hooks.h_yieldpoint <-
    (fun vm ->
      if vm.preempt_pending then begin
        vm.preempt_pending <- false;
        Dejavu.Tape.push b.deltas b.icount;
        b.icount <- 0;
        Vm.Sched.perform_thread_switch vm
      end);
  b

exception Divergence = Dejavu.Session.Divergence

let attach_replay (vm : Vm.Rt.t) (trace : Dejavu.Trace.t)
    (deltas : int array) : t =
  Dejavu.Replayer.check_digest vm trace;
  let session = Dejavu.Session.for_replay vm trace in
  Dejavu.Replayer.attach_io vm session;
  let b =
    {
      vm;
      mode = Replay;
      session;
      deltas = Dejavu.Tape.of_array "icount" deltas;
      icount = 0;
      fire = false;
      target = -1;
    }
  in
  b.target <- (match Dejavu.Tape.read_opt b.deltas with Some d -> d | None -> -1);
  vm.hooks.h_instr <-
    Some
      (fun _vm ->
        b.icount <- b.icount + 1;
        if b.icount = b.target then b.fire <- true);
  vm.hooks.h_yieldpoint <-
    (fun vm ->
      if b.fire then begin
        b.fire <- false;
        b.icount <- 0;
        b.target <-
          (match Dejavu.Tape.read_opt b.deltas with Some d -> d | None -> -1);
        Vm.Sched.perform_thread_switch vm
      end);
  b

let deltas_array (b : t) = Dejavu.Tape.to_array b.deltas

type sizes = { trace_words : int; n_switches : int }

let sizes (b : t) : sizes =
  let io =
    Dejavu.Tape.length b.session.clocks
    + Dejavu.Tape.length b.session.inputs
    + Dejavu.Tape.length b.session.natives
  in
  {
    trace_words = Dejavu.Tape.length b.deltas + io;
    n_switches = Dejavu.Tape.length b.deltas;
  }
