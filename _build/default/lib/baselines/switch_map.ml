(* Russinovich & Cogswell baseline (PLDI 1996).

   Their system captures thread switches on a uniprocessor, but — unlike
   DejaVu — it does NOT replay the thread package itself (theirs was the
   Mach kernel's). Consequences the paper calls out in section 5:

     - the replay mechanism "must tell the thread package which thread to
       schedule at each thread switch": EVERY switch (preemptive AND
       voluntary) logs the chosen thread, where DejaVu logs only the
       preemptive ones and lets the replayed thread package re-make every
       choice;
     - "this entails maintaining a mapping between the thread executing
       during record and during replay", consulted on every switch.

   Record entries, on one tape:
     preemptive switch:  [0; nyp-delta; next-tid]
     voluntary switch:   [1; next-tid]

   Replay counts yield points to place preemptive switches and steers the
   scheduler through the h_pick dispatch override, translating recorded
   tids through the thread map (built from spawn order). *)

type mode = Record | Replay

type t = {
  vm : Vm.Rt.t;
  mode : mode;
  session : Dejavu.Session.t;
  entries : Dejavu.Tape.t;
  mutable nyp : int; (* yield points since the last switch *)
  mutable pending_delta : int; (* record: delta for the in-flight preempt *)
  mutable pending_kind : int; (* -1 none, 0 preempt, 1 voluntary *)
  (* replay *)
  mutable thread_map : int array; (* record tid -> replay tid *)
  mutable n_mapped : int;
  mutable next_kind : int; (* head entry kind, -1 when exhausted *)
  mutable next_delta : int;
  mutable next_tid : int;
  mutable booted : bool;
  mutable forcing : bool; (* replay: inside a forced preemptive switch *)
  mutable map_lookups : int;
}

let base vm mode session entries =
  {
    vm;
    mode;
    session;
    entries;
    nyp = 0;
    pending_delta = 0;
    pending_kind = -1;
    thread_map = Array.make 64 (-1);
    n_mapped = 0;
    next_kind = -1;
    next_delta = 0;
    next_tid = -1;
    booted = false;
    forcing = false;
    map_lookups = 0;
  }

(* --- record ----------------------------------------------------------- *)

let attach_record (vm : Vm.Rt.t) : t =
  let session = Dejavu.Session.for_record vm in
  Dejavu.Recorder.attach_io vm session;
  let b = base vm Record session (Dejavu.Tape.create "switch-map") in
  vm.hooks.h_yieldpoint <-
    (fun vm ->
      b.nyp <- b.nyp + 1;
      if vm.preempt_pending then begin
        vm.preempt_pending <- false;
        b.pending_kind <- 0;
        b.pending_delta <- b.nyp;
        Vm.Sched.perform_thread_switch vm
      end);
  vm.hooks.h_switch <-
    Some
      (fun vm _from to_ ->
        if vm.status = Vm.Rt.Running_ then begin
          (match b.pending_kind with
          | 0 ->
            Dejavu.Tape.push b.entries 0;
            Dejavu.Tape.push b.entries b.pending_delta;
            Dejavu.Tape.push b.entries to_
          | _ ->
            Dejavu.Tape.push b.entries 1;
            Dejavu.Tape.push b.entries to_);
          b.pending_kind <- -1;
          b.nyp <- 0
        end);
  b

(* --- replay ----------------------------------------------------------- *)

exception Divergence = Dejavu.Session.Divergence

let next_entry (b : t) =
  match Dejavu.Tape.read_opt b.entries with
  | None -> b.next_kind <- -1
  | Some 0 ->
    b.next_kind <- 0;
    b.next_delta <- Dejavu.Tape.read b.entries;
    b.next_tid <- Dejavu.Tape.read b.entries
  | Some 1 ->
    b.next_kind <- 1;
    b.next_tid <- Dejavu.Tape.read b.entries
  | Some k -> raise (Divergence (Fmt.str "switch-map: bad entry kind %d" k))

let map_tid (b : t) record_tid =
  b.map_lookups <- b.map_lookups + 1;
  if record_tid < 0 || record_tid >= b.n_mapped
     || b.thread_map.(record_tid) < 0
  then
    raise
      (Divergence (Fmt.str "switch-map: unmapped record tid %d" record_tid));
  b.thread_map.(record_tid)

let register_thread (b : t) replay_tid =
  if b.n_mapped >= Array.length b.thread_map then begin
    let bigger = Array.make (2 * Array.length b.thread_map) (-1) in
    Array.blit b.thread_map 0 bigger 0 b.n_mapped;
    b.thread_map <- bigger
  end;
  (* record tids are spawn-ordered, so the n-th record thread corresponds
     to the n-th replay thread *)
  b.thread_map.(b.n_mapped) <- replay_tid;
  b.n_mapped <- b.n_mapped + 1

let attach_replay (vm : Vm.Rt.t) (trace : Dejavu.Trace.t)
    (entries : int array) : t =
  Dejavu.Replayer.check_digest vm trace;
  let session = Dejavu.Session.for_replay vm trace in
  Dejavu.Replayer.attach_io vm session;
  let b = base vm Replay session (Dejavu.Tape.of_array "switch-map" entries) in
  next_entry b;
  vm.hooks.h_spawn <- Some (fun _vm tid -> register_thread b tid);
  vm.hooks.h_yieldpoint <-
    (fun vm ->
      b.nyp <- b.nyp + 1;
      if b.next_kind = 0 && b.nyp = b.next_delta then begin
        (* the recorded run preempted at this yield point *)
        b.forcing <- true;
        Vm.Sched.perform_thread_switch vm;
        b.forcing <- false
      end);
  vm.hooks.h_pick <-
    Some
      (fun _vm default ->
        if not b.booted then begin
          (* the boot dispatch predates any recorded switch *)
          b.booted <- true;
          default
        end
        else begin
          (match (b.next_kind, b.forcing) with
          | -1, _ ->
            raise (Divergence "switch-map: switch beyond the recorded trace")
          | 0, false ->
            raise
              (Divergence
                 "switch-map: voluntary switch where a preemption was recorded")
          | 1, true ->
            raise
              (Divergence
                 "switch-map: preemption where a voluntary switch was recorded")
          | _ -> ());
          let want = map_tid b b.next_tid in
          next_entry b;
          b.nyp <- 0;
          want
        end);
  b

(* --- sizes ------------------------------------------------------------ *)

type sizes = {
  trace_words : int;
  n_preemptive : int;
  n_voluntary : int;
  map_lookups : int;
}

let sizes (b : t) : sizes =
  let io =
    Dejavu.Tape.length b.session.clocks
    + Dejavu.Tape.length b.session.inputs
    + Dejavu.Tape.length b.session.natives
  in
  (* count entry kinds *)
  let arr = Dejavu.Tape.to_array b.entries in
  let p = ref 0 and v = ref 0 in
  let i = ref 0 in
  while !i < Array.length arr do
    if arr.(!i) = 0 then begin
      incr p;
      i := !i + 3
    end
    else begin
      incr v;
      i := !i + 2
    end
  done;
  {
    trace_words = Array.length arr + io;
    n_preemptive = !p;
    n_voluntary = !v;
    map_lookups = b.map_lookups;
  }

let entries_array (b : t) = Dejavu.Tape.to_array b.entries
