(** Instruction-counting baseline (paper section 2.3: counting instructions
    "will work, but the overhead is prohibitive"). Identical to DejaVu
    except switch points are identified by the retired-instruction count: a
    counter is bumped on every instruction, and replay compares it against
    the recorded target on every instruction. Full record and replay. *)

type mode = Record | Replay

type t = {
  vm : Vm.Rt.t;
  mode : mode;
  session : Dejavu.Session.t;
  deltas : Dejavu.Tape.t;  (** retired instructions between switches *)
  mutable icount : int;
  mutable fire : bool;
  mutable target : int;
}

exception Divergence of string

val attach_record : Vm.Rt.t -> t

(** [attach_replay vm trace deltas]: replay [trace]'s IO events and force
    switches at the recorded instruction counts. *)
val attach_replay : Vm.Rt.t -> Dejavu.Trace.t -> int array -> t

val deltas_array : t -> int array

type sizes = { trace_words : int; n_switches : int }

val sizes : t -> sizes
