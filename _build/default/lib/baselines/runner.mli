(** Uniform runners over the baseline schemes, used by the tests and the
    bench harness: record-only runs (CREW, read-log) and full record/replay
    roundtrips (switch-map, instruction count). *)

type recorded = {
  status : Vm.Rt.status;
  output : string;
  state_digest : int;
  obs_digest : int;
  obs_count : int;
  trace_words : int;  (** including the non-reproducible-event tapes *)
  detail : string;
}

val record_crew :
  ?config:Vm.Rt.config ->
  ?natives:Vm.Native.spec list ->
  ?inputs:int list ->
  ?seed:int ->
  ?limit:int ->
  Bytecode.Decl.program ->
  recorded

val record_read_log :
  ?config:Vm.Rt.config ->
  ?natives:Vm.Native.spec list ->
  ?inputs:int list ->
  ?seed:int ->
  ?limit:int ->
  Bytecode.Decl.program ->
  recorded

type roundtrip = {
  recorded : recorded;
  replayed : recorded;
  outputs_equal : bool;
  states_equal : bool;
  events_equal : bool;
}

val ok : roundtrip -> bool

val roundtrip_switch_map :
  ?config:Vm.Rt.config ->
  ?natives:Vm.Native.spec list ->
  ?inputs:int list ->
  ?seed:int ->
  ?limit:int ->
  Bytecode.Decl.program ->
  roundtrip

val roundtrip_icount :
  ?config:Vm.Rt.config ->
  ?natives:Vm.Native.spec list ->
  ?inputs:int list ->
  ?seed:int ->
  ?limit:int ->
  Bytecode.Decl.program ->
  roundtrip
