(** A strict digest of the whole machine state: heap contents up to the
    bump pointer (addresses included — allocation order is part of the
    execution), statics, interned strings, thread records, monitors,
    scheduler queues, and program output. Two identical executions produce
    identical digests; any perturbation of a paused VM changes it. *)

val digest : Rt.t -> int
