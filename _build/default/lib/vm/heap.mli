(** Bump allocation with collect-on-exhaustion, temp/pinned root management
    for addresses held across allocations, and string interning. *)

exception Out_of_memory

(** Temp roots: push before a subsequent allocation, read back after (the
    collector may have moved the object), pop when done. Returns the root
    index. *)
val push_temp : Rt.t -> int -> int

val temp : Rt.t -> int -> int

val pop_temp : Rt.t -> unit

(** Pin a long-lived instrumentation object as a permanent GC root; read
    the (possibly relocated) address back with {!pinned}. *)
val pin : Rt.t -> int -> int

val pinned : Rt.t -> int -> int

(** Allocate an object with [len] zeroed slots; may collect; raises
    {!Out_of_memory} when the heap is exhausted even after collecting. *)
val alloc : Rt.t -> cid:int -> len:int -> int

val alloc_object : Rt.t -> int -> int

val int_array_cid : Rt.t -> int

val ref_array_cid : Rt.t -> int

val stack_array_cid : Rt.t -> int

val alloc_array : Rt.t -> elem_ref:bool -> len:int -> int

val alloc_stack_array : Rt.t -> len:int -> int

(** Build a String object from an OCaml string (two allocations, temp-
    rooted safely). *)
val alloc_string : Rt.t -> string -> int
