lib/vm/heap.mli: Rt
