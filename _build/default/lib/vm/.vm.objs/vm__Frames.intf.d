lib/vm/frames.mli: Rt
