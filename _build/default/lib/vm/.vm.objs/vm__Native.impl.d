lib/vm/native.ml: Array Env Hashtbl List Prng Rt
