lib/vm/env.mli: Prng
