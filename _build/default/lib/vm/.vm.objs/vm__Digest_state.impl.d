lib/vm/digest_state.ml: Array Buffer Char Gc Hashtbl List Queue Rt String
