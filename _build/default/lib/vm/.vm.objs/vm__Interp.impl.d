lib/vm/interp.ml: Array Buffer Bytecode Compile Env Fmt Hashtbl Heap Layout List Rt Sched Seq Verify
