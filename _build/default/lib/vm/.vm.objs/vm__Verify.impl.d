lib/vm/verify.ml: Array Bytecode Fmt Option Queue Rt
