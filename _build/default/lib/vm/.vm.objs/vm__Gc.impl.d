lib/vm/gc.ml: Array Bytecode Frames Layout Rt
