lib/vm/layout.ml: Array Char Rt String
