lib/vm/sched.mli: Rt
