lib/vm/heap.ml: Array Bytecode Char Gc Layout Rt String
