lib/vm/prng.mli:
