lib/vm/prng.ml: Int64
