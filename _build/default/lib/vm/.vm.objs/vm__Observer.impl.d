lib/vm/observer.ml: Fmt Hashtbl List Rt
