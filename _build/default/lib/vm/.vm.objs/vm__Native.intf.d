lib/vm/native.mli: Hashtbl Rt
