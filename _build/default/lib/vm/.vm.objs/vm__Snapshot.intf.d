lib/vm/snapshot.mli: Rt
