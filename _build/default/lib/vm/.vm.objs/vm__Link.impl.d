lib/vm/link.ml: Array Bytecode Fmt Hashtbl List Rt
