lib/vm/verify.mli: Bytecode Format Rt
