lib/vm/sched.ml: Array Env Fmt Layout List Queue Rt
