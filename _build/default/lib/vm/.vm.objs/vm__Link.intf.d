lib/vm/link.mli: Bytecode Hashtbl Rt
