lib/vm/snapshot.ml: Array Buffer List Prng Queue Rt
