lib/vm/digest_state.mli: Rt
