lib/vm/vm.ml: Array Buffer Bytecode Compile Digest_state Env Fmt Frames Gc Hashtbl Heap Interp Layout Link List Native Observer Prng Queue Rt Sched Snapshot Verify
