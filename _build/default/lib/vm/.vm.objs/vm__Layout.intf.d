lib/vm/layout.mli: Rt
