lib/vm/interp.mli: Rt
