lib/vm/gc.mli: Rt
