lib/vm/env.ml: Prng
