lib/vm/compile.mli: Rt
