lib/vm/frames.ml: Array Fmt Layout List Rt
