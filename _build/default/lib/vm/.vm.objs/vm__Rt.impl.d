lib/vm/rt.ml: Array Buffer Bytecode Env Hashtbl Queue
