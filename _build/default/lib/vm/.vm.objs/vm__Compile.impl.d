lib/vm/compile.ml: Array Bytecode Env Fmt Hashtbl Layout List Rt Verify
