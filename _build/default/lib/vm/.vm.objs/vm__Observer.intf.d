lib/vm/observer.mli: Format Rt
