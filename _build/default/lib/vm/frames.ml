(* Walking the activation frames of a thread's heap-allocated stack array.
   Used by the garbage collector (with reference maps) and by the debugger
   (stack traces). See Rt for the frame layout. *)

type frame = {
  fr_meth : Rt.rmethod;
  fr_pc : int; (* current pc (top frame) or resume pc (callers) *)
  fr_fp : int; (* data-area offset of the frame base *)
  fr_depth : int; (* live operand-stack depth of this frame *)
  fr_top : bool;
}

let locals_base fp = fp + Rt.frame_header_words

let stack_base (m : Rt.rmethod) fp = fp + Rt.frame_header_words + m.rm_nlocals

(* Fold over a thread's frames, top-most first. Terminated threads have no
   frames. For suspended caller frames the live operand-stack depth excludes
   the result slot the in-flight call will push. *)
let fold (vm : Rt.t) (t : Rt.thread) ~init ~f =
  if t.t_state = Rt.Terminated then init
  else begin
    let acc = ref init in
    let meth = ref t.t_meth in
    let pc = ref t.t_pc in
    let fp = ref t.t_fp in
    let sp = ref t.t_sp in
    let top = ref true in
    let continue_ = ref true in
    while !continue_ do
      let m = !meth in
      let depth = !sp - stack_base m !fp in
      acc :=
        f !acc { fr_meth = m; fr_pc = !pc; fr_fp = !fp; fr_depth = depth; fr_top = !top };
      let caller_uid = Layout.stack_get vm t !fp in
      if caller_uid < 0 then continue_ := false
      else begin
        let caller_pc = Layout.stack_get vm t (!fp + 1) in
        let caller_fp = Layout.stack_get vm t (!fp + 2) in
        sp := !fp;
        (* caller's sp at call time = callee frame base *)
        meth := vm.methods.(caller_uid);
        pc := caller_pc;
        fp := caller_fp;
        top := false
      end
    done;
    !acc
  end

let frames vm t = List.rev (fold vm t ~init:[] ~f:(fun acc fr -> fr :: acc))

(* Iterate the reference slots of one frame: calls [f] with the *data-area
   offset* of each slot that holds a reference according to the method's
   reference map at the frame's pc. *)
let iter_ref_slots (_vm : Rt.t) (_t : Rt.thread) (fr : frame) ~f =
  let c = Rt.compiled fr.fr_meth in
  let map = c.k_maps.(fr.fr_pc) in
  let lb = locals_base fr.fr_fp in
  Array.iteri (fun i is_ref -> if is_ref then f (lb + i)) map.map_locals;
  let sb = stack_base fr.fr_meth fr.fr_fp in
  let live = min fr.fr_depth map.map_depth in
  for i = 0 to live - 1 do
    if map.map_stack.(i) then f (sb + i)
  done;
  if fr.fr_depth > map.map_depth then
    invalid_arg
      (Fmt.str "frame %s pc %d: live depth %d exceeds map depth %d"
         fr.fr_meth.rm_name fr.fr_pc fr.fr_depth map.map_depth)
