(** Walking the activation frames of a thread's heap-allocated stack array.
    Used by the garbage collector (with the verifier's reference maps) and
    by the debugger (stack traces). See {!Rt.frame_header_words} for the
    layout. *)

type frame = {
  fr_meth : Rt.rmethod;
  fr_pc : int;  (** current pc (top frame) or resume pc (callers) *)
  fr_fp : int;  (** data-area offset of the frame base *)
  fr_depth : int;  (** live operand-stack depth of this frame *)
  fr_top : bool;
}

val locals_base : int -> int

val stack_base : Rt.rmethod -> int -> int

(** Fold over a thread's frames, top-most first. Terminated threads have no
    frames. *)
val fold : Rt.t -> Rt.thread -> init:'a -> f:('a -> frame -> 'a) -> 'a

(** All frames, top-most first. *)
val frames : Rt.t -> Rt.thread -> frame list

(** Call [f] with the data-area offset of every slot of [fr] that holds a
    reference according to the method's reference map at the frame's pc. *)
val iter_ref_slots : Rt.t -> Rt.thread -> frame -> f:(int -> unit) -> unit
