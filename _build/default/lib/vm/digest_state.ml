(* A strict digest of the whole machine state. Two identical executions
   produce identical digests (heap addresses included — allocation order is
   part of the execution), and any perturbation of a paused VM — the thing
   remote reflection promises never to do — changes it. *)

let fnv_prime = 0x100000001b3

let mix h v = (h lxor (v land max_int)) * fnv_prime land max_int

let of_buffer h (b : Buffer.t) =
  let s = Buffer.contents b in
  String.fold_left (fun h c -> mix h (Char.code c)) h s

let digest (vm : Rt.t) : int =
  let h = ref 0x3bf29ce484222325 in
  let add v = h := mix !h v in
  (* heap contents up to the bump pointer *)
  add vm.hp;
  for i = Gc.heap_start to vm.hp - 1 do
    add vm.heap.(i)
  done;
  (* statics *)
  for i = 0 to vm.nglobals - 1 do
    add vm.globals.(i)
  done;
  (* interned strings *)
  Array.iter
    (fun (c : Rt.rclass) -> Array.iter add c.rc_strings)
    vm.classes;
  (* threads *)
  add vm.n_threads;
  for tid = 0 to vm.n_threads - 1 do
    let t = vm.threads.(tid) in
    add t.tid;
    add t.t_stack;
    add t.t_fp;
    add t.t_sp;
    add t.t_pc;
    add (if t.t_state = Rt.Terminated then -1 else t.t_meth.uid);
    add (Hashtbl.hash t.t_state);
    add t.t_wake;
    add (if t.t_interrupted then 1 else 0);
    add t.t_wait_mon;
    add t.t_saved_count;
    List.iter add t.t_joiners
  done;
  (* monitors *)
  add vm.n_monitors;
  for i = 0 to vm.n_monitors - 1 do
    let m = vm.monitors.(i) in
    add m.m_owner;
    add m.m_count;
    Queue.iter add m.m_entryq;
    List.iter add m.m_waitset
  done;
  (* scheduler *)
  Queue.iter add vm.readyq;
  add vm.current;
  List.iter
    (fun (w, tid) ->
      add w;
      add tid)
    vm.sleepers;
  (* program output *)
  h := of_buffer !h vm.output;
  !h
