(** SplitMix64 — a small, fast, seedable PRNG. Used only by the simulated
    environment (instruction-time jitter, synthetic input), never for
    program semantics, so replay never depends on it. *)

type t = { mutable state : int64 }

val create : int -> t

val copy : t -> t

val next_int64 : t -> int64

(** Uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

val bool : t -> bool
