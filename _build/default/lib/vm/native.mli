(** Native-method registry (the JNI stand-in, paper section 2.5). A native
    takes integer arguments and produces an outcome: an optional integer
    result plus callbacks into VM methods (run in order before control
    returns behind the call site). Natives may consult the environment —
    that is their non-determinism — but must not touch the VM heap: DejaVu
    replays their outcomes without executing them, exactly as Jalapeño's
    JNI design (no direct heap pointers) permits. *)

type outcome = {
  result : int option;
  callbacks : ((string * string) * int array) list;
      (** ((class, method), int args); resolved to uids at VM creation *)
}

type spec = {
  name : string;
  arity : int;
  returns : bool;
  fn : Rt.t -> int array -> outcome;
}

val make : name:string -> arity:int -> returns:bool -> (Rt.t -> int array -> outcome) -> spec

val value : int -> outcome

val void : outcome

(** Resolve a spec against the built VM tables (used by [Vm.create]). *)
val resolve :
  Rt.rmethod array ->
  (string, int) Hashtbl.t ->
  Rt.rclass array ->
  int ->
  spec ->
  Rt.native

(** Stock natives available to every program: [sys_clock], [sys_random],
    [sys_id]. *)
val stock : spec list
