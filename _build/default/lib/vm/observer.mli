(** Execution observers: capture or digest the event sequence (one event
    per executed instruction, yield points included). The paper defines
    two executions as identical when their event sequences and per-event
    states agree; observers are how tests and benches check exactly that. *)

type t

(** Attach a rolling-hash observer (cheap; suitable for full runs). *)
val attach_digest : Rt.t -> t

(** Attach a collecting observer keeping up to [max_events] events. *)
val attach_collect : ?max_events:int -> Rt.t -> t

val detach : Rt.t -> unit

val digest : t -> int

val count : t -> int

(** The collected events in execution order; raises on digest observers. *)
val events : t -> Rt.obs list

val pp_obs : Format.formatter -> Rt.obs -> unit
