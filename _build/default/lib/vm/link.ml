(* Building the boot image: register every class of a program (plus the
   builtins), assign class ids, flatten field layouts, build vtables and
   subtype displays, allot the statics area, and create the method records.
   No heap activity happens here — class *initialization* (string interning,
   <clinit>) is performed lazily by the interpreter, because its heap side
   effects are part of what DejaVu must keep symmetric. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type image = {
  i_classes : Rt.rclass array;
  i_class_of_name : (string, int) Hashtbl.t;
  i_methods : Rt.rmethod array;
  i_nglobals : int;
}

(* Distinct string literals of a class, in first-occurrence order. *)
let string_literals (c : Bytecode.Decl.cdecl) =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun (m : Bytecode.Decl.mdecl) ->
      Array.iter
        (function
          | Bytecode.Instr.Sconst s ->
            if not (Hashtbl.mem seen s) then begin
              Hashtbl.add seen s ();
              out := s :: !out
            end
          | _ -> ())
        m.m_code)
    c.cd_methods;
  List.rev !out

let equal_sig (a : Bytecode.Decl.mdecl) (b : Bytecode.Decl.mdecl) =
  a.m_args = b.m_args && a.m_ret = b.m_ret

let build (p : Bytecode.Decl.program) : image =
  (match Bytecode.Check.check p with
  | [] -> ()
  | issues ->
    error "program rejected:@\n%a"
      (Fmt.list ~sep:Fmt.cut Bytecode.Check.pp_issue)
      issues);
  let classes = ref [] in
  let n_classes = ref 0 in
  let class_of_name = Hashtbl.create 64 in
  let methods = ref [] in
  let n_methods = ref 0 in
  let nglobals = ref 0 in
  let add_method cid (decl : Bytecode.Decl.mdecl) =
    let uid = !n_methods in
    incr n_methods;
    let m =
      {
        Rt.uid;
        rm_cid = cid;
        rm_name = decl.m_name;
        rm_static = decl.m_static;
        rm_nargs = Bytecode.Decl.nargs decl;
        rm_args = decl.m_args;
        rm_nlocals = decl.m_nlocals;
        rm_ret = decl.m_ret;
        rm_decl = decl;
        rm_compiled = None;
      }
    in
    methods := m :: !methods;
    m
  in
  let register ?super_cid ?(elem = Rt.Not_array) ?(fields = [])
      ?(statics = []) ?(decl : Bytecode.Decl.cdecl option) name =
    let cid = !n_classes in
    incr n_classes;
    let super =
      match super_cid with
      | Some s -> Some (List.nth (List.rev !classes) s)
      | None -> None
    in
    let super_fields =
      match super with Some s -> s.Rt.rc_fields | None -> [||]
    in
    let own_fields =
      Array.of_list
        (List.map (fun f -> (f.Bytecode.Decl.fd_name, f.fd_ty)) fields)
    in
    let all_fields = Array.append super_fields own_fields in
    let field_index = Hashtbl.create 8 in
    Array.iteri (fun i (n, _) -> Hashtbl.replace field_index n i) all_fields;
    let statics_arr =
      Array.of_list
        (List.map (fun f -> (f.Bytecode.Decl.fd_name, f.fd_ty)) statics)
    in
    let statics_base = !nglobals in
    nglobals := !nglobals + Array.length statics_arr;
    let depth = match super with Some s -> s.rc_depth + 1 | None -> 0 in
    let display = Array.make (depth + 1) cid in
    (match super with
    | Some s -> Array.blit s.rc_display 0 display 0 (depth)
    | None -> ());
    display.(depth) <- cid;
    (* vtable: inherit, then declare/override *)
    let vtable = ref (match super with Some s -> Array.copy s.rc_vtable | None -> [||]) in
    let vslot_of = Hashtbl.create 8 in
    (match super with
    | Some s -> Hashtbl.iter (fun k v -> Hashtbl.replace vslot_of k v) s.rc_vslot_of
    | None -> ());
    let method_of = Hashtbl.create 8 in
    (match decl with
    | None -> ()
    | Some d ->
      List.iter
        (fun (md : Bytecode.Decl.mdecl) ->
          let m = add_method cid md in
          Hashtbl.replace method_of md.m_name m.Rt.uid;
          if not md.m_static then begin
            match Hashtbl.find_opt vslot_of md.m_name with
            | Some slot ->
              (* override: the whole chain must share one signature *)
              let vt = !vtable in
              let prev =
                List.find (fun (x : Rt.rmethod) -> x.uid = vt.(slot)) !methods
              in
              if not (equal_sig prev.rm_decl md) then
                error "%s.%s overrides with a different signature" name
                  md.m_name;
              vt.(slot) <- m.Rt.uid
            | None ->
              let slot = Array.length !vtable in
              vtable := Array.append !vtable [| m.Rt.uid |];
              Hashtbl.replace vslot_of md.m_name slot
          end)
        d.cd_methods);
    let rc =
      {
        Rt.cid;
        rc_name = name;
        rc_super = (match super with Some s -> s.Rt.cid | None -> -1);
        rc_depth = depth;
        rc_display = display;
        rc_fields = all_fields;
        rc_field_index = field_index;
        rc_statics = statics_arr;
        rc_statics_base = statics_base;
        rc_vtable = !vtable;
        rc_vslot_of = vslot_of;
        rc_method_of = method_of;
        rc_string_lits =
          (match decl with
          | Some d -> Array.of_list (string_literals d)
          | None -> [||]);
        rc_strings = [||];
        rc_state = Rt.Registered;
        rc_elem = elem;
      }
    in
    classes := rc :: !classes;
    Hashtbl.replace class_of_name name cid;
    cid
  in
  (* Builtins. Object must be cid 0. *)
  let object_cid = register Bytecode.Decl.object_class in
  assert (object_cid = 0);
  let _string =
    register ~super_cid:object_cid
      ~fields:[ { Bytecode.Decl.fd_name = "chars"; fd_ty = Bytecode.Instr.Tarr Bytecode.Instr.Tint } ]
      Bytecode.Decl.string_class
  in
  let _int_array = register ~super_cid:object_cid ~elem:Rt.Arr_int "int[]" in
  let _ref_array = register ~super_cid:object_cid ~elem:Rt.Arr_ref "ref[]" in
  let _stack_array = register ~super_cid:object_cid ~elem:Rt.Arr_int "stack[]" in
  let throwable =
    match Bytecode.Decl.exception_classes with
    | "Throwable" :: rest ->
      let t = register ~super_cid:object_cid "Throwable" in
      List.iter (fun n -> ignore (register ~super_cid:t n)) rest;
      t
    | _ -> error "exception_classes must start with Throwable"
  in
  ignore throwable;
  (* User classes in superclass-first order. *)
  let in_progress = Hashtbl.create 16 in
  let rec ensure (c : Bytecode.Decl.cdecl) =
    if Hashtbl.mem class_of_name c.cd_name then ()
    else begin
      if Hashtbl.mem in_progress c.cd_name then
        error "superclass cycle at %s" c.cd_name;
      Hashtbl.add in_progress c.cd_name ();
      let super_cid =
        match c.cd_super with
        | None -> object_cid
        | Some s -> (
          match Hashtbl.find_opt class_of_name s with
          | Some cid -> cid
          | None -> (
            match Bytecode.Decl.find_class p s with
            | Some sc ->
              ensure sc;
              Hashtbl.find class_of_name s
            | None -> error "unknown superclass %s" s))
      in
      ignore
        (register ~super_cid ~fields:c.cd_fields ~statics:c.cd_statics
           ~decl:c c.cd_name)
    end
  in
  List.iter ensure p.classes;
  {
    i_classes = Array.of_list (List.rev !classes);
    i_class_of_name = class_of_name;
    i_methods = Array.of_list (List.rev !methods);
    i_nglobals = !nglobals;
  }
