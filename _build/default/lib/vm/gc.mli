(** Semispace copying collector, type-accurate in the Jalapeño sense: heap
    objects are scanned via their class's field types, thread stacks via
    the verifier's per-pc reference maps. Collection is only triggered from
    allocations; at that moment every thread sits at a safe point with an
    exact reference map. *)

exception Out_of_memory

(** First allocatable word (0 stays null). *)
val heap_start : int

(** Copy the live graph into the other semispace and swap. All roots
    (statics, interned strings, temp and pinned roots, thread stacks and
    frames) are forwarded. *)
val collect : Rt.t -> unit

(** Live words after the last collection / allocations so far. *)
val live_words : Rt.t -> int
