(* SplitMix64 — a small, fast, seedable PRNG. Used only for the *simulated
   environment* (instruction-time jitter, synthetic input); never for program
   semantics, so replay never depends on it. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform in [0, bound). bound must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L
