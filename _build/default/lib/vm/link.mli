(** Building the boot image: register every class of a program (plus the
    builtins), assign class ids, flatten field layouts, build vtables and
    subtype displays, allot the statics area, and create the method
    records. No heap activity happens here — class {e initialization}
    (string interning, [<clinit>]) is performed lazily by the interpreter,
    because its heap side effects are part of what DejaVu must keep
    symmetric. *)

exception Error of string

type image = {
  i_classes : Rt.rclass array;
  i_class_of_name : (string, int) Hashtbl.t;
  i_methods : Rt.rmethod array;
  i_nglobals : int;
}

(** Runs [Bytecode.Check] first; raises {!Error} on rejection (including
    override-signature mismatches). *)
val build : Bytecode.Decl.program -> image
