(* Execution observers: capture or digest the event sequence (one event per
   executed instruction, including yield points). The paper defines two
   executions as identical when their event sequences and per-event states
   agree; observers are how the tests and benches check exactly that. *)

type t =
  | Digesting of int ref * int ref (* rolling hash, event count *)
  | Collecting of Rt.obs list ref * int (* reversed events, max kept *)

let attach_digest (vm : Rt.t) =
  let h = ref 0x3bf29ce484222325 and n = ref 0 in
  vm.hooks.h_observe <-
    Some
      (fun _vm (o : Rt.obs) ->
        incr n;
        let mix acc v = (acc lxor (v land max_int)) * 0x100000001b3 land max_int in
        h := mix (mix (mix (mix !h o.o_tid) o.o_uid) o.o_pc) o.o_tag);
  Digesting (h, n)

let attach_collect ?(max_events = 2_000_000) (vm : Rt.t) =
  let evs = ref [] in
  let count = ref 0 in
  vm.hooks.h_observe <-
    Some
      (fun _vm o ->
        if !count < max_events then begin
          evs := o :: !evs;
          incr count
        end);
  Collecting (evs, max_events)

let detach (vm : Rt.t) = vm.hooks.h_observe <- None

let digest = function
  | Digesting (h, _) -> !h
  | Collecting (evs, _) -> Hashtbl.hash !evs

let count = function
  | Digesting (_, n) -> !n
  | Collecting (evs, _) -> List.length !evs

let events = function
  | Collecting (evs, _) -> List.rev !evs
  | Digesting _ -> invalid_arg "Observer.events: digesting observer"

let pp_obs ppf (o : Rt.obs) =
  Fmt.pf ppf "t%d m%d@%d#%d" o.o_tid o.o_uid o.o_pc o.o_tag
