lib/remote/address_space.ml: Array Buffer Bytecode Hashtbl Vm
