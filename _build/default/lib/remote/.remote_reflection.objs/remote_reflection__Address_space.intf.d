lib/remote/address_space.mli: Hashtbl Vm
