lib/remote/reflect.ml: Array Bytecode Char Fmt Hashtbl List String Vm
