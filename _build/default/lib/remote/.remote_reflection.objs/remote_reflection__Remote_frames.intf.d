lib/remote/remote_frames.mli: Address_space Format Vm
