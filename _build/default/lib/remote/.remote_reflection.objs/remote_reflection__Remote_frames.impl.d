lib/remote/remote_frames.ml: Address_space Array Fmt List Vm
