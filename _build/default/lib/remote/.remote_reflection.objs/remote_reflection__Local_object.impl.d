lib/remote/local_object.ml: Array Reflect Vm
