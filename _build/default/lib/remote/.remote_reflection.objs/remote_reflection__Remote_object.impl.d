lib/remote/remote_object.ml: Address_space Reflect Vm
