(** Remote stack walking: reconstruct a thread's activation frames purely
    from peeks at its heap-allocated stack array plus boot-image method
    metadata — the remote-reflection rendition of [Vm.Frames]. Powers the
    debugger's stack traces without executing anything in the target VM. *)

type frame = {
  rf_meth : Vm.Rt.rmethod;
  rf_pc : int;  (** compiled pc *)
  rf_src_pc : int option;  (** original source pc, when compiled *)
  rf_line : int option;
  rf_fp : int;
  rf_locals : int array;  (** raw local-slot words *)
}

(** Source line covering a compiled pc. *)
val line_of_compiled : Vm.Rt.compiled -> int -> int option

(** All frames of a thread, top-most first; empty for terminated threads. *)
val frames : Address_space.t -> int -> frame list

val pp_frame : Format.formatter -> frame -> unit

(** The paper's Figure 3 query: the source line for (method uid, compiled
    offset), or 0 when unknown — answered from boot-image metadata. *)
val line_number_of : Address_space.t -> method_uid:int -> offset:int -> int
