(* The in-process counterpart: the same reflection code over direct heap
   access. This is what an in-process debugger would use — and what the
   paper shows would perturb the replayed VM if it ran inside it. Tests use
   it as the ground truth that remote reflection must match. *)

type t = { vm : Vm.Rt.t; addr : int }

let make vm addr =
  if addr = 0 then invalid_arg "local object cannot be null";
  { vm; addr }

module Source (Ctx : sig
  val vm : Vm.Rt.t
end) : Reflect.SOURCE with type obj = t = struct
  type obj = t

  let name = "local"

  let classes () = Ctx.vm.classes

  let class_id n = Vm.Rt.class_id Ctx.vm n

  let methods () = Ctx.vm.methods

  let class_of o = Vm.Layout.class_of o.vm o.addr

  let length_of o = Vm.Layout.len_of o.vm o.addr

  let slot o i = Vm.Layout.get o.vm o.addr i

  let obj_of_word w = if w = 0 then None else Some (make Ctx.vm w)

  let global_word i = Ctx.vm.globals.(i)
end

let reflection (vm : Vm.Rt.t) =
  let module Src = Source (struct
    let vm = vm
  end) in
  (module Reflect.Make (Src) : Reflect.S with type obj = t)
