(* One reflection interface, two data sources.

   The paper's remote reflection lets the SAME reflection code run either
   in-process (data from the local heap) or out-of-process (data fetched
   from the application JVM's address space through remote objects). Their
   mechanism is bytecode interception in an interpreter; ours — documented
   in DESIGN.md as a substitution — is a functor: [Make] builds the whole
   reflection API from a minimal word-level [SOURCE], and the two sources
   (local / remote) differ only in where words come from. The reflection
   code in [Make] is shared verbatim, which is the property the paper is
   after ("the same reflection interface can be used internally or
   externally"). *)

type 'obj value = Vnull | Vint of int | Vobj of 'obj

(* What a data source must provide: word-level access plus the boot-image
   metadata tables. *)
module type SOURCE = sig
  type obj

  val name : string

  val classes : unit -> Vm.Rt.rclass array

  val class_id : string -> int

  val methods : unit -> Vm.Rt.rmethod array

  (* dereference the object's header / slots *)
  val class_of : obj -> int

  val length_of : obj -> int

  val slot : obj -> int -> int (* raw word of slot i (past the header) *)

  val obj_of_word : int -> obj option (* None for null *)

  val global_word : int -> int
end

module type S = sig
  type obj

  val source_name : string

  val class_of : obj -> Vm.Rt.rclass

  val class_name : obj -> string

  val is_instance_of : obj -> string -> bool

  val get_field : obj -> string -> obj value

  val get_static : string -> string -> obj value

  val array_length : obj -> int

  val array_get : obj -> int -> obj value

  val string_value : obj -> string

  (* a printable rendering of an object graph to bounded depth *)
  val render : ?depth:int -> obj -> string

  val render_value : ?depth:int -> obj value -> string
end

module Make (Src : SOURCE) : S with type obj = Src.obj = struct
  type obj = Src.obj

  let source_name = Src.name

  let class_of o = (Src.classes ()).(Src.class_of o)

  let class_name o = (class_of o).rc_name

  let is_instance_of o cname =
    let classes = Src.classes () in
    let sup = Src.class_id cname in
    let sub = Src.class_of o in
    let s = classes.(sub) and p = classes.(sup) in
    p.rc_depth <= s.rc_depth && s.rc_display.(p.rc_depth) = sup

  let typed (ty : Bytecode.Instr.ty) word : obj value =
    if Bytecode.Instr.is_ref_ty ty then
      match Src.obj_of_word word with None -> Vnull | Some o -> Vobj o
    else Vint word

  let get_field o fname =
    let rc = class_of o in
    match Hashtbl.find_opt rc.rc_field_index fname with
    | None -> invalid_arg (Fmt.str "no field %s in %s" fname rc.rc_name)
    | Some idx -> typed (snd rc.rc_fields.(idx)) (Src.slot o idx)

  let get_static cname fname =
    let classes = Src.classes () in
    let rec go cid =
      if cid < 0 then invalid_arg (Fmt.str "no static %s.%s" cname fname)
      else
        let rc = classes.(cid) in
        let found = ref (-1) in
        Array.iteri (fun i (n, _) -> if n = fname then found := i) rc.rc_statics;
        if !found >= 0 then
          typed
            (snd rc.rc_statics.(!found))
            (Src.global_word (rc.rc_statics_base + !found))
        else go rc.rc_super
    in
    go (Src.class_id cname)

  let array_length o =
    let rc = class_of o in
    if rc.rc_elem = Vm.Rt.Not_array then
      invalid_arg (rc.rc_name ^ " is not an array");
    Src.length_of o

  let array_get o i =
    let rc = class_of o in
    (match rc.rc_elem with
    | Vm.Rt.Not_array -> invalid_arg (rc.rc_name ^ " is not an array")
    | _ -> ());
    if i < 0 || i >= Src.length_of o then invalid_arg "array index";
    match rc.rc_elem with
    | Vm.Rt.Arr_ref -> typed Bytecode.Instr.Tref (Src.slot o i)
    | _ -> Vint (Src.slot o i)

  let string_value o =
    if class_name o <> Bytecode.Decl.string_class then
      invalid_arg "not a String";
    match get_field o "chars" with
    | Vobj chars ->
      let n = Src.length_of chars in
      String.init n (fun i -> Char.chr (Src.slot chars i land 0xff))
    | _ -> invalid_arg "String without chars"

  let rec render_value ?(depth = 2) (v : obj value) =
    match v with
    | Vnull -> "null"
    | Vint n -> string_of_int n
    | Vobj o -> render ~depth:(depth - 1) o

  and render ?(depth = 2) o =
    let rc = class_of o in
    if rc.rc_name = Bytecode.Decl.string_class then
      Fmt.str "%S" (string_value o)
    else if rc.rc_elem <> Vm.Rt.Not_array then begin
      let n = Src.length_of o in
      if depth <= 0 then Fmt.str "%s[%d]" rc.rc_name n
      else
        let show = min n 8 in
        let elems =
          List.init show (fun i -> render_value ~depth (array_get o i))
        in
        Fmt.str "%s[%d]{%s%s}" rc.rc_name n (String.concat ", " elems)
          (if n > show then ", ..." else "")
    end
    else if depth <= 0 then Fmt.str "%s@..." rc.rc_name
    else
      let fields =
        Array.to_list rc.rc_fields
        |> List.map (fun (fname, _) ->
               Fmt.str "%s=%s" fname (render_value ~depth (get_field o fname)))
      in
      Fmt.str "%s{%s}" rc.rc_name (String.concat ", " fields)
end
