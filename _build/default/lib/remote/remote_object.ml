(* Remote objects: the proxy the paper builds remote reflection around
   (section 3.3: "to implement the remote object, it was sufficient to
   record the type of the object and its real address"). A remote object is
   an address interpreted against a remote address space; every slot read
   turns into a peek on that space. *)

type t = { space : Address_space.t; addr : int }

let make space addr =
  if addr = 0 then invalid_arg "remote object cannot be null";
  { space; addr }

(* The SOURCE instance over an address space: all words come from peeks. *)
module Source (Ctx : sig
  val space : Address_space.t
end) : Reflect.SOURCE with type obj = t = struct
  type obj = t

  let name = "remote"

  let classes () = Ctx.space.classes

  let class_id n = Address_space.class_id Ctx.space n

  let methods () = Ctx.space.methods

  let class_of o = o.space.peek (o.addr + Vm.Layout.hdr_class)

  let length_of o = o.space.peek (o.addr + Vm.Layout.hdr_len)

  let slot o i = o.space.peek (o.addr + Vm.Layout.header_words + i)

  let obj_of_word w = if w = 0 then None else Some (make Ctx.space w)

  let global_word i = Ctx.space.peek_global i
end

(* Build the full reflection API over one remote address space. *)
let reflection (space : Address_space.t) =
  let module Src = Source (struct
    let space = space
  end) in
  (module Reflect.Make (Src) : Reflect.S with type obj = t)
