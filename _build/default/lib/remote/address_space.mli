(** A pull-only window onto another VM's memory — the stand-in for the Unix
    ptrace facility of the paper's implementation (section 3.2). Everything
    is a read: heap words, static slots, thread register state. The target
    VM executes nothing on the tool's behalf; the [reads] counter makes
    that auditable, and the perturbation tests additionally compare the
    target's state digest before/after inspection.

    Class and method metadata are not read remotely: as in the paper, they
    come from the boot image — the tool loads the same program and
    therefore owns an identical copy (section 3.3). *)

(** The ptrace-GETREGS analogue: a scalar copy of one thread's state. *)
type thread_snapshot = {
  ts_tid : int;
  ts_name : string;
  ts_state : string;
  ts_stack : int;  (** heap address of the thread's stack array *)
  ts_fp : int;
  ts_sp : int;
  ts_pc : int;
  ts_meth_uid : int;  (** -1 when terminated *)
}

type t = {
  peek : int -> int;  (** heap word at an address; may raise {!Bad_address} *)
  peek_global : int -> int;
  n_globals : int;
  heap_top : unit -> int;
  thread_count : unit -> int;
  thread : int -> thread_snapshot;
  output_snapshot : unit -> string;
  classes : Vm.Rt.rclass array;  (** boot-image metadata (tool's copy) *)
  class_of_name : (string, int) Hashtbl.t;
  methods : Vm.Rt.rmethod array;
  mutable reads : int;  (** audit counter of remote word reads *)
  poke_global : int -> int -> unit;
      (** Alter an integer static in the target — the paper's footnote 3:
          possible, but it "would irrevocably break the symmetry between
          record and replay"; replay may continue but accuracy is no
          longer guaranteed. Refuses reference slots. *)
  mutable writes : int;  (** audit counter of pokes *)
}

exception Bad_address of int

(** Open an address space onto a VM in this process. *)
val of_vm : Vm.Rt.t -> t

val class_id : t -> string -> int
