(* Remote stack walking: reconstruct a thread's activation frames purely
   from peeks at its (heap-allocated) stack array plus boot-image method
   metadata — the remote-reflection version of Vm.Frames. Powers the
   debugger's stack traces without executing anything in the target VM. *)

type frame = {
  rf_meth : Vm.Rt.rmethod;
  rf_pc : int; (* compiled pc *)
  rf_src_pc : int option; (* original source pc, if the method is compiled *)
  rf_line : int option;
  rf_fp : int;
  rf_locals : int array; (* raw words *)
}

let line_of_compiled (c : Vm.Rt.compiled) pc =
  let best = ref None in
  Array.iter (fun (start, ln) -> if start <= pc then best := Some ln) c.k_lines;
  !best

let frame_of (space : Address_space.t) ~stack ~fp ~pc ~(meth : Vm.Rt.rmethod) =
  let data_base = stack + Vm.Layout.header_words in
  let locals =
    Array.init meth.rm_nlocals (fun i ->
        space.peek (data_base + fp + Vm.Rt.frame_header_words + i))
  in
  let src_pc, line =
    match meth.rm_compiled with
    | Some c when pc < Array.length c.k_src_pc ->
      (Some c.k_src_pc.(pc), line_of_compiled c pc)
    | _ -> (None, None)
  in
  { rf_meth = meth; rf_pc = pc; rf_src_pc = src_pc; rf_line = line; rf_fp = fp; rf_locals = locals }

(* All frames of a thread, top-most first. *)
let frames (space : Address_space.t) tid : frame list =
  let ts = space.thread tid in
  if ts.ts_meth_uid < 0 then []
  else begin
    let data_base = ts.ts_stack + Vm.Layout.header_words in
    let rec walk meth pc fp acc =
      let fr = frame_of space ~stack:ts.ts_stack ~fp ~pc ~meth in
      let caller_uid = space.peek (data_base + fp) in
      if caller_uid < 0 then List.rev (fr :: acc)
      else
        let caller_pc = space.peek (data_base + fp + 1) in
        let caller_fp = space.peek (data_base + fp + 2) in
        walk space.methods.(caller_uid) caller_pc caller_fp (fr :: acc)
    in
    walk space.methods.(ts.ts_meth_uid) ts.ts_pc ts.ts_fp []
  end

let pp_frame ppf (f : frame) =
  Fmt.pf ppf "%s.%s pc=%d%s%s"
    "" (* class name filled by caller if wanted *)
    f.rf_meth.rm_name f.rf_pc
    (match f.rf_src_pc with Some p -> Fmt.str " (src %d)" p | None -> "")
    (match f.rf_line with Some l -> Fmt.str " line %d" l | None -> "")

(* The paper's Figure 3: compute the source line for (method, offset) by
   reflective lookup — the same query the Debugger.lineNumberOf example
   performs, here answered from boot-image metadata and (for frames) remote
   peeks. *)
let line_number_of (space : Address_space.t) ~method_uid ~offset : int =
  if method_uid < 0 || method_uid >= Array.length space.methods then 0
  else
    let m = space.methods.(method_uid) in
    match m.rm_compiled with
    | Some c when offset >= 0 && offset < Array.length c.k_code -> (
      match line_of_compiled c offset with Some l -> l | None -> 0)
    | _ -> 0
