(* A pull-only window onto another VM's memory — the stand-in for the Unix
   ptrace facility the paper's implementation uses (section 3.2: "remote
   reflection relies on the underlying operating system to access the remote
   JVM address space ... the remote JVM does not execute any code to respond
   to queries").

   Everything here is a read: heap words, static slots, and thread register
   state (the ptrace GETREGS analogue). The target VM runs no code on our
   behalf; a read counter makes that auditable, and the perturbation-freedom
   tests additionally check the target's state digest before/after.

   Class and method metadata are NOT read remotely: as in the paper, they
   come from the boot image — the tool loads the same program and therefore
   owns an identical copy of the metadata (section 3.3: "the address is
   provided to the interpreter through the process of building the Jalapeño
   boot image"). *)

type thread_snapshot = {
  ts_tid : int;
  ts_name : string;
  ts_state : string;
  ts_stack : int;
  ts_fp : int;
  ts_sp : int;
  ts_pc : int;
  ts_meth_uid : int; (* -1 when terminated *)
}

type t = {
  peek : int -> int; (* heap word at address *)
  peek_global : int -> int;
  n_globals : int;
  heap_top : unit -> int;
  thread_count : unit -> int;
  thread : int -> thread_snapshot;
  output_snapshot : unit -> string;
  (* boot-image metadata (the tool VM's own copy) *)
  classes : Vm.Rt.rclass array;
  class_of_name : (string, int) Hashtbl.t;
  methods : Vm.Rt.rmethod array;
  mutable reads : int; (* audit counter: number of remote word reads *)
  (* Writing — the paper's footnote 3: a tool MAY let the user alter the
     application's state, but doing so "would irrevocably break the
     symmetry between record and replay ... no guarantee could be made as
     to its accuracy". Pokes are therefore counted, so tools can surface
     that the guarantee is gone. *)
  poke_global : int -> int -> unit;
  mutable writes : int;
}

exception Bad_address of int

(* the (name, type) of global slot [i], for the poke safety check *)
let static_info (vm : Vm.Rt.t) i =
  let found = ref ("?", Bytecode.Instr.Tint) in
  Array.iter
    (fun (c : Vm.Rt.rclass) ->
      Array.iteri
        (fun k (n, ty) -> if c.rc_statics_base + k = i then found := (n, ty))
        c.rc_statics)
    vm.classes;
  !found

let of_vm (vm : Vm.Rt.t) : t =
  let rec space =
    {
      peek =
        (fun a ->
          space.reads <- space.reads + 1;
          if a < 0 || a >= vm.hp then raise (Bad_address a);
          vm.heap.(a));
      peek_global =
        (fun i ->
          space.reads <- space.reads + 1;
          if i < 0 || i >= vm.nglobals then raise (Bad_address i);
          vm.globals.(i));
      n_globals = vm.nglobals;
      heap_top = (fun () -> vm.hp);
      thread_count = (fun () -> vm.n_threads);
      thread =
        (fun tid ->
          space.reads <- space.reads + 1;
          let t = vm.threads.(tid) in
          {
            ts_tid = t.tid;
            ts_name = t.t_name;
            ts_state = Vm.Rt.string_of_tstate t.t_state;
            ts_stack = t.t_stack;
            ts_fp = t.t_fp;
            ts_sp = t.t_sp;
            ts_pc = t.t_pc;
            ts_meth_uid =
              (if t.t_state = Vm.Rt.Terminated then -1 else t.t_meth.uid);
          });
      output_snapshot = (fun () -> Buffer.contents vm.output);
      classes = vm.classes;
      class_of_name = vm.class_of_name;
      methods = vm.methods;
      reads = 0;
      poke_global =
        (fun i v ->
          space.writes <- space.writes + 1;
          if i < 0 || i >= vm.nglobals then raise (Bad_address i);
          if Bytecode.Instr.is_ref_ty (snd (static_info vm i)) then
            invalid_arg "poke_global: refusing to forge a reference";
          vm.globals.(i) <- v);
      writes = 0;
    }
  in
  space

let class_id (s : t) name =
  match Hashtbl.find_opt s.class_of_name name with
  | Some cid -> cid
  | None -> invalid_arg ("unknown class " ^ name)
