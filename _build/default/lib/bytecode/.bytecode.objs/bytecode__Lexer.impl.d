lib/bytecode/lexer.ml: Array Buffer Fmt List String
