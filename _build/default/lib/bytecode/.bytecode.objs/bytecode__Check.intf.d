lib/bytecode/check.mli: Decl Format
