lib/bytecode/decl.ml: Array Buffer Digest Fmt Instr List Option
