lib/bytecode/parser.mli: Decl
