lib/bytecode/decl.mli: Instr
