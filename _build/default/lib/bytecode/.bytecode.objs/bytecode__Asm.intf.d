lib/bytecode/asm.mli: Decl Instr
