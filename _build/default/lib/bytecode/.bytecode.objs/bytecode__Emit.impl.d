lib/bytecode/emit.ml: Array Buffer Decl Fmt Instr List String
