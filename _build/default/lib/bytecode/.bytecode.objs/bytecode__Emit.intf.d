lib/bytecode/emit.mli: Decl Format
