lib/bytecode/disasm.mli: Decl Format
