lib/bytecode/disasm.ml: Array Decl Fmt Instr List Option String
