lib/bytecode/check.ml: Array Decl Fmt Hashtbl Instr List Option
