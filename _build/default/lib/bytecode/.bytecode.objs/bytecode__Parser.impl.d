lib/bytecode/parser.ml: Array Asm Decl Fmt Instr Lexer List String
