lib/bytecode/instr.ml: Fmt
