lib/bytecode/asm.ml: Array Decl Fmt Hashtbl Instr List
