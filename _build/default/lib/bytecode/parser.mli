(** Parser for the textual assembly language (".djv" files).

    Grammar sketch (see parser.ml for the full comment):
    {v
    program ::= ("main" NAME)? class*
    class   ::= "class" NAME ("extends" NAME)? "{" member* "}"
    member  ::= "field" NAME ":" type | "static" NAME ":" type
              | ("method"|"virtual") NAME "(" params? ")" (":" type)?
                  ("locals" INT)? ("sync")? "{" item* "}" handler*
    handler ::= "catch" (NAME|"*") "from" LABEL "to" LABEL "goto" LABEL
    v}

    Instructions use {!Instr.mnemonic} spellings; labels are
    [name:]-prefixed lines; [.line N] sets the source line. Without a
    ["main"] directive the first class with a static 0-argument [main]
    becomes the main class. *)

(** Parse error with a message and a 1-based source line. *)
exception Error of string * int

val parse_string : string -> Decl.program

val parse_file : string -> Decl.program
