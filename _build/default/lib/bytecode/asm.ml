(* A small assembler: method bodies are written as a list of items mixing
   instructions (with symbolic branch labels), label definitions, and source
   line directives. [assemble] resolves labels to instruction indices and
   collects the line table. *)

type item =
  | I of Instr.asm (* an instruction, branch targets are label names *)
  | L of string (* define a label at the next instruction *)
  | Line of int (* the following instructions carry this source line *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let assemble (items : item list) : Instr.t array * (int * int) list =
  (* First pass: assign instruction indices to labels. *)
  let labels = Hashtbl.create 16 in
  let count =
    List.fold_left
      (fun pc item ->
        match item with
        | I _ -> pc + 1
        | L name ->
          if Hashtbl.mem labels name then error "duplicate label %S" name;
          Hashtbl.replace labels name pc;
          pc
        | Line _ -> pc)
      0 items
  in
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some pc -> pc
    | None -> error "undefined label %S" name
  in
  (* Second pass: emit. *)
  let code = Array.make count Instr.Nop in
  let lines = ref [] in
  let last_line = ref None in
  let pc = ref 0 in
  List.iter
    (fun item ->
      match item with
      | L _ -> ()
      | Line n -> last_line := Some n
      | I ai ->
        (match ai with
        | Instr.Yieldpoint ->
          error "yieldpoint is reserved for the VM's method compiler"
        | _ -> ());
        (match !last_line with
        | Some n ->
          lines := (!pc, n) :: !lines;
          last_line := None
        | None -> ());
        code.(!pc) <- Instr.map_target resolve ai;
        incr pc)
    items;
  (code, List.rev !lines)

(* Convenience constructors so workload code reads compactly. *)
let i x = I x

let label name = L name

let line n = Line n

(* Assemble and build a method declaration in one go. [args] gives the type
   of each argument (receiver first for instance methods). *)
let method_ ?(static = true) ?ret ?(sync = false)
    ?(handlers = []) ?(args = []) ~nlocals name items =
  let code, lines = assemble items in
  {
    Decl.m_name = name;
    m_static = static;
    m_args = Array.of_list args;
    m_nlocals = nlocals;
    m_ret = ret;
    m_sync = sync;
    m_code = code;
    m_handlers = handlers;
    m_lines = lines;
  }

(* Handlers with symbolic labels: resolve against an already-assembled item
   list. For simplicity, handler bounds are given as labels too. *)
type ahandler = {
  ah_from : string;
  ah_upto : string;
  ah_target : string;
  ah_class : string option;
}

let method_with_handlers ?(static = true) ?ret ?(sync = false)
    ?(args = []) ~nlocals name items (ahandlers : ahandler list) =
  (* Re-run the label pass to resolve handler labels. *)
  let labels = Hashtbl.create 16 in
  let _ =
    List.fold_left
      (fun pc item ->
        match item with
        | I _ -> pc + 1
        | L name ->
          Hashtbl.replace labels name pc;
          pc
        | Line _ -> pc)
      0 items
  in
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some pc -> pc
    | None -> error "undefined handler label %S" name
  in
  let handlers =
    List.map
      (fun ah ->
        {
          Decl.h_from = resolve ah.ah_from;
          h_upto = resolve ah.ah_upto;
          h_target = resolve ah.ah_target;
          h_class = ah.ah_class;
        })
      ahandlers
  in
  method_ ~static ?ret ~sync ~handlers ~args ~nlocals name items
