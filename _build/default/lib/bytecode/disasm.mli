(** Human-readable listings of methods, classes, and programs (for humans;
    for parseable output use {!Emit}). *)

val pp_method : Format.formatter -> Decl.mdecl -> unit

val pp_class : Format.formatter -> Decl.cdecl -> unit

val pp_program : Format.formatter -> Decl.program -> unit

val program_to_string : Decl.program -> string
