(* Parser for the textual assembly language. Grammar:

     program   ::= class*
     class     ::= "class" NAME ("extends" NAME)? "{" member* "}"
     member    ::= "field"  NAME ":" type
                 | "static" NAME ":" type
                 | "method" NAME "(" params? ")" (":" type)?
                     ("locals" INT)? ("sync")? "{" item* "}" handler*
     handler   ::= "catch" (NAME | "*") "from" LABEL "to" LABEL "goto" LABEL
     params    ::= NAME ":" type ("," NAME ":" type)*    ; slots by position
     type      ::= ("int" | "ref" | NAME) "[]"*
     item      ::= LABEL ":"  |  ".line" INT  |  instruction

   Instructions use the disassembler's mnemonics:

     const N | sconst "s" | null | load N | store N | dup | pop | swap
     add sub mul div rem neg band bor bxor shl shr
     ifeq L ifne L iflt L ifle L ifgt L ifge L          ; two-operand compare
     ifzeq L ifzne L ifzlt L ifzle L ifzgt L ifzge L    ; compare with zero
     ifnull L | ifnonnull L | ifrefeq L | ifrefne L | goto L
     new C | getfield C.f | putfield C.f | getstatic C.f | putstatic C.f
     newarray TYPE | aload | astore | arraylength
     checkcast C | instanceof C
     invoke C.m | spawn C.m | ret | retv | throw
     monitorenter monitorexit wait timedwait notify notifyall
     sleep | join | interrupt | currenttime | readinput | nativecall NAME
     print | prints | halt | nop

   The first class with a 0-argument static "main" becomes the main class
   unless a "main" directive names one:  main NAME  at top level. *)

exception Error of string * int

type st = { toks : (Lexer.token * int) array; mutable i : int }

let error st fmt =
  let line = snd st.toks.(min st.i (Array.length st.toks - 1)) in
  Fmt.kstr (fun m -> raise (Error (m, line))) fmt

let peek st = fst st.toks.(st.i)



let advance st = st.i <- st.i + 1

let expect st tok what =
  if peek st = tok then advance st else error st "expected %s" what

let ident st =
  match peek st with
  | Lexer.Ident s ->
    advance st;
    s
  | _ -> error st "expected identifier"

let int st =
  match peek st with
  | Lexer.Int n ->
    advance st;
    n
  | _ -> error st "expected integer"

(* type ::= base "[]"* *)
let rec parse_type st : Instr.ty =
  let base =
    match ident st with
    | "int" -> Instr.Tint
    | "ref" -> Instr.Tref
    | name -> Instr.Tobj name
  in
  parse_array_suffix st base

and parse_array_suffix st base =
  if peek st = Lexer.Lbracket then begin
    advance st;
    expect st Lexer.Rbracket "']'";
    parse_array_suffix st (Instr.Tarr base)
  end
  else base

(* C.f or C.m *)
let dotted st =
  let c = ident st in
  expect st Lexer.Dot "'.'";
  let m = ident st in
  (c, m)

let cmp_of_suffix st = function
  | "eq" -> Instr.Eq
  | "ne" -> Instr.Ne
  | "lt" -> Instr.Lt
  | "le" -> Instr.Le
  | "gt" -> Instr.Gt
  | "ge" -> Instr.Ge
  | s -> error st "unknown comparison %S" s

let parse_instr st (mnem : string) : Asm.item =
  let lbl () = ident st in
  let item i = Asm.i i in
  match mnem with
  | "const" -> item (Instr.Const (int st))
  | "sconst" -> (
    match peek st with
    | Lexer.Str s ->
      advance st;
      item (Instr.Sconst s)
    | _ -> error st "sconst needs a string literal")
  | "null" -> item Instr.Null
  | "load" -> item (Instr.Load (int st))
  | "store" -> item (Instr.Store (int st))
  | "dup" -> item Instr.Dup
  | "pop" -> item Instr.Pop
  | "swap" -> item Instr.Swap
  | "add" -> item Instr.Add
  | "sub" -> item Instr.Sub
  | "mul" -> item Instr.Mul
  | "div" -> item Instr.Div
  | "rem" -> item Instr.Rem
  | "neg" -> item Instr.Neg
  | "band" -> item Instr.Band
  | "bor" -> item Instr.Bor
  | "bxor" -> item Instr.Bxor
  | "shl" -> item Instr.Shl
  | "shr" -> item Instr.Shr
  | "ifnull" -> item (Instr.Ifnull (lbl ()))
  | "ifnonnull" -> item (Instr.Ifnonnull (lbl ()))
  | "ifrefeq" -> item (Instr.Ifrefeq (lbl ()))
  | "ifrefne" -> item (Instr.Ifrefne (lbl ()))
  | "goto" -> item (Instr.Goto (lbl ()))
  | "new" -> item (Instr.New (ident st))
  | "getfield" ->
    let c, f = dotted st in
    item (Instr.Getfield (c, f))
  | "putfield" ->
    let c, f = dotted st in
    item (Instr.Putfield (c, f))
  | "getstatic" ->
    let c, f = dotted st in
    item (Instr.Getstatic (c, f))
  | "putstatic" ->
    let c, f = dotted st in
    item (Instr.Putstatic (c, f))
  | "newarray" -> item (Instr.Newarray (parse_type st))
  | "aload" -> item Instr.Aload
  | "astore" -> item Instr.Astore
  | "arraylength" -> item Instr.Arraylength
  | "checkcast" -> item (Instr.Checkcast (ident st))
  | "instanceof" -> item (Instr.Instanceof (ident st))
  | "invoke" ->
    let c, m = dotted st in
    item (Instr.Invoke (c, m))
  | "spawn" ->
    let c, m = dotted st in
    item (Instr.Spawn (c, m))
  | "ret" -> item Instr.Ret
  | "retv" -> item Instr.Retv
  | "throw" -> item Instr.Throw
  | "monitorenter" -> item Instr.Monitorenter
  | "monitorexit" -> item Instr.Monitorexit
  | "wait" -> item Instr.Wait
  | "timedwait" -> item Instr.Timedwait
  | "notify" -> item Instr.Notify
  | "notifyall" -> item Instr.Notifyall
  | "sleep" -> item Instr.Sleep
  | "join" -> item Instr.Join
  | "interrupt" -> item Instr.Interrupt
  | "currenttime" -> item Instr.Currenttime
  | "readinput" -> item Instr.Readinput
  | "nativecall" -> item (Instr.Nativecall (ident st))
  | "print" -> item Instr.Print
  | "prints" -> item Instr.Prints
  | "halt" -> item Instr.Halt
  | "nop" -> item Instr.Nop
  | _ ->
    (* two-operand and zero-compare branches: if<cmp> / ifz<cmp> *)
    if String.length mnem > 3 && String.sub mnem 0 3 = "ifz" then
      let cmp = cmp_of_suffix st (String.sub mnem 3 (String.length mnem - 3)) in
      item (Instr.Ifz (cmp, lbl ()))
    else if String.length mnem > 2 && String.sub mnem 0 2 = "if" then
      let cmp = cmp_of_suffix st (String.sub mnem 2 (String.length mnem - 2)) in
      item (Instr.If (cmp, lbl ()))
    else error st "unknown instruction %S" mnem

(* method body items until '}' *)
let parse_items st : Asm.item list =
  let out = ref [] in
  let rec go () =
    match peek st with
    | Lexer.Rbrace ->
      advance st;
      List.rev !out
    | Lexer.Dot ->
      advance st;
      (match ident st with
      | "line" -> out := Asm.line (int st) :: !out
      | d -> error st "unknown directive .%s" d);
      go ()
    | Lexer.Ident name ->
      advance st;
      if peek st = Lexer.Colon then begin
        (* a label *)
        advance st;
        out := Asm.label name :: !out
      end
      else out := parse_instr st name :: !out;
      go ()
    | Lexer.Eof -> error st "unexpected end of file in method body"
    | _ -> error st "expected instruction, label, or '}'"
  in
  go ()

let parse_handlers st : Asm.ahandler list =
  let out = ref [] in
  while peek st = Lexer.Ident "catch" do
    advance st;
    let cls =
      match peek st with
      | Lexer.Star ->
        advance st;
        None
      | _ -> Some (ident st)
    in
    expect st (Lexer.Ident "from") "'from'";
    let from_ = ident st in
    expect st (Lexer.Ident "to") "'to'";
    let upto = ident st in
    expect st (Lexer.Ident "goto") "'goto'";
    let target = ident st in
    out :=
      { Asm.ah_from = from_; ah_upto = upto; ah_target = target; ah_class = cls }
      :: !out
  done;
  List.rev !out

let parse_method st ~static : Decl.mdecl =
  let name = ident st in
  expect st Lexer.Lparen "'('";
  let args = ref [] in
  if peek st <> Lexer.Rparen then begin
    let rec one () =
      let _pname = ident st in
      expect st Lexer.Colon "':'";
      args := parse_type st :: !args;
      if peek st = Lexer.Comma then begin
        advance st;
        one ()
      end
    in
    one ()
  end;
  expect st Lexer.Rparen "')'";
  let ret =
    if peek st = Lexer.Colon then begin
      advance st;
      Some (parse_type st)
    end
    else None
  in
  let nlocals = ref (List.length !args) in
  let sync = ref false in
  let rec modifiers () =
    match peek st with
    | Lexer.Ident "locals" ->
      advance st;
      nlocals := int st;
      modifiers ()
    | Lexer.Ident "sync" ->
      advance st;
      sync := true;
      modifiers ()
    | _ -> ()
  in
  modifiers ();
  expect st Lexer.Lbrace "'{'";
  let items = parse_items st in
  let handlers = parse_handlers st in
  let nlocals = max !nlocals (List.length !args) in
  try
    Asm.method_with_handlers ~static ~sync:!sync ?ret
      ~args:(List.rev !args) ~nlocals name items handlers
  with Asm.Error m -> error st "in method %s: %s" name m

let parse_class st : Decl.cdecl =
  expect st (Lexer.Ident "class") "'class'";
  let name = ident st in
  let super =
    if peek st = Lexer.Ident "extends" then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  expect st Lexer.Lbrace "'{'";
  let fields = ref [] and statics = ref [] and methods = ref [] in
  let rec members () =
    match peek st with
    | Lexer.Rbrace -> advance st
    | Lexer.Ident "field" ->
      advance st;
      let n = ident st in
      expect st Lexer.Colon "':'";
      fields := { Decl.fd_name = n; fd_ty = parse_type st } :: !fields;
      members ()
    | Lexer.Ident "static" ->
      advance st;
      let n = ident st in
      expect st Lexer.Colon "':'";
      statics := { Decl.fd_name = n; fd_ty = parse_type st } :: !statics;
      members ()
    | Lexer.Ident "method" ->
      advance st;
      methods := parse_method st ~static:true :: !methods;
      members ()
    | Lexer.Ident "virtual" ->
      advance st;
      methods := parse_method st ~static:false :: !methods;
      members ()
    | _ -> error st "expected field, static, method, virtual, or '}'"
  in
  members ();
  Decl.cdecl ?super
    ~fields:(List.rev !fields)
    ~statics:(List.rev !statics)
    name (List.rev !methods)

let parse_program st : Decl.program =
  let classes = ref [] and main = ref None in
  let rec go () =
    match peek st with
    | Lexer.Eof -> ()
    | Lexer.Ident "main" ->
      advance st;
      main := Some (ident st);
      go ()
    | Lexer.Ident "class" ->
      classes := parse_class st :: !classes;
      go ()
    | _ -> error st "expected 'class' or 'main'"
  in
  go ();
  let classes = List.rev !classes in
  let main_class =
    match !main with
    | Some m -> m
    | None -> (
      (* first class declaring a 0-arg static main *)
      match
        List.find_opt
          (fun (c : Decl.cdecl) ->
            List.exists
              (fun (m : Decl.mdecl) ->
                m.m_name = "main" && m.m_static && Decl.nargs m = 0)
              c.cd_methods)
          classes
      with
      | Some c -> c.cd_name
      | None -> error st "no class with a static 0-argument main")
  in
  Decl.program ~main_class classes

let parse_string (src : string) : Decl.program =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (m, line) -> raise (Error (m, line))
  in
  let st = { toks; i = 0 } in
  parse_program st

let parse_file path : Decl.program =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string src
