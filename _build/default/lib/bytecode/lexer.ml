(* Tokenizer for the textual assembly language (see Parser for the
   grammar). Comments run from ';' or '//' to end of line. *)

type token =
  | Ident of string
  | Int of int
  | Str of string
  | Colon
  | Comma
  | Dot
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Star
  | Eof

type t = { src : string; mutable pos : int; mutable line : int }

exception Error of string * int (* message, line *)

let error lx fmt = Fmt.kstr (fun m -> raise (Error (m, lx.line))) fmt

let create src = { src; pos = 0; line = 1 }

let peek_char lx =
  if lx.pos >= String.length lx.src then None else Some lx.src.[lx.pos]

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '<'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '>' || c = '-'

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some ';' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/'
    ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | _ -> ()

let read_string lx =
  let buf = Buffer.create 16 in
  advance lx (* opening quote *);
  let rec go () =
    match peek_char lx with
    | None -> error lx "unterminated string"
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek_char lx with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance lx;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance lx;
        go ()
      | Some '\\' ->
        Buffer.add_char buf '\\';
        advance lx;
        go ()
      | Some '"' ->
        Buffer.add_char buf '"';
        advance lx;
        go ()
      | _ -> error lx "bad escape")
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      go ()
  in
  go ();
  Buffer.contents buf

let next (lx : t) : token * int =
  skip_ws lx;
  let line = lx.line in
  match peek_char lx with
  | None -> (Eof, line)
  | Some '"' -> (Str (read_string lx), line)
  | Some ':' ->
    advance lx;
    (Colon, line)
  | Some ',' ->
    advance lx;
    (Comma, line)
  | Some '.' ->
    advance lx;
    (Dot, line)
  | Some '{' ->
    advance lx;
    (Lbrace, line)
  | Some '}' ->
    advance lx;
    (Rbrace, line)
  | Some '(' ->
    advance lx;
    (Lparen, line)
  | Some ')' ->
    advance lx;
    (Rparen, line)
  | Some '[' ->
    advance lx;
    (Lbracket, line)
  | Some ']' ->
    advance lx;
    (Rbracket, line)
  | Some '*' ->
    advance lx;
    (Star, line)
  | Some c when c = '-' || (c >= '0' && c <= '9') ->
    let start = lx.pos in
    advance lx;
    while
      match peek_char lx with Some d when d >= '0' && d <= '9' -> true | _ -> false
    do
      advance lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    (try (Int (int_of_string s), line)
     with Failure _ -> error lx "bad integer %S" s)
  | Some c when is_ident_start c ->
    let start = lx.pos in
    advance lx;
    while
      match peek_char lx with Some d when is_ident_char d -> true | _ -> false
    do
      advance lx
    done;
    (Ident (String.sub lx.src start (lx.pos - start)), line)
  | Some c -> error lx "unexpected character %C" c

(* Tokenize everything up front; the parser walks the array. *)
let tokenize src : (token * int) array =
  let lx = create src in
  let out = ref [] in
  let rec go () =
    let t = next lx in
    out := t :: !out;
    match fst t with Eof -> () | _ -> go ()
  in
  go ();
  Array.of_list (List.rev !out)
