(** Class, method, and program declarations — the "class file" level of the
    simulated machine. Names are symbolic here; the VM's class loader
    resolves them to ids at boot. *)

(** An exception handler covering source pcs [h_from, h_upto). On a match,
    the operand stack is cleared, the exception pushed, and control moves
    to [h_target]. [h_class = None] catches everything. *)
type handler = {
  h_from : int;
  h_upto : int;
  h_target : int;
  h_class : string option;
}

(** A method declaration. Instance methods take their receiver as argument
    0. [m_sync] methods are wrapped by the VM compiler in
    monitorenter/monitorexit on the receiver plus an unlock-and-rethrow
    handler, as javac does. *)
type mdecl = {
  m_name : string;
  m_static : bool;
  m_args : Instr.ty array;  (** argument types, receiver included *)
  m_nlocals : int;  (** total local slots, at least the argument count *)
  m_ret : Instr.ty option;  (** [None] = void *)
  m_sync : bool;
  m_code : Instr.t array;
  m_handlers : handler list;
  m_lines : (int * int) list;  (** sorted (start pc, source line) table *)
}

val nargs : mdecl -> int

val returns : mdecl -> bool

type fdecl = { fd_name : string; fd_ty : Instr.ty }

type cdecl = {
  cd_name : string;
  cd_super : string option;  (** [None] = direct subclass of Object *)
  cd_fields : fdecl list;  (** instance fields declared by this class *)
  cd_statics : fdecl list;
  cd_methods : mdecl list;
}

(** A whole program. The main class must declare a static 0-argument
    method ["main"]. *)
type program = { classes : cdecl list; main_class : string }

(** Name of the builtin root class. *)
val object_class : string

(** Name of the builtin string class (one field, [chars : int[]]). *)
val string_class : string

(** Builtin throwable classes, rooted at ["Throwable"]. *)
val exception_classes : string list

(** Name of the class-initializer pseudo-method, run once at class
    initialization (["<clinit>"]). *)
val clinit_name : string

(** Smart constructor; raises [Invalid_argument] when [nlocals] is smaller
    than the argument count. *)
val mdecl :
  ?static:bool ->
  ?ret:Instr.ty ->
  ?sync:bool ->
  ?handlers:handler list ->
  ?lines:(int * int) list ->
  ?args:Instr.ty list ->
  nlocals:int ->
  string ->
  Instr.t list ->
  mdecl

val cdecl :
  ?super:string ->
  ?fields:fdecl list ->
  ?statics:fdecl list ->
  string ->
  mdecl list ->
  cdecl

val field : ?ty:Instr.ty -> string -> fdecl

(** Build a program; the main class defaults to the first class. *)
val program : ?main_class:string -> cdecl list -> program

val find_class : program -> string -> cdecl option

val find_method : cdecl -> string -> mdecl option

(** Source line covering a pc, per the method's line table. *)
val line_of_pc : mdecl -> int -> int option

(** A stable structural hash of a program. DejaVu stamps traces with it so
    a trace cannot be replayed against a different program. *)
val digest : program -> string
