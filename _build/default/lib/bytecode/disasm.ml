(* Human-readable listings of methods, classes, and programs. *)

let pp_method ppf (m : Decl.mdecl) =
  let sig_ =
    String.concat ","
      (List.map Instr.string_of_ty (Array.to_list m.m_args))
  in
  Fmt.pf ppf "@[<v 2>%s %s(%s)%s (locals %d)%s:@,"
    (if m.m_static then "static" else "method")
    m.m_name sig_
    (match m.m_ret with
    | None -> ""
    | Some ty -> ":" ^ Instr.string_of_ty ty)
    m.m_nlocals
    (if m.m_sync then " synchronized" else "");
  Array.iteri
    (fun pc ins ->
      let ln =
        match Decl.line_of_pc m pc with
        | Some n when List.mem_assoc pc m.m_lines -> Fmt.str " ; line %d" n
        | _ -> ""
      in
      Fmt.pf ppf "%4d: %a%s@," pc Instr.pp ins ln)
    m.m_code;
  List.iter
    (fun h ->
      Fmt.pf ppf "  catch %s [%d,%d) -> %d@,"
        (Option.value h.Decl.h_class ~default:"*")
        h.Decl.h_from h.Decl.h_upto h.Decl.h_target)
    m.m_handlers;
  Fmt.pf ppf "@]"

let pp_class ppf (c : Decl.cdecl) =
  Fmt.pf ppf "@[<v 2>class %s%s:@," c.cd_name
    (match c.cd_super with Some s -> " extends " ^ s | None -> "");
  List.iter
    (fun f ->
      Fmt.pf ppf "field %s : %s@," f.Decl.fd_name
        (Instr.string_of_ty f.Decl.fd_ty))
    c.cd_fields;
  List.iter
    (fun f ->
      Fmt.pf ppf "static %s : %s@," f.Decl.fd_name
        (Instr.string_of_ty f.Decl.fd_ty))
    c.cd_statics;
  List.iter (fun m -> Fmt.pf ppf "%a@," pp_method m) c.cd_methods;
  Fmt.pf ppf "@]"

let pp_program ppf (p : Decl.program) =
  Fmt.pf ppf "@[<v>program (main %s)@,%a@]" p.main_class
    (Fmt.list ~sep:Fmt.cut pp_class)
    p.classes

let program_to_string p = Fmt.str "%a" pp_program p
