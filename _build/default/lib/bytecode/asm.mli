(** A small assembler: method bodies are written as lists of items mixing
    instructions (with symbolic branch labels), label definitions, and
    source-line directives. *)

type item =
  | I of Instr.asm  (** an instruction; branch targets are label names *)
  | L of string  (** define a label at the next instruction *)
  | Line of int  (** following instructions carry this source line *)

exception Error of string

(** Resolve labels to instruction indices; returns the code and the line
    table. Raises {!Error} on duplicate or undefined labels, or if user
    code contains [Yieldpoint]. *)
val assemble : item list -> Instr.t array * (int * int) list

val i : Instr.asm -> item

val label : string -> item

val line : int -> item

(** Assemble and build a method declaration in one go. [args] lists the
    argument types, receiver first for instance methods. *)
val method_ :
  ?static:bool ->
  ?ret:Instr.ty ->
  ?sync:bool ->
  ?handlers:Decl.handler list ->
  ?args:Instr.ty list ->
  nlocals:int ->
  string ->
  item list ->
  Decl.mdecl

(** Exception handlers with label-based boundaries. *)
type ahandler = {
  ah_from : string;
  ah_upto : string;
  ah_target : string;
  ah_class : string option;
}

val method_with_handlers :
  ?static:bool ->
  ?ret:Instr.ty ->
  ?sync:bool ->
  ?args:Instr.ty list ->
  nlocals:int ->
  string ->
  item list ->
  ahandler list ->
  Decl.mdecl
