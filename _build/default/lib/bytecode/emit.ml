(* Emit a program as parseable assembly text — the inverse of Parser.
   parse_string (emit p) reconstructs a structurally identical program
   (same digest), which the test suite checks as a roundtrip property. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit_instr ppf label_of (ins : Instr.t) =
  let open Instr in
  let m = mnemonic ins in
  match ins with
  | Const n -> Fmt.pf ppf "%s %d" m n
  | Sconst s -> Fmt.pf ppf "%s \"%s\"" m (escape s)
  | Load n | Store n -> Fmt.pf ppf "%s %d" m n
  | If (_, t) | Ifz (_, t) | Ifnull t | Ifnonnull t | Ifrefeq t | Ifrefne t
  | Goto t ->
    Fmt.pf ppf "%s %s" m (label_of t)
  | New c | Checkcast c | Instanceof c | Nativecall c -> Fmt.pf ppf "%s %s" m c
  | Getfield (c, f) | Putfield (c, f) | Getstatic (c, f) | Putstatic (c, f)
  | Invoke (c, f) | Spawn (c, f) ->
    Fmt.pf ppf "%s %s.%s" m c f
  | Newarray ty -> Fmt.pf ppf "%s %s" m (string_of_ty ty)
  | _ -> Fmt.string ppf m

let emit_method ppf (md : Decl.mdecl) =
  (* label every branch target and every handler boundary *)
  let n = Array.length md.m_code in
  let labelled = Array.make (n + 1) false in
  Array.iter
    (fun ins -> match Instr.target ins with Some t -> labelled.(t) <- true | None -> ())
    md.m_code;
  List.iter
    (fun (h : Decl.handler) ->
      labelled.(h.h_from) <- true;
      labelled.(h.h_upto) <- true;
      labelled.(h.h_target) <- true)
    md.m_handlers;
  let label_of pc = Fmt.str "L%d" pc in
  let params =
    String.concat ", "
      (List.mapi
         (fun k ty -> Fmt.str "a%d: %s" k (Instr.string_of_ty ty))
         (Array.to_list md.m_args))
  in
  Fmt.pf ppf "  %s %s(%s)%s locals %d%s {@."
    (if md.m_static then "method" else "virtual")
    md.m_name params
    (match md.m_ret with
    | None -> ""
    | Some ty -> ": " ^ Instr.string_of_ty ty)
    md.m_nlocals
    (if md.m_sync then " sync" else "");
  Array.iteri
    (fun pc ins ->
      if labelled.(pc) then Fmt.pf ppf "  %s:@." (label_of pc);
      (match Decl.line_of_pc md pc with
      | Some ln when List.mem_assoc pc md.m_lines -> Fmt.pf ppf "    .line %d@." ln
      | _ -> ());
      Fmt.pf ppf "    %a@." (fun ppf -> emit_instr ppf label_of) ins)
    md.m_code;
  if labelled.(n) then Fmt.pf ppf "  %s:@." (label_of n);
  Fmt.pf ppf "  }@.";
  List.iter
    (fun (h : Decl.handler) ->
      Fmt.pf ppf "  catch %s from %s to %s goto %s@."
        (match h.h_class with Some c -> c | None -> "*")
        (label_of h.h_from) (label_of h.h_upto) (label_of h.h_target))
    md.m_handlers

let emit_class ppf (c : Decl.cdecl) =
  Fmt.pf ppf "class %s%s {@." c.cd_name
    (match c.cd_super with Some s -> " extends " ^ s | None -> "");
  List.iter
    (fun (f : Decl.fdecl) ->
      Fmt.pf ppf "  field %s: %s@." f.fd_name (Instr.string_of_ty f.fd_ty))
    c.cd_fields;
  List.iter
    (fun (f : Decl.fdecl) ->
      Fmt.pf ppf "  static %s: %s@." f.fd_name (Instr.string_of_ty f.fd_ty))
    c.cd_statics;
  List.iter (emit_method ppf) c.cd_methods;
  Fmt.pf ppf "}@."

let emit_program ppf (p : Decl.program) =
  Fmt.pf ppf "main %s@.@." p.main_class;
  List.iter
    (fun c ->
      emit_class ppf c;
      Fmt.pf ppf "@.")
    p.classes

let to_string p = Fmt.str "%a" emit_program p

let to_file path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc
