(** Emit a program as parseable assembly text — the inverse of {!Parser}:
    [Parser.parse_string (Emit.to_string p)] reconstructs a structurally
    identical program (same {!Decl.digest}). *)

val emit_program : Format.formatter -> Decl.program -> unit

val to_string : Decl.program -> string

val to_file : string -> Decl.program -> unit
