(* Replaying a server-style workload — the paper's target domain.

   The bank workload runs teller threads that transfer money between
   accounts chosen by external input. We record a session to a trace file
   (as a field engineer would), ship the file around, reload it, and replay
   the exact session: same transfers, same interleaving, same audit. Then
   we compare the trace cost against the section-5 comparator schemes.

     dune exec examples/server_replay.exe *)

let program = Workloads.Bank.program ~accounts:10 ~tellers:4 ~transfers:60 ()

let () =
  (* 1. a day at the bank, recorded *)
  let recording, trace = Dejavu.record ~seed:20260705 program in
  Fmt.pr "--- recorded session ---@.%s" recording.Dejavu.output;
  Fmt.pr "status: %s@." (Vm.string_of_status recording.Dejavu.status);

  (* 2. persist the trace like a crash report *)
  let path = Filename.temp_file "bank" ".dejavu" in
  Dejavu.Trace.save path trace;
  let stat_size =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Fmt.pr "@.trace file %s: %d bytes for %d executed instructions (%d inputs, %d switches)@."
    path stat_size
    (Vm.stats recording.Dejavu.vm).n_instr
    (Dejavu.Trace.sizes trace).n_inputs
    (Dejavu.Trace.sizes trace).n_switches;

  (* 3. back at the lab: reload and replay — no access to the original
     inputs or timing needed *)
  let loaded = Dejavu.Trace.load path in
  Sys.remove path;
  let replayed, leftovers = Dejavu.replay ~seed:1 program loaded in
  Fmt.pr "@.--- replayed session ---@.%s" replayed.Dejavu.output;
  Fmt.pr "audit identical: %b; machine state identical: %b; trace drained: %b@."
    (String.equal recording.Dejavu.output replayed.Dejavu.output)
    (recording.Dejavu.state_digest = replayed.Dejavu.state_digest)
    (leftovers = []);

  (* 4. what the same session would have cost under the other schemes *)
  Fmt.pr "@.--- trace cost comparison (words) ---@.";
  let dv_words = (Dejavu.Trace.sizes trace).total_words in
  let sm =
    let vm = Vm.create program in
    let b = Baselines.Switch_map.attach_record vm in
    ignore (Vm.run vm);
    (Baselines.Switch_map.sizes b).trace_words
  in
  let crew = (Baselines.Runner.record_crew ~seed:20260705 program).trace_words in
  let rl = (Baselines.Runner.record_read_log ~seed:20260705 program).trace_words in
  Fmt.pr "dejavu     : %6d@." dv_words;
  Fmt.pr "switch-map : %6d (Russinovich-Cogswell: every switch + thread map)@." sm;
  Fmt.pr "read-log   : %6d (Recap/PPD: value of every shared read)@." rl;
  Fmt.pr "crew       : %6d (Instant Replay: every shared access)@." crew
