(* Debugging a race with deterministic replay — the paper's motivating use
   case ("it's hard to fix something that doesn't even fail reliably").

   The racy-counter workload loses updates only under some interleavings.
   We hunt for a seed whose run loses updates, record THAT run, and then
   debug the recording: every replay reproduces the lost update, so we can
   set breakpoints, inspect the counter as it evolves, and even travel
   backwards in time.

     dune exec examples/race_debugging.exe *)

let threads = 3

let increments = 400

let expected = threads * increments

let program = Workloads.Counters.racy ~threads ~increments ()

let final_count output = int_of_string (String.trim output)

let () =
  (* 1. the bug is non-deterministic: hunt for a failing seed *)
  Fmt.pr "expected final count: %d@." expected;
  let failing_seed =
    let rec hunt seed =
      if seed > 500 then failwith "no failing seed found"
      else
        let vm, _ = Vm.execute ~seed program in
        let n = final_count (Vm.output vm) in
        if n < expected then (seed, n) else hunt (seed + 1)
    in
    hunt 1
  in
  let seed, lost_value = failing_seed in
  Fmt.pr "seed %d loses updates: count = %d@." seed lost_value;

  (* 2. record the failing run — from now on the bug reproduces always *)
  let session, recording =
    Debugger.Session.record_and_start ~seed program
  in
  Fmt.pr "recorded failing run: %s@." (String.trim recording.Dejavu.output);

  (* 3. replay up to the worker entry, then sample the counter as the
     replay proceeds; remote reflection reads the paused VM without
     touching it *)
  let bp =
    Debugger.Session.add_breakpoint session ~cls:"Racy" ~meth:"worker"
      Debugger.Breakpoint.Any_pc
  in
  (match Debugger.Session.continue_ session with
  | Debugger.Session.Hit b -> Fmt.pr "hit %a@." Debugger.Breakpoint.pp b
  | r -> Fmt.pr "%s@." (Debugger.Protocol.string_of_stop session r));
  (* done with the entry breakpoint (the other workers would hit it too) *)
  Debugger.Session.remove_breakpoint session bp.bp_id;
  let sp () = Debugger.Session.space session in
  let read_counter () =
    let module R = (val Remote_reflection.Remote_object.reflection (sp ())) in
    match R.get_static "Racy" "count" with
    | Remote_reflection.Reflect.Vint n -> n
    | _ -> assert false
  in
  Fmt.pr "counter at first worker entry: %d@." (read_counter ());
  (* watch the counter every 20k steps: deterministic timeline of the race *)
  Fmt.pr "timeline (step, counter):";
  let rec watch () =
    match Debugger.Session.step session 15000 with
    | Debugger.Session.Step_done ->
      Fmt.pr " (%d, %d)" session.steps (read_counter ());
      watch ()
    | _ -> Fmt.pr "@."
  in
  watch ();

  (* 4. time travel: revisit an earlier point of the same execution twice —
     deterministic replay lands on bit-identical states *)
  ignore (Debugger.Session.goto_step session 30000);
  let probe_a = (read_counter (), Debugger.Session.state_digest session) in
  ignore (Debugger.Session.goto_step session 70000);
  ignore (Debugger.Session.goto_step session 30000);
  let probe_b = (read_counter (), Debugger.Session.state_digest session) in
  Fmt.pr "probe at step 30000, twice: counter %d/%d, states %s@." (fst probe_a)
    (fst probe_b)
    (if probe_a = probe_b then "identical" else "DIFFERENT!");

  (* 5. run to the end: the replayed bug is exactly the recorded bug *)
  ignore (Debugger.Session.continue_ session);
  Fmt.pr "replayed final output: %s (recorded: %s)@."
    (String.trim (Debugger.Session.output session))
    (String.trim recording.Dejavu.output)
