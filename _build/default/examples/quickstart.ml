(* Quickstart: write a small multithreaded program against the bytecode DSL,
   run it live, record it with DejaVu, and replay it deterministically.

     dune exec examples/quickstart.exe *)

module I = Bytecode.Instr
module D = Bytecode.Decl
module A = Bytecode.Asm

let i = A.i

let l = A.label

(* Two threads race to append to a shared total; the winner of each round
   depends on where the preemptive thread switches land. *)
let program =
  let c = "Quick" in
  let worker =
    (* worker(id): for k in 1..5 { total = total * 10 + id } with a little
       busy work so the race window is real *)
    A.method_ ~args:[ I.Tint ] ~nlocals:2 "worker"
      [
        i (I.Const 5);
        i (I.Store 1);
        l "loop";
        i (I.Load 1);
        i (I.Ifz (I.Le, "end"));
        i (I.Getstatic (c, "total"));
        i (I.Const 10);
        i I.Mul;
        i (I.Load 0);
        i I.Add;
        i (I.Putstatic (c, "total"));
        (* busy work *)
        i (I.Const 400);
        i (I.Invoke (c, "spin"));
        i (I.Load 1);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:2 "main"
      [
        i (I.Const 1);
        i (I.Spawn (c, "worker"));
        i (I.Store 0);
        i (I.Const 2);
        i (I.Spawn (c, "worker"));
        i (I.Store 1);
        i (I.Load 0);
        i I.Join;
        i (I.Load 1);
        i I.Join;
        i (I.Sconst "interleaving was: ");
        i I.Prints;
        i (I.Getstatic (c, "total"));
        i I.Print;
        i I.Ret;
      ]
  in
  D.program
    [ D.cdecl c ~statics:[ D.field "total" ] [ Workloads.Util.spin_method; worker; main ] ]

let () =
  (* 1. live runs under different environment seeds: genuinely different
     interleavings *)
  Fmt.pr "--- live runs ---@.";
  List.iter
    (fun seed ->
      let vm, st = Vm.execute ~seed program in
      Fmt.pr "seed %d [%s]: %s" seed (Vm.string_of_status st) (Vm.output vm))
    [ 1; 2; 3; 4 ];

  (* 2. record one of them *)
  let seed = 3 in
  let recording, trace = Dejavu.record ~seed program in
  Fmt.pr "@.--- recorded run (seed %d) ---@.%s" seed recording.Dejavu.output;
  Fmt.pr "trace: %a@." Dejavu.Trace.pp_sizes (Dejavu.Trace.sizes trace);

  (* 3. replay it under a completely different environment: the recorded
     interleaving is reproduced exactly *)
  let replayed, leftovers = Dejavu.replay ~seed:987654 program trace in
  Fmt.pr "@.--- replayed run ---@.%s" replayed.Dejavu.output;
  Fmt.pr "outputs identical: %b@."
    (String.equal recording.Dejavu.output replayed.Dejavu.output);
  Fmt.pr "full machine states identical: %b@."
    (recording.Dejavu.state_digest = replayed.Dejavu.state_digest);
  Fmt.pr "event sequences identical: %b (%d events)@."
    (recording.Dejavu.obs_digest = replayed.Dejavu.obs_digest)
    recording.Dejavu.obs_count;
  Fmt.pr "trace drained: %b@." (leftovers = [])
