(* Remote reflection (paper section 3): inspect a paused application VM
   from a separate "tool" context through a ptrace-like address space —
   without the application VM executing a single instruction on the tool's
   behalf, and without perturbing its state.

     dune exec examples/remote_inspection.exe *)

module I = Bytecode.Instr
module D = Bytecode.Decl
module A = Bytecode.Asm

let i = A.i

(* An application that builds an order book and then parks. *)
let program =
  let c = "Shop" in
  let order = D.cdecl "Order" ~fields:[ D.field "id"; D.field "qty"; D.field ~ty:(I.Tobj "Order") "next" ] [] in
  let main =
    A.method_ ~nlocals:3 "main"
      ([ i (I.Sconst "open"); i (I.Putstatic (c, "status")) ]
      @ (* three orders, linked *)
      List.concat_map
        (fun (id, qty) ->
          [
            i (I.New "Order");
            i (I.Store 0);
            i (I.Load 0);
            i (I.Const id);
            i (I.Putfield ("Order", "id"));
            i (I.Load 0);
            i (I.Const qty);
            i (I.Putfield ("Order", "qty"));
            i (I.Load 0);
            i (I.Getstatic (c, "book"));
            i (I.Putfield ("Order", "next"));
            i (I.Load 0);
            i (I.Putstatic (c, "book"));
          ])
        [ (101, 5); (102, 2); (103, 9) ]
      @ [
          (* park forever: wait on a monitor nobody notifies *)
          i (I.New "Object");
          i (I.Store 1);
          i (I.Load 1);
          i I.Monitorenter;
          i (I.Load 1);
          i I.Wait;
          i I.Pop;
          i (I.Load 1);
          i I.Monitorexit;
          i I.Ret;
        ])
  in
  D.program ~main_class:c
    [
      order;
      D.cdecl c
        ~statics:
          [ D.field ~ty:(I.Tobj "String") "status"; D.field ~ty:(I.Tobj "Order") "book" ]
        [ main ];
    ]

let () =
  (* the "application JVM": runs until everything is parked *)
  let app_vm = Vm.create program in
  ignore (Vm.run app_vm);
  Fmt.pr "application VM stopped: %s@." (Vm.string_of_status (Vm.status app_vm));
  let fingerprint_before = Vm.digest app_vm in

  (* the "tool JVM": owns only an address space onto the application *)
  let space = Remote_reflection.Address_space.of_vm app_vm in
  let module R = (val Remote_reflection.Remote_object.reflection space) in

  (* 1. walk the remote object graph with ordinary reflection code *)
  Fmt.pr "@.--- remote inspection ---@.";
  (match R.get_static "Shop" "status" with
  | Remote_reflection.Reflect.Vobj s -> Fmt.pr "Shop.status = %S@." (R.string_value s)
  | v -> Fmt.pr "Shop.status = %s@." (R.render_value v));
  let rec walk v =
    match v with
    | Remote_reflection.Reflect.Vobj o ->
      (match (R.get_field o "id", R.get_field o "qty") with
      | Remote_reflection.Reflect.Vint id, Remote_reflection.Reflect.Vint qty ->
        Fmt.pr "  order #%d x%d@." id qty
      | _ -> ());
      walk (R.get_field o "next")
    | _ -> ()
  in
  walk (R.get_static "Shop" "book");
  Fmt.pr "rendered: %s@."
    (R.render_value ~depth:4 (R.get_static "Shop" "book"));

  (* 2. threads and stacks, remotely *)
  Fmt.pr "@.--- remote thread table ---@.";
  for tid = 0 to space.thread_count () - 1 do
    let ts = space.thread tid in
    Fmt.pr "t%d %-8s %-10s@." ts.ts_tid ts.ts_name ts.ts_state;
    List.iter
      (fun (f : Remote_reflection.Remote_frames.frame) ->
        Fmt.pr "    %s pc=%d locals=[%s]@." f.rf_meth.rm_name f.rf_pc
          (String.concat ";" (Array.to_list (Array.map string_of_int f.rf_locals))))
      (Remote_reflection.Remote_frames.frames space tid)
  done;

  (* 3. the point of it all: the application VM was never touched *)
  Fmt.pr "@.remote words peeked: %d@." space.reads;
  Fmt.pr "application VM state digest unchanged: %b@."
    (Vm.digest app_vm = fingerprint_before);

  (* 4. contrast: the same queries through the in-process interface give
     the same answers (one reflection interface, two data sources) *)
  let module L = (val Remote_reflection.Local_object.reflection app_vm) in
  Fmt.pr "in-process reflection agrees: %b@."
    (R.render_value ~depth:4 (R.get_static "Shop" "book")
    = L.render_value ~depth:4 (L.get_static "Shop" "book"))
