examples/race_debugging.ml: Debugger Dejavu Fmt Remote_reflection String Vm Workloads
