examples/remote_inspection.mli:
