examples/race_debugging.mli:
