examples/remote_inspection.ml: Array Bytecode Fmt List Remote_reflection String Vm
