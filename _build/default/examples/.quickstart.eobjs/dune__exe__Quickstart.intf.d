examples/quickstart.mli:
