examples/server_replay.ml: Baselines Dejavu Filename Fmt String Sys Vm Workloads
