examples/quickstart.ml: Bytecode Dejavu Fmt List String Vm Workloads
