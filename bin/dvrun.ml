(* dvrun — run, record, replay, and compare workloads on the simulated VM.

     dvrun list                         catalogue of workloads
     dvrun run NAME [--seed N]          live run: output, status, stats
     dvrun record NAME -o T [--seed N]  record a run into trace file T
     dvrun replay NAME -i T             replay a recorded trace
     dvrun compare NAME --seeds A,B,..  run under several seeds, diff outputs
     dvrun disasm NAME                  disassemble the workload's bytecode *)

open Cmdliner

(* A workload is either a catalogue entry or a path to a .djv assembly file
   (see lib/bytecode/parser.ml for the language). *)
let find_workload name =
  if Filename.check_suffix name ".djv" then begin
    match Bytecode.Parser.parse_file name with
    | program ->
      {
        Workloads.Registry.name;
        description = "from file";
        program;
        natives = [];
      }
    | exception Bytecode.Parser.Error (msg, line) ->
      Fmt.epr "%s:%d: %s@." name line msg;
      Stdlib.exit 2
    | exception Sys_error msg ->
      Fmt.epr "%s@." msg;
      Stdlib.exit 2
  end
  else
    match Workloads.Registry.find name with
    | Some e -> e
    | None ->
      Fmt.epr "unknown workload %S; try a .djv file or: %s@." name
        (String.concat ", " (Workloads.Registry.names ()));
      Stdlib.exit 2

(* Malformed trace files are user error, not an internal failure. *)
let load_trace path =
  match Dejavu.Trace.load path with
  | t -> t
  | exception Dejavu.Trace.Format_error msg ->
    Fmt.epr "%s: malformed trace (%s)@." path msg;
    Stdlib.exit 2
  | exception Sys_error msg ->
    Fmt.epr "%s@." msg;
    Stdlib.exit 2

let pp_stats ppf (s : Vm.Rt.stats) =
  Fmt.pf ppf
    "instr=%d yields=%d switches=%d preempts=%d gcs=%d allocs=%d(%dw)@\n\
     compiled=%d classes=%d stack-grows=%d clock-reads=%d inputs=%d natives=%d \
     monitor-ops=%d exceptions=%d@\n\
     regir=%d mon-in-region=%d inline-splices=%d"
    s.n_instr s.n_yield s.n_switch s.n_preempt_req s.n_gc s.n_alloc_objects
    s.n_alloc_words s.n_compiled_methods s.n_classes_initialized
    s.n_stack_grows s.n_clock_reads s.n_input_reads s.n_native_calls
    s.n_monitor_ops s.n_exceptions s.n_regir_instr s.n_regir_mon
    s.n_regir_inline

(* The config a subcommand's flags select; only --no-regir so far. *)
let config_of_flags no_regir =
  if no_regir then { Vm.Rt.default_config with Vm.Rt.regir = false }
  else Vm.Rt.default_config

let run_live name seed no_regir verbose =
  let e = find_workload name in
  let config = config_of_flags no_regir in
  let t0 = Sys.time () in
  let vm, st = Vm.execute ~config ~natives:e.natives ~seed e.program in
  let dt = Sys.time () -. t0 in
  Fmt.pr "--- output ---@.%s--- status: %s ---@." (Vm.output vm)
    (Vm.string_of_status st);
  if verbose then begin
    Fmt.pr "%a@." pp_stats (Vm.stats vm);
    let n = (Vm.stats vm).n_instr in
    Fmt.pr "cpu %.3fs  %.2f Mi/s@." dt
      (if dt > 0. then float_of_int n /. dt /. 1e6 else 0.)
  end;
  match st with Vm.Rt.Fatal _ -> Stdlib.exit 1 | _ -> ()

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"environment seed")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print stats")

let no_regir_arg =
  Arg.(
    value & flag
    & info [ "no-regir" ]
        ~doc:
          "disable the register-IR compile tier (stack-bytecode dispatch \
           only); traces and digests are identical either way")

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let list_cmd =
  let doc = "list available workloads" in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (e : Workloads.Registry.entry) ->
              Fmt.pr "%-24s %s@." e.name e.description)
            (Lazy.force Workloads.Registry.all))
      $ const ())

let run_cmd =
  let doc = "run a workload live" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run_live $ name_arg $ seed_arg $ no_regir_arg $ verbose_arg)

(* With --compiled, every method is force-compiled (charging the same
   virtual-clock cost a run's first visit would) and its post-fusion kinstr
   stream prints next to the source bytecode: fused superinstruction heads
   marked [*] with shadowed originals behind them, inline-cache sites
   marked [ic], injected yield points marked [; yp]. *)
let disasm name compiled =
  let e = find_workload name in
  if not compiled then Fmt.pr "%a@." Bytecode.Disasm.pp_program e.program
  else begin
    let vm = Vm.create ~natives:e.natives e.program in
    Array.iter
      (fun (m : Vm.Rt.rmethod) -> ignore (Vm.Compile.compile vm m))
      vm.Vm.Rt.methods;
    Array.iter
      (fun (m : Vm.Rt.rmethod) ->
        Fmt.pr "%a@.%a@.@." Bytecode.Disasm.pp_method m.rm_decl
          (Vm.Kdisasm.pp_compiled vm) m)
      vm.Vm.Rt.methods
  end

let compiled_arg =
  Arg.(
    value & flag
    & info [ "compiled" ]
        ~doc:"show the post-fusion compiled kinstr stream for each method")

let disasm_cmd =
  let doc = "disassemble a workload" in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const disasm $ name_arg $ compiled_arg)

let compare_cmd =
  let doc = "run under several seeds and report output differences" in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4; 5 ]
      & info [ "seeds" ] ~docv:"A,B,.." ~doc:"seeds to try")
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const (fun name seeds ->
          let e = find_workload name in
          let outs =
            List.map
              (fun seed ->
                let vm, st = Vm.execute ~natives:e.natives ~seed e.program in
                (seed, Vm.output vm, st))
              seeds
          in
          List.iter
            (fun (seed, out, st) ->
              Fmt.pr "seed %d [%s]: %s@." seed (Vm.string_of_status st)
                (String.concat " | "
                   (String.split_on_char '\n' (String.trim out))))
            outs;
          let distinct =
            List.sort_uniq compare (List.map (fun (_, o, _) -> o) outs)
          in
          Fmt.pr "distinct outputs: %d of %d@." (List.length distinct)
            (List.length outs))
      $ name_arg $ seeds_arg)

let record_cmd =
  let doc = "record a run into a trace file" in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"TRACE" ~doc:"trace file to write")
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(
      const (fun name seed no_regir out verbose ->
          let e = find_workload name in
          let config = config_of_flags no_regir in
          (* streamed: the recorder never holds the whole trace in memory,
             and a failed run leaves no partial file *)
          let run, sizes =
            Dejavu.record_to ~config ~natives:e.natives ~seed ~path:out
              e.program
          in
          Fmt.pr "--- output ---@.%s--- status: %s ---@." run.Dejavu.output
            (Vm.string_of_status run.status);
          Fmt.pr "trace -> %s (%a)@." out Dejavu.Trace.pp_sizes sizes;
          if verbose then Fmt.pr "%a@." pp_stats (Vm.stats run.vm))
      $ name_arg $ seed_arg $ no_regir_arg $ out_arg $ verbose_arg)

let replay_cmd =
  let doc = "replay a recorded trace" in
  let in_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"TRACE" ~doc:"trace file to read")
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const (fun name inp no_regir verbose ->
          let e = find_workload name in
          let config = config_of_flags no_regir in
          (* streamed: O(chunk) trace memory during replay *)
          let run, leftovers =
            match
              Dejavu.replay_from ~config ~natives:e.natives ~path:inp e.program
            with
            | r -> r
            | exception Dejavu.Trace.Format_error msg ->
              Fmt.epr "%s: malformed trace (%s)@." inp msg;
              Stdlib.exit 2
            | exception Sys_error msg ->
              Fmt.epr "%s@." msg;
              Stdlib.exit 2
          in
          Fmt.pr "--- output ---@.%s--- status: %s ---@." run.Dejavu.output
            (Vm.string_of_status run.status);
          if leftovers <> [] then
            Fmt.pr "warning: %s@." (String.concat "; " leftovers);
          if verbose then Fmt.pr "%a@." pp_stats (Vm.stats run.vm))
      $ name_arg $ in_arg $ no_regir_arg $ verbose_arg)

let verify_cmd =
  let doc = "record then replay, checking the accuracy criterion" in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const (fun name seed ->
          let e = find_workload name in
          let rt =
            Dejavu.verify_roundtrip ~natives:e.natives ~seed e.program
          in
          Fmt.pr "%a@." Dejavu.pp_roundtrip rt;
          if not (Dejavu.ok rt) then Stdlib.exit 1)
      $ name_arg $ seed_arg)

let emit_cmd =
  let doc = "emit a workload as textual assembly (.djv)" in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(
      const (fun name ->
          let e = find_workload name in
          print_string (Bytecode.Emit.to_string e.program))
      $ name_arg)

let dump_cmd =
  let doc = "dump a trace file's contents in human-readable form" in
  let in_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"trace file to dump")
  in
  Cmd.v (Cmd.info "trace-dump" ~doc)
    Term.(
      const (fun inp ->
          let t = load_trace inp in
          Fmt.pr "program digest: %s@." t.Dejavu.Trace.program_digest;
          Fmt.pr "race audit: %s@."
            (match t.Dejavu.Trace.analysis_hash with
            | "" -> "(unaudited)"
            | h -> h);
          Fmt.pr "%a@." Dejavu.Trace.pp_sizes (Dejavu.Trace.sizes t);
          Fmt.pr "@.-- preemptive switches (yield-point deltas) --@.";
          Array.iteri
            (fun k d ->
              Fmt.pr "%6d" d;
              if (k + 1) mod 10 = 0 then Fmt.pr "@.")
            t.Dejavu.Trace.switches;
          Fmt.pr "@.@.-- wall-clock reads --@.";
          let n = Array.length t.Dejavu.Trace.clocks / 2 in
          for k = 0 to n - 1 do
            Fmt.pr "%-6s %d@."
              (Dejavu.Trace.reason_name t.Dejavu.Trace.clocks.(2 * k))
              t.Dejavu.Trace.clocks.((2 * k) + 1)
          done;
          Fmt.pr "@.-- inputs --@.";
          Array.iter (fun v -> Fmt.pr "%d " v) t.Dejavu.Trace.inputs;
          Fmt.pr "@.@.-- native outcomes --@.";
          let tape =
            Dejavu.Tape.of_array "natives" t.Dejavu.Trace.natives
          in
          (try
             while Dejavu.Tape.remaining tape > 0 do
               let id, o = Dejavu.Trace.read_native_outcome tape in
               Fmt.pr "native %d -> %s, %d callback(s)@." id
                 (match o.Vm.Rt.no_result with
                 | Some v -> string_of_int v
                 | None -> "void")
                 (List.length o.Vm.Rt.no_callbacks)
             done
           with Dejavu.Trace.End_of_tape _ | Dejavu.Trace.Format_error _ ->
             Fmt.pr "(malformed native tape)@."))
      $ in_arg)

(* --- lint: static race audit (lockset + thread-escape) --- *)

(* '*' matches any substring; everything else is literal. *)
let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pat.[i] with
      | '*' ->
        let rec try_ k = k <= ns && (go (i + 1) k || try_ (k + 1)) in
        try_ j
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg ->
    Fmt.epr "%s@." msg;
    Stdlib.exit 2

(* Allow-entries for one workload from the committed baseline:
   { "workloads": [ { "name", "summary_hash", "allow": [ { "key", "why" } ],
     "allow_monitors": [...], "allow_deadlocks": [...] } ] }. [field] names
   which allow array to read; keys may use '*' globs. *)
let baseline_allows ~field baseline wl_name =
  let open Analysis.Json in
  member "workloads" baseline |> to_list
  |> List.filter (fun w -> to_string_opt (member "name" w) = Some wl_name)
  |> List.concat_map (fun w ->
         member field w |> to_list
         |> List.filter_map (fun a -> to_string_opt (member "key" a)))

let lint name_opt all json allows allow_monitors allow_deadlocks baseline_path
    =
  let entries =
    if all then Lazy.force Workloads.Registry.all
    else
      match name_opt with
      | Some n -> [ find_workload n ]
      | None ->
        Fmt.epr "lint: give a WORKLOAD (or .djv file) or --all@.";
        Stdlib.exit 2
  in
  let baseline =
    Option.map
      (fun p ->
        match Analysis.Json.parse (read_file p) with
        | j -> j
        | exception Analysis.Json.Parse_error msg ->
          Fmt.epr "%s: malformed baseline (%s)@." p msg;
          Stdlib.exit 2)
      baseline_path
  in
  let results =
    List.map
      (fun (e : Workloads.Registry.entry) ->
        (e.name, Analysis.run ~name:e.name e.program))
      entries
  in
  if json then begin
    match results with
    | [ (_, r) ] -> print_endline (Analysis.Json.to_string (Analysis.Report.to_json r))
    | _ ->
      print_endline
        (Analysis.Json.to_string
           (Analysis.Json.List
              (List.map (fun (_, r) -> Analysis.Report.to_json r) results)))
  end
  else List.iter (fun (_, r) -> Fmt.pr "%a" Analysis.Report.pp r) results;
  (* Racy, monitor-depth, and deadlock findings each fail the run unless
     matched by their own --allow-* flags or baseline allow array. *)
  let gate ~field ~flags keys_of =
    List.concat_map
      (fun (name, r) ->
        let allowed =
          flags
          @ (match baseline with
            | Some b -> baseline_allows ~field b name
            | None -> [])
        in
        keys_of r
        |> List.filter (fun k -> not (List.exists (fun p -> glob_match p k) allowed))
        |> List.map (fun k -> (name, k)))
      results
  in
  let failures =
    List.map (fun (n, k) -> ("racy", n, k))
      (gate ~field:"allow" ~flags:allows Analysis.Report.racy_keys)
    @ List.map (fun (n, k) -> ("monitor", n, k))
        (gate ~field:"allow_monitors" ~flags:allow_monitors
           Analysis.Report.monitor_keys)
    @ List.map (fun (n, k) -> ("deadlock", n, k))
        (gate ~field:"allow_deadlocks" ~flags:allow_deadlocks
           Analysis.Report.deadlock_keys)
  in
  if failures <> [] then begin
    Fmt.epr "lint: %d unallowed finding(s):@." (List.length failures);
    List.iter (fun (kind, n, k) -> Fmt.epr "  %s: [%s] %s@." n kind k) failures;
    Stdlib.exit 1
  end

let lint_cmd =
  let doc = "statically audit a workload for data races (lockset + escape)" in
  let name_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"lint every registry workload")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"machine-readable JSON output")
  in
  let allow_arg =
    Arg.(
      value & opt_all string []
      & info [ "allow" ] ~docv:"GLOB"
          ~doc:"accept racy findings whose key matches GLOB (repeatable)")
  in
  let allow_monitor_arg =
    Arg.(
      value & opt_all string []
      & info [ "allow-monitor" ] ~docv:"GLOB"
          ~doc:
            "accept monitor-depth issues whose 'where: what' matches GLOB \
             (repeatable)")
  in
  let allow_deadlock_arg =
    Arg.(
      value & opt_all string []
      & info [ "allow-deadlock" ] ~docv:"GLOB"
          ~doc:
            "accept deadlock cycles whose 'lock -> lock' key matches GLOB \
             (repeatable)")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "accept racy/monitor/deadlock findings allow-listed in this \
             baseline JSON (arrays: allow, allow_monitors, allow_deadlocks)")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const lint $ name_opt_arg $ all_arg $ json_arg $ allow_arg
      $ allow_monitor_arg $ allow_deadlock_arg $ baseline_arg)

(* --- explore: systematic schedule exploration --- *)

let explore name seed pb db no_dpor max_schedules max_artifacts out shards
    expect_failure no_regir =
  let e = find_workload name in
  let config = config_of_flags no_regir in
  let out = if out = "" then None else Some out in
  let dpor = not no_dpor in
  let rep =
    if shards <= 1 then
      Explore.Driver.run ~config ~seed ~pb ~db ~dpor ~max_schedules
        ~max_artifacts ?out e
    else
      Server.Explore_farm.run ~shards ~config ~seed ~pb ~db ~dpor
        ~max_schedules ~max_artifacts ?out e
  in
  Fmt.pr "%a" Explore.Driver.pp_report rep;
  if expect_failure then begin
    let reproduced =
      List.exists
        (fun (f : Explore.Driver.failure) ->
          f.fl_kind = Explore.Driver.Fault && f.fl_replay_ok = Some true)
        rep.Explore.Driver.rp_failures
    in
    if not reproduced then begin
      Fmt.epr
        "explore: expected a fault with a replay-verified trace; found none \
         (give --out DIR so traces are emitted)@.";
      Stdlib.exit 1
    end
  end

let explore_cmd =
  let doc =
    "systematically explore thread schedules (DPOR-pruned, bounded search)"
  in
  let pb_arg =
    Arg.(
      value & opt int 2
      & info [ "pb" ] ~docv:"N" ~doc:"preemption bound per schedule")
  in
  let db_arg =
    Arg.(
      value & opt int 1
      & info [ "db" ] ~docv:"N" ~doc:"delay bound (non-FIFO dispatch picks)")
  in
  let no_dpor_arg =
    Arg.(
      value & flag
      & info [ "no-dpor" ]
          ~doc:
            "disable conflict-based pruning (exhaustive bounded search; \
             same outcomes, many more schedules)")
  in
  let max_schedules_arg =
    Arg.(
      value & opt int 2000
      & info [ "max-schedules" ] ~docv:"N" ~doc:"schedule budget")
  in
  let max_artifacts_arg =
    Arg.(
      value & opt int 4
      & info [ "max-artifacts" ] ~docv:"N"
          ~doc:"trace/witness pairs to emit at most")
  in
  let out_arg =
    Arg.(
      value & opt string ""
      & info [ "out" ] ~docv:"DIR"
          ~doc:"emit failing schedules as replayable traces + witnesses here")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"fan the frontier out across N farm shards (1 = sequential)")
  in
  let expect_failure_arg =
    Arg.(
      value & flag
      & info [ "expect-failure" ]
          ~doc:
            "exit 1 unless a fault was found AND its emitted trace replayed \
             to the identical failure (CI smoke mode)")
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const explore $ name_arg $ seed_arg $ pb_arg $ db_arg $ no_dpor_arg
      $ max_schedules_arg $ max_artifacts_arg $ out_arg $ shards_arg
      $ expect_failure_arg $ no_regir_arg)

(* --- the replay farm: batch / serve / submit --- *)

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N" ~doc:"worker domains (one VM each)")

let out_dir_arg =
  Arg.(
    value & opt string "_batch"
    & info [ "out" ] ~docv:"DIR" ~doc:"directory for recorded traces")

let batch_cmd =
  let doc = "record every registry workload across N shard domains" in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS" ~doc:"per-job deadline in seconds")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N" ~doc:"retry budget per job")
  in
  let rounds_arg =
    Arg.(
      value & opt int 1
      & info [ "rounds" ] ~docv:"N"
          ~doc:"record the registry N times over (rounds > 1 reuse warm VMs)")
  in
  let cold_arg =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:"boot a fresh VM per job instead of resetting warm shard pools")
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const (fun shards seed no_regir out_dir deadline_s max_retries rounds
                cold ->
          let config = config_of_flags no_regir in
          let rep =
            Server.Batch.run_registry ~shards ~config ~seed ?deadline_s
              ~max_retries ~warm:(not cold) ~rounds ~out_dir ()
          in
          Fmt.pr "%a@." Server.Batch.pp_report rep;
          if not rep.Server.Batch.ok then Stdlib.exit 1)
      $ shards_arg $ seed_arg $ no_regir_arg $ out_dir_arg $ deadline_arg
      $ retries_arg $ rounds_arg $ cold_arg)

let socket_arg =
  Arg.(
    value & opt string "/tmp/dvrun.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let serve_cmd =
  let doc = "serve record/replay/roundtrip/lint jobs over a Unix socket" in
  let max_conns_arg =
    Arg.(
      value & opt int 0
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"exit after N connections (0 = serve forever)")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const (fun shards socket_path out_dir max_conns ->
          let srv =
            Server.Serve.create ~shards ~socket_path ~out_dir ()
          in
          Fmt.pr "serving on %s (%d shards, traces -> %s)@." socket_path
            shards out_dir;
          let max_conns = if max_conns = 0 then None else Some max_conns in
          Fun.protect
            ~finally:(fun () -> Server.Serve.shutdown srv)
            (fun () -> Server.Serve.serve ?max_conns srv);
          Fmt.pr "%a@." Server.Stats.pp_view
            (Server.Stats.view (Server.Serve.stats srv)))
      $ shards_arg $ socket_arg $ out_dir_arg $ max_conns_arg)

let submit_cmd =
  let doc = "submit jobs to a running dvrun serve and print the replies" in
  let op_arg =
    let ops =
      [ ("record", Server.Protocol.Op_record);
        ("replay", Server.Protocol.Op_replay);
        ("roundtrip", Server.Protocol.Op_roundtrip);
        ("lint", Server.Protocol.Op_lint);
        ("explore", Server.Protocol.Op_explore) ]
    in
    Arg.(
      required
      & pos 0 (some (enum ops)) None
      & info [] ~docv:"OP"
          ~doc:"record | replay | roundtrip | lint | explore")
  in
  let workloads_arg =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"WORKLOAD" ~doc:"workloads (default: whole registry)")
  in
  let trace_arg =
    Arg.(
      value & opt string ""
      & info [ "trace" ] ~docv:"PATH"
          ~doc:"server-side trace path (replay jobs)")
  in
  let deadline_ms_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"per-job deadline (0 = none)")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N" ~doc:"retry budget per job")
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const (fun socket_path op workloads seed trace deadline_ms retries ->
          let workloads =
            if workloads <> [] then workloads
            else Workloads.Registry.names ()
          in
          let reqs =
            List.map
              (fun w ->
                Server.Protocol.Submit
                  {
                    q_op = op;
                    q_workload = w;
                    q_seed = seed;
                    q_trace = trace;
                    q_deadline_ms = deadline_ms;
                    q_max_retries = retries;
                  })
              workloads
          in
          let replies = Server.Serve.client_submit ~socket_path reqs in
          let failed = ref 0 in
          List.iter
            (fun (r : Server.Protocol.reply) ->
              if r.p_outcome <> 0 then incr failed;
              Fmt.pr "%-24s %-9s %-10s %2d att  %7.1f ms  %s %s@."
                r.p_workload
                (Server.Protocol.string_of_op r.p_op)
                (match r.p_outcome with
                | 0 -> "done"
                | 1 -> "failed"
                | 2 -> "timeout"
                | _ -> "cancelled")
                r.p_attempts
                (float_of_int r.p_latency_us /. 1e3)
                r.p_status
                (if r.p_digest = "" then ""
                 else String.sub r.p_digest 0 (min 12 (String.length r.p_digest))))
            replies;
          if !failed > 0 then Stdlib.exit 1)
      $ socket_arg $ op_arg $ workloads_arg $ seed_arg $ trace_arg
      $ deadline_ms_arg $ retries_arg)

let main_cmd =
  let doc = "DejaVu replay platform driver (simulated Jalapeño VM)" in
  Cmd.group (Cmd.info "dvrun" ~doc)
    [
      list_cmd; run_cmd; disasm_cmd; emit_cmd; compare_cmd; record_cmd;
      replay_cmd; verify_cmd; dump_cmd; lint_cmd; explore_cmd; batch_cmd;
      serve_cmd; submit_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
