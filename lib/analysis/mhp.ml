(* May-happen-in-parallel over the thread structure.

   A program point is abstracted as a {!point}: the root (thread-creation
   site) it executes under, the may-set of roots spawned so far on some
   path to it, and the must-set of Once roots already joined on every path.
   Both sets are inherited across spawn edges by the lockset pass (the
   child's entry state unions/intersects the parent's sets at the spawn
   site), so ordering established in an ancestor is visible here without a
   transitive closure.

   Two points are ordered — cannot overlap — when one of three facts holds:

   - same Once root: both execute in the one thread of a once-spawned root,
     so they are sequential in its program order;
   - before-spawn-of: [a]'s root is an ancestor of [b]'s root via the
     parent chain, [a]'s root is Once (a unique thread executes the hop's
     spawn site), and the hop — the ancestor of [b] whose parent is [a]'s
     root — is absent from [a]'s spawned may-set, i.e. no path reaches [a]
     after that spawn, so [a] precedes the spawn and hence all of [b];
   - joined-before: [b]'s root is Once and sits in [a]'s joined must-set,
     so [b]'s whole thread terminated before [a] on every path.

   [may_overlap] is the negation; everything unknown (ambiguous parents,
   Many roots, unmerged sets) errs toward overlap. The point join (used on
   control-flow merges upstream, pinned monotone by QCheck downstream)
   unions spawned and intersects joined, which only ever grows
   [may_overlap]: each ordering fact is antitone in spawned and monotone
   in joined. *)

type point = {
  p_root : int;
  p_spawned : int list;  (* may-set, sorted *)
  p_joined : int list;  (* must-set of Once roots, sorted *)
}

type t = {
  n_roots : int;
  once : bool array;  (* root id -> spawned at most once *)
  parent : int array;  (* root id -> spawning root; -1 main, -2 ambiguous *)
}

let build (cg : Callgraph.t) : t =
  let roots = cg.Callgraph.roots in
  {
    n_roots = Array.length roots;
    once = Array.map (fun r -> r.Callgraph.r_mult = Callgraph.Once) roots;
    parent = Array.map (fun r -> r.Callgraph.r_parent) roots;
  }

(* Test constructor: a synthetic thread structure. *)
let make ~once ~parent : t =
  if Array.length once <> Array.length parent then
    invalid_arg "Mhp.make: array length mismatch";
  { n_roots = Array.length once; once; parent }

let point ~root ~spawned ~joined =
  {
    p_root = root;
    p_spawned = Lockset.norm_sorted spawned;
    p_joined = Lockset.norm_sorted joined;
  }

let of_access (a : Lockset.access) =
  {
    p_root = a.Lockset.acc_root;
    p_spawned = a.Lockset.acc_spawned;
    p_joined = a.Lockset.acc_joined;
  }

let of_acq (q : Lockset.acq) =
  {
    p_root = q.Lockset.aq_root;
    p_spawned = q.Lockset.aq_spawned;
    p_joined = q.Lockset.aq_joined;
  }

(* Control-flow merge of two points of the same thread. *)
let join a b =
  {
    p_root = a.p_root;
    p_spawned = Lockset.union_sorted a.p_spawned b.p_spawned;
    p_joined = Lockset.inter_sorted a.p_joined b.p_joined;
  }

let valid_root t r = r >= 0 && r < t.n_roots

let once t r = valid_root t r && t.once.(r)

(* [a] executes before the spawn that creates [b]'s thread. *)
let before_spawn_of t a b =
  valid_root t a.p_root && valid_root t b.p_root && a.p_root <> b.p_root
  && once t a.p_root
  &&
  (* walk b's ancestor chain looking for the hop whose parent is a.p_root *)
  let rec walk hop fuel =
    fuel > 0
    && valid_root t hop
    &&
    let p = t.parent.(hop) in
    if p = a.p_root then not (List.mem hop a.p_spawned)
    else walk p (fuel - 1)
  in
  walk b.p_root t.n_roots

(* [b]'s whole thread terminated before [a]. *)
let joined_before t a b =
  once t b.p_root && a.p_root <> b.p_root && List.mem b.p_root a.p_joined

let may_overlap t a b =
  not
    ((a.p_root = b.p_root && once t a.p_root)
    || before_spawn_of t a b || before_spawn_of t b a || joined_before t a b
    || joined_before t b a)

(* Base-name may-alias, re-exported for the conflict-pair classifier. *)
let may_alias = Lockset.aval_alias
