(* Call graph and thread structure over a resolved program.

   Methods are keyed "DeclaringClass.method". Reachability starts at the
   program entry (main plus every <clinit>, which the VM runs on the main
   thread at boot) and follows Invoke/Spawn edges through CHA
   ({!Prog.cha_targets}); a [Nativecall] conservatively may call back into
   any static method, since native callbacks are bound only at VM creation
   and are invisible at the Decl level.

   A *root* is a thread-creation point: root 0 is the main thread, and
   every reachable [Spawn] site gets one root (its entries are the CHA
   targets of the spawned method). A root is [Once] when its spawn site
   provably executes at most once — the site sits outside every intra-method
   loop, in a method that is itself once-executed. "Once-executed" is a
   small fixpoint: main/<clinit> with no other callers are once; a method
   whose single incoming call/spawn site is a non-loop pc of a once method
   is once.

   [balanced] is the transitive monitor-balance summary used by the lockset
   pass to keep must-locksets across calls: a method is balanced when
   {!Bytecode.Check.check_monitors} finds no issue in it and every CHA
   callee is balanced (greatest fixpoint, so cycles stay balanced unless a
   member is locally unbalanced). *)

module Instr = Bytecode.Instr
module Decl = Bytecode.Decl
module Check = Bytecode.Check

type mref = { mr_class : string; mr_decl : Decl.mdecl }

type site_kind = Scall | Sspawn

type site = {
  s_caller : string;  (* method key of the calling method *)
  s_pc : int;
  s_in_loop : bool;
  s_kind : site_kind;
}

type mult = Once | Many

type root = {
  r_id : int;
  r_label : string;
  r_entries : string list;  (* method keys of the CHA-resolved entries *)
  r_mult : mult;
  r_parent : int;  (* spawning root; -1 = none (main), -2 = ambiguous *)
  r_where : string option;  (* "Caller.method:pc" of the spawn site *)
}

type t = {
  prog : Prog.t;
  methods : (string, mref) Hashtbl.t;  (* the reachable methods *)
  method_order : string list;  (* stable discovery order *)
  incoming : (string, site list) Hashtbl.t;
  outgoing_calls : (string, string list) Hashtbl.t;  (* call edges only *)
  loops : (string, bool array) Hashtbl.t;
  once : (string, unit) Hashtbl.t;
  roots : root array;
  root_of_spawn : (string, int) Hashtbl.t;  (* "caller:pc" -> root id *)
  reach : (string, unit) Hashtbl.t;  (* "rootid/methodkey" context set *)
  balanced : (string, bool) Hashtbl.t;
}

let mkey cname (m : Decl.mdecl) = cname ^ "." ^ m.Decl.m_name

let ckey root_id method_key = string_of_int root_id ^ "/" ^ method_key

let in_context t root_id method_key = Hashtbl.mem t.reach (ckey root_id method_key)

let spawn_key caller pc = caller ^ ":" ^ string_of_int pc

let is_once t key = Hashtbl.mem t.once key

let is_balanced t key =
  match Hashtbl.find_opt t.balanced key with Some b -> b | None -> false

let loop_at t key pc =
  match Hashtbl.find_opt t.loops key with
  | Some l when pc >= 0 && pc < Array.length l -> l.(pc)
  | _ -> true (* unknown method: assume the worst *)

let find_method t key = Hashtbl.find_opt t.methods key

(* Contexts (root, method) in a stable order for deterministic reports. *)
let contexts t : (int * string) list =
  List.concat_map
    (fun key ->
      List.filter_map
        (fun r ->
          if in_context t r.r_id key then Some (r.r_id, key) else None)
        (Array.to_list t.roots))
    t.method_order

let build (prog : Prog.t) : t =
  let p = prog.Prog.program in
  let methods = Hashtbl.create 64 in
  let method_order = ref [] in
  let incoming = Hashtbl.create 64 in
  let outgoing_calls = Hashtbl.create 64 in
  let loops = Hashtbl.create 64 in
  let spawn_sites = ref [] in (* (caller key, pc, in_loop, target keys) rev *)
  let static_methods =
    List.filter_map
      (fun (cn, m) -> if m.Decl.m_static then Some (cn, m) else None)
      (Prog.all_methods prog)
  in
  let work = Queue.create () in
  let add_method cname (m : Decl.mdecl) =
    let key = mkey cname m in
    if not (Hashtbl.mem methods key) then begin
      Hashtbl.replace methods key { mr_class = cname; mr_decl = m };
      method_order := key :: !method_order;
      Hashtbl.replace loops key (Dataflow.loop_pcs m.Decl.m_code m.Decl.m_handlers);
      Queue.add key work
    end;
    key
  in
  let add_incoming target site =
    let cur = match Hashtbl.find_opt incoming target with Some l -> l | None -> [] in
    Hashtbl.replace incoming target (cur @ [ site ])
  in
  let add_call_edge from target =
    let cur =
      match Hashtbl.find_opt outgoing_calls from with Some l -> l | None -> []
    in
    if not (List.mem target cur) then
      Hashtbl.replace outgoing_calls from (cur @ [ target ])
  in
  (* Entry points: main + every <clinit>. *)
  (match Decl.find_class p p.Decl.main_class with
  | Some c -> (
    match Decl.find_method c "main" with
    | Some m -> ignore (add_method p.Decl.main_class m)
    | None -> ())
  | None -> ());
  List.iter
    (fun c ->
      match Decl.find_method c Decl.clinit_name with
      | Some m -> ignore (add_method c.Decl.cd_name m)
      | None -> ())
    p.Decl.classes;
  let entry_keys = List.rev !method_order in
  (* Syntactic reachability with CHA. *)
  while not (Queue.is_empty work) do
    let key = Queue.pop work in
    let { mr_decl = m; _ } = Hashtbl.find methods key in
    let in_loop = Hashtbl.find loops key in
    Array.iteri
      (fun pc ins ->
        match (ins : Instr.t) with
        | Instr.Invoke (c, mn) ->
          List.iter
            (fun (tc, tm) ->
              let tkey = add_method tc tm in
              add_incoming tkey
                { s_caller = key; s_pc = pc; s_in_loop = in_loop.(pc); s_kind = Scall };
              add_call_edge key tkey)
            (Prog.cha_targets prog c mn)
        | Instr.Spawn (c, mn) ->
          let targets =
            List.map
              (fun (tc, tm) ->
                let tkey = add_method tc tm in
                add_incoming tkey
                  { s_caller = key; s_pc = pc; s_in_loop = in_loop.(pc); s_kind = Sspawn };
                tkey)
              (Prog.cha_targets prog c mn)
          in
          spawn_sites := (key, pc, in_loop.(pc), targets) :: !spawn_sites
        | Instr.Nativecall _ ->
          (* Callbacks may target any static method. *)
          List.iter
            (fun (tc, tm) ->
              let tkey = add_method tc tm in
              add_incoming tkey
                { s_caller = key; s_pc = pc; s_in_loop = in_loop.(pc); s_kind = Scall };
              add_call_edge key tkey)
            static_methods
        | _ -> ())
      m.Decl.m_code
  done;
  let method_order = List.rev !method_order in
  let spawn_sites = List.rev !spawn_sites in
  (* Once-executed methods (fixpoint, monotone increasing). *)
  let once = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun key ->
        if not (Hashtbl.mem once key) then begin
          let inc = match Hashtbl.find_opt incoming key with Some l -> l | None -> [] in
          let is_entry = List.mem key entry_keys in
          let ok =
            match (is_entry, inc) with
            | true, [] -> true (* boot entry, never called again *)
            | false, [ s ] -> (not s.s_in_loop) && Hashtbl.mem once s.s_caller
            | _ -> false
          in
          if ok then begin
            Hashtbl.replace once key ();
            changed := true
          end
        end)
      method_order
  done;
  (* Roots. *)
  let roots = ref [] in
  let root_of_spawn = Hashtbl.create 16 in
  let main_root =
    { r_id = 0; r_label = "main"; r_entries = entry_keys; r_mult = Once;
      r_parent = -1; r_where = None }
  in
  roots := [ main_root ];
  List.iteri
    (fun i (caller, pc, in_loop, targets) ->
      let id = i + 1 in
      let mult =
        if (not in_loop) && Hashtbl.mem once caller then Once else Many
      in
      let where = caller ^ ":" ^ string_of_int pc in
      let label =
        (match targets with t :: _ -> t | [] -> "<unresolved>") ^ "@" ^ where
      in
      Hashtbl.replace root_of_spawn (spawn_key caller pc) id;
      roots :=
        { r_id = id; r_label = label; r_entries = targets; r_mult = mult;
          r_parent = -1 (* fixed up below *); r_where = Some where }
        :: !roots)
    spawn_sites;
  let roots = Array.of_list (List.rev !roots) in
  (* Per-root reach: call edges only, from the root's entries. *)
  let reach = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      let q = Queue.create () in
      List.iter
        (fun e ->
          if not (Hashtbl.mem reach (ckey r.r_id e)) then begin
            Hashtbl.replace reach (ckey r.r_id e) ();
            Queue.add e q
          end)
        r.r_entries;
      while not (Queue.is_empty q) do
        let key = Queue.pop q in
        List.iter
          (fun tgt ->
            if not (Hashtbl.mem reach (ckey r.r_id tgt)) then begin
              Hashtbl.replace reach (ckey r.r_id tgt) ();
              Queue.add tgt q
            end)
          (match Hashtbl.find_opt outgoing_calls key with Some l -> l | None -> [])
      done)
    roots;
  (* Parents: the root(s) that can execute the spawn site. *)
  List.iteri
    (fun i (caller, _pc, _l, _t) ->
      let id = i + 1 in
      let holders =
        Array.to_list roots
        |> List.filter_map (fun r ->
               if Hashtbl.mem reach (ckey r.r_id caller) then Some r.r_id else None)
      in
      let parent = match holders with [ h ] -> h | _ -> -2 in
      roots.(id) <- { (roots.(id)) with r_parent = parent })
    spawn_sites;
  (* Transitive monitor balance (greatest fixpoint). *)
  let balanced = Hashtbl.create 64 in
  let locally_unbalanced = Hashtbl.create 8 in
  List.iter
    (fun (i : Check.issue) -> Hashtbl.replace locally_unbalanced i.Check.where ())
    (Check.check_monitors p);
  List.iter
    (fun key ->
      Hashtbl.replace balanced key (not (Hashtbl.mem locally_unbalanced key)))
    method_order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun key ->
        if Hashtbl.find balanced key then
          let callees =
            match Hashtbl.find_opt outgoing_calls key with Some l -> l | None -> []
          in
          if
            List.exists
              (fun c -> not (match Hashtbl.find_opt balanced c with
                             | Some b -> b
                             | None -> false))
              callees
          then begin
            Hashtbl.replace balanced key false;
            changed := true
          end)
      method_order
  done;
  { prog; methods; method_order; incoming; outgoing_calls; loops; once; roots;
    root_of_spawn; reach; balanced }
