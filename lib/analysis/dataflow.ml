(* Generic worklist dataflow over one method body, program-level sibling of
   the VM verifier's fixpoint (lib/vm/verify.ml): same states-array +
   work-queue shape, but parameterized by the lattice and the direction so
   the lockset pass, the monitor-depth check style of analysis, and simple
   backward problems (liveness) can share it.

   The solution array holds, per pc, the state *entering* the instruction
   for a forward problem and the state *leaving* it (live-out style) for a
   backward one; [None] means the pc was never reached. Exception edges are
   driven by [Instr.may_throw] and the method's handler table: a forward
   problem propagates the pre-instruction state (adapted by [exn_adapt],
   which typically clears the operand stack the way the VM does on unwind)
   into every covering handler; a backward problem runs the same edges in
   reverse. *)

module Instr = Bytecode.Instr
module Decl = Bytecode.Decl

module type LATTICE = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type conf = {
    dir : direction;
    code : Instr.t array;
    handlers : Decl.handler list;
    entry : L.t;
        (* initial state at pc 0 (forward) or at every exit (backward) *)
    transfer : pc:int -> Instr.t -> L.t -> L.t;
    exn_adapt : (pc:int -> L.t -> L.t) option;
        (* [None] disables exception edges entirely *)
  }

  let solve (conf : conf) : L.t option array =
    let code = conf.code in
    let len = Array.length code in
    let states = Array.make len None in
    let work = Queue.create () in
    let queued = Array.make len false in
    let enqueue pc =
      if not queued.(pc) then begin
        queued.(pc) <- true;
        Queue.add pc work
      end
    in
    let propagate pc st =
      if pc >= 0 && pc < len then
        match states.(pc) with
        | None ->
          states.(pc) <- Some st;
          enqueue pc
        | Some old ->
          let j = L.join old st in
          if not (L.equal j old) then begin
            states.(pc) <- Some j;
            enqueue pc
          end
    in
    let preds =
      match conf.dir with
      | Forward -> [||]
      | Backward ->
        let p = Array.make len [] in
        Array.iteri
          (fun pc ins ->
            List.iter
              (fun s -> if s >= 0 && s < len then p.(s) <- pc :: p.(s))
              (Instr.successors ins ~pc))
          code;
        p
    in
    (match conf.dir with
    | Forward -> if len > 0 then propagate 0 conf.entry
    | Backward ->
      Array.iteri
        (fun pc ins ->
          match (ins : Instr.t) with
          | Instr.Ret | Instr.Retv | Instr.Throw | Instr.Halt ->
            propagate pc conf.entry
          | _ -> ())
        code);
    while not (Queue.is_empty work) do
      let pc = Queue.pop work in
      queued.(pc) <- false;
      match states.(pc) with
      | None -> ()
      | Some st -> (
        match conf.dir with
        | Forward ->
          let out = conf.transfer ~pc code.(pc) st in
          (match conf.exn_adapt with
          | Some f when Instr.may_throw code.(pc) ->
            List.iter
              (fun (h : Decl.handler) ->
                if h.h_from <= pc && pc < h.h_upto then
                  propagate h.h_target (f ~pc st))
              conf.handlers
          | _ -> ());
          List.iter
            (fun s -> propagate s out)
            (Instr.successors code.(pc) ~pc)
        | Backward ->
          let inx = conf.transfer ~pc code.(pc) st in
          List.iter (fun p -> propagate p inx) preds.(pc);
          (match conf.exn_adapt with
          | Some f ->
            List.iter
              (fun (h : Decl.handler) ->
                if h.h_target = pc then
                  for q = h.h_from to min (h.h_upto - 1) (len - 1) do
                    if Instr.may_throw code.(q) then propagate q (f ~pc inx)
                  done)
              conf.handlers
          | None -> ()))
    done;
    states
end

(* Intra-method loop detection, shared by the callgraph's once-method and
   spawn-multiplicity logic: pc [p] is on a cycle iff it can reach itself
   through normal successors or exception edges. Methods are tiny, so a
   per-method boolean matrix via repeated DFS is plenty. *)
let loop_pcs (code : Instr.t array) (handlers : Decl.handler list) : bool array =
  let len = Array.length code in
  let succ pc =
    let s = Instr.successors code.(pc) ~pc in
    if Instr.may_throw code.(pc) then
      List.fold_left
        (fun acc (h : Decl.handler) ->
          if h.h_from <= pc && pc < h.h_upto then h.h_target :: acc else acc)
        s handlers
    else s
  in
  let on_loop = Array.make len false in
  for start = 0 to len - 1 do
    if not on_loop.(start) then begin
      (* Can [start] reach itself? *)
      let seen = Array.make len false in
      let stack = ref (succ start) in
      let found = ref false in
      while (not !found) && !stack <> [] do
        match !stack with
        | [] -> ()
        | pc :: rest ->
          stack := rest;
          if pc = start then found := true
          else if pc >= 0 && pc < len && not seen.(pc) then begin
            seen.(pc) <- true;
            stack := succ pc @ !stack
          end
      done;
      on_loop.(start) <- !found
    end
  done;
  on_loop
