(* Static lock-order graph and deadlock-cycle detection.

   Nodes are provably-unique lock names ({!Lockset.valid_lock}); an edge
   [h -> l] exists for every harvested acquisition of [l] while [h] is in
   the must-held set. A directed cycle is a *potential* deadlock only if
   one acquisition per edge can be selected so that every selected pair may
   happen in parallel ({!Mhp.may_overlap}) — a single Once thread taking
   A->B and later B->A is sequential and never reported, while two
   overlapping threads (or two instances of a Many root) disagreeing on
   order are.

   Cycles are enumerated Johnson-style: simple cycles only, each started
   from its minimal node with the search restricted to nodes >= start so
   every cycle is found exactly once, with small depth/count caps — lock
   graphs here are tiny and a runaway graph means the analysis diverged
   upstream anyway. *)

type finding = {
  dl_cycle : string list;  (* lock names in cycle order *)
  dl_sites : string list;  (* one "Class.method:pc" acquisition per edge *)
  dl_why : string;
}

let max_depth = 8
let max_cycles = 64

let name_str n = Fmt.str "%a" Lockset.pp_name n

let detect (mhp : Mhp.t) (r : Lockset.result) : finding list =
  if not r.Lockset.converged then []
  else begin
    let succs : (Lockset.name, (Lockset.name * Lockset.acq list) list) Hashtbl.t
        =
      Hashtbl.create 16
    in
    let nodes = ref [] in
    let add_node n = if not (List.mem n !nodes) then nodes := n :: !nodes in
    List.iter
      (fun (a : Lockset.acq) ->
        List.iter
          (fun h ->
            if h <> a.Lockset.aq_lock then begin
              add_node h;
              add_node a.Lockset.aq_lock;
              let cur =
                match Hashtbl.find_opt succs h with Some l -> l | None -> []
              in
              let cur =
                match List.assoc_opt a.Lockset.aq_lock cur with
                | Some acqs ->
                  (a.Lockset.aq_lock, acqs @ [ a ])
                  :: List.remove_assoc a.Lockset.aq_lock cur
                | None -> (a.Lockset.aq_lock, [ a ]) :: cur
              in
              Hashtbl.replace succs h cur
            end)
          a.Lockset.aq_held)
      r.Lockset.acquires;
    let nodes = List.sort compare !nodes in
    let succs_of n =
      match Hashtbl.find_opt succs n with
      | Some l -> List.sort compare l
      | None -> []
    in
    (* One acquisition per edge such that all selected pairs may overlap. *)
    let select edge_acqs =
      let rec go chosen = function
        | [] -> Some (List.rev chosen)
        | acqs :: rest ->
          List.find_map
            (fun (a : Lockset.acq) ->
              if
                List.for_all
                  (fun c ->
                    Mhp.may_overlap mhp (Mhp.of_acq a) (Mhp.of_acq c))
                  chosen
              then go (a :: chosen) rest
              else None)
            acqs
      in
      go [] edge_acqs
    in
    let findings = ref [] in
    let n_found = ref 0 in
    let record edges =
      match select (List.map (fun (_, _, acqs) -> acqs) edges) with
      | None -> ()
      | Some chosen ->
        incr n_found;
        let cycle = List.map (fun (src, _, _) -> name_str src) edges in
        let sites =
          List.map (fun (a : Lockset.acq) -> a.Lockset.aq_where) chosen
        in
        let why =
          String.concat "; "
            (List.map2
               (fun (src, tgt, _) (a : Lockset.acq) ->
                 Fmt.str "holds %s, acquires %s at %s" (name_str src)
                   (name_str tgt) a.Lockset.aq_where)
               edges chosen)
        in
        findings := { dl_cycle = cycle; dl_sites = sites; dl_why = why }
                    :: !findings
    in
    List.iter
      (fun start ->
        let rec dfs node visited path depth =
          if !n_found < max_cycles && depth < max_depth then
            List.iter
              (fun (tgt, acqs) ->
                if tgt = start then
                  record (List.rev ((node, tgt, acqs) :: path))
                else if compare tgt start > 0 && not (List.mem tgt visited)
                then
                  dfs tgt (tgt :: visited) ((node, tgt, acqs) :: path)
                    (depth + 1))
              (succs_of node)
        in
        dfs start [ start ] [] 0)
      nodes;
    List.rev !findings
  end
