(* Public facade of the static analysis subsystem: a generic worklist
   dataflow engine, a call-graph/thread-structure builder, the
   interprocedural lockset pass, the thread-escape pass, and the race-audit
   report consumed by `dvrun lint`, the recorder's trace stamp, and the
   Observer's thread-local fast path. *)

module Json = Json
module Dataflow = Dataflow
module Prog = Prog
module Callgraph = Callgraph
module Lockset = Lockset
module Mhp = Mhp
module Lockorder = Lockorder
module Escape = Escape
module Report = Report

(* One-call entry point: full audit of a program. *)
let run = Report.build
