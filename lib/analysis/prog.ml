(* Resolved whole-program index over a [Decl.program]: class lookup, super
   chains, CHA subclass sets, method resolution, and field-key naming. The
   analyses key every instance field by its *declaring* class ("C.f" where C
   is the first class up the super chain that declares f), matching the
   VM's flattened-layout slot ownership, statics likewise, and all arrays by
   the single key "[]" (a documented soundness coarsening: element-index
   insensitivity). *)

module Instr = Bytecode.Instr
module Decl = Bytecode.Decl

type t = {
  program : Decl.program;
  by_name : (string, Decl.cdecl) Hashtbl.t;
  subclasses : (string, string list) Hashtbl.t;
      (* class -> self + all transitive subclasses, declaration order *)
  putstatic_sites : (string, (string * int) list) Hashtbl.t;
      (* static field key -> [(qualified method, pc)] across the program *)
}

let array_key = "[]"

let find_class t name = Hashtbl.find_opt t.by_name name

let super_chain t name =
  let rec go acc n depth =
    if depth > 1000 then List.rev acc (* cycles are Check's problem *)
    else
      match Hashtbl.find_opt t.by_name n with
      | None -> List.rev (n :: acc)
      | Some c -> (
        match c.Decl.cd_super with
        | None -> List.rev (n :: acc)
        | Some s -> go (n :: acc) s (depth + 1))
  in
  go [] name 0

(* First class in [cname]'s super chain that declares the field; falls back
   to [cname] for unresolvable (builtin or broken) references so every
   access still gets *some* stable key. *)
let field_key t ~static cname fname =
  let declares c =
    let fields = if static then c.Decl.cd_statics else c.Decl.cd_fields in
    List.exists (fun f -> f.Decl.fd_name = fname) fields
  in
  let rec go = function
    | [] -> cname
    | cn :: rest -> (
      match Hashtbl.find_opt t.by_name cn with
      | Some c when declares c -> cn
      | _ -> go rest)
  in
  go (super_chain t cname) ^ "." ^ fname

(* Walk the super chain for the nearest definition, as the vtable builder
   does. *)
let resolve_method t cname mname : (string * Decl.mdecl) option =
  let rec go = function
    | [] -> None
    | cn :: rest -> (
      match Hashtbl.find_opt t.by_name cn with
      | Some c -> (
        match Decl.find_method c mname with
        | Some m -> Some (cn, m)
        | None -> go rest)
      | None -> go rest)
  in
  go (super_chain t cname)

(* Class-hierarchy-analysis call targets of [Invoke (cname, mname)] (or a
   [Spawn]): the static method if resolution finds one, else the resolved
   method for every subclass of the declared receiver class, deduplicated
   by declaring class. Soundness caveat (documented in DESIGN.md): the
   receiver's *declared* class bounds the set, so a receiver smuggled
   through [Tref] still dispatches within the declared hierarchy — the
   assembler's type discipline makes that the only hierarchy reachable. *)
let cha_targets t cname mname : (string * Decl.mdecl) list =
  match resolve_method t cname mname with
  | None -> []
  | Some ((_, m0) as r0) ->
    if m0.Decl.m_static then [ r0 ]
    else
      let subs =
        match Hashtbl.find_opt t.subclasses cname with
        | Some s -> s
        | None -> [ cname ]
      in
      let seen = Hashtbl.create 4 in
      List.filter_map
        (fun sub ->
          match resolve_method t sub mname with
          | Some (decl_c, m) when not (Hashtbl.mem seen decl_c) ->
            Hashtbl.replace seen decl_c ();
            Some (decl_c, m)
          | _ -> None)
        subs

let putstatic_count t key =
  match Hashtbl.find_opt t.putstatic_sites key with
  | None -> 0
  | Some l -> List.length l

let qname cname (m : Decl.mdecl) = cname ^ "." ^ m.Decl.m_name

let all_methods t : (string * Decl.mdecl) list =
  List.concat_map
    (fun c -> List.map (fun m -> (c.Decl.cd_name, m)) c.Decl.cd_methods)
    t.program.Decl.classes

let build (p : Decl.program) : t =
  let by_name = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace by_name c.Decl.cd_name c) p.Decl.classes;
  let t = { program = p; by_name; subclasses = Hashtbl.create 16; putstatic_sites = Hashtbl.create 16 } in
  (* subclasses: every class is a subclass of each ancestor (and itself) *)
  List.iter
    (fun c ->
      List.iter
        (fun anc ->
          let cur =
            match Hashtbl.find_opt t.subclasses anc with Some l -> l | None -> []
          in
          Hashtbl.replace t.subclasses anc (cur @ [ c.Decl.cd_name ]))
        (super_chain t c.Decl.cd_name))
    p.Decl.classes;
  (* putstatic sites, keyed by resolved static key *)
  List.iter
    (fun c ->
      List.iter
        (fun m ->
          Array.iteri
            (fun pc ins ->
              match (ins : Instr.t) with
              | Instr.Putstatic (cl, fd) ->
                let key = field_key t ~static:true cl fd in
                let cur =
                  match Hashtbl.find_opt t.putstatic_sites key with
                  | Some l -> l
                  | None -> []
                in
                Hashtbl.replace t.putstatic_sites key
                  (cur @ [ (qname c.Decl.cd_name m, pc) ])
              | _ -> ())
            m.Decl.m_code)
        c.Decl.cd_methods)
    p.Decl.classes;
  t
