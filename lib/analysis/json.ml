(* Minimal JSON values, printer, and parser — just enough for the lint
   report and the committed LINT_baseline.json. The container has no JSON
   library and the trace codec is binary, so this stays hand-rolled like
   the bench trajectory writer. Numbers are limited to OCaml ints (the
   reports only carry counts, pcs, and millisecond timings as floats with
   one decimal, printed via %g). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let strings l = List (List.map (fun s -> Str s) l)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_buffer ?(indent = 0) b (v : t) =
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go ind v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (Printf.sprintf "%g" f)
    | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (ind + 2);
          go (ind + 2) x)
        xs;
      Buffer.add_char b '\n';
      pad ind;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (ind + 2);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          go (ind + 2) x)
        kvs;
      Buffer.add_char b '\n';
      pad ind;
      Buffer.add_char b '}'
  in
  go indent v

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char b e;
          go ()
        | 'n' ->
          Buffer.add_char b '\n';
          go ()
        | 't' ->
          Buffer.add_char b '\t';
          go ()
        | 'r' ->
          Buffer.add_char b '\r';
          go ()
        | 'b' ->
          Buffer.add_char b '\b';
          go ()
        | 'f' ->
          Buffer.add_char b '\012';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* Reports are ASCII; encode the low byte only. *)
          Buffer.add_char b (Char.chr (code land 0xff));
          go ()
        | _ -> fail "bad escape")
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

(* Accessors for reading the baseline; absent keys read as Null. *)
let member k = function Obj kvs -> (try List.assoc k kvs with Not_found -> Null) | _ -> Null

let to_list = function List xs -> xs | _ -> []

let to_string_opt = function Str s -> Some s | _ -> None
