(* Race-audit report: pair-based classification of every field and
   allocation site as thread-local / lock-consistent / racy, with method:pc
   provenance, plus the conflict-pair set, static deadlock findings, and
   the monitor-depth issues. This is the output of `dvrun lint`, and its
   summary hash is what the recorder stamps into the trace header (the
   replayer refuses a trace recorded under a different audit).

   Classification: for a field key, consider all pairs of non-confined
   accesses with at least one write. A pair *conflicts* when its bases may
   alias ({!Mhp.may_alias} — per-root allocation tags refute cross-thread
   aliasing of thread-private structures) and the two program points may
   happen in parallel ({!Mhp.may_overlap} over spawn/join/once structure).
   Racy = some conflicting pair has an empty must-lockset intersection;
   lock-consistent = conflicting pairs exist but every one shares a lock;
   thread-local = no conflicting pair at all (genuinely private state,
   read-only sharing, spawn/join-ordered publication, or provably disjoint
   per-thread objects).

   The conflict-pair set — every (access site, field) in some conflicting
   pair — is deliberately *not* refuted by locks: lock-ordered accesses
   still contend for order, which makes them exactly the branch points a
   DPOR-style explorer must enumerate (and the sites the dynamic Sharing
   tracker may observe as spawn/join-unordered). Both the conflict set and
   the deadlock findings fold into the summary hash, so traces are stamped
   against them. *)

module Decl = Bytecode.Decl
module Check = Bytecode.Check

type status = Thread_local | Lock_consistent | Racy

let status_name = function
  | Thread_local -> "thread_local"
  | Lock_consistent -> "lock_consistent"
  | Racy -> "racy"

type acc_view = {
  av_where : string;
  av_root : string;
  av_write : bool;
  av_locks : string list;
}

type finding = {
  f_kind : [ `Field | `Site ];
  f_key : string;
  f_status : status;
  f_why : string;
  f_accesses : acc_view list;
}

type t = {
  name : string;
  findings : finding list;
  conflicts : (string * string list) list;  (* field key -> conflict sites *)
  n_conflict_pairs : int;
  deadlocks : Lockorder.finding list;
  monitor_issues : Check.issue list;
  converged : bool;
  n_roots : int;
  summary_hash : string;
  mhp_ms : float;  (* classification incl. MHP/alias pair tests *)
  deadlock_ms : float;  (* lock-order graph + cycle search *)
}

(* --- summary hash: FNV-1a over the sorted classification lines --- *)

let hash_lines lines =
  let mix h c = (h lxor c) * 0x100000001b3 land max_int in
  let h =
    List.fold_left
      (fun h line -> String.fold_left (fun h c -> mix h (Char.code c)) (mix h 0x1f) line)
      0x3bf29ce484222325 (List.sort compare lines)
  in
  Printf.sprintf "%016x" h

(* --- the analysis driver --- *)

let lock_str = Fmt.str "%a" Lockset.pp_name

let build ?(name = "program") (p : Decl.program) : t =
  let prog = Prog.build p in
  let cg = Callgraph.build prog in
  let res = Lockset.analyze_program cg in
  let escaping = Escape.solve res in
  let mhp = Mhp.build cg in
  let roots = cg.Callgraph.roots in
  let n_roots = Array.length roots in
  let root_label r =
    if r >= 0 && r < n_roots then roots.(r).Callgraph.r_label else "?"
  in
  let confined (a : Lockset.access) =
    a.Lockset.acc_base <> []
    && List.for_all
         (function
           | Lockset.NSite (i, _) -> not escaping.(i)
           | _ -> false)
         a.Lockset.acc_base
  in
  let t_mhp = Sys.time () in
  (* group accesses by field key, preserving harvest order *)
  let by_field : (string, Lockset.access list) Hashtbl.t = Hashtbl.create 32 in
  let field_order = ref [] in
  List.iter
    (fun (a : Lockset.access) ->
      let k = a.Lockset.acc_field in
      (match Hashtbl.find_opt by_field k with
      | None ->
        field_order := k :: !field_order;
        Hashtbl.replace by_field k [ a ]
      | Some l -> Hashtbl.replace by_field k (a :: l)))
    res.Lockset.accesses;
  let field_order = List.rev !field_order in
  let view (a : Lockset.access) =
    {
      av_where = a.Lockset.acc_where;
      av_root = root_label a.Lockset.acc_root;
      av_write = a.Lockset.acc_write;
      av_locks = List.map lock_str a.Lockset.acc_locks;
    }
  in
  let inter l1 l2 = List.filter (fun x -> List.mem x l2) l1 in
  let conflict_sites : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let n_conflict_pairs = ref 0 in
  let add_conflict field (a : Lockset.access) (b : Lockset.access) =
    incr n_conflict_pairs;
    let tbl =
      match Hashtbl.find_opt conflict_sites field with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace conflict_sites field t;
        t
    in
    Hashtbl.replace tbl a.Lockset.acc_where ();
    Hashtbl.replace tbl b.Lockset.acc_where ()
  in
  let field_findings =
    List.map
      (fun key ->
        let accs = List.rev (Hashtbl.find by_field key) in
        let shared = List.filter (fun a -> not (confined a)) accs in
        (* candidate pairs: both shared, at least one write *)
        let alias_refuted = ref false in
        let rec pairs acc = function
          | [] -> acc
          | a :: rest ->
            pairs
              (List.fold_left
                 (fun acc b ->
                   if a.Lockset.acc_write || b.Lockset.acc_write then begin
                     let overlap =
                       Mhp.may_overlap mhp (Mhp.of_access a) (Mhp.of_access b)
                     in
                     let alias =
                       Mhp.may_alias a.Lockset.acc_base b.Lockset.acc_base
                     in
                     if overlap && not alias then alias_refuted := true;
                     if overlap && alias then begin
                       add_conflict key a b;
                       (a, b) :: acc
                     end
                     else acc
                   end
                   else acc)
                 acc rest)
              rest
        in
        let conc = List.rev (pairs [] shared) in
        let racy_pair =
          List.find_opt
            (fun ((a : Lockset.access), (b : Lockset.access)) ->
              inter a.Lockset.acc_locks b.Lockset.acc_locks = [])
            conc
        in
        let status, why =
          match (racy_pair, conc) with
          | Some (a, b), _ ->
            ( Racy,
              Fmt.str "%s and %s can interleave with no common lock"
                a.Lockset.acc_where b.Lockset.acc_where )
          | None, [] ->
            let why =
              if accs <> [] && List.for_all confined accs then
                "all bases are thread-confined allocations"
              else if not (List.exists (fun a -> a.Lockset.acc_write) accs)
              then "never written"
              else if !alias_refuted then
                "accesses touch provably distinct objects (per-thread \
                 allocation)"
              else "no concurrent conflicting accesses (spawn/join ordered)"
            in
            (Thread_local, why)
          | None, (a0, b0) :: _ ->
            let common =
              List.fold_left
                (fun acc (a, b) ->
                  inter acc (inter a.Lockset.acc_locks b.Lockset.acc_locks))
                (inter a0.Lockset.acc_locks b0.Lockset.acc_locks)
                conc
            in
            let why =
              match common with
              | l :: _ -> Fmt.str "guarded by %s" (lock_str l)
              | [] -> "every concurrent pair shares some lock"
            in
            (Lock_consistent, why)
        in
        {
          f_kind = `Field;
          f_key = key;
          f_status = status;
          f_why = why;
          f_accesses = List.map view accs;
        })
      field_order
  in
  let conflicts =
    (* canonical order: sorted by field key, sites sorted within each field —
       stable across runs and independent of both hashtable iteration and
       the source harvest order, so json output and the explorer's pruning
       set are reproducible byte-for-byte *)
    List.filter_map
      (fun key ->
        match Hashtbl.find_opt conflict_sites key with
        | None -> None
        | Some tbl ->
          let sites = Hashtbl.fold (fun s () acc -> s :: acc) tbl [] in
          Some (key, List.sort compare sites))
      field_order
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let mhp_ms = (Sys.time () -. t_mhp) *. 1000. in
  (* allocation sites *)
  let racy_fields =
    List.filter_map
      (fun f -> if f.f_status = Racy then Some f.f_key else None)
      field_findings
  in
  let site_findings =
    Array.to_list res.Lockset.sites
    |> List.map (fun (s : Lockset.site) ->
           let key = Fmt.str "new %s @@ %s" s.Lockset.site_desc s.Lockset.site_where in
           let touches_racy =
             List.exists
               (fun (a : Lockset.access) ->
                 List.mem a.Lockset.acc_field racy_fields
                 && List.exists
                      (function
                        | Lockset.NSite (i, _) -> i = s.Lockset.site_id
                        | _ -> false)
                      a.Lockset.acc_base)
               res.Lockset.accesses
           in
           let status, why =
             if not escaping.(s.Lockset.site_id) then
               (Thread_local, "confined to its allocating thread")
             else if touches_racy then
               (Racy, "escapes and backs a racy field access")
             else (Lock_consistent, "escapes to another thread")
           in
           {
             f_kind = `Site;
             f_key = key;
             f_status = status;
             f_why = why;
             f_accesses = [];
           })
  in
  let t_dl = Sys.time () in
  let deadlocks = Lockorder.detect mhp res in
  let deadlock_ms = (Sys.time () -. t_dl) *. 1000. in
  let monitor_issues = Check.check_monitors p in
  let findings = field_findings @ site_findings in
  let summary_hash =
    hash_lines
      (List.map
         (fun f ->
           (match f.f_kind with `Field -> "field " | `Site -> "site ")
           ^ f.f_key ^ " " ^ status_name f.f_status)
         findings
      @ List.concat_map
          (fun (field, sites) ->
            List.map (fun s -> "conflict " ^ field ^ " @ " ^ s) sites)
          conflicts
      @ List.map
          (fun (d : Lockorder.finding) ->
            "deadlock " ^ String.concat " -> " d.Lockorder.dl_cycle)
          deadlocks
      @ List.map (fun (i : Check.issue) -> "monitor " ^ i.Check.where ^ ": " ^ i.Check.what)
          monitor_issues
      @ [ (if res.Lockset.converged then "converged" else "diverged") ])
  in
  {
    name;
    findings;
    conflicts;
    n_conflict_pairs = !n_conflict_pairs;
    deadlocks;
    monitor_issues;
    converged = res.Lockset.converged;
    n_roots;
    summary_hash;
    mhp_ms;
    deadlock_ms;
  }

(* Just the audit fingerprint, for the trace header. *)
let summary_hash_of ?name (p : Decl.program) = (build ?name p).summary_hash

let racy_keys t =
  List.filter_map
    (fun f -> if f.f_status = Racy then Some f.f_key else None)
    t.findings

(* Field keys (including "[]" and "(static)" keys) the dynamic Observer may
   skip bookkeeping for. MHP/alias refinement only grows this set: a field
   whose every access pair is spawn/join-ordered or provably disjoint is
   Thread_local here even when its objects escape. *)
let thread_local_fields t =
  List.filter_map
    (fun f ->
      if f.f_kind = `Field && f.f_status = Thread_local then Some f.f_key
      else None)
    t.findings

(* Field keys with at least one conflicting access pair — the superset the
   dynamic conflict tracker may report, and the DPOR pruning domain. *)
let conflict_fields t = List.map fst t.conflicts

(* (site, field) branch points for a systematic explorer, sorted by
   (site, field) so the pruning set enumerates identically everywhere. *)
let branch_points t =
  List.concat_map (fun (f, sites) -> List.map (fun s -> (s, f)) sites)
    t.conflicts
  |> List.sort compare

let deadlock_keys t =
  List.map
    (fun (d : Lockorder.finding) -> String.concat " -> " d.Lockorder.dl_cycle)
    t.deadlocks

let monitor_keys t =
  List.map
    (fun (i : Check.issue) -> i.Check.where ^ ": " ^ i.Check.what)
    t.monitor_issues

(* --- rendering --- *)

let pp_status ppf s = Fmt.string ppf (status_name s)

let pp ppf t =
  let count s =
    List.length (List.filter (fun f -> f.f_status = s) t.findings)
  in
  Fmt.pf ppf
    "lint %s: %d findings (%d racy, %d lock-consistent, %d thread-local), %d \
     conflict pairs, %d deadlocks, %d roots, hash %s%s@."
    t.name (List.length t.findings) (count Racy) (count Lock_consistent)
    (count Thread_local) t.n_conflict_pairs (List.length t.deadlocks)
    t.n_roots t.summary_hash
    (if t.converged then "" else " [NOT CONVERGED]");
  List.iter
    (fun f ->
      Fmt.pf ppf "  %-15s %s — %s@." (status_name f.f_status) f.f_key f.f_why;
      let n = List.length f.f_accesses in
      List.iteri
        (fun i a ->
          if i < 8 then
            Fmt.pf ppf "      %s %s [%s]%s@."
              (if a.av_write then "write" else "read ")
              a.av_where a.av_root
              (match a.av_locks with
              | [] -> ""
              | l -> " locks{" ^ String.concat ", " l ^ "}"))
        f.f_accesses;
      if n > 8 then Fmt.pf ppf "      … %d more accesses@." (n - 8))
    t.findings;
  if t.conflicts <> [] then begin
    Fmt.pf ppf "  conflict pairs (DPOR branch points):@.";
    List.iter
      (fun (field, sites) ->
        Fmt.pf ppf "      %s: %s@." field (String.concat ", " sites))
      t.conflicts
  end;
  if t.deadlocks <> [] then begin
    Fmt.pf ppf "  deadlock cycles:@.";
    List.iter
      (fun (d : Lockorder.finding) ->
        Fmt.pf ppf "      %s — %s@."
          (String.concat " -> " d.Lockorder.dl_cycle)
          d.Lockorder.dl_why)
      t.deadlocks
  end;
  if t.monitor_issues <> [] then begin
    Fmt.pf ppf "  monitor-depth issues:@.";
    List.iter
      (fun (i : Check.issue) -> Fmt.pf ppf "      %a@." Check.pp_issue i)
      t.monitor_issues
  end

let to_json t : Json.t =
  let finding f =
    Json.Obj
      ([
         ("key", Json.Str f.f_key);
         ("kind", Json.Str (match f.f_kind with `Field -> "field" | `Site -> "site"));
         ("status", Json.Str (status_name f.f_status));
         ("why", Json.Str f.f_why);
       ]
      @
      if f.f_accesses = [] then []
      else
        [
          ( "accesses",
            Json.List
              (List.map
                 (fun a ->
                   Json.Obj
                     [
                       ("where", Json.Str a.av_where);
                       ("root", Json.Str a.av_root);
                       ("write", Json.Bool a.av_write);
                       ("locks", Json.List (List.map (fun l -> Json.Str l) a.av_locks));
                     ])
                 f.f_accesses) );
        ])
  in
  Json.Obj
    [
      ("program", Json.Str t.name);
      ("summary_hash", Json.Str t.summary_hash);
      ("converged", Json.Bool t.converged);
      ("roots", Json.Int t.n_roots);
      ("n_conflict_pairs", Json.Int t.n_conflict_pairs);
      ("findings", Json.List (List.map finding t.findings));
      ( "conflicts",
        Json.List
          (List.map
             (fun (field, sites) ->
               Json.Obj
                 [ ("field", Json.Str field); ("sites", Json.strings sites) ])
             t.conflicts) );
      ( "branch_points",
        Json.List
          (List.map
             (fun (site, field) ->
               Json.Obj [ ("site", Json.Str site); ("field", Json.Str field) ])
             (branch_points t)) );
      ( "deadlocks",
        Json.List
          (List.map
             (fun (d : Lockorder.finding) ->
               Json.Obj
                 [
                   ("cycle", Json.strings d.Lockorder.dl_cycle);
                   ("sites", Json.strings d.Lockorder.dl_sites);
                   ("why", Json.Str d.Lockorder.dl_why);
                 ])
             t.deadlocks) );
      ( "monitor_issues",
        Json.List
          (List.map
             (fun (i : Check.issue) ->
               Json.Obj
                 [ ("where", Json.Str i.Check.where); ("what", Json.Str i.Check.what) ])
             t.monitor_issues) );
    ]
