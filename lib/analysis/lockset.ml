(* Flow-sensitive, interprocedural lockset + thread-structure analysis.

   Abstract values are small *name sets*. A name denotes a runtime object
   conservatively:
     - [NStatic key]      the object currently stored in the static field [key]
     - [NSite (id, root)] an object allocated at allocation site [id] by a
                          thread of root [root] (the context's root at the
                          New/Newarray; the tag travels with the value, so
                          names with different sites or different allocating
                          roots are provably distinct objects — the may-alias
                          refutation behind the MHP-refined conflict pairs)
     - [NTid root]        a thread id returned by the spawn site behind [root]
     - [NOpaque]          anything (absorbing top)
   A name is usable as a *lock name* only when it provably denotes a single
   runtime object for the whole execution: a static written by exactly one
   [Putstatic] at a non-loop pc of a once-executed method, or an allocation
   site that runs at most once ({!Callgraph.is_once} + loop map). Must-held
   locksets are sets of such names with re-entry depths; merging intersects
   them, so a lock is reported at an access only when every path holds it —
   under-approximating held locks can only create false racy findings,
   never hide one.

   Contexts are (root, method) pairs. Entry environments carry concrete
   global name sets (no parameter symbols): each call site joins its
   argument names into the callee entry, spawn sites seed their root's
   entries, and return-value names flow back through per-context summaries.
   Each context also tracks [spawned] (roots that *may* already be running:
   union-merged) and [joined] (roots whose single thread has *definitely*
   terminated: intersection-merged); the report uses both to prove
   accesses ordered by thread structure. Calls keep the caller's lockset
   only when every CHA target is transitively monitor-balanced
   ({!Callgraph.is_balanced}); otherwise the must-set is cleared.

   Exception edges model the VM's unwind: operand stack replaced by the
   thrown reference, monitors kept (explicit monitors are not released by
   unwinding), and a throwing call still publishes the callee's may-spawn
   effect. *)

module Instr = Bytecode.Instr
module Decl = Bytecode.Decl

type name = NStatic of string | NSite of int * int | NTid of int | NOpaque

type aval = name list (* sorted, distinct; [NOpaque] = top, [] = bottom *)

let name_cap = 4

let vnorm ns : aval =
  let ns = List.sort_uniq compare ns in
  if List.mem NOpaque ns || List.length ns > name_cap then [ NOpaque ] else ns

let vjoin a b = vnorm (a @ b)

(* May two names denote the same runtime object? Only two refutations are
   sound: distinct allocation sites never produce the same object, and the
   same site run by threads of different roots produces distinct objects
   (the root tag is attached at allocation and travels with the value, so a
   name's root is always the allocator, wherever the name flows). Anything
   opaque or read out of a static conservatively aliases everything. *)
let name_alias n1 n2 =
  match (n1, n2) with
  | NOpaque, _ | _, NOpaque -> true
  | NStatic _, _ | _, NStatic _ -> true
  | NSite (s1, r1), NSite (s2, r2) -> s1 = s2 && r1 = r2
  | NTid r1, NTid r2 -> r1 = r2
  | NSite _, NTid _ | NTid _, NSite _ -> false

(* Base-set may-alias for access pairing. [] appears for static accesses
   (same field key = same global slot: alias) and for dead paths; both are
   safe to treat as aliasing. *)
let aval_alias b1 b2 =
  b1 = [] || b2 = []
  || List.exists (fun n1 -> List.exists (fun n2 -> name_alias n1 n2) b2) b1

type site = {
  site_id : int;
  site_where : string;  (* "Class.method:pc" *)
  site_desc : string;  (* class name or "elem[]" *)
  site_once : bool;
  site_method : string;
  site_pc : int;
}

type access = {
  acc_field : string;
  acc_write : bool;
  acc_root : int;
  acc_locks : name list;
  acc_base : aval;  (* [] for statics *)
  acc_spawned : int list;
  acc_joined : int list;
  acc_where : string;
}

(* A monitorenter of a provably-unique lock name (or a sync-method entry),
   with the must-set held just before it — the edges of the static
   lock-order graph. Re-entrant re-acquisitions are not recorded (they
   cannot contribute to a deadlock cycle). *)
type acq = {
  aq_lock : name;
  aq_held : name list;  (* must-held before acquiring, valid names only *)
  aq_root : int;
  aq_spawned : int list;
  aq_joined : int list;
  aq_where : string;  (* "Class.method:pc" *)
}

type sink = Into of aval | Global
(* value stored through a base object / value made globally reachable
   (static store, spawn argument, native-call operand) *)

type store = { st_value : aval; st_sink : sink }

(* Per-pc flow state. The stack lists the top first; merging aligns stacks
   from the top and drops any excess bottom, which also absorbs the depth
   noise of [Nativecall] (arity unknown at the Decl level). *)
type st = {
  locals : aval array;
  stack : aval list;
  locked : (name * int) list;  (* must-held, with re-entry depth *)
  spawned : int list;
  joined : int list;
}

(* Root sets ([spawned]/[joined]) are sorted ascending and duplicate-free
   everywhere: they originate as [], singletons, or [List.init] ranges and
   only flow through these two merges, which rely on (and preserve) the
   invariant. [norm_sorted] is the entry point for lists built any other
   way. *)

let norm_sorted l = List.sort_uniq compare l

let rec inter_sorted a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c = 0 then x :: inter_sorted xs ys
    else if c < 0 then inter_sorted xs b
    else inter_sorted a ys

let rec union_sorted a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c = 0 then x :: union_sorted xs ys
    else if c < 0 then x :: union_sorted xs b
    else y :: union_sorted a ys

let locked_join la lb =
  List.filter_map
    (fun (n, d) ->
      match List.assoc_opt n lb with
      | Some d' -> Some (n, min d d')
      | None -> None)
    la

let stack_join sa sb =
  let rec take k l =
    if k = 0 then [] else match l with [] -> [] | x :: t -> x :: take (k - 1) t
  in
  let k = min (List.length sa) (List.length sb) in
  List.map2 vjoin (take k sa) (take k sb)

let st_join a b =
  {
    locals = Array.map2 vjoin a.locals b.locals;
    stack = stack_join a.stack b.stack;
    locked = locked_join a.locked b.locked;
    spawned = union_sorted a.spawned b.spawned;
    joined = inter_sorted a.joined b.joined;
  }

let st_equal (a : st) (b : st) = a = b

module L = struct
  type t = st

  let equal = st_equal

  let join = st_join
end

module Engine = Dataflow.Make (L)

(* Interprocedural context: one per (root, reachable method). *)
type centry = {
  c_root : int;
  c_key : string;
  c_mref : Callgraph.mref;
  mutable e_args : aval array;
  mutable e_locked : (name * int) list option;  (* None = never called yet *)
  mutable e_spawned : int list;
  mutable e_joined : int list option;  (* None = never called yet *)
  mutable seen : bool;  (* has at least one entry contribution *)
  mutable s_ret : aval;
  mutable s_exit_spawned : int list;
  mutable s_exit_joined : int list option;  (* None = no normal exit seen *)
  mutable callers : string list;  (* ckeys to re-enqueue on summary change *)
  mutable c_states : st option array;
}

type result = {
  cg : Callgraph.t;
  sites : site array;
  accesses : access list;
  stores : store list;
  acquires : acq list;
  converged : bool;
}

let pp_name ppf = function
  | NStatic key -> Fmt.pf ppf "static %s" key
  | NSite (id, r) -> Fmt.pf ppf "site#%d(r%d)" id r
  | NTid r -> Fmt.pf ppf "tid(root %d)" r
  | NOpaque -> Fmt.string ppf "?"

let static_suffix = " (static)"

let analyze_program (cg : Callgraph.t) : result =
  let prog = cg.Callgraph.prog in
  (* Allocation sites, pre-assigned in method discovery order so ids are
     stable regardless of fixpoint order. *)
  let sites = ref [] in
  let site_ids = Hashtbl.create 64 in
  let n_sites = ref 0 in
  List.iter
    (fun key ->
      match Callgraph.find_method cg key with
      | None -> ()
      | Some { Callgraph.mr_decl = m; _ } ->
        Array.iteri
          (fun pc ins ->
            let desc =
              match (ins : Instr.t) with
              | Instr.New c -> Some c
              | Instr.Newarray ty -> Some (Instr.string_of_ty ty ^ "[]")
              | _ -> None
            in
            match desc with
            | None -> ()
            | Some site_desc ->
              let id = !n_sites in
              incr n_sites;
              Hashtbl.replace site_ids (key ^ ":" ^ string_of_int pc) id;
              sites :=
                {
                  site_id = id;
                  site_where = key ^ ":" ^ string_of_int pc;
                  site_desc;
                  site_once =
                    Callgraph.is_once cg key && not (Callgraph.loop_at cg key pc);
                  site_method = key;
                  site_pc = pc;
                }
                :: !sites)
          m.Decl.m_code)
    cg.Callgraph.method_order;
  let sites = Array.of_list (List.rev !sites) in
  let site_at key pc = Hashtbl.find_opt site_ids (key ^ ":" ^ string_of_int pc) in
  (* Lock-name validity. *)
  let valid_static key =
    match Hashtbl.find_opt prog.Prog.putstatic_sites key with
    | Some [ (mkey, pc) ] ->
      Callgraph.is_once cg mkey && not (Callgraph.loop_at cg mkey pc)
    | _ -> false
  in
  let valid_lock = function
    | NStatic key -> valid_static key
    | NSite (id, _) -> sites.(id).site_once
    | NTid _ | NOpaque -> false
  in
  (* Field-content summaries: for every instance-field / array key, the
     join of all values observed stored through each *base-name partition*.
     A read through base [b] joins every partition that may alias a name of
     [b]; a write through [b] contributes to each of [b]'s partitions (the
     NOpaque partition when [b] is top). This keeps per-root allocations
     disjoint across a Getfield: a list built from [NSite (s, r)] nodes
     reads back [NSite (s, r)], not top. Natives can mutate reachable
     objects invisibly, so any reachable Nativecall degrades every read to
     top (the pre-heap behaviour). Partition values only grow under vjoin,
     so the extra fixpoint terminates with the main worklist. *)
  let natives_present =
    List.exists
      (fun key ->
        match Callgraph.find_method cg key with
        | Some { Callgraph.mr_decl = m; _ } ->
          Array.exists
            (function Instr.Nativecall _ -> true | _ -> false)
            m.Decl.m_code
        | None -> false)
      cg.Callgraph.method_order
  in
  let heap : (string, (name * aval) list ref) Hashtbl.t = Hashtbl.create 32 in
  let heap_readers : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  let heap_read key base =
    if natives_present then [ NOpaque ]
    else if base = [] then []
    else
      match Hashtbl.find_opt heap key with
      | None -> []
      | Some parts ->
        List.fold_left
          (fun acc (p, v) ->
            if List.exists (fun b -> name_alias p b) base then vjoin acc v
            else acc)
          [] !parts
  in
  (* Contexts. *)
  let ctxs : (string, centry) Hashtbl.t = Hashtbl.create 64 in
  let ctx_order = Callgraph.contexts cg in
  List.iter
    (fun (r, key) ->
      match Callgraph.find_method cg key with
      | None -> ()
      | Some mref ->
        let n = Decl.nargs mref.Callgraph.mr_decl in
        (* registration is purely syntactic, so readers are known before
           the fixpoint starts: a heap-summary change re-enqueues exactly
           the contexts whose transfer consumed it *)
        Array.iter
          (fun ins ->
            let fkey =
              match (ins : Instr.t) with
              | Instr.Getfield (c, f) ->
                Some (Prog.field_key prog ~static:false c f)
              | Instr.Aload -> Some Prog.array_key
              | _ -> None
            in
            match fkey with
            | None -> ()
            | Some fk ->
              let tbl =
                match Hashtbl.find_opt heap_readers fk with
                | Some t -> t
                | None ->
                  let t = Hashtbl.create 4 in
                  Hashtbl.replace heap_readers fk t;
                  t
              in
              Hashtbl.replace tbl (Callgraph.ckey r key) ())
          mref.Callgraph.mr_decl.Decl.m_code;
        Hashtbl.replace ctxs (Callgraph.ckey r key)
          {
            c_root = r;
            c_key = key;
            c_mref = mref;
            e_args = Array.make n [];
            e_locked = None;
            e_spawned = [];
            e_joined = None;
            seen = false;
            s_ret = [];
            s_exit_spawned = [];
            s_exit_joined = None;
            callers = [];
            c_states = [||];
          })
    ctx_order;
  let n_roots = Array.length cg.Callgraph.roots in
  let all_roots = List.init n_roots (fun i -> i) in
  (* Worklist. *)
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let enqueue ck =
    if Hashtbl.mem ctxs ck && not (Hashtbl.mem queued ck) then begin
      Hashtbl.replace queued ck ();
      Queue.add ck queue
    end
  in
  (* Entry contribution from a call or spawn site; returns true on change. *)
  let contribute (ce : centry) ~args ~locked ~spawned ~joined =
    let changed = ref false in
    Array.iteri
      (fun i v ->
        if i < Array.length ce.e_args then begin
          let j = vjoin ce.e_args.(i) v in
          if j <> ce.e_args.(i) then begin
            ce.e_args.(i) <- j;
            changed := true
          end
        end)
      args;
    (match ce.e_locked with
    | None ->
      ce.e_locked <- Some locked;
      changed := true
    | Some cur ->
      let j = locked_join cur locked in
      if j <> cur then begin
        ce.e_locked <- Some j;
        changed := true
      end);
    let sp = union_sorted ce.e_spawned spawned in
    if sp <> ce.e_spawned then begin
      ce.e_spawned <- sp;
      changed := true
    end;
    (match ce.e_joined with
    | None ->
      ce.e_joined <- Some joined;
      changed := true
    | Some cur ->
      let j = inter_sorted cur joined in
      if j <> cur then begin
        ce.e_joined <- Some j;
        changed := true
      end);
    if not ce.seen then begin
      ce.seen <- true;
      changed := true
    end;
    !changed
  in
  (* Seed the main root's entries (main + clinits run lock-free at boot)
     and any context reachable only through a native callback (argument
     values and prior thread structure unknown). *)
  List.iter
    (fun (r, key) ->
      let ck = Callgraph.ckey r key in
      match Hashtbl.find_opt ctxs ck with
      | None -> ()
      | Some ce ->
        if r = 0 && List.mem key cg.Callgraph.roots.(0).Callgraph.r_entries then begin
          ignore
            (contribute ce
               ~args:(Array.make (Array.length ce.e_args) [])
               ~locked:[] ~spawned:[] ~joined:[]);
          enqueue ck
        end;
        let native_incoming =
          match Hashtbl.find_opt cg.Callgraph.incoming key with
          | None -> false
          | Some l ->
            List.exists
              (fun (s : Callgraph.site) ->
                match Callgraph.find_method cg s.Callgraph.s_caller with
                | Some { Callgraph.mr_decl = m; _ }
                  when s.Callgraph.s_pc < Array.length m.Decl.m_code -> (
                  match m.Decl.m_code.(s.Callgraph.s_pc) with
                  | Instr.Nativecall _ -> true
                  | _ -> false)
                | _ -> false)
              l
        in
        if native_incoming then begin
          ignore
            (contribute ce
               ~args:(Array.make (Array.length ce.e_args) [ NOpaque ])
               ~locked:[] ~spawned:all_roots ~joined:[]);
          enqueue ck
        end)
    ctx_order;
  (* Stack helpers. *)
  let pop st =
    match st.stack with
    | [] -> ([ NOpaque ], st)
    | v :: rest -> (v, { st with stack = rest })
  in
  let popn n st =
    (* returns the popped values topmost-first *)
    let rec go n st acc =
      if n = 0 then (List.rev acc, st)
      else
        let v, st = pop st in
        go (n - 1) st (v :: acc)
    in
    go n st []
  in
  let push v st = { st with stack = v :: st.stack } in
  let callee ce_root tkey = Hashtbl.find_opt ctxs (Callgraph.ckey ce_root tkey) in
  let resolved_static c f = Prog.field_key prog ~static:true c f in
  let heap_write ~dirty key base value =
    if base <> [] && value <> [] then begin
      let parts =
        match Hashtbl.find_opt heap key with
        | Some p -> p
        | None ->
          let p = ref [] in
          Hashtbl.replace heap key p;
          p
      in
      let targets = if List.mem NOpaque base then [ NOpaque ] else base in
      List.iter
        (fun p ->
          let cur = try List.assoc p !parts with Not_found -> [] in
          let j = vjoin cur value in
          if j <> cur then begin
            parts := (p, j) :: List.remove_assoc p !parts;
            Hashtbl.replace dirty key ()
          end)
        targets
    end
  in
  (* The pure transfer; interprocedural propagation happens in a separate
     post-solve pass so the engine's internal iteration stays effect-free. *)
  let transfer (ce : centry) ~pc (ins : Instr.t) st =
    let key = ce.c_key in
    match ins with
    | Instr.Const _ | Instr.Null | Instr.Currenttime | Instr.Readinput ->
      push [] st
    | Instr.Sconst _ ->
      (* interned: the same literal is one shared object program-wide, so
         its identity is deliberately opaque *)
      push [ NOpaque ] st
    | Instr.Load i ->
      push (if i < Array.length st.locals then st.locals.(i) else [ NOpaque ]) st
    | Instr.Store i ->
      let v, st = pop st in
      if i < Array.length st.locals then begin
        let locals = Array.copy st.locals in
        locals.(i) <- v;
        { st with locals }
      end
      else st
    | Instr.Dup ->
      let v, st = pop st in
      push v (push v st)
    | Instr.Pop ->
      let _, st = pop st in
      st
    | Instr.Swap ->
      let a, st = pop st in
      let b, st = pop st in
      push b (push a st)
    | Instr.Add | Instr.Sub | Instr.Mul | Instr.Div | Instr.Rem | Instr.Band
    | Instr.Bor | Instr.Bxor | Instr.Shl | Instr.Shr ->
      let _, st = pop st in
      let _, st = pop st in
      push [] st
    | Instr.Neg ->
      let _, st = pop st in
      push [] st
    | Instr.If _ | Instr.Ifrefeq _ | Instr.Ifrefne _ ->
      let _, st = pop st in
      let _, st = pop st in
      st
    | Instr.Ifz _ | Instr.Ifnull _ | Instr.Ifnonnull _ ->
      let _, st = pop st in
      st
    | Instr.Goto _ | Instr.Nop | Instr.Yieldpoint | Instr.Halt | Instr.Ret -> st
    | Instr.Retv | Instr.Throw | Instr.Print | Instr.Prints | Instr.Sleep
    | Instr.Interrupt | Instr.Notify | Instr.Notifyall | Instr.Putstatic _ ->
      let _, st = pop st in
      st
    | Instr.New _ | Instr.Newarray _ ->
      let st =
        match ins with
        | Instr.Newarray _ ->
          let _, st = pop st in
          st (* length *)
        | _ -> st
      in
      push
        (match site_at key pc with
        | Some id -> [ NSite (id, ce.c_root) ]
        | None -> [ NOpaque ])
        st
    | Instr.Getfield (c, f) ->
      let base, st = pop st in
      push (heap_read (Prog.field_key prog ~static:false c f) base) st
    | Instr.Putfield _ ->
      let _, st = pop st in
      let _, st = pop st in
      st
    | Instr.Getstatic (c, f) -> push [ NStatic (resolved_static c f) ] st
    | Instr.Aload ->
      let _, st = pop st in
      let base, st = pop st in
      push (heap_read Prog.array_key base) st
    | Instr.Astore ->
      let _, st = pop st in
      let _, st = pop st in
      let _, st = pop st in
      st
    | Instr.Arraylength | Instr.Instanceof _ ->
      let _, st = pop st in
      push [] st
    | Instr.Checkcast _ -> st
    | Instr.Monitorenter -> (
      let v, st = pop st in
      match v with
      | [ n ] when valid_lock n ->
        let d = match List.assoc_opt n st.locked with Some d -> d | None -> 0 in
        { st with locked = (n, d + 1) :: List.remove_assoc n st.locked
                           |> List.sort compare }
      | _ -> st)
    | Instr.Monitorexit -> (
      let v, st = pop st in
      match v with
      | [ n ] when valid_lock n -> (
        match List.assoc_opt n st.locked with
        | Some d when d > 1 ->
          { st with locked = (n, d - 1) :: List.remove_assoc n st.locked
                            |> List.sort compare }
        | Some _ -> { st with locked = List.remove_assoc n st.locked }
        | None -> st)
      | _ -> { st with locked = [] } (* released an unknown monitor *))
    | Instr.Wait ->
      (* released and reacquired around the park: held again afterwards *)
      let _, st = pop st in
      push [] st
    | Instr.Timedwait ->
      let _, st = pop st in
      let _, st = pop st in
      push [] st
    | Instr.Join -> (
      let v, st = pop st in
      match v with
      | [ NTid r ]
        when r < n_roots && cg.Callgraph.roots.(r).Callgraph.r_mult = Callgraph.Once
        ->
        { st with joined = union_sorted st.joined [ r ] }
      | _ -> st)
    | Instr.Spawn (c, mn) ->
      let n =
        match Prog.cha_targets prog c mn with
        | (_, tm) :: _ -> Decl.nargs tm
        | [] -> 0
      in
      let _, st = popn n st in
      let rid =
        Hashtbl.find_opt cg.Callgraph.root_of_spawn (Callgraph.spawn_key key pc)
      in
      let st =
        match rid with
        | Some r -> { st with spawned = union_sorted st.spawned [ r ] }
        | None -> st
      in
      push (match rid with Some r -> [ NTid r ] | None -> [ NOpaque ]) st
    | Instr.Invoke (c, mn) -> (
      match Prog.cha_targets prog c mn with
      | [] -> st
      | (_, tm) :: _ as targets ->
        let n = Decl.nargs tm in
        let _, st = popn n st in
        let tkeys = List.map (fun (tc, m) -> Callgraph.mkey tc m) targets in
        let balanced = List.for_all (Callgraph.is_balanced cg) tkeys in
        let summaries = List.filter_map (callee ce.c_root) tkeys in
        let locked = if balanced then st.locked else [] in
        let spawned =
          List.fold_left
            (fun acc s -> union_sorted acc s.s_exit_spawned)
            st.spawned summaries
        in
        let joined =
          (* must-effect: only when every target has a normal-exit summary *)
          match List.map (fun s -> s.s_exit_joined) summaries with
          | Some j0 :: rest when List.for_all (( <> ) None) rest ->
            let inter_all =
              List.fold_left
                (fun acc d ->
                  match d with Some j -> inter_sorted acc j | None -> acc)
                j0 rest
            in
            union_sorted st.joined inter_all
          | _ -> st.joined
        in
        let st = { st with locked; spawned; joined } in
        if Decl.returns tm then
          push
            (List.fold_left (fun acc s -> vjoin acc s.s_ret) [] summaries)
            st
        else st)
    | Instr.Nativecall _ ->
      (* Arity is a VM-registration fact, invisible here: keep the depth,
         forget the values. The escape harvest marks everything on the
         stack as globally reachable. *)
      { st with stack = List.map (fun _ -> [ NOpaque ]) st.stack }
  in
  (* Exceptional edge: stack replaced by the thrown reference; explicit
     monitors survive the unwind; a throwing call has still published the
     callee's may-spawn effect (and a throwing spawn may have started the
     thread). *)
  let exn_adapt (ce : centry) ~pc st =
    let m = ce.c_mref.Callgraph.mr_decl in
    let base = { st with stack = [ [ NOpaque ] ] } in
    match m.Decl.m_code.(pc) with
    | Instr.Invoke (c, mn) ->
      let tkeys =
        List.map (fun (tc, tm) -> Callgraph.mkey tc tm) (Prog.cha_targets prog c mn)
      in
      let balanced = List.for_all (Callgraph.is_balanced cg) tkeys in
      let summaries = List.filter_map (callee ce.c_root) tkeys in
      {
        base with
        locked = (if balanced then st.locked else []);
        spawned =
          List.fold_left
            (fun acc s -> union_sorted acc s.s_exit_spawned)
            st.spawned summaries;
      }
    | Instr.Spawn _ -> (
      match
        Hashtbl.find_opt cg.Callgraph.root_of_spawn
          (Callgraph.spawn_key ce.c_key pc)
      with
      | Some r -> { base with spawned = union_sorted st.spawned [ r ] }
      | None -> base)
    | _ -> base
  in
  let entry_state (ce : centry) =
    let m = ce.c_mref.Callgraph.mr_decl in
    let locals = Array.make (max m.Decl.m_nlocals (Array.length ce.e_args)) [] in
    Array.iteri (fun i v -> locals.(i) <- v) ce.e_args;
    let locked = match ce.e_locked with Some l -> l | None -> [] in
    let locked =
      if m.Decl.m_sync && Array.length ce.e_args > 0 then
        match ce.e_args.(0) with
        | [ n ] when valid_lock n && not (List.mem_assoc n locked) ->
          List.sort compare ((n, 1) :: locked)
        | _ -> locked
      else locked
    in
    {
      locals;
      stack = [];
      locked;
      spawned = ce.e_spawned;
      joined = (match ce.e_joined with Some j -> j | None -> []);
    }
  in
  let analyze (ce : centry) =
    let m = ce.c_mref.Callgraph.mr_decl in
    if Array.length m.Decl.m_code = 0 then ()
    else begin
      let states =
        Engine.solve
          {
            Engine.dir = Dataflow.Forward;
            code = m.Decl.m_code;
            handlers = m.Decl.m_handlers;
            entry = entry_state ce;
            transfer = (fun ~pc ins st -> transfer ce ~pc ins st);
            exn_adapt = Some (fun ~pc st -> exn_adapt ce ~pc st);
          }
      in
      ce.c_states <- states;
      (* Inter-procedural propagation from the solved states. *)
      let my_ck = Callgraph.ckey ce.c_root ce.c_key in
      let dirty = Hashtbl.create 4 in
      Array.iteri
        (fun pc stopt ->
          match stopt with
          | None -> ()
          | Some st -> (
            match m.Decl.m_code.(pc) with
            | Instr.Invoke (c, mn) ->
              let targets = Prog.cha_targets prog c mn in
              let n = match targets with (_, tm) :: _ -> Decl.nargs tm | [] -> 0 in
              let vs, _ = popn n st in
              (* vs is topmost-first = arg n-1 first; reverse to arg order *)
              let args = Array.of_list (List.rev vs) in
              List.iter
                (fun (tc, tm) ->
                  let tkey = Callgraph.mkey tc tm in
                  match callee ce.c_root tkey with
                  | None -> ()
                  | Some tce ->
                    if not (List.mem my_ck tce.callers) then
                      tce.callers <- my_ck :: tce.callers;
                    if
                      contribute tce ~args ~locked:st.locked ~spawned:st.spawned
                        ~joined:st.joined
                    then enqueue (Callgraph.ckey ce.c_root tkey))
                targets
            | Instr.Spawn (c, mn) -> (
              let targets = Prog.cha_targets prog c mn in
              let n = match targets with (_, tm) :: _ -> Decl.nargs tm | [] -> 0 in
              let vs, _ = popn n st in
              let args = Array.of_list (List.rev vs) in
              match
                Hashtbl.find_opt cg.Callgraph.root_of_spawn
                  (Callgraph.spawn_key ce.c_key pc)
              with
              | None -> ()
              | Some rid ->
                List.iter
                  (fun (tc, tm) ->
                    let tkey = Callgraph.mkey tc tm in
                    match callee rid tkey with
                    | None -> ()
                    | Some tce ->
                      (* the child starts lock-free; it can overlap anything
                         spawned before it (including itself) *)
                      if
                        contribute tce ~args ~locked:[]
                          ~spawned:(union_sorted st.spawned [ rid ])
                          ~joined:st.joined
                      then enqueue (Callgraph.ckey rid tkey))
                  targets)
            | Instr.Putfield (c, f) ->
              let value, st1 = pop st in
              let base, _ = pop st1 in
              heap_write ~dirty (Prog.field_key prog ~static:false c f) base
                value
            | Instr.Astore ->
              let value, st1 = pop st in
              let _, st2 = pop st1 in
              let base, _ = pop st2 in
              heap_write ~dirty Prog.array_key base value
            | _ -> ()))
        states;
      (* A grown field summary re-runs every context that reads the field. *)
      Hashtbl.iter
        (fun fk () ->
          match Hashtbl.find_opt heap_readers fk with
          | None -> ()
          | Some tbl -> Hashtbl.iter (fun ck () -> enqueue ck) tbl)
        dirty;
      (* Summaries. *)
      let ret = ref ce.s_ret in
      let exit_spawned = ref ce.s_exit_spawned in
      let exit_joined = ref ce.s_exit_joined in
      Array.iteri
        (fun pc stopt ->
          match stopt with
          | None -> ()
          | Some st -> (
            exit_spawned := union_sorted !exit_spawned st.spawned;
            match m.Decl.m_code.(pc) with
            | Instr.Retv ->
              let v, _ = pop st in
              ret := vjoin !ret v;
              exit_joined :=
                Some
                  (match !exit_joined with
                  | None -> st.joined
                  | Some j -> inter_sorted j st.joined)
            | Instr.Ret ->
              exit_joined :=
                Some
                  (match !exit_joined with
                  | None -> st.joined
                  | Some j -> inter_sorted j st.joined)
            | _ -> ()))
        states;
      if
        !ret <> ce.s_ret
        || !exit_spawned <> ce.s_exit_spawned
        || !exit_joined <> ce.s_exit_joined
      then begin
        ce.s_ret <- !ret;
        ce.s_exit_spawned <- !exit_spawned;
        ce.s_exit_joined <- !exit_joined;
        List.iter enqueue ce.callers
      end
    end
  in
  (* Chaotic iteration with a generous cap; on overflow the harvest drops
     all lock/ordering facts (fully conservative) rather than report from a
     non-fixpoint. *)
  let max_runs = max 2000 (64 * List.length ctx_order) in
  let runs = ref 0 in
  while (not (Queue.is_empty queue)) && !runs < max_runs do
    let ck = Queue.pop queue in
    Hashtbl.remove queued ck;
    incr runs;
    match Hashtbl.find_opt ctxs ck with
    | Some ce when ce.seen -> analyze ce
    | _ -> ()
  done;
  let converged = Queue.is_empty queue in
  (* Harvest accesses, escape stores, and lock acquisitions from the final
     states. On divergence every refutable fact degrades: no locks, no
     ordering, opaque bases, no acquisition edges. *)
  let accesses = ref [] in
  let stores = ref [] in
  let acquires = ref [] in
  let harvest (ce : centry) =
    let m = ce.c_mref.Callgraph.mr_decl in
    let key = ce.c_key in
    (* a synchronized method acquires its receiver at entry *)
    (if converged && m.Decl.m_sync && Array.length ce.e_args > 0 && ce.seen then
       match ce.e_args.(0) with
       | [ n ] when valid_lock n ->
         let held =
           match ce.e_locked with
           | Some l -> List.filter (fun h -> h <> n) (List.map fst l)
           | None -> []
         in
         acquires :=
           {
             aq_lock = n;
             aq_held = List.filter valid_lock held;
             aq_root = ce.c_root;
             aq_spawned = ce.e_spawned;
             aq_joined = (match ce.e_joined with Some j -> j | None -> []);
             aq_where = key ^ ":0";
           }
           :: !acquires
       | _ -> ());
    Array.iteri
      (fun pc stopt ->
        match stopt with
        | None -> ()
        | Some st ->
          let where = key ^ ":" ^ string_of_int pc in
          let locks =
            if converged then List.map fst st.locked else []
          in
          let spawned = if converged then st.spawned else all_roots in
          let joined = if converged then st.joined else [] in
          (if converged then
             match m.Decl.m_code.(pc) with
             | Instr.Monitorenter -> (
               match st.stack with
               | [ n ] :: _ when valid_lock n && not (List.mem_assoc n st.locked)
                 ->
                 acquires :=
                   {
                     aq_lock = n;
                     aq_held = List.filter valid_lock locks;
                     aq_root = ce.c_root;
                     aq_spawned = spawned;
                     aq_joined = joined;
                     aq_where = where;
                   }
                   :: !acquires
               | _ -> ())
             | _ -> ());
          let acc field write base =
            let base = if converged then base else [ NOpaque ] in
            accesses :=
              {
                acc_field = field;
                acc_write = write;
                acc_root = ce.c_root;
                acc_locks = locks;
                acc_base = base;
                acc_spawned = spawned;
                acc_joined = joined;
                acc_where = where;
              }
              :: !accesses
          in
          let nth n =
            match List.nth_opt st.stack n with
            | Some v -> v
            | None -> [ NOpaque ]
          in
          (match m.Decl.m_code.(pc) with
          | Instr.Getfield (c, f) ->
            acc (Prog.field_key prog ~static:false c f) false (nth 0)
          | Instr.Putfield (c, f) ->
            acc (Prog.field_key prog ~static:false c f) true (nth 1);
            stores := { st_value = nth 0; st_sink = Into (nth 1) } :: !stores
          | Instr.Getstatic (c, f) ->
            acc (resolved_static c f ^ static_suffix) false []
          | Instr.Putstatic (c, f) ->
            acc (resolved_static c f ^ static_suffix) true [];
            stores := { st_value = nth 0; st_sink = Global } :: !stores
          | Instr.Aload -> acc Prog.array_key false (nth 1)
          | Instr.Astore ->
            acc Prog.array_key true (nth 2);
            stores := { st_value = nth 0; st_sink = Into (nth 2) } :: !stores
          | Instr.Spawn (c, mn) ->
            let n =
              match Prog.cha_targets prog c mn with
              | (_, tm) :: _ -> Decl.nargs tm
              | [] -> 0
            in
            let vs, _ = popn n st in
            List.iter
              (fun v -> stores := { st_value = v; st_sink = Global } :: !stores)
              vs
          | Instr.Nativecall _ ->
            List.iter
              (fun v -> stores := { st_value = v; st_sink = Global } :: !stores)
              st.stack
          | _ -> ()))
      ce.c_states
  in
  List.iter
    (fun (r, key) ->
      match Hashtbl.find_opt ctxs (Callgraph.ckey r key) with
      | Some ce -> harvest ce
      | None -> ())
    ctx_order;
  {
    cg;
    sites;
    accesses = List.rev !accesses;
    stores = List.rev !stores;
    acquires = List.rev !acquires;
    converged;
  }
