(* Thread-escape fixpoint over allocation sites.

   A site is *escaping* when an object allocated there may become reachable
   by another thread: stored into a static, passed as a spawn argument,
   handed to a native call (callbacks and retention are invisible at the
   Decl level), or stored into an object that itself escapes (including any
   base whose identity is opaque or read from a static). Everything else is
   confined to its allocating thread, and accesses through provably
   confined bases are excluded from race pairing by the report. *)

let solve (res : Lockset.result) : bool array =
  let n = Array.length res.Lockset.sites in
  let escaping = Array.make n false in
  let edges = Array.make n [] in (* base site -> value sites stored into it *)
  let queue = Queue.create () in
  let mark i =
    if not escaping.(i) then begin
      escaping.(i) <- true;
      Queue.add i queue
    end
  in
  let sites_of v =
    List.filter_map (function Lockset.NSite (i, _) -> Some i | _ -> None) v
  in
  List.iter
    (fun { Lockset.st_value; st_sink } ->
      let vs = sites_of st_value in
      if vs <> [] then
        match st_sink with
        | Lockset.Global -> List.iter mark vs
        | Lockset.Into base ->
          if
            List.exists
              (function
                | Lockset.NOpaque | Lockset.NStatic _ -> true
                | Lockset.NSite _ | Lockset.NTid _ -> false)
              base
          then List.iter mark vs
          else
            List.iter
              (function
                | Lockset.NSite (b, _) -> edges.(b) <- vs @ edges.(b)
                | _ -> ())
              base)
    res.Lockset.stores;
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    List.iter mark edges.(b)
  done;
  escaping
