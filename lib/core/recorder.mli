(** Record mode: wraps the live hooks so that every non-deterministic
    result is captured on its tape while execution proceeds exactly as it
    would have live. Deterministic operations — including all
    synchronization outcomes and scheduler decisions — are deliberately
    not recorded: replaying the thread package reproduces them (the
    paper's cross-optimization payoff). *)

(** Install only the clock/input/native capture (every replay scheme needs
    this part — footnote 7 of the paper); baseline schemes combine it with
    their own switch instrumentation. *)
val attach_io : Vm.Rt.t -> Session.t -> unit

(** Full DejaVu record attachment: {!attach_io} plus the Figure-2
    yield-point hook. Attach before [Vm.boot] so initialization-time side
    effects stay symmetric with replay. *)
val attach : Vm.Rt.t -> Session.t

(** Like {!attach}, but the tapes drain into the writer's bounded buffers:
    recorder-side trace memory is constant in event count. Finish with
    {!finish_stream} (or [Trace.Writer.abort] to discard). *)
val attach_stream : Vm.Rt.t -> Trace.Writer.t -> Session.t

(** Produce the trace, stamped with the program digest. *)
val finish : Session.t -> Trace.t

(** Seal a streamed recording into its destination file (atomic rename);
    aborts the writer on error so no partial trace is left behind. *)
val finish_stream : Session.t -> Trace.Writer.t -> Trace.sizes
