(** Trace representation and codec.

    Following the paper (footnote 7: wall-clock logging "need be done
    independently of thread switch information in all replay schemes"), a
    trace holds one tape per non-deterministic event kind:

    - switches: yield-point deltas ([nyp]) between preemptive thread
      switches (Figure 2);
    - clocks: (reason, value) pairs for every wall-clock read;
    - inputs: external input values;
    - natives: native-call outcomes (result and callback parameters).

    Tapes are flat integer sequences; the file format is a zigzag-varint
    stream with a header carrying the program's structural digest so a
    trace cannot be replayed against the wrong code. *)

(** Raised when a replay consumes past the end of a tape; the payload is
    the tape name. *)
exception End_of_tape of string

(** Raised by {!of_bytes} on a malformed trace. *)
exception Format_error of string

(** Growable integer sequences with an independent read cursor. *)
module Tape : sig
  type t = {
    name : string;
    mutable data : int array;
    mutable len : int;
    mutable rd : int;  (** read cursor (replay) *)
  }

  val create : string -> t

  val of_array : string -> int array -> t

  val push : t -> int -> unit

  (** Read the next word; raises {!End_of_tape}. *)
  val read : t -> int

  val read_opt : t -> int option

  val remaining : t -> int

  val length : t -> int

  val to_array : t -> int array
end

type t = {
  program_digest : string;
  analysis_hash : string;
      (** fingerprint of the static race audit ({!Audit.hash_for}) the
          program was recorded under; [""] means recorded without an
          audit. The replayer refuses a trace stamped with a different
          audit. *)
  switches : int array;
  clocks : int array;  (** flattened (reason, value) pairs *)
  inputs : int array;
  natives : int array;  (** flattened native outcome records *)
}

(** Encode a clock-read reason (0 app, 1 scheduler, 2 idle advance). *)
val tag_of_reason : Vm.Rt.clock_reason -> int

val reason_name : int -> string

(** Append a native outcome record:
    [id; has_result; result?; n_callbacks; (uid; nargs; args...)*]. *)
val push_native_outcome : Tape.t -> int -> Vm.Rt.native_outcome -> unit

val read_native_outcome : Tape.t -> int * Vm.Rt.native_outcome

type sizes = {
  n_switches : int;
  n_clock_reads : int;
  n_inputs : int;
  n_native_words : int;
  total_words : int;
  total_bytes : int;  (** size of the serialized form *)
}

(** Zigzag-varint primitives (exposed for the property tests). *)
val put_varint : Buffer.t -> int -> unit

val get_varint : string -> int -> int * int

val to_bytes : t -> string

val of_bytes : string -> t

val save : string -> t -> unit

val load : string -> t

val sizes : t -> sizes

val pp_sizes : Format.formatter -> sizes -> unit
