(** Trace representation and codec.

    Following the paper (footnote 7: wall-clock logging "need be done
    independently of thread switch information in all replay schemes"), a
    trace holds one tape per non-deterministic event kind:

    - switches: yield-point deltas ([nyp]) between preemptive thread
      switches (Figure 2);
    - clocks: (reason, value) pairs for every wall-clock read;
    - inputs: external input values;
    - natives: native-call outcomes (result and callback parameters).

    Tapes are flat integer sequences; the file format is a zigzag-varint
    stream with a header carrying the program's structural digest so a
    trace cannot be replayed against the wrong code. *)

(** Raised when a replay consumes past the end of a tape; the payload is
    the tape name. *)
exception End_of_tape of string

(** Raised by {!of_bytes} on a malformed trace. *)
exception Format_error of string

(** Growable integer sequences with an independent read cursor. A tape can
    also be wired to a streaming side: a {e sink} drains full buffers during
    recording ({!Writer}), a {e refill} loads chunks on demand during replay
    ({!Reader}); in both cases resident memory stays bounded by the
    chunk/buffer size rather than the event count. *)
module Tape : sig
  type t = {
    name : string;
    mutable data : int array;
    mutable len : int;
    mutable rd : int;  (** read cursor (replay) *)
    mutable base : int;
        (** elements flushed to a sink / consumed by refills before
            [data.(0)] *)
    mutable pending : int;
        (** elements still held by the refill source beyond [data] *)
    mutable sink : (int array -> int -> unit) option;
    mutable refill : (t -> bool) option;
  }

  val create : string -> t

  val of_array : string -> int array -> t

  (** Fixed-capacity buffer drained through the sink whenever it fills. *)
  val with_sink : string -> cap:int -> (int array -> int -> unit) -> t

  (** Chunk-refilled tape; [pending] is the source's total element count so
      {!remaining} stays exact. The refill returns false at end of stream. *)
  val of_refill : string -> pending:int -> (t -> bool) -> t

  (** True when the tape has a sink or refill attached; such tapes do not
      support {!to_array} or session checkpointing. *)
  val is_streaming : t -> bool

  (** Drain the buffered prefix through the sink (no-op otherwise). *)
  val flush : t -> unit

  val push : t -> int -> unit

  (** Read the next word; raises {!End_of_tape}. *)
  val read : t -> int

  val read_opt : t -> int option

  (** Unread elements, including those a refill has not yet loaded. *)
  val remaining : t -> int

  (** Total elements ever pushed (including flushed ones). *)
  val length : t -> int

  val to_array : t -> int array
end

type t = {
  program_digest : string;
  analysis_hash : string;
      (** fingerprint of the static race audit ({!Audit.hash_for}) the
          program was recorded under; [""] means recorded without an
          audit. The replayer refuses a trace stamped with a different
          audit. *)
  switches : int array;
  clocks : int array;  (** flattened (reason, value) pairs *)
  inputs : int array;
  natives : int array;  (** flattened native outcome records *)
  picks : int array;
      (** dispatch-override decisions — one tid per [h_pick] consultation —
          recorded only under a controlled scheduler. The on-disk section
          is optional: absent when empty, so ordinary recordings keep the
          original 4-section DJVU2 layout byte-for-byte. *)
}

(** Encode a clock-read reason (0 app, 1 scheduler, 2 idle advance). *)
val tag_of_reason : Vm.Rt.clock_reason -> int

val reason_name : int -> string

(** Append a native outcome record:
    [id; has_result; result?; n_callbacks; (uid; nargs; args...)*]. *)
val push_native_outcome : Tape.t -> int -> Vm.Rt.native_outcome -> unit

val read_native_outcome : Tape.t -> int * Vm.Rt.native_outcome

type sizes = {
  n_switches : int;
  n_clock_reads : int;
  n_inputs : int;
  n_native_words : int;
  n_picks : int;
  total_words : int;
  total_bytes : int;  (** size of the serialized form *)
}

(** Zigzag-varint primitives (exposed for the property tests and the
    server's wire protocol). *)
val put_varint : Buffer.t -> int -> unit

val get_varint : string -> int -> int * int

(** Encoded byte size of one value, without producing the bytes. *)
val varint_size : int -> int

val to_bytes : t -> string

val of_bytes : string -> t

(** Byte size of the serialized form, computed arithmetically (no buffer is
    materialized). Always equals [String.length (to_bytes t)]. *)
val encoded_size : t -> int

(** Atomic write: temp file + rename, so a crash mid-write never leaves a
    truncated trace under the final name. *)
val save : string -> t -> unit

val load : string -> t

val sizes : t -> sizes

val pp_sizes : Format.formatter -> sizes -> unit

(** Incremental trace encoder: spills each tape's varint-encoded elements to
    a scratch file as its bounded buffer fills, then {!Writer.finish}
    stitches the DJVU2 header and sections into the destination via temp
    file + atomic rename. Output is byte-identical to {!to_bytes} of the
    materialized trace; recorder-side memory stays constant in the event
    count. *)
module Writer : sig
  type t

  val default_buf_words : int

  (** [create ?buf_words path] opens a writer targeting [path]; scratch
      files live next to it (same filesystem, so the final rename is
      atomic). *)
  val create : ?buf_words:int -> string -> t

  (** The five sink-wired tapes, in section order: switches, clocks,
      inputs, natives, picks. The picks section is stitched into the file
      only when non-empty, mirroring {!to_bytes}. *)
  val tapes : t -> Tape.t array

  (** High-water mark of words buffered in memory across all tapes. *)
  val peak_buffered_words : t -> int

  (** Words currently buffered (bounded by 4 x buf_words). *)
  val buffered_words : t -> int

  (** Flush tails, write the final file, atomic-rename it into place,
      remove scratch files; returns the trace statistics (tracked
      incrementally — the trace is never materialized). *)
  val finish : t -> program_digest:string -> analysis_hash:string -> sizes

  (** Discard a recording: close and remove all scratch state. Idempotent;
      never leaves a partial trace under the destination name. *)
  val abort : t -> unit
end

(** Bounded-memory trace reader: parses the header and locates the four
    sections in one linear scan, then serves each tape in
    [chunk_words]-element chunks refilled on demand. Resident memory is
    O(chunk), constant in trace length. Raises {!Format_error} on a
    truncated or corrupted file. *)
module Reader : sig
  type t

  val default_chunk_words : int

  val open_file : ?chunk_words:int -> string -> t

  val program_digest : t -> string

  val analysis_hash : t -> string

  (** The five refill-wired tapes, in section order: switches, clocks,
      inputs, natives, picks (served empty when the file predates the
      optional picks section). *)
  val tapes : t -> Tape.t array

  (** Per-section element counts from the header scan. *)
  val counts : t -> int array

  val close : t -> unit
end
