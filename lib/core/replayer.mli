(** Replay mode: deterministic operations re-execute; non-deterministic
    operations are systematically replaced by the retrieval of their
    recorded results. The environment's clock, input, and native code
    never run. Every retrieval checks that the event kind matches what the
    recording says comes next; a mismatch raises {!Divergence}. *)

exception Divergence of string

(** Install only the clock/input/native substitution. *)
val attach_io : Vm.Rt.t -> Session.t -> unit

(** Reject a header recorded for a different program or under a different
    race audit. *)
val check_header :
  Vm.Rt.t -> program_digest:string -> analysis_hash:string -> unit

(** Reject a trace recorded for a different program (digest check). *)
val check_digest : Vm.Rt.t -> Trace.t -> unit

(** Full DejaVu replay attachment: digest check, {!attach_io}, and the
    Figure-2 replay yield-point hook. *)
val attach : Vm.Rt.t -> Trace.t -> Session.t

(** Like {!attach}, over a streaming reader: replay-side trace memory is
    O(chunk) in trace length. *)
val attach_stream : Vm.Rt.t -> Trace.Reader.t -> Session.t

(** Unconsumed-trace warnings, empty after a complete replay. *)
val check_complete : Session.t -> string list
