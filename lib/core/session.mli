(** Shared state of a DejaVu session (record or replay): the logical clock
    ([nyp] + [liveclock] of Figure 2), the per-kind tapes, and the
    symmetric event ring. *)

(** Raised when a replayed execution asks for an event that does not match
    the recording (wrong kind, wrong native, exhausted tape, or a trace
    recorded for a different program). *)
exception Divergence of string

val divergence : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Like {!divergence}, appending the current execution position (class,
    method, pc, thread, instruction count) so a replay against edited code
    reports where behaviour first departed from the recording. *)
val divergence_at : Vm.Rt.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

type mode = Record | Replay

type t = {
  vm : Vm.Rt.t;
  mode : mode;
  ring : Ring.t;
  switches : Trace.Tape.t;
  clocks : Trace.Tape.t;
  inputs : Trace.Tape.t;
  natives : Trace.Tape.t;
  picks : Trace.Tape.t;
      (** dispatch overrides; empty unless a controlled scheduler drove the
          recording *)
  mutable nyp : int;  (** yield points since the last thread switch *)
  mutable liveclock : bool;
  mutable switch_bit : bool;  (** the software thread-switch bit *)
  mutable yieldpoints_seen : int;
  mutable switches_done : int;
}

(** Create a record-mode session: fresh tapes, symmetric initialization
    (warm-up I/O, ring allocation). *)
val for_record : Vm.Rt.t -> t

(** Create a replay-mode session over a trace; primes [nyp] with the first
    recorded switch delta. *)
val for_replay : Vm.Rt.t -> Trace.t -> t

(** Record-mode session whose tapes drain into the writer's bounded
    buffers: recorder-side trace memory stays constant in event count. *)
val for_record_stream : Vm.Rt.t -> Trace.Writer.t -> t

(** Replay-mode session over the reader's chunk-refilled tapes (O(1)
    memory in trace length); primes [nyp] like {!for_replay}. *)
val for_replay_stream : Vm.Rt.t -> Trace.Reader.t -> t

(** True when any tape is sink- or refill-wired; such sessions refuse
    {!snapshot}/{!restore} (checkpoints cannot rewind flushed data). *)
val streaming : t -> bool

(** Freeze a (record) session's tapes into a trace, optionally stamped
    with the static race-audit fingerprint (default [""] = unaudited). *)
val to_trace : ?analysis_hash:string -> t -> string -> Trace.t

(** Session state that must roll back together with a VM snapshot
    (checkpoint-accelerated time travel). *)
type snap

val snapshot : t -> snap

val restore : t -> snap -> unit

(** Human-readable warnings about unconsumed trace words after a replay. *)
val leftovers : t -> string list
