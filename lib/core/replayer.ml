(* Replay mode: deterministic operations re-execute; non-deterministic
   operations are systematically replaced by the retrieval of their recorded
   results. The environment's clock, input, and native code never run. Each
   retrieval checks that the event kind the program is asking for matches
   what the recording said comes next — any mismatch is a divergence, which
   (given symmetric instrumentation) indicates the program or platform
   changed between record and replay. *)

exception Divergence = Session.Divergence

(* Install the clock/input/native substitution only; yield-point
   instrumentation is installed separately (see Recorder.attach_io). *)
let attach_io (vm : Vm.Rt.t) (s : Session.t) =
  vm.hooks.h_clock <-
    (fun vm reason ->
      let expect = Trace.tag_of_reason reason in
      let tag =
        try Trace.Tape.read s.clocks
        with Trace.End_of_tape _ ->
          Session.divergence_at vm "clock read (%s) beyond the recorded trace"
            (Trace.reason_name expect)
      in
      if tag <> expect then
        Session.divergence_at vm
          "clock read reason mismatch: recorded %s, got %s"
          (Trace.reason_name tag) (Trace.reason_name expect);
      let v = Trace.Tape.read s.clocks in
      Ring.put s.ring v;
      v);
  vm.hooks.h_input <-
    (fun vm ->
      let v =
        try Trace.Tape.read s.inputs
        with Trace.End_of_tape _ ->
          Session.divergence_at vm "input read beyond the recorded trace"
      in
      Ring.put s.ring v;
      v);
  vm.hooks.h_native <-
    (fun vm nat _args ->
      let nat_id, outcome =
        try Trace.read_native_outcome s.natives
        with Trace.End_of_tape _ ->
          Session.divergence_at vm "native call %s beyond the recorded trace"
            nat.nat_name
      in
      if nat_id <> nat.nat_id then
        Session.divergence_at vm
          "native mismatch: recorded id %d, executing %s" nat_id nat.nat_name;
      Ring.put s.ring nat.nat_id;
      outcome)

let check_header (vm : Vm.Rt.t) ~program_digest ~analysis_hash =
  let own_digest = Bytecode.Decl.digest vm.program in
  if program_digest <> own_digest then
    Session.divergence
      "trace was recorded for a different program (digest %s, expected %s)"
      program_digest own_digest;
  (* same code, but a different race audit: the recording may have relied
     on thread-local assumptions this side does not share — refuse. "" is
     a trace recorded without an audit stamp, accepted as unchecked. *)
  if analysis_hash <> "" then begin
    let own_hash = Audit.hash_for vm.program in
    if analysis_hash <> own_hash then
      Session.divergence
        "trace was recorded under a different race audit (hash %s, expected \
         %s)"
        analysis_hash own_hash
  end

let check_digest (vm : Vm.Rt.t) (trace : Trace.t) =
  check_header vm ~program_digest:trace.program_digest
    ~analysis_hash:trace.analysis_hash

(* Re-drive recorded dispatch overrides. A trace with a picks section was
   recorded under a controlled scheduler whose [h_pick] steered dispatch
   away from FIFO order; replay must install the same overrides or the
   thread package — ordinary replayed state everywhere else — would pick
   different threads and diverge immediately. The consultation points align
   because dispatch consults [h_pick] at deterministic places and the
   recorder pushed one value per consultation. Traces without picks leave
   the hook uninstalled, preserving the record/replay hook symmetry of
   ordinary recordings. *)
let attach_picks (vm : Vm.Rt.t) (s : Session.t) =
  if Trace.Tape.remaining s.picks > 0 then
    vm.hooks.h_pick <-
      Some
        (fun vm _fifo ->
          match Trace.Tape.read_opt s.picks with
          | Some want -> want
          | None ->
            Session.divergence_at vm
              "dispatch override beyond the recorded schedule")

let attach (vm : Vm.Rt.t) (trace : Trace.t) : Session.t =
  check_digest vm trace;
  let s = Session.for_replay vm trace in
  attach_io vm s;
  attach_picks vm s;
  vm.hooks.h_yieldpoint <- Figure2.replay s;
  s

(* Streaming replay attachment: the header was already parsed by the reader;
   the tapes refill chunk by chunk, so replay-side trace memory is O(chunk)
   regardless of trace length. *)
let attach_stream (vm : Vm.Rt.t) (r : Trace.Reader.t) : Session.t =
  check_header vm
    ~program_digest:(Trace.Reader.program_digest r)
    ~analysis_hash:(Trace.Reader.analysis_hash r);
  let s = Session.for_replay_stream vm r in
  attach_io vm s;
  attach_picks vm s;
  vm.hooks.h_yieldpoint <- Figure2.replay s;
  s

let check_complete (s : Session.t) = Session.leftovers s
