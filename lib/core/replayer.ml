(* Replay mode: deterministic operations re-execute; non-deterministic
   operations are systematically replaced by the retrieval of their recorded
   results. The environment's clock, input, and native code never run. Each
   retrieval checks that the event kind the program is asking for matches
   what the recording said comes next — any mismatch is a divergence, which
   (given symmetric instrumentation) indicates the program or platform
   changed between record and replay. *)

exception Divergence = Session.Divergence

(* Install the clock/input/native substitution only; yield-point
   instrumentation is installed separately (see Recorder.attach_io). *)
let attach_io (vm : Vm.Rt.t) (s : Session.t) =
  vm.hooks.h_clock <-
    (fun vm reason ->
      let expect = Trace.tag_of_reason reason in
      let tag =
        try Trace.Tape.read s.clocks
        with Trace.End_of_tape _ ->
          Session.divergence_at vm "clock read (%s) beyond the recorded trace"
            (Trace.reason_name expect)
      in
      if tag <> expect then
        Session.divergence_at vm
          "clock read reason mismatch: recorded %s, got %s"
          (Trace.reason_name tag) (Trace.reason_name expect);
      let v = Trace.Tape.read s.clocks in
      Ring.put s.ring v;
      v);
  vm.hooks.h_input <-
    (fun vm ->
      let v =
        try Trace.Tape.read s.inputs
        with Trace.End_of_tape _ ->
          Session.divergence_at vm "input read beyond the recorded trace"
      in
      Ring.put s.ring v;
      v);
  vm.hooks.h_native <-
    (fun vm nat _args ->
      let nat_id, outcome =
        try Trace.read_native_outcome s.natives
        with Trace.End_of_tape _ ->
          Session.divergence_at vm "native call %s beyond the recorded trace"
            nat.nat_name
      in
      if nat_id <> nat.nat_id then
        Session.divergence_at vm
          "native mismatch: recorded id %d, executing %s" nat_id nat.nat_name;
      Ring.put s.ring nat.nat_id;
      outcome)

let check_digest (vm : Vm.Rt.t) (trace : Trace.t) =
  let own_digest = Bytecode.Decl.digest vm.program in
  if trace.program_digest <> own_digest then
    Session.divergence
      "trace was recorded for a different program (digest %s, expected %s)"
      trace.program_digest own_digest;
  (* same code, but a different race audit: the recording may have relied
     on thread-local assumptions this side does not share — refuse. "" is
     a trace recorded without an audit stamp, accepted as unchecked. *)
  if trace.analysis_hash <> "" then begin
    let own_hash = Audit.hash_for vm.program in
    if trace.analysis_hash <> own_hash then
      Session.divergence
        "trace was recorded under a different race audit (hash %s, expected \
         %s)"
        trace.analysis_hash own_hash
  end

let attach (vm : Vm.Rt.t) (trace : Trace.t) : Session.t =
  check_digest vm trace;
  let s = Session.for_replay vm trace in
  attach_io vm s;
  vm.hooks.h_yieldpoint <- Figure2.replay s;
  s

let check_complete (s : Session.t) = Session.leftovers s
