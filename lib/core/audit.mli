(** Bridge from the record/replay core to the static race audit: memoized
    (by program digest) analysis reports, the trace-header fingerprint,
    and the Observer's thread-local skip predicate. *)

(** The full audit for a program, computed at most once per program
    digest. *)
val report_for : Bytecode.Decl.program -> Analysis.Report.t

(** The audit fingerprint stamped into trace headers. *)
val hash_for : Bytecode.Decl.program -> string

(** [skip_for p key] is true exactly for field keys the audit proved
    thread-local — safe to exempt from dynamic shared-access
    bookkeeping. *)
val skip_for : Bytecode.Decl.program -> string -> bool
