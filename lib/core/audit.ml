(* Bridge from the record/replay core to the static race audit
   (lib/analysis). The recorder stamps every trace with the audit's
   summary hash; the replayer recomputes it and refuses a mismatch, so a
   replay can never silently run under different racy/thread-local
   assumptions than the recording — which matters once the Observer's
   thread-local fast path (skip tables built from the same audit) is
   enabled on one side.

   Reports are memoized by program digest: benches and tests record the
   same program many times, and the whole-program analysis must not be
   re-run per recording. The table is shared by every replay shard (one VM
   per domain), so access is serialized by a mutex — the analysis of a
   given program runs once per process, not once per shard. *)

let reports : (string, Analysis.Report.t) Hashtbl.t = Hashtbl.create 8

let reports_mutex = Mutex.create ()

let report_for (p : Bytecode.Decl.program) : Analysis.Report.t =
  let d = Bytecode.Decl.digest p in
  Mutex.protect reports_mutex (fun () ->
      match Hashtbl.find_opt reports d with
      | Some r -> r
      | None ->
        let r = Analysis.run p in
        Hashtbl.replace reports d r;
        r)

let hash_for p = (report_for p).Analysis.Report.summary_hash

(* Skip predicate for the Observer's sharing tracker: true exactly for the
   field keys the audit proved thread-local. MHP + allocation-root alias
   refinement widen that set (spawn/join-ordered or provably disjoint
   per-thread structures classify Thread_local even when they escape), so
   the fast path extends to every MHP-refuted field with no change here —
   those fields have no conflicting pair, hence nothing the dynamic
   tracker could ever report. *)
let skip_for p : string -> bool =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun k -> Hashtbl.replace tbl k ())
    (Analysis.Report.thread_local_fields (report_for p));
  fun key -> Hashtbl.mem tbl key
