(* Symmetric side effects (paper section 2.4). DejaVu cannot replay its own
   instrumentation, so every side effect the instrumentation has on the VM
   must occur identically in record and replay modes:

   - allocation: the event ring lives in the VM heap, allocated at session
     attach in both modes (Ring.create) and written at the same execution
     points in both modes;
   - loading/compilation: record-only and replay-only code paths are both
     exercised ("compiled") at initialization by the I/O warm-up below,
     mirroring DejaVu pre-loading its classes and forcing both the input
     and output methods to be compiled by writing and re-reading a file;
   - stack overflow: before the instrumentation drives a thread switch it
     eagerly grows the runtime stack when headroom falls below a threshold,
     so stack-growth points cannot differ between modes;
   - logical clock: yield points executed while the instrumentation runs are
     not counted (the liveclock flag in Figure 2). *)

(* Write a small temp file and read it back: both the write path and the
   read path of the trace I/O get exercised during initialization in BOTH
   modes, so neither mode performs first-use work the other does not.
   Memoized per process — first-use compilation only exists once, and the
   warm-up has no VM-visible effects (it runs before the session's ring is
   allocated), so repeating the file round-trip on every attach would only
   tax session setup with ~0.4ms of host I/O. *)
let warmup_once () =
  let sample =
    Trace.to_bytes
      {
        Trace.program_digest = "warmup";
        analysis_hash = "";
        switches = [| 1; 2; 3 |];
        clocks = [| 0; 42 |];
        inputs = [| 7 |];
        natives = [||];
        picks = [||];
      }
  in
  let path = Filename.temp_file "dejavu" ".warmup" in
  let oc = open_out_bin path in
  output_string oc sample;
  close_out oc;
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  (try Sys.remove path with Sys_error _ -> ());
  let rt = Trace.of_bytes s in
  assert (rt.Trace.program_digest = "warmup")

(* Not a [Lazy.t]: shard domains attach sessions concurrently, and forcing
   a shared suspension from two domains raises (RacyLazy/Undefined). A
   mutex-guarded run-once flag gives the same memoization domain-safely. *)
let warmup_done = ref false

let warmup_mutex = Mutex.create ()

let warmup_io () =
  Mutex.protect warmup_mutex (fun () ->
      if not !warmup_done then begin
        warmup_once ();
        warmup_done := true
      end)

(* Eager stack growth before instrumentation-driven work on the current
   thread (paper: "eagerly growing the runtime activation stack ... when
   available stack space falls below a heuristically determined value"). *)
let ensure_headroom (vm : Vm.Rt.t) =
  if vm.current >= 0 then begin
    let t = Vm.Rt.cur vm in
    if t.t_state <> Vm.Rt.Terminated then
      Vm.Interp.ensure_stack vm t ~need:vm.cfg.stack_slack
  end
