(* Trace representation and codec.

   Following the paper (footnote 7: wall-clock logging "need be done
   independently of thread switch information in all replay schemes"), a
   trace holds one tape per non-deterministic event kind:
     - switches: yield-point deltas (nyp) between preemptive thread switches
     - clocks:   (reason, value) pairs for every wall-clock read
     - inputs:   external input values
     - natives:  native-call outcomes: result and callback parameters

   Tapes are flat integer sequences; the file format is a zigzag-varint
   stream with a header carrying a structural digest of the program so a
   trace cannot be replayed against the wrong code. *)

exception End_of_tape of string

exception Format_error of string

module Tape = struct
  type t = {
    name : string;
    mutable data : int array;
    mutable len : int;
    mutable rd : int; (* read cursor (replay) *)
  }

  let create name = { name; data = Array.make 64 0; len = 0; rd = 0 }

  let of_array name data = { name; data; len = Array.length data; rd = 0 }

  let push t v =
    if t.len >= Array.length t.data then begin
      let bigger = Array.make (2 * Array.length t.data) 0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let read t =
    if t.rd >= t.len then raise (End_of_tape t.name);
    let v = t.data.(t.rd) in
    t.rd <- t.rd + 1;
    v

  let read_opt t = if t.rd >= t.len then None else Some (read t)

  let remaining t = t.len - t.rd

  let length t = t.len

  let to_array t = Array.sub t.data 0 t.len
end

type t = {
  program_digest : string;
  analysis_hash : string;
      (* fingerprint of the static race audit the program was recorded
         under ("" = recorded without an audit); the replayer refuses a
         trace stamped with a different audit, so a replay never silently
         runs under different thread-local/racy assumptions than the
         recording (e.g. the Observer's thread-local fast path) *)
  switches : int array;
  clocks : int array; (* flattened (reason, value) pairs *)
  inputs : int array;
  natives : int array; (* flattened native records *)
}

(* Clock-read reason tags. *)
let tag_of_reason = function
  | Vm.Rt.Capp -> 0
  | Vm.Rt.Csched -> 1
  | Vm.Rt.Cidle _ -> 2

let reason_name = function
  | 0 -> "app"
  | 1 -> "sched"
  | 2 -> "idle"
  | _ -> "?"

(* Native outcome encoding, onto a tape:
   [native_id; has_result; result?; n_callbacks; (uid; nargs; args...)* ] *)
let push_native_outcome tape nat_id (o : Vm.Rt.native_outcome) =
  Tape.push tape nat_id;
  (match o.no_result with
  | Some v ->
    Tape.push tape 1;
    Tape.push tape v
  | None -> Tape.push tape 0);
  Tape.push tape (List.length o.no_callbacks);
  List.iter
    (fun (uid, args) ->
      Tape.push tape uid;
      Tape.push tape (Array.length args);
      Array.iter (Tape.push tape) args)
    o.no_callbacks

let read_native_outcome tape : int * Vm.Rt.native_outcome =
  let nat_id = Tape.read tape in
  let no_result =
    match Tape.read tape with
    | 1 -> Some (Tape.read tape)
    | 0 -> None
    | k -> raise (Format_error (Fmt.str "bad has_result %d" k))
  in
  let ncb = Tape.read tape in
  let no_callbacks =
    List.init ncb (fun _ ->
        let uid = Tape.read tape in
        let n = Tape.read tape in
        (uid, Array.init n (fun _ -> Tape.read tape)))
  in
  (nat_id, { Vm.Rt.no_result; no_callbacks })

(* --- statistics ------------------------------------------------------- *)

type sizes = {
  n_switches : int;
  n_clock_reads : int;
  n_inputs : int;
  n_native_words : int;
  total_words : int;
  total_bytes : int; (* size of the serialized form *)
}

(* --- serialization ---------------------------------------------------- *)

(* DJVU2 added the analysis-hash header field after the program digest. *)
let magic = "DJVU2\n"

let zigzag v = (v lsl 1) lxor (v asr 62)

let unzigzag v = (v lsr 1) lxor (-(v land 1))

let put_varint buf v =
  let v = ref (zigzag v) in
  let continue_ = ref true in
  while !continue_ do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue_ := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* A 63-bit zigzagged int needs at most 9 groups of 7 bits, i.e. shifts
   0..56; a 10th continuation byte would shift past bit 62, which [lsl]
   leaves unspecified — reject it. A final byte of 0 past the first group
   is a non-canonical encoding [put_varint] never produces; reject it too
   so every value has exactly one byte representation. *)
let get_varint s pos =
  let v = ref 0 and shift = ref 0 and p = ref pos and continue_ = ref true in
  while !continue_ do
    if !p >= String.length s then raise (Format_error "truncated varint");
    if !shift > 56 then raise (Format_error "oversized varint");
    let b = Char.code s.[!p] in
    incr p;
    v := !v lor ((b land 0x7f) lsl !shift);
    if b land 0x80 = 0 then begin
      if b = 0 && !shift > 0 then
        raise (Format_error "non-canonical varint");
      continue_ := false
    end
    else shift := !shift + 7
  done;
  (unzigzag !v, !p)

let put_section buf arr =
  put_varint buf (Array.length arr);
  Array.iter (put_varint buf) arr

let get_section s pos =
  let n, pos = get_varint s pos in
  if n < 0 then raise (Format_error "negative section length");
  let arr = Array.make n 0 in
  let p = ref pos in
  for i = 0 to n - 1 do
    let v, p' = get_varint s !p in
    arr.(i) <- v;
    p := p'
  done;
  (arr, !p)

let to_bytes (t : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_varint buf (String.length t.program_digest);
  Buffer.add_string buf t.program_digest;
  put_varint buf (String.length t.analysis_hash);
  Buffer.add_string buf t.analysis_hash;
  put_section buf t.switches;
  put_section buf t.clocks;
  put_section buf t.inputs;
  put_section buf t.natives;
  Buffer.contents buf

let of_bytes (s : string) : t =
  let ml = String.length magic in
  if String.length s < ml || String.sub s 0 ml <> magic then
    raise (Format_error "bad magic");
  let dlen, pos = get_varint s ml in
  if dlen < 0 || pos + dlen > String.length s then
    raise (Format_error "bad digest length");
  let program_digest = String.sub s pos dlen in
  let pos = pos + dlen in
  let hlen, pos = get_varint s pos in
  if hlen < 0 || pos + hlen > String.length s then
    raise (Format_error "bad analysis-hash length");
  let analysis_hash = String.sub s pos hlen in
  let pos = pos + hlen in
  let switches, pos = get_section s pos in
  let clocks, pos = get_section s pos in
  let inputs, pos = get_section s pos in
  let natives, pos = get_section s pos in
  if pos <> String.length s then raise (Format_error "trailing bytes");
  { program_digest; analysis_hash; switches; clocks; inputs; natives }

let save path t =
  let oc = open_out_bin path in
  output_string oc (to_bytes t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_bytes s

let sizes (t : t) : sizes =
  let total_words =
    Array.length t.switches + Array.length t.clocks + Array.length t.inputs
    + Array.length t.natives
  in
  {
    n_switches = Array.length t.switches;
    n_clock_reads = Array.length t.clocks / 2;
    n_inputs = Array.length t.inputs;
    n_native_words = Array.length t.natives;
    total_words;
    total_bytes = String.length (to_bytes t);
  }

let pp_sizes ppf s =
  Fmt.pf ppf
    "switches=%d clock-reads=%d inputs=%d native-words=%d words=%d bytes=%d"
    s.n_switches s.n_clock_reads s.n_inputs s.n_native_words s.total_words
    s.total_bytes
