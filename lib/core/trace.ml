(* Trace representation and codec.

   Following the paper (footnote 7: wall-clock logging "need be done
   independently of thread switch information in all replay schemes"), a
   trace holds one tape per non-deterministic event kind:
     - switches: yield-point deltas (nyp) between preemptive thread switches
     - clocks:   (reason, value) pairs for every wall-clock read
     - inputs:   external input values
     - natives:  native-call outcomes: result and callback parameters
     - picks:    dispatch-override decisions (one tid per h_pick
                 consultation), recorded only by controlled schedulers; the
                 section is optional on disk — absent when empty, so traces
                 from ordinary recordings are byte-identical to DJVU2 files
                 written before the section existed

   Tapes are flat integer sequences; the file format is a zigzag-varint
   stream with a header carrying a structural digest of the program so a
   trace cannot be replayed against the wrong code. *)

exception End_of_tape of string

exception Format_error of string

module Tape = struct
  type t = {
    name : string;
    mutable data : int array;
    mutable len : int;
    mutable rd : int; (* read cursor (replay) *)
    mutable base : int; (* elements flushed to a sink / consumed by refills *)
    mutable pending : int; (* elements still in the source beyond [data] *)
    mutable sink : (int array -> int -> unit) option;
        (* streaming record: drains [data.(0..len)] when the buffer fills *)
    mutable refill : (t -> bool) option;
        (* streaming replay: loads the next chunk; false at end of stream *)
  }

  let create name =
    {
      name;
      data = Array.make 64 0;
      len = 0;
      rd = 0;
      base = 0;
      pending = 0;
      sink = None;
      refill = None;
    }

  let of_array name data =
    {
      name;
      data;
      len = Array.length data;
      rd = 0;
      base = 0;
      pending = 0;
      sink = None;
      refill = None;
    }

  (* A tape draining into [sink]: the buffer is a fixed [cap] words, flushed
     whenever it fills, so a recording holds at most [cap] unflushed words
     per tape regardless of run length. *)
  let with_sink name ~cap sink =
    {
      name;
      data = Array.make (max 1 cap) 0;
      len = 0;
      rd = 0;
      base = 0;
      pending = 0;
      sink = Some sink;
      refill = None;
    }

  (* A tape filled on demand by [refill]; [pending] is the element count the
     source still holds, so [remaining] stays exact for leftover checks. *)
  let of_refill name ~pending refill =
    {
      name;
      data = [||];
      len = 0;
      rd = 0;
      base = 0;
      pending;
      sink = None;
      refill = Some refill;
    }

  let is_streaming t = t.sink <> None || t.refill <> None

  let flush t =
    match t.sink with
    | Some f when t.len > 0 ->
      f t.data t.len;
      t.base <- t.base + t.len;
      t.len <- 0
    | _ -> ()

  let push t v =
    if t.len >= Array.length t.data then begin
      match t.sink with
      | Some _ -> flush t
      | None ->
        let bigger = Array.make (2 * Array.length t.data) 0 in
        Array.blit t.data 0 bigger 0 t.len;
        t.data <- bigger
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let rec read t =
    if t.rd >= t.len then begin
      match t.refill with
      | Some f when f t -> read t
      | _ -> raise (End_of_tape t.name)
    end
    else begin
      let v = t.data.(t.rd) in
      t.rd <- t.rd + 1;
      v
    end

  let read_opt t = match read t with v -> Some v | exception End_of_tape _ -> None

  let remaining t = t.len - t.rd + t.pending

  let length t = t.base + t.len

  let to_array t =
    if is_streaming t then
      invalid_arg (Fmt.str "Tape.to_array: %s is a streaming tape" t.name);
    Array.sub t.data 0 t.len
end

type t = {
  program_digest : string;
  analysis_hash : string;
      (* fingerprint of the static race audit the program was recorded
         under ("" = recorded without an audit); the replayer refuses a
         trace stamped with a different audit, so a replay never silently
         runs under different thread-local/racy assumptions than the
         recording (e.g. the Observer's thread-local fast path) *)
  switches : int array;
  clocks : int array; (* flattened (reason, value) pairs *)
  inputs : int array;
  natives : int array; (* flattened native records *)
  picks : int array; (* dispatch overrides; [||] for ordinary recordings *)
}

(* Clock-read reason tags. *)
let tag_of_reason = function
  | Vm.Rt.Capp -> 0
  | Vm.Rt.Csched -> 1
  | Vm.Rt.Cidle _ -> 2

let reason_name = function
  | 0 -> "app"
  | 1 -> "sched"
  | 2 -> "idle"
  | _ -> "?"

(* Native outcome encoding, onto a tape:
   [native_id; has_result; result?; n_callbacks; (uid; nargs; args...)* ] *)
let push_native_outcome tape nat_id (o : Vm.Rt.native_outcome) =
  Tape.push tape nat_id;
  (match o.no_result with
  | Some v ->
    Tape.push tape 1;
    Tape.push tape v
  | None -> Tape.push tape 0);
  Tape.push tape (List.length o.no_callbacks);
  List.iter
    (fun (uid, args) ->
      Tape.push tape uid;
      Tape.push tape (Array.length args);
      Array.iter (Tape.push tape) args)
    o.no_callbacks

let read_native_outcome tape : int * Vm.Rt.native_outcome =
  let nat_id = Tape.read tape in
  let no_result =
    match Tape.read tape with
    | 1 -> Some (Tape.read tape)
    | 0 -> None
    | k -> raise (Format_error (Fmt.str "bad has_result %d" k))
  in
  let ncb = Tape.read tape in
  let no_callbacks =
    List.init ncb (fun _ ->
        let uid = Tape.read tape in
        let n = Tape.read tape in
        (uid, Array.init n (fun _ -> Tape.read tape)))
  in
  (nat_id, { Vm.Rt.no_result; no_callbacks })

(* --- statistics ------------------------------------------------------- *)

type sizes = {
  n_switches : int;
  n_clock_reads : int;
  n_inputs : int;
  n_native_words : int;
  n_picks : int;
  total_words : int;
  total_bytes : int; (* size of the serialized form *)
}

(* --- serialization ---------------------------------------------------- *)

(* DJVU2 added the analysis-hash header field after the program digest. *)
let magic = "DJVU2\n"

let zigzag v = (v lsl 1) lxor (v asr 62)

let unzigzag v = (v lsr 1) lxor (-(v land 1))

let put_varint buf v =
  let v = ref (zigzag v) in
  let continue_ = ref true in
  while !continue_ do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue_ := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* A 63-bit zigzagged int needs at most 9 groups of 7 bits, i.e. shifts
   0..56; a 10th continuation byte would shift past bit 62, which [lsl]
   leaves unspecified — reject it. A final byte of 0 past the first group
   is a non-canonical encoding [put_varint] never produces; reject it too
   so every value has exactly one byte representation. *)
let get_varint s pos =
  let v = ref 0 and shift = ref 0 and p = ref pos and continue_ = ref true in
  while !continue_ do
    if !p >= String.length s then raise (Format_error "truncated varint");
    if !shift > 56 then raise (Format_error "oversized varint");
    let b = Char.code s.[!p] in
    incr p;
    v := !v lor ((b land 0x7f) lsl !shift);
    if b land 0x80 = 0 then begin
      if b = 0 && !shift > 0 then
        raise (Format_error "non-canonical varint");
      continue_ := false
    end
    else shift := !shift + 7
  done;
  (unzigzag !v, !p)

(* Encoded size of one value, without producing the bytes: a zigzagged
   63-bit int occupies ceil(bits/7) groups of 7. *)
let varint_size v =
  let z = zigzag v in
  let rec go z n = if z lsr 7 = 0 then n else go (z lsr 7) (n + 1) in
  go z 1

let put_section buf arr =
  put_varint buf (Array.length arr);
  Array.iter (put_varint buf) arr

let get_section s pos =
  let n, pos = get_varint s pos in
  if n < 0 then raise (Format_error "negative section length");
  let arr = Array.make n 0 in
  let p = ref pos in
  for i = 0 to n - 1 do
    let v, p' = get_varint s !p in
    arr.(i) <- v;
    p := p'
  done;
  (arr, !p)

let to_bytes (t : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_varint buf (String.length t.program_digest);
  Buffer.add_string buf t.program_digest;
  put_varint buf (String.length t.analysis_hash);
  Buffer.add_string buf t.analysis_hash;
  put_section buf t.switches;
  put_section buf t.clocks;
  put_section buf t.inputs;
  put_section buf t.natives;
  (* the picks section is written only when present, so every trace without
     dispatch overrides keeps the original 4-section layout bit-for-bit *)
  if Array.length t.picks > 0 then put_section buf t.picks;
  Buffer.contents buf

let of_bytes (s : string) : t =
  let ml = String.length magic in
  if String.length s < ml || String.sub s 0 ml <> magic then
    raise (Format_error "bad magic");
  let dlen, pos = get_varint s ml in
  if dlen < 0 || pos + dlen > String.length s then
    raise (Format_error "bad digest length");
  let program_digest = String.sub s pos dlen in
  let pos = pos + dlen in
  let hlen, pos = get_varint s pos in
  if hlen < 0 || pos + hlen > String.length s then
    raise (Format_error "bad analysis-hash length");
  let analysis_hash = String.sub s pos hlen in
  let pos = pos + hlen in
  let switches, pos = get_section s pos in
  let clocks, pos = get_section s pos in
  let inputs, pos = get_section s pos in
  let natives, pos = get_section s pos in
  let picks, pos =
    if pos = String.length s then ([||], pos) else get_section s pos
  in
  if pos <> String.length s then raise (Format_error "trailing bytes");
  { program_digest; analysis_hash; switches; clocks; inputs; natives; picks }

(* Byte size of the serialized form, computed arithmetically — no buffer is
   materialized, so statistics on a large trace cost no allocation spike. *)
let encoded_size (t : t) : int =
  let section arr =
    Array.fold_left
      (fun acc v -> acc + varint_size v)
      (varint_size (Array.length arr))
      arr
  in
  String.length magic
  + varint_size (String.length t.program_digest)
  + String.length t.program_digest
  + varint_size (String.length t.analysis_hash)
  + String.length t.analysis_hash
  + section t.switches + section t.clocks + section t.inputs
  + section t.natives
  + (if Array.length t.picks > 0 then section t.picks else 0)

(* Write via a temp file and atomic rename: a crash (or cancellation)
   mid-write never leaves a truncated trace under the final name. *)
let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc (to_bytes t))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_bytes s

let sizes (t : t) : sizes =
  let total_words =
    Array.length t.switches + Array.length t.clocks + Array.length t.inputs
    + Array.length t.natives + Array.length t.picks
  in
  {
    n_switches = Array.length t.switches;
    n_clock_reads = Array.length t.clocks / 2;
    n_inputs = Array.length t.inputs;
    n_native_words = Array.length t.natives;
    n_picks = Array.length t.picks;
    total_words;
    total_bytes = encoded_size t;
  }

let pp_sizes ppf s =
  Fmt.pf ppf
    "switches=%d clock-reads=%d inputs=%d native-words=%d words=%d bytes=%d"
    s.n_switches s.n_clock_reads s.n_inputs s.n_native_words s.total_words
    s.total_bytes;
  if s.n_picks > 0 then Fmt.pf ppf " picks=%d" s.n_picks

(* --- streaming writer -------------------------------------------------- *)

(* The DJVU2 layout prefixes each section with its element count, which is
   unknown until the run ends — so a bounded-memory recording spills each
   tape's varint-encoded elements to its own scratch file as the in-memory
   buffer fills, and [finish] stitches header + counts + spill contents into
   the final file (temp file + atomic rename). The result is byte-identical
   to [to_bytes] of the materialized trace. *)
module Writer = struct
  (* The first four sections are mandatory in the file; the trailing picks
     section is stitched in only when non-empty (mirroring [to_bytes]). *)
  let stream_names = [| "switches"; "clocks"; "inputs"; "natives"; "picks" |]

  let mandatory_streams = 4

  type stream = {
    w_spill : string;
    mutable w_oc : out_channel option;
    w_buf : Buffer.t; (* scratch for encoding one flush *)
    mutable w_count : int; (* elements flushed *)
    mutable w_bytes : int; (* encoded bytes flushed *)
  }

  type t = {
    path : string;
    streams : stream array;
    mutable w_tapes : Tape.t array;
    mutable peak_words : int; (* high-water mark of buffered words *)
    mutable closed : bool;
  }

  let default_buf_words = 4096

  let create ?(buf_words = default_buf_words) path =
    (* If a later open fails (unwritable dir, ENOSPC), the writer is never
       returned, so no [abort] can clean up — close and remove whatever was
       already created before re-raising. *)
    let opened = ref [] in
    let streams =
      try
        Array.map
          (fun name ->
            let spill = Fmt.str "%s.%s.spill" path name in
            let s =
              {
                w_spill = spill;
                w_oc = Some (open_out_bin spill);
                w_buf = Buffer.create (buf_words * 2);
                w_count = 0;
                w_bytes = 0;
              }
            in
            opened := s :: !opened;
            s)
          stream_names
      with exn ->
        List.iter
          (fun s ->
            (match s.w_oc with
            | Some oc -> close_out_noerr oc
            | None -> ());
            try Sys.remove s.w_spill with Sys_error _ -> ())
          !opened;
        raise exn
    in
    let w = { path; streams; w_tapes = [||]; peak_words = 0; closed = false } in
    let tapes =
      Array.mapi
        (fun i name ->
          Tape.with_sink name ~cap:buf_words (fun data len ->
              let s = streams.(i) in
              let oc =
                match s.w_oc with
                | Some oc -> oc
                | None -> invalid_arg "Trace.Writer: finished writer"
              in
              (* high-water mark sampled at the flush boundary, where the
                 buffered total is maximal *)
              let buffered =
                Array.fold_left
                  (fun acc (t : Tape.t) -> acc + t.len)
                  0 w.w_tapes
              in
              if buffered > w.peak_words then w.peak_words <- buffered;
              Buffer.clear s.w_buf;
              for k = 0 to len - 1 do
                put_varint s.w_buf data.(k)
              done;
              Buffer.output_buffer oc s.w_buf;
              s.w_count <- s.w_count + len;
              s.w_bytes <- s.w_bytes + Buffer.length s.w_buf;
              Buffer.clear s.w_buf))
        stream_names
    in
    w.w_tapes <- tapes;
    w

  let tapes w = w.w_tapes

  let peak_buffered_words w =
    let buffered =
      Array.fold_left (fun acc (t : Tape.t) -> acc + t.len) 0 w.w_tapes
    in
    max w.peak_words buffered

  let buffered_words w =
    Array.fold_left (fun acc (t : Tape.t) -> acc + t.len) 0 w.w_tapes

  (* Remove scratch state; safe to call more than once, and after [finish].
     A cancelled recording aborts instead of finishing, so no partial trace
     ever appears under the destination name. *)
  let abort w =
    if not w.closed then begin
      w.closed <- true;
      Array.iter
        (fun s ->
          (match s.w_oc with
          | Some oc ->
            close_out_noerr oc;
            s.w_oc <- None
          | None -> ());
          try Sys.remove s.w_spill with Sys_error _ -> ())
        w.streams;
      try Sys.remove (w.path ^ ".tmp") with Sys_error _ -> ()
    end

  let copy_file ic oc =
    let chunk = Bytes.create 65536 in
    let rec go () =
      let n = input ic chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        output oc chunk 0 n;
        go ()
      end
    in
    go ()

  let finish w ~program_digest ~analysis_hash : sizes =
    if w.closed then invalid_arg "Trace.Writer.finish: finished writer";
    (match
       (* drain the tail of every tape, then detach the spill channels *)
       Array.iter Tape.flush w.w_tapes
     with
    | () -> ()
    | exception e ->
      abort w;
      raise e);
    Array.iter
      (fun s ->
        match s.w_oc with
        | Some oc ->
          close_out oc;
          s.w_oc <- None
        | None -> ())
      w.streams;
    let tmp = w.path ^ ".tmp" in
    (try
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           Buffer.clear w.streams.(0).w_buf;
           let hdr = w.streams.(0).w_buf in
           Buffer.add_string hdr magic;
           put_varint hdr (String.length program_digest);
           Buffer.add_string hdr program_digest;
           put_varint hdr (String.length analysis_hash);
           Buffer.add_string hdr analysis_hash;
           Buffer.output_buffer oc hdr;
           Buffer.clear hdr;
           Array.iteri
             (fun i s ->
               if i < mandatory_streams || s.w_count > 0 then begin
                 let cnt = Buffer.create 10 in
                 put_varint cnt s.w_count;
                 Buffer.output_buffer oc cnt;
                 let ic = open_in_bin s.w_spill in
                 Fun.protect
                   ~finally:(fun () -> close_in_noerr ic)
                   (fun () -> copy_file ic oc)
               end)
             w.streams);
       Sys.rename tmp w.path
     with e ->
       abort w;
       raise e);
    let counts = Array.map (fun s -> s.w_count) w.streams in
    let total_words = Array.fold_left ( + ) 0 counts in
    let total_bytes =
      String.length magic
      + varint_size (String.length program_digest)
      + String.length program_digest
      + varint_size (String.length analysis_hash)
      + String.length analysis_hash
      + snd
          (Array.fold_left
             (fun (i, acc) s ->
               let acc =
                 if i < mandatory_streams || s.w_count > 0 then
                   acc + varint_size s.w_count + s.w_bytes
                 else acc
               in
               (i + 1, acc))
             (0, 0) w.streams)
    in
    let sizes =
      {
        n_switches = counts.(0);
        n_clock_reads = counts.(1) / 2;
        n_inputs = counts.(2);
        n_native_words = counts.(3);
        n_picks = counts.(4);
        total_words;
        total_bytes;
      }
    in
    Array.iter
      (fun s -> try Sys.remove s.w_spill with Sys_error _ -> ())
      w.streams;
    w.closed <- true;
    sizes
end

(* --- streaming reader -------------------------------------------------- *)

(* Replays a trace file through chunked tapes: the header is parsed and the
   four sections located up front (one linear scan, O(1) memory), then each
   tape refills [chunk_words]-element chunks on demand from its own cursor
   into the shared channel. Resident memory is O(chunk), constant in trace
   length. *)
module Reader = struct
  type cursor = { mutable offset : int; mutable left : int }

  type t = {
    ic : in_channel;
    r_digest : string;
    r_hash : string;
    r_tapes : Tape.t array;
    r_counts : int array;
    mutable r_closed : bool;
  }

  let input_varint ic =
    let v = ref 0 and shift = ref 0 and continue_ = ref true in
    while !continue_ do
      if !shift > 56 then raise (Format_error "oversized varint");
      let b =
        match input_char ic with
        | c -> Char.code c
        | exception End_of_file -> raise (Format_error "truncated varint")
      in
      v := !v lor ((b land 0x7f) lsl !shift);
      if b land 0x80 = 0 then begin
        if b = 0 && !shift > 0 then
          raise (Format_error "non-canonical varint");
        continue_ := false
      end
      else shift := !shift + 7
    done;
    unzigzag !v

  let input_exact ic n what =
    match really_input_string ic n with
    | s -> s
    | exception End_of_file ->
      raise (Format_error (Fmt.str "truncated %s" what))

  (* Skip [n] varints by scanning for terminator bytes (top bit clear);
     malformed interiors surface as Format_error at read time. *)
  let skip_varints ic n =
    for _ = 1 to n do
      let fin = ref false in
      while not !fin do
        match input_char ic with
        | c -> if Char.code c land 0x80 = 0 then fin := true
        | exception End_of_file ->
          raise (Format_error "truncated section")
      done
    done

  let default_chunk_words = 1024

  let open_file ?(chunk_words = default_chunk_words) path =
    let ic = open_in_bin path in
    match
      let file_len = in_channel_length ic in
      let ml = String.length magic in
      if input_exact ic ml "magic" <> magic then
        raise (Format_error "bad magic");
      let str_field what =
        let n = input_varint ic in
        if n < 0 || n > file_len then
          raise (Format_error (Fmt.str "bad %s length" what));
        input_exact ic n what
      in
      let r_digest = str_field "digest" in
      let r_hash = str_field "analysis-hash" in
      let read_cursor () =
        let count = input_varint ic in
        if count < 0 then raise (Format_error "negative section length");
        let start = pos_in ic in
        skip_varints ic count;
        (count, { offset = start; left = count })
      in
      let cursors =
        Array.init (Array.length Writer.stream_names) (fun i ->
            if i < Writer.mandatory_streams then read_cursor ()
            else if
              (* the trailing picks section is optional: absent entirely in
                 traces from ordinary recordings *)
              pos_in ic < file_len
            then read_cursor ()
            else (0, { offset = pos_in ic; left = 0 }))
      in
      if pos_in ic <> file_len then raise (Format_error "trailing bytes");
      let r_counts = Array.map fst cursors in
      let r_tapes =
        Array.mapi
          (fun i name ->
            let _, cur = cursors.(i) in
            Tape.of_refill name ~pending:cur.left (fun (t : Tape.t) ->
                if cur.left = 0 then false
                else begin
                  let k = min chunk_words cur.left in
                  seek_in ic cur.offset;
                  let chunk = Array.init k (fun _ -> input_varint ic) in
                  cur.offset <- pos_in ic;
                  cur.left <- cur.left - k;
                  t.base <- t.base + t.len;
                  t.data <- chunk;
                  t.len <- k;
                  t.rd <- 0;
                  t.pending <- cur.left;
                  true
                end))
          Writer.stream_names
      in
      { ic; r_digest; r_hash; r_tapes; r_counts; r_closed = false }
    with
    | r -> r
    | exception e ->
      close_in_noerr ic;
      raise e

  let program_digest r = r.r_digest

  let analysis_hash r = r.r_hash

  let tapes r = r.r_tapes

  let counts r = r.r_counts

  let close r =
    if not r.r_closed then begin
      r.r_closed <- true;
      close_in_noerr r.ic
    end
end
