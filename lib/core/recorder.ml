(* Record mode: the live hooks are wrapped so that every non-deterministic
   operation's result is captured on its tape while execution proceeds
   exactly as it would have live. Deterministic operations — including every
   synchronization outcome and scheduler decision — are deliberately NOT
   recorded: replaying the thread package reproduces them for free (the
   paper's cross-optimization payoff). *)

(* Install the clock/input/native capture only (every replay scheme needs
   this part — the paper's footnote 7); the yield-point instrumentation is
   installed separately so baseline schemes can substitute their own. *)
let attach_io (vm : Vm.Rt.t) (s : Session.t) =
  vm.hooks.h_clock <-
    (fun vm reason ->
      let v =
        match reason with
        | Vm.Rt.Cidle earliest -> Vm.Env.idle_until vm.env earliest
        | Vm.Rt.Capp | Vm.Rt.Csched -> Vm.Env.read_clock vm.env
      in
      Trace.Tape.push s.clocks (Trace.tag_of_reason reason);
      Trace.Tape.push s.clocks v;
      Ring.put s.ring v;
      v);
  vm.hooks.h_input <-
    (fun vm ->
      let v = Vm.Env.read_input vm.env in
      Trace.Tape.push s.inputs v;
      Ring.put s.ring v;
      v);
  vm.hooks.h_native <-
    (fun vm nat args ->
      let outcome = nat.nat_fn vm args in
      Trace.push_native_outcome s.natives nat.nat_id outcome;
      Ring.put s.ring nat.nat_id;
      outcome)

let attach (vm : Vm.Rt.t) : Session.t =
  let s = Session.for_record vm in
  attach_io vm s;
  vm.hooks.h_yieldpoint <- Figure2.record s;
  s

(* Streaming record attachment: identical hooks, but every tape drains into
   the writer's bounded buffers, so the recorder holds O(buffer) trace
   memory no matter how long the run is. *)
let attach_stream (vm : Vm.Rt.t) (w : Trace.Writer.t) : Session.t =
  let s = Session.for_record_stream vm w in
  attach_io vm s;
  vm.hooks.h_yieldpoint <- Figure2.record s;
  s

(* Finish a recording: produce the trace, stamped with the program digest
   and the static race audit's fingerprint (memoized per program, so
   repeated recordings of one program pay for the analysis once). *)
let finish (s : Session.t) : Trace.t =
  Session.to_trace s
    ~analysis_hash:(Audit.hash_for s.vm.program)
    (Bytecode.Decl.digest s.vm.program)

(* Seal a streamed recording into its destination file (temp file + atomic
   rename inside the writer). On any error the writer is aborted, so a
   cancelled or crashed recording never leaves a partial trace behind. *)
let finish_stream (s : Session.t) (w : Trace.Writer.t) : Trace.sizes =
  match
    Trace.Writer.finish w
      ~program_digest:(Bytecode.Decl.digest s.vm.program)
      ~analysis_hash:(Audit.hash_for s.vm.program)
  with
  | sizes -> sizes
  | exception e ->
    Trace.Writer.abort w;
    raise e
