(* Shared state of a DejaVu session (record or replay): the logical clock
   (nyp + liveclock of Figure 2), the per-kind tapes, and the symmetric
   event ring. *)

exception Divergence of string

let divergence fmt = Fmt.kstr (fun s -> raise (Divergence s)) fmt

(* Divergence with the current execution position appended, so a replay
   against edited code reports *where* behaviour first departed from the
   recording. *)
let divergence_at (vm : Vm.Rt.t) fmt =
  Fmt.kstr
    (fun s ->
      let where =
        if vm.current >= 0 then begin
          let t = Vm.Rt.cur vm in
          if t.t_state <> Vm.Rt.Terminated then
            Fmt.str " (at %s.%s pc %d, thread %d, %d instructions in)"
              vm.classes.(t.t_meth.rm_cid).rc_name t.t_meth.rm_name t.t_pc
              t.tid vm.stats.n_instr
          else ""
        end
        else ""
      in
      raise (Divergence (s ^ where)))
    fmt

type mode = Record | Replay

type t = {
  vm : Vm.Rt.t;
  mode : mode;
  ring : Ring.t;
  switches : Trace.Tape.t;
  clocks : Trace.Tape.t;
  inputs : Trace.Tape.t;
  natives : Trace.Tape.t;
  picks : Trace.Tape.t; (* dispatch overrides; empty unless a controlled
                           scheduler drove the recording *)
  mutable nyp : int; (* yield points since the last thread switch *)
  mutable liveclock : bool;
  mutable switch_bit : bool; (* the software thread-switch bit *)
  mutable yieldpoints_seen : int;
  mutable switches_done : int;
}

let create vm mode ~switches ~clocks ~inputs ~natives ~picks =
  (* symmetric initialization: same allocation, same warm-up, both modes *)
  Symmetry.warmup_io ();
  let ring = Ring.create vm () in
  {
    vm;
    mode;
    ring;
    switches;
    clocks;
    inputs;
    natives;
    picks;
    nyp = 0;
    liveclock = true;
    switch_bit = false;
    yieldpoints_seen = 0;
    switches_done = 0;
  }

let for_record vm =
  create vm Record ~switches:(Trace.Tape.create "switches")
    ~clocks:(Trace.Tape.create "clocks")
    ~inputs:(Trace.Tape.create "inputs")
    ~natives:(Trace.Tape.create "natives")
    ~picks:(Trace.Tape.create "picks")

let for_replay vm (trace : Trace.t) =
  let s =
    create vm Replay
      ~switches:(Trace.Tape.of_array "switches" trace.switches)
      ~clocks:(Trace.Tape.of_array "clocks" trace.clocks)
      ~inputs:(Trace.Tape.of_array "inputs" trace.inputs)
      ~natives:(Trace.Tape.of_array "natives" trace.natives)
      ~picks:(Trace.Tape.of_array "picks" trace.picks)
  in
  (* nyp counts down to the first recorded switch *)
  s.nyp <-
    (match Trace.Tape.read_opt s.switches with
    | Some d -> d
    | None -> max_int);
  s

(* Streaming variants: the tapes are the Writer's sink-wired buffers (record)
   or the Reader's chunk-refilled views (replay), so neither side ever holds
   a whole tape in memory. Everything downstream — Figure 2, the I/O hooks,
   leftover accounting — is tape-agnostic and unchanged. *)
let for_record_stream vm (w : Trace.Writer.t) =
  let t = Trace.Writer.tapes w in
  create vm Record ~switches:t.(0) ~clocks:t.(1) ~inputs:t.(2) ~natives:t.(3)
    ~picks:t.(4)

let for_replay_stream vm (r : Trace.Reader.t) =
  let t = Trace.Reader.tapes r in
  let s =
    create vm Replay ~switches:t.(0) ~clocks:t.(1) ~inputs:t.(2) ~natives:t.(3)
      ~picks:t.(4)
  in
  s.nyp <-
    (match Trace.Tape.read_opt s.switches with
    | Some d -> d
    | None -> max_int);
  s

let streaming (s : t) =
  Array.exists Trace.Tape.is_streaming
    [| s.switches; s.clocks; s.inputs; s.natives; s.picks |]

let to_trace ?(analysis_hash = "") (s : t) program_digest : Trace.t =
  {
    Trace.program_digest;
    analysis_hash;
    switches = Trace.Tape.to_array s.switches;
    clocks = Trace.Tape.to_array s.clocks;
    inputs = Trace.Tape.to_array s.inputs;
    natives = Trace.Tape.to_array s.natives;
    picks = Trace.Tape.to_array s.picks;
  }

(* --- session checkpoints (for checkpoint-accelerated time travel) ------ *)

(* The instrumentation state that must roll back together with a VM
   snapshot: tape cursors (replay) / tape lengths (record), the Figure-2
   logical clock, and the ring position. *)
type snap = {
  sn_rd : int array; (* per-tape read cursors *)
  sn_len : int array; (* per-tape lengths (record mode appends) *)
  sn_nyp : int;
  sn_liveclock : bool;
  sn_switch_bit : bool;
  sn_ring_pos : int;
  sn_ring_writes : int;
  sn_yieldpoints_seen : int;
  sn_switches_done : int;
}

let tapes s = [| s.switches; s.clocks; s.inputs; s.natives; s.picks |]

(* Checkpoints cut tape cursors/lengths backwards, which a flushed sink or a
   consumed refill chunk cannot honour — the time-travel debugger keeps to
   materialized sessions. *)
let check_not_streaming what s =
  if streaming s then
    invalid_arg (what ^ ": streaming sessions do not support checkpoints")

let snapshot (s : t) : snap =
  check_not_streaming "Session.snapshot" s;
  {
    sn_rd = Array.map (fun (t : Trace.Tape.t) -> t.rd) (tapes s);
    sn_len = Array.map (fun (t : Trace.Tape.t) -> t.len) (tapes s);
    sn_nyp = s.nyp;
    sn_liveclock = s.liveclock;
    sn_switch_bit = s.switch_bit;
    sn_ring_pos = s.ring.pos;
    sn_ring_writes = s.ring.writes;
    sn_yieldpoints_seen = s.yieldpoints_seen;
    sn_switches_done = s.switches_done;
  }

let restore (s : t) (c : snap) =
  check_not_streaming "Session.restore" s;
  Array.iteri
    (fun i (t : Trace.Tape.t) ->
      t.rd <- c.sn_rd.(i);
      t.len <- c.sn_len.(i))
    (tapes s);
  s.nyp <- c.sn_nyp;
  s.liveclock <- c.sn_liveclock;
  s.switch_bit <- c.sn_switch_bit;
  s.ring.pos <- c.sn_ring_pos;
  s.ring.writes <- c.sn_ring_writes;
  s.yieldpoints_seen <- c.sn_yieldpoints_seen;
  s.switches_done <- c.sn_switches_done

(* Leftover trace data after a replay signals a divergence (or a truncated
   run); returns human-readable warnings. *)
let leftovers (s : t) : string list =
  List.filter_map
    (fun tape ->
      let r = Trace.Tape.remaining tape in
      if r > 0 then Some (Fmt.str "%d unconsumed %s words" r tape.Trace.Tape.name)
      else None)
    [ s.switches; s.clocks; s.inputs; s.natives; s.picks ]
