(* DejaVu — deterministic replay for the simulated Jalapeño VM.

   [record] runs a program with recording instrumentation and returns the
   trace; [replay] re-runs it, substituting every non-deterministic result
   from the trace; [verify_roundtrip] checks the paper's accuracy criterion:
   identical event sequences and identical program states. *)

module Trace = Trace
module Tape = Trace.Tape
module Ring = Ring
module Session = Session
module Figure2 = Figure2
module Recorder = Recorder
module Replayer = Replayer
module Audit = Audit
module Symmetry = Symmetry

exception Divergence = Session.Divergence

type run = {
  vm : Vm.t;
  status : Vm.Rt.status;
  output : string;
  state_digest : int;
  obs_digest : int; (* digest of the full event sequence *)
  obs_count : int;
  session : Session.t option; (* None when the trace was rejected outright *)
}

let finish_run vm session observer =
  {
    vm;
    status = Vm.status vm;
    output = Vm.output vm;
    state_digest = Vm.digest vm;
    obs_digest =
      (match observer with Some o -> Vm.Observer.digest o | None -> 0);
    obs_count =
      (match observer with Some o -> Vm.Observer.count o | None -> 0);
    session = Some session;
  }

(* Run a program in record mode. The environment (seed) supplies the
   non-determinism being captured. [observe] attaches the event-sequence
   digest observer the roundtrip check compares; it costs a per-instruction
   hash fold, so overhead measurements turn it off. *)
let record ?(config = Vm.Rt.default_config) ?(natives = []) ?(inputs = [])
    ?(seed = 1) ?limit ?(observe = true) program : run * Trace.t =
  let config =
    { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }
  in
  let vm = Vm.create ~config ~natives ~inputs program in
  let session = Recorder.attach vm in
  let observer = if observe then Some (Vm.Observer.attach_digest vm) else None in
  ignore (Vm.run ?limit vm);
  let run = finish_run vm session observer in
  (run, Recorder.finish session)

(* Replay a trace. The seed deliberately defaults to something different
   from any recording seed: replay must not depend on the environment. *)
let replay ?(config = Vm.Rt.default_config) ?(natives = []) ?(seed = 424242)
    ?limit ?(observe = true) program (trace : Trace.t) : run * string list =
  let config =
    { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }
  in
  let vm = Vm.create ~config ~natives program in
  match Replayer.attach vm trace with
  | exception Session.Divergence msg ->
    vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg);
    ( {
        vm;
        status = Vm.status vm;
        output = "";
        state_digest = 0;
        obs_digest = 0;
        obs_count = 0;
        session = None;
      },
      [ msg ] )
  | session ->
    let observer =
      if observe then Some (Vm.Observer.attach_digest vm) else None
    in
    (try ignore (Vm.run ?limit vm) with
    | Session.Divergence msg ->
      vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg)
    | Vm.Sched.Sched_error msg ->
      (* a picks-bearing trace steered dispatch to a thread that is not
         ready here — the schedule does not fit this program/state *)
      vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg));
    let run = finish_run vm session observer in
    (run, Replayer.check_complete session)

(* Record straight into a trace file through the streaming writer: bounded
   recorder-side memory, temp-file + atomic-rename on finish, and abort on
   any error — a crashed or cancelled recording leaves nothing behind. *)
let record_to ?(config = Vm.Rt.default_config) ?(natives = []) ?(inputs = [])
    ?(seed = 1) ?limit ?(observe = true) ?buf_words ~path program :
    run * Trace.sizes =
  let config =
    { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }
  in
  let vm = Vm.create ~config ~natives ~inputs program in
  let writer = Trace.Writer.create ?buf_words path in
  match
    let session = Recorder.attach_stream vm writer in
    let observer =
      if observe then Some (Vm.Observer.attach_digest vm) else None
    in
    ignore (Vm.run ?limit vm);
    (finish_run vm session observer, Recorder.finish_stream session writer)
  with
  | result -> result
  | exception e ->
    Trace.Writer.abort writer;
    raise e

(* Replay from a trace file through the streaming reader: O(chunk) replay-
   side trace memory. Raises Trace.Format_error on a malformed file;
   divergences are reported like [replay]. *)
let replay_from ?(config = Vm.Rt.default_config) ?(natives = [])
    ?(seed = 424242) ?limit ?(observe = true) ?chunk_words ~path program :
    run * string list =
  let config =
    { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }
  in
  let vm = Vm.create ~config ~natives program in
  let reader = Trace.Reader.open_file ?chunk_words path in
  Fun.protect
    ~finally:(fun () -> Trace.Reader.close reader)
    (fun () ->
      match Replayer.attach_stream vm reader with
      | exception Session.Divergence msg ->
        vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg);
        ( {
            vm;
            status = Vm.status vm;
            output = "";
            state_digest = 0;
            obs_digest = 0;
            obs_count = 0;
            session = None;
          },
          [ msg ] )
      | session ->
        let observer =
          if observe then Some (Vm.Observer.attach_digest vm) else None
        in
        (try ignore (Vm.run ?limit vm) with
        | Session.Divergence msg ->
          vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg)
        | Vm.Sched.Sched_error msg ->
          vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg));
        let run = finish_run vm session observer in
        (run, Replayer.check_complete session))

type roundtrip = {
  recorded : run;
  replayed : run;
  trace : Trace.t;
  outputs_equal : bool;
  states_equal : bool;
  events_equal : bool;
  replay_complete : bool;
  leftovers : string list;
}

let ok rt =
  rt.outputs_equal && rt.states_equal && rt.events_equal && rt.replay_complete

(* Record with [seed], replay with an unrelated seed, compare everything. *)
let verify_roundtrip ?config ?natives ?inputs ?(seed = 1) ?limit program :
    roundtrip =
  let recorded, trace = record ?config ?natives ?inputs ~seed ?limit program in
  let replayed, leftovers =
    replay ?config ?natives ~seed:(seed + 99991) ?limit program trace
  in
  {
    recorded;
    replayed;
    trace;
    outputs_equal = String.equal recorded.output replayed.output;
    states_equal = recorded.state_digest = replayed.state_digest;
    events_equal =
      recorded.obs_digest = replayed.obs_digest
      && recorded.obs_count = replayed.obs_count;
    replay_complete = leftovers = [];
    leftovers;
  }

let pp_roundtrip ppf rt =
  Fmt.pf ppf
    "events: %s (%d vs %d) output: %s state: %s trace-consumed: %s status: %s/%s"
    (if rt.events_equal then "EQUAL" else "DIFFER")
    rt.recorded.obs_count rt.replayed.obs_count
    (if rt.outputs_equal then "EQUAL" else "DIFFER")
    (if rt.states_equal then "EQUAL" else "DIFFER")
    (if rt.replay_complete then "yes" else String.concat "; " rt.leftovers)
    (Vm.string_of_status rt.recorded.status)
    (Vm.string_of_status rt.replayed.status)
