(* Static well-formedness checks over a whole program, run before the VM's
   class loader touches it: name resolution, branch ranges, local-slot ranges,
   arity agreement at call/spawn sites, handler sanity. The VM's verifier
   (lib/vm/verify.ml) performs the dataflow checks on compiled code. *)

type issue = { where : string; what : string }

let pp_issue ppf i = Fmt.pf ppf "%s: %s" i.where i.what

let check (p : Decl.program) : issue list =
  let issues = ref [] in
  let add where fmt = Fmt.kstr (fun what -> issues := { where; what } :: !issues) fmt in
  let class_names =
    List.map (fun c -> c.Decl.cd_name) p.classes
    @ (Decl.object_class :: Decl.string_class :: Decl.exception_classes)
  in
  let class_exists n = List.mem n class_names in
  let builtin_exn n = List.mem n Decl.exception_classes in
  let find_field cname fname ~static =
    let rec go cn =
      match List.find_opt (fun c -> c.Decl.cd_name = cn) p.classes with
      | None -> false
      | Some c ->
        let fields = if static then c.Decl.cd_statics else c.Decl.cd_fields in
        if List.exists (fun f -> f.Decl.fd_name = fname) fields then true
        else (match c.Decl.cd_super with Some s -> go s | None -> false)
    in
    go cname
  in
  let find_method cname mname =
    let rec go cn =
      match List.find_opt (fun c -> c.Decl.cd_name = cn) p.classes with
      | None -> None
      | Some c -> (
        match Decl.find_method c mname with
        | Some m -> Some m
        | None -> (match c.Decl.cd_super with Some s -> go s | None -> None))
    in
    go cname
  in
  (* Duplicate class names. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let n = c.Decl.cd_name in
      if Hashtbl.mem seen n then add n "duplicate class name";
      Hashtbl.replace seen n ();
      if List.mem n (Decl.object_class :: Decl.string_class :: Decl.exception_classes)
      then add n "redefines a builtin class")
    p.classes;
  (* Main entry point. *)
  (match Decl.find_class p p.main_class with
  | None -> add p.main_class "main class not found"
  | Some c -> (
    match Decl.find_method c "main" with
    | None -> add p.main_class "no method \"main\""
    | Some m ->
      if not m.Decl.m_static then add p.main_class "main must be static";
      if Decl.nargs m <> 0 then add p.main_class "main must take 0 args"));
  (* Per-class checks. *)
  List.iter
    (fun c ->
      let cn = c.Decl.cd_name in
      (match c.Decl.cd_super with
      | Some s when not (class_exists s) -> add cn "unknown superclass %s" s
      | _ -> ());
      (* super-chain cycle check *)
      let rec chain n depth =
        if depth > 1000 then add cn "superclass cycle"
        else
          match List.find_opt (fun c -> c.Decl.cd_name = n) p.classes with
          | Some { Decl.cd_super = Some s; _ } -> chain s (depth + 1)
          | _ -> ()
      in
      (match c.Decl.cd_super with Some s -> chain s 0 | None -> ());
      let rec check_ty where = function
        | Instr.Tint | Instr.Tref -> ()
        | Instr.Tobj cl ->
          if not (class_exists cl) then add where "unknown class %s in type" cl
        | Instr.Tarr t -> check_ty where t
      in
      List.iter
        (fun f -> check_ty (cn ^ "." ^ f.Decl.fd_name) f.Decl.fd_ty)
        (c.Decl.cd_fields @ c.Decl.cd_statics);
      let mseen = Hashtbl.create 8 in
      List.iter
        (fun m ->
          let mn = m.Decl.m_name in
          let where = cn ^ "." ^ mn in
          if Hashtbl.mem mseen mn then add where "duplicate method";
          Hashtbl.replace mseen mn ();
          Array.iter (check_ty where) m.Decl.m_args;
          Option.iter (check_ty where) m.Decl.m_ret;
          if m.Decl.m_sync && m.Decl.m_static then
            add where "synchronized static methods are not supported";
          if m.Decl.m_sync && Decl.nargs m < 1 then
            add where "synchronized instance method needs a receiver arg";
          if not m.Decl.m_static then
            if Decl.nargs m < 1 || not (Instr.is_ref_ty m.Decl.m_args.(0))
            then add where "instance method needs a reference receiver arg";
          let len = Array.length m.Decl.m_code in
          if len = 0 then add where "empty code";
          (* Last instruction must not fall off the end. *)
          if len > 0 && Instr.falls_through m.Decl.m_code.(len - 1) then
            add where "control can fall off the end of the code";
          Array.iteri
            (fun pc (ins : Instr.t) ->
              (match Instr.target ins with
              | Some t when t < 0 || t >= len ->
                add where "pc %d: branch target %d out of range" pc t
              | _ -> ());
              match ins with
              | Instr.Load n | Instr.Store n ->
                if n < 0 || n >= m.Decl.m_nlocals then
                  add where "pc %d: local slot %d out of range" pc n
              | Instr.New n ->
                if (not (class_exists n)) || n = Decl.object_class then
                  if not (builtin_exn n) && not (class_exists n) then
                    add where "pc %d: unknown class %s" pc n
              | Instr.Getfield (cl, fd) | Instr.Putfield (cl, fd) ->
                if not (find_field cl fd ~static:false) then
                  add where "pc %d: unknown field %s.%s" pc cl fd
              | Instr.Getstatic (cl, fd) | Instr.Putstatic (cl, fd) ->
                if not (find_field cl fd ~static:true) then
                  add where "pc %d: unknown static %s.%s" pc cl fd
              | Instr.Invoke (cl, mn') | Instr.Spawn (cl, mn') -> (
                match find_method cl mn' with
                | None -> add where "pc %d: unknown method %s.%s" pc cl mn'
                | Some _ -> ())
              | Instr.Checkcast cl | Instr.Instanceof cl ->
                if not (class_exists cl) then
                  add where "pc %d: unknown class %s" pc cl
              | Instr.Yieldpoint ->
                add where "pc %d: yieldpoint in user code" pc
              | _ -> ())
            m.Decl.m_code;
          List.iter
            (fun h ->
              if h.Decl.h_from < 0 || h.Decl.h_upto > len
                 || h.Decl.h_from >= h.Decl.h_upto then
                add where "handler range [%d,%d) invalid" h.Decl.h_from
                  h.Decl.h_upto;
              if h.Decl.h_target < 0 || h.Decl.h_target >= len then
                add where "handler target %d out of range" h.Decl.h_target;
              match h.Decl.h_class with
              | Some cl when not (class_exists cl) ->
                add where "handler catches unknown class %s" cl
              | _ -> ())
            m.Decl.m_handlers)
        c.Decl.cd_methods)
    p.classes;
  List.rev !issues

let check_exn p =
  match check p with
  | [] -> ()
  | issues ->
    failwith
      (Fmt.str "program check failed:@\n%a" (Fmt.list ~sep:Fmt.cut pp_issue)
         issues)

(* Advisory monitor-depth sanity pass. Deliberately NOT part of [check] (and
   hence not of the [Vm.Link] gate): the suite intentionally links and runs
   unbalanced programs to exercise the runtime IllegalMonitorStateException
   and deadlock paths, and those must keep loading.

   Per method, a small forward dataflow where the abstract state at a pc is
   the set of possible monitor depths reachable there, encoded as a bitmask
   (bit d set = some path reaches this pc holding d monitors entered in this
   frame). Merge is union; exception edges propagate the pre-instruction
   mask into every covering handler, so a handler that re-enters a
   synchronized region is analyzed at every depth the protected range can
   throw from. Flagged:
   - [Monitorexit] reachable at depth 0 (possible IllegalMonitorStateException),
   - [Ret]/[Retv] reachable at depth > 0 (the frame leaks a lock; [Throw]
     and [Halt] are exempt — unwinding and VM stop are sanctioned exits),
   - nesting beyond [monitor_depth_cap], almost always a loop around a
     [Monitorenter] with no matching exit.
   Depths are frame-relative and count only explicit instructions: the
   receiver monitor wrapped around a [m_sync] body by the compiler's
   expansion is balanced by construction and invisible here. *)

let monitor_depth_cap = 30

let check_monitors (p : Decl.program) : issue list =
  let issues = ref [] in
  let add where fmt =
    Fmt.kstr (fun what -> issues := { where; what } :: !issues) fmt
  in
  List.iter
    (fun c ->
      List.iter
        (fun m ->
          let where = c.Decl.cd_name ^ "." ^ m.Decl.m_name in
          let code = m.Decl.m_code in
          let len = Array.length code in
          if len > 0 then begin
            let masks = Array.make len 0 in
            let q = Queue.create () in
            let push pc mask =
              if pc >= 0 && pc < len && mask land lnot masks.(pc) <> 0 then begin
                masks.(pc) <- masks.(pc) lor mask;
                Queue.add pc q
              end
            in
            push 0 1;
            while not (Queue.is_empty q) do
              let pc = Queue.pop q in
              let mask = masks.(pc) in
              let ins = code.(pc) in
              (* Exception edge: the pre-instruction monitor state reaches
                 every handler covering this pc. *)
              if Instr.may_throw ins then
                List.iter
                  (fun h ->
                    if h.Decl.h_from <= pc && pc < h.Decl.h_upto then
                      push h.Decl.h_target mask)
                  m.Decl.m_handlers;
              let out =
                match ins with
                | Instr.Monitorenter ->
                  mask lsl 1 land ((1 lsl (monitor_depth_cap + 1)) - 1)
                | Instr.Monitorexit -> mask lsr 1
                | _ -> mask
              in
              if out <> 0 then
                List.iter (fun s -> push s out) (Instr.successors ins ~pc)
            done;
            Array.iteri
              (fun pc ins ->
                let mask = masks.(pc) in
                if mask <> 0 then
                  match (ins : Instr.t) with
                  | Instr.Monitorexit when mask land 1 <> 0 ->
                    add where
                      "pc %d: monitorexit may execute with no monitor held" pc
                  | Instr.Monitorenter
                    when mask land (1 lsl monitor_depth_cap) <> 0 ->
                    add where
                      "pc %d: monitor nesting may exceed depth %d (missing \
                       monitorexit in a loop?)"
                      pc monitor_depth_cap
                  | Instr.Ret | Instr.Retv ->
                    if mask land lnot 1 <> 0 then
                      add where
                        "pc %d: method may return while still holding a \
                         monitor"
                        pc
                  | _ -> ())
              code
          end)
        c.Decl.cd_methods)
    p.classes;
  List.rev !issues
