(* Instruction set of the simulated JVM-like machine.

   The type is parameterized by the branch-target representation so the same
   constructors serve both assembly form (string labels, ['lab = string]) and
   resolved form (instruction indices, ['lab = int]). *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(* Value types: machine integers, object references (with a static class
   bound), and arrays with typed elements. [Tref] is "any object" (including
   any array); [Tobj c] is an instance of class [c] or a subclass. *)
type ty = Tint | Tref | Tobj of string | Tarr of ty

let is_ref_ty = function Tint -> false | Tref | Tobj _ | Tarr _ -> true

let rec string_of_ty = function
  | Tint -> "int"
  | Tref -> "ref"
  | Tobj c -> c
  | Tarr t -> string_of_ty t ^ "[]"

type 'lab gen =
  (* Constants and locals *)
  | Const of int (* push literal integer *)
  | Sconst of string (* push interned string object (allocated at class load) *)
  | Null (* push null reference *)
  | Load of int (* push locals.(i) *)
  | Store of int (* locals.(i) <- pop *)
  (* Operand stack *)
  | Dup
  | Pop
  | Swap
  (* Integer arithmetic; Div/Rem by zero raises ArithmeticException *)
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Neg
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  (* Control flow *)
  | If of cmp * 'lab (* pop b, pop a; branch when [a cmp b] *)
  | Ifz of cmp * 'lab (* pop a; branch when [a cmp 0] *)
  | Ifnull of 'lab (* pop r; branch when r = null *)
  | Ifnonnull of 'lab
  | Ifrefeq of 'lab (* pop b, pop a (references); branch when same object *)
  | Ifrefne of 'lab
  | Goto of 'lab
  (* Objects and arrays *)
  | New of string (* class name; push fresh instance *)
  | Getfield of string * string (* class, field: pop obj; push value *)
  | Putfield of string * string (* pop value, pop obj *)
  | Getstatic of string * string
  | Putstatic of string * string
  | Newarray of ty (* element type; pop length; push array *)
  | Aload (* pop idx, pop arr; push arr.(idx) *)
  | Astore (* pop value, pop idx, pop arr *)
  | Arraylength (* pop arr; push length *)
  | Checkcast of string (* pop obj; push it as the named class, or throw *)
  | Instanceof of string (* pop obj; push 1 if instance of named class *)
  (* Calls: static dispatch for static methods, receiver-class lookup for
     instance methods (receiver is argument 0) *)
  | Invoke of string * string
  | Ret (* return void *)
  | Retv (* return the popped value *)
  (* Exceptions; handler tables live on the method *)
  | Throw (* pop exception object *)
  (* Synchronization (Java monitor semantics) *)
  | Monitorenter (* pop obj *)
  | Monitorexit (* pop obj *)
  | Wait (* pop obj; wait on its monitor; pushes 1 if interrupted else 0 *)
  | Timedwait (* pop millis, pop obj; pushes 1 if interrupted else 0 *)
  | Notify (* pop obj *)
  | Notifyall (* pop obj *)
  (* Threads *)
  | Spawn of string * string (* class, method: pop its nargs args; push tid *)
  | Sleep (* pop millis *)
  | Join (* pop tid; block until that thread terminates *)
  | Interrupt (* pop tid *)
  (* Environment interactions — the non-deterministic operations *)
  | Currenttime (* push virtual wall-clock value *)
  | Readinput (* push next external input integer *)
  | Nativecall of string (* registered native; arity/result per registration *)
  (* Output (deterministic, captured by the VM) *)
  | Print (* pop int, append to program output *)
  | Prints (* pop string ref, append to program output *)
  | Halt (* terminate the whole VM *)
  | Nop
  (* Injected by the VM's method compiler at prologues and loop backedges.
     Rejected by the assembler in user code. *)
  | Yieldpoint

type t = int gen (* resolved form: branch targets are instruction indices *)

type asm = string gen (* assembly form: branch targets are label names *)

let string_of_cmp = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let[@inline] eval_cmp c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

(* Map over branch targets; used by the assembler and the yield-point
   injection pass. *)
let map_target f (i : 'a gen) : 'b gen =
  match i with
  | If (c, l) -> If (c, f l)
  | Ifz (c, l) -> Ifz (c, f l)
  | Ifnull l -> Ifnull (f l)
  | Ifnonnull l -> Ifnonnull (f l)
  | Ifrefeq l -> Ifrefeq (f l)
  | Ifrefne l -> Ifrefne (f l)
  | Goto l -> Goto (f l)
  | Const n -> Const n
  | Sconst s -> Sconst s
  | Null -> Null
  | Load n -> Load n
  | Store n -> Store n
  | Dup -> Dup
  | Pop -> Pop
  | Swap -> Swap
  | Add -> Add
  | Sub -> Sub
  | Mul -> Mul
  | Div -> Div
  | Rem -> Rem
  | Neg -> Neg
  | Band -> Band
  | Bor -> Bor
  | Bxor -> Bxor
  | Shl -> Shl
  | Shr -> Shr
  | New c -> New c
  | Getfield (c, fd) -> Getfield (c, fd)
  | Putfield (c, fd) -> Putfield (c, fd)
  | Getstatic (c, fd) -> Getstatic (c, fd)
  | Putstatic (c, fd) -> Putstatic (c, fd)
  | Newarray e -> Newarray e
  | Aload -> Aload
  | Astore -> Astore
  | Arraylength -> Arraylength
  | Checkcast c -> Checkcast c
  | Instanceof c -> Instanceof c
  | Invoke (c, m) -> Invoke (c, m)
  | Ret -> Ret
  | Retv -> Retv
  | Throw -> Throw
  | Monitorenter -> Monitorenter
  | Monitorexit -> Monitorexit
  | Wait -> Wait
  | Timedwait -> Timedwait
  | Notify -> Notify
  | Notifyall -> Notifyall
  | Spawn (c, m) -> Spawn (c, m)
  | Sleep -> Sleep
  | Join -> Join
  | Interrupt -> Interrupt
  | Currenttime -> Currenttime
  | Readinput -> Readinput
  | Nativecall n -> Nativecall n
  | Print -> Print
  | Prints -> Prints
  | Halt -> Halt
  | Nop -> Nop
  | Yieldpoint -> Yieldpoint

let target (i : 'a gen) : 'a option =
  match i with
  | If (_, l) | Ifz (_, l) | Ifnull l | Ifnonnull l | Goto l
  | Ifrefeq l | Ifrefne l -> Some l
  | _ -> None

(* Does control fall through to the next instruction? *)
let falls_through (i : 'a gen) =
  match i with Goto _ | Ret | Retv | Throw | Halt -> false | _ -> true

(* Normal (non-exceptional) control-flow successors of the instruction at
   [pc] in resolved form. Exception edges are not included; callers that
   care about them consult the method's handler table. *)
let successors (i : t) ~pc : int list =
  let fall = if falls_through i then [ pc + 1 ] else [] in
  match target i with
  | Some l -> (match i with Goto _ -> [ l ] | _ -> l :: fall)
  | None -> fall

(* Can executing this instruction raise a catchable exception in the current
   frame? Environmental failures (out of memory, stack overflow) are not
   counted; this lists the instructions whose own semantics can throw:
   arithmetic on a zero divisor, null/bounds/cast failures, illegal monitor
   states, and anything that runs other code (calls, spawns of bad targets)
   or can be interrupted while parked. *)
let may_throw (i : 'a gen) =
  match i with
  | Div | Rem -> true
  | Getfield _ | Putfield _ -> true
  | Newarray _ | Aload | Astore | Arraylength -> true
  | Checkcast _ -> true
  | Invoke _ | Spawn _ | Nativecall _ -> true
  | Monitorenter | Monitorexit | Wait | Timedwait | Notify | Notifyall -> true
  | Sleep | Join | Interrupt -> true
  | Throw -> true
  | Prints -> true
  | _ -> false

let mnemonic (i : 'a gen) =
  match i with
  | Const _ -> "const"
  | Sconst _ -> "sconst"
  | Null -> "null"
  | Load _ -> "load"
  | Store _ -> "store"
  | Dup -> "dup"
  | Pop -> "pop"
  | Swap -> "swap"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Neg -> "neg"
  | Band -> "band"
  | Bor -> "bor"
  | Bxor -> "bxor"
  | Shl -> "shl"
  | Shr -> "shr"
  | If (c, _) -> "if" ^ string_of_cmp c
  | Ifz (c, _) -> "ifz" ^ string_of_cmp c
  | Ifnull _ -> "ifnull"
  | Ifnonnull _ -> "ifnonnull"
  | Ifrefeq _ -> "ifrefeq"
  | Ifrefne _ -> "ifrefne"
  | Goto _ -> "goto"
  | New _ -> "new"
  | Getfield _ -> "getfield"
  | Putfield _ -> "putfield"
  | Getstatic _ -> "getstatic"
  | Putstatic _ -> "putstatic"
  | Newarray _ -> "newarray"
  | Aload -> "aload"
  | Astore -> "astore"
  | Arraylength -> "arraylength"
  | Checkcast _ -> "checkcast"
  | Instanceof _ -> "instanceof"
  | Invoke _ -> "invoke"
  | Ret -> "ret"
  | Retv -> "retv"
  | Throw -> "throw"
  | Monitorenter -> "monitorenter"
  | Monitorexit -> "monitorexit"
  | Wait -> "wait"
  | Timedwait -> "timedwait"
  | Notify -> "notify"
  | Notifyall -> "notifyall"
  | Spawn _ -> "spawn"
  | Sleep -> "sleep"
  | Join -> "join"
  | Interrupt -> "interrupt"
  | Currenttime -> "currenttime"
  | Readinput -> "readinput"
  | Nativecall _ -> "nativecall"
  | Print -> "print"
  | Prints -> "prints"
  | Halt -> "halt"
  | Nop -> "nop"
  | Yieldpoint -> "yieldpoint"

let pp ppf (i : int gen) =
  let s = mnemonic i in
  match i with
  | Const n -> Fmt.pf ppf "%s %d" s n
  | Sconst str -> Fmt.pf ppf "%s %S" s str
  | Load n | Store n -> Fmt.pf ppf "%s %d" s n
  | If (_, l) | Ifz (_, l) | Ifnull l | Ifnonnull l | Goto l
  | Ifrefeq l | Ifrefne l ->
    Fmt.pf ppf "%s @%d" s l
  | New c -> Fmt.pf ppf "%s %s" s c
  | Getfield (c, fd) | Putfield (c, fd) | Getstatic (c, fd) | Putstatic (c, fd)
    ->
    Fmt.pf ppf "%s %s.%s" s c fd
  | Newarray ty -> Fmt.pf ppf "%s %s" s (string_of_ty ty)
  | Checkcast c | Instanceof c -> Fmt.pf ppf "%s %s" s c
  | Invoke (c, m) | Spawn (c, m) -> Fmt.pf ppf "%s %s.%s" s c m
  | Nativecall n -> Fmt.pf ppf "%s %s" s n
  | _ -> Fmt.string ppf s

let to_string i = Fmt.str "%a" pp i
