(* Class, method, and program declarations — the "class file" level of the
   simulated machine. Names are symbolic here; the VM's class loader resolves
   them to ids at load time. *)

type handler = {
  h_from : int; (* first covered pc, inclusive *)
  h_upto : int; (* last covered pc, exclusive *)
  h_target : int; (* handler entry pc; exception object is pushed there *)
  h_class : string option; (* None catches everything *)
}

type mdecl = {
  m_name : string;
  m_static : bool;
  m_args : Instr.ty array; (* argument types; includes the receiver *)
  m_nlocals : int; (* total local slots, >= Array.length m_args *)
  m_ret : Instr.ty option; (* None = void *)
  m_sync : bool; (* synchronized: loader wraps body in receiver monitor *)
  m_code : Instr.t array;
  m_handlers : handler list;
  m_lines : (int * int) list; (* sorted (start_pc, source_line) table *)
}

let nargs m = Array.length m.m_args

let returns m = m.m_ret <> None

type fdecl = { fd_name : string; fd_ty : Instr.ty }

type cdecl = {
  cd_name : string;
  cd_super : string option; (* None means direct subclass of Object *)
  cd_fields : fdecl list; (* instance fields declared by this class *)
  cd_statics : fdecl list;
  cd_methods : mdecl list;
}

type program = {
  classes : cdecl list;
  main_class : string; (* must declare a static, 0-arg method "main" *)
}

(* Names of classes built into every program. *)
let object_class = "Object"

let string_class = "String"

let exception_classes =
  [
    "Throwable";
    "ArithmeticException";
    "NullPointerException";
    "ArrayIndexOutOfBoundsException";
    "NegativeArraySizeException";
    "IllegalMonitorStateException";
    "InterruptedException";
    "ClassCastException";
    "StackOverflowError";
    "OutOfMemoryError";
  ]

let mdecl ?(static = true) ?ret ?(sync = false) ?(handlers = [])
    ?(lines = []) ?(args = []) ~nlocals name code =
  let args = Array.of_list args in
  if nlocals < Array.length args then
    invalid_arg
      (Fmt.str "mdecl %s: nlocals %d < nargs %d" name nlocals
         (Array.length args));
  {
    m_name = name;
    m_static = static;
    m_args = args;
    m_nlocals = nlocals;
    m_ret = ret;
    m_sync = sync;
    m_code = Array.of_list code;
    m_handlers = handlers;
    m_lines = lines;
  }

let cdecl ?super ?(fields = []) ?(statics = []) name methods =
  {
    cd_name = name;
    cd_super = super;
    cd_fields = fields;
    cd_statics = statics;
    cd_methods = methods;
  }

let field ?(ty = Instr.Tint) name = { fd_name = name; fd_ty = ty }

let program ?main_class classes =
  let main_class =
    match (main_class, classes) with
    | Some m, _ -> m
    | None, c :: _ -> c.cd_name
    | None, [] -> invalid_arg "program: no classes"
  in
  { classes; main_class }

let find_class p name = List.find_opt (fun c -> c.cd_name = name) p.classes

let find_method c name = List.find_opt (fun m -> m.m_name = name) c.cd_methods

(* Source line for a pc, from the method's line table. *)
let line_of_pc m pc =
  let rec go best = function
    | [] -> best
    | (start, ln) :: rest -> if start <= pc then go (Some ln) rest else best
  in
  go None m.m_lines

(* A stable structural hash of a program, used to stamp traces so that a
   trace recorded for one program is not replayed against another. *)
let digest_uncached (p : program) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf p.main_class;
  List.iter
    (fun c ->
      Buffer.add_string buf c.cd_name;
      Buffer.add_string buf (Option.value c.cd_super ~default:"");
      List.iter
        (fun f ->
          Buffer.add_string buf f.fd_name;
          Buffer.add_string buf (Instr.string_of_ty f.fd_ty))
        (c.cd_fields @ c.cd_statics);
      List.iter
        (fun m ->
          Buffer.add_string buf m.m_name;
          Array.iter
            (fun ty -> Buffer.add_string buf (Instr.string_of_ty ty))
            m.m_args;
          Buffer.add_string buf
            (Fmt.str "/%d/%b/%s/%b" m.m_nlocals m.m_static
               (match m.m_ret with
               | None -> "void"
               | Some ty -> Instr.string_of_ty ty)
               m.m_sync);
          Array.iter
            (fun i -> Buffer.add_string buf (Instr.to_string i))
            m.m_code;
          List.iter
            (fun h ->
              Buffer.add_string buf
                (Fmt.str "h%d:%d:%d:%s" h.h_from h.h_upto h.h_target
                   (Option.value h.h_class ~default:"*")))
            m.m_handlers)
        c.cd_methods)
    p.classes;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Serializing every instruction per call is milliseconds on larger
   programs, and sessions stamp the digest on every record finish and
   replay attach. Programs are immutable decl values that callers reuse,
   so a small physical-equality cache removes the rescan. Shards race on
   the cache from different domains; a lost update just recomputes. *)
let digest_cache : (program * string) list Atomic.t = Atomic.make []

let digest (p : program) : string =
  match List.find_opt (fun (q, _) -> q == p) (Atomic.get digest_cache) with
  | Some (_, d) -> d
  | None ->
    let d = digest_uncached p in
    let cur = Atomic.get digest_cache in
    let cur = if List.length cur >= 16 then List.filteri (fun i _ -> i < 8) cur else cur in
    Atomic.set digest_cache ((p, d) :: cur);
    d

(* Name of the class-initializer method, run at class initialization. *)
let clinit_name = "<clinit>"
