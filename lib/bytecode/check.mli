(** Static well-formedness checks over a whole program: name resolution,
    branch and local-slot ranges, arity agreement, handler sanity, entry
    point. The VM's verifier ([Vm.Verify]) performs the dataflow/type
    checks on compiled code; this pass runs first and is what the class
    loader ([Vm.Link]) consults before accepting a program. *)

type issue = { where : string; what : string }

val pp_issue : Format.formatter -> issue -> unit

(** All problems found, empty for a well-formed program. *)
val check : Decl.program -> issue list

(** Raise [Failure] with a readable report when {!check} finds issues. *)
val check_exn : Decl.program -> unit

(** Advisory monitor-depth sanity pass, deliberately not part of {!check}
    (programs with unbalanced monitors still load and fail at runtime with
    IllegalMonitorStateException — tests rely on that). Per method, a
    forward dataflow over the set of possible monitor depths (a bitmask)
    flags: a [Monitorexit] reachable at depth 0, a [Ret]/[Retv] reachable
    while possibly holding a monitor ([Throw]/[Halt] are exempt), and
    nesting beyond an internal cap. Exception edges carry the
    pre-instruction depth set into covering handlers. Surfaced by
    [dvrun lint]. *)
val check_monitors : Decl.program -> issue list
