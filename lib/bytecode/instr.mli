(** Instruction set of the simulated JVM-like machine.

    Instructions are parameterized by the branch-target representation: the
    assembly form uses string labels, the resolved form instruction
    indices. Semantics notes live on each constructor; the interpreter in
    [lib/vm/interp.ml] is the definitive implementation. *)

(** Comparison operators for the branching instructions. *)
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Value types: machine integers, object references (with an optional
    static class bound), and arrays with typed elements. [Tref] means "any
    object" (including any array); [Tobj c] an instance of class [c] or a
    subclass; arrays are invariant in their element type. *)
type ty = Tint | Tref | Tobj of string | Tarr of ty

(** [true] for every type that the garbage collector must scan. *)
val is_ref_ty : ty -> bool

(** Render a type the way the textual assembly language spells it
    (["int"], ["ref"], a class name, or a type followed by ["[]"]). *)
val string_of_ty : ty -> string

(** The instruction set, generic in the branch-target type ['lab]. *)
type 'lab gen =
  | Const of int  (** push a literal integer *)
  | Sconst of string
      (** push an interned string object (allocated at class init) *)
  | Null  (** push the null reference *)
  | Load of int  (** push local slot [i] *)
  | Store of int  (** pop into local slot [i] *)
  | Dup
  | Pop
  | Swap
  | Add
  | Sub
  | Mul
  | Div  (** raises ArithmeticException on zero divisor *)
  | Rem  (** raises ArithmeticException on zero divisor *)
  | Neg
  | Band
  | Bor
  | Bxor
  | Shl  (** shift count masked to 0..63 *)
  | Shr  (** arithmetic shift; count masked to 0..63 *)
  | If of cmp * 'lab  (** pop b, pop a; branch when [a cmp b] *)
  | Ifz of cmp * 'lab  (** pop a; branch when [a cmp 0] *)
  | Ifnull of 'lab
  | Ifnonnull of 'lab
  | Ifrefeq of 'lab  (** pop two references; branch when identical *)
  | Ifrefne of 'lab
  | Goto of 'lab
  | New of string  (** push a fresh, zeroed instance of the named class *)
  | Getfield of string * string  (** class, field: pop obj; push value *)
  | Putfield of string * string  (** pop value, pop obj *)
  | Getstatic of string * string
  | Putstatic of string * string
  | Newarray of ty  (** element type; pop length; push array *)
  | Aload  (** pop index, pop array; push element *)
  | Astore  (** pop value, pop index, pop array *)
  | Arraylength
  | Checkcast of string
      (** retype the top reference, or raise ClassCastException *)
  | Instanceof of string  (** pop obj; push 0/1 *)
  | Invoke of string * string
      (** static dispatch for static methods; receiver-class vtable lookup
          for instance methods (receiver is argument 0) *)
  | Ret  (** return void *)
  | Retv  (** return the popped value *)
  | Throw  (** pop a Throwable and unwind *)
  | Monitorenter  (** pop obj; blocks when held by another thread *)
  | Monitorexit
  | Wait  (** pop obj; park in its wait set; pushes 1 when interrupted *)
  | Timedwait  (** pop millis, pop obj; like [Wait] with a deadline *)
  | Notify
  | Notifyall
  | Spawn of string * string
      (** start a thread on class.method, popping its arguments; push the
          new thread id *)
  | Sleep  (** pop millis; [Sleep 0] is a voluntary yield *)
  | Join  (** pop tid; block until that thread terminates *)
  | Interrupt  (** pop tid *)
  | Currenttime  (** push the (non-deterministic) wall-clock value *)
  | Readinput  (** push the next external input integer *)
  | Nativecall of string  (** call a registered native, see {!Vm.Native} *)
  | Print  (** pop an int; append it and a newline to the program output *)
  | Prints  (** pop a String; append its characters to the output *)
  | Halt  (** stop the whole machine *)
  | Nop
  | Yieldpoint
      (** injected by the VM's method compiler at prologues and loop
          backedges; rejected in user code by the assembler *)

(** Resolved form: branch targets are instruction indices. *)
type t = int gen

(** Assembly form: branch targets are label names. *)
type asm = string gen

val string_of_cmp : cmp -> string

(** Evaluate a comparison on two integers. *)
val eval_cmp : cmp -> int -> int -> bool

(** Map over the branch target, if any. Used by the assembler and the
    yield-point injection pass. *)
val map_target : ('a -> 'b) -> 'a gen -> 'b gen

(** The branch target of an instruction, if it has one. *)
val target : 'a gen -> 'a option

(** Does control ever fall through to the next instruction? *)
val falls_through : 'a gen -> bool

(** Normal (non-exceptional) control-flow successors of the instruction at
    [pc], in resolved form. Exception edges are not included; consult the
    method's handler table for those. *)
val successors : t -> pc:int -> int list

(** Can this instruction's own semantics raise a catchable exception
    (arithmetic, null/bounds/cast failures, illegal monitor states, running
    other code)? Environmental failures such as out-of-memory are not
    counted. *)
val may_throw : 'a gen -> bool

(** The textual mnemonic (also the assembly-language spelling). *)
val mnemonic : 'a gen -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
