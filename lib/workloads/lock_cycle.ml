(* Seeded lock-order inversion: two threads take the same two static locks
   in opposite orders (A then B vs B then A) with a busy spin between the
   acquisitions. The static lock-order pass must flag the A->B->A cycle;
   at runtime the scheduler may or may not actually trip the deadlock, and
   either outcome records and replays deterministically (the registry
   already tolerates Deadlocked runs — see philosophers-deadlock). *)

open Util

let program ?(work = 2000) () : D.program =
  let c = "Cycle" in
  let locked_bump first second =
    [ i (I.Getstatic (c, first)); i I.Monitorenter ]
    @ spin c work
    @ [
        i (I.Getstatic (c, second));
        i I.Monitorenter;
        i (I.Getstatic (c, "count"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "count"));
        i (I.Getstatic (c, second));
        i I.Monitorexit;
        i (I.Getstatic (c, first));
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  let ab = A.method_ ~nlocals:0 "ab" (locked_bump "lockA" "lockB") in
  let ba = A.method_ ~nlocals:0 "ba" (locked_bump "lockB" "lockA") in
  let main =
    A.method_ ~nlocals:2 "main"
      ([
         i (I.New "Object");
         i (I.Putstatic (c, "lockA"));
         i (I.New "Object");
         i (I.Putstatic (c, "lockB"));
         i (I.Spawn (c, "ab"));
         i (I.Store 0);
         i (I.Spawn (c, "ba"));
         i (I.Store 1);
         i (I.Load 0);
         i I.Join;
         i (I.Load 1);
         i I.Join;
       ]
      @ print_str "count="
      @ [ i (I.Getstatic (c, "count")); i I.Print; i I.Ret ])
  in
  D.program ~main_class:c
    [
      D.cdecl c
        ~statics:
          [
            D.field "count";
            D.field ~ty:(I.Tobj "Object") "lockA";
            D.field ~ty:(I.Tobj "Object") "lockB";
          ]
        [ spin_method; ab; ba; main ];
    ]
