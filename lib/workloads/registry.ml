(* The workload catalogue: every program with its natives and a description,
   addressable by name from the CLI, the tests, and the bench harness. *)

type entry = {
  name : string;
  description : string;
  program : Bytecode.Decl.program;
  natives : Vm.Native.spec list;
}

let entry ?(natives = []) name description program =
  { name; description; program; natives }

let core : entry list Lazy.t =
  lazy
    [
      entry "fig1ab" "paper Figure 1 (A)/(B): racy statics, outcome depends on switches"
        (Fig1.ab ());
      entry "fig1cd" "paper Figure 1 (C)/(D): wall clock decides a branch with wait/notify"
        (Fig1.cd ());
      entry "racy-counter" "lost-update race on a shared counter"
        (Counters.racy ());
      entry "synced-counter" "synchronized shared counter (deterministic sum)"
        (Counters.synced ());
      entry "producer-consumer" "bounded buffer with wait/notify"
        (Producer_consumer.program ());
      entry "philosophers" "dining philosophers, ordered forks"
        (Philosophers.program ());
      entry "philosophers-deadlock"
        "dining philosophers, naive forks (can deadlock)"
        (Philosophers.program ~ordered:false ());
      entry "bank" "teller threads transfer between locked accounts"
        (Bank.program ());
      entry "primes" "single-threaded prime counting (tight loops)"
        (Compute.primes ());
      entry "parsum" "fork/join parallel array sum" (Compute.parsum ());
      entry "gc-churn" "linked-list churn across threads (GC pressure)"
        (Gc_churn.program ());
      entry "exceptions" "handlers, rethrows, a thread death"
        (Exceptions_wl.program ());
      entry "native" "native calls with callbacks" ~natives:Native_demo.natives
        (Native_demo.program ());
      entry "deep" "deep recursion across stack growth" (Deep.recurse ());
      entry "overflow" "catchable StackOverflowError" (Deep.overflow ());
      entry "timed" "sleep / timed wait / notify interplay" (Timed.program ());
    ]

(* The full catalogue: the core set plus the synchronization-pattern,
   sorting, and actor workloads. *)
let all : entry list Lazy.t =
  lazy
    (Lazy.force core
    @ [
        entry "barrier" "cyclic barrier separating work phases"
          (Sync_patterns.barrier ());
        entry "rwlock" "readers-writer lock with an isolation invariant"
          (Sync_patterns.rwlock ());
        entry "mergesort" "fork/join mergesort with verification"
          (Sorting.program ());
        entry "ring" "token-ring actors passing messages via wait/notify"
          (Ring_actors.program ());
        entry "webserver"
          "acceptor + worker pool + keyed store: the paper's server shape"
          (Webserver.program ());
        entry "lock-cycle"
          "two threads taking two locks in opposite orders (can deadlock)"
          (Lock_cycle.program ());
        entry "atomicity"
          "check-then-act overdraft: fails only when preempted between \
           check and act"
          (Atomicity.program ());
      ])

let find name = List.find_opt (fun e -> e.name = name) (Lazy.force all)

let names () = List.map (fun e -> e.name) (Lazy.force all)
