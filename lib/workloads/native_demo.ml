(* JNI-style workload (paper section 2.5): calls natives whose results come
   from the environment (non-deterministic) and one whose outcome includes
   callbacks into VM methods. Used to test that DejaVu records native
   results + callback parameters and regenerates them during replay. *)

open Util

(* Natives this workload registers on top of the stock set. env_sensor
   derives a reading from the wall clock; env_poll returns an event count
   and fires that many on_event callbacks with environment-chosen args. *)
let natives : Vm.Native.spec list =
  [
    Vm.Native.make ~name:"env_sensor" ~arity:1 ~returns:true (fun vm args ->
        Vm.Native.value
          ((Vm.Env.read_clock vm.Vm.Rt.env + (args.(0) * 17)) mod 1000));
    Vm.Native.make ~name:"env_poll" ~arity:0 ~returns:true (fun vm _ ->
        let n = Vm.Env.random vm.Vm.Rt.env 3 in
        {
          Vm.Native.result = Some n;
          callbacks =
            List.init n (fun k ->
                ( ("NativeDemo", "on_event"),
                  [| k; Vm.Env.random vm.Vm.Rt.env 50 |] ));
        });
  ]

let program ?(rounds = 25) () : D.program =
  let c = "NativeDemo" in
  let on_event =
    (* callback target: accumulate the event payloads *)
    A.method_ ~args:[ I.Tint; I.Tint ] ~nlocals:2 "on_event"
      [
        i (I.Getstatic (c, "events"));
        i (I.Load 0);
        i I.Add;
        i (I.Load 1);
        i I.Add;
        i (I.Putstatic (c, "events"));
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:2 "main"
      [
        i (I.Const rounds);
        i (I.Store 0);
        l "loop";
        i (I.Load 0);
        i (I.Ifz (I.Le, "end"));
        (* sensor reading folded into a running total *)
        i (I.Getstatic (c, "total"));
        i (I.Load 0);
        i (I.Nativecall "env_sensor");
        i I.Add;
        i (I.Putstatic (c, "total"));
        (* poll may fire on_event callbacks before returning a count *)
        i (I.Nativecall "env_poll");
        i (I.Getstatic (c, "polled"));
        i I.Add;
        i (I.Putstatic (c, "polled"));
        i (I.Load 0);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 0);
        i (I.Goto "loop");
        l "end";
        i (I.Getstatic (c, "total"));
        i I.Print;
        i (I.Getstatic (c, "polled"));
        i I.Print;
        i (I.Getstatic (c, "events"));
        i I.Print;
        i I.Ret;
      ]
  in
  D.program
    [
      D.cdecl c
        ~statics:[ D.field "total"; D.field "polled"; D.field "events" ]
        [ on_event; main ];
    ]
