(* Check-then-act atomicity bug: two withdrawer threads each check a shared
   balance and, if sufficient, withdraw — but the check and the act are
   separated by a spin call whose yield points open a preemption window.
   Under FIFO scheduling each withdrawal is effectively atomic and the
   assertion holds; only a schedule that preempts a withdrawer between its
   check and its act lets both threads pass the check against the same
   balance and drive it negative, at which point main throws an uncaught
   OverdraftError. The seeded target for the schedule explorer: one
   preemption inside the window suffices. *)

open Util

let program ?(balance = 10) ?(price = 10) ?(threads = 2) ?(work = 6) () :
    D.program =
  let c = "Atomicity" in
  let exc = "OverdraftError" in
  let withdraw =
    (* if balance >= price then { spin(work); balance = balance - price } *)
    A.method_ ~nlocals:1 "withdraw"
      ([
         i (I.Getstatic (c, "balance"));
         i (I.Const price);
         i (I.If (I.Lt, "skip"));
       ]
      @ spin c work
      @ [
          i (I.Getstatic (c, "balance"));
          i (I.Const price);
          i I.Sub;
          i (I.Putstatic (c, "balance"));
          l "skip";
          i I.Ret;
        ])
  in
  let main =
    A.method_ ~nlocals:threads "main"
      ([ i (I.Const balance); i (I.Putstatic (c, "balance")) ]
      @ List.concat_map
          (fun k -> [ i (I.Spawn (c, "withdraw")); i (I.Store k) ])
          (List.init threads (fun k -> k))
      @ List.concat_map
          (fun k -> [ i (I.Load k); i I.Join ])
          (List.init threads (fun k -> k))
      @ [ i (I.Getstatic (c, "balance")); i (I.Ifz (I.Ge, "ok")) ]
      @ print_str "OVERDRAWN\n"
      @ [
          i (I.New exc);
          i I.Throw;
          l "ok";
          i (I.Getstatic (c, "balance"));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program ~main_class:c
    [
      D.cdecl exc ~super:"Throwable" [];
      D.cdecl c
        ~statics:[ D.field "balance" ]
        [ Util.spin_method; withdraw; main ];
    ]
