(* SplitMix64 — a small, fast, seedable PRNG. Used only for the *simulated
   environment* (instruction-time jitter, synthetic input); never for program
   semantics, so replay never depends on it.

   The generator runs once per executed instruction (Env.tick draws from it
   twice), so it sits on the interpreter's hottest path. Without flambda,
   an Int64 implementation boxes every intermediate — around 12ns per draw,
   a quarter of the whole per-instruction budget. The step function
   therefore lives in a tiny [@@noalloc] C stub operating on the 8-byte
   state buffer; it returns the low 62 bits of the raw output (exactly what
   [Int64.to_int x land max_int] used to extract), so the stream is
   bit-for-bit the one the boxed implementation produced. *)

type t = { state : Bytes.t (* 8 bytes, native-endian uint64 *) }

(* Advances the state and returns the low 62 bits of the next output. *)
external next_bits : Bytes.t -> int = "dv_prng_next_bits" [@@noalloc]

let create seed =
  let state = Bytes.create 8 in
  Bytes.set_int64_ne state 0 (Int64.of_int seed);
  { state }

let copy t = { state = Bytes.copy t.state }

(* Re-point [t] at the start of [seed]'s stream, in place. The farm's warm
   VM reset uses this: a reused environment must draw exactly the stream a
   freshly created one would. *)
let reseed t seed = Bytes.set_int64_ne t.state 0 (Int64.of_int seed)

(* Overwrite [t]'s state with [from]'s (snapshot restore). *)
let restore t ~from = Bytes.blit from.state 0 t.state 0 8

(* Uniform in [0, bound). bound must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  next_bits t.state mod bound

let bool t = next_bits t.state land 1 = 1

external pair_bits : Bytes.t -> int -> int -> int = "dv_prng_pair" [@@noalloc]

(* Two consecutive [int] draws fused into one stub call (the interpreter's
   per-instruction clock makes exactly this pair). Packed (d1 lsl 10) lor
   d2, hence the b2 cap. *)
let int_pair t b1 b2 =
  if b1 <= 0 || b2 <= 0 || b2 > 1024 then invalid_arg "Prng.int_pair";
  pair_bits t.state b1 b2

(* The raw 8-byte state, for Env's batched-tick stub — which steps the
   generator in C with the same SplitMix64 transition the stubs above use. *)
let raw_state t = t.state
