(* Execution observers: capture or digest the event sequence (one event per
   executed instruction, including yield points). The paper defines two
   executions as identical when their event sequences and per-event states
   agree; observers are how the tests and benches check exactly that.

   Both observer kinds fold the SAME rolling hash over the events they see,
   so a collecting observer's digest is comparable with a digesting one's
   for the same run — and stays exact even past the collection cap, which
   only bounds how many events are *kept*, never how many are counted or
   hashed. *)

let hash_seed = 0x3bf29ce484222325

let mix acc v = (acc lxor (v land max_int)) * 0x100000001b3 land max_int

let mix4 acc tid uid pc tag = mix (mix (mix (mix acc tid) uid) pc) tag

type collector = {
  col_evs : Rt.obs list ref; (* reversed kept events *)
  col_max : int;
  col_hash : int ref;
  col_n : int ref; (* true event count, kept or not *)
  col_dropped : int ref; (* events past the cap *)
}

type t =
  | Digesting of int ref * int ref (* rolling hash, event count *)
  | Collecting of collector

let attach_digest (vm : Rt.t) =
  let h = ref hash_seed and n = ref 0 in
  vm.hooks.h_observe <-
    Some
      (fun _vm tid uid pc tag ->
        incr n;
        h := mix4 !h tid uid pc tag);
  Digesting (h, n)

let attach_collect ?(max_events = 2_000_000) (vm : Rt.t) =
  let c =
    {
      col_evs = ref [];
      col_max = max_events;
      col_hash = ref hash_seed;
      col_n = ref 0;
      col_dropped = ref 0;
    }
  in
  vm.hooks.h_observe <-
    Some
      (fun _vm tid uid pc tag ->
        incr c.col_n;
        c.col_hash := mix4 !(c.col_hash) tid uid pc tag;
        if !(c.col_n) <= c.col_max then
          c.col_evs :=
            { Rt.o_tid = tid; o_uid = uid; o_pc = pc; o_tag = tag }
            :: !(c.col_evs)
        else incr c.col_dropped);
  Collecting c

let detach (vm : Rt.t) = vm.hooks.h_observe <- None

let digest = function
  | Digesting (h, _) -> !h
  | Collecting c -> !(c.col_hash)

let count = function
  | Digesting (_, n) -> !n
  | Collecting c -> !(c.col_n)

let dropped = function Digesting _ -> 0 | Collecting c -> !(c.col_dropped)

let events = function
  | Collecting c -> List.rev !(c.col_evs)
  | Digesting _ -> invalid_arg "Observer.events: digesting observer"

let pp_obs ppf (o : Rt.obs) =
  Fmt.pf ppf "t%d m%d@%d#%d" o.o_tid o.o_uid o.o_pc o.o_tag
