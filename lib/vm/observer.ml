(* Execution observers: capture or digest the event sequence (one event per
   executed instruction, including yield points). The paper defines two
   executions as identical when their event sequences and per-event states
   agree; observers are how the tests and benches check exactly that.

   Both observer kinds fold the SAME rolling hash over the events they see,
   so a collecting observer's digest is comparable with a digesting one's
   for the same run — and stays exact even past the collection cap, which
   only bounds how many events are *kept*, never how many are counted or
   hashed. *)

let hash_seed = 0x3bf29ce484222325

let mix acc v = (acc lxor (v land max_int)) * 0x100000001b3 land max_int

let mix4 acc tid uid pc tag = mix (mix (mix (mix acc tid) uid) pc) tag

type collector = {
  col_evs : Rt.obs list ref; (* reversed kept events *)
  col_max : int;
  col_hash : int ref;
  col_n : int ref; (* true event count, kept or not *)
  col_dropped : int ref; (* events past the cap *)
}

type t =
  | Digesting of int ref * int ref (* rolling hash, event count *)
  | Collecting of collector

let attach_digest (vm : Rt.t) =
  let h = ref hash_seed and n = ref 0 in
  vm.hooks.h_observe <-
    Some
      (fun _vm tid uid pc tag ->
        incr n;
        h := mix4 !h tid uid pc tag);
  Digesting (h, n)

let attach_collect ?(max_events = 2_000_000) (vm : Rt.t) =
  let c =
    {
      col_evs = ref [];
      col_max = max_events;
      col_hash = ref hash_seed;
      col_n = ref 0;
      col_dropped = ref 0;
    }
  in
  vm.hooks.h_observe <-
    Some
      (fun _vm tid uid pc tag ->
        incr c.col_n;
        c.col_hash := mix4 !(c.col_hash) tid uid pc tag;
        if !(c.col_n) <= c.col_max then
          c.col_evs :=
            { Rt.o_tid = tid; o_uid = uid; o_pc = pc; o_tag = tag }
            :: !(c.col_evs)
        else incr c.col_dropped);
  Collecting c

let detach (vm : Rt.t) = vm.hooks.h_observe <- None

let digest = function
  | Digesting (h, _) -> !h
  | Collecting c -> !(c.col_hash)

let count = function
  | Digesting (_, n) -> !n
  | Collecting c -> !(c.col_n)

let dropped = function Digesting _ -> 0 | Collecting c -> !(c.col_dropped)

let events = function
  | Collecting c -> List.rev !(c.col_evs)
  | Digesting _ -> invalid_arg "Observer.events: digesting observer"

let pp_obs ppf (o : Rt.obs) =
  Fmt.pf ppf "t%d m%d@%d#%d" o.o_tid o.o_uid o.o_pc o.o_tag

(* --- dynamic sharing tracker ----------------------------------------

   A vector-clock happens-before race detector (FastTrack-lite) over the
   heap hooks. Locations are concrete heap words (or globals slots), each
   mapped back to the *static analysis's* field key — "C.f" by declaring
   class, "C.f (static)", or "[]" for any array element — so a dynamic
   race witness is directly comparable with `dvrun lint` output: the
   dynamic-vs-static property test asserts every key reported racy here is
   also reported racy statically.

   Happens-before is built from program order plus the synchronization
   edges the scheduler announces (h_lock release/acquire pairs, h_spawn,
   and h_hb join/interrupt edges) — NOT from the observed uniprocessor
   interleaving, which would order everything and hide every race.

   The per-word keying assumes addresses are stable, so the tracker
   invalidates itself if the collector runs ([valid] turns false); callers
   size the heap so test workloads stay GC-free.

   The [skip] predicate is the static analysis's consumer hook: field keys
   proven thread-local may skip all bookkeeping. Skip tables are
   precomputed per class (one bool per flattened slot) at attach so the
   per-access fast path is two array loads. *)

module Sharing = struct
  (* Per-word detector state under one happens-before family. *)
  type hbloc = {
    mutable l_w_tid : int; (* last writer, -1 when never written *)
    mutable l_w_clk : int;
    mutable l_reads : (int * int) list; (* (tid, clk), newest per tid *)
  }

  type loc = {
    l_key : string;
    l_full : hbloc; (* full HB: program order + lock + spawn/join edges *)
    l_weak : hbloc; (* spawn/join-only HB: the conflict-pair order *)
  }

  (* One vector-clock family. The tracker runs two: the *full* family sees
     every synchronization edge and detects races (FastTrack); the *weak*
     family sees only spawn/join/interrupt edges — cross-thread same-word
     pairs with a write left unordered by it are *conflicts*, the dynamic
     analogue of the static MHP conflict-pair set (which likewise refuses
     to let locks refute overlap). Static ordering facts are built from
     spawn/join/once structure only, so every dynamic conflict's key must
     sit in the static conflict set — the containment the tests pin. *)
  type fam = { mutable f_vcs : int array array }
  (* tid -> vector clock, [||] = unborn *)

  type t = {
    sh_vm : Rt.t;
    sh_full : fam;
    sh_weak : fam;
    sh_locks : (int, int array) Hashtbl.t; (* monitor id -> release clock *)
    sh_locs : (int, loc) Hashtbl.t; (* heap word (or -1-gidx) -> state *)
    sh_racy : (string, string) Hashtbl.t; (* key -> witness description *)
    sh_conflicts : (string, string) Hashtbl.t; (* key -> witness *)
    sh_touched : (string, int list) Hashtbl.t; (* key -> touching tids *)
    sh_static_keys : string array; (* globals index -> key *)
    sh_static_skip : bool array;
    sh_field_keys : string array array; (* cid -> slot keys, lazy *)
    sh_field_skip : bool array array;
    sh_array_skip : bool;
    mutable sh_n_tracked : int;
    mutable sh_n_skipped : int;
    sh_gc0 : int;
    mutable sh_valid : bool;
    (* previous hooks, chained and restored on detach *)
    sh_prev_read : (Rt.t -> int -> int -> unit) option;
    sh_prev_write : (Rt.t -> int -> int -> unit) option;
    sh_prev_lock : (Rt.t -> bool -> int -> int -> unit) option;
    sh_prev_hb : (Rt.t -> int -> int -> unit) option;
    sh_prev_spawn : (Rt.t -> int -> unit) option;
  }

  (* vector clocks: plain int arrays indexed by tid, grown on demand;
     entry 0 means "before that thread did anything" *)

  let vc_get c tid = if tid < Array.length c then c.(tid) else 0

  let vc_grown c n =
    if Array.length c >= n then c
    else begin
      let d = Array.make n 0 in
      Array.blit c 0 d 0 (Array.length c);
      d
    end

  let thread_vc fam tid =
    if tid >= Array.length fam.f_vcs then begin
      let bigger =
        Array.make (max (tid + 1) (2 * Array.length fam.f_vcs)) [||]
      in
      Array.blit fam.f_vcs 0 bigger 0 (Array.length fam.f_vcs);
      fam.f_vcs <- bigger
    end;
    if fam.f_vcs.(tid) = [||] then begin
      let c = Array.make (tid + 1) 0 in
      c.(tid) <- 1;
      fam.f_vcs.(tid) <- c
    end;
    fam.f_vcs.(tid)

  (* dst := dst ⊔ src, returning the (possibly regrown) dst *)
  let vc_join dst src =
    let dst = vc_grown dst (Array.length src) in
    Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src;
    dst

  let tick fam tid =
    let c = thread_vc fam tid in
    c.(tid) <- c.(tid) + 1

  (* lock edges feed the full family only *)
  let on_acquire t mid tid =
    match Hashtbl.find_opt t.sh_locks mid with
    | None -> ()
    | Some l -> t.sh_full.f_vcs.(tid) <- vc_join (thread_vc t.sh_full tid) l

  let on_release t mid tid =
    Hashtbl.replace t.sh_locks mid (Array.copy (thread_vc t.sh_full tid));
    tick t.sh_full tid

  let fam_hb fam from_tid to_tid =
    let src = thread_vc fam from_tid in
    fam.f_vcs.(to_tid) <- vc_join (thread_vc fam to_tid) src;
    tick fam from_tid

  (* spawn/join/interrupt edges feed both families *)
  let on_hb t from_tid to_tid =
    if from_tid <> to_tid then begin
      fam_hb t.sh_full from_tid to_tid;
      fam_hb t.sh_weak from_tid to_tid
    end

  (* --- location keys, per-class caches ------------------------------ *)

  (* key conventions shared (by documented contract, not by code — vm does
     not link against the analysis library) with Analysis.Prog *)
  let static_suffix = " (static)"

  let array_key = "[]"

  (* declaring class of flattened instance-field slot [i]: walk up while
     the super's layout still covers the slot (supers flatten first) *)
  let rec declarer (classes : Rt.rclass array) cid i =
    let c = classes.(cid) in
    if c.Rt.rc_super >= 0
       && i < Array.length classes.(c.Rt.rc_super).Rt.rc_fields
    then declarer classes c.Rt.rc_super i
    else c

  let class_tables t cid =
    if t.sh_field_keys.(cid) = [||] then begin
      let c = t.sh_vm.Rt.classes.(cid) in
      let n = Array.length c.Rt.rc_fields in
      if n = 0 then begin
        (* distinguish "no fields" from "not yet computed" *)
        t.sh_field_keys.(cid) <- [| "" |];
        t.sh_field_skip.(cid) <- [| false |]
      end
      else begin
        t.sh_field_keys.(cid) <-
          Array.init n (fun i ->
              (declarer t.sh_vm.Rt.classes cid i).Rt.rc_name
              ^ "." ^ fst c.Rt.rc_fields.(i));
        t.sh_field_skip.(cid) <- Array.make n false
      end
    end;
    (t.sh_field_keys.(cid), t.sh_field_skip.(cid))

  (* --- the access path ---------------------------------------------- *)

  let note_touch t key tid =
    let cur =
      match Hashtbl.find_opt t.sh_touched key with Some l -> l | None -> []
    in
    if not (List.mem tid cur) then Hashtbl.replace t.sh_touched key (tid :: cur)

  let race t key ~writer_side tid other =
    if not (Hashtbl.mem t.sh_racy key) then
      Hashtbl.replace t.sh_racy key
        (Fmt.str "t%d %s races with t%d" tid
           (if writer_side then "write" else "read")
           other)

  let conflict t key tid other =
    if not (Hashtbl.mem t.sh_conflicts key) then
      Hashtbl.replace t.sh_conflicts key
        (Fmt.str "t%d and t%d unordered by spawn/join" tid other)

  (* The FastTrack-lite step for one access under one family. *)
  let hb_access fam (h : hbloc) write tid ~on_unordered =
    let c = thread_vc fam tid in
    (* write-before-me check applies to reads and writes alike *)
    if h.l_w_tid >= 0 && h.l_w_tid <> tid && h.l_w_clk > vc_get c h.l_w_tid
    then on_unordered h.l_w_tid;
    if write then begin
      List.iter
        (fun (r_tid, r_clk) ->
          if r_tid <> tid && r_clk > vc_get c r_tid then on_unordered r_tid)
        h.l_reads;
      h.l_w_tid <- tid;
      h.l_w_clk <- vc_get c tid;
      h.l_reads <- []
    end
    else
      h.l_reads <-
        (tid, vc_get c tid) :: List.filter (fun (r, _) -> r <> tid) h.l_reads

  let access t write addr slot =
    if t.sh_valid && t.sh_vm.Rt.stats.Rt.n_gc <> t.sh_gc0 then
      t.sh_valid <- false;
    if t.sh_valid then begin
      let skip, key =
        if addr < 0 then (t.sh_static_skip.(slot), t.sh_static_keys.(slot))
        else begin
          let cid = Layout.class_of t.sh_vm addr in
          if t.sh_vm.Rt.classes.(cid).Rt.rc_elem <> Rt.Not_array then
            (t.sh_array_skip, array_key)
          else
            let keys, skips = class_tables t cid in
            let i = slot - Layout.header_words in
            (skips.(i), keys.(i))
        end
      in
      if skip then t.sh_n_skipped <- t.sh_n_skipped + 1
      else begin
        t.sh_n_tracked <- t.sh_n_tracked + 1;
        let tid = t.sh_vm.Rt.current in
        let word = if addr < 0 then -1 - slot else addr + slot in
        let loc =
          match Hashtbl.find_opt t.sh_locs word with
          | Some l -> l
          | None ->
            let fresh () = { l_w_tid = -1; l_w_clk = 0; l_reads = [] } in
            let l = { l_key = key; l_full = fresh (); l_weak = fresh () } in
            Hashtbl.replace t.sh_locs word l;
            l
        in
        note_touch t key tid;
        hb_access t.sh_full loc.l_full write tid ~on_unordered:(fun other ->
            race t loc.l_key ~writer_side:write tid other);
        hb_access t.sh_weak loc.l_weak write tid ~on_unordered:(fun other ->
            conflict t loc.l_key tid other)
      end
    end

  (* --- wiring -------------------------------------------------------- *)

  let attach ?(skip = fun _ -> false) (vm : Rt.t) : t =
    let n_classes = Array.length vm.Rt.classes in
    let static_keys = Array.make (max 1 vm.Rt.nglobals) "" in
    Array.iter
      (fun (c : Rt.rclass) ->
        Array.iteri
          (fun i (fname, _) ->
            static_keys.(c.Rt.rc_statics_base + i) <-
              c.Rt.rc_name ^ "." ^ fname ^ static_suffix)
          c.Rt.rc_statics)
      vm.Rt.classes;
    let t =
      {
        sh_vm = vm;
        sh_full = { f_vcs = Array.make 8 [||] };
        sh_weak = { f_vcs = Array.make 8 [||] };
        sh_locks = Hashtbl.create 16;
        sh_locs = Hashtbl.create 4096;
        sh_racy = Hashtbl.create 8;
        sh_conflicts = Hashtbl.create 8;
        sh_touched = Hashtbl.create 64;
        sh_static_keys = static_keys;
        sh_static_skip = Array.map skip static_keys;
        sh_field_keys = Array.make n_classes [||];
        sh_field_skip = Array.make n_classes [||];
        sh_array_skip = skip array_key;
        sh_n_tracked = 0;
        sh_n_skipped = 0;
        sh_gc0 = vm.Rt.stats.Rt.n_gc;
        sh_valid = true;
        sh_prev_read = vm.Rt.hooks.Rt.h_heap_read;
        sh_prev_write = vm.Rt.hooks.Rt.h_heap_write;
        sh_prev_lock = vm.Rt.hooks.Rt.h_lock;
        sh_prev_hb = vm.Rt.hooks.Rt.h_hb;
        sh_prev_spawn = vm.Rt.hooks.Rt.h_spawn;
      }
    in
    (* precompute skip tables for every registered class now, so the skip
       predicate never runs on the access path *)
    for cid = 0 to n_classes - 1 do
      let keys, skips = class_tables t cid in
      Array.iteri (fun i k -> skips.(i) <- k <> "" && skip k) keys
    done;
    let chain1 prev f =
      Some (fun vm a -> (match prev with Some g -> g vm a | None -> ()); f a)
    and chain2 prev f =
      Some
        (fun vm a b ->
          (match prev with Some g -> g vm a b | None -> ());
          f a b)
    in
    vm.Rt.hooks.Rt.h_heap_read <-
      chain2 t.sh_prev_read (fun addr slot -> access t false addr slot);
    vm.Rt.hooks.Rt.h_heap_write <-
      chain2 t.sh_prev_write (fun addr slot -> access t true addr slot);
    vm.Rt.hooks.Rt.h_lock <-
      Some
        (fun vm acq mid tid ->
          (match t.sh_prev_lock with Some g -> g vm acq mid tid | None -> ());
          if acq then on_acquire t mid tid else on_release t mid tid);
    vm.Rt.hooks.Rt.h_hb <-
      chain2 t.sh_prev_hb (fun from_tid to_tid -> on_hb t from_tid to_tid);
    vm.Rt.hooks.Rt.h_spawn <-
      chain1 t.sh_prev_spawn (fun new_tid ->
          (* spawn edge: parent is the currently running thread; the boot
             thread has no parent (current is still -1 at that point) *)
          if vm.Rt.current >= 0 then on_hb t vm.Rt.current new_tid);
    t

  let detach (t : t) =
    let vm = t.sh_vm in
    vm.Rt.hooks.Rt.h_heap_read <- t.sh_prev_read;
    vm.Rt.hooks.Rt.h_heap_write <- t.sh_prev_write;
    vm.Rt.hooks.Rt.h_lock <- t.sh_prev_lock;
    vm.Rt.hooks.Rt.h_hb <- t.sh_prev_hb;
    vm.Rt.hooks.Rt.h_spawn <- t.sh_prev_spawn

  let valid t = t.sh_valid

  let n_tracked t = t.sh_n_tracked

  let n_skipped t = t.sh_n_skipped

  let racy_keys t =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.sh_racy [])

  let racy_witness t key = Hashtbl.find_opt t.sh_racy key

  (* keys with a cross-thread write-involving pair left unordered by
     spawn/join alone — always a superset of [racy_keys] *)
  let conflict_keys t =
    List.sort compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) t.sh_conflicts [])

  let conflict_witness t key = Hashtbl.find_opt t.sh_conflicts key

  (* keys dynamically touched by >= 2 distinct threads *)
  let shared_keys t =
    List.sort compare
      (Hashtbl.fold
         (fun k tids acc -> if List.length tids >= 2 then k :: acc else acc)
         t.sh_touched [])
end
