(** Listings of compiled kinstr code — what the interpreter actually
    executes, after sync expansion, yield-point injection, lowering, and
    superinstruction fusion. Complements [Bytecode.Disasm] (which prints
    source bytecode): fused regions show the superinstruction head marked
    [*] with the shadowed canonical originals behind it, virtual call/spawn
    sites are tagged [ic] (monomorphic inline cache), and injected yield
    points are tagged [; yp]. *)

val string_of_bin : Rt.bin -> string

(** Inline-cache state as a short tag: [cold], [mono <class>],
    [poly(n){classes}], or [mega]. Runtime state — the same site prints
    differently before and after execution. *)
val string_of_ic : Rt.t -> Rt.ic -> string

(** Print one compiled instruction, resolving class/method names through
    the runtime. *)
val pp_cinstr : Rt.t -> Format.formatter -> Rt.cinstr -> unit

(** Print one register op: destination/source slots as [r<i>], canonical
    fault pcs as [@<pc>], call sites with their inline-cache state. *)
val pp_rop : Rt.t -> Format.formatter -> Rt.rop -> unit

(** Print a method's post-fusion compiled stream, one line per pc, with a
    source-pc column and fusion/ic/yield-point markers, followed by the
    register-IR regions (entry pc, covered instruction count, ops). The
    method must already be compiled (raises [Invalid_argument]
    otherwise). *)
val pp_compiled : Rt.t -> Format.formatter -> Rt.rmethod -> unit
