(** Listings of compiled kinstr code — what the interpreter actually
    executes, after sync expansion, yield-point injection, lowering, and
    superinstruction fusion. Complements [Bytecode.Disasm] (which prints
    source bytecode): fused regions show the superinstruction head marked
    [*] with the shadowed canonical originals behind it, virtual call/spawn
    sites are tagged [ic] (monomorphic inline cache), and injected yield
    points are tagged [; yp]. *)

val string_of_bin : Rt.bin -> string

(** Print one compiled instruction, resolving class/method names through
    the runtime. *)
val pp_cinstr : Rt.t -> Format.formatter -> Rt.cinstr -> unit

(** Print a method's post-fusion compiled stream, one line per pc, with a
    source-pc column and fusion/ic/yield-point markers. The method must
    already be compiled (raises [Invalid_argument] otherwise). *)
val pp_compiled : Rt.t -> Format.formatter -> Rt.rmethod -> unit
