(** SplitMix64 — a small, fast, seedable PRNG. Used only by the simulated
    environment (instruction-time jitter, synthetic input), never for
    program semantics, so replay never depends on it. The step function is
    a [@@noalloc] C stub (see prng_stubs.c): it runs once per executed
    instruction, where Int64 boxing would dominate the dispatch loop. *)

type t

val create : int -> t

val copy : t -> t

(** Re-point [t] at the start of [seed]'s stream, in place — a reused
    generator becomes indistinguishable from [create seed]. *)
val reseed : t -> int -> unit

(** Overwrite [t]'s state in place with [from]'s (snapshot restore). *)
val restore : t -> from:t -> unit

(** Uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** [int_pair t b1 b2] makes the same two draws as [int t b1] then
    [int t b2] — one stub call, results packed [(d1 lsl 10) lor d2].
    Requires [0 < b1] and [0 < b2 <= 1024]. The interpreter's
    per-instruction clock (jitter draw + spike draw) is the client. *)
val int_pair : t -> int -> int -> int

(** The raw 8-byte SplitMix64 state, shared with [Env]'s batched-tick stub
    (which advances it in C). Not for general use. *)
val raw_state : t -> Bytes.t
