(** The bytecode interpreter: frame management on heap-allocated stacks,
    lazy class initialization, lazy method compilation, exception
    unwinding, and the yield-point hook through which all thread switching
    happens. See the implementation header for the GC invariants.

    The hook-free fast loop executes the fused stream ([Rt.compiled
    .k_fused]) — superinstruction handlers that batch their clock ticks
    through [Env.tick_batch] while preserving instruction counts, PRNG
    draws, stack writes, and fault points bit-for-bit ({e the parity
    contract}, DESIGN.md section 7). The observed loop and the single-step
    [step] path execute the canonical [k_code], which never contains a
    superinstruction. *)

exception Fatal of string

(** Grow the current thread's stack to hold at least [need] more words
    above sp (used by the instrumentation's eager-growth symmetry). Raises
    [Rt.Vm_exception "StackOverflowError"] past the configured maximum. *)
val ensure_stack : Rt.t -> Rt.thread -> need:int -> unit

(** Push an activation frame for a callee on the current thread.
    [resume_pc] is where the caller continues; [explicit_args] supplies
    arguments directly (thread start, callbacks, class initializers) —
    otherwise they move from the operand stack. *)
val push_frame :
  Rt.t -> Rt.rmethod -> resume_pc:int -> ?explicit_args:int array -> unit -> unit

(** Lazily initialize a class (intern string literals, queue [<clinit>]).
    Returns false when the caller must re-execute the current instruction
    after the queued initializers run. *)
val ensure_initialized : Rt.t -> int -> bool

(** Unwind the current thread with an exception object. *)
val raise_exception : Rt.t -> int -> unit

(** Allocate a builtin exception by class name and unwind. *)
val throw_by_name : Rt.t -> string -> unit

(** Execute one instruction of the current thread, converting VM-level
    exceptions into unwinding and resource exhaustion into a Fatal status.
    This is the precise single-instruction path (the debugger steps with
    it); [run] goes through the batched dispatch loop instead. *)
val step : Rt.t -> unit

(** Execute up to [fuel] instructions through the batched run-until-yield
    dispatch loop, committing [n_instr] once at exit. The event sequence
    (hooks, env ticks, yield points) is identical to repeated [step]s;
    hook attachment and detachment take effect at the next dispatch-segment
    boundary (thread switch, call/return, unwind, or re-entry), never
    mid-segment. *)
val exec_batch : Rt.t -> fuel:int -> unit

(** Create the main thread and queue main-class initialization. *)
val boot : Rt.t -> unit

(** Run until the machine stops or [limit] instructions retire; drives
    [exec_batch]. *)
val run : ?limit:int -> Rt.t -> unit

(** Run at most [fuel] more instructions, leaving the status [Running_]
    when the budget elapses mid-program — cooperative slicing for the job
    server's deadline/cancellation checks. Unlike {!run}, hitting the
    budget is not an error; the caller enforces any overall limit. *)
val run_slice : Rt.t -> fuel:int -> unit
