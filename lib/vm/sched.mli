(** The thread package: a uniprocessor green-thread scheduler with a FIFO
    ready queue, Java monitor semantics, sleep and timed wait driven by
    wall-clock reads, join, and interrupt.

    Everything here is ordinary program state — no randomness, no hidden OS
    state. That is the paper's central cross-optimization benefit: because
    DejaVu replays the whole thread package along with the application,
    monitorenter outcomes, next-thread choices, and notify targets
    reproduce themselves and need no trace records. The only inputs are the
    preemption bit sampled at yield points and the wall-clock values read
    here — both captured as non-deterministic events. *)

(** A scheduling-layer contract violation: an [h_pick] hook chose a tid that
    is not in the ready queue. Raised before any scheduler mutation — the
    ready queue and thread states are exactly as they were when [dispatch]
    began — so a controlled scheduler can treat it as a pruned branch
    instead of a crash. *)
exception Sched_error of string

(** Assign (lazily, in execution order — hence replayably) or fetch the
    monitor of an object. *)
val monitor_of_object : Rt.t -> int -> Rt.monitor

(** Make a thread runnable (FIFO). *)
val ready : Rt.t -> int -> unit

(** Pick the next thread: wakes due sleepers (reading the clock — a
    recorded event — only when sleepers exist), idles the clock forward
    when sleepers are all that's left, declares [Finished] or [Deadlocked]
    otherwise. Honours the [h_pick] dispatch-override hook. *)
val dispatch : Rt.t -> unit

(** Preemptive / voluntary switch from a yield point: the current thread
    goes to the back of the ready queue. *)
val perform_thread_switch : Rt.t -> unit

(** Park the current thread in [state] (not runnable) and dispatch. *)
val park : Rt.t -> Rt.tstate -> unit

(** Terminate the current thread, waking its joiners. *)
val terminate_current : Rt.t -> unit

(** Java [monitorenter]: acquire, re-enter, or block (called with pc
    already advanced). *)
val monitor_enter : Rt.t -> int -> unit

(** Java [monitorexit]; full release hands the monitor to the first
    entry-queue thread deterministically. Raises
    [Rt.Vm_exception "IllegalMonitorStateException"] when not owned. *)
val monitor_exit : Rt.t -> int -> unit

(** Ownership pre-check for wait, run before the interpreter advances pc so
    the exception unwinds from the faulting instruction. *)
val check_owned : Rt.t -> int -> unit

(** [wait] / timed [wait] (milliseconds): releases fully, parks in the wait
    set (and the sleep queue when timed); the waker pushes the
    "interrupted" flag onto the parked thread's stack. *)
val do_wait : Rt.t -> int -> timeout_ms:int option -> unit

val do_notify : Rt.t -> int -> all:bool -> unit

(** Sleep for virtual milliseconds; [ms <= 0] is a voluntary yield. *)
val do_sleep : Rt.t -> int -> unit

val do_join : Rt.t -> int -> unit

val do_interrupt : Rt.t -> int -> unit
