(* Bytecode verifier and reference-map builder.

   An abstract interpretation over compiled code computes, for every pc, the
   type of each local slot and operand-stack slot. The per-pc reference maps
   that make the garbage collector type-accurate (the Jalapeño "reference
   maps" of the paper) fall out of the fixpoint. The verifier is strict:
   programs whose types cannot be proven consistent are rejected, so the
   interpreter runs without per-access type checks and the collector can
   trust the maps.

   Arrays are invariant (no covariant array assignment): this removes the
   need for runtime store checks while keeping the heap well-typed. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* Abstract value types. [VRef] is "any object". *)
type vt = Bot | VInt | VNull | VRef | VObj of int | VArr of vt

let rec pp_vt ppf = function
  | Bot -> Fmt.string ppf "bot"
  | VInt -> Fmt.string ppf "int"
  | VNull -> Fmt.string ppf "null"
  | VRef -> Fmt.string ppf "ref"
  | VObj c -> Fmt.pf ppf "obj(%d)" c
  | VArr e -> Fmt.pf ppf "%a[]" pp_vt e

let is_ref = function
  | Bot | VInt -> false
  | VNull | VRef | VObj _ | VArr _ -> true

let refish = function VNull | VRef | VObj _ | VArr _ -> true | _ -> false

(* Convert a declared type to an abstract type. *)
let rec of_ty vm (ty : Bytecode.Instr.ty) =
  match ty with
  | Bytecode.Instr.Tint -> VInt
  | Bytecode.Instr.Tref -> VRef
  | Bytecode.Instr.Tobj name -> (
    let cid = Rt.class_id vm name in
    if cid = 0 then VRef else VObj cid)
  | Bytecode.Instr.Tarr e -> VArr (of_ty vm e)

let rec equal_vt a b =
  match (a, b) with
  | Bot, Bot | VInt, VInt | VNull, VNull | VRef, VRef -> true
  | VObj x, VObj y -> x = y
  | VArr x, VArr y -> equal_vt x y
  | _ -> false

(* Join in the type lattice; raises on int/ref conflicts. *)
let merge vm a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | VInt, VInt -> VInt
  | VNull, x when refish x -> x
  | x, VNull when refish x -> x
  | VRef, x when refish x -> VRef
  | x, VRef when refish x -> VRef
  | VObj x, VObj y ->
    let l = Rt.lca vm x y in
    if l = 0 then VRef else VObj l
  | VObj _, VArr _ | VArr _, VObj _ -> VRef
  | VArr x, VArr y -> if equal_vt x y then VArr x else VRef
  | _ -> error "type conflict merging %a and %a" pp_vt a pp_vt b

(* May a value of type [v] be used where [want] is expected? Arrays are
   invariant; [VRef] accepts any object. *)
let assignable vm ~want v =
  match (want, v) with
  | _, Bot -> true
  | VInt, VInt -> true
  | VInt, _ -> false
  | _, VInt -> false
  | _, VNull -> true
  | VRef, x -> refish x
  | VObj c, VObj c' -> Rt.is_subclass vm ~sub:c' ~sup:c
  | VObj c, (VRef | VArr _) -> c = 0 (* only Object accepts any ref *)
  | VArr e, VArr e' -> equal_vt e e'
  | VArr _, _ -> false
  | (VNull | Bot), _ -> false

type state = { locals : vt array; stack : vt array; depth : int }

let copy_state s =
  { locals = Array.copy s.locals; stack = Array.copy s.stack; depth = s.depth }

let equal_state a b =
  a.depth = b.depth
  && Array.for_all2 equal_vt a.locals b.locals
  &&
  let ok = ref true in
  for i = 0 to a.depth - 1 do
    if not (equal_vt a.stack.(i) b.stack.(i)) then ok := false
  done;
  !ok

type result = { maps : Rt.refmap array; max_stack : int }

let refmap_of_state s : Rt.refmap =
  {
    Rt.map_locals = Array.map is_ref s.locals;
    map_stack = Array.init s.depth (fun i -> is_ref s.stack.(i));
    map_depth = s.depth;
  }

let empty_refmap nlocals : Rt.refmap =
  { Rt.map_locals = Array.make nlocals false; map_stack = [||]; map_depth = 0 }

(* Signature of a callee, resolved from the method tables. *)
let sig_of (m : Rt.rmethod) = (m.rm_args, m.rm_ret)

let verify (vm : Rt.t) (m : Rt.rmethod) (code : Rt.cinstr array)
    (handlers : Rt.rhandler array) : result =
  let n = Array.length code in
  let nlocals = m.rm_nlocals in
  let max_depth = ref 0 in
  (* A generous stack bound: every instruction pushes at most one slot. *)
  let stack_cap = n + 8 in
  let states : state option array = Array.make n None in
  let work = Queue.create () in
  let throwable_cid = Rt.class_id vm "Throwable" in
  let string_cid = Rt.class_id vm Bytecode.Decl.string_class in
  let schedule pc (s : state) =
    if pc < 0 || pc >= n then error "%s: branch target %d out of range" m.rm_name pc;
    match states.(pc) with
    | None ->
      states.(pc) <- Some (copy_state s);
      Queue.add pc work
    | Some old ->
      let merged =
        {
          locals = Array.map2 (merge vm) old.locals s.locals;
          stack =
            (if old.depth <> s.depth then
               error "%s: stack depth mismatch at pc %d (%d vs %d)" m.rm_name
                 pc old.depth s.depth;
             Array.init (Array.length old.stack) (fun i ->
                 if i < old.depth then merge vm old.stack.(i) s.stack.(i)
                 else Bot));
          depth = old.depth;
        }
      in
      if not (equal_state old merged) then begin
        states.(pc) <- Some merged;
        Queue.add pc work
      end
  in
  (* Entry state: argument types, remaining locals Bot, empty stack. *)
  let entry =
    {
      locals =
        Array.init nlocals (fun i ->
            if i < m.rm_nargs then of_ty vm m.rm_args.(i) else Bot);
      stack = Array.make stack_cap Bot;
      depth = 0;
    }
  in
  schedule 0 entry;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let s0 =
      match states.(pc) with
      | Some s -> s
      | None ->
        error "%s: verifier worklist reached pc %d with no recorded state"
          m.rm_name pc
    in
    if s0.depth > !max_depth then max_depth := s0.depth;
    (* Any instruction may raise: merge the in-state into the handlers that
       cover this pc (stack cleared, exception object pushed). *)
    Array.iter
      (fun (h : Rt.rhandler) ->
        if pc >= h.k_from && pc < h.k_upto then begin
          let exc = if h.k_catch < 0 then VObj throwable_cid else VObj h.k_catch in
          let hs =
            {
              locals = Array.copy s0.locals;
              stack =
                (let a = Array.make stack_cap Bot in
                 a.(0) <- exc;
                 a);
              depth = 1;
            }
          in
          schedule h.k_target hs
        end)
      handlers;
    let s = copy_state s0 in
    (* Mutable mini-interpreter over the abstract state. *)
    let sp = ref s.depth in
    let pushv v =
      if !sp >= stack_cap then error "%s: verifier stack overflow" m.rm_name;
      s.stack.(!sp) <- v;
      incr sp
    in
    let popv () =
      if !sp = 0 then error "%s: pc %d: stack underflow" m.rm_name pc;
      decr sp;
      let v = s.stack.(!sp) in
      s.stack.(!sp) <- Bot;
      v
    in
    let pop_int what =
      let v = popv () in
      if not (assignable vm ~want:VInt v) then
        error "%s: pc %d: %s expects int, got %a" m.rm_name pc what pp_vt v
    in
    let pop_refish what =
      let v = popv () in
      if not (refish v || v = Bot) then
        error "%s: pc %d: %s expects a reference, got %a" m.rm_name pc what
          pp_vt v;
      v
    in
    let pop_want what want =
      let v = popv () in
      if not (assignable vm ~want v) then
        error "%s: pc %d: %s expects %a, got %a" m.rm_name pc what pp_vt want
          pp_vt v;
      v
    in
    let pop_args what (args : Bytecode.Instr.ty array) =
      for i = Array.length args - 1 downto 0 do
        ignore (pop_want what (of_ty vm args.(i)))
      done
    in
    let state_now () = { locals = s.locals; stack = s.stack; depth = !sp } in
    let goto_next () = schedule (pc + 1) (state_now ()) in
    let goto target = schedule target (state_now ()) in
    (match code.(pc) with
    | KConst _ ->
      pushv VInt;
      goto_next ()
    | KStr _ ->
      pushv (VObj string_cid);
      goto_next ()
    | KNull ->
      pushv VNull;
      goto_next ()
    (* the interpreter's local-slot accesses are unchecked, so both range
       ends must be rejected here *)
    | KLoad i ->
      if i < 0 || i >= nlocals then
        error "%s: pc %d: load %d out of range" m.rm_name pc i;
      pushv s.locals.(i);
      goto_next ()
    | KStore i ->
      if i < 0 || i >= nlocals then
        error "%s: pc %d: store %d out of range" m.rm_name pc i;
      let v = popv () in
      s.locals.(i) <- v;
      goto_next ()
    | KDup ->
      let v = popv () in
      pushv v;
      pushv v;
      goto_next ()
    | KPop ->
      ignore (popv ());
      goto_next ()
    | KSwap ->
      let a = popv () in
      let b = popv () in
      pushv a;
      pushv b;
      goto_next ()
    | KBin _ ->
      pop_int "binop";
      pop_int "binop";
      pushv VInt;
      goto_next ()
    | KNeg ->
      pop_int "neg";
      pushv VInt;
      goto_next ()
    | KIf (_, t) ->
      pop_int "if";
      pop_int "if";
      goto t;
      goto_next ()
    | KIfz (_, t) ->
      pop_int "ifz";
      goto t;
      goto_next ()
    | KIfnull t | KIfnonnull t ->
      ignore (pop_refish "ifnull");
      goto t;
      goto_next ()
    | KIfrefeq t | KIfrefne t ->
      ignore (pop_refish "ifref");
      ignore (pop_refish "ifref");
      goto t;
      goto_next ()
    | KGoto t -> goto t
    | KNew cid ->
      pushv (if cid = 0 then VRef else VObj cid);
      goto_next ()
    | KGetfield (_, ty) ->
      ignore (pop_refish "getfield");
      pushv (of_ty vm ty);
      goto_next ()
    | KPutfield (_, ty) ->
      ignore (pop_want "putfield" (of_ty vm ty));
      ignore (pop_refish "putfield");
      goto_next ()
    | KGetstatic (_, _, ty) ->
      pushv (of_ty vm ty);
      goto_next ()
    | KPutstatic (_, _, ty) ->
      ignore (pop_want "putstatic" (of_ty vm ty));
      goto_next ()
    | KNewarray ty ->
      pop_int "newarray";
      pushv (VArr (of_ty vm ty));
      goto_next ()
    | KAload ->
      pop_int "aload index";
      let a = pop_refish "aload" in
      (match a with
      | VArr e -> pushv e
      | VNull | Bot -> pushv Bot
      | _ -> error "%s: pc %d: aload on non-array %a" m.rm_name pc pp_vt a);
      goto_next ()
    | KAstore ->
      let v = popv () in
      pop_int "astore index";
      let a = pop_refish "astore" in
      (match a with
      | VArr e ->
        if not (assignable vm ~want:e v) then
          error "%s: pc %d: astore of %a into %a[]" m.rm_name pc pp_vt v pp_vt e
      | VNull | Bot -> ()
      | _ -> error "%s: pc %d: astore on non-array %a" m.rm_name pc pp_vt a);
      goto_next ()
    | KArraylength ->
      let a = pop_refish "arraylength" in
      (match a with
      | VArr _ | VNull | Bot -> ()
      | _ -> error "%s: pc %d: arraylength on %a" m.rm_name pc pp_vt a);
      pushv VInt;
      goto_next ()
    | KCheckcast cid ->
      ignore (pop_refish "checkcast");
      pushv (if cid = 0 then VRef else VObj cid);
      goto_next ()
    | KInstanceof _ ->
      ignore (pop_refish "instanceof");
      pushv VInt;
      goto_next ()
    | KInvokestatic callee ->
      let args, ret = sig_of callee in
      pop_args ("call " ^ callee.rm_name) args;
      Option.iter (fun ty -> pushv (of_ty vm ty)) ret;
      goto_next ()
    | KInvokevirtual (cid, vslot, _, _) ->
      let callee = vm.methods.((Rt.the_class vm cid).rc_vtable.(vslot)) in
      let args, ret = sig_of callee in
      (* args include the receiver; the receiver must additionally be a
         subtype of the class the call site names *)
      let rev = Array.copy args in
      rev.(0) <- Bytecode.Instr.Tobj (Rt.the_class vm cid).rc_name;
      pop_args ("call " ^ callee.rm_name) rev;
      Option.iter (fun ty -> pushv (of_ty vm ty)) ret;
      goto_next ()
    | KRet ->
      if Rt.returns m then
        error "%s: ret in a method that returns a value" m.rm_name
    | KRetv -> (
      match m.rm_ret with
      | None -> error "%s: retv in a void method" m.rm_name
      | Some ty -> ignore (pop_want "retv" (of_ty vm ty)))
    | KThrow ->
      let v = pop_refish "throw" in
      (match v with
      | VObj c when Rt.is_subclass vm ~sub:c ~sup:throwable_cid -> ()
      | VNull | Bot -> ()
      | _ -> error "%s: pc %d: throw of non-throwable %a" m.rm_name pc pp_vt v)
    | KMonitorenter | KMonitorexit ->
      ignore (pop_refish "monitor");
      goto_next ()
    | KWait ->
      ignore (pop_refish "wait");
      pushv VInt;
      goto_next ()
    | KTimedwait ->
      pop_int "timedwait millis";
      ignore (pop_refish "timedwait");
      pushv VInt;
      goto_next ()
    | KNotify | KNotifyall ->
      ignore (pop_refish "notify");
      goto_next ()
    | KSpawnstatic callee ->
      pop_args ("spawn " ^ callee.rm_name) callee.rm_args;
      pushv VInt;
      goto_next ()
    | KSpawnvirtual (cid, vslot, _, _) ->
      let callee = vm.methods.((Rt.the_class vm cid).rc_vtable.(vslot)) in
      let rev = Array.copy callee.rm_args in
      rev.(0) <- Bytecode.Instr.Tobj (Rt.the_class vm cid).rc_name;
      pop_args ("spawn " ^ callee.rm_name) rev;
      pushv VInt;
      goto_next ()
    | KSleep ->
      pop_int "sleep";
      goto_next ()
    | KJoin ->
      pop_int "join";
      goto_next ()
    | KInterrupt ->
      pop_int "interrupt";
      goto_next ()
    | KCurrenttime | KReadinput ->
      pushv VInt;
      goto_next ()
    | KNative nid ->
      let nat = vm.natives_by_id.(nid) in
      for _ = 1 to nat.nat_arity do
        pop_int ("native " ^ nat.nat_name)
      done;
      if nat.nat_returns then pushv VInt;
      goto_next ()
    | KPrint ->
      pop_int "print";
      goto_next ()
    | KPrints ->
      ignore
        (pop_want "prints" (VObj string_cid));
      goto_next ()
    | KHalt -> ()
    | KNop -> goto_next ()
    | KYield -> goto_next ()
    | KLdLdBin _ | KLdConstBin _ | KBinIf _ | KBinIfz _ | KLdGetfield _
    | KLdStore _ | KLdIf _ | KLdIfz _ | KLdLdIf _ | KLdConstIf _
    | KLdLdBinIf _ | KLdLdBinIfz _ | KLdConstBinSt _ | KBinSt _ ->
      (* the verifier runs on the canonical stream, before fusion *)
      error "%s: pc %d: superinstruction in unfused code" m.rm_name pc);
    if !sp > !max_depth then max_depth := !sp
  done;
  let maps =
    Array.init n (fun pc ->
        match states.(pc) with
        | Some st -> refmap_of_state st
        | None -> empty_refmap nlocals)
  in
  { maps; max_stack = !max_depth }

(* Consistency check over the fusion pass: the fused stream must be the
   canonical stream with some regions replaced by a superinstruction head
   whose expansion reproduces the shadowed originals exactly, and no region
   may span a branch target or handler boundary/entry. Shadow slots and
   unfused slots must be the SAME values as the canonical stream (physical
   equality — cinstr operands reach back into the recursive rmethod/rclass
   graph, so structural comparison is off the table there; constituent
   expansions are flat and compare structurally). *)
let check_fusion (m : Rt.rmethod) (code : Rt.cinstr array)
    (fused : Rt.cinstr array) (handlers : Rt.rhandler array) : unit =
  let n = Array.length code in
  if Array.length fused <> n then
    error "%s: fused stream length %d <> %d" m.rm_name (Array.length fused) n;
  let barrier = Array.make (n + 1) false in
  let mark t = if t >= 0 && t <= n then barrier.(t) <- true in
  Array.iter
    (fun ins -> match Rt.target_of_cinstr ins with Some t -> mark t | None -> ())
    code;
  Array.iter
    (fun (h : Rt.rhandler) ->
      mark h.k_from;
      mark h.k_upto;
      mark h.k_target)
    handlers;
  let pc = ref 0 in
  while !pc < n do
    let p = !pc in
    (match Rt.constituents_of_cinstr fused.(p) with
    | None ->
      if not (fused.(p) == code.(p)) then
        error "%s: pc %d: fused slot is not the canonical instruction"
          m.rm_name p
    | Some cs ->
      let w = Array.length cs in
      if p + w > n then
        error "%s: pc %d: fused region runs past the end" m.rm_name p;
      for k = 0 to w - 1 do
        if cs.(k) <> code.(p + k) then
          error "%s: pc %d: constituent %d does not match the canonical code"
            m.rm_name p k;
        if k > 0 && not (fused.(p + k) == code.(p + k)) then
          error "%s: pc %d: shadow slot %d was rewritten" m.rm_name p k;
        if k > 0 && barrier.(p + k) then
          error "%s: pc %d: fused region spans a barrier at %d" m.rm_name p
            (p + k)
      done);
    pc := p + Rt.width_of_cinstr fused.(p)
  done
