(** Bytecode verifier and reference-map builder: an abstract interpretation
    over compiled code computing, for every pc, the type of each local and
    operand-stack slot. The per-pc reference maps that make the collector
    type-accurate (Jalapeño's "reference maps") fall out of the fixpoint.
    The verifier is strict — ill-typed programs are rejected — so the
    interpreter runs without per-access checks and the collector can trust
    the maps. Arrays are invariant (no covariant stores), removing the need
    for runtime store checks. *)

exception Error of string

(** Abstract value types: bottom (uninitialized, value 0), integer, null,
    any object, an instance of a class (or subclass), an array with a
    precise element type. *)
type vt = Bot | VInt | VNull | VRef | VObj of int | VArr of vt

val pp_vt : Format.formatter -> vt -> unit

val is_ref : vt -> bool

val of_ty : Rt.t -> Bytecode.Instr.ty -> vt

(** Lattice join; raises {!Error} on int/ref conflicts. *)
val merge : Rt.t -> vt -> vt -> vt

(** Assignability: [VRef] accepts any object; class types by subtyping;
    arrays invariantly. *)
val assignable : Rt.t -> want:vt -> vt -> bool

type result = { maps : Rt.refmap array; max_stack : int }

(** Verify a compiled body against its handlers; returns the per-pc
    reference maps and the operand-stack bound, or raises {!Error}. The
    stream must be canonical (pre-fusion): superinstructions are rejected. *)
val verify : Rt.t -> Rt.rmethod -> Rt.cinstr array -> Rt.rhandler array -> result

(** Check a fused stream against its canonical stream: equal length, every
    superinstruction expands exactly to the shadowed originals, shadow and
    unfused slots are physically the canonical values, and no fused region
    spans a branch target or handler boundary/entry. Raises {!Error} on any
    violation; the compiler runs this after every fusion pass. *)
val check_fusion :
  Rt.rmethod -> Rt.cinstr array -> Rt.cinstr array -> Rt.rhandler array -> unit
