(** Whole-machine checkpoints: a deep copy of every piece of mutable VM
    state, restorable in place (the [Rt.t] identity is preserved, so
    installed hook closures stay valid). The mechanism behind
    checkpoint-accelerated time travel in the debugger — the replay-
    platform rendition of the checkpoint/re-execute reverse debuggers the
    paper discusses in section 5 (Igor, Recap, PPD, Boothe) — and the
    reset mechanism behind the farm's warm shards (see [Vm.reset]).

    Lazily compiled method bodies are deliberately not rolled back:
    compilation has no VM-visible effect beyond charging the (recorded)
    clock. Class-initialization state is rolled back: it has heap side
    effects. *)

type t

(** Capture the VM's complete mutable state. *)
val save : Rt.t -> t

(** Restore; the [Rt.t] must be the instance [save] ran on (same program
    image and configuration). *)
val restore : Rt.t -> t -> unit

(** Approximate size of the checkpoint, in words. *)
val words : t -> int
