(* The bytecode interpreter: frame management on heap-allocated stacks,
   lazy class initialization, lazy method compilation, exception unwinding,
   and the yield-point hook through which all thread switching happens.

   Invariants the collector relies on:
     - pc advances only after an instruction's effects are complete, so the
       reference map at the stored pc always describes the live frame;
     - within one instruction, a reference is never popped into an OCaml
       local before a possible allocation (only integers are);
     - a heap address held across an allocation goes through the temp-root
       stack. *)

exception Fatal of string

let fatal fmt = Fmt.kstr (fun s -> raise (Fatal s)) fmt

(* --- operand stack ---------------------------------------------------- *)

(* Operand-stack traffic uses the unchecked accessors: the slots are below
   the capacity [ensure_stack] reserved at frame push (header + locals +
   the verifier's max_stack bound), so the bounds check would be pure
   per-instruction overhead. *)
let push (vm : Rt.t) (t : Rt.thread) v =
  Layout.stack_set_u vm t t.t_sp v;
  t.t_sp <- t.t_sp + 1

let pop (vm : Rt.t) (t : Rt.thread) =
  t.t_sp <- t.t_sp - 1;
  Layout.stack_get_u vm t t.t_sp

let peek (vm : Rt.t) (t : Rt.thread) k =
  Layout.stack_get_u vm t (t.t_sp - 1 - k)

let npe () = raise (Rt.Vm_exception "NullPointerException")

let[@inline] check_null v = if v = 0 then npe ()

(* --- stacks and frames ------------------------------------------------ *)

(* Words a frame for [c] needs above the current sp. *)
let frame_need (m : Rt.rmethod) (c : Rt.compiled) =
  Rt.frame_header_words + m.rm_nlocals + c.k_max_stack

(* Grow the current thread's stack to hold at least [need] more words above
   sp. Allocates, so the old stack may move; contents are copied and the
   thread's stack pointer fields stay valid (they are offsets). *)
let grow_stack (vm : Rt.t) (t : Rt.thread) ~need =
  let old_cap = Layout.stack_capacity vm t in
  let want = t.t_sp + need in
  let new_cap = max (old_cap * 2) want in
  if new_cap > vm.cfg.stack_max then
    raise (Rt.Vm_exception "StackOverflowError");
  let new_stack = Heap.alloc_stack_array vm ~len:new_cap in
  (* t.t_stack was updated by the GC if one ran during the allocation *)
  let old_abs = t.t_stack + Layout.header_words in
  let new_abs = new_stack + Layout.header_words in
  Array.blit vm.heap old_abs vm.heap new_abs t.t_sp;
  t.t_stack <- new_stack;
  vm.stats.n_stack_grows <- vm.stats.n_stack_grows + 1

let ensure_stack (vm : Rt.t) (t : Rt.thread) ~need =
  if t.t_sp + need > Layout.stack_capacity vm t then grow_stack vm t ~need

(* Push an activation frame for [callee] on the current thread.
   [resume_pc] is where the *caller* continues; [explicit_args], when given,
   supplies the arguments directly (thread start, callbacks, clinit);
   otherwise the top [rm_nargs] operand-stack slots move into the callee's
   locals. Stack growth happens before the arguments are popped so they stay
   scannable. *)
let push_frame (vm : Rt.t) (callee : Rt.rmethod) ~resume_pc
    ?explicit_args () =
  let c = Compile.compile vm callee in
  let t = Rt.cur vm in
  ensure_stack vm t ~need:(frame_need callee c + vm.cfg.stack_slack);
  let nargs = callee.rm_nargs in
  let fp =
    match explicit_args with
    | Some _ -> t.t_sp
    | None -> t.t_sp - nargs
  in
  (* the top [nargs] operand slots become the callee's first locals. On
     the implicit path they are moved up in place, highest-indexed first
     so no source slot (fp+i) is overwritten before it is read (its
     destination fp+header+i sits exactly header words above it) — the
     per-call transient array this replaces was the interpreter's only
     allocation on the invoke path. Nothing here allocates, so the slots
     stay scannable throughout. *)
  (match explicit_args with
  | None ->
    for i = nargs - 1 downto 0 do
      Layout.stack_set vm t
        (fp + Rt.frame_header_words + i)
        (Layout.stack_get vm t (fp + i))
    done
  | Some a ->
    if Array.length a <> nargs then
      fatal "bad explicit arg count for %s" callee.rm_name;
    for i = 0 to nargs - 1 do
      Layout.stack_set vm t (fp + Rt.frame_header_words + i) a.(i)
    done);
  Layout.stack_set vm t fp t.t_meth.uid;
  Layout.stack_set vm t (fp + 1) resume_pc;
  Layout.stack_set vm t (fp + 2) t.t_fp;
  for i = nargs to callee.rm_nlocals - 1 do
    Layout.stack_set vm t (fp + Rt.frame_header_words + i) 0
  done;
  t.t_fp <- fp;
  t.t_sp <- fp + Rt.frame_header_words + callee.rm_nlocals;
  t.t_meth <- callee;
  t.t_pc <- 0

(* Pop the current frame; push [result] in the caller if given. A return
   from a thread's base frame terminates the thread. *)
let do_return (vm : Rt.t) ~result =
  let t = Rt.cur vm in
  let fp = t.t_fp in
  let caller_uid = Layout.stack_get vm t fp in
  if caller_uid < 0 then Sched.terminate_current vm
  else begin
    let resume_pc = Layout.stack_get vm t (fp + 1) in
    let caller_fp = Layout.stack_get vm t (fp + 2) in
    t.t_meth <- vm.methods.(caller_uid);
    t.t_pc <- resume_pc;
    t.t_fp <- caller_fp;
    t.t_sp <- fp;
    match result with Some v -> push vm t v | None -> ()
  end

(* --- class initialization --------------------------------------------- *)

(* Lazily initialize a class: intern its string literals (heap side effects
   at a point determined by execution — the class-loading symmetry concern
   of the paper) and queue its <clinit> to run before the current
   instruction re-executes. Returns false when frames were pushed (or the
   state may have changed): the caller must NOT advance pc, so the faulting
   instruction re-executes once initializers complete. *)
let rec ensure_initialized (vm : Rt.t) cid : bool =
  let rc = vm.classes.(cid) in
  match rc.rc_state with
  | Rt.Initialized -> true
  | Rt.Registered ->
    rc.rc_state <- Rt.Initialized;
    vm.stats.n_classes_initialized <- vm.stats.n_classes_initialized + 1;
    let n = Array.length rc.rc_string_lits in
    rc.rc_strings <- Array.make n 0;
    for i = 0 to n - 1 do
      rc.rc_strings.(i) <- Heap.alloc_string vm rc.rc_string_lits.(i)
    done;
    (match Hashtbl.find_opt rc.rc_method_of Bytecode.Decl.clinit_name with
    | Some uid ->
      let t = Rt.cur vm in
      push_frame vm vm.methods.(uid) ~resume_pc:t.t_pc ()
    | None -> ());
    (* superclass initializers run first: pushed later = executed earlier *)
    if rc.rc_super >= 0 then ignore (ensure_initialized vm rc.rc_super);
    false

(* --- exceptions -------------------------------------------------------- *)

(* Unwind the current thread with exception object [exc]: find the nearest
   covering handler whose catch class matches, clearing the operand stack;
   an uncaught exception terminates the thread with a note in the program
   output (deterministic, hence replayed). *)
let raise_exception (vm : Rt.t) exc =
  vm.stats.n_exceptions <- vm.stats.n_exceptions + 1;
  let t = Rt.cur vm in
  let exc_cid = Layout.class_of vm exc in
  let rec unwind () =
    let c = Rt.compiled t.t_meth in
    let matching =
      Array.to_seq c.k_handlers
      |> Seq.filter (fun (h : Rt.rhandler) ->
             t.t_pc >= h.k_from && t.t_pc < h.k_upto
             && (h.k_catch < 0
                || Rt.is_subclass vm ~sub:exc_cid ~sup:h.k_catch))
      |> Seq.uncons
    in
    match matching with
    | Some (h, _) ->
      t.t_sp <- t.t_fp + Rt.frame_header_words + t.t_meth.rm_nlocals;
      push vm t exc;
      t.t_pc <- h.k_target
    | None ->
      let fp = t.t_fp in
      let caller_uid = Layout.stack_get vm t fp in
      if caller_uid < 0 then begin
        Buffer.add_string vm.output
          (Fmt.str "!! thread %d (%s) died: uncaught %s\n" t.tid t.t_name
             vm.classes.(exc_cid).rc_name);
        Sched.terminate_current vm
      end
      else begin
        let resume_pc = Layout.stack_get vm t (fp + 1) in
        let caller_fp = Layout.stack_get vm t (fp + 2) in
        t.t_meth <- vm.methods.(caller_uid);
        (* resume_pc - 1 is the invoke site, which handler ranges cover *)
        t.t_pc <- resume_pc - 1;
        t.t_fp <- caller_fp;
        t.t_sp <- fp;
        unwind ()
      end
  in
  unwind ()

let throw_by_name (vm : Rt.t) name =
  let cid = Rt.class_id vm name in
  (* builtin exception classes have no fields, literals, or <clinit>; the
     allocation is the only side effect *)
  let exc = Heap.alloc_object vm cid in
  raise_exception vm exc

(* --- threads ----------------------------------------------------------- *)

let thread_stack_size (vm : Rt.t) (m : Rt.rmethod) (c : Rt.compiled) =
  max vm.cfg.stack_init (frame_need m c + vm.cfg.stack_slack)

(* Create a thread whose base frame runs [meth] with [args] (plain words;
   any references among them must be supplied via operand-stack peeks, see
   KSpawn below). Returns the new tid. *)
let create_thread (vm : Rt.t) ~name (meth : Rt.rmethod) ~stack_addr
    ~(args : int array) =
  let tid = vm.n_threads in
  if tid >= Array.length vm.threads then begin
    let bigger = Array.make (2 * Array.length vm.threads) vm.threads.(0) in
    Array.blit vm.threads 0 bigger 0 vm.n_threads;
    vm.threads <- bigger
  end;
  let t =
    {
      Rt.tid;
      t_name = name;
      t_stack = stack_addr;
      t_fp = 0;
      t_sp = 0;
      t_pc = 0;
      t_meth = meth;
      t_state = Rt.Ready;
      t_wake = 0;
      t_interrupted = false;
      t_wait_mon = -1;
      t_saved_count = 0;
      t_joiners = [];
      t_exc = 0;
    }
  in
  vm.threads.(tid) <- t;
  vm.n_threads <- vm.n_threads + 1;
  vm.live_threads <- vm.live_threads + 1;
  (* base frame *)
  Layout.stack_set vm t 0 (-1);
  Layout.stack_set vm t 1 0;
  Layout.stack_set vm t 2 0;
  for i = 0 to meth.rm_nlocals - 1 do
    Layout.stack_set vm t
      (Rt.frame_header_words + i)
      (if i < Array.length args then args.(i) else 0)
  done;
  t.t_fp <- 0;
  t.t_sp <- Rt.frame_header_words + meth.rm_nlocals;
  (match vm.hooks.h_spawn with Some f -> f vm tid | None -> ());
  tid

(* --- native calls ------------------------------------------------------ *)

(* Execute (or, under replay, regenerate) a native call: the result is
   pushed first, then callback frames are stacked so that callbacks run in
   order before control returns behind the call site (paper section 2.5). *)
let do_native (vm : Rt.t) (t : Rt.thread) nid pc =
  let nat = vm.natives_by_id.(nid) in
  vm.stats.n_native_calls <- vm.stats.n_native_calls + 1;
  let args = Array.init nat.nat_arity (fun i -> peek vm t (nat.nat_arity - 1 - i)) in
  let outcome = vm.hooks.h_native vm nat args in
  t.t_sp <- t.t_sp - nat.nat_arity;
  t.t_pc <- pc + 1;
  (match (nat.nat_returns, outcome.no_result) with
  | true, Some v -> push vm t v
  | false, None -> ()
  | true, None -> fatal "native %s produced no result" nat.nat_name
  | false, Some _ -> fatal "native %s produced an unexpected result" nat.nat_name);
  (* push callback frames last-to-first so the first callback runs first;
     uninitialized callback classes get their <clinit> queued on top *)
  List.iter
    (fun (uid, cargs) ->
      let cb = vm.methods.(uid) in
      if cb.rm_nargs <> Array.length cargs then
        fatal "native %s: callback %s arity mismatch" nat.nat_name cb.rm_name;
      push_frame vm cb ~resume_pc:t.t_pc ~explicit_args:cargs ();
      ignore (ensure_initialized vm cb.rm_cid))
    (List.rev outcome.no_callbacks)

(* --- the dispatcher ---------------------------------------------------- *)

let[@inline] binop (op : Rt.bin) a b =
  match op with
  | Badd -> a + b
  | Bsub -> a - b
  | Bmul -> a * b
  | Bdiv ->
    if b = 0 then raise (Rt.Vm_exception "ArithmeticException") else a / b
  | Brem ->
    if b = 0 then raise (Rt.Vm_exception "ArithmeticException") else a mod b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Bshl -> a lsl (b land 63)
  | Bshr -> a asr (b land 63)

let check_bounds vm arr idx =
  if idx < 0 || idx >= Layout.len_of vm arr then
    raise (Rt.Vm_exception "ArrayIndexOutOfBoundsException")

(* --- inline caches ------------------------------------------------------ *)

(* Call-site inline caches graduate mono -> poly(4) -> megamorphic. Every
   state memoizes the same deterministic vtable walk, so transitions are
   invisible to record/replay: the cells live outside the guest heap and
   are never digested or snapshotted. The megamorphic table maps every
   class id straight to its resolved target (classes whose vtables are too
   short keep the placeholder; such receivers cannot occur at this site). *)
let ic_fill_mega (vm : Rt.t) (ic : Rt.ic) vslot =
  let n = Array.length vm.classes in
  let table = Array.make n ic.Rt.ic_meth in
  for cid = 0 to n - 1 do
    let vt = vm.classes.(cid).rc_vtable in
    if vslot < Array.length vt then table.(cid) <- vm.methods.(vt.(vslot))
  done;
  ic.Rt.ic_mega <- table;
  ic.Rt.ic_n <- -1

let ic_miss (vm : Rt.t) (ic : Rt.ic) vslot rcid =
  let callee =
    if ic.Rt.ic_n < 0 then ic.Rt.ic_mega.(rcid)
    else begin
      let hit = ref None in
      for k = 0 to ic.Rt.ic_n - 1 do
        if ic.Rt.ic_cids.(k) = rcid then hit := Some ic.Rt.ic_meths.(k)
      done;
      match !hit with
      | Some m -> m
      | None ->
        let m = vm.methods.(vm.classes.(rcid).rc_vtable.(vslot)) in
        (if ic.Rt.ic_cid < 0 then () (* cold: become monomorphic below *)
         else if ic.Rt.ic_n = 0 then begin
           (* mono -> poly: seed with the previous receiver plus this one *)
           let cids = Array.make Rt.poly_limit (-1) in
           let meths = Array.make Rt.poly_limit m in
           cids.(0) <- ic.Rt.ic_cid;
           meths.(0) <- ic.Rt.ic_meth;
           cids.(1) <- rcid;
           meths.(1) <- m;
           ic.Rt.ic_cids <- cids;
           ic.Rt.ic_meths <- meths;
           ic.Rt.ic_n <- 2
         end
         else if ic.Rt.ic_n < Rt.poly_limit then begin
           ic.Rt.ic_cids.(ic.Rt.ic_n) <- rcid;
           ic.Rt.ic_meths.(ic.Rt.ic_n) <- m;
           ic.Rt.ic_n <- ic.Rt.ic_n + 1
         end
         else ic_fill_mega vm ic vslot);
        m
    end
  in
  (* the mono fields double as a last-receiver fast path in every state *)
  ic.Rt.ic_cid <- rcid;
  ic.Rt.ic_meth <- callee;
  callee

let ic_lookup (vm : Rt.t) (ic : Rt.ic) vslot rcid =
  if ic.Rt.ic_cid = rcid then ic.Rt.ic_meth else ic_miss vm ic vslot rcid

(* Execute [ins], fetched from [pc] of thread [t]. Stat accounting and the
   per-instruction hooks/clock are the caller's job: [exec] pays them one
   instruction at a time (debugger single-stepping), [exec_batch] amortizes
   them over a run-until-yield segment. *)
let dispatch (vm : Rt.t) (t : Rt.thread) pc ins =
  match (ins : Rt.cinstr) with
  | KConst n ->
    push vm t n;
    t.t_pc <- pc + 1
  | KStr (owner, idx) ->
    push vm t owner.rc_strings.(idx);
    t.t_pc <- pc + 1
  | KNull ->
    push vm t 0;
    t.t_pc <- pc + 1
  | KLoad i ->
    push vm t (Layout.stack_get_u vm t (t.t_fp + Rt.frame_header_words + i));
    t.t_pc <- pc + 1
  | KStore i ->
    let v = pop vm t in
    Layout.stack_set_u vm t (t.t_fp + Rt.frame_header_words + i) v;
    t.t_pc <- pc + 1
  | KDup ->
    push vm t (peek vm t 0);
    t.t_pc <- pc + 1
  | KPop ->
    ignore (pop vm t);
    t.t_pc <- pc + 1
  | KSwap ->
    let a = pop vm t in
    let b = pop vm t in
    push vm t a;
    push vm t b;
    t.t_pc <- pc + 1
  | KBin op ->
    let b = pop vm t in
    let a = pop vm t in
    push vm t (binop op a b);
    t.t_pc <- pc + 1
  | KNeg ->
    push vm t (-pop vm t);
    t.t_pc <- pc + 1
  | KIf (cmp, target) ->
    let b = pop vm t in
    let a = pop vm t in
    t.t_pc <- (if Bytecode.Instr.eval_cmp cmp a b then target else pc + 1)
  | KIfz (cmp, target) ->
    let a = pop vm t in
    t.t_pc <- (if Bytecode.Instr.eval_cmp cmp a 0 then target else pc + 1)
  | KIfnull target ->
    t.t_pc <- (if pop vm t = 0 then target else pc + 1)
  | KIfnonnull target ->
    t.t_pc <- (if pop vm t <> 0 then target else pc + 1)
  | KIfrefeq target ->
    let b = pop vm t in
    let a = pop vm t in
    t.t_pc <- (if a = b then target else pc + 1)
  | KIfrefne target ->
    let b = pop vm t in
    let a = pop vm t in
    t.t_pc <- (if a <> b then target else pc + 1)
  | KGoto target -> t.t_pc <- target
  | KNew cid ->
    if ensure_initialized vm cid then begin
      push vm t (Heap.alloc_object vm cid);
      t.t_pc <- pc + 1
    end
  | KGetfield (slot, _) ->
    let obj = pop vm t in
    check_null obj;
    (match vm.hooks.h_heap_read with Some f -> f vm obj slot | None -> ());
    push vm t vm.heap.(obj + slot);
    t.t_pc <- pc + 1
  | KPutfield (slot, _) ->
    let v = pop vm t in
    let obj = pop vm t in
    check_null obj;
    (match vm.hooks.h_heap_write with Some f -> f vm obj slot | None -> ());
    vm.heap.(obj + slot) <- v;
    t.t_pc <- pc + 1
  | KGetstatic (cid, slot, _) ->
    if ensure_initialized vm cid then begin
      (match vm.hooks.h_heap_read with Some f -> f vm (-1) slot | None -> ());
      push vm t vm.globals.(slot);
      t.t_pc <- pc + 1
    end
  | KPutstatic (cid, slot, _) ->
    if ensure_initialized vm cid then begin
      let v = pop vm t in
      (match vm.hooks.h_heap_write with Some f -> f vm (-1) slot | None -> ());
      vm.globals.(slot) <- v;
      t.t_pc <- pc + 1
    end
  | KNewarray ty ->
    let len = pop vm t in
    if len < 0 then raise (Rt.Vm_exception "NegativeArraySizeException");
    push vm t (Heap.alloc_array vm ~elem_ref:(Bytecode.Instr.is_ref_ty ty) ~len);
    t.t_pc <- pc + 1
  | KAload ->
    let idx = pop vm t in
    let arr = pop vm t in
    check_null arr;
    check_bounds vm arr idx;
    (match vm.hooks.h_heap_read with
    | Some f -> f vm arr (Layout.header_words + idx)
    | None -> ());
    push vm t (Layout.get vm arr idx);
    t.t_pc <- pc + 1
  | KAstore ->
    let v = pop vm t in
    let idx = pop vm t in
    let arr = pop vm t in
    check_null arr;
    check_bounds vm arr idx;
    (match vm.hooks.h_heap_write with
    | Some f -> f vm arr (Layout.header_words + idx)
    | None -> ());
    Layout.set vm arr idx v;
    t.t_pc <- pc + 1
  | KArraylength ->
    let arr = pop vm t in
    check_null arr;
    push vm t (Layout.len_of vm arr);
    t.t_pc <- pc + 1
  | KCheckcast cid ->
    let obj = peek vm t 0 in
    if obj <> 0 && not (Rt.is_subclass vm ~sub:(Layout.class_of vm obj) ~sup:cid)
    then raise (Rt.Vm_exception "ClassCastException");
    t.t_pc <- pc + 1
  | KInstanceof cid ->
    let obj = pop vm t in
    push vm t
      (if obj <> 0 && Rt.is_subclass vm ~sub:(Layout.class_of vm obj) ~sup:cid
       then 1
       else 0);
    t.t_pc <- pc + 1
  | KInvokestatic callee ->
    if ensure_initialized vm callee.rm_cid then
      push_frame vm callee ~resume_pc:(pc + 1) ()
  | KInvokevirtual (_, vslot, nargs, ic) ->
    let receiver = peek vm t (nargs - 1) in
    check_null receiver;
    let rcid = Layout.class_of vm receiver in
    let callee = ic_lookup vm ic vslot rcid in
    push_frame vm callee ~resume_pc:(pc + 1) ()
  | KRet -> do_return vm ~result:None
  | KRetv ->
    let v = pop vm t in
    do_return vm ~result:(Some v)
  | KThrow ->
    let exc = pop vm t in
    check_null exc;
    raise_exception vm exc
  | KMonitorenter ->
    let obj = pop vm t in
    check_null obj;
    t.t_pc <- pc + 1;
    Sched.monitor_enter vm obj
  | KMonitorexit ->
    let obj = pop vm t in
    check_null obj;
    Sched.monitor_exit vm obj;
    t.t_pc <- pc + 1
  | KWait ->
    let obj = pop vm t in
    check_null obj;
    Sched.check_owned vm obj;
    t.t_pc <- pc + 1;
    Sched.do_wait vm obj ~timeout_ms:None
  | KTimedwait ->
    let ms = pop vm t in
    let obj = pop vm t in
    check_null obj;
    Sched.check_owned vm obj;
    t.t_pc <- pc + 1;
    Sched.do_wait vm obj ~timeout_ms:(Some ms)
  | KNotify ->
    let obj = pop vm t in
    check_null obj;
    Sched.do_notify vm obj ~all:false;
    t.t_pc <- pc + 1
  | KNotifyall ->
    let obj = pop vm t in
    check_null obj;
    Sched.do_notify vm obj ~all:true;
    t.t_pc <- pc + 1
  | KSpawnstatic callee ->
    if ensure_initialized vm callee.rm_cid then begin
      let cc = Compile.compile vm callee in
      let stack_addr =
        Heap.alloc_stack_array vm ~len:(thread_stack_size vm callee cc)
      in
      (* args still live on this thread's operand stack across the
         allocation above; copy them now *)
      let nargs = callee.rm_nargs in
      let args = Array.init nargs (fun i -> peek vm t (nargs - 1 - i)) in
      t.t_sp <- t.t_sp - nargs;
      let tid =
        create_thread vm
          ~name:(Fmt.str "thread-%d" vm.n_threads)
          callee ~stack_addr ~args
      in
      Sched.ready vm tid;
      push vm t tid;
      t.t_pc <- pc + 1
    end
  | KSpawnvirtual (_, vslot, nargs, ic) ->
    let receiver = peek vm t (nargs - 1) in
    check_null receiver;
    let rcid = Layout.class_of vm receiver in
    let callee = ic_lookup vm ic vslot rcid in
    let cc = Compile.compile vm callee in
    let stack_addr =
      Heap.alloc_stack_array vm ~len:(thread_stack_size vm callee cc)
    in
    let args = Array.init nargs (fun i -> peek vm t (nargs - 1 - i)) in
    t.t_sp <- t.t_sp - nargs;
    let tid =
      create_thread vm
        ~name:(Fmt.str "thread-%d" vm.n_threads)
        callee ~stack_addr ~args
    in
    Sched.ready vm tid;
    push vm t tid;
    t.t_pc <- pc + 1
  | KSleep ->
    let ms = pop vm t in
    t.t_pc <- pc + 1;
    Sched.do_sleep vm ms
  | KJoin ->
    let tid = pop vm t in
    if tid < 0 || tid >= vm.n_threads then npe ();
    t.t_pc <- pc + 1;
    Sched.do_join vm tid
  | KInterrupt ->
    let tid = pop vm t in
    if tid < 0 || tid >= vm.n_threads then npe ();
    Sched.do_interrupt vm tid;
    t.t_pc <- pc + 1
  | KCurrenttime ->
    push vm t (Rt.read_clock vm Rt.Capp);
    t.t_pc <- pc + 1
  | KReadinput ->
    vm.stats.n_input_reads <- vm.stats.n_input_reads + 1;
    push vm t (vm.hooks.h_input vm);
    t.t_pc <- pc + 1
  | KNative nid -> do_native vm t nid pc
  | KPrint ->
    let v = pop vm t in
    Buffer.add_string vm.output (string_of_int v);
    Buffer.add_char vm.output '\n';
    t.t_pc <- pc + 1
  | KPrints ->
    let s = pop vm t in
    check_null s;
    Buffer.add_string vm.output (Layout.string_value vm s);
    t.t_pc <- pc + 1
  | KHalt -> vm.status <- Rt.Halted 0
  | KNop -> t.t_pc <- pc + 1
  | KYield ->
    vm.stats.n_yield <- vm.stats.n_yield + 1;
    t.t_pc <- pc + 1;
    vm.hooks.h_yieldpoint vm
  | KLdLdBin _ | KLdConstBin _ | KBinIf _ | KBinIfz _ | KLdGetfield _
  | KLdStore _ | KLdIf _ | KLdIfz _ | KLdLdIf _ | KLdConstIf _
  | KLdLdBinIf _ | KLdLdBinIfz _ | KLdConstBinSt _ | KBinSt _ ->
    (* superinstructions live only in k_fused and are executed inline by
       the fast loop in [exec_batch]; every other fetch path (single-step,
       observed loop, fuel fallback) reads the canonical k_code *)
    fatal "superinstruction reached the generic dispatcher at pc %d" pc

(* Advance the environment clock for one executed instruction and latch a
   timer fire into the preemption bit. The [cfg.clock] guard exists for
   one consumer: the bench's no-clock mode, which prices the clock itself
   by differencing timed runs with the guard on and off. *)
let clock_instr (vm : Rt.t) =
  if vm.cfg.clock then begin
    (* open-coded [Env.tick] fast path: strictly inside the precomputed
       horizon a tick is two counter bumps, and this duplicate keeps it
       free of the cross-module call (semantically identical — [tick]
       runs the very same branch first) *)
    let e = vm.env in
    if e.Env.h_valid && e.Env.h_pending + 1 < e.Env.h_count then begin
      e.Env.h_pending <- e.Env.h_pending + 1;
      e.Env.ticks <- e.Env.ticks + 1
    end
    else if Env.tick e then begin
      vm.preempt_pending <- true;
      vm.stats.n_preempt_req <- vm.stats.n_preempt_req + 1
    end
  end

(* [clock_instr] for [n] instructions of a fused region at once: one stub
   call, same draws, every fire latched and counted as n ticks would. *)
let clock_batch (vm : Rt.t) n =
  if vm.cfg.clock then begin
    let e = vm.env in
    if e.Env.h_valid && e.Env.h_pending + n < e.Env.h_count then begin
      e.Env.h_pending <- e.Env.h_pending + n;
      e.Env.ticks <- e.Env.ticks + n
    end
    else
      let fires = Env.tick_batch e n in
      if fires > 0 then begin
        vm.preempt_pending <- true;
        vm.stats.n_preempt_req <- vm.stats.n_preempt_req + fires
      end
  end

(* --- the register tier -------------------------------------------------- *)

(* Execute one lowered region on thread [t], then *chain*: when the region
   ends in a same-frame control transfer (branch, goto, fall-through) whose
   target opens another region that still fits in the remaining fuel, keep
   executing there without a round trip through the outer dispatch loop.
   Chains terminate because every region pays at least two ticks into
   [executed] before its terminal runs, so the fuel guard in [chain] is
   strictly decreasing. Regions that end in a call or return never chain —
   those change the method, and [regions] indexes the current method only.
   Only the fast loop dispatches regions (no per-instruction hooks can be
   attached), and it has already checked that the first region's full
   instruction count fits in the remaining fuel.

   Frame slots are addressed through a cached absolute base into the heap
   array; both caches are refreshed after anything that can allocate (GC
   may move the stack array or replace the heap in a semispace flip).
   Within a fault-free segment [t_pc]/[t_sp] are deliberately stale —
   nothing can observe them — and every op that can fault, allocate, or
   run a hook stores its canonical pc and fault-time sp first, so
   unwinding, GC stack scans, and heap hooks see exactly the frame the
   stack tier would have shown them. [RTick n] pays the clock for the
   next [n] canonical instructions in one stub call *before* their
   effects; that reordering is unobservable because ticks never read
   guest memory and the covered instructions cannot fault before their
   own (already-paid) tick. An [ensure_initialized] bail leaves pc at the
   faulting instruction with its tick and [executed] slot already paid —
   the same accounting as the stack tier's failed attempt — and the next
   outer iteration re-enters through clinit frames.

   [RYield] runs the yield-point hook in-region. Its canonical pc/sp are
   stored first (the preceding flush materialized every slot), so a hook
   that switches threads leaves this thread exactly where the stack tier
   would: execution bails out and the outer loop picks up the new thread.
   When the hook returns with the same thread still current, the region
   continues — but the hook may have grown this thread's stack or run a
   collection even without switching (a same-thread re-pick still runs
   the instrumentation's eager stack growth), so the heap/base caches are
   recomputed unconditionally. *)
let rec exec_region (vm : Rt.t) (t : Rt.thread) (r0 : Rt.region)
    (regions : Rt.region option array) ~fuel executed =
  let rec run_region (r : Rt.region) =
    let ops = r.Rt.r_ops in
    let nops = Array.length ops in
    (* sp value for a slot index; constant across the region (no frame
       push/pop until a terminal ends it) *)
    let fbase = t.t_fp + Rt.frame_header_words in
    (* Tail-recursive so the heap array and absolute slot base stay in
       registers — no refs or closures on this path (no flambda). The two
       allocating ops re-enter with fresh [heap]/[base] parameters; heap
       hooks never allocate in the guest heap, so they keep the cache. *)
    let rec go i (heap : int array) base =
    if i < nops then
      match Array.unsafe_get ops i with
      | Rt.RTick n ->
        executed := !executed + n;
        clock_batch vm n;
        go (i + 1) heap base
      | Rt.RConst (d, v) ->
        Array.unsafe_set heap (base + d) v;
        go (i + 1) heap base
      | Rt.RMove (d, s) ->
        Array.unsafe_set heap (base + d) (Array.unsafe_get heap (base + s));
        go (i + 1) heap base
      | Rt.RStr (d, owner, idx) ->
        Array.unsafe_set heap (base + d) owner.Rt.rc_strings.(idx);
        go (i + 1) heap base
      | Rt.RBin (op, d, a, b) ->
        Array.unsafe_set heap (base + d)
          (binop op
             (Array.unsafe_get heap (base + a))
             (Array.unsafe_get heap (base + b)));
        go (i + 1) heap base
      | Rt.RBinC (op, d, a, c) ->
        Array.unsafe_set heap (base + d)
          (binop op (Array.unsafe_get heap (base + a)) c);
        go (i + 1) heap base
      | Rt.RBinCL (op, d, c, b) ->
        Array.unsafe_set heap (base + d)
          (binop op c (Array.unsafe_get heap (base + b)));
        go (i + 1) heap base
      | Rt.RNeg (d, s) ->
        Array.unsafe_set heap (base + d) (-Array.unsafe_get heap (base + s));
        go (i + 1) heap base
      | Rt.RSwapMem (a, b) ->
        let x = Array.unsafe_get heap (base + a) in
        Array.unsafe_set heap (base + a) (Array.unsafe_get heap (base + b));
        Array.unsafe_set heap (base + b) x;
        go (i + 1) heap base
      | Rt.RInstanceof (d, cid, s) ->
        let obj = Array.unsafe_get heap (base + s) in
        Array.unsafe_set heap (base + d)
          (if
             obj <> 0
             && Rt.is_subclass vm ~sub:(Layout.class_of vm obj) ~sup:cid
           then 1
           else 0);
        go (i + 1) heap base
      | Rt.RPrint s ->
        Buffer.add_string vm.output
          (string_of_int (Array.unsafe_get heap (base + s)));
        Buffer.add_char vm.output '\n';
        go (i + 1) heap base
      | Rt.RDivRem (op, pc, d) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + d;
        let b = Array.unsafe_get heap (base + d + 1) in
        Array.unsafe_set heap (base + d)
          (binop op (Array.unsafe_get heap (base + d)) b);
        go (i + 1) heap base
      | Rt.RGetfield (slot, pc, os) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + os;
        let obj = Array.unsafe_get heap (base + os) in
        check_null obj;
        (match vm.hooks.h_heap_read with Some f -> f vm obj slot | None -> ());
        Array.unsafe_set heap (base + os) vm.heap.(obj + slot);
        go (i + 1) heap base
      | Rt.RPutfield (slot, pc, os) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + os;
        let v = Array.unsafe_get heap (base + os + 1) in
        let obj = Array.unsafe_get heap (base + os) in
        check_null obj;
        (match vm.hooks.h_heap_write with Some f -> f vm obj slot | None -> ());
        vm.heap.(obj + slot) <- v;
        go (i + 1) heap base
      | Rt.RGetstatic (cid, g, pc, d) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + d;
        (* true means already initialized: nothing allocated, caches hold *)
        if ensure_initialized vm cid then begin
          (match vm.hooks.h_heap_read with Some f -> f vm (-1) g | None -> ());
          Array.unsafe_set heap (base + d) vm.globals.(g);
          go (i + 1) heap base
        end
      | Rt.RPutstatic (cid, g, pc, vs) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + vs + 1;
        if ensure_initialized vm cid then begin
          let v = Array.unsafe_get heap (base + vs) in
          t.t_sp <- fbase + vs;
          (match vm.hooks.h_heap_write with
          | Some f -> f vm (-1) g
          | None -> ());
          vm.globals.(g) <- v;
          go (i + 1) heap base
        end
      | Rt.RNewobj (cid, pc, d) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + d;
        if ensure_initialized vm cid then begin
          let addr = Heap.alloc_object vm cid in
          let heap = vm.heap in
          let base = t.t_stack + Layout.header_words + fbase in
          Array.unsafe_set heap (base + d) addr;
          go (i + 1) heap base
        end
      | Rt.RNewarray (elem_ref, pc, ls) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + ls;
        let len = Array.unsafe_get heap (base + ls) in
        if len < 0 then raise (Rt.Vm_exception "NegativeArraySizeException");
        let addr = Heap.alloc_array vm ~elem_ref ~len in
        let heap = vm.heap in
        let base = t.t_stack + Layout.header_words + fbase in
        Array.unsafe_set heap (base + ls) addr;
        go (i + 1) heap base
      | Rt.RAload (pc, a) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + a;
        let idx = Array.unsafe_get heap (base + a + 1) in
        let arr = Array.unsafe_get heap (base + a) in
        check_null arr;
        check_bounds vm arr idx;
        (match vm.hooks.h_heap_read with
        | Some f -> f vm arr (Layout.header_words + idx)
        | None -> ());
        Array.unsafe_set heap (base + a) (Layout.get vm arr idx);
        go (i + 1) heap base
      | Rt.RAstore (pc, a) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + a;
        let v = Array.unsafe_get heap (base + a + 2) in
        let idx = Array.unsafe_get heap (base + a + 1) in
        let arr = Array.unsafe_get heap (base + a) in
        check_null arr;
        check_bounds vm arr idx;
        (match vm.hooks.h_heap_write with
        | Some f -> f vm arr (Layout.header_words + idx)
        | None -> ());
        Layout.set vm arr idx v;
        go (i + 1) heap base
      | Rt.RArraylength (pc, a) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + a;
        let arr = Array.unsafe_get heap (base + a) in
        check_null arr;
        Array.unsafe_set heap (base + a) (Layout.len_of vm arr);
        go (i + 1) heap base
      | Rt.RCheckcast (cid, pc, o) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + o + 1;
        let obj = Array.unsafe_get heap (base + o) in
        if
          obj <> 0
          && not (Rt.is_subclass vm ~sub:(Layout.class_of vm obj) ~sup:cid)
        then raise (Rt.Vm_exception "ClassCastException");
        go (i + 1) heap base
      | Rt.RPrints (pc, s) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + s;
        let v = Array.unsafe_get heap (base + s) in
        check_null v;
        Buffer.add_string vm.output (Layout.string_value vm v);
        go (i + 1) heap base
      | Rt.RYield (npc, ss) ->
        vm.stats.n_yield <- vm.stats.n_yield + 1;
        t.t_pc <- npc;
        t.t_sp <- fbase + ss;
        vm.hooks.h_yieldpoint vm;
        (match vm.status with
        | Rt.Running_ when vm.current = t.tid ->
          go (i + 1) vm.heap (t.t_stack + Layout.header_words + fbase)
        | _ -> ())
      | Rt.RMonEnter (npc, os) ->
        (* canonical order: null check faults at the monitorenter pc with
           the object already popped; pc advances before the scheduler
           runs, so a contended park resumes past the instruction (the
           exiting owner hands the monitor over). The region continues
           only on the uncontended path — same guard as a yield. *)
        t.t_pc <- npc - 1;
        t.t_sp <- fbase + os;
        let obj = Array.unsafe_get heap (base + os) in
        check_null obj;
        t.t_pc <- npc;
        vm.stats.n_regir_mon <- vm.stats.n_regir_mon + 1;
        Sched.monitor_enter vm obj;
        (match vm.status with
        | Rt.Running_ when vm.current = t.tid ->
          go (i + 1) vm.heap (t.t_stack + Layout.header_words + fbase)
        | _ -> ())
      | Rt.RMonExit (npc, os) ->
        (* release may raise IllegalMonitorState (canonical frames are in
           place) and may ready the next owner, but never parks the
           current thread: the region always continues *)
        t.t_pc <- npc - 1;
        t.t_sp <- fbase + os;
        let obj = Array.unsafe_get heap (base + os) in
        check_null obj;
        vm.stats.n_regir_mon <- vm.stats.n_regir_mon + 1;
        Sched.monitor_exit vm obj;
        t.t_pc <- npc;
        go (i + 1) vm.heap (t.t_stack + Layout.header_words + fbase)
      | Rt.RInlineStatic (callee, pc, ss) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + ss;
        if ensure_initialized vm callee.Rt.rm_cid then begin
          let caller = t.t_meth in
          push_frame vm callee ~resume_pc:(pc + 1) ();
          let kc = Rt.compiled callee in
          (match kc.Rt.k_regions.(0) with
          | Some rc
            when rc.Rt.r_n = Array.length kc.Rt.k_code
                 && fuel - !executed >= rc.Rt.r_n ->
            vm.stats.n_regir_inline <- vm.stats.n_regir_inline + 1;
            exec_region vm t rc kc.Rt.k_regions ~fuel executed
          | _ -> ());
          (* continue the caller's region only when the callee fully
             returned into exactly the frame this region runs in; any
             other outcome (bail into the callee, a switch, an unwind in
             flight) left canonical frames for the outer loop *)
          if
            vm.status = Rt.Running_
            && vm.current = t.tid
            && t.t_meth == caller
            && t.t_pc = pc + 1
            && t.t_fp + Rt.frame_header_words = fbase
          then go (i + 1) vm.heap (t.t_stack + Layout.header_words + fbase)
        end
      | Rt.RInlineVirtual (vslot, nargs, ic, pc, ss) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + ss;
        let receiver = Array.unsafe_get heap (base + ss - nargs) in
        check_null receiver;
        let rcid = Layout.class_of vm receiver in
        let callee = ic_lookup vm ic vslot rcid in
        let caller = t.t_meth in
        push_frame vm callee ~resume_pc:(pc + 1) ();
        let kc = Rt.compiled callee in
        (match kc.Rt.k_regions.(0) with
        | Some rc
          when rc.Rt.r_n = Array.length kc.Rt.k_code
               && fuel - !executed >= rc.Rt.r_n ->
          vm.stats.n_regir_inline <- vm.stats.n_regir_inline + 1;
          exec_region vm t rc kc.Rt.k_regions ~fuel executed
        | _ -> ());
        if
          vm.status = Rt.Running_
          && vm.current = t.tid
          && t.t_meth == caller
          && t.t_pc = pc + 1
          && t.t_fp + Rt.frame_header_words = fbase
        then go (i + 1) vm.heap (t.t_stack + Layout.header_words + fbase)
      | Rt.RIf (cmp, target, fall, a) ->
        let b = Array.unsafe_get heap (base + a + 1) in
        let x = Array.unsafe_get heap (base + a) in
        t.t_sp <- fbase + a;
        let pc' = if Bytecode.Instr.eval_cmp cmp x b then target else fall in
        t.t_pc <- pc';
        chain pc'
      | Rt.RIfz (cmp, target, fall, a) ->
        let x = Array.unsafe_get heap (base + a) in
        t.t_sp <- fbase + a;
        let pc' = if Bytecode.Instr.eval_cmp cmp x 0 then target else fall in
        t.t_pc <- pc';
        chain pc'
      | Rt.RGoto (target, ss) ->
        t.t_sp <- fbase + ss;
        t.t_pc <- target;
        chain target
      | Rt.RRet (pc, ss) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + ss;
        do_return vm ~result:None
      | Rt.RRetv (pc, vs) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + vs;
        let v = Array.unsafe_get heap (base + vs) in
        do_return vm ~result:(Some v)
      | Rt.RCallStatic (callee, pc, ss) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + ss;
        if ensure_initialized vm callee.Rt.rm_cid then
          push_frame vm callee ~resume_pc:(pc + 1) ()
      | Rt.RCallVirtual (vslot, nargs, ic, pc, ss) ->
        t.t_pc <- pc;
        t.t_sp <- fbase + ss;
        let receiver = Array.unsafe_get heap (base + ss - nargs) in
        check_null receiver;
        let rcid = Layout.class_of vm receiver in
        let callee = ic_lookup vm ic vslot rcid in
        push_frame vm callee ~resume_pc:(pc + 1) ()
      | Rt.REnd (next_pc, ss) ->
        t.t_pc <- next_pc;
        t.t_sp <- fbase + ss;
        chain next_pc
    in
    go 0 vm.heap (t.t_stack + Layout.header_words + fbase)
  and chain pc =
    match Array.unsafe_get regions pc with
    | Some r when fuel - !executed >= r.Rt.r_n -> run_region r
    | _ -> ()
  in
  run_region r0

(* Execute exactly one instruction of the current thread. *)
let exec (vm : Rt.t) =
  let t = Rt.cur vm in
  let c = Rt.compiled t.t_meth in
  let pc = t.t_pc in
  let ins = c.k_code.(pc) in
  vm.stats.n_instr <- vm.stats.n_instr + 1;
  (match vm.hooks.h_instr with Some f -> f vm | None -> ());
  (match vm.hooks.h_observe with
  | Some f -> f vm t.tid t.t_meth.uid pc (Rt.tag_of_cinstr ins)
  | None -> ());
  clock_instr vm;
  dispatch vm t pc ins

(* One step with exception conversion. *)
let step (vm : Rt.t) =
  try exec vm with
  | Rt.Vm_exception name -> throw_by_name vm name
  | Heap.Out_of_memory -> vm.status <- Rt.Fatal "OutOfMemoryError"
  | Verify.Error msg -> vm.status <- Rt.Fatal ("verify: " ^ msg)
  | Compile.Error msg -> vm.status <- Rt.Fatal ("compile: " ^ msg)
  | Fatal msg -> vm.status <- Rt.Fatal msg

(* The batched hot path: run up to [fuel] instructions before returning.

   The outer loop re-reads everything a dispatch segment depends on — the
   current thread, its compiled body, and which hooks are attached — then a
   tight inner loop dispatches until the segment dies: a call, return, or
   unwind changes the method; a yield point or blocking operation switches
   threads; the machine leaves Running_; or the fuel runs out. Yield points
   that do NOT switch (the overwhelmingly common case: one per guest loop
   iteration vs. one switch per scheduling quantum) stay inside the loop.

   [n_instr] is committed in one batched store per call, including the
   faulting instruction when an exception unwinds (same accounting as the
   one-at-a-time path). The segment loop is specialized once per segment for
   the no-observer/no-instr-hook case — attaching or detaching those hooks
   takes effect at the next segment boundary, never mid-segment (all stock
   instrumentation attaches before the run starts). *)
let exec_batch (vm : Rt.t) ~fuel =
  let executed = ref 0 in
  let commit () = vm.stats.n_instr <- vm.stats.n_instr + !executed in
  try
    while vm.status = Rt.Running_ && !executed < fuel do
      let tid = vm.current in
      let t = vm.threads.(tid) in
      let meth = t.t_meth in
      let comp = Rt.compiled meth in
      let code = comp.k_code in
      match (vm.hooks.h_instr, vm.hooks.h_observe) with
      | None, None ->
        (* fast loop: fetch, clock, dispatch — nothing else. It executes
           the fused stream; superinstructions are handled inline, paying
           one env tick and one [executed] increment per constituent (so
           the PRNG draw sequence, the preemption-request count, and the
           instruction count match unfused execution exactly, including
           when a constituent faults mid-region). The tick prefix of a
           region — every constituent up to and including the first one
           that can fault — is paid in a single [clock_batch] stub call,
           which draws the same stream as that many successive ticks;
           constituents after a fault point (only [KBin] and the
           [KGetfield] null check can fault) tick one at a time, after the
           fault point succeeds, so a mid-region exception leaves the
           clock exactly where unfused execution would. The handlers also
           replicate the unfused operand-stack WRITES — the state digest
           hashes every heap word up to the bump pointer, dead stack slots
           included, so skipping a push that unfused execution performs
           would leak into the digest. What fusion saves is the
           per-constituent fetch/decode/dispatch, the per-tick stub
           transitions, the segment-death checks, and the re-reads of
           just-written slots.

           Near the fuel limit a region that no longer fits falls back to
           dispatching the head constituent from the canonical stream —
           the shadow slots behind it are the originals, so execution
           degrades to one-at-a-time without overshooting the limit.

           Register regions are checked first: they subsume fusion over
           straight-line runs (the fused stream still covers pcs the
           lowering skipped, and mid-region pcs — reachable only through
           the fuel fallback — execute canonically or fused). *)
        let fused = comp.k_fused in
        let regions = comp.k_regions in
        let live = ref true in
        while !live do
          let pc = t.t_pc in
          (match Array.unsafe_get regions pc with
          | Some r when fuel - !executed >= r.Rt.r_n ->
            let before = !executed in
            exec_region vm t r regions ~fuel executed;
            vm.stats.n_regir_instr <-
              vm.stats.n_regir_instr + (!executed - before)
          | _ ->
            match fused.(pc) with
          | Rt.KLdLdBin (i, j, op) ->
            if fuel - !executed >= 3 then begin
              executed := !executed + 3;
              clock_batch vm 3;
              let base = t.t_fp + Rt.frame_header_words in
              let sp = t.t_sp in
              let x = Layout.stack_get_u vm t (base + i) in
              Layout.stack_set_u vm t sp x;
              let y = Layout.stack_get_u vm t (base + j) in
              Layout.stack_set_u vm t (sp + 1) y;
              t.t_pc <- pc + 2;
              Layout.stack_set_u vm t sp (binop op x y);
              t.t_sp <- sp + 1;
              t.t_pc <- pc + 3
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdConstBin (i, n, op) ->
            if fuel - !executed >= 3 then begin
              executed := !executed + 3;
              clock_batch vm 3;
              let sp = t.t_sp in
              let x =
                Layout.stack_get_u vm t (t.t_fp + Rt.frame_header_words + i)
              in
              Layout.stack_set_u vm t sp x;
              Layout.stack_set_u vm t (sp + 1) n;
              t.t_pc <- pc + 2;
              Layout.stack_set_u vm t sp (binop op x n);
              t.t_sp <- sp + 1;
              t.t_pc <- pc + 3
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KBinIf (op, cmp, target) ->
            if fuel - !executed >= 2 then begin
              incr executed;
              clock_instr vm;
              let sp = t.t_sp in
              let y = Layout.stack_get_u vm t (sp - 1) in
              let x = Layout.stack_get_u vm t (sp - 2) in
              t.t_sp <- sp - 2;
              let r = binop op x y in
              incr executed;
              clock_instr vm;
              Layout.stack_set_u vm t (sp - 2) r;
              let a = Layout.stack_get_u vm t (sp - 3) in
              t.t_sp <- sp - 3;
              t.t_pc <-
                (if Bytecode.Instr.eval_cmp cmp a r then target else pc + 2)
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KBinIfz (op, cmp, target) ->
            if fuel - !executed >= 2 then begin
              incr executed;
              clock_instr vm;
              let sp = t.t_sp in
              let y = Layout.stack_get_u vm t (sp - 1) in
              let x = Layout.stack_get_u vm t (sp - 2) in
              t.t_sp <- sp - 2;
              let r = binop op x y in
              incr executed;
              clock_instr vm;
              Layout.stack_set_u vm t (sp - 2) r;
              t.t_pc <-
                (if Bytecode.Instr.eval_cmp cmp r 0 then target else pc + 2)
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdGetfield (i, slot, _) ->
            if fuel - !executed >= 2 then begin
              executed := !executed + 2;
              clock_batch vm 2;
              let sp = t.t_sp in
              let obj =
                Layout.stack_get_u vm t (t.t_fp + Rt.frame_header_words + i)
              in
              Layout.stack_set_u vm t sp obj;
              t.t_pc <- pc + 1;
              check_null obj;
              (match vm.hooks.h_heap_read with
              | Some f -> f vm obj slot
              | None -> ());
              Layout.stack_set_u vm t sp vm.heap.(obj + slot);
              t.t_sp <- sp + 1;
              t.t_pc <- pc + 2
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdStore (i, j) ->
            if fuel - !executed >= 2 then begin
              executed := !executed + 2;
              clock_batch vm 2;
              let base = t.t_fp + Rt.frame_header_words in
              let v = Layout.stack_get_u vm t (base + i) in
              Layout.stack_set_u vm t t.t_sp v;
              Layout.stack_set_u vm t (base + j) v;
              t.t_pc <- pc + 2
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdIf (i, cmp, target) ->
            if fuel - !executed >= 2 then begin
              executed := !executed + 2;
              clock_batch vm 2;
              let sp = t.t_sp in
              let x =
                Layout.stack_get_u vm t (t.t_fp + Rt.frame_header_words + i)
              in
              Layout.stack_set_u vm t sp x;
              let a = Layout.stack_get_u vm t (sp - 1) in
              t.t_sp <- sp - 1;
              t.t_pc <-
                (if Bytecode.Instr.eval_cmp cmp a x then target else pc + 2)
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdIfz (i, cmp, target) ->
            if fuel - !executed >= 2 then begin
              executed := !executed + 2;
              clock_batch vm 2;
              let x =
                Layout.stack_get_u vm t (t.t_fp + Rt.frame_header_words + i)
              in
              Layout.stack_set_u vm t t.t_sp x;
              t.t_pc <-
                (if Bytecode.Instr.eval_cmp cmp x 0 then target else pc + 2)
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdLdIf (i, j, cmp, target) ->
            if fuel - !executed >= 3 then begin
              executed := !executed + 3;
              clock_batch vm 3;
              let base = t.t_fp + Rt.frame_header_words in
              let sp = t.t_sp in
              let x = Layout.stack_get_u vm t (base + i) in
              Layout.stack_set_u vm t sp x;
              let y = Layout.stack_get_u vm t (base + j) in
              Layout.stack_set_u vm t (sp + 1) y;
              t.t_pc <-
                (if Bytecode.Instr.eval_cmp cmp x y then target else pc + 3)
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdConstIf (i, n, cmp, target) ->
            if fuel - !executed >= 3 then begin
              executed := !executed + 3;
              clock_batch vm 3;
              let sp = t.t_sp in
              let x =
                Layout.stack_get_u vm t (t.t_fp + Rt.frame_header_words + i)
              in
              Layout.stack_set_u vm t sp x;
              Layout.stack_set_u vm t (sp + 1) n;
              t.t_pc <-
                (if Bytecode.Instr.eval_cmp cmp x n then target else pc + 3)
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdLdBinIf (i, j, op, cmp, target) ->
            if fuel - !executed >= 4 then begin
              executed := !executed + 3;
              clock_batch vm 3;
              let base = t.t_fp + Rt.frame_header_words in
              let sp = t.t_sp in
              let x = Layout.stack_get_u vm t (base + i) in
              Layout.stack_set_u vm t sp x;
              let y = Layout.stack_get_u vm t (base + j) in
              Layout.stack_set_u vm t (sp + 1) y;
              t.t_pc <- pc + 2;
              let r = binop op x y in
              incr executed;
              clock_instr vm;
              Layout.stack_set_u vm t sp r;
              let a = Layout.stack_get_u vm t (sp - 1) in
              t.t_sp <- sp - 1;
              t.t_pc <-
                (if Bytecode.Instr.eval_cmp cmp a r then target else pc + 4)
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdLdBinIfz (i, j, op, cmp, target) ->
            if fuel - !executed >= 4 then begin
              executed := !executed + 3;
              clock_batch vm 3;
              let base = t.t_fp + Rt.frame_header_words in
              let sp = t.t_sp in
              let x = Layout.stack_get_u vm t (base + i) in
              Layout.stack_set_u vm t sp x;
              let y = Layout.stack_get_u vm t (base + j) in
              Layout.stack_set_u vm t (sp + 1) y;
              t.t_pc <- pc + 2;
              let r = binop op x y in
              incr executed;
              clock_instr vm;
              Layout.stack_set_u vm t sp r;
              t.t_pc <-
                (if Bytecode.Instr.eval_cmp cmp r 0 then target else pc + 4)
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KLdConstBinSt (i, n, op, j) ->
            if fuel - !executed >= 4 then begin
              executed := !executed + 3;
              clock_batch vm 3;
              let base = t.t_fp + Rt.frame_header_words in
              let sp = t.t_sp in
              let x = Layout.stack_get_u vm t (base + i) in
              Layout.stack_set_u vm t sp x;
              Layout.stack_set_u vm t (sp + 1) n;
              t.t_pc <- pc + 2;
              let r = binop op x n in
              incr executed;
              clock_instr vm;
              Layout.stack_set_u vm t sp r;
              Layout.stack_set_u vm t (base + j) r;
              t.t_pc <- pc + 4
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | Rt.KBinSt (op, j) ->
            if fuel - !executed >= 2 then begin
              incr executed;
              clock_instr vm;
              let sp = t.t_sp in
              let y = Layout.stack_get_u vm t (sp - 1) in
              let x = Layout.stack_get_u vm t (sp - 2) in
              t.t_sp <- sp - 2;
              let r = binop op x y in
              incr executed;
              clock_instr vm;
              Layout.stack_set_u vm t (sp - 2) r;
              Layout.stack_set_u vm t
                (t.t_fp + Rt.frame_header_words + j)
                r;
              t.t_pc <- pc + 2
            end
            else begin
              incr executed;
              clock_instr vm;
              dispatch vm t pc code.(pc)
            end
          | ins ->
            incr executed;
            clock_instr vm;
            dispatch vm t pc ins);
          if
            vm.current <> tid || t.t_meth != meth
            || vm.status <> Rt.Running_ || !executed >= fuel
          then live := false
        done
      | hi, ho ->
        (* observed loop: identical event sequence to the one-at-a-time
           path — hooks fire per instruction, in the same order. The hook
           closures and the segment-constant event fields are hoisted; a
           hook attached mid-segment is seen at the next boundary. *)
        let otid = t.tid and ouid = meth.uid in
        let live = ref true in
        while !live do
          let pc = t.t_pc in
          let ins = code.(pc) in
          incr executed;
          (match hi with Some f -> f vm | None -> ());
          (match ho with
          | Some f -> f vm otid ouid pc (Rt.tag_of_cinstr ins)
          | None -> ());
          clock_instr vm;
          dispatch vm t pc ins;
          if
            vm.current <> tid || t.t_meth != meth
            || vm.status <> Rt.Running_ || !executed >= fuel
          then live := false
        done
    done;
    commit ()
  with
  | Rt.Vm_exception name ->
    commit ();
    throw_by_name vm name
  | Heap.Out_of_memory ->
    commit ();
    vm.status <- Rt.Fatal "OutOfMemoryError"
  | Verify.Error msg ->
    commit ();
    vm.status <- Rt.Fatal ("verify: " ^ msg)
  | Compile.Error msg ->
    commit ();
    vm.status <- Rt.Fatal ("compile: " ^ msg)
  | Fatal msg ->
    commit ();
    vm.status <- Rt.Fatal msg
  | e ->
    (* divergence signals etc.: keep the count exact, let it propagate *)
    commit ();
    raise e

(* Create the main thread and queue main-class initialization. *)
let boot (vm : Rt.t) =
  let main_cid = Rt.class_id vm vm.program.main_class in
  let main_uid =
    match Hashtbl.find_opt vm.classes.(main_cid).rc_method_of "main" with
    | Some uid -> uid
    | None -> fatal "no main method in %s" vm.program.main_class
  in
  let main = vm.methods.(main_uid) in
  let cc = Compile.compile vm main in
  let stack_addr = Heap.alloc_stack_array vm ~len:(thread_stack_size vm main cc) in
  let tid = create_thread vm ~name:"main" main ~stack_addr ~args:[||] in
  Sched.ready vm tid;
  Sched.dispatch vm;
  ignore (ensure_initialized vm main_cid);
  vm.status <- Rt.Running_

let run ?limit (vm : Rt.t) =
  let limit = match limit with Some l -> l | None -> vm.cfg.instr_limit in
  while vm.status = Rt.Running_ && vm.stats.n_instr < limit do
    exec_batch vm ~fuel:(limit - vm.stats.n_instr)
  done;
  if vm.status = Rt.Running_ then
    vm.status <- Rt.Fatal (Fmt.str "instruction limit (%d) exceeded" limit)

(* Run at most [fuel] more instructions, leaving the status Running_ when
   the budget elapses mid-program: the job server's cooperative
   deadline/cancellation checks slot between slices. The caller enforces
   any overall instruction limit. *)
let run_slice (vm : Rt.t) ~fuel =
  let stop = vm.stats.n_instr + fuel in
  while vm.status = Rt.Running_ && vm.stats.n_instr < stop do
    exec_batch vm ~fuel:(stop - vm.stats.n_instr)
  done
