(* Native-method registry (the JNI stand-in, paper section 2.5). A native
   takes integer arguments and produces an outcome: an optional integer
   result plus a list of callbacks into VM methods. Natives may consult the
   environment (clock, input) — that is their non-determinism — but must not
   touch the VM heap: DejaVu replays their outcomes without executing them,
   exactly as Jalapeño's JNI design (no direct heap pointers) permits.

   Callbacks are named symbolically here and resolved to method uids when
   the VM is created. *)

type outcome = { result : int option; callbacks : ((string * string) * int array) list }

type spec = {
  name : string;
  arity : int;
  returns : bool;
  fn : Rt.t -> int array -> outcome;
}

let make ~name ~arity ~returns fn = { name; arity; returns; fn }

let value v = { result = Some v; callbacks = [] }

let void = { result = None; callbacks = [] }

(* Resolve a spec against the built VM tables. *)
let resolve (vm_methods : Rt.rmethod array)
    (class_of_name : (string, int) Hashtbl.t) (classes : Rt.rclass array)
    nat_id (s : spec) : Rt.native =
  let resolve_cb (cname, mname) =
    match Hashtbl.find_opt class_of_name cname with
    | None -> invalid_arg ("native callback: unknown class " ^ cname)
    | Some cid -> (
      let rec go cid =
        if cid < 0 then
          invalid_arg ("native callback: unknown method " ^ cname ^ "." ^ mname)
        else
          match Hashtbl.find_opt classes.(cid).rc_method_of mname with
          | Some uid -> uid
          | None -> go classes.(cid).rc_super
      in
      go cid)
  in
  ignore vm_methods;
  {
    Rt.nat_id;
    nat_name = s.name;
    nat_arity = s.arity;
    nat_returns = s.returns;
    nat_fn =
      (fun vm args ->
        let o = s.fn vm args in
        {
          Rt.no_result = o.result;
          no_callbacks =
            List.map (fun (cb, a) -> (resolve_cb cb, a)) o.callbacks;
        });
  }

(* A few stock natives available to all programs. *)
let stock : spec list =
  [
    (* nanoTime-like reading of the environment clock *)
    make ~name:"sys_clock" ~arity:0 ~returns:true (fun vm _ ->
        value (Env.read_clock vm.env));
    (* an environment random number in [0, bound) — via [Env.random] so
       the lazy clock's deferred draws land before this one *)
    make ~name:"sys_random" ~arity:1 ~returns:true (fun vm args ->
        value (Env.random vm.env (max 1 args.(0))));
    (* identity, useful to defeat constant folding in benches *)
    make ~name:"sys_id" ~arity:1 ~returns:true (fun _ args -> value args.(0));
  ]
