(* The method "compiler": lowers a declared method to executable code.

     1. synchronized methods are expanded into explicit monitorenter /
        monitorexit around the body plus a catch-all unlock handler (as javac
        does);
     2. yield points are injected at the method prologue and before every
        backward branch — the Jalapeño discipline that makes preemption,
        GC safe points, and DejaVu's logical clock coincide;
     3. symbolic names are resolved to ids/slots;
     4. the verifier computes reference maps and the operand-stack bound.

   Compilation is charged to the virtual wall clock, so *when* a method gets
   compiled is visible to the environment — one of the cross-optimization
   side effects DejaVu must keep symmetric between record and replay. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

module I = Bytecode.Instr
module D = Bytecode.Decl

type rewrite_result = {
  rw_code : I.t array;
  rw_map : int array; (* old pc -> new anchor pc (for branch targets) *)
  rw_origin : int array; (* new pc -> old pc *)
}

(* Expand each instruction into a list; [anchor] is the index within the
   expansion that old branch targets should map to. Synthesized instructions
   must not carry branch targets. *)
let rewrite (code : I.t array) ~(f : int -> I.t -> I.t list * int) :
    rewrite_result =
  let n = Array.length code in
  let expansions = Array.init n (fun pc -> f pc code.(pc)) in
  let base = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun pc (ins, _) ->
      base.(pc) <- !total;
      total := !total + List.length ins)
    expansions;
  let rw_map = Array.init n (fun pc -> base.(pc) + snd expansions.(pc)) in
  let rw_code = Array.make !total I.Nop in
  let rw_origin = Array.make !total 0 in
  Array.iteri
    (fun pc (ins, _) ->
      List.iteri
        (fun k i ->
          let np = base.(pc) + k in
          rw_origin.(np) <- pc;
          rw_code.(np) <-
            (match I.target i with
            | Some t -> I.map_target (fun _ -> rw_map.(t)) i
            | None -> i))
        ins)
    expansions;
  { rw_code; rw_map; rw_origin }

let remap_handlers (map : int array) n_new (hs : D.handler list) =
  List.map
    (fun (h : D.handler) ->
      {
        D.h_from = map.(h.h_from);
        h_upto = (if h.h_upto >= Array.length map then n_new else map.(h.h_upto));
        h_target = map.(h.h_target);
        h_class = h.h_class;
      })
    hs

(* Pass 1: synchronized-method expansion (source to source). Also returns
   the origin map (new pc -> original pc) for debugger source positions. *)
let expand_sync (m : D.mdecl) : D.mdecl * int array =
  if not m.m_sync then
    (m, Array.init (Array.length m.m_code) (fun i -> i))
  else begin
    let { rw_code; rw_map; rw_origin } =
      rewrite m.m_code ~f:(fun pc ins ->
          let pre = if pc = 0 then [ I.Load 0; I.Monitorenter ] else [] in
          let repl =
            match ins with
            | I.Ret -> [ I.Load 0; I.Monitorexit; I.Ret ]
            | I.Retv -> [ I.Load 0; I.Monitorexit; I.Retv ]
            | _ -> [ ins ]
          in
          (pre @ repl, List.length pre))
    in
    let body_len = Array.length rw_code in
    (* epilogue: catch-all handler that unlocks and rethrows *)
    let code =
      Array.append rw_code [| I.Load 0; I.Monitorexit; I.Throw |]
    in
    let handlers =
      remap_handlers rw_map body_len m.m_handlers
      @ [ { D.h_from = 2; h_upto = body_len; h_target = body_len; h_class = None } ]
    in
    let lines =
      List.map (fun (pc, ln) -> (rw_map.(pc), ln)) m.m_lines
    in
    let last_src = max 0 (Array.length m.m_code - 1) in
    let origin =
      Array.init (Array.length code) (fun pc ->
          if pc < body_len then rw_origin.(pc) else last_src)
    in
    ( { m with m_code = code; m_handlers = handlers; m_lines = lines; m_sync = false },
      origin )
  end

(* Pass 2: yield-point injection (source to source). A yield point goes at
   the prologue and immediately before every backward branch. *)
let inject_yieldpoints (m : D.mdecl) : D.mdecl * int array =
  let { rw_code; rw_map; rw_origin } =
    rewrite m.m_code ~f:(fun pc ins ->
        let backward =
          match I.target ins with Some t -> t <= pc | None -> false
        in
        let pre = if pc = 0 then [ I.Yieldpoint ] else [] in
        let pre = if backward then pre @ [ I.Yieldpoint ] else pre in
        let anchor = List.length pre in
        (pre @ [ ins ], anchor))
  in
  let handlers = remap_handlers rw_map (Array.length rw_code) m.m_handlers in
  let lines = List.map (fun (pc, ln) -> (rw_map.(pc), ln)) m.m_lines in
  ({ m with m_code = rw_code; m_handlers = handlers; m_lines = lines }, rw_origin)

(* Name resolution helpers. *)
let resolve_static_field (vm : Rt.t) cname fname =
  let rec go cid =
    if cid < 0 then error "unresolved static %s.%s" cname fname
    else
      let c = vm.classes.(cid) in
      let found = ref (-1) in
      Array.iteri (fun i (n, _) -> if n = fname then found := i) c.rc_statics;
      if !found >= 0 then
        (cid, c.rc_statics_base + !found, snd c.rc_statics.(!found))
      else go c.rc_super
  in
  go (Rt.class_id vm cname)

let resolve_method (vm : Rt.t) cname mname =
  let rec go cid =
    if cid < 0 then error "unresolved method %s.%s" cname mname
    else
      let c = vm.classes.(cid) in
      match Hashtbl.find_opt c.rc_method_of mname with
      | Some uid -> vm.methods.(uid)
      | None -> go c.rc_super
  in
  go (Rt.class_id vm cname)

let resolve_call (vm : Rt.t) cname mname =
  let m = resolve_method vm cname mname in
  if m.rm_static then `Static m.uid
  else
    let cid = Rt.class_id vm cname in
    match Hashtbl.find_opt vm.classes.(cid).rc_vslot_of mname with
    | Some slot -> `Virtual (cid, slot, m.rm_nargs)
    | None -> error "no vtable slot for %s.%s" cname mname

(* A fresh monomorphic inline cache for one virtual call/spawn site.
   [ic_cid = -1] marks it cold (no receiver class is negative); the method
   field needs a placeholder, so it holds the static resolution through the
   declaring class — validity is decided by the cid match alone. *)
let fresh_ic (vm : Rt.t) cid slot : Rt.ic =
  {
    Rt.ic_cid = -1;
    ic_meth = vm.methods.((Rt.the_class vm cid).rc_vtable.(slot));
    ic_cids = [||];
    ic_meths = [||];
    ic_n = 0;
    ic_mega = [||];
  }

(* Pass 3: 1:1 lowering to resolved instructions. *)
let lower (vm : Rt.t) (owner : Rt.rclass) (ins : I.t) : Rt.cinstr =
  match ins with
  | I.Const n -> KConst n
  | I.Sconst s ->
    let idx = ref (-1) in
    Array.iteri (fun i l -> if l = s then idx := i) owner.rc_string_lits;
    if !idx < 0 then error "string literal not in pool: %S" s;
    KStr (owner, !idx)
  | I.Null -> KNull
  | I.Load i -> KLoad i
  | I.Store i -> KStore i
  | I.Dup -> KDup
  | I.Pop -> KPop
  | I.Swap -> KSwap
  | I.Add -> KBin Badd
  | I.Sub -> KBin Bsub
  | I.Mul -> KBin Bmul
  | I.Div -> KBin Bdiv
  | I.Rem -> KBin Brem
  | I.Neg -> KNeg
  | I.Band -> KBin Band
  | I.Bor -> KBin Bor
  | I.Bxor -> KBin Bxor
  | I.Shl -> KBin Bshl
  | I.Shr -> KBin Bshr
  | I.If (c, t) -> KIf (c, t)
  | I.Ifz (c, t) -> KIfz (c, t)
  | I.Ifnull t -> KIfnull t
  | I.Ifnonnull t -> KIfnonnull t
  | I.Ifrefeq t -> KIfrefeq t
  | I.Ifrefne t -> KIfrefne t
  | I.Goto t -> KGoto t
  | I.New cname -> KNew (Rt.class_id vm cname)
  | I.Getfield (cname, fname) ->
    let c = vm.classes.(Rt.class_id vm cname) in
    (match Hashtbl.find_opt c.rc_field_index fname with
    | Some idx ->
      KGetfield (Layout.header_words + idx, snd c.rc_fields.(idx))
    | None -> error "unresolved field %s.%s" cname fname)
  | I.Putfield (cname, fname) ->
    let c = vm.classes.(Rt.class_id vm cname) in
    (match Hashtbl.find_opt c.rc_field_index fname with
    | Some idx ->
      KPutfield (Layout.header_words + idx, snd c.rc_fields.(idx))
    | None -> error "unresolved field %s.%s" cname fname)
  | I.Getstatic (cname, fname) ->
    let cid, slot, ty = resolve_static_field vm cname fname in
    KGetstatic (cid, slot, ty)
  | I.Putstatic (cname, fname) ->
    let cid, slot, ty = resolve_static_field vm cname fname in
    KPutstatic (cid, slot, ty)
  | I.Newarray ty -> KNewarray ty
  | I.Aload -> KAload
  | I.Astore -> KAstore
  | I.Arraylength -> KArraylength
  | I.Checkcast cname -> KCheckcast (Rt.class_id vm cname)
  | I.Instanceof cname -> KInstanceof (Rt.class_id vm cname)
  | I.Invoke (cname, mname) -> (
    match resolve_call vm cname mname with
    | `Static uid -> KInvokestatic vm.methods.(uid)
    | `Virtual (cid, slot, nargs) ->
      KInvokevirtual (cid, slot, nargs, fresh_ic vm cid slot))
  | I.Ret -> KRet
  | I.Retv -> KRetv
  | I.Throw -> KThrow
  | I.Monitorenter -> KMonitorenter
  | I.Monitorexit -> KMonitorexit
  | I.Wait -> KWait
  | I.Timedwait -> KTimedwait
  | I.Notify -> KNotify
  | I.Notifyall -> KNotifyall
  | I.Spawn (cname, mname) -> (
    match resolve_call vm cname mname with
    | `Static uid -> KSpawnstatic vm.methods.(uid)
    | `Virtual (cid, slot, nargs) ->
      KSpawnvirtual (cid, slot, nargs, fresh_ic vm cid slot))
  | I.Sleep -> KSleep
  | I.Join -> KJoin
  | I.Interrupt -> KInterrupt
  | I.Currenttime -> KCurrenttime
  | I.Readinput -> KReadinput
  | I.Nativecall name -> (
    match Hashtbl.find_opt vm.native_id_of name with
    | Some id -> KNative id
    | None -> error "unregistered native %S" name)
  | I.Print -> KPrint
  | I.Prints -> KPrints
  | I.Halt -> KHalt
  | I.Nop -> KNop
  | I.Yieldpoint -> KYield

let resolve_catch vm = function
  | None -> -1
  | Some cname -> Rt.class_id vm cname

(* Pass 5: superinstruction fusion over the verified stream.

   The hot pairs/triples the workload catalogue actually executes are
   rewritten in place: the superinstruction takes the first constituent's
   slot of a COPY of the code array and the shadow slots behind it keep the
   originals, so pc numbering, branch targets, handler ranges, per-pc
   reference maps, and the source-pc table all stay valid, and a branch
   into the middle of a fused region simply executes the originals one at a
   time. Only the fast dispatch loop fetches from the fused stream; the
   observed loop and the single-stepper keep executing [k_code], which is
   why fused and unfused runs produce identical event streams by
   construction.

   A region never extends across a barrier: a branch target, an
   exception-handler boundary or entry, or an injected yield point (yield
   points cannot match a constituent pattern anyway). This keeps logical-
   clock yield-point deltas and safe-point placement untouched, exactly as
   the record/replay symmetry argument requires. Matching is greedy,
   longest pattern first, and a fused region is consumed whole so regions
   never overlap. *)
let fuse_barriers (code : Rt.cinstr array) (handlers : Rt.rhandler array) =
  let n = Array.length code in
  let barrier = Array.make (n + 1) false in
  let mark t = if t >= 0 && t <= n then barrier.(t) <- true in
  Array.iter
    (fun ins -> match Rt.target_of_cinstr ins with Some t -> mark t | None -> ())
    code;
  Array.iter
    (fun (h : Rt.rhandler) ->
      mark h.k_from;
      mark h.k_upto;
      mark h.k_target)
    handlers;
  barrier

let fuse_code (code : Rt.cinstr array) (handlers : Rt.rhandler array) :
    Rt.cinstr array =
  let n = Array.length code in
  let barrier = fuse_barriers code handlers in
  let fused = Array.copy code in
  (* no constituent after the head may sit on a barrier *)
  let clear pc w =
    pc + w <= n
    &&
    let ok = ref true in
    for k = pc + 1 to pc + w - 1 do
      if barrier.(k) then ok := false
    done;
    !ok
  in
  let pc = ref 0 in
  while !pc < n do
    let p = !pc in
    let at k = code.(p + k) in
    let w =
      if clear p 4 then
        match (at 0, at 1, at 2, at 3) with
        | Rt.KLoad i, Rt.KLoad j, Rt.KBin op, Rt.KIf (c, t) ->
          fused.(p) <- Rt.KLdLdBinIf (i, j, op, c, t);
          4
        | Rt.KLoad i, Rt.KLoad j, Rt.KBin op, Rt.KIfz (c, t) ->
          fused.(p) <- Rt.KLdLdBinIfz (i, j, op, c, t);
          4
        | Rt.KLoad i, Rt.KConst c, Rt.KBin op, Rt.KStore j ->
          fused.(p) <- Rt.KLdConstBinSt (i, c, op, j);
          4
        | _ -> 0
      else 0
    in
    let w =
      if w > 0 then w
      else if clear p 3 then
        match (at 0, at 1, at 2) with
        | Rt.KLoad i, Rt.KLoad j, Rt.KBin op ->
          fused.(p) <- Rt.KLdLdBin (i, j, op);
          3
        | Rt.KLoad i, Rt.KConst c, Rt.KBin op ->
          fused.(p) <- Rt.KLdConstBin (i, c, op);
          3
        | Rt.KLoad i, Rt.KLoad j, Rt.KIf (c, t) ->
          fused.(p) <- Rt.KLdLdIf (i, j, c, t);
          3
        | Rt.KLoad i, Rt.KConst c, Rt.KIf (cmp, t) ->
          fused.(p) <- Rt.KLdConstIf (i, c, cmp, t);
          3
        | _ -> 0
      else 0
    in
    let w =
      if w > 0 then w
      else if clear p 2 then
        match (at 0, at 1) with
        | Rt.KBin op, Rt.KIf (c, t) ->
          fused.(p) <- Rt.KBinIf (op, c, t);
          2
        | Rt.KBin op, Rt.KIfz (c, t) ->
          fused.(p) <- Rt.KBinIfz (op, c, t);
          2
        | Rt.KBin op, Rt.KStore j ->
          fused.(p) <- Rt.KBinSt (op, j);
          2
        | Rt.KLoad i, Rt.KGetfield (slot, ty) ->
          fused.(p) <- Rt.KLdGetfield (i, slot, ty);
          2
        | Rt.KLoad i, Rt.KStore j ->
          fused.(p) <- Rt.KLdStore (i, j);
          2
        | Rt.KLoad i, Rt.KIf (c, t) ->
          fused.(p) <- Rt.KLdIf (i, c, t);
          2
        | Rt.KLoad i, Rt.KIfz (c, t) ->
          fused.(p) <- Rt.KLdIfz (i, c, t);
          2
        | _ -> 1
      else 1
    in
    pc := p + w
  done;
  fused

(* --- tiny-callee inlining (register tier) ----------------------------- *)

(* Source-instruction budget for a callee the register tier may splice
   mid-region. Judged on the declaration, never the compiled body: forcing
   the callee through [compile] here would charge the virtual clock at
   caller-compile time instead of first call, a timeline the stack tier
   does not have. *)
let inline_limit = 12

let tiny (m : Rt.rmethod) =
  let d = m.Rt.rm_decl in
  (not d.D.m_sync)
  && d.D.m_handlers = []
  && Array.length d.D.m_code <= inline_limit

(* The lowering's splice predicate. Static calls inline on size alone;
   virtual calls need a CHA-unique implementation across the declaring
   class and every subclass — vtables are fixed at boot, so the prediction
   is deterministic program structure, not execution state. It is only a
   prediction: the spliced site still dispatches through the shared inline
   cache, so an unforeseen receiver stays correct and merely bails the
   region. *)
let inline_target (vm : Rt.t) (ins : Rt.cinstr) : Rt.rmethod option =
  match ins with
  | Rt.KInvokestatic callee -> if tiny callee then Some callee else None
  | Rt.KInvokevirtual (cid, vslot, _, _) ->
    let target = ref (-1) and unique = ref true in
    Array.iter
      (fun (c : Rt.rclass) ->
        if
          Rt.is_subclass vm ~sub:c.Rt.cid ~sup:cid
          && vslot < Array.length c.Rt.rc_vtable
        then begin
          let uid = c.Rt.rc_vtable.(vslot) in
          if !target = -1 then target := uid
          else if !target <> uid then unique := false
        end)
      vm.Rt.classes;
    if !unique && !target >= 0 && tiny vm.Rt.methods.(!target) then
      Some vm.Rt.methods.(!target)
    else None
  | _ -> None

(* Compile a method: returns the compiled body and charges the clock. *)
let compile (vm : Rt.t) (m : Rt.rmethod) : Rt.compiled =
  match m.rm_compiled with
  | Some c -> c
  | None ->
    let owner = vm.classes.(m.rm_cid) in
    let src, origin_a = expand_sync m.rm_decl in
    let src, origin_b = inject_yieldpoints src in
    let origin = Array.map (fun p -> origin_a.(p)) origin_b in
    let code = Array.map (lower vm owner) src.m_code in
    let handlers =
      Array.of_list
        (List.map
           (fun (h : D.handler) ->
             {
               Rt.k_from = h.h_from;
               k_upto = h.h_upto;
               k_target = h.h_target;
               k_catch = resolve_catch vm h.h_class;
             })
           src.m_handlers)
    in
    let { Verify.maps; max_stack } = Verify.verify vm m code handlers in
    (* fusion runs after verification so the maps describe every pc of the
       canonical stream; with fusion off the fused stream IS the canonical
       one (physical equality), which the identity tests rely on *)
    let fused =
      if vm.cfg.fuse then begin
        let f = fuse_code code handlers in
        if vm.cfg.audit then Verify.check_fusion m code f handlers;
        f
      end
      else code
    in
    (* register-IR lowering also runs on the verified canonical stream;
       the region table is a sidecar indexed by entry pc, so with regir
       off every pc simply stays on the stack tier *)
    let regions =
      if vm.cfg.regir then begin
        try
          let r =
            Regir.lower ~inline:(inline_target vm) ~nlocals:m.rm_nlocals
              ~max_stack code handlers maps
          in
          if vm.cfg.audit then
            Regir.check m code handlers maps ~nlocals:m.rm_nlocals ~max_stack
              r;
          r
        with Regir.Error msg -> error "regir: %s" msg
      end
      else Array.make (Array.length code) None
    in
    let compiled =
      {
        Rt.k_code = code;
        k_fused = fused;
        k_regions = regions;
        k_handlers = handlers;
        k_maps = maps;
        k_max_stack = max_stack;
        k_src_pc = origin;
        k_lines = Array.of_list src.m_lines;
      }
    in
    m.rm_compiled <- Some compiled;
    vm.stats.n_compiled_methods <- vm.stats.n_compiled_methods + 1;
    Env.charge vm.env (Array.length code * vm.env.cfg.compile_cost);
    compiled
