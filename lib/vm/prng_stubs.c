/* SplitMix64 step, kept in C so the per-instruction environment clock
   (Env.tick) pays no Int64 boxing: one load, a handful of register ops,
   one store, no allocation. Must match the historical OCaml Int64
   implementation bit for bit — traces and interleavings depend on the
   stream staying put across versions. */

#include <caml/mlvalues.h>
#include <stdint.h>
#include <string.h>

static uint64_t dv_step(uint64_t *s)
{
  *s += 0x9E3779B97F4A7C15ULL;
  uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/* low 62 bits: what Int64.to_int .. land max_int used to keep */
#define DV_MASK62 0x3FFFFFFFFFFFFFFFULL

CAMLprim value dv_prng_next_bits(value state)
{
  uint64_t s;
  memcpy(&s, Bytes_val(state), sizeof s); /* native-endian, as written */
  uint64_t z = dv_step(&s);
  memcpy(Bytes_val(state), &s, sizeof s);
  return Val_long((long)(z & DV_MASK62));
}

/* Two consecutive bounded draws in one call — Env.tick's jitter and spike
   draws fused so the per-instruction clock pays one stub transition, not
   two. Exactly (int t b1, int t b2) in that order, packed as
   (d1 << 10) | d2; the caller guarantees 0 < b2 <= 1024. */
CAMLprim value dv_prng_pair(value state, value b1, value b2)
{
  uint64_t s;
  memcpy(&s, Bytes_val(state), sizeof s);
  long d1 = (long)(dv_step(&s) & DV_MASK62) % Long_val(b1);
  long d2 = (long)(dv_step(&s) & DV_MASK62) % Long_val(b2);
  memcpy(Bytes_val(state), &s, sizeof s);
  return Val_long((d1 << 10) | d2);
}
