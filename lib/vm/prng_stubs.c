/* SplitMix64 step, kept in C so the per-instruction environment clock
   (Env.tick) pays no Int64 boxing: one load, a handful of register ops,
   one store, no allocation. Must match the historical OCaml Int64
   implementation bit for bit — traces and interleavings depend on the
   stream staying put across versions. */

#include <caml/mlvalues.h>
#include <stdint.h>
#include <string.h>

static uint64_t dv_step(uint64_t *s)
{
  *s += 0x9E3779B97F4A7C15ULL;
  uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/* low 62 bits: what Int64.to_int .. land max_int used to keep */
#define DV_MASK62 0x3FFFFFFFFFFFFFFFULL

CAMLprim value dv_prng_next_bits(value state)
{
  uint64_t s;
  memcpy(&s, Bytes_val(state), sizeof s); /* native-endian, as written */
  uint64_t z = dv_step(&s);
  memcpy(Bytes_val(state), &s, sizeof s);
  return Val_long((long)(z & DV_MASK62));
}

/* Two consecutive bounded draws in one call — Env.tick's jitter and spike
   draws fused so the per-instruction clock pays one stub transition, not
   two. Exactly (int t b1, int t b2) in that order, packed as
   (d1 << 10) | d2; the caller guarantees 0 < b2 <= 1024. */
CAMLprim value dv_prng_pair(value state, value b1, value b2)
{
  uint64_t s;
  memcpy(&s, Bytes_val(state), sizeof s);
  long d1 = (long)(dv_step(&s) & DV_MASK62) % Long_val(b1);
  long d2 = (long)(dv_step(&s) & DV_MASK62) % Long_val(b2);
  memcpy(Bytes_val(state), &s, sizeof s);
  return Val_long((d1 << 10) | d2);
}

/* [n] consecutive Env.tick steps in one call: per instruction the spike
   draw, the jitter draw, the cost accumulation, and the timer-crossing
   test (with its interval draws) happen exactly as n successive ticks
   would, so the PRNG stream, [now], and [next_timer] stay bit-identical
   to per-instruction execution. [buf] is 9 native-endian int64 slots:
     0 now (in/out)   1 next_timer (in/out)   2 base_cost   3 jitter+1
     4 spike_per_mille   5 spike_cost   6 quantum   7 quantum_jitter
     8 mode (bit 0: the spike draw exists, bit 1: the jitter draw exists)
   The mode bits keep deterministic shapes (jitter=0, spike_per_mille=0)
   on their historical stream: an absent knob never draws, not even a
   wasted mod-1. Draw order is spike first, then jitter — the order the
   OCaml sum always evaluated in.
   Returns how many of the n instructions crossed the timer (each such
   instruction latches one preemption request, as in Env.tick). */
CAMLprim value dv_env_tick_batch(value state, value buf, value vn)
{
  uint64_t s;
  int64_t io[9];
  memcpy(&s, Bytes_val(state), sizeof s);
  memcpy(io, Bytes_val(buf), sizeof io);
  int64_t now = io[0], next_timer = io[1];
  long base = (long)io[2], jitter1 = (long)io[3], spm = (long)io[4],
       spike = (long)io[5], quantum = (long)io[6], qjit = (long)io[7],
       mode = (long)io[8];
  /* jitter+1 is a power of two for the default config (jitter 3): the
     bounded draw reduces with a mask instead of a per-tick 64-bit
     division, which otherwise dominates the whole loop */
  long jmask = (jitter1 & (jitter1 - 1)) == 0 ? jitter1 - 1 : -1;
  long n = Long_val(vn), fires = 0;
  for (long k = 0; k < n; k++) {
    long cost = base;
    if (mode & 1) {
      long d1 = (long)(dv_step(&s) & DV_MASK62) % 1000;
      if (d1 < spm) cost += spike;
    }
    if (mode & 2) {
      long d2 = (long)(dv_step(&s) & DV_MASK62);
      cost += jmask >= 0 ? (d2 & jmask) : d2 % jitter1;
    }
    now += cost;
    if (now >= next_timer) {
      fires++;
      while (now >= next_timer) {
        long interval = quantum;
        if (qjit > 0)
          interval += (long)(dv_step(&s) & DV_MASK62) % (2 * qjit) - qjit;
        next_timer += interval > 1 ? interval : 1;
      }
    }
  }
  io[0] = now;
  io[1] = next_timer;
  memcpy(Bytes_val(buf), io, 2 * sizeof(int64_t));
  memcpy(Bytes_val(state), &s, sizeof s);
  return Val_long(fires);
}

/* Forward-scan for the precomputed preemption horizon: run the tick loop
   above on SCRATCH state (the caller passes copies) up to and including
   the first tick that crosses the timer, or [cap] ticks if none does.
   Writes the scan-end now/next_timer back into buf[0..1] and leaves the
   scan-end PRNG state in [state]; returns (ticks_scanned << 1) | fired.
   Every tick strictly before the scan end is fire-free, which is what
   lets Env defer them as a bare counter. */
CAMLprim value dv_env_scan(value state, value buf, value vcap)
{
  uint64_t s;
  int64_t io[9];
  memcpy(&s, Bytes_val(state), sizeof s);
  memcpy(io, Bytes_val(buf), sizeof io);
  int64_t now = io[0], next_timer = io[1];
  long base = (long)io[2], jitter1 = (long)io[3], spm = (long)io[4],
       spike = (long)io[5], quantum = (long)io[6], qjit = (long)io[7],
       mode = (long)io[8];
  long jmask = (jitter1 & (jitter1 - 1)) == 0 ? jitter1 - 1 : -1;
  long cap = Long_val(vcap), n = 0, fired = 0;
  while (n < cap && !fired) {
    n++;
    long cost = base;
    if (mode & 1) {
      long d1 = (long)(dv_step(&s) & DV_MASK62) % 1000;
      if (d1 < spm) cost += spike;
    }
    if (mode & 2) {
      long d2 = (long)(dv_step(&s) & DV_MASK62);
      cost += jmask >= 0 ? (d2 & jmask) : d2 % jitter1;
    }
    now += cost;
    if (now >= next_timer) {
      fired = 1;
      while (now >= next_timer) {
        long interval = quantum;
        if (qjit > 0)
          interval += (long)(dv_step(&s) & DV_MASK62) % (2 * qjit) - qjit;
        next_timer += interval > 1 ? interval : 1;
      }
    }
  }
  io[0] = now;
  io[1] = next_timer;
  memcpy(Bytes_val(buf), io, 2 * sizeof(int64_t));
  memcpy(Bytes_val(state), &s, sizeof s);
  return Val_long((n << 1) | fired);
}
