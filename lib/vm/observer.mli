(** Execution observers: capture or digest the event sequence (one event
    per executed instruction, yield points included). The paper defines
    two executions as identical when their event sequences and per-event
    states agree; observers are how tests and benches check exactly that. *)

type t

(** Attach a rolling-hash observer (cheap; suitable for full runs). *)
val attach_digest : Rt.t -> t

(** Attach a collecting observer keeping up to [max_events] events. The
    cap bounds retention only: [digest] and [count] stay exact past it,
    and [dropped] reports how many events were not kept. *)
val attach_collect : ?max_events:int -> Rt.t -> t

val detach : Rt.t -> unit

(** Rolling hash over every observed event — the same fold for both
    observer kinds, so digests are comparable across them. *)
val digest : t -> int

(** True number of events observed (including any dropped past the cap). *)
val count : t -> int

(** Events a collecting observer saw but did not keep; 0 for digesting. *)
val dropped : t -> int

(** The collected events in execution order; raises on digest observers. *)
val events : t -> Rt.obs list

val pp_obs : Format.formatter -> Rt.obs -> unit
