(** Execution observers: capture or digest the event sequence (one event
    per executed instruction, yield points included). The paper defines
    two executions as identical when their event sequences and per-event
    states agree; observers are how tests and benches check exactly that. *)

type t

(** Attach a rolling-hash observer (cheap; suitable for full runs). *)
val attach_digest : Rt.t -> t

(** Attach a collecting observer keeping up to [max_events] events. The
    cap bounds retention only: [digest] and [count] stay exact past it,
    and [dropped] reports how many events were not kept. *)
val attach_collect : ?max_events:int -> Rt.t -> t

val detach : Rt.t -> unit

(** Rolling hash over every observed event — the same fold for both
    observer kinds, so digests are comparable across them. *)
val digest : t -> int

(** True number of events observed (including any dropped past the cap). *)
val count : t -> int

(** Events a collecting observer saw but did not keep; 0 for digesting. *)
val dropped : t -> int

(** The collected events in execution order; raises on digest observers. *)
val events : t -> Rt.obs list

val pp_obs : Format.formatter -> Rt.obs -> unit

(** Dynamic sharing tracker: a vector-clock happens-before race detector
    (FastTrack-lite) over the heap-access hooks. Locations are concrete
    heap words mapped back to the static analysis's field keys ("C.f" by
    declaring class, "C.f (static)", "[]" for array elements), so dynamic
    race witnesses are directly comparable with [dvrun lint] findings.
    Happens-before comes from program order plus the scheduler's
    synchronization edges (lock release/acquire, spawn, join, interrupt) —
    never from the observed interleaving itself. *)
module Sharing : sig
  type t

  (** Install the tracker, chaining any hooks already present. [skip] is
      the thread-local fast path: field keys for which it returns true
      (e.g. proven thread-local by the static analysis) bypass all
      bookkeeping; skip tables are precomputed per class so the access
      path never calls the predicate. *)
  val attach : ?skip:(string -> bool) -> Rt.t -> t

  (** Restore the hooks captured at attach. *)
  val detach : t -> unit

  (** False once the collector has run: per-word keying is then stale and
      the tracker stops recording. Size the heap to keep test runs
      GC-free. *)
  val valid : t -> bool

  val n_tracked : t -> int

  val n_skipped : t -> int

  (** Field keys with at least one dynamically observed race, sorted. *)
  val racy_keys : t -> string list

  val racy_witness : t -> string -> string option

  (** Field keys with a cross-thread, write-involving access pair left
      unordered by spawn/join/interrupt edges alone (locks deliberately
      not consulted) — the dynamic analogue of the static conflict-pair
      set, and always a superset of [racy_keys]. The property tests pin
      these keys ⊆ [Analysis.Report.conflict_fields]. *)
  val conflict_keys : t -> string list

  val conflict_witness : t -> string -> string option

  (** Field keys touched by two or more distinct threads, sorted. *)
  val shared_keys : t -> string list
end
