(* The thread package: a uniprocessor green-thread scheduler with a FIFO
   ready queue, Java monitor semantics (enter/exit, wait sets, notify), sleep
   and timed wait driven by wall-clock reads, join, and interrupt.

   Everything here is deliberately *ordinary program state*: no randomness,
   no hidden OS state. That is the paper's central cross-optimization
   benefit — because DejaVu replays the whole thread package along with the
   application, monitorenter outcomes, next-thread choices, and notify
   targets reproduce themselves and need no trace records. The only inputs
   are (a) the preemption bit sampled at yield points and (b) the wall-clock
   values read here — both captured by DejaVu as non-deterministic events. *)

(* A scheduling-layer contract violation — today only: an [h_pick] hook chose
   a thread that is not in the ready queue. Raised *before* any scheduler
   mutation, so a caller (the schedule explorer) can treat it as a pruned
   branch and keep the VM. *)
exception Sched_error of string

let illegal_monitor () = raise (Rt.Vm_exception "IllegalMonitorStateException")

(* Instrumentation: monitor ownership edges and cross-thread happens-before
   edges (join completion, interrupt delivery). No-ops unless a listener —
   e.g. the Observer's sharing tracker — installed the hook. *)
let lock_event (vm : Rt.t) acquired (m : Rt.monitor) tid =
  match vm.hooks.h_lock with Some f -> f vm acquired m.m_id tid | None -> ()

let hb_event (vm : Rt.t) from_tid to_tid =
  match vm.hooks.h_hb with Some f -> f vm from_tid to_tid | None -> ()

(* --- monitors ------------------------------------------------------- *)

(* Monitor ids are assigned lazily, in execution order, so they reproduce
   exactly under replay. Id 0 means "no monitor yet". *)
let monitor_of_object (vm : Rt.t) addr =
  let mid = Layout.monitor_of vm addr in
  if mid <> 0 then vm.monitors.(mid)
  else begin
    let mid = vm.n_monitors in
    if mid >= Array.length vm.monitors then begin
      let bigger =
        Array.init
          (2 * Array.length vm.monitors)
          (fun i ->
            if i < vm.n_monitors then vm.monitors.(i)
            else
              {
                Rt.m_id = i;
                m_owner = -1;
                m_count = 0;
                m_entryq = Queue.create ();
                m_waitset = [];
              })
      in
      vm.monitors <- bigger
    end;
    vm.n_monitors <- vm.n_monitors + 1;
    Layout.set_monitor vm addr mid;
    vm.monitors.(mid)
  end

(* --- ready queue and dispatch --------------------------------------- *)

let ready (vm : Rt.t) tid =
  let t = vm.threads.(tid) in
  t.t_state <- Rt.Ready;
  Queue.add tid vm.readyq

(* Push a value onto a parked thread's operand stack (wait results are
   materialized by the waker, before the thread is runnable again). *)
let park_push (vm : Rt.t) (t : Rt.thread) v =
  Layout.stack_set vm t t.t_sp v;
  t.t_sp <- t.t_sp + 1

(* Contend for a monitor on behalf of a parked thread: acquire it if free,
   otherwise queue on the entry list. Used by notify/timeout/interrupt
   wakeups and by blocked monitorenter. *)
let contend (vm : Rt.t) (t : Rt.thread) (m : Rt.monitor) =
  if m.m_owner = -1 then begin
    m.m_owner <- t.tid;
    m.m_count <- t.t_saved_count;
    lock_event vm true m t.tid;
    ready vm t.tid
  end
  else begin
    t.t_state <- Rt.Blocked;
    Queue.add t.tid m.m_entryq
  end

let insert_sleeper (vm : Rt.t) wake tid =
  let rec ins = function
    | [] -> [ (wake, tid) ]
    | (w, id) :: rest as l ->
      if (wake, tid) < (w, id) then (wake, tid) :: l else (w, id) :: ins rest
  in
  vm.sleepers <- ins vm.sleepers

let remove_sleeper (vm : Rt.t) tid =
  vm.sleepers <- List.filter (fun (_, id) -> id <> tid) vm.sleepers

(* Wake a thread whose sleep/timed-wait deadline passed. *)
let wake_sleeper (vm : Rt.t) tid =
  let t = vm.threads.(tid) in
  match t.t_state with
  | Rt.Sleeping -> ready vm tid
  | Rt.Timed_waiting ->
    (* timed out: leave the wait set, push "not interrupted", re-acquire *)
    let m = vm.monitors.(t.t_wait_mon) in
    m.m_waitset <- List.filter (fun id -> id <> tid) m.m_waitset;
    t.t_wait_mon <- -1;
    park_push vm t 0;
    contend vm t m
  | _ -> ()

(* Wake every sleeper due at [now]. *)
let wake_due (vm : Rt.t) now =
  let rec go () =
    match vm.sleepers with
    | (w, tid) :: rest when w <= now ->
      vm.sleepers <- rest;
      wake_sleeper vm tid;
      go ()
    | _ -> ()
  in
  go ()

(* Pick the next thread to run. Reads the wall clock (a recorded event) only
   when there are sleepers — a deterministic condition. Idles the clock
   forward when sleepers are the only runnable-eventually threads. *)
let rec dispatch (vm : Rt.t) =
  if vm.sleepers <> [] then begin
    let now = Rt.read_clock vm Rt.Csched in
    wake_due vm now
  end;
  match Queue.take_opt vm.readyq with
  | Some tid ->
    let tid =
      match vm.hooks.h_pick with
      | None -> tid
      | Some pick ->
        let want = pick vm tid in
        if want = tid then tid
        else if
          not
            (want >= 0
            && want < Array.length vm.threads
            && vm.threads.(want).t_state = Rt.Ready
            && Queue.fold (fun acc t -> acc || t = want) false vm.readyq)
        then begin
          (* invalid choice: restore the FIFO head to the front of the queue
             so the scheduler is exactly as it was when dispatch began, then
             surface a typed error the caller can treat as a pruned branch *)
          let rest = Queue.create () in
          Queue.transfer vm.readyq rest;
          Queue.add tid vm.readyq;
          Queue.transfer rest vm.readyq;
          raise
            (Sched_error (Fmt.str "h_pick chose tid %d which is not ready" want))
        end
        else begin
          (* steer: pull [want] out of the ready queue, put the FIFO choice
             back at the front — the linear cost external replay schemes pay
             for not replaying the thread package *)
          let rest = Queue.create () in
          Queue.transfer vm.readyq rest;
          Queue.add tid vm.readyq;
          let found = ref false in
          Queue.iter
            (fun t -> if t = want && not !found then found := true else Queue.add t vm.readyq)
            rest;
          want
        end
    in
    vm.current <- tid;
    vm.threads.(tid).t_state <- Rt.Running
  | None ->
    if vm.live_threads = 0 then vm.status <- Rt.Finished
    else if vm.sleepers <> [] then begin
      let earliest = fst (List.hd vm.sleepers) in
      let now = Rt.read_clock vm (Rt.Cidle earliest) in
      wake_due vm (max now earliest);
      dispatch vm
    end
    else begin
      vm.current <- -1;
      vm.status <- Rt.Deadlocked
    end

(* Preemptive / voluntary thread switch from a yield point: the current
   thread goes to the back of the ready queue.

   Short-circuit: when the current thread is the only runnable one, no
   sleeper could wake (the clock is only read when sleepers exist, so none
   is read here either), and no scheme hooks the choice (h_pick) or the
   transition (h_switch), the full path would deterministically re-pick the
   same thread — skip the queue round-trip. The hook guards keep record and
   replay symmetric for every scheme: DejaVu and crew/read-log install
   neither hook in either mode, switch-map installs h_switch when recording
   and h_pick when replaying, so both modes take the slow path together. *)
let perform_thread_switch (vm : Rt.t) =
  vm.stats.n_switch <- vm.stats.n_switch + 1;
  let hooked =
    match (vm.hooks.h_pick, vm.hooks.h_switch) with
    | None, None -> false
    | _ -> true
  in
  if (not hooked) && Queue.is_empty vm.readyq && vm.sleepers = [] then ()
  else begin
    let from_tid = vm.current in
    let t = Rt.cur vm in
    ready vm t.tid;
    dispatch vm;
    match vm.hooks.h_switch with
    | Some f -> f vm from_tid vm.current
    | None -> ()
  end

(* Park the current thread in [state] (not runnable) and dispatch. *)
let park (vm : Rt.t) state =
  vm.stats.n_switch <- vm.stats.n_switch + 1;
  let from_tid = vm.current in
  (Rt.cur vm).t_state <- state;
  dispatch vm;
  (match vm.hooks.h_switch with
  | Some f -> f vm from_tid vm.current
  | None -> ())

let terminate_current (vm : Rt.t) =
  let t = Rt.cur vm in
  t.t_state <- Rt.Terminated;
  vm.live_threads <- vm.live_threads - 1;
  List.iter (fun tid -> hb_event vm t.tid tid) t.t_joiners;
  List.iter (fun tid -> ready vm tid) t.t_joiners;
  t.t_joiners <- [];
  if vm.status = Rt.Running_ then begin
    vm.stats.n_switch <- vm.stats.n_switch + 1;
    let from_tid = vm.current in
    dispatch vm;
    match vm.hooks.h_switch with
    | Some f -> f vm from_tid vm.current
    | None -> ()
  end

(* --- blocking operations (called with the current thread's pc already
       advanced past the instruction) -------------------------------- *)

let monitor_enter (vm : Rt.t) addr =
  vm.stats.n_monitor_ops <- vm.stats.n_monitor_ops + 1;
  let m = monitor_of_object vm addr in
  let t = Rt.cur vm in
  if m.m_owner = -1 then begin
    m.m_owner <- t.tid;
    m.m_count <- 1;
    lock_event vm true m t.tid
  end
  else if m.m_owner = t.tid then m.m_count <- m.m_count + 1
  else begin
    t.t_saved_count <- 1;
    Queue.add t.tid m.m_entryq;
    park vm Rt.Blocked
  end

(* Release one recursion level; on full release hand the monitor to the
   first entry-queue thread (deterministic handoff). *)
let monitor_exit (vm : Rt.t) addr =
  vm.stats.n_monitor_ops <- vm.stats.n_monitor_ops + 1;
  let mid = Layout.monitor_of vm addr in
  if mid = 0 then illegal_monitor ();
  let m = vm.monitors.(mid) in
  let t = Rt.cur vm in
  if m.m_owner <> t.tid then illegal_monitor ();
  m.m_count <- m.m_count - 1;
  if m.m_count = 0 then begin
    m.m_owner <- -1;
    lock_event vm false m t.tid;
    match Queue.take_opt m.m_entryq with
    | Some tid ->
      let w = vm.threads.(tid) in
      m.m_owner <- tid;
      m.m_count <- w.t_saved_count;
      lock_event vm true m tid;
      ready vm tid
    | None -> ()
  end

(* Full release for wait: remembers the recursion count and hands off. *)
let release_for_wait (vm : Rt.t) (m : Rt.monitor) (t : Rt.thread) =
  t.t_saved_count <- m.m_count;
  m.m_count <- 0;
  m.m_owner <- -1;
  lock_event vm false m t.tid;
  match Queue.take_opt m.m_entryq with
  | Some tid ->
    let w = vm.threads.(tid) in
    m.m_owner <- tid;
    m.m_count <- w.t_saved_count;
    lock_event vm true m tid;
    ready vm tid
  | None -> ()

(* Ownership pre-check for wait: runs before the interpreter advances pc so
   a raised IllegalMonitorStateException unwinds from the faulting pc. *)
let check_owned (vm : Rt.t) addr =
  let mid = Layout.monitor_of vm addr in
  if mid = 0 then illegal_monitor ();
  if vm.monitors.(mid).m_owner <> (Rt.cur vm).tid then illegal_monitor ()

let do_wait (vm : Rt.t) addr ~timeout_ms =
  vm.stats.n_monitor_ops <- vm.stats.n_monitor_ops + 1;
  let mid = Layout.monitor_of vm addr in
  if mid = 0 then illegal_monitor ();
  let m = vm.monitors.(mid) in
  let t = Rt.cur vm in
  if m.m_owner <> t.tid then illegal_monitor ();
  if t.t_interrupted then begin
    (* interrupted before waiting: don't wait at all *)
    t.t_interrupted <- false;
    park_push vm t 1
  end
  else begin
    m.m_waitset <- m.m_waitset @ [ t.tid ];
    t.t_wait_mon <- m.m_id;
    release_for_wait vm m t;
    match timeout_ms with
    | None -> park vm Rt.Waiting
    | Some ms ->
      let now = Rt.read_clock vm Rt.Csched in
      t.t_wake <- now + Env.millis_to_units vm.env ms;
      insert_sleeper vm t.t_wake t.tid;
      park vm Rt.Timed_waiting
  end

(* Move the first waiter (if any) to monitor contention. *)
let do_notify (vm : Rt.t) addr ~all =
  vm.stats.n_monitor_ops <- vm.stats.n_monitor_ops + 1;
  let mid = Layout.monitor_of vm addr in
  if mid = 0 then illegal_monitor ();
  let m = vm.monitors.(mid) in
  let t = Rt.cur vm in
  if m.m_owner <> t.tid then illegal_monitor ();
  let wake_one tid =
    let w = vm.threads.(tid) in
    if w.t_state = Rt.Timed_waiting then remove_sleeper vm tid;
    w.t_wait_mon <- -1;
    park_push vm w 0;
    contend vm w m
  in
  if all then begin
    let ws = m.m_waitset in
    m.m_waitset <- [];
    List.iter wake_one ws
  end
  else
    match m.m_waitset with
    | [] -> ()
    | tid :: rest ->
      m.m_waitset <- rest;
      wake_one tid

let do_sleep (vm : Rt.t) ms =
  let t = Rt.cur vm in
  if t.t_interrupted then t.t_interrupted <- false (* sleep ends immediately *)
  else if ms <= 0 then begin
    (* sleep(0): voluntary yield *)
    perform_thread_switch vm
  end
  else begin
    let now = Rt.read_clock vm Rt.Csched in
    t.t_wake <- now + Env.millis_to_units vm.env ms;
    insert_sleeper vm t.t_wake t.tid;
    park vm Rt.Sleeping
  end

let do_join (vm : Rt.t) target_tid =
  if target_tid < 0 || target_tid >= vm.n_threads then
    raise (Rt.Vm_exception "NullPointerException");
  let target = vm.threads.(target_tid) in
  if target.t_state = Rt.Terminated then
    (* the dead thread's writes are visible to the joiner right away *)
    hb_event vm target_tid (Rt.cur vm).tid
  else begin
    let t = Rt.cur vm in
    target.t_joiners <- t.tid :: target.t_joiners;
    park vm (Rt.Joining target_tid)
  end

let do_interrupt (vm : Rt.t) target_tid =
  if target_tid < 0 || target_tid >= vm.n_threads then
    raise (Rt.Vm_exception "NullPointerException");
  let w = vm.threads.(target_tid) in
  hb_event vm (Rt.cur vm).tid target_tid;
  match w.t_state with
  | Rt.Waiting | Rt.Timed_waiting ->
    let m = vm.monitors.(w.t_wait_mon) in
    m.m_waitset <- List.filter (fun id -> id <> target_tid) m.m_waitset;
    if w.t_state = Rt.Timed_waiting then remove_sleeper vm target_tid;
    w.t_wait_mon <- -1;
    park_push vm w 1 (* wait reports "interrupted" *);
    contend vm w m
  | Rt.Sleeping ->
    remove_sleeper vm target_tid;
    ready vm target_tid
  | Rt.Terminated -> ()
  | _ -> w.t_interrupted <- true
