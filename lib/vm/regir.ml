(* Register-IR lowering: the post-verify compile tier.

   Verified stack bytecode is translated, per method, into straight-line
   *regions* of register operations ([Rt.rop]) whose operands are explicit
   frame slots. A region starts at any pc the stack tier could branch to
   (entry, barrier) and extends until the next barrier, excluded
   instruction, or terminal (branch / call / return); it is executed by
   [Interp.exec_region] from the fast dispatch loop.

   Parity with the stack tier (DESIGN.md section 7) is preserved the same
   way the fusion pass preserves it, just at a larger granularity:

   - canonical pc numbering, branch targets, handler ranges, reference
     maps, and yield-point placement are untouched ([k_code] stays the
     source of truth; regions are a sidecar indexed by entry pc);
   - every instruction still pays one logical-clock tick, batched per
     *segment* (a maximal fault-free prefix) through [Env.tick_batch],
     which draws the identical PRNG stream;
   - every canonical operand-stack WRITE is materialized — the state
     digest hashes dead stack slots — except when a later write in the
     same fault-free segment overwrites the slot before any possible
     observation point (fault, allocation, hook, region exit). The
     backward liveness pass below treats segment ends as all-slots-live,
     so memory is bit-identical to the stack tier at every point where
     anything could look;
   - instructions that can fault, allocate, or run heap hooks carry their
     canonical pc and fault-time sp and store both before their effect, so
     exception unwinding, GC stack scans, and hooks see exactly the frame
     the stack tier would have shown them.

   Copy propagation tracks, per slot, whether its current value is a known
   constant or a copy of another slot; pure operands read through it (and
   fold) while risky/terminal operands always read their canonical stack
   slots, which the all-live barrier guarantees are materialized. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type klass = Pure | Risky | Terminal | Excluded

(* Pure: cannot fault, allocate, or run hooks — freely reorderable within
   a segment. Risky: segment-final, observable mid-instruction. Terminal:
   region-final control transfer. Everything else (waits, spawns, natives,
   halts, superinstructions) is excluded and dispatched canonically. *)
let classify (ins : Rt.cinstr) : klass =
  match ins with
  | KConst _ | KStr _ | KNull | KLoad _ | KStore _ | KDup | KPop | KSwap
  | KNeg | KInstanceof _ | KPrint | KNop ->
    Pure
  | KBin (Bdiv | Brem) -> Risky
  | KBin _ -> Pure
  | KGetfield _ | KPutfield _ | KGetstatic _ | KPutstatic _ | KNew _
  | KNewarray _ | KAload | KAstore | KArraylength | KCheckcast _ | KPrints ->
    Risky
  (* Monitor ops are segment-final like yields: [Sched] may park the
     thread (contended enter) or raise (exit without ownership), and both
     need canonical frames. On the uncontended fast path nothing switches
     and nothing touches the frame, so the region continues — this is
     what lets a region span a whole synchronized block. *)
  | KMonitorenter | KMonitorexit -> Risky
  (* Yield points are segment-final like risky ops (the preemption bit the
     hook reads must reflect exactly the ticks paid so far), but the region
     continues past them: the interpreter bails out only when the hook
     actually switches threads. This is what lets a region span a whole
     loop iteration — the injected yield before the backward branch no
     longer forces a round-trip through the outer dispatch loop. *)
  | KYield -> Risky
  | KIf _ | KIfz _ | KIfnull _ | KIfnonnull _ | KIfrefeq _ | KIfrefne _
  | KGoto _ | KRet | KRetv | KInvokestatic _ | KInvokevirtual _ ->
    Terminal
  | _ -> Excluded

(* Same barrier set as the fusion pass: branch targets and exception-
   handler boundaries. *)
let barriers (code : Rt.cinstr array) (handlers : Rt.rhandler array) =
  let n = Array.length code in
  let barrier = Array.make (n + 1) false in
  let mark t = if t >= 0 && t <= n then barrier.(t) <- true in
  Array.iter
    (fun ins ->
      match Rt.target_of_cinstr ins with Some t -> mark t | None -> ())
    code;
  Array.iter
    (fun (h : Rt.rhandler) ->
      mark h.k_from;
      mark h.k_upto;
      mark h.k_target)
    handlers;
  barrier

(* Copy-propagation value: what a slot currently holds. [Slot i] at index
   i means "only the slot itself" (no better source known). *)
type src = Const of int | Slot of int

(* Pending write record for the current fault-free run: the op to emit,
   the slots it writes, and the physical slots it reads at execution
   time. *)
type wrec = { w_op : Rt.rop; w_dsts : int list; w_srcs : int list }

(* Constant folding for the non-faulting binops (div/rem are Risky). *)
let eval_bin (op : Rt.bin) a b =
  match op with
  | Rt.Badd -> a + b
  | Rt.Bsub -> a - b
  | Rt.Bmul -> a * b
  | Rt.Band -> a land b
  | Rt.Bor -> a lor b
  | Rt.Bxor -> a lxor b
  | Rt.Bshl -> a lsl (b land 63)
  | Rt.Bshr -> a asr (b land 63)
  | Rt.Bdiv | Rt.Brem -> assert false

exception Abort

(* Lower one region covering [start..last] (inclusive). Returns [None] on
   any internal inconsistency (e.g. unreachable code whose reference maps
   do not match the simulated depth): the pcs then simply stay on the
   stack tier. *)
let lower_region ~nlocals ~nslots ~inline (code : Rt.cinstr array)
    (maps : Rt.refmap array) ~start ~last : Rt.rop array option =
  let avail = Array.init nslots (fun i -> Slot i) in
  let resolve s = avail.(s) in
  (* slot [w] is about to change value: entries equal to its value by way
     of [Slot w] fall back to their own memory (always safe — liveness
     keeps any write that is read) *)
  let kill w =
    for i = 0 to nslots - 1 do
      match avail.(i) with
      | Slot s when s = w && i <> w -> avail.(i) <- Slot i
      | _ -> ()
    done
  in
  let recs = ref [] in
  (* reversed: head = latest *)
  let ops = ref [] in
  (* reversed *)
  let seg = ref 0 in
  (* write [dst := rhs]; skipped when the slot provably already holds the
     value (same-value stores are invisible to the digest) *)
  let emit_write dst rhs ~op ~srcs =
    let same =
      match rhs with Slot s when s = dst -> true | _ -> rhs = avail.(dst)
    in
    if not same then begin
      kill dst;
      recs := { w_op = op; w_dsts = [ dst ]; w_srcs = srcs } :: !recs;
      avail.(dst) <- rhs
    end
  in
  (* write [dst] with a value only known at run time *)
  let emit_self dst op ~srcs =
    kill dst;
    recs := { w_op = op; w_dsts = [ dst ]; w_srcs = srcs } :: !recs;
    avail.(dst) <- Slot dst
  in
  let emit_effect op ~srcs =
    recs := { w_op = op; w_dsts = []; w_srcs = srcs } :: !recs
  in
  (* a risky op writes [dst] at run time *)
  let clobber dst =
    kill dst;
    avail.(dst) <- Slot dst
  in
  (* end the current segment: backward liveness over the pending pure
     writes with everything live at the barrier, then RTick + kept writes
     + the final op *)
  let flush final =
    let live = Array.make nslots true in
    let kept =
      List.filter
        (fun w ->
          let keep =
            w.w_dsts = [] || List.exists (fun d -> live.(d)) w.w_dsts
          in
          if keep then begin
            List.iter (fun d -> live.(d) <- false) w.w_dsts;
            List.iter (fun s -> live.(s) <- true) w.w_srcs
          end;
          keep)
        !recs
    in
    recs := [];
    if !seg > 0 then ops := Rt.RTick !seg :: !ops;
    List.iter (fun w -> ops := w.w_op :: !ops) (List.rev kept);
    (match final with Some f -> ops := f :: !ops | None -> ());
    seg := 0
  in
  let depth = ref maps.(start).Rt.map_depth in
  try
    for p = start to last do
      if maps.(p).Rt.map_depth <> !depth then raise Abort;
      if !depth < 0 || nlocals + !depth > nslots then raise Abort;
      incr seg;
      (* slot k-th from the top of the operand stack; [sl 0] = first free.
         Verified *reachable* code never steps outside the frame, but the
         verifier also maps unreachable pcs, whose depths can be anything
         — lowering must stay total, so any out-of-range slot aborts the
         region instead of trusting the map. *)
      let sl k =
        let s = nlocals + !depth - k in
        if s < 0 || s >= nslots then raise Abort;
        s
      in
      (* sp-valued operand: one past the top slot is in range *)
      let spv k =
        let s = nlocals + !depth - k in
        if s < 0 || s > nslots then raise Abort;
        s
      in
      (match code.(p) with
      (* --- pure ------------------------------------------------------ *)
      | Rt.KConst n ->
        emit_write (sl 0) (Const n) ~op:(Rt.RConst (sl 0, n)) ~srcs:[];
        incr depth
      | Rt.KNull ->
        emit_write (sl 0) (Const 0) ~op:(Rt.RConst (sl 0, 0)) ~srcs:[];
        incr depth
      | Rt.KStr (owner, idx) ->
        emit_self (sl 0) (Rt.RStr (sl 0, owner, idx)) ~srcs:[];
        incr depth
      | Rt.KLoad i ->
        if i < 0 || i >= nslots then raise Abort;
        let dst = sl 0 in
        (match resolve i with
        | Const c -> emit_write dst (Const c) ~op:(Rt.RConst (dst, c)) ~srcs:[]
        | Slot s -> emit_write dst (Slot s) ~op:(Rt.RMove (dst, s)) ~srcs:[ s ]);
        incr depth
      | Rt.KStore i ->
        if i < 0 || i >= nslots then raise Abort;
        (match resolve (sl 1) with
        | Const c -> emit_write i (Const c) ~op:(Rt.RConst (i, c)) ~srcs:[]
        | Slot s -> emit_write i (Slot s) ~op:(Rt.RMove (i, s)) ~srcs:[ s ]);
        decr depth
      | Rt.KDup ->
        let dst = sl 0 in
        (match resolve (sl 1) with
        | Const c -> emit_write dst (Const c) ~op:(Rt.RConst (dst, c)) ~srcs:[]
        | Slot s -> emit_write dst (Slot s) ~op:(Rt.RMove (dst, s)) ~srcs:[ s ]);
        incr depth
      | Rt.KPop -> decr depth
      | Rt.KSwap ->
        (* new top-1 := old top, new top := old top-1. The two writes of
           one canonical instruction execute back to back, so order them
           read-before-overwrite; a true memory exchange falls back to the
           RSwapMem primitive. *)
        let lo = sl 2 and hi = sl 1 in
        let r_lo = resolve hi (* value for [lo] *)
        and r_hi = resolve lo in
        let noop_lo = match r_lo with Slot s -> s = lo | _ -> r_lo = avail.(lo)
        and noop_hi =
          match r_hi with Slot s -> s = hi | _ -> r_hi = avail.(hi)
        in
        if noop_lo && noop_hi then ()
        else if
          (match r_lo with Slot s -> s = hi | _ -> false)
          && (match r_hi with Slot s -> s = lo | _ -> false)
        then begin
          kill lo;
          kill hi;
          recs :=
            { w_op = Rt.RSwapMem (lo, hi); w_dsts = [ lo; hi ];
              w_srcs = [ lo; hi ] }
            :: !recs;
          avail.(lo) <- Slot lo;
          avail.(hi) <- Slot hi
        end
        else begin
          let one dst rhs =
            match rhs with
            | Const c -> emit_write dst (Const c) ~op:(Rt.RConst (dst, c)) ~srcs:[]
            | Slot s -> emit_write dst (Slot s) ~op:(Rt.RMove (dst, s)) ~srcs:[ s ]
          in
          (* if [hi]'s new value reads [lo], write it first *)
          if match r_hi with Slot s -> s = lo | _ -> false then begin
            one hi r_hi;
            one lo r_lo
          end
          else begin
            one lo r_lo;
            one hi r_hi
          end
        end
      | Rt.KBin ((Rt.Bdiv | Rt.Brem) as op) ->
        (* risky: division can fault *)
        ignore (sl 1);
        let dst = sl 2 in
        flush (Some (Rt.RDivRem (op, p, dst)));
        clobber dst;
        decr depth
      | Rt.KBin op ->
        let b = resolve (sl 1) and a = resolve (sl 2) in
        let dst = sl 2 in
        (match (a, b) with
        | Const x, Const y ->
          let v = eval_bin op x y in
          emit_write dst (Const v) ~op:(Rt.RConst (dst, v)) ~srcs:[]
        | Slot s, Const y -> emit_self dst (Rt.RBinC (op, dst, s, y)) ~srcs:[ s ]
        | Const x, Slot s -> emit_self dst (Rt.RBinCL (op, dst, x, s)) ~srcs:[ s ]
        | Slot sa, Slot sb ->
          emit_self dst (Rt.RBin (op, dst, sa, sb)) ~srcs:[ sa; sb ]);
        decr depth
      | Rt.KNeg ->
        let dst = sl 1 in
        (match resolve dst with
        | Const c ->
          emit_write dst (Const (-c)) ~op:(Rt.RConst (dst, -c)) ~srcs:[]
        | Slot s -> emit_self dst (Rt.RNeg (dst, s)) ~srcs:[ s ])
      | Rt.KInstanceof cid ->
        let dst = sl 1 in
        (match resolve dst with
        | Const 0 -> emit_write dst (Const 0) ~op:(Rt.RConst (dst, 0)) ~srcs:[]
        | Slot s when s <> dst ->
          emit_self dst (Rt.RInstanceof (dst, cid, s)) ~srcs:[ s ]
        | _ -> emit_self dst (Rt.RInstanceof (dst, cid, dst)) ~srcs:[ dst ])
      | Rt.KPrint ->
        emit_effect (Rt.RPrint (sl 1)) ~srcs:[ sl 1 ];
        decr depth
      | Rt.KNop -> ()
      (* --- risky ------------------------------------------------------ *)
      | Rt.KGetfield (slot, _) ->
        let os = sl 1 in
        flush (Some (Rt.RGetfield (slot, p, os)));
        clobber os
      | Rt.KPutfield (slot, _) ->
        ignore (sl 1);
        flush (Some (Rt.RPutfield (slot, p, sl 2)));
        depth := !depth - 2
      | Rt.KGetstatic (cid, g, _) ->
        let dst = sl 0 in
        flush (Some (Rt.RGetstatic (cid, g, p, dst)));
        clobber dst;
        incr depth
      | Rt.KPutstatic (cid, g, _) ->
        flush (Some (Rt.RPutstatic (cid, g, p, sl 1)));
        decr depth
      | Rt.KNew cid ->
        let dst = sl 0 in
        flush (Some (Rt.RNewobj (cid, p, dst)));
        clobber dst;
        incr depth
      | Rt.KNewarray ty ->
        let dst = sl 1 in
        flush (Some (Rt.RNewarray (Bytecode.Instr.is_ref_ty ty, p, dst)));
        clobber dst
      | Rt.KAload ->
        ignore (sl 1);
        let dst = sl 2 in
        flush (Some (Rt.RAload (p, dst)));
        clobber dst;
        decr depth
      | Rt.KAstore ->
        ignore (sl 1);
        flush (Some (Rt.RAstore (p, sl 3)));
        depth := !depth - 3
      | Rt.KArraylength ->
        let dst = sl 1 in
        flush (Some (Rt.RArraylength (p, dst)));
        clobber dst
      | Rt.KCheckcast cid -> flush (Some (Rt.RCheckcast (cid, p, sl 1)))
      | Rt.KPrints ->
        flush (Some (Rt.RPrints (p, sl 1)));
        decr depth
      | Rt.KYield ->
        (* full barrier: the hook may switch threads, and a canonical
           resume at p + 1 must find every slot materialized. [avail]
           survives — if no switch happens nothing has touched the frame,
           and if one does the rest of the region never runs. *)
        flush (Some (Rt.RYield (p + 1, spv 0)))
      | Rt.KMonitorenter ->
        (* same barrier discipline as a yield: contention parks the
           thread, so every slot must be canonical; the uncontended path
           leaves the frame untouched and [avail] survives *)
        flush (Some (Rt.RMonEnter (p + 1, sl 1)));
        decr depth
      | Rt.KMonitorexit ->
        flush (Some (Rt.RMonExit (p + 1, sl 1)));
        decr depth
      (* --- terminals -------------------------------------------------- *)
      | Rt.KIf (c, tgt) ->
        ignore (sl 1);
        flush (Some (Rt.RIf (c, tgt, p + 1, sl 2)));
        depth := !depth - 2
      | Rt.KIfz (c, tgt) ->
        flush (Some (Rt.RIfz (c, tgt, p + 1, sl 1)));
        decr depth
      | Rt.KIfnull tgt ->
        flush (Some (Rt.RIfz (Bytecode.Instr.Eq, tgt, p + 1, sl 1)));
        decr depth
      | Rt.KIfnonnull tgt ->
        flush (Some (Rt.RIfz (Bytecode.Instr.Ne, tgt, p + 1, sl 1)));
        decr depth
      | Rt.KIfrefeq tgt ->
        ignore (sl 1);
        flush (Some (Rt.RIf (Bytecode.Instr.Eq, tgt, p + 1, sl 2)));
        depth := !depth - 2
      | Rt.KIfrefne tgt ->
        ignore (sl 1);
        flush (Some (Rt.RIf (Bytecode.Instr.Ne, tgt, p + 1, sl 2)));
        depth := !depth - 2
      | Rt.KGoto tgt -> flush (Some (Rt.RGoto (tgt, spv 0)))
      | Rt.KRet -> flush (Some (Rt.RRet (p, spv 0)))
      | Rt.KRetv ->
        flush (Some (Rt.RRetv (p, sl 1)));
        decr depth
      | Rt.KInvokestatic callee when p = last ->
        flush (Some (Rt.RCallStatic (callee, p, spv 0)))
      | Rt.KInvokestatic callee ->
        (* mid-region: only reachable when the greedy scan extended past
           this call because [inline] predicted a tiny callee *)
        (match inline code.(p) with
        | None -> raise Abort
        | Some m ->
          let ss = spv 0 in
          let nargs = callee.Rt.rm_nargs in
          if ss - nargs < 0 then raise Abort;
          flush (Some (Rt.RInlineStatic (callee, p, ss)));
          (* the callee frame lands on the arg slots and everything above;
             the return value (if any) comes back in the first of them *)
          for s = ss - nargs to nslots - 1 do
            clobber s
          done;
          depth := !depth - nargs + (if Rt.returns m then 1 else 0))
      | Rt.KInvokevirtual (_, vslot, nargs, ic) when p = last ->
        let ss = spv 0 in
        if ss - nargs < 0 || ss - nargs >= nslots then raise Abort;
        flush (Some (Rt.RCallVirtual (vslot, nargs, ic, p, ss)))
      | Rt.KInvokevirtual (_, vslot, nargs, ic) -> (
        match inline code.(p) with
        | None -> raise Abort
        | Some m ->
          let ss = spv 0 in
          if ss - nargs < 0 || ss - nargs >= nslots then raise Abort;
          flush (Some (Rt.RInlineVirtual (vslot, nargs, ic, p, ss)));
          for s = ss - nargs to nslots - 1 do
            clobber s
          done;
          depth := !depth - nargs + (if Rt.returns m then 1 else 0))
      | _ -> raise Abort)
    done;
    (* fall-through exit unless a terminal already stored pc/sp *)
    (match classify code.(last) with
    | Terminal -> ()
    | _ ->
      let ss = nlocals + !depth in
      if ss < 0 || ss > nslots then raise Abort;
      flush (Some (Rt.REnd (last + 1, ss))));
    Some (Array.of_list (List.rev !ops))
  with Abort -> None

(* Greedy region construction, mirroring the fusion pass: walk the code,
   open a region at every includable pc, extend to the next barrier /
   excluded instruction / terminal, and keep it when it covers at least
   two instructions. [inline] is the compiler's tiny-callee predicate: a
   call it accepts is treated as region-continuing (spliced at run time
   behind the usual frame push and IC guard) instead of region-final, so
   hot loops with small helper calls chain region-to-region. *)
let lower ?(inline = fun (_ : Rt.cinstr) -> None) ~nlocals ~max_stack
    (code : Rt.cinstr array) (handlers : Rt.rhandler array)
    (maps : Rt.refmap array) : Rt.region option array =
  let n = Array.length code in
  let nslots = nlocals + max_stack in
  let regions = Array.make n None in
  let barrier = barriers code handlers in
  let pc = ref 0 in
  while !pc < n do
    let start = !pc in
    if classify code.(start) = Excluded then incr pc
    else begin
      let last = ref start in
      let scan = ref true in
      while !scan do
        if classify code.(!last) = Terminal && inline code.(!last) = None then
          scan := false
        else
          let q = !last + 1 in
          if q < n && (not barrier.(q)) && classify code.(q) <> Excluded then
            last := q
          else scan := false
      done;
      let count = !last - start + 1 in
      if count >= 2 then begin
        (match
           lower_region ~nlocals ~nslots ~inline code maps ~start ~last:!last
         with
        | Some r_ops -> regions.(start) <- Some { Rt.r_n = count; r_ops }
        | None -> ());
        pc := !last + 1
      end
      else incr pc
    end
  done;
  regions

(* ------------------------------------------------------------- audit *)

(* Static audit run after lowering (the regir analogue of
   [Verify.check_fusion]): every region must cover only includable,
   barrier-free pcs, pay exactly one tick per covered instruction, carry
   canonical pcs and fault-time sp slots that agree with the reference
   maps, and agree with [k_code] operand-for-operand — including physical
   equality of the shared inline-cache cells. *)
let check (m : Rt.rmethod) (code : Rt.cinstr array)
    (handlers : Rt.rhandler array) (maps : Rt.refmap array) ~nlocals
    ~max_stack (regions : Rt.region option array) =
  let n = Array.length code in
  let name = m.Rt.rm_name in
  if Array.length regions <> n then
    error "%s: region table has %d entries for %d instructions" name
      (Array.length regions) n;
  let barrier = barriers code handlers in
  let nslots = nlocals + max_stack in
  let depth_at pc = maps.(pc).Rt.map_depth in
  let slot_ok s = s >= 0 && s < nslots in
  Array.iteri
    (fun entry reg ->
      match reg with
      | None -> ()
      | Some r ->
        let fin = entry + r.Rt.r_n - 1 in
        if r.Rt.r_n < 2 || fin >= n then
          error "%s: region at %d covers %d instructions (code length %d)"
            name entry r.Rt.r_n n;
        (* calls spliced inline are the one legitimate mid-region terminal:
           collect their pcs so the coverage walk below can tell them from
           a control transfer the lowering failed to end the region at *)
        let inline_pcs =
          Array.to_list r.Rt.r_ops
          |> List.filter_map (function
               | Rt.RInlineStatic (_, p, _) | Rt.RInlineVirtual (_, _, _, p, _)
                 ->
                 Some p
               | _ -> None)
        in
        for p = entry to fin do
          if p > entry && barrier.(p) then
            error "%s: region at %d crosses a barrier at %d" name entry p;
          (match classify code.(p) with
          | Excluded ->
            error "%s: region at %d covers excluded instruction at %d" name
              entry p
          | Terminal when p < fin && not (List.mem p inline_pcs) ->
            error "%s: region at %d has a terminal mid-region at %d" name
              entry p
          | Terminal when p = fin && List.mem p inline_pcs ->
            error "%s: region at %d ends in an inline splice at %d" name
              entry p
          | _ -> ())
        done;
        let nops = Array.length r.Rt.r_ops in
        if nops = 0 then error "%s: empty region at %d" name entry;
        let ticks = ref 0 in
        Array.iteri
          (fun i op ->
            let is_last = i = nops - 1 in
            let pc_in p =
              if p < entry || p > fin then
                error "%s: region at %d references pc %d outside [%d,%d]"
                  name entry p entry fin
            in
            let want_final what =
              if not is_last then
                error "%s: region at %d has %s before the last op" name entry
                  what
            in
            let slots l =
              List.iter
                (fun s ->
                  if not (slot_ok s) then
                    error "%s: region at %d uses slot %d outside 0..%d" name
                      entry s (nslots - 1))
                l
            in
            (* sp-valued fields point one past the top slot, so the full
               stack is the inclusive bound *)
            let sp_slot s =
              if s < 0 || s > nslots then
                error "%s: region at %d carries sp slot %d outside 0..%d"
                  name entry s nslots
            in
            let want_sp p s ~delta =
              if s <> nlocals + depth_at p + delta then
                error
                  "%s: region at %d: op at pc %d carries sp slot %d, maps \
                   say %d"
                  name entry p s
                  (nlocals + depth_at p + delta)
            in
            match op with
            | Rt.RTick k ->
              if k <= 0 then error "%s: non-positive tick in region at %d" name entry;
              ticks := !ticks + k
            | Rt.RConst (d, _) -> slots [ d ]
            | Rt.RMove (d, s) | Rt.RNeg (d, s) -> slots [ d; s ]
            | Rt.RStr (d, _, _) -> slots [ d ]
            | Rt.RBin (_, d, a, b) -> slots [ d; a; b ]
            | Rt.RBinC (_, d, a, _) -> slots [ d; a ]
            | Rt.RBinCL (_, d, _, b) -> slots [ d; b ]
            | Rt.RSwapMem (a, b) -> slots [ a; b ]
            | Rt.RInstanceof (d, _, s) -> slots [ d; s ]
            | Rt.RPrint s -> slots [ s ]
            | Rt.RDivRem (op, p, d) ->
              pc_in p;
              slots [ d; d + 1 ];
              want_sp p d ~delta:(-2);
              (match code.(p) with
              | Rt.KBin ((Rt.Bdiv | Rt.Brem) as op') when op' = op -> ()
              | _ -> error "%s: RDivRem at pc %d mismatches code" name p)
            | Rt.RGetfield (slot, p, os) ->
              pc_in p;
              slots [ os ];
              want_sp p os ~delta:(-1);
              (match code.(p) with
              | Rt.KGetfield (slot', _) when slot' = slot -> ()
              | _ -> error "%s: RGetfield at pc %d mismatches code" name p)
            | Rt.RPutfield (slot, p, os) ->
              pc_in p;
              slots [ os; os + 1 ];
              want_sp p os ~delta:(-2);
              (match code.(p) with
              | Rt.KPutfield (slot', _) when slot' = slot -> ()
              | _ -> error "%s: RPutfield at pc %d mismatches code" name p)
            | Rt.RGetstatic (cid, g, p, d) ->
              pc_in p;
              slots [ d ];
              want_sp p d ~delta:0;
              (match code.(p) with
              | Rt.KGetstatic (cid', g', _) when cid' = cid && g' = g -> ()
              | _ -> error "%s: RGetstatic at pc %d mismatches code" name p)
            | Rt.RPutstatic (cid, g, p, v) ->
              pc_in p;
              slots [ v ];
              want_sp p v ~delta:(-1);
              (match code.(p) with
              | Rt.KPutstatic (cid', g', _) when cid' = cid && g' = g -> ()
              | _ -> error "%s: RPutstatic at pc %d mismatches code" name p)
            | Rt.RNewobj (cid, p, d) ->
              pc_in p;
              slots [ d ];
              want_sp p d ~delta:0;
              (match code.(p) with
              | Rt.KNew cid' when cid' = cid -> ()
              | _ -> error "%s: RNewobj at pc %d mismatches code" name p)
            | Rt.RNewarray (is_ref, p, d) ->
              pc_in p;
              slots [ d ];
              want_sp p d ~delta:(-1);
              (match code.(p) with
              | Rt.KNewarray ty when Bytecode.Instr.is_ref_ty ty = is_ref -> ()
              | _ -> error "%s: RNewarray at pc %d mismatches code" name p)
            | Rt.RAload (p, a) ->
              pc_in p;
              slots [ a; a + 1 ];
              want_sp p a ~delta:(-2);
              (match code.(p) with
              | Rt.KAload -> ()
              | _ -> error "%s: RAload at pc %d mismatches code" name p)
            | Rt.RAstore (p, a) ->
              pc_in p;
              slots [ a; a + 1; a + 2 ];
              want_sp p a ~delta:(-3);
              (match code.(p) with
              | Rt.KAstore -> ()
              | _ -> error "%s: RAstore at pc %d mismatches code" name p)
            | Rt.RArraylength (p, a) ->
              pc_in p;
              slots [ a ];
              want_sp p a ~delta:(-1);
              (match code.(p) with
              | Rt.KArraylength -> ()
              | _ -> error "%s: RArraylength at pc %d mismatches code" name p)
            | Rt.RCheckcast (cid, p, o) ->
              pc_in p;
              slots [ o ];
              want_sp p o ~delta:(-1);
              (match code.(p) with
              | Rt.KCheckcast cid' when cid' = cid -> ()
              | _ -> error "%s: RCheckcast at pc %d mismatches code" name p)
            | Rt.RPrints (p, s) ->
              pc_in p;
              slots [ s ];
              want_sp p s ~delta:(-1);
              (match code.(p) with
              | Rt.KPrints -> ()
              | _ -> error "%s: RPrints at pc %d mismatches code" name p)
            | Rt.RYield (npc, s) ->
              let p = npc - 1 in
              pc_in p;
              sp_slot s;
              want_sp p s ~delta:0;
              (match code.(p) with
              | Rt.KYield -> ()
              | _ -> error "%s: RYield at pc %d mismatches code" name p)
            | Rt.RMonEnter (npc, o) ->
              let p = npc - 1 in
              pc_in p;
              slots [ o ];
              want_sp p o ~delta:(-1);
              (match code.(p) with
              | Rt.KMonitorenter -> ()
              | _ -> error "%s: RMonEnter at pc %d mismatches code" name p)
            | Rt.RMonExit (npc, o) ->
              let p = npc - 1 in
              pc_in p;
              slots [ o ];
              want_sp p o ~delta:(-1);
              (match code.(p) with
              | Rt.KMonitorexit -> ()
              | _ -> error "%s: RMonExit at pc %d mismatches code" name p)
            | Rt.RInlineStatic (callee, p, s) ->
              pc_in p;
              sp_slot s;
              want_sp p s ~delta:0;
              if s - callee.Rt.rm_nargs < 0 then
                error "%s: RInlineStatic at pc %d underflows the frame" name p;
              (match code.(p) with
              | Rt.KInvokestatic callee' when callee' == callee -> ()
              | _ -> error "%s: RInlineStatic at pc %d mismatches code" name p)
            | Rt.RInlineVirtual (vslot, nargs, ic, p, s) ->
              pc_in p;
              sp_slot s;
              slots [ s - nargs ];
              want_sp p s ~delta:0;
              (match code.(p) with
              | Rt.KInvokevirtual (_, vslot', nargs', ic')
                when vslot' = vslot && nargs' = nargs && ic' == ic ->
                ()
              | _ ->
                error
                  "%s: RInlineVirtual at pc %d mismatches code (the inline \
                   cache must be the same cell as the stack tier's)"
                  name p)
            | Rt.RIf (c, tgt, fall, a) ->
              want_final "a branch";
              let p = fall - 1 in
              pc_in p;
              slots [ a; a + 1 ];
              want_sp p a ~delta:(-2);
              (match code.(p) with
              | Rt.KIf (c', tgt') when c' = c && tgt' = tgt -> ()
              | Rt.KIfrefeq tgt' when c = Bytecode.Instr.Eq && tgt' = tgt -> ()
              | Rt.KIfrefne tgt' when c = Bytecode.Instr.Ne && tgt' = tgt -> ()
              | _ -> error "%s: RIf at pc %d mismatches code" name p)
            | Rt.RIfz (c, tgt, fall, a) ->
              want_final "a branch";
              let p = fall - 1 in
              pc_in p;
              slots [ a ];
              want_sp p a ~delta:(-1);
              (match code.(p) with
              | Rt.KIfz (c', tgt') when c' = c && tgt' = tgt -> ()
              | Rt.KIfnull tgt' when c = Bytecode.Instr.Eq && tgt' = tgt -> ()
              | Rt.KIfnonnull tgt' when c = Bytecode.Instr.Ne && tgt' = tgt ->
                ()
              | _ -> error "%s: RIfz at pc %d mismatches code" name p)
            | Rt.RGoto (tgt, s) ->
              want_final "a goto";
              sp_slot s;
              want_sp fin s ~delta:0;
              (match code.(fin) with
              | Rt.KGoto tgt' when tgt' = tgt -> ()
              | _ -> error "%s: RGoto mismatches code at pc %d" name fin)
            | Rt.RRet (p, s) ->
              want_final "a return";
              pc_in p;
              sp_slot s;
              want_sp p s ~delta:0;
              (match code.(p) with
              | Rt.KRet -> ()
              | _ -> error "%s: RRet at pc %d mismatches code" name p)
            | Rt.RRetv (p, v) ->
              want_final "a return";
              pc_in p;
              slots [ v ];
              want_sp p v ~delta:(-1);
              (match code.(p) with
              | Rt.KRetv -> ()
              | _ -> error "%s: RRetv at pc %d mismatches code" name p)
            | Rt.RCallStatic (callee, p, s) ->
              want_final "a call";
              pc_in p;
              sp_slot s;
              want_sp p s ~delta:0;
              (match code.(p) with
              | Rt.KInvokestatic callee' when callee' == callee -> ()
              | _ -> error "%s: RCallStatic at pc %d mismatches code" name p)
            | Rt.RCallVirtual (vslot, nargs, ic, p, s) ->
              want_final "a call";
              pc_in p;
              sp_slot s;
              slots [ s - nargs ];
              want_sp p s ~delta:0;
              (match code.(p) with
              | Rt.KInvokevirtual (_, vslot', nargs', ic')
                when vslot' = vslot && nargs' = nargs && ic' == ic ->
                ()
              | _ ->
                error
                  "%s: RCallVirtual at pc %d mismatches code (the inline \
                   cache must be the same cell as the stack tier's)"
                  name p)
            | Rt.REnd (xpc, s) ->
              want_final "a region end";
              if xpc <> fin + 1 then
                error "%s: REnd at region %d exits to %d, expected %d" name
                  entry xpc (fin + 1);
              sp_slot s;
              if xpc < n && s <> nlocals + depth_at xpc then
                error "%s: REnd at region %d carries sp slot %d, maps say %d"
                  name entry s
                  (nlocals + depth_at xpc))
          r.Rt.r_ops;
        if !ticks <> r.Rt.r_n then
          error "%s: region at %d pays %d ticks for %d instructions" name
            entry !ticks r.Rt.r_n;
        match r.Rt.r_ops.(nops - 1) with
        | Rt.RIf _ | Rt.RIfz _ | Rt.RGoto _ | Rt.RRet _ | Rt.RRetv _
        | Rt.RCallStatic _ | Rt.RCallVirtual _ | Rt.REnd _ ->
          ()
        | _ ->
          error "%s: region at %d does not end in a terminal or REnd" name
            entry)
    regions
