(* Whole-machine checkpoints: a deep copy of every piece of mutable VM
   state, restorable in place (the Rt.t record identity is preserved so
   installed hook closures stay valid).

   This is the mechanism behind checkpoint-accelerated time travel in the
   debugger — the replay-platform rendition of the checkpoint/re-execute
   reverse debuggers the paper discusses in section 5 (Igor, Recap, PPD,
   Boothe): instead of forking processes, a deterministic replayer only
   needs periodic snapshots plus re-execution from the nearest one.

   It is also the reset mechanism behind the farm's warm shards: a baseline
   saved immediately after Vm.create is restored between jobs (plus a hook
   reinstall and an Env reseed — see Vm.reset), which replaces the per-job
   cold boot with a blit of the 4-word creation heap prefix.

   Compiled code is split by the checkpoint line. Methods compiled BEFORE
   the save stay compiled across a restore — keeping the code cache warm
   (with its superinstruction streams and inline caches) is the point of a
   checkpoint, and neither fusion nor warm IC contents is VM-visible.
   Methods compiled AFTER the save are rolled back to uncompiled: the
   compiler charges the virtual clock, so a live re-execution from the
   checkpoint must re-pay exactly the charges the first execution paid
   after that point, or the timelines diverge.
   Class initialization state IS rolled back: it has heap side effects. *)

type thread_snap = {
  s_tid : int;
  s_name : string;
  s_stack : int;
  s_fp : int;
  s_sp : int;
  s_pc : int;
  s_meth : Rt.rmethod;
  s_state : Rt.tstate;
  s_wake : int;
  s_interrupted : bool;
  s_wait_mon : int;
  s_saved_count : int;
  s_joiners : int list;
  s_exc : int;
}

type monitor_snap = {
  s_owner : int;
  s_count : int;
  s_entryq : int list;
  s_waitset : int list;
}

type env_snap = {
  s_rng : Prng.t;
  s_input_rng : Prng.t;
  s_now : int;
  s_next_timer : int;
  s_inputs : int list;
  s_input_count : int;
  s_ticks : int;
  s_timer_fires : int;
}

type t = {
  c_heap : int array;
  c_hp : int;
  c_temp_roots : int array;
  c_n_temps : int;
  c_pinned_roots : int array;
  c_n_pinned : int;
  c_globals : int array;
  c_class_states : (Rt.cstate * int array) array; (* rc_state, rc_strings *)
  c_monitors : monitor_snap array;
  c_n_monitors : int;
  c_threads : thread_snap array;
  c_n_threads : int;
  c_readyq : int list;
  c_current : int;
  c_sleepers : (int * int) list;
  c_live_threads : int;
  c_status : Rt.status;
  c_preempt_pending : bool;
  c_output : string;
  c_env : env_snap;
  c_compiled : bool array; (* per uid: was the method compiled at save time? *)
  c_stats : Rt.stats;
  c_words : int; (* rough memory footprint of this checkpoint *)
}

let snap_thread (t : Rt.thread) : thread_snap =
  {
    s_tid = t.tid;
    s_name = t.t_name;
    s_stack = t.t_stack;
    s_fp = t.t_fp;
    s_sp = t.t_sp;
    s_pc = t.t_pc;
    s_meth = t.t_meth;
    s_state = t.t_state;
    s_wake = t.t_wake;
    s_interrupted = t.t_interrupted;
    s_wait_mon = t.t_wait_mon;
    s_saved_count = t.t_saved_count;
    s_joiners = t.t_joiners;
    s_exc = t.t_exc;
  }

let copy_stats (s : Rt.stats) : Rt.stats =
  {
    Rt.n_instr = s.n_instr;
    n_yield = s.n_yield;
    n_switch = s.n_switch;
    n_preempt_req = s.n_preempt_req;
    n_gc = s.n_gc;
    n_alloc_words = s.n_alloc_words;
    n_alloc_objects = s.n_alloc_objects;
    n_compiled_methods = s.n_compiled_methods;
    n_classes_initialized = s.n_classes_initialized;
    n_stack_grows = s.n_stack_grows;
    n_clock_reads = s.n_clock_reads;
    n_input_reads = s.n_input_reads;
    n_native_calls = s.n_native_calls;
    n_monitor_ops = s.n_monitor_ops;
    n_exceptions = s.n_exceptions;
    n_regir_instr = s.n_regir_instr;
    n_regir_mon = s.n_regir_mon;
    n_regir_inline = s.n_regir_inline;
  }

let save (vm : Rt.t) : t =
  (* materialize the environment's deferred ticks first: the snapshot
     copies now/next_timer/rng by value, and must capture the exact state
     an eager clock would hold here *)
  Env.sync vm.env;
  let c_heap = Array.sub vm.heap 0 vm.hp in
  {
    c_heap;
    c_hp = vm.hp;
    c_temp_roots = Array.sub vm.temp_roots 0 vm.n_temps;
    c_n_temps = vm.n_temps;
    c_pinned_roots = Array.sub vm.pinned_roots 0 vm.n_pinned;
    c_n_pinned = vm.n_pinned;
    c_globals = Array.copy vm.globals;
    c_class_states =
      Array.map
        (fun (c : Rt.rclass) -> (c.rc_state, Array.copy c.rc_strings))
        vm.classes;
    c_monitors =
      Array.init vm.n_monitors (fun i ->
          let m = vm.monitors.(i) in
          {
            s_owner = m.m_owner;
            s_count = m.m_count;
            s_entryq = List.of_seq (Queue.to_seq m.m_entryq);
            s_waitset = m.m_waitset;
          });
    c_n_monitors = vm.n_monitors;
    c_threads = Array.init vm.n_threads (fun i -> snap_thread vm.threads.(i));
    c_n_threads = vm.n_threads;
    c_readyq = List.of_seq (Queue.to_seq vm.readyq);
    c_current = vm.current;
    c_sleepers = vm.sleepers;
    c_live_threads = vm.live_threads;
    c_status = vm.status;
    c_preempt_pending = vm.preempt_pending;
    c_output = Buffer.contents vm.output;
    c_env =
      {
        s_rng = Prng.copy vm.env.rng;
        s_input_rng = Prng.copy vm.env.input_rng;
        s_now = vm.env.now;
        s_next_timer = vm.env.next_timer;
        s_inputs = vm.env.inputs;
        s_input_count = vm.env.input_count;
        s_ticks = vm.env.ticks;
        s_timer_fires = vm.env.timer_fires;
      };
    c_compiled =
      Array.map (fun (m : Rt.rmethod) -> m.rm_compiled <> None) vm.methods;
    c_stats = copy_stats vm.stats;
    c_words = vm.hp + vm.nglobals + (vm.n_threads * 16) + vm.n_monitors * 8;
  }

(* Restore in place. The [vm] must be the instance [save] ran on (same
   program image and configuration). *)
let restore (vm : Rt.t) (c : t) =
  Array.blit c.c_heap 0 vm.heap 0 c.c_hp;
  vm.hp <- c.c_hp;
  vm.n_temps <- c.c_n_temps;
  Array.blit c.c_temp_roots 0 vm.temp_roots 0 c.c_n_temps;
  vm.n_pinned <- c.c_n_pinned;
  Array.blit c.c_pinned_roots 0 vm.pinned_roots 0 c.c_n_pinned;
  Array.blit c.c_globals 0 vm.globals 0 (Array.length c.c_globals);
  Array.iteri
    (fun i (state, strings) ->
      vm.classes.(i).rc_state <- state;
      vm.classes.(i).rc_strings <- Array.copy strings)
    c.c_class_states;
  (* monitors: restore the saved prefix; later-created monitors revert to
     free (their objects are gone from the restored heap anyway) *)
  for i = 0 to vm.n_monitors - 1 do
    let m = vm.monitors.(i) in
    if i < c.c_n_monitors then begin
      let s = c.c_monitors.(i) in
      m.m_owner <- s.s_owner;
      m.m_count <- s.s_count;
      Queue.clear m.m_entryq;
      List.iter (fun tid -> Queue.add tid m.m_entryq) s.s_entryq;
      m.m_waitset <- s.s_waitset
    end
    else begin
      m.m_owner <- -1;
      m.m_count <- 0;
      Queue.clear m.m_entryq;
      m.m_waitset <- []
    end
  done;
  vm.n_monitors <- c.c_n_monitors;
  (* threads: restore the saved prefix in place *)
  for i = 0 to c.c_n_threads - 1 do
    let t = vm.threads.(i) in
    let s = c.c_threads.(i) in
    t.t_stack <- s.s_stack;
    t.t_fp <- s.s_fp;
    t.t_sp <- s.s_sp;
    t.t_pc <- s.s_pc;
    t.t_meth <- s.s_meth;
    t.t_state <- s.s_state;
    t.t_wake <- s.s_wake;
    t.t_interrupted <- s.s_interrupted;
    t.t_wait_mon <- s.s_wait_mon;
    t.t_saved_count <- s.s_saved_count;
    t.t_joiners <- s.s_joiners;
    t.t_exc <- s.s_exc
  done;
  vm.n_threads <- c.c_n_threads;
  Queue.clear vm.readyq;
  List.iter (fun tid -> Queue.add tid vm.readyq) c.c_readyq;
  vm.current <- c.c_current;
  vm.sleepers <- c.c_sleepers;
  vm.live_threads <- c.c_live_threads;
  vm.status <- c.c_status;
  vm.preempt_pending <- c.c_preempt_pending;
  Buffer.clear vm.output;
  Buffer.add_string vm.output c.c_output;
  (* the restored fields ARE the truth: drop any deferred ticks and the
     cached horizon rather than materializing them over the old timeline *)
  Env.forget vm.env;
  Prng.restore vm.env.rng ~from:c.c_env.s_rng;
  Prng.restore vm.env.input_rng ~from:c.c_env.s_input_rng;
  vm.env.now <- c.c_env.s_now;
  vm.env.next_timer <- c.c_env.s_next_timer;
  vm.env.inputs <- c.c_env.s_inputs;
  vm.env.input_count <- c.c_env.s_input_count;
  vm.env.ticks <- c.c_env.s_ticks;
  vm.env.timer_fires <- c.c_env.s_timer_fires;
  (* methods compiled after the save point revert to uncompiled so the
     re-execution re-pays their compile-time clock charges on schedule;
     nothing compiled at save time can be un-compiled here, so no restored
     thread frame loses the body it is executing *)
  Array.iteri
    (fun k (m : Rt.rmethod) ->
      if not c.c_compiled.(k) then m.rm_compiled <- None)
    vm.methods;
  let s = c.c_stats in
  let d = vm.stats in
  d.n_instr <- s.n_instr;
  d.n_yield <- s.n_yield;
  d.n_switch <- s.n_switch;
  d.n_preempt_req <- s.n_preempt_req;
  d.n_gc <- s.n_gc;
  d.n_alloc_words <- s.n_alloc_words;
  d.n_alloc_objects <- s.n_alloc_objects;
  d.n_compiled_methods <- s.n_compiled_methods;
  d.n_classes_initialized <- s.n_classes_initialized;
  d.n_stack_grows <- s.n_stack_grows;
  d.n_clock_reads <- s.n_clock_reads;
  d.n_input_reads <- s.n_input_reads;
  d.n_native_calls <- s.n_native_calls;
  d.n_monitor_ops <- s.n_monitor_ops;
  d.n_exceptions <- s.n_exceptions;
  d.n_regir_instr <- s.n_regir_instr;
  d.n_regir_mon <- s.n_regir_mon;
  d.n_regir_inline <- s.n_regir_inline

let words (c : t) = c.c_words
