(* Raw object access over the current semispace. Addresses are word indices;
   0 is null. Header: [class_id; monitor_id; length]. *)

let hdr_class = 0

let hdr_monitor = 1

let hdr_len = 2

let header_words = 3

let class_of (vm : Rt.t) addr = vm.heap.(addr + hdr_class)

let monitor_of (vm : Rt.t) addr = vm.heap.(addr + hdr_monitor)

let set_monitor (vm : Rt.t) addr mid = vm.heap.(addr + hdr_monitor) <- mid

let len_of (vm : Rt.t) addr = vm.heap.(addr + hdr_len)

(* Slot access; [i] counts from 0 over the object's fields / array elems. *)
let get (vm : Rt.t) addr i = vm.heap.(addr + header_words + i)

let set (vm : Rt.t) addr i v = vm.heap.(addr + header_words + i) <- v

let object_words len = header_words + len

let rclass_of (vm : Rt.t) addr = vm.classes.(class_of vm addr)

let is_array (vm : Rt.t) addr = (rclass_of vm addr).rc_elem <> Rt.Not_array

(* Absolute index of a thread-stack offset (stack arrays hold frame data). *)
let stack_abs (t : Rt.thread) off = t.t_stack + header_words + off

let stack_get (vm : Rt.t) (t : Rt.thread) off = vm.heap.(stack_abs t off)

let stack_set (vm : Rt.t) (t : Rt.thread) off v = vm.heap.(stack_abs t off) <- v

(* Unchecked variants for the interpreter's operand-stack traffic only:
   every slot it touches is below the capacity [ensure_stack] reserved at
   frame push (frame header + locals + the verifier's max_stack), so the
   bounds check is pure per-instruction overhead there. Everything else
   goes through the checked accessors. *)
let stack_get_u (vm : Rt.t) (t : Rt.thread) off =
  Array.unsafe_get vm.heap (stack_abs t off)

let stack_set_u (vm : Rt.t) (t : Rt.thread) off v =
  Array.unsafe_set vm.heap (stack_abs t off) v

let stack_capacity (vm : Rt.t) (t : Rt.thread) = len_of vm t.t_stack

(* Strings: instances of the builtin String class with one ref field (the
   character array). *)
let string_chars vm addr = get vm addr 0

let string_value vm addr =
  let chars = string_chars vm addr in
  let n = len_of vm chars in
  String.init n (fun i -> Char.chr (get vm chars i land 0xff))
