(* Human-readable listings of COMPILED code — the kinstr stream the
   interpreter actually executes, as opposed to Bytecode.Disasm's listings
   of source bytecode. The compiled stream differs from the source in ways
   that matter when debugging the dispatch pipeline: monitorenter/exit
   wrapping from sync expansion, injected yield points, pre-resolved
   callees, and (in the fused stream) superinstructions. The listing shows
   the post-fusion stream: a fused region prints its superinstruction head
   marked [*] with the shadowed originals indented behind it, virtual
   call/spawn sites are marked [ic] (each carries a monomorphic inline
   cache), and injected yield points are marked so safe-point placement can
   be read off the listing. *)

let string_of_bin : Rt.bin -> string = function
  | Badd -> "add"
  | Bsub -> "sub"
  | Bmul -> "mul"
  | Bdiv -> "div"
  | Brem -> "rem"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Bshl -> "shl"
  | Bshr -> "shr"

let cmp = Bytecode.Instr.string_of_cmp

let ty = Bytecode.Instr.string_of_ty

(* Resolve names through the runtime: class ids, vtable slots, and callee
   uids all print as the entities they denote. *)
let pp_cinstr (vm : Rt.t) ppf (ins : Rt.cinstr) =
  let cname cid = (Rt.the_class vm cid).Rt.rc_name in
  let vmeth cid vslot =
    vm.Rt.methods.((Rt.the_class vm cid).Rt.rc_vtable.(vslot))
  in
  let qual (m : Rt.rmethod) = cname m.rm_cid ^ "." ^ m.rm_name in
  match ins with
  | KConst n -> Fmt.pf ppf "const %d" n
  | KStr (owner, idx) -> Fmt.pf ppf "str %s[%d]" owner.rc_name idx
  | KNull -> Fmt.string ppf "null"
  | KLoad i -> Fmt.pf ppf "load l%d" i
  | KStore i -> Fmt.pf ppf "store l%d" i
  | KDup -> Fmt.string ppf "dup"
  | KPop -> Fmt.string ppf "pop"
  | KSwap -> Fmt.string ppf "swap"
  | KBin op -> Fmt.pf ppf "bin %s" (string_of_bin op)
  | KNeg -> Fmt.string ppf "neg"
  | KIf (c, t) -> Fmt.pf ppf "if%s -> %d" (cmp c) t
  | KIfz (c, t) -> Fmt.pf ppf "ifz%s -> %d" (cmp c) t
  | KIfnull t -> Fmt.pf ppf "ifnull -> %d" t
  | KIfnonnull t -> Fmt.pf ppf "ifnonnull -> %d" t
  | KIfrefeq t -> Fmt.pf ppf "ifrefeq -> %d" t
  | KIfrefne t -> Fmt.pf ppf "ifrefne -> %d" t
  | KGoto t -> Fmt.pf ppf "goto %d" t
  | KNew cid -> Fmt.pf ppf "new %s" (cname cid)
  | KGetfield (slot, fty) -> Fmt.pf ppf "getfield +%d :%s" slot (ty fty)
  | KPutfield (slot, fty) -> Fmt.pf ppf "putfield +%d :%s" slot (ty fty)
  | KGetstatic (cid, g, fty) ->
    Fmt.pf ppf "getstatic %s g%d :%s" (cname cid) g (ty fty)
  | KPutstatic (cid, g, fty) ->
    Fmt.pf ppf "putstatic %s g%d :%s" (cname cid) g (ty fty)
  | KNewarray elt -> Fmt.pf ppf "newarray %s" (ty elt)
  | KAload -> Fmt.string ppf "aload"
  | KAstore -> Fmt.string ppf "astore"
  | KArraylength -> Fmt.string ppf "arraylength"
  | KCheckcast cid -> Fmt.pf ppf "checkcast %s" (cname cid)
  | KInstanceof cid -> Fmt.pf ppf "instanceof %s" (cname cid)
  | KInvokestatic m -> Fmt.pf ppf "invokestatic %s" (qual m)
  | KInvokevirtual (cid, vslot, nargs, _) ->
    Fmt.pf ppf "invokevirtual %s/%d [ic]" (qual (vmeth cid vslot)) nargs
  | KRet -> Fmt.string ppf "ret"
  | KRetv -> Fmt.string ppf "retv"
  | KThrow -> Fmt.string ppf "throw"
  | KMonitorenter -> Fmt.string ppf "monitorenter"
  | KMonitorexit -> Fmt.string ppf "monitorexit"
  | KWait -> Fmt.string ppf "wait"
  | KTimedwait -> Fmt.string ppf "timedwait"
  | KNotify -> Fmt.string ppf "notify"
  | KNotifyall -> Fmt.string ppf "notifyall"
  | KSpawnstatic m -> Fmt.pf ppf "spawnstatic %s" (qual m)
  | KSpawnvirtual (cid, vslot, nargs, _) ->
    Fmt.pf ppf "spawnvirtual %s/%d [ic]" (qual (vmeth cid vslot)) nargs
  | KSleep -> Fmt.string ppf "sleep"
  | KJoin -> Fmt.string ppf "join"
  | KInterrupt -> Fmt.string ppf "interrupt"
  | KCurrenttime -> Fmt.string ppf "currenttime"
  | KReadinput -> Fmt.string ppf "readinput"
  | KNative id -> Fmt.pf ppf "native #%d" id
  | KPrint -> Fmt.string ppf "print"
  | KPrints -> Fmt.string ppf "prints"
  | KHalt -> Fmt.string ppf "halt"
  | KNop -> Fmt.string ppf "nop"
  | KYield -> Fmt.string ppf "yield"
  | KLdLdBin (i, j, op) ->
    Fmt.pf ppf "ld.ld.bin l%d l%d %s" i j (string_of_bin op)
  | KLdConstBin (i, n, op) ->
    Fmt.pf ppf "ld.const.bin l%d %d %s" i n (string_of_bin op)
  | KBinIf (op, c, t) ->
    Fmt.pf ppf "bin.if %s %s -> %d" (string_of_bin op) (cmp c) t
  | KBinIfz (op, c, t) ->
    Fmt.pf ppf "bin.ifz %s %s -> %d" (string_of_bin op) (cmp c) t
  | KLdGetfield (i, slot, fty) ->
    Fmt.pf ppf "ld.getfield l%d +%d :%s" i slot (ty fty)
  | KLdStore (i, j) -> Fmt.pf ppf "ld.store l%d l%d" i j
  | KLdIf (i, c, t) -> Fmt.pf ppf "ld.if l%d %s -> %d" i (cmp c) t
  | KLdIfz (i, c, t) -> Fmt.pf ppf "ld.ifz l%d %s -> %d" i (cmp c) t
  | KLdLdIf (i, j, c, t) ->
    Fmt.pf ppf "ld.ld.if l%d l%d %s -> %d" i j (cmp c) t
  | KLdConstIf (i, n, c, t) ->
    Fmt.pf ppf "ld.const.if l%d %d %s -> %d" i n (cmp c) t
  | KLdLdBinIf (i, j, op, c, t) ->
    Fmt.pf ppf "ld.ld.bin.if l%d l%d %s %s -> %d" i j (string_of_bin op)
      (cmp c) t
  | KLdLdBinIfz (i, j, op, c, t) ->
    Fmt.pf ppf "ld.ld.bin.ifz l%d l%d %s %s -> %d" i j (string_of_bin op)
      (cmp c) t
  | KLdConstBinSt (i, n, op, j) ->
    Fmt.pf ppf "ld.const.bin.st l%d %d %s l%d" i n (string_of_bin op) j
  | KBinSt (op, j) -> Fmt.pf ppf "bin.st %s l%d" (string_of_bin op) j

(* One compiled method: the post-fusion stream, pc by pc. A fused region's
   head line is marked [*] and its shadow slots print the canonical
   originals behind a [|]; [; yp] tags injected yield points; the src
   column maps each compiled pc back to the source-bytecode pc. *)
let pp_compiled (vm : Rt.t) ppf (m : Rt.rmethod) =
  let c = Rt.compiled m in
  let n = Array.length c.k_code in
  let n_fused = ref 0 and n_ic = ref 0 and n_yp = ref 0 in
  Array.iteri
    (fun pc ins ->
      if ins != c.k_code.(pc) then incr n_fused;
      match c.k_code.(pc) with
      | Rt.KInvokevirtual _ | Rt.KSpawnvirtual _ -> incr n_ic
      | Rt.KYield -> incr n_yp
      | _ -> ())
    c.k_fused;
  Fmt.pf ppf "@[<v 2>compiled %s.%s (uid %d): %d instrs, %d fused, %d ic, %d yp@,"
    (Rt.the_class vm m.rm_cid).rc_name
    m.rm_name m.uid n !n_fused !n_ic !n_yp;
  let shadow_until = ref 0 in
  for pc = 0 to n - 1 do
    let ins = c.k_fused.(pc) in
    let src = c.k_src_pc.(pc) in
    if pc < !shadow_until then
      Fmt.pf ppf "%4d      |   %a@," pc (pp_cinstr vm) c.k_code.(pc)
    else if ins != c.k_code.(pc) then begin
      shadow_until := pc + Rt.width_of_cinstr ins;
      Fmt.pf ppf "%4d %4d * %a@," pc src (pp_cinstr vm) ins
    end
    else
      Fmt.pf ppf "%4d %4d   %a%s@," pc src (pp_cinstr vm) ins
        (match ins with Rt.KYield -> "  ; yp" | _ -> "")
  done;
  Array.iter
    (fun (h : Rt.rhandler) ->
      Fmt.pf ppf "  catch%s [%d,%d) -> %d@,"
        (if h.k_catch < 0 then " *"
         else " " ^ (Rt.the_class vm h.k_catch).rc_name)
        h.k_from h.k_upto h.k_target)
    c.k_handlers;
  Fmt.pf ppf "@]"
