(* Human-readable listings of COMPILED code — the kinstr stream the
   interpreter actually executes, as opposed to Bytecode.Disasm's listings
   of source bytecode. The compiled stream differs from the source in ways
   that matter when debugging the dispatch pipeline: monitorenter/exit
   wrapping from sync expansion, injected yield points, pre-resolved
   callees, and (in the fused stream) superinstructions. The listing shows
   the post-fusion stream: a fused region prints its superinstruction head
   marked [*] with the shadowed originals indented behind it, virtual
   call/spawn sites are marked [ic] (each carries a monomorphic inline
   cache), and injected yield points are marked so safe-point placement can
   be read off the listing. *)

let string_of_bin : Rt.bin -> string = function
  | Badd -> "add"
  | Bsub -> "sub"
  | Bmul -> "mul"
  | Bdiv -> "div"
  | Brem -> "rem"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Bshl -> "shl"
  | Bshr -> "shr"

let cmp = Bytecode.Instr.string_of_cmp

let ty = Bytecode.Instr.string_of_ty

(* Resolve names through the runtime: class ids, vtable slots, and callee
   uids all print as the entities they denote. *)
let pp_cinstr (vm : Rt.t) ppf (ins : Rt.cinstr) =
  let cname cid = (Rt.the_class vm cid).Rt.rc_name in
  let vmeth cid vslot =
    vm.Rt.methods.((Rt.the_class vm cid).Rt.rc_vtable.(vslot))
  in
  let qual (m : Rt.rmethod) = cname m.rm_cid ^ "." ^ m.rm_name in
  match ins with
  | KConst n -> Fmt.pf ppf "const %d" n
  | KStr (owner, idx) -> Fmt.pf ppf "str %s[%d]" owner.rc_name idx
  | KNull -> Fmt.string ppf "null"
  | KLoad i -> Fmt.pf ppf "load l%d" i
  | KStore i -> Fmt.pf ppf "store l%d" i
  | KDup -> Fmt.string ppf "dup"
  | KPop -> Fmt.string ppf "pop"
  | KSwap -> Fmt.string ppf "swap"
  | KBin op -> Fmt.pf ppf "bin %s" (string_of_bin op)
  | KNeg -> Fmt.string ppf "neg"
  | KIf (c, t) -> Fmt.pf ppf "if%s -> %d" (cmp c) t
  | KIfz (c, t) -> Fmt.pf ppf "ifz%s -> %d" (cmp c) t
  | KIfnull t -> Fmt.pf ppf "ifnull -> %d" t
  | KIfnonnull t -> Fmt.pf ppf "ifnonnull -> %d" t
  | KIfrefeq t -> Fmt.pf ppf "ifrefeq -> %d" t
  | KIfrefne t -> Fmt.pf ppf "ifrefne -> %d" t
  | KGoto t -> Fmt.pf ppf "goto %d" t
  | KNew cid -> Fmt.pf ppf "new %s" (cname cid)
  | KGetfield (slot, fty) -> Fmt.pf ppf "getfield +%d :%s" slot (ty fty)
  | KPutfield (slot, fty) -> Fmt.pf ppf "putfield +%d :%s" slot (ty fty)
  | KGetstatic (cid, g, fty) ->
    Fmt.pf ppf "getstatic %s g%d :%s" (cname cid) g (ty fty)
  | KPutstatic (cid, g, fty) ->
    Fmt.pf ppf "putstatic %s g%d :%s" (cname cid) g (ty fty)
  | KNewarray elt -> Fmt.pf ppf "newarray %s" (ty elt)
  | KAload -> Fmt.string ppf "aload"
  | KAstore -> Fmt.string ppf "astore"
  | KArraylength -> Fmt.string ppf "arraylength"
  | KCheckcast cid -> Fmt.pf ppf "checkcast %s" (cname cid)
  | KInstanceof cid -> Fmt.pf ppf "instanceof %s" (cname cid)
  | KInvokestatic m -> Fmt.pf ppf "invokestatic %s" (qual m)
  | KInvokevirtual (cid, vslot, nargs, _) ->
    Fmt.pf ppf "invokevirtual %s/%d [ic]" (qual (vmeth cid vslot)) nargs
  | KRet -> Fmt.string ppf "ret"
  | KRetv -> Fmt.string ppf "retv"
  | KThrow -> Fmt.string ppf "throw"
  | KMonitorenter -> Fmt.string ppf "monitorenter"
  | KMonitorexit -> Fmt.string ppf "monitorexit"
  | KWait -> Fmt.string ppf "wait"
  | KTimedwait -> Fmt.string ppf "timedwait"
  | KNotify -> Fmt.string ppf "notify"
  | KNotifyall -> Fmt.string ppf "notifyall"
  | KSpawnstatic m -> Fmt.pf ppf "spawnstatic %s" (qual m)
  | KSpawnvirtual (cid, vslot, nargs, _) ->
    Fmt.pf ppf "spawnvirtual %s/%d [ic]" (qual (vmeth cid vslot)) nargs
  | KSleep -> Fmt.string ppf "sleep"
  | KJoin -> Fmt.string ppf "join"
  | KInterrupt -> Fmt.string ppf "interrupt"
  | KCurrenttime -> Fmt.string ppf "currenttime"
  | KReadinput -> Fmt.string ppf "readinput"
  | KNative id -> Fmt.pf ppf "native #%d" id
  | KPrint -> Fmt.string ppf "print"
  | KPrints -> Fmt.string ppf "prints"
  | KHalt -> Fmt.string ppf "halt"
  | KNop -> Fmt.string ppf "nop"
  | KYield -> Fmt.string ppf "yield"
  | KLdLdBin (i, j, op) ->
    Fmt.pf ppf "ld.ld.bin l%d l%d %s" i j (string_of_bin op)
  | KLdConstBin (i, n, op) ->
    Fmt.pf ppf "ld.const.bin l%d %d %s" i n (string_of_bin op)
  | KBinIf (op, c, t) ->
    Fmt.pf ppf "bin.if %s %s -> %d" (string_of_bin op) (cmp c) t
  | KBinIfz (op, c, t) ->
    Fmt.pf ppf "bin.ifz %s %s -> %d" (string_of_bin op) (cmp c) t
  | KLdGetfield (i, slot, fty) ->
    Fmt.pf ppf "ld.getfield l%d +%d :%s" i slot (ty fty)
  | KLdStore (i, j) -> Fmt.pf ppf "ld.store l%d l%d" i j
  | KLdIf (i, c, t) -> Fmt.pf ppf "ld.if l%d %s -> %d" i (cmp c) t
  | KLdIfz (i, c, t) -> Fmt.pf ppf "ld.ifz l%d %s -> %d" i (cmp c) t
  | KLdLdIf (i, j, c, t) ->
    Fmt.pf ppf "ld.ld.if l%d l%d %s -> %d" i j (cmp c) t
  | KLdConstIf (i, n, c, t) ->
    Fmt.pf ppf "ld.const.if l%d %d %s -> %d" i n (cmp c) t
  | KLdLdBinIf (i, j, op, c, t) ->
    Fmt.pf ppf "ld.ld.bin.if l%d l%d %s %s -> %d" i j (string_of_bin op)
      (cmp c) t
  | KLdLdBinIfz (i, j, op, c, t) ->
    Fmt.pf ppf "ld.ld.bin.ifz l%d l%d %s %s -> %d" i j (string_of_bin op)
      (cmp c) t
  | KLdConstBinSt (i, n, op, j) ->
    Fmt.pf ppf "ld.const.bin.st l%d %d %s l%d" i n (string_of_bin op) j
  | KBinSt (op, j) -> Fmt.pf ppf "bin.st %s l%d" (string_of_bin op) j

(* Inline-cache state, readable off the listing: cold (never executed),
   mono <class>, poly(n){classes}, or mega. The cache is runtime state, so
   the same method disassembles differently before and after a run. *)
let string_of_ic (vm : Rt.t) (ic : Rt.ic) =
  let cname cid = (Rt.the_class vm cid).Rt.rc_name in
  if ic.Rt.ic_n < 0 then "mega"
  else if ic.Rt.ic_cid < 0 then "cold"
  else if ic.Rt.ic_n = 0 then "mono " ^ cname ic.Rt.ic_cid
  else
    Fmt.str "poly(%d){%s}" ic.Rt.ic_n
      (String.concat ","
         (List.init ic.Rt.ic_n (fun i -> cname ic.Rt.ic_cids.(i))))

(* One register op. Slots print as [r<i>] (locals first, then operand
   stack); risky/terminal ops show their canonical fault pc as [@<pc>]. *)
let pp_rop (vm : Rt.t) ppf (op : Rt.rop) =
  let cname cid = (Rt.the_class vm cid).Rt.rc_name in
  let vmeth cid vslot =
    vm.Rt.methods.((Rt.the_class vm cid).Rt.rc_vtable.(vslot))
  in
  let qual (m : Rt.rmethod) = cname m.rm_cid ^ "." ^ m.rm_name in
  match op with
  | Rt.RTick n -> Fmt.pf ppf "tick %d" n
  | Rt.RConst (d, v) -> Fmt.pf ppf "r%d := %d" d v
  | Rt.RMove (d, s) -> Fmt.pf ppf "r%d := r%d" d s
  | Rt.RStr (d, owner, idx) ->
    Fmt.pf ppf "r%d := str %s[%d]" d owner.Rt.rc_name idx
  | Rt.RBin (op, d, a, b) ->
    Fmt.pf ppf "r%d := %s r%d r%d" d (string_of_bin op) a b
  | Rt.RBinC (op, d, a, c) ->
    Fmt.pf ppf "r%d := %s r%d #%d" d (string_of_bin op) a c
  | Rt.RBinCL (op, d, c, b) ->
    Fmt.pf ppf "r%d := %s #%d r%d" d (string_of_bin op) c b
  | Rt.RNeg (d, s) -> Fmt.pf ppf "r%d := neg r%d" d s
  | Rt.RSwapMem (a, b) -> Fmt.pf ppf "swap r%d r%d" a b
  | Rt.RInstanceof (d, cid, s) ->
    Fmt.pf ppf "r%d := instanceof %s r%d" d (cname cid) s
  | Rt.RPrint s -> Fmt.pf ppf "print r%d" s
  | Rt.RDivRem (op, pc, d) ->
    Fmt.pf ppf "r%d := %s r%d r%d  @%d" d (string_of_bin op) d (d + 1) pc
  | Rt.RGetfield (slot, pc, os) ->
    Fmt.pf ppf "r%d := getfield r%d +%d  @%d" os os slot pc
  | Rt.RPutfield (slot, pc, os) ->
    Fmt.pf ppf "putfield r%d +%d := r%d  @%d" os slot (os + 1) pc
  | Rt.RGetstatic (cid, g, pc, d) ->
    Fmt.pf ppf "r%d := getstatic %s g%d  @%d" d (cname cid) g pc
  | Rt.RPutstatic (cid, g, pc, vs) ->
    Fmt.pf ppf "putstatic %s g%d := r%d  @%d" (cname cid) g vs pc
  | Rt.RNewobj (cid, pc, d) ->
    Fmt.pf ppf "r%d := new %s  @%d" d (cname cid) pc
  | Rt.RNewarray (elem_ref, pc, ls) ->
    Fmt.pf ppf "r%d := newarray%s len=r%d  @%d" ls
      (if elem_ref then " ref" else "")
      ls pc
  | Rt.RAload (pc, a) -> Fmt.pf ppf "r%d := aload r%d[r%d]  @%d" a a (a + 1) pc
  | Rt.RAstore (pc, a) ->
    Fmt.pf ppf "astore r%d[r%d] := r%d  @%d" a (a + 1) (a + 2) pc
  | Rt.RArraylength (pc, a) ->
    Fmt.pf ppf "r%d := arraylength r%d  @%d" a a pc
  | Rt.RCheckcast (cid, pc, o) ->
    Fmt.pf ppf "checkcast %s r%d  @%d" (cname cid) o pc
  | Rt.RPrints (pc, s) -> Fmt.pf ppf "prints r%d  @%d" s pc
  | Rt.RYield (npc, ss) -> Fmt.pf ppf "yield -> %d sp=r%d" npc ss
  | Rt.RMonEnter (npc, os) ->
    Fmt.pf ppf "monenter r%d -> %d  @%d" os npc (npc - 1)
  | Rt.RMonExit (npc, os) ->
    Fmt.pf ppf "monexit r%d -> %d  @%d" os npc (npc - 1)
  | Rt.RInlineStatic (callee, pc, ss) ->
    Fmt.pf ppf "inline %s sp=r%d  @%d" (qual callee) ss pc
  | Rt.RInlineVirtual (vslot, nargs, ic, pc, ss) ->
    let decl =
      match ic.Rt.ic_cid with
      | cid when cid >= 0 -> qual (vmeth cid vslot)
      | _ -> Fmt.str "vslot %d" vslot
    in
    Fmt.pf ppf "inlinev %s/%d [ic %s] sp=r%d  @%d" decl nargs
      (string_of_ic vm ic) ss pc
  | Rt.RIf (c, target, fall, a) ->
    Fmt.pf ppf "if r%d %s r%d -> %d else %d" a (cmp c) (a + 1) target fall
  | Rt.RIfz (c, target, fall, a) ->
    Fmt.pf ppf "ifz r%d %s -> %d else %d" a (cmp c) target fall
  | Rt.RGoto (target, ss) -> Fmt.pf ppf "goto %d sp=r%d" target ss
  | Rt.RRet (pc, ss) -> Fmt.pf ppf "ret sp=r%d  @%d" ss pc
  | Rt.RRetv (pc, vs) -> Fmt.pf ppf "retv r%d  @%d" vs pc
  | Rt.RCallStatic (callee, pc, ss) ->
    Fmt.pf ppf "call %s sp=r%d  @%d" (qual callee) ss pc
  | Rt.RCallVirtual (vslot, nargs, ic, pc, ss) ->
    let decl =
      match ic.Rt.ic_cid with
      | cid when cid >= 0 -> qual (vmeth cid vslot)
      | _ -> Fmt.str "vslot %d" vslot
    in
    Fmt.pf ppf "callv %s/%d [ic %s] sp=r%d  @%d" decl nargs
      (string_of_ic vm ic) ss pc
  | Rt.REnd (next_pc, ss) -> Fmt.pf ppf "end -> %d sp=r%d" next_pc ss

(* One compiled method: the post-fusion stream, pc by pc. A fused region's
   head line is marked [*] and its shadow slots print the canonical
   originals behind a [|]; [; yp] tags injected yield points; the src
   column maps each compiled pc back to the source-bytecode pc. Register
   regions follow the instruction stream: each prints its entry pc, the
   canonical instruction count it covers, and its register ops. *)
let pp_compiled (vm : Rt.t) ppf (m : Rt.rmethod) =
  let c = Rt.compiled m in
  let n = Array.length c.k_code in
  let n_fused = ref 0 and n_ic = ref 0 and n_yp = ref 0 in
  Array.iteri
    (fun pc ins ->
      if ins != c.k_code.(pc) then incr n_fused;
      match c.k_code.(pc) with
      | Rt.KInvokevirtual _ | Rt.KSpawnvirtual _ -> incr n_ic
      | Rt.KYield -> incr n_yp
      | _ -> ())
    c.k_fused;
  let n_regions =
    Array.fold_left
      (fun acc r -> match r with Some _ -> acc + 1 | None -> acc)
      0 c.k_regions
  in
  Fmt.pf ppf
    "@[<v 2>compiled %s.%s (uid %d): %d instrs, %d fused, %d ic, %d yp, %d \
     regions@,"
    (Rt.the_class vm m.rm_cid).rc_name
    m.rm_name m.uid n !n_fused !n_ic !n_yp n_regions;
  let shadow_until = ref 0 in
  for pc = 0 to n - 1 do
    let ins = c.k_fused.(pc) in
    let src = c.k_src_pc.(pc) in
    if pc < !shadow_until then
      Fmt.pf ppf "%4d      |   %a@," pc (pp_cinstr vm) c.k_code.(pc)
    else if ins != c.k_code.(pc) then begin
      shadow_until := pc + Rt.width_of_cinstr ins;
      Fmt.pf ppf "%4d %4d * %a@," pc src (pp_cinstr vm) ins
    end
    else
      Fmt.pf ppf "%4d %4d   %a%s@," pc src (pp_cinstr vm) ins
        (match ins with Rt.KYield -> "  ; yp" | _ -> "")
  done;
  Array.iter
    (fun (h : Rt.rhandler) ->
      Fmt.pf ppf "  catch%s [%d,%d) -> %d@,"
        (if h.k_catch < 0 then " *"
         else " " ^ (Rt.the_class vm h.k_catch).rc_name)
        h.k_from h.k_upto h.k_target)
    c.k_handlers;
  Array.iteri
    (fun pc r ->
      match r with
      | None -> ()
      | Some (r : Rt.region) ->
        Fmt.pf ppf "@[<v 2>region @%d (%d instrs, %d ops):@," pc r.Rt.r_n
          (Array.length r.Rt.r_ops);
        Array.iter (fun op -> Fmt.pf ppf "%a@," (pp_rop vm) op) r.Rt.r_ops;
        Fmt.pf ppf "@]@,")
    c.k_regions;
  Fmt.pf ppf "@]"
