(* Bump allocation with GC-on-exhaustion, temp-root management for addresses
   the interpreter must hold across allocations, and string interning. *)

exception Out_of_memory = Gc.Out_of_memory

(* Interpreter temp roots: push before a subsequent allocation, read back
   after (the GC may have moved the object), pop when done. *)
let push_temp (vm : Rt.t) addr =
  if vm.n_temps >= Array.length vm.temp_roots then begin
    let bigger = Array.make (2 * Array.length vm.temp_roots) 0 in
    Array.blit vm.temp_roots 0 bigger 0 vm.n_temps;
    vm.temp_roots <- bigger
  end;
  vm.temp_roots.(vm.n_temps) <- addr;
  vm.n_temps <- vm.n_temps + 1;
  vm.n_temps - 1

let temp (vm : Rt.t) i = vm.temp_roots.(i)

let pop_temp (vm : Rt.t) = vm.n_temps <- vm.n_temps - 1

(* Pin a long-lived instrumentation object as a GC root; read the (possibly
   relocated) address back with [pinned]. *)
let pin (vm : Rt.t) addr =
  if vm.n_pinned >= Array.length vm.pinned_roots then begin
    let bigger = Array.make (2 * Array.length vm.pinned_roots) 0 in
    Array.blit vm.pinned_roots 0 bigger 0 vm.n_pinned;
    vm.pinned_roots <- bigger
  end;
  vm.pinned_roots.(vm.n_pinned) <- addr;
  vm.n_pinned <- vm.n_pinned + 1;
  vm.n_pinned - 1

let pinned (vm : Rt.t) i = vm.pinned_roots.(i)

(* Allocate an object with [len] zeroed slots. May trigger a collection;
   raises Out_of_memory if the heap is exhausted even after collecting. *)
(* The backing array tracks the semantic semispace lazily: it starts small
   (see [Vm.create]) and doubles up to [heap_words] as the bump pointer
   advances. Purely physical — the exhaustion check, the GC trigger, and
   every address are in semantic words, so traces and digests are identical
   to an eagerly sized heap. *)
let grow_to (vm : Rt.t) limit =
  let cur = Array.length vm.heap in
  let n = ref (max 1 cur) in
  while !n < limit do
    n := !n * 2
  done;
  let size = min vm.cfg.heap_words !n in
  let bigger = Array.make (max size limit) 0 in
  Array.blit vm.heap 0 bigger 0 vm.hp;
  vm.heap <- bigger

let alloc (vm : Rt.t) ~cid ~len =
  let nwords = Layout.object_words len in
  let semi = vm.cfg.heap_words in
  if vm.hp + nwords > semi then begin
    Gc.collect vm;
    if vm.hp + nwords > semi then raise Out_of_memory
  end;
  if vm.hp + nwords > Array.length vm.heap then grow_to vm (vm.hp + nwords);
  let addr = vm.hp in
  vm.hp <- vm.hp + nwords;
  Array.fill vm.heap addr nwords 0;
  vm.heap.(addr + Layout.hdr_class) <- cid;
  vm.heap.(addr + Layout.hdr_len) <- len;
  vm.stats.n_alloc_words <- vm.stats.n_alloc_words + nwords;
  vm.stats.n_alloc_objects <- vm.stats.n_alloc_objects + 1;
  addr

let alloc_object (vm : Rt.t) cid =
  let rc = vm.classes.(cid) in
  alloc vm ~cid ~len:(Array.length rc.rc_fields)

let int_array_cid (vm : Rt.t) = Rt.class_id vm "int[]"

let ref_array_cid (vm : Rt.t) = Rt.class_id vm "ref[]"

let stack_array_cid (vm : Rt.t) = Rt.class_id vm "stack[]"

let alloc_array (vm : Rt.t) ~elem_ref ~len =
  let cid = if elem_ref then ref_array_cid vm else int_array_cid vm in
  alloc vm ~cid ~len

let alloc_stack_array (vm : Rt.t) ~len = alloc vm ~cid:(stack_array_cid vm) ~len

(* Build a String object from an OCaml string. Two allocations; the char
   array is temp-rooted across the second. *)
let alloc_string (vm : Rt.t) s =
  let n = String.length s in
  let chars = alloc vm ~cid:(int_array_cid vm) ~len:n in
  for i = 0 to n - 1 do
    Layout.set vm chars i (Char.code s.[i])
  done;
  let tmp = push_temp vm chars in
  let str = alloc_object vm (Rt.class_id vm Bytecode.Decl.string_class) in
  Layout.set vm str 0 (temp vm tmp);
  pop_temp vm;
  str
