(** The simulated external environment: a virtual wall clock advancing a
    jittered amount per executed instruction (with rare cache-miss/paging
    cost spikes), a periodic timer interrupt with a varying interval, and
    an external input source. All of the machine's non-determinism lives
    here — different seeds produce different interleavings and clock
    readings, which record/replay must reproduce. *)

type config = {
  seed : int;
  base_cost : int;  (** clock units per instruction, before jitter *)
  jitter : int;  (** extra units per instruction, uniform in [0, jitter] *)
  spike_per_mille : int;  (** chance/1000 of a cost spike *)
  spike_cost : int;  (** extra units when a spike hits *)
  quantum : int;  (** mean units between timer interrupts *)
  quantum_jitter : int;  (** timer interval varies by +- this *)
  time_scale : int;  (** units per "millisecond" (sleep / timed wait) *)
  compile_cost : int;  (** units charged per compiled instruction *)
}

val default_config : config

type t = {
  cfg : config;
  rng : Prng.t;
  input_rng : Prng.t;  (** independent stream: input stable under jitter *)
  mutable now : int;
  mutable next_timer : int;
  mutable inputs : int list;  (** user-scripted inputs, consumed first *)
  mutable input_count : int;
  mutable ticks : int;
  mutable timer_fires : int;
  batch_buf : Bytes.t;  (** scratch for the batched-tick/scan stubs *)
  mutable h_valid : bool;  (** the precomputed preemption horizon is live *)
  mutable h_pending : int;  (** ticks charged but not yet drawn/applied *)
  mutable h_count : int;  (** ticks from the live fields to the scan end *)
  mutable h_fired : bool;  (** the scan-end tick crosses the timer *)
  mutable h_now : int;
  mutable h_next : int;
  h_rng : Bytes.t;  (** PRNG state at scan end *)
}

val create : ?inputs:int list -> config -> t

(** Re-seed both streams in place as if the environment had been created
    with this seed (the input stream gets the same derived seed [create]
    uses). Counters ([now], [ticks], …) are untouched: callers reusing an
    environment restore those from a snapshot first. Drops any deferred
    ticks and the cached horizon. *)
val reseed : t -> int -> unit

(** Materialize the lazily deferred ticks: replay their PRNG draws (same
    draws, same order as eager ticking) so [now]/[next_timer]/[rng] catch
    up with the logical clock. Must run before anything reads those fields
    or draws from [rng] outside the tick machinery. Idempotent; keeps the
    horizon. *)
val sync : t -> unit

(** Drop deferred ticks and the cached horizon WITHOUT materializing —
    only correct when the live fields are being overwritten wholesale
    (snapshot restore, reseed). *)
val forget : t -> unit

(** Advance the clock for one executed instruction; [true] when the timer
    interrupt fired during it. O(1) between timer fires: ticks strictly
    inside the precomputed horizon defer their draws until {!sync}. *)
val tick : t -> bool

(** [tick_batch t n] advances the clock for [n] executed instructions,
    drawing (eventually — see {!sync}) exactly the PRNG stream [n]
    successive {!tick}s draw; returns how many of the [n] instructions
    crossed the timer. The fast dispatch loop uses this for regions — the
    clock, the stream, and the preemption-request count stay bit-identical
    to per-instruction execution. *)
val tick_batch : t -> int -> int

(** The eager reference implementation of {!tick}: materializes first,
    then steps the live state with per-draw calls. The property tests
    check the lazy paths against this. *)
val tick_eager : t -> bool

(** Charge non-instruction work (e.g. method compilation) to the clock.
    Materializes deferred ticks first and invalidates the horizon (the
    shifted [now] moves future timer crossings). *)
val charge : t -> int -> unit

val read_clock : t -> int

(** Advance the clock to at least [target] (idle waiting for a sleeper);
    returns the new time. *)
val idle_until : t -> int -> int

(** A bounded draw from the environment stream by something other than
    the clock (e.g. a native): deferred tick draws land first, and the
    horizon is invalidated (the stream shifted under it). *)
val random : t -> int -> int

(** Next external input: scripted values first, then a seeded stream. *)
val read_input : t -> int

val millis_to_units : t -> int -> int
