(* The simulated external environment: a virtual wall clock that advances a
   jittered amount per executed instruction, a periodic timer interrupt, and
   an external input source. This is where all of the machine's
   non-determinism lives — different seeds produce different interleavings
   and different clock readings, which record/replay must reproduce. *)

type config = {
  seed : int;
  base_cost : int; (* clock units per instruction, before jitter *)
  jitter : int; (* extra clock units per instruction in [0, jitter] *)
  spike_per_mille : int; (* chance/1000 of a cache-miss/page-fault spike *)
  spike_cost : int; (* extra clock units when a spike hits *)
  quantum : int; (* mean clock units between timer interrupts *)
  quantum_jitter : int; (* timer interval varies by +- this *)
  time_scale : int; (* clock units per "millisecond" (sleep/timed-wait) *)
  compile_cost : int; (* clock units charged per compiled instruction *)
}

(* Defaults tuned so that, as on real hardware (the paper: "a thread's
   execution speed can vary due to external factors such as caching and
   paging"), the number of instructions per scheduling quantum genuinely
   varies from run to run. *)
let default_config =
  {
    seed = 1;
    base_cost = 2;
    jitter = 3;
    spike_per_mille = 8;
    spike_cost = 400;
    quantum = 4000;
    quantum_jitter = 600;
    time_scale = 100;
    compile_cost = 10;
  }

type t = {
  cfg : config;
  rng : Prng.t;
  input_rng : Prng.t; (* independent stream so input is stable under jitter *)
  mutable now : int;
  mutable next_timer : int;
  mutable inputs : int list; (* user-scripted inputs, consumed first *)
  mutable input_count : int;
  mutable ticks : int; (* instructions charged *)
  mutable timer_fires : int;
  batch_buf : Bytes.t;
      (* scratch for the batched-tick stub: 8 int64 slots; slots 2..7 hold
         the (immutable) config, written once here; slots 0..1 carry
         now/next_timer across a call. Never holds state between calls. *)
}

let create ?(inputs = []) cfg =
  let batch_buf = Bytes.create 64 in
  let slot i v = Bytes.set_int64_ne batch_buf (8 * i) (Int64.of_int v) in
  slot 2 cfg.base_cost;
  slot 3 (cfg.jitter + 1);
  slot 4 cfg.spike_per_mille;
  slot 5 cfg.spike_cost;
  slot 6 cfg.quantum;
  slot 7 cfg.quantum_jitter;
  {
    cfg;
    rng = Prng.create cfg.seed;
    input_rng = Prng.create (cfg.seed lxor 0x5eed);
    now = 0;
    next_timer = cfg.quantum;
    inputs;
    input_count = 0;
    ticks = 0;
    timer_fires = 0;
    batch_buf;
  }

(* Re-seed both generators in place, as if the environment had been created
   with [seed]. [cfg.seed] keeps its creation-time value — it is only ever
   read by [create] — so a warm-reused environment whose counters have been
   restored to their creation values and whose streams are reseeded here is
   indistinguishable from a fresh [create]. The [lxor] mirrors [create]'s
   derivation of the independent input stream. *)
let reseed t seed =
  Prng.reseed t.rng seed;
  Prng.reseed t.input_rng (seed lxor 0x5eed)

(* Advance the clock for one executed instruction; returns true when the
   timer interrupt fired during this instruction. *)
let tick t =
  t.ticks <- t.ticks + 1;
  let cost =
    (* The common shape (both draws active) goes through the fused stub
       call. Draw order matters: the historical sum evaluated its operands
       right to left (OCaml's order), so the SPIKE draw consumed the
       stream before the jitter draw — preserved here, or every
       interleaving would shift. *)
    if t.cfg.jitter > 0 && t.cfg.jitter < 1024 && t.cfg.spike_per_mille > 0
    then begin
      let d = Prng.int_pair t.rng 1000 (t.cfg.jitter + 1) in
      t.cfg.base_cost + (d land 1023)
      + if d lsr 10 < t.cfg.spike_per_mille then t.cfg.spike_cost else 0
    end
    else
      t.cfg.base_cost
      + (if t.cfg.jitter > 0 then Prng.int t.rng (t.cfg.jitter + 1) else 0)
      +
      if
        t.cfg.spike_per_mille > 0
        && Prng.int t.rng 1000 < t.cfg.spike_per_mille
      then t.cfg.spike_cost
      else 0
  in
  t.now <- t.now + cost;
  if t.now >= t.next_timer then begin
    t.timer_fires <- t.timer_fires + 1;
    (* catch up past long pauses; each interval's length varies *)
    while t.now >= t.next_timer do
      let interval =
        t.cfg.quantum
        +
        if t.cfg.quantum_jitter > 0 then
          Prng.int t.rng (2 * t.cfg.quantum_jitter) - t.cfg.quantum_jitter
        else 0
      in
      t.next_timer <- t.next_timer + max 1 interval
    done;
    true
  end
  else false

external tick_batch_stub : Bytes.t -> Bytes.t -> int -> int
  = "dv_env_tick_batch"
[@@noalloc]

(* Advance the clock for [n] executed instructions in one stub call. Draws
   exactly the stream [n] successive [tick]s draw (the stub replicates the
   fused-pair branch above, spike draw first), so fused and unfused
   execution stay on the same PRNG sequence; returns how many of the [n]
   instructions crossed the timer — each would have made [tick] return
   true. Falls back to a [tick] loop for config shapes outside the fused
   fast path. *)
let tick_batch t n =
  if t.cfg.jitter > 0 && t.cfg.jitter < 1024 && t.cfg.spike_per_mille > 0
  then begin
    Bytes.set_int64_ne t.batch_buf 0 (Int64.of_int t.now);
    Bytes.set_int64_ne t.batch_buf 8 (Int64.of_int t.next_timer);
    let fires = tick_batch_stub (Prng.raw_state t.rng) t.batch_buf n in
    t.now <- Int64.to_int (Bytes.get_int64_ne t.batch_buf 0);
    t.next_timer <- Int64.to_int (Bytes.get_int64_ne t.batch_buf 8);
    t.ticks <- t.ticks + n;
    t.timer_fires <- t.timer_fires + fires;
    fires
  end
  else begin
    let fires = ref 0 in
    for _ = 1 to n do
      if tick t then incr fires
    done;
    !fires
  end

(* Charge non-instruction work (e.g. method compilation) to the clock. *)
let charge t cost =
  t.now <- t.now + cost;
  ()

let read_clock t = t.now

(* Advance the clock to at least [target] (idle waiting for a sleeper). *)
let idle_until t target =
  if target > t.now then t.now <- target;
  t.now

let read_input t =
  t.input_count <- t.input_count + 1;
  match t.inputs with
  | v :: rest ->
    t.inputs <- rest;
    v
  | [] -> Prng.int t.input_rng 1_000_000

let millis_to_units t ms = ms * t.cfg.time_scale
