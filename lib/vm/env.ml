(* The simulated external environment: a virtual wall clock that advances a
   jittered amount per executed instruction, a periodic timer interrupt, and
   an external input source. This is where all of the machine's
   non-determinism lives — different seeds produce different interleavings
   and different clock readings, which record/replay must reproduce. *)

type config = {
  seed : int;
  base_cost : int; (* clock units per instruction, before jitter *)
  jitter : int; (* extra clock units per instruction in [0, jitter] *)
  spike_per_mille : int; (* chance/1000 of a cache-miss/page-fault spike *)
  spike_cost : int; (* extra clock units when a spike hits *)
  quantum : int; (* mean clock units between timer interrupts *)
  quantum_jitter : int; (* timer interval varies by +- this *)
  time_scale : int; (* clock units per "millisecond" (sleep/timed-wait) *)
  compile_cost : int; (* clock units charged per compiled instruction *)
}

(* Defaults tuned so that, as on real hardware (the paper: "a thread's
   execution speed can vary due to external factors such as caching and
   paging"), the number of instructions per scheduling quantum genuinely
   varies from run to run. *)
let default_config =
  {
    seed = 1;
    base_cost = 2;
    jitter = 3;
    spike_per_mille = 8;
    spike_cost = 400;
    quantum = 4000;
    quantum_jitter = 600;
    time_scale = 100;
    compile_cost = 10;
  }

(* The horizon cache makes ticking O(1) between timer fires: one forward
   scan of the draw stream finds the next firing tick and the full
   environment state there; until an observer needs [now] (or the fire
   point is reached), a tick is a counter increment that touches neither
   the clock nor the PRNG. The deferred draws are materialized — same
   draws, same order — before anything can observe their absence, so the
   stream and every observable timestamp are bit-identical to eager
   ticking. Invariants while [h_valid]:
     - the live fields (now/next_timer/rng) are [h_pending] ticks behind
       the logical clock, with 0 <= h_pending < h_count;
     - no tick before the scan end fires the timer; the scan-end tick
       fires iff [h_fired];
     - [h_now]/[h_next]/[h_rng] are the exact post-tick state at scan end
       (interval catch-up draws included). *)
type t = {
  cfg : config;
  rng : Prng.t;
  input_rng : Prng.t; (* independent stream so input is stable under jitter *)
  mutable now : int;
  mutable next_timer : int;
  mutable inputs : int list; (* user-scripted inputs, consumed first *)
  mutable input_count : int;
  mutable ticks : int; (* instructions charged *)
  mutable timer_fires : int;
  batch_buf : Bytes.t;
      (* scratch for the batched-tick/scan stubs: 9 int64 slots; slots 2..8
         hold the (immutable) config, written once at create; slots 0..1
         carry now/next_timer across a call. Never holds state between
         calls. *)
  mutable h_valid : bool;
  mutable h_pending : int; (* ticks charged but not yet drawn/applied *)
  mutable h_count : int; (* ticks from the live fields to the scan end *)
  mutable h_fired : bool; (* the scan-end tick crosses the timer *)
  mutable h_now : int;
  mutable h_next : int;
  h_rng : Bytes.t; (* PRNG state at scan end (8 bytes, native-endian) *)
}

let create ?(inputs = []) cfg =
  let batch_buf = Bytes.create 72 in
  let slot i v = Bytes.set_int64_ne batch_buf (8 * i) (Int64.of_int v) in
  slot 2 cfg.base_cost;
  slot 3 (cfg.jitter + 1);
  slot 4 cfg.spike_per_mille;
  slot 5 cfg.spike_cost;
  slot 6 cfg.quantum;
  slot 7 cfg.quantum_jitter;
  (* per-tick draw order is always "spike (bound 1000) then jitter (bound
     jitter+1)", each present only when its config knob is nonzero — the
     mode bits tell the stubs which draws exist so jitter=0 and
     spike-free configs stay on the historical stream (no draw at all for
     an absent knob, never a wasted [mod 1]) *)
  slot 8
    ((if cfg.spike_per_mille > 0 then 1 else 0)
    lor if cfg.jitter > 0 then 2 else 0);
  {
    cfg;
    rng = Prng.create cfg.seed;
    input_rng = Prng.create (cfg.seed lxor 0x5eed);
    now = 0;
    next_timer = cfg.quantum;
    inputs;
    input_count = 0;
    ticks = 0;
    timer_fires = 0;
    batch_buf;
    h_valid = false;
    h_pending = 0;
    h_count = 0;
    h_fired = false;
    h_now = 0;
    h_next = 0;
    h_rng = Bytes.create 8;
  }

external tick_batch_stub : Bytes.t -> Bytes.t -> int -> int
  = "dv_env_tick_batch"
[@@noalloc]

external scan_stub : Bytes.t -> Bytes.t -> int -> int = "dv_env_scan"
[@@noalloc]

(* Drop the horizon without materializing: only correct when the live
   fields are about to be (or were just) overwritten wholesale — snapshot
   restore and reseed. Everyone else wants [sync]. *)
let forget t =
  t.h_pending <- 0;
  t.h_valid <- false

(* Re-seed both generators in place, as if the environment had been created
   with [seed]. [cfg.seed] keeps its creation-time value — it is only ever
   read by [create] — so a warm-reused environment whose counters have been
   restored to their creation values and whose streams are reseeded here is
   indistinguishable from a fresh [create]. The [lxor] mirrors [create]'s
   derivation of the independent input stream. *)
let reseed t seed =
  forget t;
  Prng.reseed t.rng seed;
  Prng.reseed t.input_rng (seed lxor 0x5eed)

(* Materialize the deferred ticks: replay their draws (exactly the stream
   [h_pending] eager ticks would consume — none of them fires, by the
   horizon invariant) so the live fields catch up with the logical clock.
   The horizon stays valid, just [h_pending] ticks shorter. *)
let sync t =
  if t.h_pending > 0 then begin
    Bytes.set_int64_ne t.batch_buf 0 (Int64.of_int t.now);
    Bytes.set_int64_ne t.batch_buf 8 (Int64.of_int t.next_timer);
    ignore (tick_batch_stub (Prng.raw_state t.rng) t.batch_buf t.h_pending);
    t.now <- Int64.to_int (Bytes.get_int64_ne t.batch_buf 0);
    t.next_timer <- Int64.to_int (Bytes.get_int64_ne t.batch_buf 8);
    t.h_count <- t.h_count - t.h_pending;
    t.h_pending <- 0
  end

(* Scan the draw stream forward from the live state (on scratch copies —
   the live rng/now are untouched) up to and including the next firing
   tick, capped so degenerate configs (a clock that never reaches the
   timer) still terminate. Caches (ticks-to-fire, state-at-fire). *)
let horizon_cap = 65536

let rescan t =
  Bytes.blit (Prng.raw_state t.rng) 0 t.h_rng 0 8;
  Bytes.set_int64_ne t.batch_buf 0 (Int64.of_int t.now);
  Bytes.set_int64_ne t.batch_buf 8 (Int64.of_int t.next_timer);
  let r = scan_stub t.h_rng t.batch_buf horizon_cap in
  t.h_count <- r lsr 1;
  t.h_fired <- r land 1 = 1;
  t.h_now <- Int64.to_int (Bytes.get_int64_ne t.batch_buf 0);
  t.h_next <- Int64.to_int (Bytes.get_int64_ne t.batch_buf 8);
  t.h_pending <- 0;
  t.h_valid <- true

(* Advance the clock for [n] executed instructions. The common case — the
   whole batch lands strictly inside the horizon — is a pair of counter
   bumps; reaching the scan end restores the cached at-fire state (the
   prefix draws were already consumed by the scan, so nothing is
   recomputed) and re-scans for the remainder. Returns how many of the [n]
   instructions crossed the timer — each would have made [tick] return
   true. *)
let rec tick_batch t n =
  if n <= 0 then 0
  else if t.h_valid && t.h_pending + n < t.h_count then begin
    t.h_pending <- t.h_pending + n;
    t.ticks <- t.ticks + n;
    0
  end
  else if t.h_valid then begin
    (* consume the horizon: jump to the cached scan-end state *)
    let consumed = t.h_count - t.h_pending in
    t.now <- t.h_now;
    t.next_timer <- t.h_next;
    Bytes.blit t.h_rng 0 (Prng.raw_state t.rng) 0 8;
    t.ticks <- t.ticks + consumed;
    t.h_valid <- false;
    t.h_pending <- 0;
    let f0 =
      if t.h_fired then begin
        t.timer_fires <- t.timer_fires + 1;
        1
      end
      else 0
    in
    f0 + tick_batch t (n - consumed)
  end
  else begin
    rescan t;
    tick_batch t n
  end

(* Advance the clock for one executed instruction; returns true when the
   timer interrupt fired during this instruction. *)
let tick t = tick_batch t 1 > 0

(* The eager reference implementation: materializes everything and steps
   the live state directly, one draw at a time. The property tests compare
   the lazy horizon path against this; it is also the code the stubs must
   reproduce bit for bit. *)
let tick_eager t =
  sync t;
  t.h_valid <- false;
  t.ticks <- t.ticks + 1;
  let cost =
    (* The common shape (both draws active) goes through the fused stub
       call. Draw order matters: the historical sum evaluated its operands
       right to left (OCaml's order), so the SPIKE draw consumed the
       stream before the jitter draw — preserved here, or every
       interleaving would shift. *)
    if t.cfg.jitter > 0 && t.cfg.jitter < 1024 && t.cfg.spike_per_mille > 0
    then begin
      let d = Prng.int_pair t.rng 1000 (t.cfg.jitter + 1) in
      t.cfg.base_cost + (d land 1023)
      + if d lsr 10 < t.cfg.spike_per_mille then t.cfg.spike_cost else 0
    end
    else
      t.cfg.base_cost
      + (if t.cfg.jitter > 0 then Prng.int t.rng (t.cfg.jitter + 1) else 0)
      +
      if
        t.cfg.spike_per_mille > 0
        && Prng.int t.rng 1000 < t.cfg.spike_per_mille
      then t.cfg.spike_cost
      else 0
  in
  t.now <- t.now + cost;
  if t.now >= t.next_timer then begin
    t.timer_fires <- t.timer_fires + 1;
    (* catch up past long pauses; each interval's length varies *)
    while t.now >= t.next_timer do
      let interval =
        t.cfg.quantum
        +
        if t.cfg.quantum_jitter > 0 then
          Prng.int t.rng (2 * t.cfg.quantum_jitter) - t.cfg.quantum_jitter
        else 0
      in
      t.next_timer <- t.next_timer + max 1 interval
    done;
    true
  end
  else false

(* Charge non-instruction work (e.g. method compilation) to the clock.
   The deferred draws logically precede the charge, so they materialize
   first; the shifted [now] moves future timer crossings, so the cached
   horizon is stale after. *)
let charge t cost =
  sync t;
  t.h_valid <- false;
  t.now <- t.now + cost

let read_clock t =
  sync t;
  t.now

(* Advance the clock to at least [target] (idle waiting for a sleeper). *)
let idle_until t target =
  sync t;
  t.h_valid <- false;
  if target > t.now then t.now <- target;
  t.now

(* A draw from the environment stream by something other than the clock
   (e.g. a native): the deferred tick draws come first, and the foreign
   draw shifts the stream under the cached horizon. *)
let random t bound =
  sync t;
  t.h_valid <- false;
  Prng.int t.rng bound

let read_input t =
  t.input_count <- t.input_count + 1;
  match t.inputs with
  | v :: rest ->
    t.inputs <- rest;
    v
  | [] -> Prng.int t.input_rng 1_000_000

let millis_to_units t ms = ms * t.cfg.time_scale
