(* Central runtime representation of the virtual machine: resolved
   instructions, loaded classes and methods with reference maps, threads,
   monitors, the scheduler, and the instrumentation hook points that DejaVu
   and the baseline replay schemes attach to.

   Memory model: the heap is one [int array] per semispace. Addresses are
   word indices into the current semispace; address 0 is null. Every object
   has a three-word header [class_id; monitor_id; length] followed by its
   slots. There are no tag bits: reference identification is type-accurate,
   via class field maps for heap objects and per-pc reference maps (computed
   by the verifier) for thread stacks — exactly the Jalapeño discipline the
   paper relies on. *)

type cmp = Bytecode.Instr.cmp

type bin = Badd | Bsub | Bmul | Bdiv | Brem | Band | Bor | Bxor | Bshl | Bshr

type cstate = Registered | Initialized

type elemkind = Not_array | Arr_int | Arr_ref

(* Resolved ("compiled") instructions. Branch targets are compiled-code
   indices; names are resolved to ids/slots. Call, spawn, and string-load
   operands carry the resolved record itself rather than an index, so the
   dispatcher's hot loop never re-derives them per visit — the type group
   below is mutually recursive for exactly this reason. *)
type cinstr =
  | KConst of int
  | KStr of rclass * int (* owning class, interned-string index *)
  | KNull
  | KLoad of int
  | KStore of int
  | KDup
  | KPop
  | KSwap
  | KBin of bin
  | KNeg
  | KIf of cmp * int
  | KIfz of cmp * int
  | KIfnull of int
  | KIfnonnull of int
  | KIfrefeq of int
  | KIfrefne of int
  | KGoto of int
  | KNew of int (* class id *)
  | KGetfield of int * Bytecode.Instr.ty (* absolute slot offset, field type *)
  | KPutfield of int * Bytecode.Instr.ty
  | KGetstatic of int * int * Bytecode.Instr.ty (* declaring cid, globals index *)
  | KPutstatic of int * int * Bytecode.Instr.ty
  | KNewarray of Bytecode.Instr.ty (* element type *)
  | KAload
  | KAstore
  | KArraylength
  | KCheckcast of int (* class id *)
  | KInstanceof of int
  | KInvokestatic of rmethod (* pre-resolved callee *)
  | KInvokevirtual of int * int * int * ic
    (* declaring cid, vtable slot, nargs, per-site monomorphic cache *)
  | KRet
  | KRetv
  | KThrow
  | KMonitorenter
  | KMonitorexit
  | KWait
  | KTimedwait
  | KNotify
  | KNotifyall
  | KSpawnstatic of rmethod (* pre-resolved thread body *)
  | KSpawnvirtual of int * int * int * ic
  | KSleep
  | KJoin
  | KInterrupt
  | KCurrenttime
  | KReadinput
  | KNative of int (* native id *)
  | KPrint
  | KPrints
  | KHalt
  | KNop
  | KYield (* yield point, injected by the method compiler *)
  (* Superinstructions, produced only by the fusion pass in Vm.Compile and
     present only in [k_fused] (never in the canonical [k_code]). Each one
     occupies the first constituent's slot; the shadow slots behind it keep
     the original instructions, so pc numbering, branch targets, handler
     ranges, reference maps, and the source-pc table are untouched and a
     branch into the middle of a fused region executes the originals. *)
  | KLdLdBin of int * int * bin (* load i; load j; bin op *)
  | KLdConstBin of int * int * bin (* load i; const n; bin op *)
  | KBinIf of bin * cmp * int (* bin op; if cmp target *)
  | KBinIfz of bin * cmp * int (* bin op; ifz cmp target *)
  | KLdGetfield of int * int * Bytecode.Instr.ty (* load i; getfield slot *)
  | KLdStore of int * int (* load i; store j *)
  | KLdIf of int * cmp * int (* load i; if cmp target *)
  | KLdIfz of int * cmp * int (* load i; ifz cmp target *)
  | KLdLdIf of int * int * cmp * int (* load i; load j; if cmp target *)
  | KLdConstIf of int * int * cmp * int (* load i; const n; if cmp target *)
  | KLdLdBinIf of int * int * bin * cmp * int
      (* load i; load j; bin op; if cmp target *)
  | KLdLdBinIfz of int * int * bin * cmp * int
      (* load i; load j; bin op; ifz cmp target *)
  | KLdConstBinSt of int * int * bin * int
      (* load i; const n; bin op; store j *)
  | KBinSt of bin * int (* bin op; store j *)

(* Inline cache: one mutable cell per virtual call/spawn site. [ic_cid] /
   [ic_meth] hold the most-recent receiver class and resolved callee (the
   monomorphic fast path); on a second receiver class the site transitions
   to polymorphic and tracks up to [poly_limit] (class, callee) pairs in
   [ic_cids] / [ic_meths]; past that it goes megamorphic with a cid-indexed
   dispatch table in [ic_mega] ([ic_n = -1]). The cells live in OCaml-side
   compiled code — outside the heap, the state digest, and snapshots — so
   cache state is invisible to record/replay: warm or cold caches yield
   bit-identical traces and digests, because every state only memoizes the
   deterministic [rc_vtable] walk. *)
and ic = {
  mutable ic_cid : int; (* -1 while cold *)
  mutable ic_meth : rmethod;
  mutable ic_cids : int array; (* poly entries; [||] while monomorphic *)
  mutable ic_meths : rmethod array;
  mutable ic_n : int; (* valid poly entries; -1 once megamorphic *)
  mutable ic_mega : rmethod array; (* cid-indexed; [||] until megamorphic *)
}

(* Reference map: which local slots / operand-stack slots hold references at
   a given pc. [map_stack] covers the prefix up to [map_depth]. *)
and refmap = { map_locals : bool array; map_stack : bool array; map_depth : int }

(* Register IR, produced by the post-verify lowering pass in [Vm.Regir] and
   executed by [Interp.exec_region]. Operands are explicit frame slots:
   slot [i] is local [i] for i < nlocals and operand-stack depth
   [i - nlocals] otherwise, addressed as one flat window at
   [t_fp + frame_header_words]. The stack tier's push/pop traffic becomes
   direct slot reads/writes; [t_sp]/[t_pc] are stored only at the points
   where canonical execution could observe them (faults, allocations,
   hooks, region exits), with the canonical fault-time values carried in
   the instruction ([pc], [fsp] = sp as a slot index).

   A region covers a maximal straight-line run of canonical instructions
   (no barrier — branch target, handler boundary, yield point — past the
   entry) and is segmented at every instruction that can fault, allocate,
   or run a hook: each segment pays its logical-clock ticks in one
   [RTick]/[Env.tick_batch] call (same PRNG draws as that many single
   ticks), then performs the canonical operand-stack WRITES of the segment
   — elided only when a later write in the same fault-free run overwrites
   the slot before any possible observation — and ends with the faulting /
   terminal operation. Pure ops read through the lowering's copy
   propagation; risky and terminal ops read their canonical stack slots,
   which the all-slots-live barrier before them guarantees are
   materialized. *)
and rop =
  | RTick of int (* batched logical-clock ticks for the next segment *)
  (* pure segment body: cannot fault, allocate, or run hooks *)
  | RConst of int * int (* dst, value *)
  | RMove of int * int (* dst, src *)
  | RStr of int * rclass * int (* dst, owning class, interned index *)
  | RBin of bin * int * int * int (* op, dst, src a, src b; never div/rem *)
  | RBinC of bin * int * int * int (* op, dst, src a, constant b *)
  | RBinCL of bin * int * int * int (* op, dst, constant a, src b *)
  | RNeg of int * int (* dst, src *)
  | RSwapMem of int * int (* exchange two materialized slots *)
  | RInstanceof of int * int * int (* dst, class id, src *)
  | RPrint of int (* src *)
  (* risky segment finals: [pc] is the canonical pc, [fsp]-style operands
     are slot indices (abs sp = fp + header + slot), stored before the
     effect so faults, GC scans, and hooks see the canonical frame *)
  | RDivRem of bin * int * int (* op (div/rem), pc, dst slot (b at dst+1) *)
  | RGetfield of int * int * int (* field slot, pc, obj/dst slot *)
  | RPutfield of int * int * int (* field slot, pc, obj slot (v at obj+1) *)
  | RGetstatic of int * int * int * int (* cid, globals index, pc, dst slot *)
  | RPutstatic of int * int * int * int (* cid, globals index, pc, v slot *)
  | RNewobj of int * int * int (* cid, pc, dst slot *)
  | RNewarray of bool * int * int (* elem_ref, pc, len/dst slot *)
  | RAload of int * int (* pc, arr/dst slot (idx at arr+1) *)
  | RAstore of int * int (* pc, arr slot (idx at arr+1, v at arr+2) *)
  | RArraylength of int * int (* pc, arr/dst slot *)
  | RCheckcast of int * int * int (* cid, pc, obj slot (sp stays above) *)
  | RPrints of int * int (* pc, string slot *)
  | RYield of int * int
    (* yield point: next pc, sp slot. Segment-final like a risky op — its
       tick is paid by the preceding [RTick], so the preemption bit the
       yieldpoint hook reads reflects exactly the ticks a canonical
       execution would have latched by this yield. The region continues
       past it unless the hook switches threads or ends the run. *)
  | RMonEnter of int * int
    (* monitorenter: next pc, obj slot. Segment-final like a yield (the
       scheduler may park the thread), but the region continues on the
       uncontended fast path — the monitor is free or already owned, so
       nothing has switched and nothing has touched the frame. *)
  | RMonExit of int * int
    (* monitorexit: next pc, obj slot. Releasing never parks the current
       thread (a handoff only readies the next owner), so the region
       always continues. *)
  | RInlineStatic of rmethod * int * int
    (* mid-region static call splice: callee, pc, entry sp slot. Pushes
       the callee frame canonically, executes the callee's whole-body
       region in place when it has one, and continues this region right
       after the call when the callee returned without a switch; any
       other outcome bails to the outer loop with canonical frames. *)
  | RInlineVirtual of int * int * ic * int * int
    (* mid-region virtual call splice: vtable slot, nargs, cache, pc,
       entry sp slot. Same cell as the stack tier's inline cache — the
       splice sits behind the same IC guard, and a receiver the lowering's
       CHA prediction did not anticipate still dispatches correctly. *)
  (* terminals: exit the region, storing the canonical pc/sp *)
  | RIf of cmp * int * int * int (* cmp, target, fall pc, a slot (b at a+1) *)
  | RIfz of cmp * int * int * int (* cmp, target, fall pc, a slot *)
  | RGoto of int * int (* target, exit sp slot *)
  | RRet of int * int (* pc, exit sp slot *)
  | RRetv of int * int (* pc, result slot *)
  | RCallStatic of rmethod * int * int (* callee, pc, entry sp slot *)
  | RCallVirtual of int * int * ic * int * int
    (* vtable slot, nargs, cache, pc, entry sp slot *)
  | REnd of int * int (* fall-through exit: next pc, exit sp slot *)

and region = {
  r_n : int; (* canonical instructions covered (fuel / tick budget) *)
  r_ops : rop array;
}

and rhandler = {
  k_from : int; (* compiled pcs *)
  k_upto : int;
  k_target : int;
  k_catch : int; (* class id, -1 catches all *)
}

and compiled = {
  k_code : cinstr array; (* canonical stream: verifier, observers, debugger *)
  k_fused : cinstr array;
      (* same length and pc numbering as [k_code]; superinstruction heads
         with original instructions in the shadow slots. Physically equal
         to [k_code] when fusion is disabled. Only the fast dispatch loop
         executes it. *)
  k_regions : region option array;
      (* register-IR tier, indexed by entry pc ([None] mid-region or when
         the tier is disabled). Lives inside [compiled] so snapshot
         rollback of [rm_compiled] un-compiles the register tier with the
         method, re-paying the compile clock charge on re-execution. *)
  k_handlers : rhandler array;
  k_maps : refmap array; (* one per compiled pc *)
  k_max_stack : int;
  k_src_pc : int array; (* compiled pc -> source pc *)
  k_lines : (int * int) array; (* compiled pc -> source line table *)
}

and rmethod = {
  uid : int;
  rm_cid : int;
  rm_name : string;
  rm_static : bool;
  rm_nargs : int;
  rm_args : Bytecode.Instr.ty array;
  rm_nlocals : int;
  rm_ret : Bytecode.Instr.ty option;
  rm_decl : Bytecode.Decl.mdecl;
  mutable rm_compiled : compiled option; (* lazily compiled on first call *)
}

and rclass = {
  cid : int;
  rc_name : string;
  rc_super : int; (* -1 for Object *)
  rc_depth : int;
  rc_display : int array; (* ancestors by depth; display.(rc_depth) = cid *)
  rc_fields : (string * Bytecode.Instr.ty) array; (* flattened instance fields *)
  rc_field_index : (string, int) Hashtbl.t;
  rc_statics : (string * Bytecode.Instr.ty) array;
  rc_statics_base : int; (* offset into globals *)
  rc_vtable : int array; (* vslot -> method uid *)
  rc_vslot_of : (string, int) Hashtbl.t;
  rc_method_of : (string, int) Hashtbl.t; (* declared methods: name -> uid *)
  rc_string_lits : string array; (* literal pool gathered at registration *)
  mutable rc_strings : int array; (* interned addrs, filled at class init *)
  mutable rc_state : cstate;
  rc_elem : elemkind;
}

let returns m = m.rm_ret <> None

type tstate =
  | Ready
  | Running
  | Blocked (* waiting to enter a monitor *)
  | Waiting (* in a wait set *)
  | Timed_waiting (* in a wait set with a timeout *)
  | Sleeping
  | Joining of int
  | Terminated

let string_of_tstate = function
  | Ready -> "ready"
  | Running -> "running"
  | Blocked -> "blocked"
  | Waiting -> "waiting"
  | Timed_waiting -> "timed-waiting"
  | Sleeping -> "sleeping"
  | Joining t -> "joining(" ^ string_of_int t ^ ")"
  | Terminated -> "terminated"

(* Frame layout, relative to the frame pointer (offsets within the thread's
   stack array data area):
     fp+0  caller method uid (-1 in a thread's base frame)
     fp+1  caller resume pc
     fp+2  caller fp
     fp+3.. locals, then the operand stack up to sp. *)
let frame_header_words = 3

(* Raised by runtime services to signal a Java-level exception by class name;
   the interpreter converts it into a heap object and unwinds. *)
exception Vm_exception of string

type thread = {
  tid : int;
  t_name : string;
  mutable t_stack : int; (* heap address of the stack array object *)
  mutable t_fp : int; (* offset into the stack array's data area *)
  mutable t_sp : int;
  mutable t_pc : int; (* compiled pc in t_meth *)
  mutable t_meth : rmethod;
  mutable t_state : tstate;
  mutable t_wake : int; (* wall-clock deadline for sleep / timed wait *)
  mutable t_interrupted : bool;
  mutable t_wait_mon : int; (* monitor id while in a wait set, else -1 *)
  mutable t_saved_count : int; (* monitor recursion count across wait/block *)
  mutable t_joiners : int list;
  mutable t_exc : int; (* in-flight exception object during unwinding *)
}

type monitor = {
  m_id : int;
  mutable m_owner : int; (* tid, -1 when free *)
  mutable m_count : int;
  m_entryq : int Queue.t; (* tids blocked on monitorenter *)
  mutable m_waitset : int list; (* tids in wait order *)
}

type status =
  | Running_
  | Finished (* every thread terminated *)
  | Halted of int (* Halt executed *)
  | Deadlocked
  | Fatal of string (* OutOfMemory, internal invariant broken, ... *)

type clock_reason =
  | Capp (* application Currenttime *)
  | Csched (* scheduler's periodic read for sleep / timed wait *)
  | Cidle of int (* idle advance to the earliest wake time *)

type native_outcome = {
  no_result : int option;
  no_callbacks : (int * int array) list; (* method uid, int args *)
}

type obs = {
  o_tid : int;
  o_uid : int; (* method uid *)
  o_pc : int;
  o_tag : int; (* small instruction tag for digesting *)
}

type stats = {
  mutable n_instr : int;
  mutable n_yield : int;
  mutable n_switch : int;
  mutable n_preempt_req : int;
  mutable n_gc : int;
  mutable n_alloc_words : int;
  mutable n_alloc_objects : int;
  mutable n_compiled_methods : int;
  mutable n_classes_initialized : int;
  mutable n_stack_grows : int;
  mutable n_clock_reads : int;
  mutable n_input_reads : int;
  mutable n_native_calls : int;
  mutable n_monitor_ops : int;
  mutable n_exceptions : int;
  mutable n_regir_instr : int; (* canonical instrs retired via register regions *)
  mutable n_regir_mon : int; (* monitor ops executed inside register regions *)
  mutable n_regir_inline : int; (* calls spliced inline inside register regions *)
}

let fresh_stats () =
  {
    n_instr = 0;
    n_yield = 0;
    n_switch = 0;
    n_preempt_req = 0;
    n_gc = 0;
    n_alloc_words = 0;
    n_alloc_objects = 0;
    n_compiled_methods = 0;
    n_classes_initialized = 0;
    n_stack_grows = 0;
    n_clock_reads = 0;
    n_input_reads = 0;
    n_native_calls = 0;
    n_monitor_ops = 0;
    n_exceptions = 0;
    n_regir_instr = 0;
    n_regir_mon = 0;
    n_regir_inline = 0;
  }

type native = {
  nat_id : int;
  nat_name : string;
  nat_arity : int;
  nat_returns : bool;
  nat_fn : t -> int array -> native_outcome;
}

(* Instrumentation hook points. The default ("live") hooks consult the
   environment directly; DejaVu's record and replay modes replace them —
   this stands in for the paper's cross-optimized instrumentation being
   compiled into the VM's inner loop. *)
and hooks = {
  mutable h_yieldpoint : t -> unit;
  mutable h_clock : t -> clock_reason -> int;
  mutable h_input : t -> int;
  mutable h_native : t -> native -> int array -> native_outcome;
  mutable h_observe : (t -> int -> int -> int -> int -> unit) option;
      (* tid, method uid, pc, instruction tag — unboxed so the hot loop
         never allocates an event record; Observer builds [obs] values
         only when it keeps them *)
  mutable h_heap_read : (t -> int -> int -> unit) option; (* addr, slot *)
  mutable h_heap_write : (t -> int -> int -> unit) option;
  mutable h_switch : (t -> int -> int -> unit) option; (* from tid, to tid *)
  mutable h_instr : (t -> unit) option; (* per instruction retired *)
  mutable h_pick : (t -> int -> int) option;
      (* dispatch override: given the scheduler's FIFO choice, return the
         tid that must run instead (must be Ready). Used by replay schemes
         that do NOT replay the thread package and therefore have to steer
         it externally (Russinovich-Cogswell style). *)
  mutable h_spawn : (t -> int -> unit) option; (* new thread's tid *)
  mutable h_lock : (t -> bool -> int -> int -> unit) option;
      (* monitor ownership transition: acquired?, monitor id, tid — fires
         only on the free->owned and owned->free edges, never on recursive
         re-entry/exit, so listeners see lock *release points* and *acquire
         points* in the JMM sense *)
  mutable h_hb : (t -> int -> int -> unit) option;
      (* cross-thread happens-before edge established outside monitors:
         from tid, to tid (join completion, interrupt delivery) *)
}

and config = {
  heap_words : int; (* words per semispace *)
  stack_init : int; (* initial thread-stack words (data area) *)
  stack_max : int; (* max thread-stack words *)
  stack_slack : int; (* eager-growth threshold, see DejaVu symmetry *)
  instr_limit : int; (* safety valve; Fatal when exceeded *)
  fuse : bool; (* superinstruction fusion in the compiler (k_fused) *)
  regir : bool; (* register-IR tier in the compiler (k_regions) *)
  audit : bool;
      (* re-verify the fused stream and the lowered region table against
         the canonical code at compile time. A belt-and-braces pass for
         the test suite: it can only reject compiler bugs, never change
         behavior, and on sub-millisecond workloads its wall cost rivals
         the run itself — so production configs leave it off *)
  clock : bool;
      (* advance the environment clock per instruction (always true in
         real runs; the bench turns it off to price the clock itself) *)
  env_cfg : Env.config;
}

and t = {
  cfg : config;
  program : Bytecode.Decl.program;
  env : Env.t;
  (* heap *)
  mutable heap : int array; (* current semispace *)
  mutable heap_alt : int array;
  mutable hp : int; (* bump pointer; starts above 0 so 0 stays null *)
  mutable gc_threshold : int;
  (* temp roots: addresses held by the interpreter across allocations *)
  mutable temp_roots : int array;
  mutable n_temps : int;
  (* pinned roots: long-lived addresses registered by instrumentation
     (e.g. DejaVu's trace buffer); the GC keeps them up to date *)
  mutable pinned_roots : int array;
  mutable n_pinned : int;
  (* statics *)
  globals : int array;
  global_refs : bool array;
  nglobals : int;
  (* classes and methods, fully registered at boot, initialized lazily *)
  classes : rclass array;
  class_of_name : (string, int) Hashtbl.t;
  methods : rmethod array;
  (* natives *)
  natives_by_id : native array;
  native_id_of : (string, int) Hashtbl.t;
  (* monitors *)
  mutable monitors : monitor array;
  mutable n_monitors : int;
  (* threads and scheduling *)
  mutable threads : thread array;
  mutable n_threads : int;
  readyq : int Queue.t;
  mutable current : int; (* tid, -1 before boot *)
  mutable sleepers : (int * int) list; (* (wake, tid), sorted *)
  mutable live_threads : int;
  mutable status : status;
  mutable preempt_pending : bool; (* the "preemptive hardware bit" *)
  (* output *)
  output : Buffer.t;
  hooks : hooks;
  stats : stats;
}

let cur vm = vm.threads.(vm.current)

let the_class vm cid = vm.classes.(cid)

let class_id vm name =
  match Hashtbl.find_opt vm.class_of_name name with
  | Some cid -> cid
  | None -> invalid_arg ("unknown class " ^ name)

let the_method vm uid = vm.methods.(uid)

(* O(1) subtype test via the class display. *)
let is_subclass vm ~sub ~sup =
  let s = vm.classes.(sub) and p = vm.classes.(sup) in
  p.rc_depth <= s.rc_depth && s.rc_display.(p.rc_depth) = sup

(* Least common ancestor of two classes (Object in the worst case). *)
let lca vm a b =
  let ca = vm.classes.(a) and cb = vm.classes.(b) in
  let d = ref (min ca.rc_depth cb.rc_depth) in
  while ca.rc_display.(!d) <> cb.rc_display.(!d) do
    decr d
  done;
  ca.rc_display.(!d)

let compiled m =
  match m.rm_compiled with
  | Some c -> c
  | None -> invalid_arg ("method not compiled: " ^ m.rm_name)

(* All wall-clock reads route through this wrapper so the read count is
   visible in the stats regardless of which hooks are installed. *)
let read_clock (vm : t) reason =
  vm.stats.n_clock_reads <- vm.stats.n_clock_reads + 1;
  vm.hooks.h_clock vm reason

let default_config =
  {
    heap_words = 1 lsl 20;
    stack_init = 256;
    stack_max = 1 lsl 16;
    stack_slack = 48;
    instr_limit = 200_000_000;
    fuse = true;
    regir = true;
    audit = false;
    clock = true;
    env_cfg = Env.default_config;
  }

(* Distinct receiver classes a call site tracks before megamorphic
   fallback (the classic mono -> poly(4) -> table progression). *)
let poly_limit = 4

(* Small instruction tag used by observers to digest the event stream. *)
let tag_of_cinstr = function
  | KConst _ -> 1
  | KStr _ -> 2
  | KNull -> 3
  | KLoad _ -> 4
  | KStore _ -> 5
  | KDup -> 6
  | KPop -> 7
  | KSwap -> 8
  | KBin _ -> 9
  | KNeg -> 10
  | KIf _ -> 11
  | KIfz _ -> 12
  | KIfnull _ -> 13
  | KIfnonnull _ -> 14
  | KGoto _ -> 15
  | KNew _ -> 16
  | KGetfield _ -> 17
  | KPutfield _ -> 18
  | KGetstatic _ -> 19
  | KPutstatic _ -> 20
  | KNewarray _ -> 21
  | KAload -> 22
  | KAstore -> 23
  | KArraylength -> 24
  | KCheckcast _ -> 49
  | KInstanceof _ -> 50
  | KIfrefeq _ -> 51
  | KIfrefne _ -> 52
  | KInvokestatic _ -> 25
  | KInvokevirtual _ -> 26
  | KRet -> 27
  | KRetv -> 28
  | KThrow -> 29
  | KMonitorenter -> 30
  | KMonitorexit -> 31
  | KWait -> 32
  | KTimedwait -> 33
  | KNotify -> 34
  | KNotifyall -> 35
  | KSpawnstatic _ -> 36
  | KSpawnvirtual _ -> 37
  | KSleep -> 38
  | KJoin -> 39
  | KInterrupt -> 40
  | KCurrenttime -> 41
  | KReadinput -> 42
  | KNative _ -> 43
  | KPrint -> 44
  | KPrints -> 45
  | KHalt -> 46
  | KNop -> 47
  | KYield -> 48
  (* superinstructions never reach observers (the observed loop executes
     the canonical k_code), but the tags stay total and stable for the
     disassembler and any future fused-stream tooling *)
  | KLdLdBin _ -> 53
  | KLdConstBin _ -> 54
  | KBinIf _ -> 55
  | KBinIfz _ -> 56
  | KLdGetfield _ -> 57
  | KLdStore _ -> 58
  | KLdIf _ -> 59
  | KLdIfz _ -> 60
  | KLdLdIf _ -> 61
  | KLdConstIf _ -> 62
  | KLdLdBinIf _ -> 63
  | KLdLdBinIfz _ -> 64
  | KLdConstBinSt _ -> 65
  | KBinSt _ -> 66

(* Number of canonical-stream slots a fused-stream instruction covers. *)
let width_of_cinstr = function
  | KLdLdBinIf _ | KLdLdBinIfz _ | KLdConstBinSt _ -> 4
  | KLdLdBin _ | KLdConstBin _ | KLdLdIf _ | KLdConstIf _ -> 3
  | KBinIf _ | KBinIfz _ | KLdGetfield _ | KLdStore _ | KLdIf _ | KLdIfz _
  | KBinSt _ -> 2
  | _ -> 1

(* The canonical instructions a superinstruction stands for, in execution
   order; [None] for ordinary instructions. [Verify.check_fusion] compares
   this expansion against the shadow slots, and the disassembler prints it. *)
let constituents_of_cinstr = function
  | KLdLdBin (i, j, op) -> Some [| KLoad i; KLoad j; KBin op |]
  | KLdConstBin (i, n, op) -> Some [| KLoad i; KConst n; KBin op |]
  | KBinIf (op, c, t) -> Some [| KBin op; KIf (c, t) |]
  | KBinIfz (op, c, t) -> Some [| KBin op; KIfz (c, t) |]
  | KLdGetfield (i, slot, ty) -> Some [| KLoad i; KGetfield (slot, ty) |]
  | KLdStore (i, j) -> Some [| KLoad i; KStore j |]
  | KLdIf (i, c, t) -> Some [| KLoad i; KIf (c, t) |]
  | KLdIfz (i, c, t) -> Some [| KLoad i; KIfz (c, t) |]
  | KLdLdIf (i, j, c, t) -> Some [| KLoad i; KLoad j; KIf (c, t) |]
  | KLdConstIf (i, n, c, t) -> Some [| KLoad i; KConst n; KIf (c, t) |]
  | KLdLdBinIf (i, j, op, c, t) ->
    Some [| KLoad i; KLoad j; KBin op; KIf (c, t) |]
  | KLdLdBinIfz (i, j, op, c, t) ->
    Some [| KLoad i; KLoad j; KBin op; KIfz (c, t) |]
  | KLdConstBinSt (i, n, op, j) ->
    Some [| KLoad i; KConst n; KBin op; KStore j |]
  | KBinSt (op, j) -> Some [| KBin op; KStore j |]
  | _ -> None

(* Branch target carried by a canonical instruction, if any — the fusion
   pass uses this to find the barriers no fused region may span. *)
let target_of_cinstr = function
  | KIf (_, t) | KIfz (_, t) | KIfnull t | KIfnonnull t | KIfrefeq t
  | KIfrefne t | KGoto t ->
    Some t
  | _ -> None
