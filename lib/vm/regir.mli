(** Register-IR lowering: translates verified stack bytecode into
    straight-line regions of register operations ([Rt.rop]) dispatched by
    the fast interpreter loop. Regions preserve canonical pc numbering,
    tick accounting, and every observable operand-stack write (DESIGN.md
    sections 7 and 10). *)

exception Error of string

(** Build the region table for a verified method body. Indexed by entry
    pc; [None] everywhere a region does not start. Regions never cross
    branch targets, handler boundaries, or excluded instructions, and
    only cover runs of at least two instructions. [inline] is the
    compiler's tiny-callee predicate: a call instruction it maps to
    [Some callee] is spliced mid-region ([Rt.RInlineStatic] /
    [Rt.RInlineVirtual]) instead of ending it; the returned method is
    the statically predicted target, used only for its arity and return
    shape — the runtime still dispatches through the shared inline
    cache. *)
val lower :
  ?inline:(Rt.cinstr -> Rt.rmethod option) ->
  nlocals:int ->
  max_stack:int ->
  Rt.cinstr array ->
  Rt.rhandler array ->
  Rt.refmap array ->
  Rt.region option array

(** Static audit of a lowered region table against the canonical code —
    the regir analogue of [Verify.check_fusion]. Checks extents, tick
    totals, slot bounds, fault-time sp slots against the reference maps,
    operand agreement with [k_code], and physical sharing of inline-cache
    cells. Raises [Error] on any violation. *)
val check :
  Rt.rmethod ->
  Rt.cinstr array ->
  Rt.rhandler array ->
  Rt.refmap array ->
  nlocals:int ->
  max_stack:int ->
  Rt.region option array ->
  unit
