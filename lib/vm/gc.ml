(* Semispace copying collector, type-accurate in the Jalapeño sense: heap
   objects are scanned via their class's field types, thread stacks via the
   verifier's per-pc reference maps. No conservatism anywhere: every root is
   known exactly, so objects always move and dangling "maybe pointers" cannot
   exist.

   Collection is only ever triggered from an allocation. At that moment the
   allocating thread sits at the allocation site and every other thread is
   suspended at a yield point or a blocking operation — all of which are safe
   points with exact reference maps, mirroring the paper's description of
   Jalapeño's quasi-preemptive scheduling guaranteeing safe points. *)

exception Out_of_memory

(* First allocatable word; 0 stays null and a few guard words catch stray
   address arithmetic. *)
let heap_start = 4

let collect (vm : Rt.t) =
  vm.stats.n_gc <- vm.stats.n_gc + 1;
  let from_ = vm.heap in
  let to_ =
    (* lazily materialized: Vm.create defers the second semispace to the
       first collection (fresh zeros here, stale bytes after later swaps —
       exactly what an eagerly allocated to-space would hold too). The
       from-space may have grown since the last swap (Heap sizes the
       backing arrays on demand), so an undersized alt is replaced: live
       data is at most [vm.hp], which fits in anything from-space-sized. *)
    if Array.length vm.heap_alt < Array.length from_ then
      Array.make (Array.length from_) 0
    else vm.heap_alt
  in
  (* swap immediately so Layout reads go to to-space *)
  vm.heap <- to_;
  vm.heap_alt <- from_;
  let free = ref heap_start in
  let forward addr =
    if addr = 0 then 0
    else begin
      let hdr = from_.(addr + Layout.hdr_class) in
      if hdr < 0 then -hdr - 1 (* already forwarded *)
      else begin
        let len = from_.(addr + Layout.hdr_len) in
        let nwords = Layout.object_words len in
        let new_addr = !free in
        Array.blit from_ addr to_ new_addr nwords;
        free := !free + nwords;
        from_.(addr + Layout.hdr_class) <- -new_addr - 1;
        new_addr
      end
    end
  in
  (* Roots: statics *)
  for i = 0 to vm.nglobals - 1 do
    if vm.global_refs.(i) then vm.globals.(i) <- forward vm.globals.(i)
  done;
  (* Roots: interned strings *)
  Array.iter
    (fun (c : Rt.rclass) ->
      Array.iteri (fun i a -> c.rc_strings.(i) <- forward a) c.rc_strings)
    vm.classes;
  (* Roots: interpreter temporaries *)
  for i = 0 to vm.n_temps - 1 do
    vm.temp_roots.(i) <- forward vm.temp_roots.(i)
  done;
  (* Roots: pinned instrumentation objects *)
  for i = 0 to vm.n_pinned - 1 do
    vm.pinned_roots.(i) <- forward vm.pinned_roots.(i)
  done;
  (* Roots: threads — copy each stack array raw, then walk its frames with
     the reference maps and forward every reference slot in place. *)
  for tid = 0 to vm.n_threads - 1 do
    let t = vm.threads.(tid) in
    if t.t_state <> Rt.Terminated then begin
      t.t_stack <- forward t.t_stack;
      t.t_exc <- forward t.t_exc;
      Frames.fold vm t ~init:() ~f:(fun () fr ->
          Frames.iter_ref_slots vm t fr ~f:(fun off ->
              let abs = Layout.stack_abs t off in
              to_.(abs) <- forward to_.(abs)))
    end
  done;
  (* Cheney scan. Stack arrays were handled above (their class is an int
     array so the generic scan skips their payload). *)
  let scan = ref heap_start in
  while !scan < !free do
    let addr = !scan in
    let cid = to_.(addr + Layout.hdr_class) in
    let len = to_.(addr + Layout.hdr_len) in
    let rc = vm.classes.(cid) in
    (match rc.rc_elem with
    | Rt.Arr_ref ->
      for i = 0 to len - 1 do
        let off = addr + Layout.header_words + i in
        to_.(off) <- forward to_.(off)
      done
    | Rt.Arr_int -> ()
    | Rt.Not_array ->
      Array.iteri
        (fun i (_, ty) ->
          if Bytecode.Instr.is_ref_ty ty then begin
            let off = addr + Layout.header_words + i in
            to_.(off) <- forward to_.(off)
          end)
        rc.rc_fields);
    scan := addr + Layout.object_words len
  done;
  vm.hp <- !free

let live_words (vm : Rt.t) = vm.hp - heap_start
