(** The method "compiler": lowers a declared method to executable code —
    synchronized-method expansion, yield-point injection at the prologue
    and every loop backedge (the Jalapeño discipline aligning preemption,
    GC safe points, and DejaVu's logical clock), name resolution, and
    verification (reference maps + stack bound). Compilation is charged to
    the virtual clock, so {e when} a method gets compiled is visible to the
    environment — a cross-optimization side effect DejaVu keeps symmetric.

    Lowering pre-resolves everything the dispatch loop would otherwise
    re-derive per visit: static call and spawn operands carry the callee
    [Rt.rmethod] itself, string loads carry the owning [Rt.rclass], and
    virtual call/spawn sites carry a monomorphic inline cache.

    After verification a fusion pass builds [Rt.compiled.k_fused] — the
    canonical stream with common 2–4 instruction shapes rewritten as
    superinstructions in their head slots (shadow slots keep the
    originals; pc numbering is unchanged). A fused region never spans a
    branch target, an exception-handler boundary, or a yield point, and
    [Verify.check_fusion] audits the result. With [cfg.fuse = false],
    [k_fused == k_code]. See DESIGN.md section 7 for the parity
    contract. *)

exception Error of string

(** Compile (once; cached on the method record) and return the body. *)
val compile : Rt.t -> Rt.rmethod -> Rt.compiled
