(** The method "compiler": lowers a declared method to executable code —
    synchronized-method expansion, yield-point injection at the prologue
    and every loop backedge (the Jalapeño discipline aligning preemption,
    GC safe points, and DejaVu's logical clock), name resolution, and
    verification (reference maps + stack bound). Compilation is charged to
    the virtual clock, so {e when} a method gets compiled is visible to the
    environment — a cross-optimization side effect DejaVu keeps symmetric.

    Lowering pre-resolves everything the dispatch loop would otherwise
    re-derive per visit: static call and spawn operands carry the callee
    [Rt.rmethod] itself, and string loads carry the owning [Rt.rclass],
    so the interpreter's hot loop performs no table lookups for them. *)

exception Error of string

(** Compile (once; cached on the method record) and return the body. *)
val compile : Rt.t -> Rt.rmethod -> Rt.compiled
