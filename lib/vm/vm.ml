(* Public facade of the virtual-machine substrate: building a VM from a
   bytecode program, running it, and inspecting the result. The submodules
   are re-exported for the replay engine, the baselines, the remote
   reflection layer, and the debugger, all of which hook into VM internals
   the way DejaVu's instrumentation is compiled into Jalapeño. *)

module Prng = Prng
module Env = Env
module Rt = Rt
module Layout = Layout
module Frames = Frames
module Verify = Verify
module Link = Link
module Compile = Compile
module Regir = Regir
module Gc = Gc
module Heap = Heap
module Sched = Sched
module Interp = Interp
module Native = Native
module Observer = Observer
module Digest_state = Digest_state
module Snapshot = Snapshot
module Kdisasm = Kdisasm

type t = Rt.t

let dummy_thread (meth : Rt.rmethod) : Rt.thread =
  {
    Rt.tid = -1;
    t_name = "<none>";
    t_stack = 0;
    t_fp = 0;
    t_sp = 0;
    t_pc = 0;
    t_meth = meth;
    t_state = Rt.Terminated;
    t_wake = 0;
    t_interrupted = false;
    t_wait_mon = -1;
    t_saved_count = 0;
    t_joiners = [];
    t_exc = 0;
  }

(* Live-mode hooks: consult the environment directly. Record/replay modes
   (lib/core) and the baseline schemes (lib/baselines) replace these. *)
let live_hooks () : Rt.hooks =
  {
    Rt.h_yieldpoint =
      (fun vm ->
        if vm.Rt.preempt_pending then begin
          vm.Rt.preempt_pending <- false;
          Sched.perform_thread_switch vm
        end);
    h_clock =
      (fun vm reason ->
        match reason with
        | Rt.Cidle earliest -> Env.idle_until vm.Rt.env earliest
        | Rt.Capp | Rt.Csched -> Env.read_clock vm.Rt.env);
    h_input = (fun vm -> Env.read_input vm.Rt.env);
    h_native = (fun vm nat args -> nat.Rt.nat_fn vm args);
    h_observe = None;
    h_heap_read = None;
    h_heap_write = None;
    h_switch = None;
    h_instr = None;
    h_pick = None;
    h_spawn = None;
    h_lock = None;
    h_hb = None;
  }

(* Put the hooks record back in live mode, field by field: [Rt.t.hooks] is
   an immutable field holding a record of mutable closures, and sessions
   (recorder, replayer, baselines, observers) mutate those fields in place.
   Snapshots deliberately do not cover hooks, so a VM being reset for reuse
   must have them reinstalled explicitly. *)
let install_live_hooks (vm : Rt.t) =
  let h = live_hooks () in
  let hk = vm.Rt.hooks in
  hk.Rt.h_yieldpoint <- h.Rt.h_yieldpoint;
  hk.h_clock <- h.h_clock;
  hk.h_input <- h.h_input;
  hk.h_native <- h.h_native;
  hk.h_observe <- None;
  hk.h_heap_read <- None;
  hk.h_heap_write <- None;
  hk.h_switch <- None;
  hk.h_instr <- None;
  hk.h_pick <- None;
  hk.h_spawn <- None;
  hk.h_lock <- None;
  hk.h_hb <- None

let create ?(config = Rt.default_config) ?(natives = []) ?(inputs = [])
    (program : Bytecode.Decl.program) : t =
  let image = Link.build program in
  let env = Env.create ~inputs config.env_cfg in
  let specs = Native.stock @ natives in
  let native_id_of = Hashtbl.create 16 in
  List.iteri (fun i (s : Native.spec) -> Hashtbl.replace native_id_of s.name i) specs;
  let natives_by_id =
    Array.of_list
      (List.mapi
         (fun i s ->
           Native.resolve image.i_methods image.i_class_of_name
             image.i_classes i s)
         specs)
  in
  let global_refs = Array.make (max 1 image.i_nglobals) false in
  Array.iter
    (fun (c : Rt.rclass) ->
      Array.iteri
        (fun i (_, ty) ->
          global_refs.(c.rc_statics_base + i) <- Bytecode.Instr.is_ref_ty ty)
        c.rc_statics)
    image.i_classes;
  let dummy =
    dummy_thread
      (if Array.length image.i_methods > 0 then image.i_methods.(0)
       else invalid_arg "program has no methods")
  in
  let vm : Rt.t =
    {
      cfg = config;
      program;
      env;
      (* the semispace is a semantic size (the allocator's exhaustion check
         and GC trigger use [config.heap_words]); the backing array starts
         small and [Heap] doubles it on demand, so VM start-up does not pay
         for zeroing megabytes most runs never touch *)
      heap = Array.make (min config.heap_words 16384) 0;
      (* the GC to-space materializes at the first collection — most short
         runs never collect, and eagerly zeroing a second semispace here
         would dominate VM start-up *)
      heap_alt = [||];
      hp = Gc.heap_start;
      gc_threshold = 0;
      temp_roots = Array.make 16 0;
      n_temps = 0;
      pinned_roots = Array.make 4 0;
      n_pinned = 0;
      globals = Array.make (max 1 image.i_nglobals) 0;
      global_refs;
      nglobals = image.i_nglobals;
      classes = image.i_classes;
      class_of_name = image.i_class_of_name;
      methods = image.i_methods;
      natives_by_id;
      native_id_of;
      monitors =
        Array.init 8 (fun i ->
            {
              Rt.m_id = i;
              m_owner = -1;
              m_count = 0;
              m_entryq = Queue.create ();
              m_waitset = [];
            });
      n_monitors = 1 (* id 0 is reserved for "none" *);
      threads = Array.make 4 dummy;
      n_threads = 0;
      readyq = Queue.create ();
      current = -1;
      sleepers = [];
      live_threads = 0;
      status = Rt.Running_;
      preempt_pending = false;
      output = Buffer.create 256;
      hooks = live_hooks ();
      stats = Rt.fresh_stats ();
    }
  in
  vm

(* Reset a VM to a baseline snapshot for reuse (the farm's warm shards).
   [Snapshot.restore] brings back every snapshotted piece of mutable state
   — including the PRNG positions and counters captured at save time — but
   not the hooks, so those are reinstalled in live mode; a [seed] re-points
   both environment streams as if the VM had been created under that seed.

   For a baseline saved immediately after [create] (nothing run, nothing
   drawn), restore + reseed is state-identical to a fresh [create] under
   the new seed: the heap prefix up to [hp], roots, globals, class states,
   monitors, threads, scheduler queues, environment counters, and stats all
   revert to creation values; stale heap words beyond [hp] are invisible
   (the bump allocator zero-fills every allocation and the state digest
   stops at [hp]); methods compiled meanwhile roll back to uncompiled so a
   reused VM re-pays the same compile-time clock charges a cold boot pays. *)
let reset ?seed (vm : t) (baseline : Snapshot.t) =
  Snapshot.restore vm baseline;
  install_live_hooks vm;
  match seed with None -> () | Some s -> Env.reseed vm.Rt.env s

let boot = Interp.boot

let step = Interp.step

let run ?limit (vm : t) =
  if vm.Rt.n_threads = 0 then boot vm;
  Interp.run ?limit vm;
  vm.Rt.status

(* Cooperative slice: run at most [fuel] more instructions, returning
   Running_ if the program has not finished — the replay farm interleaves
   deadline and cancellation checks between slices. *)
let run_slice ?(fuel = 100_000) (vm : t) =
  if vm.Rt.n_threads = 0 then boot vm;
  Interp.run_slice vm ~fuel;
  vm.Rt.status

let output (vm : t) = Buffer.contents vm.Rt.output

let status (vm : t) = vm.Rt.status

let stats (vm : t) = vm.Rt.stats

let digest = Digest_state.digest

let string_of_status = function
  | Rt.Running_ -> "running"
  | Rt.Finished -> "finished"
  | Rt.Halted c -> Fmt.str "halted(%d)" c
  | Rt.Deadlocked -> "deadlocked"
  | Rt.Fatal m -> "fatal: " ^ m

(* Run a program from scratch with a given seed — the everyday entry point. *)
let execute ?(config = Rt.default_config) ?natives ?inputs ?seed ?limit program
    =
  let config =
    match seed with
    | None -> config
    | Some s -> { config with Rt.env_cfg = { config.Rt.env_cfg with Env.seed = s } }
  in
  let vm = create ~config ?natives ?inputs program in
  let st = run ?limit vm in
  (vm, st)
