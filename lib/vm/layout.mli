(** Raw object access over the current semispace. Addresses are word
    indices; 0 is null. Header: [class_id; monitor_id; length]. *)

val hdr_class : int

val hdr_monitor : int

val hdr_len : int

val header_words : int

val class_of : Rt.t -> int -> int

val monitor_of : Rt.t -> int -> int

val set_monitor : Rt.t -> int -> int -> unit

val len_of : Rt.t -> int -> int

(** Slot access; the index counts from 0 over the object's fields or array
    elements. *)
val get : Rt.t -> int -> int -> int

val set : Rt.t -> int -> int -> int -> unit

(** Total words an object with [len] slots occupies. *)
val object_words : int -> int

val rclass_of : Rt.t -> int -> Rt.rclass

val is_array : Rt.t -> int -> bool

(** Absolute heap index of a thread-stack data offset. *)
val stack_abs : Rt.thread -> int -> int

val stack_get : Rt.t -> Rt.thread -> int -> int

val stack_set : Rt.t -> Rt.thread -> int -> int -> unit

(** Unchecked variants, for the interpreter's operand-stack traffic only:
    every slot it touches is below the capacity [Interp.ensure_stack]
    reserved at frame push (frame header + locals + the verifier's
    max_stack bound), so the bounds check is pure per-instruction
    overhead there. All other callers use the checked accessors. *)
val stack_get_u : Rt.t -> Rt.thread -> int -> int

val stack_set_u : Rt.t -> Rt.thread -> int -> int -> unit

val stack_capacity : Rt.t -> Rt.thread -> int

(** The character array of a String object. *)
val string_chars : Rt.t -> int -> int

(** Decode a String object to an OCaml string. *)
val string_value : Rt.t -> int -> string
