(* The jobs a farm shard knows how to run. Each runs one VM to completion
   in fuel-bounded slices, polling [ctx.should_stop] between slices so
   cancellation and deadlines take effect mid-program, and never leaves a
   partial trace file behind (streaming writer: spill files + atomic
   rename, aborted on any exception).

   Two ways to get the VM: cold — [Vm.create] per job, the original farm
   behaviour and still the reference the warm path is tested against — or
   warm, from a shard's {!Warm} pool, which resets a persistent VM to its
   baseline snapshot instead of re-booting. [runner] packages the warm
   path: per-shard pools (never shared across domains), a farm-wide
   {!Estimate} table measured from completed jobs, and the size-aware
   placement policy the dispatcher routes submissions with. *)

module Trace = Dejavu.Trace
module Session = Dejavu.Session
module Recorder = Dejavu.Recorder
module Replayer = Dejavu.Replayer

type spec =
  | Record of { workload : string; seed : int; out : string }
  | Replay of { workload : string; trace : string }
  | Roundtrip of { workload : string; seed : int }
  | Lint of { workload : string }
  | Explore of {
      workload : string;
      seed : int;
      prefix : int array; (* forced decision vector; [||] = root schedule *)
      pb : int; (* preemption bound *)
      db : int; (* delay (non-FIFO pick) bound *)
      dpor : bool;
    }

type output = {
  o_status : string; (* final VM status ("ok" for lint) *)
  o_digest : string; (* hex: trace file / VM state / analysis summary *)
  o_words : int; (* trace words written / leftovers / racy findings *)
  o_children : int array list;
      (* explore only: fresh alternative prefixes this schedule exposed —
         the first job kind that GENERATES jobs (the frontier fan-out) *)
  o_pruned : int; (* explore only: branches DPOR suppressed *)
  o_flags : int; (* explore only: bit 0 fault, bit 1 aborted *)
}

let explore_fault_bit = 1
let explore_aborted_bit = 2

let describe = function
  | Record { workload; _ } -> "record:" ^ workload
  | Replay { workload; _ } -> "replay:" ^ workload
  | Roundtrip { workload; _ } -> "roundtrip:" ^ workload
  | Lint { workload } -> "lint:" ^ workload
  | Explore { workload; prefix; _ } ->
    Fmt.str "explore:%s/%d" workload (Array.length prefix)

let workload_of = function
  | Record { workload; _ }
  | Replay { workload; _ }
  | Roundtrip { workload; _ }
  | Lint { workload }
  | Explore { workload; _ } ->
    workload

(* Force every lazily-built structure a job touches BEFORE spawning shard
   domains: [Registry.all] is a plain [Lazy.t], and two domains forcing it
   concurrently would race. Called once by batch/serve setup. *)
let preload () = ignore (Lazy.force Workloads.Registry.all)

let find workload =
  match Workloads.Registry.find workload with
  | Some e -> e
  | None -> failwith ("unknown workload " ^ workload)

let with_seed seed (config : Vm.Rt.config) =
  { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }

(* The replay side always runs under one fixed seed: every environment
   reading comes from the trace, so the seed is inert — but keeping it
   constant makes warm replay VMs trivially baseline-compatible. *)
let replay_seed = 424242

(* A VM for the job: reset from the shard pool's baseline when one is
   supplied, booted from scratch otherwise. The two are state-identical by
   the warm-reset parity contract (tested registry-wide). *)
let boot_vm ?pool ~config (e : Workloads.Registry.entry) ~seed =
  match pool with
  | Some p -> Warm.acquire p e ~seed
  | None ->
    let config = with_seed seed config in
    Vm.create ~config ~natives:e.natives e.program

(* Run the VM to completion in [slice]-instruction hops, checking for
   cancellation/deadline between hops and enforcing the config's overall
   instruction limit (run_slice itself never goes Fatal on budget). *)
let drive ~slice (ctx : Dispatcher.ctx) (vm : Vm.t) =
  let limit = vm.Vm.Rt.cfg.Vm.Rt.instr_limit in
  let rec go () =
    ctx.Dispatcher.should_stop ();
    let fuel = min slice (limit - vm.Vm.Rt.stats.Vm.Rt.n_instr) in
    match Vm.run_slice ~fuel vm with
    | Vm.Rt.Running_ ->
      if vm.Vm.Rt.stats.Vm.Rt.n_instr >= limit then
        vm.Vm.Rt.status <-
          Vm.Rt.Fatal (Fmt.str "instruction limit (%d) exceeded" limit)
      else go ()
    | _ -> ()
  in
  go ()

(* A completed run's measured size feeds the placement policy. *)
let note_size ?est (e : Workloads.Registry.entry) (vm : Vm.t) =
  match est with
  | None -> ()
  | Some est -> Estimate.note est e.name vm.Vm.Rt.stats.Vm.Rt.n_instr

let state_digest_hex vm = Fmt.str "%016x" (Vm.digest vm land max_int)

(* Non-explore jobs never fan out. *)
let simple ~status ~digest ~words =
  {
    o_status = status;
    o_digest = digest;
    o_words = words;
    o_children = [];
    o_pruned = 0;
    o_flags = 0;
  }

(* Streamed record; returns the finished VM too so roundtrip can compare
   states without recording twice. *)
let record_impl ~slice ~config ?pool ?est ctx (e : Workloads.Registry.entry)
    ~seed ~out =
  let vm = boot_vm ?pool ~config e ~seed in
  let writer = Trace.Writer.create out in
  match
    let session = Recorder.attach_stream vm writer in
    drive ~slice ctx vm;
    let sizes = Recorder.finish_stream session writer in
    (Vm.string_of_status (Vm.status vm), sizes)
  with
  | status, sizes ->
    note_size ?est e vm;
    ( simple ~status
        ~digest:(Digest.to_hex (Digest.file out))
        ~words:sizes.Trace.total_words,
      vm )
  | exception exn ->
    Trace.Writer.abort writer;
    raise exn

let run_record ~slice ~config ?pool ?est ctx e ~seed ~out =
  fst (record_impl ~slice ~config ?pool ?est ctx e ~seed ~out)

let run_replay ~slice ~config ?pool ?est ctx (e : Workloads.Registry.entry)
    ~trace =
  let vm = boot_vm ?pool ~config e ~seed:replay_seed in
  let reader = Trace.Reader.open_file trace in
  Fun.protect
    ~finally:(fun () -> Trace.Reader.close reader)
    (fun () ->
      match Replayer.attach_stream vm reader with
      | exception Session.Divergence msg ->
        simple
          ~status:("fatal: replay divergence: " ^ msg)
          ~digest:"" ~words:0
      | session ->
        (try drive ~slice ctx vm with
        | Session.Divergence msg ->
          vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg)
        | Vm.Sched.Sched_error msg ->
          vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg));
        let leftovers = Replayer.check_complete session in
        note_size ?est e vm;
        simple
          ~status:(Vm.string_of_status (Vm.status vm))
          ~digest:(state_digest_hex vm)
          ~words:(List.length leftovers))

(* Record to a shard-private temp file, replay it back, compare states.
   The temp file never outlives the job. The recorded VM's digest is taken
   BEFORE the replay runs: under warm reuse both halves draw from the same
   pool slot, so starting the replay resets the recorded VM. *)
let run_roundtrip ~slice ~config ?pool ?est ctx (e : Workloads.Registry.entry)
    ~seed =
  let tmp = Filename.temp_file "dvfarm" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let recorded, rec_vm =
        record_impl ~slice ~config ?pool ?est ctx e ~seed ~out:tmp
      in
      let rec_vm_digest = state_digest_hex rec_vm in
      let replayed = run_replay ~slice ~config ?pool ctx e ~trace:tmp in
      let ok =
        replayed.o_words = 0
        && String.equal rec_vm_digest replayed.o_digest
        && not (String.length replayed.o_status >= 5
                && String.sub replayed.o_status 0 5 = "fatal")
      in
      simple
        ~status:(if ok then "ok" else "mismatch")
        ~digest:recorded.o_digest ~words:recorded.o_words)

let run_lint (e : Workloads.Registry.entry) =
  let r = Analysis.run ~name:e.name e.program in
  simple ~status:"ok" ~digest:r.Analysis.Report.summary_hash
    ~words:(List.length (Analysis.Report.racy_keys r))

(* One schedule of a systematic exploration: run the workload under the
   controlled scheduler with the job's forced decision prefix, and return
   the FRESH alternative prefixes it exposed as [o_children] — the farm
   driver feeds them back as new Explore jobs (frontier fan-out). Runs on
   the warm pool like any record job; the oracle is memoized per workload
   across shards. *)
let run_explore ~slice ~config ?pool ?est ctx (e : Workloads.Registry.entry)
    ~seed ~prefix ~pb ~db ~dpor =
  let oracle = Explore.Oracle.for_entry e in
  let vm = boot_vm ?pool ~config e ~seed in
  let oc =
    Explore.Control.run ~vm
      ~driver:(fun vm -> drive ~slice ctx vm)
      ~pb ~db ~dpor ~oracle ~prefix e
  in
  note_size ?est e vm;
  let children, pruned =
    if oc.Explore.Control.oc_aborted then ([], 0)
    else Explore.Driver.expand ~fresh_from:(Array.length prefix) oc
  in
  let fault =
    (not oc.Explore.Control.oc_aborted)
    && Explore.Driver.is_fault oc.Explore.Control.oc_status
         oc.Explore.Control.oc_output
  in
  {
    o_status = Vm.string_of_status oc.Explore.Control.oc_status;
    o_digest = Fmt.str "%016x" (oc.Explore.Control.oc_digest land max_int);
    o_words = Array.length oc.Explore.Control.oc_log;
    o_children = children;
    o_pruned = pruned;
    o_flags =
      (if fault then explore_fault_bit else 0)
      lor if oc.Explore.Control.oc_aborted then explore_aborted_bit else 0;
  }

let dispatch ~slice ~config ?pool ?est (ctx : Dispatcher.ctx) (spec : spec) :
    output =
  match spec with
  | Record { workload; seed; out } ->
    run_record ~slice ~config ?pool ?est ctx (find workload) ~seed ~out
  | Replay { workload; trace } ->
    run_replay ~slice ~config ?pool ?est ctx (find workload) ~trace
  | Roundtrip { workload; seed } ->
    run_roundtrip ~slice ~config ?pool ?est ctx (find workload) ~seed
  | Lint { workload } -> run_lint (find workload)
  | Explore { workload; seed; prefix; pb; db; dpor } ->
    run_explore ~slice ~config ?pool ?est ctx (find workload) ~seed ~prefix
      ~pb ~db ~dpor

(* Cold entry point: one fresh VM per job. Still the reference semantics —
   the warm runner below must be indistinguishable from it. *)
let run ?(slice = 50_000) ?(config = Vm.Rt.default_config)
    (ctx : Dispatcher.ctx) (spec : spec) : output =
  dispatch ~slice ~config ctx spec

(* --- the warm runner: pools + estimates + placement --- *)

type runner = {
  run : Dispatcher.ctx -> spec -> output;
  place : spec -> Dispatcher.place;
  estimates : Estimate.t;
  warm_stats : unit -> Warm.stats; (* all shards folded; call after join *)
}

(* Jobs at or above this many instructions count as extra-large for
   placement (the registry's -XL workloads sit far above, the rest far
   below). *)
let default_xl_cutoff = 2_000_000

(* Placement. Extra-large jobs go to the shared queue, where any idle
   shard picks them up: pinned to a local queue they would make every
   small job queued behind them wait out the whole trace, which is
   precisely the p99 failure mode size-aware dispatch exists to prevent.
   "Extra-large" comes from the measured estimate when one exists, else
   from the registry's naming convention (the "-XL" suffix is the only
   size metadata the catalogue carries). Lint jobs run no VM, so warm
   affinity buys them nothing — shared as well. Everything else is pinned
   to its workload's affinity shard from the very first (unestimated) run,
   so the VM booted for a workload's first job is the VM every repeat job
   finds warm; that first run doubles as the size measurement. *)
let place_policy ~estimates ~shards ~xl_cutoff (spec : spec) :
    Dispatcher.place =
  match spec with
  | Lint _ -> Dispatcher.Shared
  (* exploration frontiers are bursty — hundreds of small same-workload
     jobs at once; pinning them to one affinity shard would serialize the
     whole search, so they go shared and any idle shard's warm pool still
     serves them *)
  | Explore _ -> Dispatcher.Shared
  | Record _ | Replay _ | Roundtrip _ -> (
    let name = workload_of spec in
    let xl_by_name () =
      String.length name >= 3
      && String.sub name (String.length name - 3) 3 = "-XL"
    in
    match Estimate.find estimates name with
    | Some n when n >= xl_cutoff -> Dispatcher.Shared
    | None when xl_by_name () -> Dispatcher.Shared
    | Some _ | None -> Dispatcher.Shard (Hashtbl.hash name mod shards))

let runner ?(slice = 50_000) ?(config = Vm.Rt.default_config)
    ?(warm_cap = 32) ?(xl_cutoff = default_xl_cutoff) ?stats ~shards () :
    runner =
  if shards < 1 then invalid_arg "Job.runner: shards < 1";
  let note ~hit =
    match stats with None -> () | Some s -> Stats.on_warm s ~hit
  in
  let pools =
    Array.init shards (fun _ -> Warm.create ~cap:warm_cap ~config ~note ())
  in
  let estimates = Estimate.create () in
  let run (ctx : Dispatcher.ctx) spec =
    let pool = pools.(ctx.Dispatcher.shard) in
    dispatch ~slice ~config ~pool ~est:estimates ctx spec
  in
  {
    run;
    place = place_policy ~estimates ~shards ~xl_cutoff;
    estimates;
    warm_stats =
      (fun () ->
        Array.fold_left
          (fun acc p -> Warm.merge acc (Warm.stats p))
          Warm.zero pools);
  }
