(* The jobs a farm shard knows how to run. Each runs one VM to completion
   in fuel-bounded slices, polling [ctx.should_stop] between slices so
   cancellation and deadlines take effect mid-program, and never leaves a
   partial trace file behind (streaming writer: spill files + atomic
   rename, aborted on any exception). *)

module Trace = Dejavu.Trace
module Session = Dejavu.Session
module Recorder = Dejavu.Recorder
module Replayer = Dejavu.Replayer

type spec =
  | Record of { workload : string; seed : int; out : string }
  | Replay of { workload : string; trace : string }
  | Roundtrip of { workload : string; seed : int }
  | Lint of { workload : string }

type output = {
  o_status : string; (* final VM status ("ok" for lint) *)
  o_digest : string; (* hex: trace file / VM state / analysis summary *)
  o_words : int; (* trace words written / leftovers / racy findings *)
}

let describe = function
  | Record { workload; _ } -> "record:" ^ workload
  | Replay { workload; _ } -> "replay:" ^ workload
  | Roundtrip { workload; _ } -> "roundtrip:" ^ workload
  | Lint { workload } -> "lint:" ^ workload

let workload_of = function
  | Record { workload; _ }
  | Replay { workload; _ }
  | Roundtrip { workload; _ }
  | Lint { workload } ->
    workload

(* Force every lazily-built structure a job touches BEFORE spawning shard
   domains: [Registry.all] is a plain [Lazy.t], and two domains forcing it
   concurrently would race. Called once by batch/serve setup. *)
let preload () = ignore (Lazy.force Workloads.Registry.all)

let find workload =
  match Workloads.Registry.find workload with
  | Some e -> e
  | None -> failwith ("unknown workload " ^ workload)

let with_seed seed (config : Vm.Rt.config) =
  { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }

(* Run the VM to completion in [slice]-instruction hops, checking for
   cancellation/deadline between hops and enforcing the config's overall
   instruction limit (run_slice itself never goes Fatal on budget). *)
let drive ~slice (ctx : Dispatcher.ctx) (vm : Vm.t) =
  let limit = vm.Vm.Rt.cfg.Vm.Rt.instr_limit in
  let rec go () =
    ctx.Dispatcher.should_stop ();
    let fuel = min slice (limit - vm.Vm.Rt.stats.Vm.Rt.n_instr) in
    match Vm.run_slice ~fuel vm with
    | Vm.Rt.Running_ ->
      if vm.Vm.Rt.stats.Vm.Rt.n_instr >= limit then
        vm.Vm.Rt.status <-
          Vm.Rt.Fatal (Fmt.str "instruction limit (%d) exceeded" limit)
      else go ()
    | _ -> ()
  in
  go ()

let state_digest_hex vm = Fmt.str "%016x" (Vm.digest vm land max_int)

(* Streamed record; returns the finished VM too so roundtrip can compare
   states without recording twice. *)
let record_impl ~slice ctx (e : Workloads.Registry.entry) ~seed ~out =
  let config = with_seed seed Vm.Rt.default_config in
  let vm = Vm.create ~config ~natives:e.natives e.program in
  let writer = Trace.Writer.create out in
  match
    let session = Recorder.attach_stream vm writer in
    drive ~slice ctx vm;
    let sizes = Recorder.finish_stream session writer in
    (Vm.string_of_status (Vm.status vm), sizes)
  with
  | status, sizes ->
    ( {
        o_status = status;
        o_digest = Digest.to_hex (Digest.file out);
        o_words = sizes.Trace.total_words;
      },
      vm )
  | exception exn ->
    Trace.Writer.abort writer;
    raise exn

let run_record ~slice ctx e ~seed ~out =
  fst (record_impl ~slice ctx e ~seed ~out)

let run_replay ~slice ctx (e : Workloads.Registry.entry) ~trace =
  let config = with_seed 424242 Vm.Rt.default_config in
  let vm = Vm.create ~config ~natives:e.natives e.program in
  let reader = Trace.Reader.open_file trace in
  Fun.protect
    ~finally:(fun () -> Trace.Reader.close reader)
    (fun () ->
      match Replayer.attach_stream vm reader with
      | exception Session.Divergence msg ->
        { o_status = "fatal: replay divergence: " ^ msg;
          o_digest = "";
          o_words = 0 }
      | session ->
        (try drive ~slice ctx vm
         with Session.Divergence msg ->
           vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg));
        let leftovers = Replayer.check_complete session in
        {
          o_status = Vm.string_of_status (Vm.status vm);
          o_digest = state_digest_hex vm;
          o_words = List.length leftovers;
        })

(* Record to a shard-private temp file, replay it back, compare states.
   The temp file never outlives the job. *)
let run_roundtrip ~slice ctx (e : Workloads.Registry.entry) ~seed =
  let tmp = Filename.temp_file "dvfarm" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let recorded, rec_vm = record_impl ~slice ctx e ~seed ~out:tmp in
      let replayed = run_replay ~slice ctx e ~trace:tmp in
      let rec_vm_digest = state_digest_hex rec_vm in
      let ok =
        replayed.o_words = 0
        && String.equal rec_vm_digest replayed.o_digest
        && not (String.length replayed.o_status >= 5
                && String.sub replayed.o_status 0 5 = "fatal")
      in
      {
        o_status = (if ok then "ok" else "mismatch");
        o_digest = recorded.o_digest;
        o_words = recorded.o_words;
      })

let run_lint (e : Workloads.Registry.entry) =
  let r = Analysis.run ~name:e.name e.program in
  {
    o_status = "ok";
    o_digest = r.Analysis.Report.summary_hash;
    o_words = List.length (Analysis.Report.racy_keys r);
  }

(* Entry point the dispatcher's [run] closes over. [slice] is the poll
   granularity in instructions. *)
let run ?(slice = 50_000) (ctx : Dispatcher.ctx) (spec : spec) : output =
  match spec with
  | Record { workload; seed; out } ->
    run_record ~slice ctx (find workload) ~seed ~out
  | Replay { workload; trace } -> run_replay ~slice ctx (find workload) ~trace
  | Roundtrip { workload; seed } ->
    run_roundtrip ~slice ctx (find workload) ~seed
  | Lint { workload } -> run_lint (find workload)
