(* The jobs a farm shard knows how to run. Each runs one VM to completion
   in fuel-bounded slices, polling [ctx.should_stop] between slices so
   cancellation and deadlines take effect mid-program, and never leaves a
   partial trace file behind (streaming writer: spill files + atomic
   rename, aborted on any exception).

   Two ways to get the VM: cold — [Vm.create] per job, the original farm
   behaviour and still the reference the warm path is tested against — or
   warm, from a shard's {!Warm} pool, which resets a persistent VM to its
   baseline snapshot instead of re-booting. [runner] packages the warm
   path: per-shard pools (never shared across domains), a farm-wide
   {!Estimate} table measured from completed jobs, and the size-aware
   placement policy the dispatcher routes submissions with. *)

module Trace = Dejavu.Trace
module Session = Dejavu.Session
module Recorder = Dejavu.Recorder
module Replayer = Dejavu.Replayer

type spec =
  | Record of { workload : string; seed : int; out : string }
  | Replay of { workload : string; trace : string }
  | Roundtrip of { workload : string; seed : int }
  | Lint of { workload : string }

type output = {
  o_status : string; (* final VM status ("ok" for lint) *)
  o_digest : string; (* hex: trace file / VM state / analysis summary *)
  o_words : int; (* trace words written / leftovers / racy findings *)
}

let describe = function
  | Record { workload; _ } -> "record:" ^ workload
  | Replay { workload; _ } -> "replay:" ^ workload
  | Roundtrip { workload; _ } -> "roundtrip:" ^ workload
  | Lint { workload } -> "lint:" ^ workload

let workload_of = function
  | Record { workload; _ }
  | Replay { workload; _ }
  | Roundtrip { workload; _ }
  | Lint { workload } ->
    workload

(* Force every lazily-built structure a job touches BEFORE spawning shard
   domains: [Registry.all] is a plain [Lazy.t], and two domains forcing it
   concurrently would race. Called once by batch/serve setup. *)
let preload () = ignore (Lazy.force Workloads.Registry.all)

let find workload =
  match Workloads.Registry.find workload with
  | Some e -> e
  | None -> failwith ("unknown workload " ^ workload)

let with_seed seed (config : Vm.Rt.config) =
  { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }

(* The replay side always runs under one fixed seed: every environment
   reading comes from the trace, so the seed is inert — but keeping it
   constant makes warm replay VMs trivially baseline-compatible. *)
let replay_seed = 424242

(* A VM for the job: reset from the shard pool's baseline when one is
   supplied, booted from scratch otherwise. The two are state-identical by
   the warm-reset parity contract (tested registry-wide). *)
let boot_vm ?pool ~config (e : Workloads.Registry.entry) ~seed =
  match pool with
  | Some p -> Warm.acquire p e ~seed
  | None ->
    let config = with_seed seed config in
    Vm.create ~config ~natives:e.natives e.program

(* Run the VM to completion in [slice]-instruction hops, checking for
   cancellation/deadline between hops and enforcing the config's overall
   instruction limit (run_slice itself never goes Fatal on budget). *)
let drive ~slice (ctx : Dispatcher.ctx) (vm : Vm.t) =
  let limit = vm.Vm.Rt.cfg.Vm.Rt.instr_limit in
  let rec go () =
    ctx.Dispatcher.should_stop ();
    let fuel = min slice (limit - vm.Vm.Rt.stats.Vm.Rt.n_instr) in
    match Vm.run_slice ~fuel vm with
    | Vm.Rt.Running_ ->
      if vm.Vm.Rt.stats.Vm.Rt.n_instr >= limit then
        vm.Vm.Rt.status <-
          Vm.Rt.Fatal (Fmt.str "instruction limit (%d) exceeded" limit)
      else go ()
    | _ -> ()
  in
  go ()

(* A completed run's measured size feeds the placement policy. *)
let note_size ?est (e : Workloads.Registry.entry) (vm : Vm.t) =
  match est with
  | None -> ()
  | Some est -> Estimate.note est e.name vm.Vm.Rt.stats.Vm.Rt.n_instr

let state_digest_hex vm = Fmt.str "%016x" (Vm.digest vm land max_int)

(* Streamed record; returns the finished VM too so roundtrip can compare
   states without recording twice. *)
let record_impl ~slice ~config ?pool ?est ctx (e : Workloads.Registry.entry)
    ~seed ~out =
  let vm = boot_vm ?pool ~config e ~seed in
  let writer = Trace.Writer.create out in
  match
    let session = Recorder.attach_stream vm writer in
    drive ~slice ctx vm;
    let sizes = Recorder.finish_stream session writer in
    (Vm.string_of_status (Vm.status vm), sizes)
  with
  | status, sizes ->
    note_size ?est e vm;
    ( {
        o_status = status;
        o_digest = Digest.to_hex (Digest.file out);
        o_words = sizes.Trace.total_words;
      },
      vm )
  | exception exn ->
    Trace.Writer.abort writer;
    raise exn

let run_record ~slice ~config ?pool ?est ctx e ~seed ~out =
  fst (record_impl ~slice ~config ?pool ?est ctx e ~seed ~out)

let run_replay ~slice ~config ?pool ?est ctx (e : Workloads.Registry.entry)
    ~trace =
  let vm = boot_vm ?pool ~config e ~seed:replay_seed in
  let reader = Trace.Reader.open_file trace in
  Fun.protect
    ~finally:(fun () -> Trace.Reader.close reader)
    (fun () ->
      match Replayer.attach_stream vm reader with
      | exception Session.Divergence msg ->
        { o_status = "fatal: replay divergence: " ^ msg;
          o_digest = "";
          o_words = 0 }
      | session ->
        (try drive ~slice ctx vm
         with Session.Divergence msg ->
           vm.Vm.Rt.status <- Vm.Rt.Fatal ("replay divergence: " ^ msg));
        let leftovers = Replayer.check_complete session in
        note_size ?est e vm;
        {
          o_status = Vm.string_of_status (Vm.status vm);
          o_digest = state_digest_hex vm;
          o_words = List.length leftovers;
        })

(* Record to a shard-private temp file, replay it back, compare states.
   The temp file never outlives the job. The recorded VM's digest is taken
   BEFORE the replay runs: under warm reuse both halves draw from the same
   pool slot, so starting the replay resets the recorded VM. *)
let run_roundtrip ~slice ~config ?pool ?est ctx (e : Workloads.Registry.entry)
    ~seed =
  let tmp = Filename.temp_file "dvfarm" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let recorded, rec_vm =
        record_impl ~slice ~config ?pool ?est ctx e ~seed ~out:tmp
      in
      let rec_vm_digest = state_digest_hex rec_vm in
      let replayed = run_replay ~slice ~config ?pool ctx e ~trace:tmp in
      let ok =
        replayed.o_words = 0
        && String.equal rec_vm_digest replayed.o_digest
        && not (String.length replayed.o_status >= 5
                && String.sub replayed.o_status 0 5 = "fatal")
      in
      {
        o_status = (if ok then "ok" else "mismatch");
        o_digest = recorded.o_digest;
        o_words = recorded.o_words;
      })

let run_lint (e : Workloads.Registry.entry) =
  let r = Analysis.run ~name:e.name e.program in
  {
    o_status = "ok";
    o_digest = r.Analysis.Report.summary_hash;
    o_words = List.length (Analysis.Report.racy_keys r);
  }

let dispatch ~slice ~config ?pool ?est (ctx : Dispatcher.ctx) (spec : spec) :
    output =
  match spec with
  | Record { workload; seed; out } ->
    run_record ~slice ~config ?pool ?est ctx (find workload) ~seed ~out
  | Replay { workload; trace } ->
    run_replay ~slice ~config ?pool ?est ctx (find workload) ~trace
  | Roundtrip { workload; seed } ->
    run_roundtrip ~slice ~config ?pool ?est ctx (find workload) ~seed
  | Lint { workload } -> run_lint (find workload)

(* Cold entry point: one fresh VM per job. Still the reference semantics —
   the warm runner below must be indistinguishable from it. *)
let run ?(slice = 50_000) ?(config = Vm.Rt.default_config)
    (ctx : Dispatcher.ctx) (spec : spec) : output =
  dispatch ~slice ~config ctx spec

(* --- the warm runner: pools + estimates + placement --- *)

type runner = {
  run : Dispatcher.ctx -> spec -> output;
  place : spec -> Dispatcher.place;
  estimates : Estimate.t;
  warm_stats : unit -> Warm.stats; (* all shards folded; call after join *)
}

(* Jobs at or above this many instructions count as extra-large for
   placement (the registry's -XL workloads sit far above, the rest far
   below). *)
let default_xl_cutoff = 2_000_000

(* Placement. Extra-large jobs go to the shared queue, where any idle
   shard picks them up: pinned to a local queue they would make every
   small job queued behind them wait out the whole trace, which is
   precisely the p99 failure mode size-aware dispatch exists to prevent.
   "Extra-large" comes from the measured estimate when one exists, else
   from the registry's naming convention (the "-XL" suffix is the only
   size metadata the catalogue carries). Lint jobs run no VM, so warm
   affinity buys them nothing — shared as well. Everything else is pinned
   to its workload's affinity shard from the very first (unestimated) run,
   so the VM booted for a workload's first job is the VM every repeat job
   finds warm; that first run doubles as the size measurement. *)
let place_policy ~estimates ~shards ~xl_cutoff (spec : spec) :
    Dispatcher.place =
  match spec with
  | Lint _ -> Dispatcher.Shared
  | Record _ | Replay _ | Roundtrip _ -> (
    let name = workload_of spec in
    let xl_by_name () =
      String.length name >= 3
      && String.sub name (String.length name - 3) 3 = "-XL"
    in
    match Estimate.find estimates name with
    | Some n when n >= xl_cutoff -> Dispatcher.Shared
    | None when xl_by_name () -> Dispatcher.Shared
    | Some _ | None -> Dispatcher.Shard (Hashtbl.hash name mod shards))

let runner ?(slice = 50_000) ?(config = Vm.Rt.default_config)
    ?(warm_cap = 32) ?(xl_cutoff = default_xl_cutoff) ?stats ~shards () :
    runner =
  if shards < 1 then invalid_arg "Job.runner: shards < 1";
  let note ~hit =
    match stats with None -> () | Some s -> Stats.on_warm s ~hit
  in
  let pools =
    Array.init shards (fun _ -> Warm.create ~cap:warm_cap ~config ~note ())
  in
  let estimates = Estimate.create () in
  let run (ctx : Dispatcher.ctx) spec =
    let pool = pools.(ctx.Dispatcher.shard) in
    dispatch ~slice ~config ~pool ~est:estimates ctx spec
  in
  {
    run;
    place = place_policy ~estimates ~shards ~xl_cutoff;
    estimates;
    warm_stats =
      (fun () ->
        Array.fold_left
          (fun acc p -> Warm.merge acc (Warm.stats p))
          Warm.zero pools);
  }
