(** The shard pool at the heart of the replay farm: a fixed set of OCaml 5
    domains, each running one VM at a time, fed from per-shard local
    queues plus a shared {!Jobq} idle shards steal from, and reporting
    through an in-order results channel.

    Shard isolation invariant: a job's VM (warm or cold), trace
    writer/reader, and temporary files live entirely on the shard that
    runs it — local-queue entries never migrate. Shards share only the
    work queues, the stats block, and the reorder buffer — each a small
    mutex-guarded structure touched once per job. *)

(** Raised by [ctx.should_stop] (and catchable by job code for cleanup)
    when the entry was cancelled. *)
exception Cancelled

(** Raised by [ctx.should_stop] when the entry's deadline has passed. *)
exception Deadline_exceeded

type ctx = {
  shard : int;  (** index of the domain running the job *)
  seq : int;  (** the entry's submission sequence number *)
  should_stop : unit -> unit;
      (** poll point: raises {!Cancelled} or {!Deadline_exceeded}; job code
          calls this between VM slices *)
}

(** Placement decision for one submission: [Shared] — any idle shard
    steals it (the lane for unestimated and extra-large jobs); [Shard i] —
    pinned to shard [i]'s local queue (the warm-VM affinity lane;
    reduced mod the shard count). *)
type place = Shared | Shard of int

type 'r outcome =
  | Done of 'r
  | Failed of string  (** after the retry budget is spent *)
  | Timed_out
  | Cancelled_

type ('a, 'r) result = {
  r_seq : int;
  r_payload : 'a;
  r_outcome : 'r outcome;
  r_attempts : int;  (** executions performed (0 if never started) *)
  r_latency : float;  (** submission to completion, seconds *)
  r_shard : int;
}

type ('a, 'r) t

(** Spawn [shards] worker domains (default 4) running [run]. [run] may
    raise: generic exceptions consume the retry budget (exponential
    backoff via re-enqueue with an earliest-start time — the worker domain
    never sleeps), {!Cancelled}/{!Deadline_exceeded} terminate the job
    with the matching outcome. An entry whose deadline has already passed
    when dequeued completes as [Timed_out] without [run] being called
    (its [r_attempts] stays 0). [place] routes each submission (default:
    everything Shared); [stats] lets the caller share a stats block with
    other layers (default: fresh). *)
val create :
  ?shards:int ->
  ?place:('a -> place) ->
  ?stats:Stats.t ->
  run:(ctx -> 'a -> 'r) ->
  unit ->
  ('a, 'r) t

val shards : ('a, 'r) t -> int

val stats : ('a, 'r) t -> Stats.t

val queue_depth : ('a, 'r) t -> int

(** Enqueue a job. [deadline] is absolute Unix time; [max_retries] extra
    attempts after the first failure (default 0); [backoff] base seconds,
    doubled per failed attempt (default 0.05). Returns the entry, usable
    with {!cancel}. *)
val submit :
  ('a, 'r) t ->
  ?deadline:float ->
  ?max_retries:int ->
  ?backoff:float ->
  'a ->
  'a Jobq.entry

val cancel : 'a Jobq.entry -> unit

(** Stop accepting submissions; queued entries still run. *)
val close : ('a, 'r) t -> unit

(** Next result in submission order. Blocks until seq [next_out] lands;
    [None] once the queue is closed and every submission's slot has been
    emitted. Single-consumer. *)
val next : ('a, 'r) t -> ('a, 'r) result option

(** Join the worker domains (idempotent; call after {!close}). *)
val join : ('a, 'r) t -> unit

(** {!close}, collect every remaining result in submission order, then
    {!join}. *)
val drain : ('a, 'r) t -> ('a, 'r) result list
