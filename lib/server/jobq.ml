(* The farm's work queue: a mutex-guarded FIFO shared by all shard domains.
   Entries carry the scheduling metadata (absolute deadline, retry budget,
   backoff base, cancellation flag); policy — skipping expired entries,
   sleeping out a backoff, honouring cancellation mid-run — lives in the
   dispatcher, which observes the flags cooperatively. Cancelled entries
   are still popped and handed back so a result slot is emitted for every
   submission (the in-order results channel depends on it). *)

type 'a entry = {
  seq : int; (* submission order; also the results-channel position *)
  payload : 'a;
  deadline : float option; (* absolute Unix time *)
  max_retries : int; (* extra attempts after the first failure *)
  backoff : float; (* base seconds, doubled per failed attempt *)
  submitted_at : float;
  mutable attempts : int;
  cancelled : bool Atomic.t;
      (* written by the submitter's domain, polled by the worker running the
         entry — atomic so the flag is visible across domains without any
         other synchronizing operation between VM slices *)
}

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : 'a entry Queue.t;
  mutable next_seq : int;
  mutable closed : bool;
}

let create () =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    next_seq = 0;
    closed = false;
  }

let submit t ?deadline ?(max_retries = 0) ?(backoff = 0.05) payload =
  Mutex.protect t.m (fun () ->
      if t.closed then invalid_arg "Jobq.submit: closed queue";
      let e =
        {
          seq = t.next_seq;
          payload;
          deadline;
          max_retries;
          backoff;
          submitted_at = Unix.gettimeofday ();
          attempts = 0;
          cancelled = Atomic.make false;
        }
      in
      t.next_seq <- t.next_seq + 1;
      Queue.push e t.q;
      Condition.signal t.nonempty;
      e)

(* Cooperative: a queued entry is reported Cancelled when popped; a running
   one is stopped at its next should_stop poll. *)
let cancel (e : 'a entry) = Atomic.set e.cancelled true

let is_cancelled (e : 'a entry) = Atomic.get e.cancelled

let pop t =
  Mutex.protect t.m (fun () ->
      let rec wait () =
        match Queue.take_opt t.q with
        | Some e -> Some e
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.m;
            wait ()
          end
      in
      wait ())

let close t =
  Mutex.protect t.m (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = Mutex.protect t.m (fun () -> Queue.length t.q)

let is_closed t = Mutex.protect t.m (fun () -> t.closed)

(* Total entries ever submitted — the results channel drains exactly this
   many slots. *)
let submitted t = Mutex.protect t.m (fun () -> t.next_seq)
