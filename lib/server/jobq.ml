(* The farm's work queues: one shared queue any shard may pop, plus one
   local queue per shard that only its owner pops. The dispatcher's
   placement policy decides which queue a submission lands on (shard-local
   for warm-VM affinity, shared for unestimated or extra-large jobs); an
   idle shard whose local queue is empty steals from the shared queue, so
   no shard sits idle while shared work waits — and local entries never
   migrate, so per-shard warm state stays per-shard.

   Entries carry the scheduling metadata (absolute deadline, retry budget,
   backoff base, cancellation flag, earliest-start time); policy — skipping
   expired entries, honouring cancellation mid-run, backing a retry off —
   lives in the dispatcher. A retry is re-enqueued with a [not_before]
   timestamp rather than slept out on the worker domain: the shard takes
   other work and the entry becomes poppable again when its backoff
   elapses. Cancelled entries are still popped and handed back so a result
   slot is emitted for every submission (the in-order results channel
   depends on it); so are entries whose deadline has already passed —
   popping them promptly (the due-check below treats them as due) lets the
   dispatcher report the timeout without waiting out a pointless backoff.

   All queues share one mutex and one condition: traffic is per job, never
   per instruction, and a single lock keeps the blocking pop's "is there
   anything I could ever take?" check atomic. *)

type 'a entry = {
  seq : int; (* submission order; also the results-channel position *)
  payload : 'a;
  deadline : float option; (* absolute Unix time *)
  max_retries : int; (* extra attempts after the first failure *)
  backoff : float; (* base seconds, doubled per failed attempt *)
  submitted_at : float;
  home : int; (* owning shard's local queue, or -1 = shared *)
  mutable attempts : int;
  mutable not_before : float; (* absolute; 0. = poppable immediately *)
  cancelled : bool Atomic.t;
      (* written by the submitter's domain, polled by the worker running the
         entry — atomic so the flag is visible across domains without any
         other synchronizing operation between VM slices *)
}

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  shared : 'a entry Queue.t;
  locals : 'a entry Queue.t array;
  mutable next_seq : int;
  mutable pending : int; (* entries sitting in any queue right now *)
  mutable closed : bool;
}

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Jobq.create: shards < 1";
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    shared = Queue.create ();
    locals = Array.init shards (fun _ -> Queue.create ());
    next_seq = 0;
    pending = 0;
    closed = false;
  }

let shards t = Array.length t.locals

let submit t ?deadline ?(max_retries = 0) ?(backoff = 0.05) ?(shard = -1)
    payload =
  if shard >= Array.length t.locals then
    invalid_arg "Jobq.submit: shard out of range";
  Mutex.protect t.m (fun () ->
      if t.closed then invalid_arg "Jobq.submit: closed queue";
      let e =
        {
          seq = t.next_seq;
          payload;
          deadline;
          max_retries;
          backoff;
          submitted_at = Unix.gettimeofday ();
          home = (if shard < 0 then -1 else shard);
          attempts = 0;
          not_before = 0.;
          cancelled = Atomic.make false;
        }
      in
      t.next_seq <- t.next_seq + 1;
      Queue.push e (if shard < 0 then t.shared else t.locals.(shard));
      t.pending <- t.pending + 1;
      Condition.broadcast t.nonempty;
      e)

(* Put a popped entry back on its home queue, poppable again at
   [not_before] — the dispatcher's non-blocking retry backoff. *)
let requeue t (e : 'a entry) ~not_before =
  Mutex.protect t.m (fun () ->
      e.not_before <- not_before;
      Queue.push e (if e.home < 0 then t.shared else t.locals.(e.home));
      t.pending <- t.pending + 1;
      Condition.broadcast t.nonempty)

(* Cooperative: a queued entry is reported Cancelled when popped; a running
   one is stopped at its next should_stop poll. *)
let cancel (e : 'a entry) = Atomic.set e.cancelled true

let is_cancelled (e : 'a entry) = Atomic.get e.cancelled

(* An entry is due when its backoff has elapsed — or when waiting any
   longer is pointless: an expired deadline or a cancellation means the
   dispatcher will emit the terminal result without running anything. *)
let due now (e : 'a entry) =
  e.not_before <= now
  || Atomic.get e.cancelled
  || (match e.deadline with Some d -> now > d | None -> false)

(* First due entry, scanning at most one full rotation; not-due entries
   cycle to the back (relative order among due entries in the unscanned
   remainder is preserved, and backoff already reorders retries). *)
let take_due q now =
  let n = Queue.length q in
  let rec go i =
    if i >= n then None
    else
      let e = Queue.pop q in
      if due now e then Some e
      else begin
        Queue.push e q;
        go (i + 1)
      end
  in
  go 0

let earliest_not_before q acc =
  Queue.fold (fun acc e -> min acc e.not_before) acc q

(* Block until an entry this shard may run is available: its own local
   queue first (warm-affinity work), then the shared queue (stealing).
   [None] once the queue is closed and nothing poppable by this shard can
   ever appear. When the only candidate entries are backing off, naps in
   short slices (there is no timed Condition.wait) until the earliest
   becomes due. *)
let pop_shard t ~shard =
  if shard < 0 || shard >= Array.length t.locals then
    invalid_arg "Jobq.pop_shard: shard out of range";
  let local = t.locals.(shard) in
  Mutex.lock t.m;
  let rec loop () =
    let now = Unix.gettimeofday () in
    match
      match take_due local now with
      | Some e -> Some e
      | None -> take_due t.shared now
    with
    | Some e ->
      t.pending <- t.pending - 1;
      Mutex.unlock t.m;
      Some e
    | None ->
      if Queue.is_empty local && Queue.is_empty t.shared then
        if t.closed then begin
          (* nothing poppable by this shard can appear: submissions are
             over, and a future requeue onto these queues can only come
             from a worker that will re-check after requeueing *)
          Mutex.unlock t.m;
          None
        end
        else begin
          Condition.wait t.nonempty t.m;
          loop ()
        end
      else begin
        (* candidates exist but every one is backing off: nap outside the
           lock until the earliest is due (capped so a cancellation or a
           new submission is noticed promptly) *)
        let earliest =
          earliest_not_before local (earliest_not_before t.shared infinity)
        in
        Mutex.unlock t.m;
        Unix.sleepf (Float.max 0.0005 (Float.min (earliest -. now) 0.005));
        Mutex.lock t.m;
        loop ()
      end
  in
  loop ()

(* Single-queue compatibility pop: shard 0's view. *)
let pop t = pop_shard t ~shard:0

let close t =
  Mutex.protect t.m (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = Mutex.protect t.m (fun () -> t.pending)

let is_closed t = Mutex.protect t.m (fun () -> t.closed)

(* Total entries ever submitted — the results channel drains exactly this
   many slots. *)
let submitted t = Mutex.protect t.m (fun () -> t.next_seq)
