(** [dvrun serve]: jobs over a Unix-domain socket. Length-prefixed
    {!Protocol} frames; each connection submits a burst of jobs, sends
    [Finish], and receives every reply in submission order before the
    connection closes. Connections are handled one at a time; the shard
    pool persists across them. *)

type t

(** Bind the socket (replacing a stale file), spawn the shard pool, create
    [out_dir] if missing. Recorded traces land in
    [out_dir]/WORKLOAD-SEQ.trace (server-assigned, collision-free). *)
val create :
  ?shards:int -> ?slice:int -> socket_path:string -> out_dir:string -> unit -> t

(** Accept loop. [max_conns] bounds how many connections to serve (for
    tests); [None] serves until the process dies. *)
val serve : ?max_conns:int -> t -> unit

(** Close the listening socket, remove the socket file, drain and join the
    shard pool. *)
val shutdown : t -> unit

val stats : t -> Stats.t

(** Client helper: connect, submit the batch, collect replies in order. *)
val client_submit :
  socket_path:string -> Protocol.request list -> Protocol.reply list
