(* The farm's wire protocol: 4-byte big-endian length-prefixed frames whose
   payloads reuse the trace codec's zigzag varints (Trace.put_varint /
   get_varint), so the serving layer and the trace format share one integer
   encoding and one set of canonicality checks. Strings travel as
   varint(length) + bytes. Malformed frames raise Trace.Format_error, like
   malformed trace files. *)

module Trace = Dejavu.Trace

let max_frame = 16 * 1024 * 1024 (* refuse absurd lengths before allocating *)

type op = Op_record | Op_replay | Op_roundtrip | Op_lint | Op_explore

let int_of_op = function
  | Op_record -> 0
  | Op_replay -> 1
  | Op_roundtrip -> 2
  | Op_lint -> 3
  | Op_explore -> 4

let op_of_int = function
  | 0 -> Op_record
  | 1 -> Op_replay
  | 2 -> Op_roundtrip
  | 3 -> Op_lint
  | 4 -> Op_explore
  | n -> raise (Trace.Format_error (Fmt.str "unknown op tag %d" n))

let string_of_op = function
  | Op_record -> "record"
  | Op_replay -> "replay"
  | Op_roundtrip -> "roundtrip"
  | Op_lint -> "lint"
  | Op_explore -> "explore"

type request =
  | Submit of {
      q_op : op;
      q_workload : string;
      q_seed : int;
      q_trace : string; (* server-side trace path for replay; "" otherwise *)
      q_deadline_ms : int; (* relative to receipt; 0 = none *)
      q_max_retries : int;
    }
  | Finish (* no more submissions; server streams remaining replies, closes *)

type reply = {
  p_seq : int;
  p_op : op;
  p_workload : string;
  p_outcome : int; (* 0 done / 1 failed / 2 timed out / 3 cancelled *)
  p_status : string; (* VM status, or the failure message *)
  p_digest : string;
  p_attempts : int;
  p_latency_us : int;
  p_words : int;
}

(* --- payload codec --- *)

let put_string b s =
  Trace.put_varint b (String.length s);
  Buffer.add_string b s

let get_string s off =
  let n, off = Trace.get_varint s off in
  if n < 0 || off + n > String.length s then
    raise (Trace.Format_error "string runs past frame end");
  (String.sub s off n, off + n)

let get_int s off =
  let v, off = Trace.get_varint s off in
  (v, off)

let encode_request = function
  | Submit { q_op; q_workload; q_seed; q_trace; q_deadline_ms; q_max_retries }
    ->
    let b = Buffer.create 64 in
    Trace.put_varint b 0;
    Trace.put_varint b (int_of_op q_op);
    put_string b q_workload;
    Trace.put_varint b q_seed;
    put_string b q_trace;
    Trace.put_varint b q_deadline_ms;
    Trace.put_varint b q_max_retries;
    Buffer.contents b
  | Finish ->
    let b = Buffer.create 4 in
    Trace.put_varint b 1;
    Buffer.contents b

let decode_request s =
  let tag, off = get_int s 0 in
  match tag with
  | 0 ->
    let opi, off = get_int s off in
    let q_workload, off = get_string s off in
    let q_seed, off = get_int s off in
    let q_trace, off = get_string s off in
    let q_deadline_ms, off = get_int s off in
    let q_max_retries, off = get_int s off in
    if off <> String.length s then
      raise (Trace.Format_error "trailing bytes in request frame");
    Submit
      {
        q_op = op_of_int opi;
        q_workload;
        q_seed;
        q_trace;
        q_deadline_ms;
        q_max_retries;
      }
  | 1 ->
    if off <> String.length s then
      raise (Trace.Format_error "trailing bytes in request frame");
    Finish
  | n -> raise (Trace.Format_error (Fmt.str "unknown request tag %d" n))

let encode_reply (r : reply) =
  let b = Buffer.create 96 in
  Trace.put_varint b r.p_seq;
  Trace.put_varint b (int_of_op r.p_op);
  put_string b r.p_workload;
  Trace.put_varint b r.p_outcome;
  put_string b r.p_status;
  put_string b r.p_digest;
  Trace.put_varint b r.p_attempts;
  Trace.put_varint b r.p_latency_us;
  Trace.put_varint b r.p_words;
  Buffer.contents b

let decode_reply s =
  let p_seq, off = get_int s 0 in
  let opi, off = get_int s off in
  let p_workload, off = get_string s off in
  let p_outcome, off = get_int s off in
  let p_status, off = get_string s off in
  let p_digest, off = get_string s off in
  let p_attempts, off = get_int s off in
  let p_latency_us, off = get_int s off in
  let p_words, off = get_int s off in
  if off <> String.length s then
    raise (Trace.Format_error "trailing bytes in reply frame");
  {
    p_seq;
    p_op = op_of_int opi;
    p_workload;
    p_outcome;
    p_status;
    p_digest;
    p_attempts;
    p_latency_us;
    p_words;
  }

(* --- framing --- *)

let write_frame oc payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  output_binary_int oc n;
  output_string oc payload;
  flush oc

(* None at a clean EOF (no frame started); Format_error on a truncated or
   oversized frame. *)
let read_frame ic =
  match input_binary_int ic with
  | exception End_of_file -> None
  | n ->
    if n < 0 || n > max_frame then
      raise (Trace.Format_error (Fmt.str "bad frame length %d" n));
    let buf = Bytes.create n in
    (try really_input ic buf 0 n
     with End_of_file ->
       raise (Trace.Format_error "frame truncated mid-payload"));
    Some (Bytes.unsafe_to_string buf)

let write_request oc r = write_frame oc (encode_request r)

let read_request ic = Option.map decode_request (read_frame ic)

let write_reply oc r = write_frame oc (encode_reply r)

let read_reply ic = Option.map decode_reply (read_frame ic)
