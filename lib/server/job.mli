(** The jobs a farm shard runs. Each job drives one VM in fuel-bounded
    slices, polling the dispatcher's [should_stop] between slices so
    cancellation and deadlines take effect mid-program, and leaves no
    partial trace file behind on any exit path.

    {!run} is the cold path (one fresh VM per job); {!runner} is the warm
    path — per-shard {!Warm} pools, a measured {!Estimate} table, and the
    size-aware placement policy — whose results are byte-identical to the
    cold path's (tested registry-wide). *)

type spec =
  | Record of { workload : string; seed : int; out : string }
  | Replay of { workload : string; trace : string }
  | Roundtrip of { workload : string; seed : int }
  | Lint of { workload : string }
  | Explore of {
      workload : string;
      seed : int;
      prefix : int array;
          (** forced decision vector; [[||]] is the root schedule *)
      pb : int;  (** preemption bound *)
      db : int;  (** delay (non-FIFO pick) bound *)
      dpor : bool;
    }

type output = {
  o_status : string;  (** final VM status ("ok" for lint) *)
  o_digest : string;  (** hex: trace file / VM state / analysis summary *)
  o_words : int;  (** trace words written / leftovers / racy findings *)
  o_children : int array list;
      (** explore only: fresh alternative schedule prefixes — the first
          job kind that generates further jobs (the frontier fan-out) *)
  o_pruned : int;  (** explore only: branches DPOR suppressed *)
  o_flags : int;  (** explore only: {!explore_fault_bit} / aborted bit *)
}

val explore_fault_bit : int

val explore_aborted_bit : int

(** "record:NAME" etc., for labels and wire replies. *)
val describe : spec -> string

val workload_of : spec -> string

(** Force lazily-built shared structures (the workload registry) before
    spawning shard domains; forcing a [Lazy.t] from two domains at once is
    a race. Call once from batch/serve setup. *)
val preload : unit -> unit

(** Run one job cold (fresh VM). [slice] is the cancellation-poll
    granularity in instructions (default 50_000); [config] is the base VM
    config (per-job seeds override its environment seed; default
    [Vm.Rt.default_config]). Raises [Failure] on unknown workloads,
    [Trace.Format_error] on malformed trace files, and lets
    {!Dispatcher.Cancelled}/{!Dispatcher.Deadline_exceeded} propagate. *)
val run : ?slice:int -> ?config:Vm.Rt.config -> Dispatcher.ctx -> spec -> output

(** The warm execution package for one dispatcher: [run] to pass as the
    dispatcher's run function (routes each job through its shard's warm
    pool — [ctx.shard] must be < [shards]), [place] as its placement
    policy, the live [estimates] table, and [warm_stats] to fold every
    shard pool's counters (call only after the shard domains are
    joined). *)
type runner = {
  run : Dispatcher.ctx -> spec -> output;
  place : spec -> Dispatcher.place;
  estimates : Estimate.t;
  warm_stats : unit -> Warm.stats;
}

(** Build a warm runner for [shards] shard domains. [config] is the base
    VM config every pool boot uses (default [Vm.Rt.default_config]);
    [warm_cap] bounds resident VMs per shard (default 32); jobs measuring
    at least [xl_cutoff] instructions (default 2M) are placed on the
    shared queue instead of a warm-affinity local queue; [stats] receives
    warm hit/boot counts when supplied. *)
val runner :
  ?slice:int ->
  ?config:Vm.Rt.config ->
  ?warm_cap:int ->
  ?xl_cutoff:int ->
  ?stats:Stats.t ->
  shards:int ->
  unit ->
  runner
