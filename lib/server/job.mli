(** The jobs a farm shard runs. Each job drives one VM in fuel-bounded
    slices, polling the dispatcher's [should_stop] between slices so
    cancellation and deadlines take effect mid-program, and leaves no
    partial trace file behind on any exit path. *)

type spec =
  | Record of { workload : string; seed : int; out : string }
  | Replay of { workload : string; trace : string }
  | Roundtrip of { workload : string; seed : int }
  | Lint of { workload : string }

type output = {
  o_status : string;  (** final VM status ("ok" for lint) *)
  o_digest : string;  (** hex: trace file / VM state / analysis summary *)
  o_words : int;  (** trace words written / leftovers / racy findings *)
}

(** "record:NAME" etc., for labels and wire replies. *)
val describe : spec -> string

val workload_of : spec -> string

(** Force lazily-built shared structures (the workload registry) before
    spawning shard domains; forcing a [Lazy.t] from two domains at once is
    a race. Call once from batch/serve setup. *)
val preload : unit -> unit

(** Run one job. [slice] is the cancellation-poll granularity in
    instructions (default 50_000). Raises [Failure] on unknown workloads,
    [Trace.Format_error] on malformed trace files, and lets
    {!Dispatcher.Cancelled}/{!Dispatcher.Deadline_exceeded} propagate. *)
val run : ?slice:int -> Dispatcher.ctx -> spec -> output
